/**
 * @file
 * gexsim-sweep: run a (workload × scheme) grid on the parallel sweep
 * engine, print a normalized-performance table, and optionally export
 * the full result set — per-run stats included — as a BENCH_*.json
 * document (schema: docs/METRICS.md) carrying the campaign's
 * resolved_config manifest.
 *
 *   gexsim-sweep --suite parboil --jobs 4 --json BENCH_sweep.json
 *   gexsim-sweep --workloads sgemm,lbm --schemes baseline,replay-queue \
 *                --policy demand-paging --link pcie
 *   gexsim-sweep --config spec.json --jobs 4
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <chrono>
#include <string>
#include <vector>

#include "cli.hpp"
#include "gex.hpp"

using namespace gex;

namespace {

struct Options {
    std::string resumePath;
    int retries = 1;
    std::vector<std::string> workloads;
    std::vector<std::string> schemes = {"baseline", "wd-commit",
                                        "wd-lastcheck", "replay-queue",
                                        "operand-log"};
    std::string suite = "parboil";
    std::string jsonPath;
    int scale = 1;
    int jobs = 1;
    bool listWorkloads = false;
};

std::vector<std::string>
resolveWorkloads(const Options &o)
{
    if (!o.workloads.empty()) {
        for (const auto &w : o.workloads)
            if (!workloads::exists(w))
                fatal("unknown workload '%s' (try --list)", w.c_str());
        return o.workloads;
    }
    if (o.suite == "parboil")
        return workloads::parboilSuite();
    if (o.suite == "halloc")
        return workloads::hallocSuite();
    if (o.suite == "all")
        return workloads::allNames();
    fatal("unknown suite '%s' (expected parboil | halloc | all)",
          o.suite.c_str());
}

int
toolMain(int argc, char **argv)
{
    Options o;
    config::RunParams params;

    cli::ArgParser p("gexsim-sweep",
                     "parallel (workload x scheme) sweep driver");
    p.synopsis("gexsim-sweep [--config spec.json] [--suite S | "
               "--workloads A,B] [--schemes A,B] [knob flags...]");
    p.option("--suite", "S", "parboil | halloc | all (default parboil)",
             [&](const std::string &v) { o.suite = v; }, "suite");
    p.option("--workloads", "A,B,C",
             "explicit workload list (overrides --suite)",
             [&](const std::string &v) { o.workloads = cli::splitCsv(v); },
             "workloads");
    p.option("--schemes", "A,B,C",
             "schemes to sweep (default all five)",
             [&](const std::string &v) { o.schemes = cli::splitCsv(v); },
             "schemes");
    p.option("--scale", "N", "workload scale factor (default 1)",
             [&](const std::string &v) {
                 o.scale = cli::parseIntFlag("--scale", v, 1, 1 << 20);
             },
             "scale");
    p.option("--jobs", "N",
             "worker threads (default 1; 0 = all cores)",
             [&](const std::string &v) {
                 o.jobs = cli::parseIntFlag("--jobs", v, 0, 4096);
             });
    p.option("--json", "FILE", "write the full result set as JSON",
             [&](const std::string &v) { o.jsonPath = v; });
    p.option("--resume", "FILE",
             "campaign journal: record every finished point there and "
             "skip points already in it (--json output is then "
             "byte-identical to an uninterrupted run at any --jobs)",
             [&](const std::string &v) { o.resumePath = v; });
    p.option("--retries", "N",
             "retries for transiently failed points (default 1)",
             [&](const std::string &v) {
                 o.retries = cli::parseIntFlag("--retries", v, 0, 100);
             },
             "retries");
    p.flag("--list", "list built-in workloads",
           [&] { o.listWorkloads = true; });
    p.bindKnobs(&params);
    p.parse(argc, argv);

    if (o.listWorkloads) {
        for (const auto &n : workloads::allNames())
            std::printf("%s\n", n.c_str());
        return 0;
    }

    std::vector<std::string> names = resolveWorkloads(o);
    if (o.schemes.empty())
        fatal("--schemes resolved to an empty list");

    harness::SweepEngine eng(o.jobs);
    eng.setMaxRetries(o.retries);
    harness::CampaignJournal journal(o.resumePath);
    if (journal.active()) {
        std::size_t loaded = journal.load();
        if (loaded)
            std::printf("resume: %zu completed points in %s\n", loaded,
                        journal.path().c_str());
        eng.setJournal(&journal);
    }
    for (const auto &w : names) {
        for (const auto &s : o.schemes) {
            harness::RunSpec rs;
            rs.workload = w;
            rs.scale = o.scale;
            rs.cfg = params.cfg;
            rs.cfg.scheme = gpu::schemeFromName(s);
            rs.policy = params.policy;
            eng.add(std::move(rs));
        }
    }

    std::printf("sweep: %zu workloads x %zu schemes = %zu runs, "
                "%d jobs, policy %s\n",
                names.size(), o.schemes.size(), eng.size(), eng.jobs(),
                vm::policyName(params.policy));

    auto t0 = std::chrono::steady_clock::now();
    std::vector<harness::RunRecord> runs = eng.run();
    auto t1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(t1 - t0).count();

    // Normalize to the first listed scheme (column 1 of the table).
    const std::string baseSeries = o.schemes.front();
    harness::normalizeToSeries(runs, baseSeries);

    std::printf("%-14s %12s", "benchmark", "base-cycles");
    for (const auto &s : o.schemes)
        if (s != baseSeries)
            std::printf(" %12s", s.c_str());
    std::printf("\n");
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        if (!r.ok()) {
            ++dropped;
            if (r.spec.seriesLabel() == baseSeries)
                std::printf("%-14s %12s", r.spec.workload.c_str(),
                            harness::pointStatusName(r.status));
            else
                std::printf(" %12s",
                            harness::pointStatusName(r.status));
        } else if (r.spec.seriesLabel() == baseSeries) {
            std::printf("%-14s %12llu", r.spec.workload.c_str(),
                        static_cast<unsigned long long>(r.result.cycles));
        } else {
            std::printf(" %12.3f", r.derived.count("normalized")
                                       ? r.derived.at("normalized")
                                       : 0.0);
        }
        if ((i + 1) % o.schemes.size() == 0)
            std::printf("\n");
    }

    std::map<std::string, double> gms = harness::seriesGeomeans(runs);
    std::printf("%-14s %12s", "GEOMEAN", "");
    for (const auto &s : o.schemes)
        if (s != baseSeries)
            std::printf(" %12.3f", gms.count(s) ? gms.at(s) : 0.0);
    std::printf("\nwall time: %.2fs (%d jobs, %zu traces)\n", wall,
                eng.jobs(), eng.traces().size());
    if (dropped)
        std::printf("note: %zu of %zu points did not complete and are "
                    "excluded from normalized columns and geomeans "
                    "(per-point status/error in the JSON export)\n",
                    dropped, runs.size());

    if (!o.jsonPath.empty()) {
        harness::SweepReport rep;
        rep.name = "gexsim_sweep";
        rep.jobs = eng.jobs();
        rep.wallSeconds = wall;
        rep.deterministic = journal.active();
        rep.baseConfig = params;
        rep.runs = std::move(runs);
        rep.geomeans = std::move(gms);
        rep.saveJson(o.jsonPath);
        std::printf("wrote %s\n", o.jsonPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::run("gexsim-sweep",
                    [&] { return toolMain(argc, argv); });
}
