/**
 * @file
 * gexsim-sweep: run a (workload × scheme) grid on the parallel sweep
 * engine, print a normalized-performance table, and optionally export
 * the full result set — per-run stats included — as a BENCH_*.json
 * document (schema: docs/METRICS.md).
 *
 *   gexsim-sweep --suite parboil --jobs 4 --json BENCH_sweep.json
 *   gexsim-sweep --workloads sgemm,lbm --schemes baseline,replay-queue \
 *                --policy demand-paging --link pcie
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>
#include <vector>

#include "cli.hpp"
#include "gex.hpp"

using namespace gex;

namespace {

struct Options {
    std::string resumePath;
    std::uint64_t watchdog = 2'000'000;
    std::uint64_t maxCycles = 0;
    int retries = 1;
    std::vector<std::string> workloads;
    std::vector<std::string> schemes = {"baseline", "wd-commit",
                                        "wd-lastcheck", "replay-queue",
                                        "operand-log"};
    std::string suite = "parboil";
    std::string policy = "resident";
    std::string link = "nvlink";
    std::string jsonPath;
    int scale = 1;
    int sms = 16;
    std::uint32_t logKb = 16;
    int jobs = 1;
    int smThreads = 1;
    bool blockSwitching = false;
    bool listWorkloads = false;
};

void
usage()
{
    std::printf(
        "gexsim-sweep: parallel (workload x scheme) sweep driver\n\n"
        "  --suite S           parboil | halloc | all (default parboil)\n"
        "  --workloads A,B,C   explicit workload list (overrides --suite)\n"
        "  --schemes A,B,C     schemes to sweep (default all five)\n"
        "  --policy P          resident | demand-paging |\n"
        "                      output-faults[-local] | heap-faults[-local]\n"
        "  --link L            nvlink | pcie\n"
        "  --scale N           workload scale factor (default 1)\n"
        "  --sms N             number of SMs (default 16)\n"
        "  --log-kb N          operand log size in KB (default 16)\n"
        "  --block-switching   enable UC1 block switching\n"
        "  --jobs N            worker threads (default 1; 0 = all cores)\n"
        "  --sm-threads N      SM-tick threads inside each run (default 1;\n"
        "                      results identical at any value)\n"
        "  --json FILE         write the full result set as JSON\n"
        "  --resume FILE       campaign journal: record every finished\n"
        "                      point there and skip points already in it\n"
        "                      (--json output is then byte-identical to\n"
        "                      an uninterrupted run at any --jobs)\n"
        "  --retries N         retries for transiently failed points\n"
        "                      (default 1)\n"
        "  --watchdog N        forward-progress watchdog window in cycles\n"
        "                      (default 2000000; 0 disables)\n"
        "  --max-cycles N      per-point hard cycle budget (default 0 =\n"
        "                      unlimited)\n"
        "  --list              list built-in workloads\n");
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--suite") o.suite = next();
        else if (a == "--workloads") o.workloads = splitCsv(next());
        else if (a == "--schemes") o.schemes = splitCsv(next());
        else if (a == "--policy") o.policy = next();
        else if (a == "--link") o.link = next();
        else if (a == "--scale")
            o.scale = cli::parseIntFlag("--scale", next(), 1, 1 << 20);
        else if (a == "--sms")
            o.sms = cli::parseIntFlag("--sms", next(), 1, 4096);
        else if (a == "--log-kb")
            o.logKb = static_cast<std::uint32_t>(
                cli::parseInt("--log-kb", next(), 1, 1 << 20));
        else if (a == "--block-switching") o.blockSwitching = true;
        else if (a == "--jobs")
            o.jobs = cli::parseIntFlag("--jobs", next(), 0, 4096);
        else if (a == "--sm-threads")
            o.smThreads =
                cli::parseIntFlag("--sm-threads", next(), 1, 1024);
        else if (a == "--json") o.jsonPath = next();
        else if (a == "--resume") o.resumePath = next();
        else if (a == "--retries")
            o.retries = cli::parseIntFlag("--retries", next(), 0, 100);
        else if (a == "--watchdog")
            o.watchdog = static_cast<std::uint64_t>(cli::parseInt(
                "--watchdog", next(), 0, 0x7fffffffffffffffll));
        else if (a == "--max-cycles")
            o.maxCycles = static_cast<std::uint64_t>(cli::parseInt(
                "--max-cycles", next(), 0, 0x7fffffffffffffffll));
        else if (a == "--list") o.listWorkloads = true;
        else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("unknown flag '%s'", a.c_str());
        }
    }
    return o;
}

std::vector<std::string>
resolveWorkloads(const Options &o)
{
    if (!o.workloads.empty()) {
        for (const auto &w : o.workloads)
            if (!workloads::exists(w))
                fatal("unknown workload '%s' (try --list)", w.c_str());
        return o.workloads;
    }
    if (o.suite == "parboil")
        return workloads::parboilSuite();
    if (o.suite == "halloc")
        return workloads::hallocSuite();
    if (o.suite == "all")
        return workloads::allNames();
    fatal("unknown suite '%s' (expected parboil | halloc | all)",
          o.suite.c_str());
}

int
toolMain(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);
    if (o.listWorkloads) {
        for (const auto &n : workloads::allNames())
            std::printf("%s\n", n.c_str());
        return 0;
    }

    std::vector<std::string> names = resolveWorkloads(o);
    if (o.schemes.empty())
        fatal("--schemes resolved to an empty list");
    if (o.link != "nvlink" && o.link != "pcie")
        fatal("unknown link '%s' (expected nvlink | pcie)",
              o.link.c_str());

    gpu::GpuConfig base = gpu::GpuConfig::baseline();
    base.numSms = o.sms;
    base.operandLogBytes = o.logKb * 1024;
    base.hostLink = o.link == "pcie" ? vm::HostLinkConfig::pcie()
                                     : vm::HostLinkConfig::nvlink();
    base.blockSwitching = o.blockSwitching;
    base.smThreads = o.smThreads;
    base.watchdogCycles = o.watchdog;
    base.maxCycles = o.maxCycles;
    vm::VmPolicy policy = vm::policyFromName(o.policy);

    harness::SweepEngine eng(o.jobs);
    eng.setMaxRetries(o.retries);
    harness::CampaignJournal journal(o.resumePath);
    if (journal.active()) {
        std::size_t loaded = journal.load();
        if (loaded)
            std::printf("resume: %zu completed points in %s\n", loaded,
                        journal.path().c_str());
        eng.setJournal(&journal);
    }
    for (const auto &w : names) {
        for (const auto &s : o.schemes) {
            harness::RunSpec rs;
            rs.workload = w;
            rs.scale = o.scale;
            rs.cfg = base;
            rs.cfg.scheme = gpu::schemeFromName(s);
            rs.policy = policy;
            eng.add(std::move(rs));
        }
    }

    std::printf("sweep: %zu workloads x %zu schemes = %zu runs, "
                "%d jobs, policy %s\n",
                names.size(), o.schemes.size(), eng.size(), eng.jobs(),
                o.policy.c_str());

    auto t0 = std::chrono::steady_clock::now();
    std::vector<harness::RunRecord> runs = eng.run();
    auto t1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(t1 - t0).count();

    // Normalize to the first listed scheme (column 1 of the table).
    const std::string baseSeries = o.schemes.front();
    harness::normalizeToSeries(runs, baseSeries);

    std::printf("%-14s %12s", "benchmark", "base-cycles");
    for (const auto &s : o.schemes)
        if (s != baseSeries)
            std::printf(" %12s", s.c_str());
    std::printf("\n");
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        if (!r.ok()) {
            ++dropped;
            if (r.spec.seriesLabel() == baseSeries)
                std::printf("%-14s %12s", r.spec.workload.c_str(),
                            harness::pointStatusName(r.status));
            else
                std::printf(" %12s",
                            harness::pointStatusName(r.status));
        } else if (r.spec.seriesLabel() == baseSeries) {
            std::printf("%-14s %12llu", r.spec.workload.c_str(),
                        static_cast<unsigned long long>(r.result.cycles));
        } else {
            std::printf(" %12.3f", r.derived.count("normalized")
                                       ? r.derived.at("normalized")
                                       : 0.0);
        }
        if ((i + 1) % o.schemes.size() == 0)
            std::printf("\n");
    }

    std::map<std::string, double> gms = harness::seriesGeomeans(runs);
    std::printf("%-14s %12s", "GEOMEAN", "");
    for (const auto &s : o.schemes)
        if (s != baseSeries)
            std::printf(" %12.3f", gms.count(s) ? gms.at(s) : 0.0);
    std::printf("\nwall time: %.2fs (%d jobs, %zu traces)\n", wall,
                eng.jobs(), eng.traces().size());
    if (dropped)
        std::printf("note: %zu of %zu points did not complete and are "
                    "excluded from normalized columns and geomeans "
                    "(per-point status/error in the JSON export)\n",
                    dropped, runs.size());

    if (!o.jsonPath.empty()) {
        harness::SweepReport rep;
        rep.name = "gexsim_sweep";
        rep.jobs = eng.jobs();
        rep.wallSeconds = wall;
        rep.deterministic = journal.active();
        rep.runs = std::move(runs);
        rep.geomeans = std::move(gms);
        rep.saveJson(o.jsonPath);
        std::printf("wrote %s\n", o.jsonPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::run("gexsim-sweep",
                    [&] { return toolMain(argc, argv); });
}
