/**
 * @file
 * gexsim-run: command-line driver for the simulator. Runs a built-in
 * workload (or a .kasm file via gexsim-asm) under a chosen exception
 * scheme, paging policy and machine configuration, and prints the
 * cycle count and statistics.
 *
 *   gexsim-run --workload sgemm --scheme replay-queue \
 *              --policy demand-paging --link pcie --block-switching \
 *              --stats
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "gex.hpp"

using namespace gex;

namespace {

struct Options {
    std::string workload = "sgemm";
    int scale = 1;
    std::string scheme = "baseline";
    std::string policy = "resident";
    std::string link = "nvlink";
    int sms = 16;
    int smThreads = 1;
    std::uint32_t logKb = 16;
    bool blockSwitching = false;
    bool idealSwitch = false;
    bool arithExceptions = false;
    bool dumpStats = false;
    bool dumpCsv = false;
    bool listWorkloads = false;
    std::uint64_t watchdog = 2'000'000;
    std::uint64_t maxCycles = 0;
    bool captureEvents = false;
    std::string injectModel = "none";
    double injectRate = 0.0;
    std::uint64_t injectSeed = 1;
};

void
usage()
{
    std::printf(
        "gexsim-run: GPU timing simulation driver\n\n"
        "  --workload NAME     built-in workload (see --list)\n"
        "  --scale N           workload scale factor (default 1)\n"
        "  --scheme S          baseline | wd-commit | wd-lastcheck |\n"
        "                      replay-queue | operand-log\n"
        "  --log-kb N          operand log size in KB (default 16)\n"
        "  --policy P          resident | demand-paging |\n"
        "                      output-faults[-local] | heap-faults[-local]\n"
        "  --link L            nvlink | pcie\n"
        "  --sms N             number of SMs (default 16)\n"
        "  --sm-threads N      threads ticking the SMs of this run\n"
        "                      (default 1; results identical at any value)\n"
        "  --block-switching   enable UC1 block switching\n"
        "  --ideal-switch      1-cycle context save/restore\n"
        "  --arith-exceptions  enable the arithmetic-exception extension\n"
        "  --inject-model M    none | bernoulli | burst | hot-page |\n"
        "                      first-touch (default none)\n"
        "  --inject-rate R     injected fault rate in [0,1] (default 0)\n"
        "  --inject-seed N     injection campaign seed (default 1)\n"
        "  --watchdog N        forward-progress watchdog window in cycles\n"
        "                      (default 2000000; 0 disables)\n"
        "  --max-cycles N      hard cycle budget (default 0 = unlimited)\n"
        "  --capture-events    keep the last-K pipeline events for\n"
        "                      watchdog diagnostics\n"
        "  --stats             dump all statistics\n"
        "  --csv               dump statistics as CSV\n"
        "  --list              list built-in workloads\n");
}

vm::VmPolicy
parsePolicy(const std::string &p)
{
    if (p == "resident") return vm::VmPolicy::allResident();
    if (p == "demand-paging") return vm::VmPolicy::demandPaging();
    if (p == "output-faults") return vm::VmPolicy::outputFaults(false);
    if (p == "output-faults-local") return vm::VmPolicy::outputFaults(true);
    if (p == "heap-faults") return vm::VmPolicy::heapFaults(false);
    if (p == "heap-faults-local") return vm::VmPolicy::heapFaults(true);
    fatal("unknown policy '%s'", p.c_str());
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--workload") o.workload = next();
        else if (a == "--scale")
            o.scale = cli::parseIntFlag("--scale", next(), 1, 1 << 20);
        else if (a == "--scheme") o.scheme = next();
        else if (a == "--log-kb")
            o.logKb = static_cast<std::uint32_t>(
                cli::parseInt("--log-kb", next(), 1, 1 << 20));
        else if (a == "--policy") o.policy = next();
        else if (a == "--link") o.link = next();
        else if (a == "--sms")
            o.sms = cli::parseIntFlag("--sms", next(), 1, 4096);
        else if (a == "--sm-threads")
            o.smThreads =
                cli::parseIntFlag("--sm-threads", next(), 1, 1024);
        else if (a == "--block-switching") o.blockSwitching = true;
        else if (a == "--ideal-switch") o.idealSwitch = true;
        else if (a == "--arith-exceptions") o.arithExceptions = true;
        else if (a == "--inject-model") o.injectModel = next();
        else if (a == "--inject-rate")
            o.injectRate = cli::parseRate("--inject-rate", next());
        else if (a == "--inject-seed")
            o.injectSeed = static_cast<std::uint64_t>(cli::parseInt(
                "--inject-seed", next(), 0, 0x7fffffffffffffffll));
        else if (a == "--watchdog")
            o.watchdog = static_cast<std::uint64_t>(cli::parseInt(
                "--watchdog", next(), 0, 0x7fffffffffffffffll));
        else if (a == "--max-cycles")
            o.maxCycles = static_cast<std::uint64_t>(cli::parseInt(
                "--max-cycles", next(), 0, 0x7fffffffffffffffll));
        else if (a == "--capture-events") o.captureEvents = true;
        else if (a == "--stats") o.dumpStats = true;
        else if (a == "--csv") o.dumpCsv = true;
        else if (a == "--list") o.listWorkloads = true;
        else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("unknown flag '%s'", a.c_str());
        }
    }
    return o;
}

int
toolMain(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);
    if (o.listWorkloads) {
        for (const auto &n : workloads::allNames())
            std::printf("%s\n", n.c_str());
        return 0;
    }
    if (!workloads::exists(o.workload))
        fatal("unknown workload '%s' (try --list)", o.workload.c_str());
    if (o.link != "nvlink" && o.link != "pcie")
        fatal("unknown link '%s' (expected nvlink | pcie)",
              o.link.c_str());

    func::GlobalMemory mem;
    auto w = workloads::make(o.workload, mem, o.scale);
    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(w.kernel);

    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::schemeFromName(o.scheme);
    cfg.operandLogBytes = o.logKb * 1024;
    cfg.numSms = o.sms;
    cfg.smThreads = o.smThreads;
    cfg.hostLink = o.link == "pcie" ? vm::HostLinkConfig::pcie()
                                    : vm::HostLinkConfig::nvlink();
    cfg.blockSwitching = o.blockSwitching;
    cfg.idealContextSwitch = o.idealSwitch;
    cfg.arithExceptions = o.arithExceptions;
    cfg.watchdogCycles = o.watchdog;
    cfg.maxCycles = o.maxCycles;
    cfg.watchdogCaptureEvents = o.captureEvents;

    vm::VmPolicy policy = parsePolicy(o.policy);
    policy.inject.model = inject::modelFromName(o.injectModel);
    policy.inject.rate = o.injectRate;
    policy.inject.seed = o.injectSeed;

    gpu::Gpu g(cfg);
    auto r = g.run(w.kernel, tr, policy);

    std::printf("workload      %s (scale %d)\n", o.workload.c_str(),
                o.scale);
    std::printf("blocks        %u (%d resident per SM)\n",
                w.kernel.numBlocks(), gpu::blocksPerSm(cfg, w.kernel));
    std::printf("scheme        %s\n", gpu::schemeName(cfg.scheme));
    std::printf("policy        %s over %s\n", o.policy.c_str(),
                cfg.hostLink.name.c_str());
    std::printf("cycles        %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("ipc           %.3f\n", r.ipc());
    std::printf("faults        %.0f (%.0f joined)\n",
                r.stats.get("mmu.faults"),
                r.stats.get("mmu.joined_faults"));
    if (o.dumpStats) {
        std::printf("\n");
        r.stats.dump(std::cout, "  ");
    }
    if (o.dumpCsv) {
        std::printf("\n");
        r.stats.dumpCsv(std::cout);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::run("gexsim-run",
                    [&] { return toolMain(argc, argv); });
}
