/**
 * @file
 * gexsim-run: command-line driver for the simulator. Runs a built-in
 * workload (or a .kasm file via gexsim-asm) under a chosen exception
 * scheme, paging policy and machine configuration, and prints the
 * cycle count and statistics.
 *
 *   gexsim-run --workload sgemm --scheme replay-queue \
 *              --policy demand-paging --link pcie --block-switching \
 *              --stats
 *
 * Every machine/policy knob comes from the knob registry
 * (docs/CONFIGURATION.md); a JSON experiment spec does the same job
 * declaratively:
 *
 *   gexsim-run --config spec.json --workload sgemm
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "gex.hpp"

using namespace gex;

namespace {

struct Options {
    std::string workload = "sgemm";
    int scale = 1;
    bool dumpStats = false;
    bool dumpCsv = false;
    bool listWorkloads = false;
    std::string jsonPath;
};

int
toolMain(int argc, char **argv)
{
    Options o;
    config::RunParams params;

    cli::ArgParser p("gexsim-run", "GPU timing simulation driver");
    p.synopsis("gexsim-run [--config spec.json] [--workload NAME] "
               "[knob flags...]");
    p.option("--workload", "NAME", "built-in workload (see --list)",
             [&](const std::string &v) { o.workload = v; }, "workload");
    p.option("--scale", "N", "workload scale factor (default 1)",
             [&](const std::string &v) {
                 o.scale = cli::parseIntFlag("--scale", v, 1, 1 << 20);
             },
             "scale");
    p.option("--json", "FILE",
             "write the run result (with its resolved_config "
             "manifest) as JSON",
             [&](const std::string &v) { o.jsonPath = v; });
    p.flag("--stats", "dump all statistics",
           [&] { o.dumpStats = true; });
    p.flag("--csv", "dump statistics as CSV", [&] { o.dumpCsv = true; });
    p.flag("--list", "list built-in workloads",
           [&] { o.listWorkloads = true; });
    p.bindKnobs(&params);
    p.parse(argc, argv);

    if (o.listWorkloads) {
        for (const auto &n : workloads::allNames())
            std::printf("%s\n", n.c_str());
        return 0;
    }
    if (!workloads::exists(o.workload))
        fatal("unknown workload '%s' (try --list)", o.workload.c_str());

    func::GlobalMemory mem;
    auto w = workloads::make(o.workload, mem, o.scale);
    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(w.kernel);

    gpu::Gpu g(params.cfg);
    auto r = g.run(w.kernel, tr, params.policy);

    if (params.cfg.checkInvariants) {
        // The architectural half of --check: the in-run sanitizer
        // already proved exactly-once retirement; close the loop
        // against the functional reference (docs/VALIDATION.md).
        check::ArchOracle oracle(o.workload, o.scale, mem, tr);
        oracle.verifyTiming(r, params.cfg);
        oracle.verifyReplay();
    }

    std::printf("workload      %s (scale %d)\n", o.workload.c_str(),
                o.scale);
    std::printf("blocks        %u (%d resident per SM)\n",
                w.kernel.numBlocks(),
                gpu::blocksPerSm(params.cfg, w.kernel));
    std::printf("scheme        %s\n", gpu::schemeName(params.cfg.scheme));
    std::printf("policy        %s over %s\n",
                vm::policyName(params.policy),
                params.cfg.hostLink.name.c_str());
    std::printf("cycles        %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("ipc           %.3f\n", r.ipc());
    std::printf("faults        %.0f (%.0f joined)\n",
                r.stats.get("mmu.faults"),
                r.stats.get("mmu.joined_faults"));
    if (o.dumpStats) {
        std::printf("\n");
        r.stats.dump(std::cout, "  ");
    }
    if (o.dumpCsv) {
        std::printf("\n");
        r.stats.dumpCsv(std::cout);
    }
    if (!o.jsonPath.empty()) {
        std::ofstream os(o.jsonPath);
        if (!os)
            fatal("cannot open '%s' for writing", o.jsonPath.c_str());
        json::Writer jw(os);
        jw.beginObject();
        jw.key("name").value("gexsim-run");
        jw.key("workload").value(o.workload);
        jw.key("scale").value(o.scale);
        jw.key("resolved_config");
        config::KnobRegistry::instance().writeManifest(jw, params);
        jw.key("cycles").value(static_cast<std::uint64_t>(r.cycles));
        jw.key("instructions").value(r.instructions);
        jw.key("ipc").value(r.ipc());
        jw.key("stats");
        r.stats.writeJson(jw);
        jw.endObject();
        os << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::run("gexsim-run",
                    [&] { return toolMain(argc, argv); });
}
