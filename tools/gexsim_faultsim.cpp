/**
 * @file
 * gexsim-faultsim: deterministic fault-injection campaign driver. Runs
 * a (workload x scheme x fault model x rate x seed) grid on the
 * parallel sweep engine, pairing every injected point with a
 * fault-free reference run of the same (workload, scheme), and reports
 * the slowdown each fault regime imposes on each exception scheme —
 * plus the full resilience stat block per run in the JSON export
 * (schema: docs/FAULT_INJECTION.md).
 *
 *   gexsim-faultsim --quick --json BENCH_faultsim.json
 *   gexsim-faultsim --workloads sgemm,lbm --schemes replay-queue \
 *                   --models bernoulli,burst --rates 0.005,0.02 --seeds 3
 *
 * Determinism contract: with a fixed flag set, the campaign's JSON
 * `runs` array is bit-identical at any --jobs count (each grid point
 * owns a private Gpu + FaultInjector whose decisions are pure
 * functions of the campaign seed; see src/inject/rng.hpp).
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "cli.hpp"
#include "gex.hpp"

using namespace gex;

namespace {

struct Options {
    std::string resumePath;
    std::uint64_t watchdog = 2'000'000;
    std::uint64_t maxCycles = 0;
    int retries = 1;
    std::vector<std::string> workloads;
    std::vector<std::string> schemes = {"baseline", "wd-commit",
                                        "wd-lastcheck", "replay-queue",
                                        "operand-log"};
    std::vector<std::string> models = {"bernoulli", "burst", "hot-page",
                                       "first-touch"};
    std::vector<double> rates = {0.002, 0.01};
    int seeds = 1;
    std::string suite = "parboil";
    std::string policy = "resident";
    std::string jsonPath;
    int scale = 1;
    int sms = 16;
    std::uint32_t logKb = 16;
    int jobs = 1;
    int smThreads = 1;
    bool quick = false;
};

void
usage()
{
    std::printf(
        "gexsim-faultsim: deterministic fault-injection campaigns\n\n"
        "  --suite S           parboil | halloc | all (default parboil)\n"
        "  --workloads A,B,C   explicit workload list (overrides --suite)\n"
        "  --schemes A,B,C     schemes to stress (default all five)\n"
        "  --models A,B,C      bernoulli | burst | hot-page | first-touch\n"
        "                      (default all four)\n"
        "  --rates X,Y         base fault rates (default 0.002,0.01)\n"
        "  --seeds N           seeds 1..N per point (default 1)\n"
        "  --policy P          residency policy under the injector\n"
        "                      (default resident)\n"
        "  --scale N           workload scale factor (default 1)\n"
        "  --sms N             number of SMs (default 16)\n"
        "  --log-kb N          operand log size in KB (default 16)\n"
        "  --jobs N            worker threads (default 1; 0 = all cores)\n"
        "  --sm-threads N      SM-tick threads inside each run (default 1;\n"
        "                      results identical at any value)\n"
        "  --json FILE         write the full result set as JSON\n"
        "  --resume FILE       campaign journal: record every finished\n"
        "                      point there and skip points already in it\n"
        "                      (--json output is then byte-identical to\n"
        "                      an uninterrupted run at any --jobs)\n"
        "  --retries N         retries for transiently failed points\n"
        "                      (default 1)\n"
        "  --watchdog N        forward-progress watchdog window in cycles\n"
        "                      (default 2000000; 0 disables)\n"
        "  --max-cycles N      per-point hard cycle budget (default 0 =\n"
        "                      unlimited)\n"
        "  --quick             CI smoke grid: one small workload, two\n"
        "                      schemes, one model/rate/seed, 4 SMs\n");
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

std::vector<double>
splitCsvDouble(const char *flag, const std::string &s)
{
    std::vector<double> out;
    for (const auto &tok : splitCsv(s))
        out.push_back(cli::parseRate(flag, tok));
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    bool workloads_set = false, schemes_set = false, models_set = false;
    bool rates_set = false, seeds_set = false, sms_set = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--suite") o.suite = next();
        else if (a == "--workloads") {
            o.workloads = splitCsv(next());
            workloads_set = true;
        }
        else if (a == "--schemes") {
            o.schemes = splitCsv(next());
            schemes_set = true;
        }
        else if (a == "--models") {
            o.models = splitCsv(next());
            models_set = true;
        }
        else if (a == "--rates") {
            o.rates = splitCsvDouble("--rates", next());
            rates_set = true;
        }
        else if (a == "--seeds") {
            o.seeds = cli::parseIntFlag("--seeds", next(), 1, 1 << 20);
            seeds_set = true;
        }
        else if (a == "--policy") o.policy = next();
        else if (a == "--scale")
            o.scale = cli::parseIntFlag("--scale", next(), 1, 1 << 20);
        else if (a == "--sms") {
            o.sms = cli::parseIntFlag("--sms", next(), 1, 4096);
            sms_set = true;
        }
        else if (a == "--log-kb")
            o.logKb = static_cast<std::uint32_t>(
                cli::parseInt("--log-kb", next(), 1, 1 << 20));
        else if (a == "--jobs")
            o.jobs = cli::parseIntFlag("--jobs", next(), 0, 4096);
        else if (a == "--sm-threads")
            o.smThreads =
                cli::parseIntFlag("--sm-threads", next(), 1, 1024);
        else if (a == "--json") o.jsonPath = next();
        else if (a == "--resume") o.resumePath = next();
        else if (a == "--retries")
            o.retries = cli::parseIntFlag("--retries", next(), 0, 100);
        else if (a == "--watchdog")
            o.watchdog = static_cast<std::uint64_t>(cli::parseInt(
                "--watchdog", next(), 0, 0x7fffffffffffffffll));
        else if (a == "--max-cycles")
            o.maxCycles = static_cast<std::uint64_t>(cli::parseInt(
                "--max-cycles", next(), 0, 0x7fffffffffffffffll));
        else if (a == "--quick") o.quick = true;
        else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("unknown flag '%s'", a.c_str());
        }
    }
    // --quick shrinks every axis the user did not pin explicitly.
    if (o.quick) {
        if (!workloads_set)
            o.workloads = {"sgemm"};
        if (!schemes_set)
            o.schemes = {"baseline", "replay-queue"};
        if (!models_set)
            o.models = {"bernoulli"};
        if (!rates_set)
            o.rates = {0.01};
        if (!seeds_set)
            o.seeds = 1;
        if (!sms_set)
            o.sms = 4;
    }
    if (o.seeds < 1)
        fatal("--seeds must be >= 1");
    return o;
}

std::vector<std::string>
resolveWorkloads(const Options &o)
{
    if (!o.workloads.empty()) {
        for (const auto &w : o.workloads)
            if (!workloads::exists(w))
                fatal("unknown workload '%s'", w.c_str());
        return o.workloads;
    }
    if (o.suite == "parboil")
        return workloads::parboilSuite();
    if (o.suite == "halloc")
        return workloads::hallocSuite();
    if (o.suite == "all")
        return workloads::allNames();
    fatal("unknown suite '%s' (expected parboil | halloc | all)",
          o.suite.c_str());
}

std::string
seriesLabel(inject::ModelKind m, double rate, std::uint64_t seed)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s@%g#%llu", inject::modelName(m),
                  rate, static_cast<unsigned long long>(seed));
    return buf;
}

int
toolMain(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);
    std::vector<std::string> names = resolveWorkloads(o);
    if (o.schemes.empty())
        fatal("--schemes resolved to an empty list");
    if (o.models.empty())
        fatal("--models resolved to an empty list");
    if (o.rates.empty())
        fatal("--rates resolved to an empty list");

    gpu::GpuConfig base = gpu::GpuConfig::baseline();
    base.numSms = o.sms;
    base.operandLogBytes = o.logKb * 1024;
    // Every campaign run — including the fault-free references — emits
    // the resilience block, so all rows share one stat schema.
    base.resilienceStats = true;
    base.smThreads = o.smThreads;
    base.watchdogCycles = o.watchdog;
    base.maxCycles = o.maxCycles;
    vm::VmPolicy policy = vm::policyFromName(o.policy);

    std::vector<inject::ModelKind> models;
    for (const auto &m : o.models) {
        inject::ModelKind k = inject::modelFromName(m);
        if (k == inject::ModelKind::None)
            fatal("--models entries must name a real model, not 'none'");
        models.push_back(k);
    }

    // Grid: per (workload, scheme) one fault-free reference (series
    // "ref") followed by every (model, rate, seed) point. The ref run
    // is the denominator of the slowdown column.
    harness::SweepEngine eng(o.jobs);
    eng.setMaxRetries(o.retries);
    harness::CampaignJournal journal(o.resumePath);
    if (journal.active()) {
        std::size_t loaded = journal.load();
        if (loaded)
            std::printf("resume: %zu completed points in %s\n", loaded,
                        journal.path().c_str());
        eng.setJournal(&journal);
    }
    std::map<std::pair<std::string, std::string>, std::size_t> refIdx;
    for (const auto &w : names) {
        for (const auto &s : o.schemes) {
            harness::RunSpec ref;
            ref.workload = w;
            ref.scale = o.scale;
            ref.cfg = base;
            ref.cfg.scheme = gpu::schemeFromName(s);
            ref.policy = policy;
            ref.group = w + "/" + s;
            ref.series = "ref";
            refIdx[{w, s}] = eng.add(std::move(ref));

            for (inject::ModelKind m : models) {
                for (double rate : o.rates) {
                    for (int seed = 1; seed <= o.seeds; ++seed) {
                        harness::RunSpec rs;
                        rs.workload = w;
                        rs.scale = o.scale;
                        rs.cfg = base;
                        rs.cfg.scheme = gpu::schemeFromName(s);
                        rs.policy = policy;
                        rs.policy.inject.model = m;
                        rs.policy.inject.rate = rate;
                        rs.policy.inject.seed =
                            static_cast<std::uint64_t>(seed);
                        rs.group = w + "/" + s;
                        rs.series = seriesLabel(
                            m, rate, static_cast<std::uint64_t>(seed));
                        eng.add(std::move(rs));
                    }
                }
            }
        }
    }

    std::printf("faultsim: %zu workloads x %zu schemes x (%zu models x "
                "%zu rates x %d seeds + ref) = %zu runs, %d jobs\n",
                names.size(), o.schemes.size(), models.size(),
                o.rates.size(), o.seeds, eng.size(), eng.jobs());

    auto t0 = std::chrono::steady_clock::now();
    std::vector<harness::RunRecord> runs = eng.run();
    auto t1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(t1 - t0).count();

    // Slowdown relative to the same group's fault-free reference
    // (>= 1.0 means injection cost cycles; the paper's resilience
    // question is how each scheme bounds this).
    // A point (or its reference) that did not complete has no
    // meaningful cycle count: it contributes no slowdown and is
    // excluded from the geomeans below.
    for (harness::RunRecord &r : runs) {
        if (!r.ok())
            continue;
        auto it = refIdx.find({r.spec.workload,
                               gpu::schemeName(r.spec.cfg.scheme)});
        if (it == refIdx.end())
            continue;
        const harness::RunRecord &ref = runs[it->second];
        if (!ref.ok() || ref.result.cycles == 0)
            continue;
        r.derived["slowdown"] = static_cast<double>(r.result.cycles) /
                                static_cast<double>(ref.result.cycles);
    }

    std::size_t dropped = 0;
    std::printf("%-12s %-14s %-22s %10s %9s %9s %9s\n", "benchmark",
                "scheme", "series", "cycles", "slowdown", "injected",
                "replays");
    for (const harness::RunRecord &r : runs) {
        if (!r.ok()) {
            ++dropped;
            std::printf("%-12s %-14s %-22s %10s (%d %s)\n",
                        r.spec.workload.c_str(),
                        gpu::schemeName(r.spec.cfg.scheme),
                        r.spec.seriesLabel().c_str(),
                        harness::pointStatusName(r.status), r.attempts,
                        r.attempts == 1 ? "attempt" : "attempts");
            continue;
        }
        std::printf("%-12s %-14s %-22s %10llu %9.3f %9.0f %9.0f\n",
                    r.spec.workload.c_str(),
                    gpu::schemeName(r.spec.cfg.scheme),
                    r.spec.seriesLabel().c_str(),
                    static_cast<unsigned long long>(r.result.cycles),
                    r.derived.count("slowdown") ? r.derived.at("slowdown")
                                                : 0.0,
                    r.result.stats.get("mmu.injected_faults"),
                    r.result.stats.get("resil.replays_total"));
    }

    std::map<std::string, double> gms =
        harness::seriesGeomeans(runs, "slowdown");
    std::printf("geomean slowdown by series:\n");
    for (const auto &kv : gms)
        if (kv.first != "ref")
            std::printf("  %-22s %9.3f\n", kv.first.c_str(), kv.second);
    std::printf("wall time: %.2fs (%d jobs, %zu traces)\n", wall,
                eng.jobs(), eng.traces().size());
    if (dropped)
        std::printf("note: %zu of %zu points did not complete and are "
                    "excluded from slowdowns and geomeans (per-point "
                    "status/error in the JSON export)\n",
                    dropped, runs.size());

    if (!o.jsonPath.empty()) {
        harness::SweepReport rep;
        rep.name = "gexsim_faultsim";
        rep.jobs = eng.jobs();
        rep.wallSeconds = wall;
        rep.deterministic = journal.active();
        rep.runs = std::move(runs);
        rep.geomeans = std::move(gms);
        rep.saveJson(o.jsonPath);
        std::printf("wrote %s\n", o.jsonPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::run("gexsim-faultsim",
                    [&] { return toolMain(argc, argv); });
}
