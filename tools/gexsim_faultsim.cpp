/**
 * @file
 * gexsim-faultsim: deterministic fault-injection campaign driver. Runs
 * a (workload x scheme x fault model x rate x seed) grid on the
 * parallel sweep engine, pairing every injected point with a
 * fault-free reference run of the same (workload, scheme), and reports
 * the slowdown each fault regime imposes on each exception scheme —
 * plus the full resilience stat block per run in the JSON export
 * (schema: docs/FAULT_INJECTION.md) and the campaign's
 * resolved_config manifest.
 *
 *   gexsim-faultsim --quick --json BENCH_faultsim.json
 *   gexsim-faultsim --workloads sgemm,lbm --schemes replay-queue \
 *                   --models bernoulli,burst --rates 0.005,0.02 --seeds 3
 *   gexsim-faultsim --config campaign.json --jobs 4
 *
 * Determinism contract: with a fixed flag set, the campaign's JSON
 * `runs` array is bit-identical at any --jobs count (each grid point
 * owns a private Gpu + FaultInjector whose decisions are pure
 * functions of the campaign seed; see src/inject/rng.hpp).
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "cli.hpp"
#include "gex.hpp"

using namespace gex;

namespace {

struct Options {
    std::string resumePath;
    int retries = 1;
    std::vector<std::string> workloads;
    std::vector<std::string> schemes = {"baseline", "wd-commit",
                                        "wd-lastcheck", "replay-queue",
                                        "operand-log"};
    std::vector<std::string> models = {"bernoulli", "burst", "hot-page",
                                       "first-touch"};
    std::vector<double> rates = {0.002, 0.01};
    int seeds = 1;
    std::string suite = "parboil";
    std::string jsonPath;
    int scale = 1;
    int jobs = 1;
    bool quick = false;

    bool workloadsSet = false, schemesSet = false, modelsSet = false;
    bool ratesSet = false, seedsSet = false;
};

std::vector<double>
splitCsvDouble(const char *flag, const std::string &s)
{
    std::vector<double> out;
    for (const auto &tok : cli::splitCsv(s))
        out.push_back(cli::parseRate(flag, tok));
    return out;
}

std::vector<std::string>
resolveWorkloads(const Options &o)
{
    if (!o.workloads.empty()) {
        for (const auto &w : o.workloads)
            if (!workloads::exists(w))
                fatal("unknown workload '%s'", w.c_str());
        return o.workloads;
    }
    if (o.suite == "parboil")
        return workloads::parboilSuite();
    if (o.suite == "halloc")
        return workloads::hallocSuite();
    if (o.suite == "all")
        return workloads::allNames();
    fatal("unknown suite '%s' (expected parboil | halloc | all)",
          o.suite.c_str());
}

std::string
seriesLabel(inject::ModelKind m, double rate, std::uint64_t seed)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s@%g#%llu", inject::modelName(m),
                  rate, static_cast<unsigned long long>(seed));
    return buf;
}

int
toolMain(int argc, char **argv)
{
    Options o;
    config::RunParams params;

    cli::ArgParser p("gexsim-faultsim",
                     "deterministic fault-injection campaigns");
    p.synopsis("gexsim-faultsim [--config spec.json] [--quick] "
               "[--models A,B --rates X,Y --seeds N] [knob flags...]");
    p.option("--suite", "S", "parboil | halloc | all (default parboil)",
             [&](const std::string &v) { o.suite = v; }, "suite");
    p.option("--workloads", "A,B,C",
             "explicit workload list (overrides --suite)",
             [&](const std::string &v) {
                 o.workloads = cli::splitCsv(v);
                 o.workloadsSet = true;
             },
             "workloads");
    p.option("--schemes", "A,B,C",
             "schemes to stress (default all five)",
             [&](const std::string &v) {
                 o.schemes = cli::splitCsv(v);
                 o.schemesSet = true;
             },
             "schemes");
    p.option("--models", "A,B,C",
             "bernoulli | burst | hot-page | first-touch "
             "(default all four)",
             [&](const std::string &v) {
                 o.models = cli::splitCsv(v);
                 o.modelsSet = true;
             },
             "models");
    p.option("--rates", "X,Y", "base fault rates (default 0.002,0.01)",
             [&](const std::string &v) {
                 o.rates = splitCsvDouble("--rates", v);
                 o.ratesSet = true;
             },
             "rates");
    p.option("--seeds", "N", "seeds 1..N per point (default 1)",
             [&](const std::string &v) {
                 o.seeds = cli::parseIntFlag("--seeds", v, 1, 1 << 20);
                 o.seedsSet = true;
             },
             "seeds");
    p.option("--scale", "N", "workload scale factor (default 1)",
             [&](const std::string &v) {
                 o.scale = cli::parseIntFlag("--scale", v, 1, 1 << 20);
             },
             "scale");
    p.option("--jobs", "N",
             "worker threads (default 1; 0 = all cores)",
             [&](const std::string &v) {
                 o.jobs = cli::parseIntFlag("--jobs", v, 0, 4096);
             });
    p.option("--json", "FILE", "write the full result set as JSON",
             [&](const std::string &v) { o.jsonPath = v; });
    p.option("--resume", "FILE",
             "campaign journal: record every finished point there and "
             "skip points already in it (--json output is then "
             "byte-identical to an uninterrupted run at any --jobs)",
             [&](const std::string &v) { o.resumePath = v; });
    p.option("--retries", "N",
             "retries for transiently failed points (default 1)",
             [&](const std::string &v) {
                 o.retries = cli::parseIntFlag("--retries", v, 0, 100);
             },
             "retries");
    p.flag("--quick",
           "CI smoke grid: one small workload, two schemes, one "
           "model/rate/seed, 4 SMs (axes you pinned are kept)",
           [&] { o.quick = true; });
    p.bindKnobs(&params);
    p.parse(argc, argv);

    // --quick shrinks every axis the user did not pin explicitly.
    if (o.quick) {
        if (!o.workloadsSet)
            o.workloads = {"sgemm"};
        if (!o.schemesSet)
            o.schemes = {"baseline", "replay-queue"};
        if (!o.modelsSet)
            o.models = {"bernoulli"};
        if (!o.ratesSet)
            o.rates = {0.01};
        if (!o.seedsSet)
            o.seeds = 1;
        if (params.cfg.numSms ==
            config::RunParams::baseline().cfg.numSms)
            params.cfg.numSms = 4;
    }

    std::vector<std::string> names = resolveWorkloads(o);
    if (o.schemes.empty())
        fatal("--schemes resolved to an empty list");
    if (o.models.empty())
        fatal("--models resolved to an empty list");
    if (o.rates.empty())
        fatal("--rates resolved to an empty list");

    // Every campaign run — including the fault-free references — emits
    // the resilience block, so all rows share one stat schema.
    params.cfg.resilienceStats = true;

    std::vector<inject::ModelKind> models;
    for (const auto &m : o.models) {
        inject::ModelKind k = inject::modelFromName(m);
        if (k == inject::ModelKind::None)
            fatal("--models entries must name a real model, not 'none'");
        models.push_back(k);
    }

    // Grid: per (workload, scheme) one fault-free reference (series
    // "ref") followed by every (model, rate, seed) point. The ref run
    // is the denominator of the slowdown column.
    harness::SweepEngine eng(o.jobs);
    eng.setMaxRetries(o.retries);
    harness::CampaignJournal journal(o.resumePath);
    if (journal.active()) {
        std::size_t loaded = journal.load();
        if (loaded)
            std::printf("resume: %zu completed points in %s\n", loaded,
                        journal.path().c_str());
        eng.setJournal(&journal);
    }
    std::map<std::pair<std::string, std::string>, std::size_t> refIdx;
    for (const auto &w : names) {
        for (const auto &s : o.schemes) {
            harness::RunSpec ref;
            ref.workload = w;
            ref.scale = o.scale;
            ref.cfg = params.cfg;
            ref.cfg.scheme = gpu::schemeFromName(s);
            ref.policy = params.policy;
            ref.policy.inject = inject::InjectConfig{};
            ref.group = w + "/" + s;
            ref.series = "ref";
            refIdx[{w, s}] = eng.add(std::move(ref));

            for (inject::ModelKind m : models) {
                for (double rate : o.rates) {
                    for (int seed = 1; seed <= o.seeds; ++seed) {
                        harness::RunSpec rs;
                        rs.workload = w;
                        rs.scale = o.scale;
                        rs.cfg = params.cfg;
                        rs.cfg.scheme = gpu::schemeFromName(s);
                        rs.policy = params.policy;
                        rs.policy.inject = inject::InjectConfig{};
                        rs.policy.inject.model = m;
                        rs.policy.inject.rate = rate;
                        rs.policy.inject.seed =
                            static_cast<std::uint64_t>(seed);
                        rs.group = w + "/" + s;
                        rs.series = seriesLabel(
                            m, rate, static_cast<std::uint64_t>(seed));
                        eng.add(std::move(rs));
                    }
                }
            }
        }
    }

    std::printf("faultsim: %zu workloads x %zu schemes x (%zu models x "
                "%zu rates x %d seeds + ref) = %zu runs, %d jobs\n",
                names.size(), o.schemes.size(), models.size(),
                o.rates.size(), o.seeds, eng.size(), eng.jobs());

    auto t0 = std::chrono::steady_clock::now();
    std::vector<harness::RunRecord> runs = eng.run();
    auto t1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(t1 - t0).count();

    // Slowdown relative to the same group's fault-free reference
    // (>= 1.0 means injection cost cycles; the paper's resilience
    // question is how each scheme bounds this).
    // A point (or its reference) that did not complete has no
    // meaningful cycle count: it contributes no slowdown and is
    // excluded from the geomeans below.
    for (harness::RunRecord &r : runs) {
        if (!r.ok())
            continue;
        auto it = refIdx.find({r.spec.workload,
                               gpu::schemeName(r.spec.cfg.scheme)});
        if (it == refIdx.end())
            continue;
        const harness::RunRecord &ref = runs[it->second];
        if (!ref.ok() || ref.result.cycles == 0)
            continue;
        r.derived["slowdown"] = static_cast<double>(r.result.cycles) /
                                static_cast<double>(ref.result.cycles);
    }

    std::size_t dropped = 0;
    std::printf("%-12s %-14s %-22s %10s %9s %9s %9s\n", "benchmark",
                "scheme", "series", "cycles", "slowdown", "injected",
                "replays");
    for (const harness::RunRecord &r : runs) {
        if (!r.ok()) {
            ++dropped;
            std::printf("%-12s %-14s %-22s %10s (%d %s)\n",
                        r.spec.workload.c_str(),
                        gpu::schemeName(r.spec.cfg.scheme),
                        r.spec.seriesLabel().c_str(),
                        harness::pointStatusName(r.status), r.attempts,
                        r.attempts == 1 ? "attempt" : "attempts");
            continue;
        }
        std::printf("%-12s %-14s %-22s %10llu %9.3f %9.0f %9.0f\n",
                    r.spec.workload.c_str(),
                    gpu::schemeName(r.spec.cfg.scheme),
                    r.spec.seriesLabel().c_str(),
                    static_cast<unsigned long long>(r.result.cycles),
                    r.derived.count("slowdown") ? r.derived.at("slowdown")
                                                : 0.0,
                    r.result.stats.get("mmu.injected_faults"),
                    r.result.stats.get("resil.replays_total"));
    }

    std::map<std::string, double> gms =
        harness::seriesGeomeans(runs, "slowdown");
    std::printf("geomean slowdown by series:\n");
    for (const auto &kv : gms)
        if (kv.first != "ref")
            std::printf("  %-22s %9.3f\n", kv.first.c_str(), kv.second);
    std::printf("wall time: %.2fs (%d jobs, %zu traces)\n", wall,
                eng.jobs(), eng.traces().size());
    if (dropped)
        std::printf("note: %zu of %zu points did not complete and are "
                    "excluded from slowdowns and geomeans (per-point "
                    "status/error in the JSON export)\n",
                    dropped, runs.size());

    if (!o.jsonPath.empty()) {
        harness::SweepReport rep;
        rep.name = "gexsim_faultsim";
        rep.jobs = eng.jobs();
        rep.wallSeconds = wall;
        rep.deterministic = journal.active();
        rep.baseConfig = params;
        rep.runs = std::move(runs);
        rep.geomeans = std::move(gms);
        rep.saveJson(o.jsonPath);
        std::printf("wrote %s\n", o.jsonPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::run("gexsim-faultsim",
                    [&] { return toolMain(argc, argv); });
}
