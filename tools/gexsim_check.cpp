/**
 * @file
 * gexsim-check: the self-checking campaign driver (docs/VALIDATION.md).
 * Generates CounterRng-seeded random points in the (workload, policy,
 * fault model, machine-shape) space and executes each under all five
 * exception schemes with the invariant sanitizer armed, checking
 *
 *  - the runtime protocol/structural invariants (SimSanitizer),
 *  - the architectural oracle (functional replay + retired-instruction
 *    coverage), and
 *  - smThreads 1-vs-N bit-identity of the full statistics set.
 *
 * On the first failure the case is greedily shrunk to a minimal
 * reproducer, written as a JSON spec `gexsim-run --config FILE`
 * replays, and the driver exits with code 7 (InvariantError).
 *
 *   gexsim-check --seed 1 --cases 20 --repro repro.json
 *   gexsim-check --quick            # CI smoke: few cases, fast grid
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "cli.hpp"
#include "gex.hpp"

using namespace gex;

namespace {

struct Options {
    std::uint64_t seed = 1;
    int cases = 20;
    std::string workloadsCsv;
    std::string reproPath = "gexsim-check-repro.json";
    std::string jsonPath;
    bool captureEvents = true;
    int smThreadsAlt = 4;
    bool quick = false;
    bool listCases = false;
};

int
toolMain(int argc, char **argv)
{
    Options o;

    cli::ArgParser p("gexsim-check",
                     "differential fuzz campaigns over the simulator: "
                     "sanitizer + architectural oracle + smThreads "
                     "bit-identity on random configuration points");
    p.synopsis("gexsim-check [--seed N] [--cases N] [--quick] "
               "[--repro FILE]");
    p.option("--seed", "N", "campaign seed (default 1)",
             [&](const std::string &v) {
                 o.seed = static_cast<std::uint64_t>(
                     cli::parseInt("--seed", v, 0, INT64_MAX));
             });
    p.option("--cases", "N", "number of generated cases (default 20)",
             [&](const std::string &v) {
                 o.cases = cli::parseIntFlag("--cases", v, 1, 1 << 20);
             });
    p.option("--workloads", "A,B,...",
             "workload pool (default: a curated fast subset)",
             [&](const std::string &v) { o.workloadsCsv = v; });
    p.option("--repro", "FILE",
             "where to write the shrunk reproducer spec on failure "
             "(default gexsim-check-repro.json)",
             [&](const std::string &v) { o.reproPath = v; });
    p.option("--json", "FILE", "write a campaign summary as JSON",
             [&](const std::string &v) { o.jsonPath = v; });
    p.option("--sm-threads-alt", "N",
             "second thread count for the bit-identity diff "
             "(default 4; 1 disables)",
             [&](const std::string &v) {
                 o.smThreadsAlt =
                     cli::parseIntFlag("--sm-threads-alt", v, 1, 256);
             });
    p.flag("--no-capture-events",
           "run without the last-K event ring (reports lose the "
           "event tail)",
           [&] { o.captureEvents = false; });
    p.flag("--quick", "CI smoke: 6 cases, alt thread count 2",
           [&] { o.quick = true; });
    p.flag("--list-cases",
           "print the generated cases without running them",
           [&] { o.listCases = true; });
    p.parse(argc, argv);

    if (o.quick) {
        o.cases = 6;
        o.smThreadsAlt = 2;
    }

    check::FuzzOptions fo;
    fo.seed = o.seed;
    fo.cases = o.cases;
    fo.captureEvents = o.captureEvents;
    fo.smThreadsAlt = o.smThreadsAlt;
    if (!o.workloadsCsv.empty())
        fo.workloads = cli::splitCsv(o.workloadsCsv);

    check::FuzzCampaign camp(fo);

    if (o.listCases) {
        for (int i = 0; i < o.cases; ++i) {
            const check::FuzzCase c =
                camp.generate(static_cast<std::uint64_t>(i));
            std::printf("case %3d: %s\n", i,
                        check::FuzzCampaign::describeCase(c).c_str());
        }
        return 0;
    }

    std::printf("gexsim-check: seed %llu, %d cases x %zu schemes, "
                "smThreads 1 vs %d\n",
                static_cast<unsigned long long>(o.seed), o.cases,
                gpu::allSchemes().size(), o.smThreadsAlt);

    int passed = 0;
    check::FuzzFailure fail;
    const bool ok = camp.run(&fail, [&](const check::FuzzCase &c,
                                        bool caseOk) {
        std::printf("case %3llu: %-4s %s\n",
                    static_cast<unsigned long long>(c.index),
                    caseOk ? "ok" : "FAIL",
                    check::FuzzCampaign::describeCase(c).c_str());
        std::fflush(stdout);
        if (caseOk)
            ++passed;
    });

    if (!o.jsonPath.empty()) {
        std::ofstream os(o.jsonPath);
        if (!os)
            fatal("cannot open '%s' for writing", o.jsonPath.c_str());
        json::Writer jw(os);
        jw.beginObject();
        jw.key("name").value("gexsim-check");
        jw.key("seed").value(static_cast<std::uint64_t>(o.seed));
        jw.key("cases").value(o.cases);
        jw.key("passed").value(passed);
        jw.key("ok").value(ok);
        if (!ok) {
            jw.key("failed_index")
                .value(static_cast<std::uint64_t>(fail.c.index));
            jw.key("failure_kind").value(fail.kind);
        }
        jw.endObject();
        os << "\n";
    }

    if (ok) {
        std::printf("gexsim-check: all %d cases passed\n", o.cases);
        return 0;
    }

    std::printf("\ncase %llu failed (%s); shrinking...\n",
                static_cast<unsigned long long>(fail.c.index),
                fail.kind.c_str());
    const check::FuzzCase shrunk = camp.shrink(fail);
    const std::string spec = check::FuzzCampaign::reproSpecJson(shrunk);
    {
        std::ofstream os(o.reproPath);
        if (!os)
            fatal("cannot open '%s' for writing", o.reproPath.c_str());
        os << spec << "\n";
    }
    std::printf("minimal reproducer: %s\n",
                check::FuzzCampaign::describeCase(shrunk).c_str());
    std::printf("wrote %s; replay with:\n  gexsim-run --config %s\n",
                o.reproPath.c_str(), o.reproPath.c_str());

    // Surface the original failure through the taxonomy guard so the
    // process exits with the error's own code (7 for InvariantError).
    ErrorContext ctx;
    ctx.workload = fail.c.workload;
    ctx.scheme = gpu::schemeName(fail.c.params.cfg.scheme);
    throw InvariantError(
        strprintf("campaign case %llu failed [%s]; reproducer in %s\n%s",
                  static_cast<unsigned long long>(fail.c.index),
                  fail.kind.c_str(), o.reproPath.c_str(),
                  fail.message.c_str()),
        std::move(ctx));
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::run("gexsim-check",
                    [&] { return toolMain(argc, argv); });
}
