#!/usr/bin/env python3
"""Check that every relative markdown link in the repo's docs resolves.

Scans all tracked *.md files for [text](target) links, skips absolute
URLs and pure anchors, resolves each target against the file that
contains it, and fails with a list of dead links if any target does
not exist. Run from anywhere inside the repository:

    python3 tools/check_doc_links.py

CI runs this on every push (.github/workflows/ci.yml, docs job).
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def links_in(text):
    """Yield link targets outside fenced code blocks."""
    fenced = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            continue
        if fenced:
            continue
        for m in LINK_RE.finditer(line):
            yield m.group(1)


def main():
    repo = Path(__file__).resolve().parent.parent
    md_files = sorted(
        p for p in repo.rglob("*.md")
        if "build" not in p.parts and ".git" not in p.parts
    )
    dead = []
    checked = 0
    for md in md_files:
        for target in links_in(md.read_text(encoding="utf-8")):
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            checked += 1
            if not (md.parent / path).exists():
                dead.append(f"{md.relative_to(repo)}: ({target})")
    if dead:
        print(f"dead links ({len(dead)}):")
        for d in dead:
            print(" ", d)
        return 1
    print(f"doc links OK: {checked} relative links across "
          f"{len(md_files)} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
