/**
 * @file
 * gexsim-trace: run a kernel with the pipeline observer attached and
 * export the instruction-lifecycle event stream as a Chrome-trace
 * (Perfetto) JSON file — each SM a process, each warp a track,
 * instructions as issue→commit slices, scheme events (fetch barriers,
 * TLB checks, faults, squashes, replays, context switches) as
 * instants.
 *
 *   gexsim-trace --trace-out out.json
 *   gexsim-trace --workload sgemm --scheme wd-lastcheck \
 *                --policy resident --trace-out sgemm.json --view 40
 *
 * The machine knobs come from the knob registry, but with
 * trace-friendly defaults: a small vector-add under the replay-queue
 * scheme with demand paging on a single SM, so the default trace shows
 * squash + replay at the page faults. Load the output at
 * https://ui.perfetto.dev or chrome://tracing. Run with --help for the
 * full flag list.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "gex.hpp"

using namespace gex;

namespace {

/** Two-block vector add whose inputs span several pages. */
func::Kernel
makeVecadd(func::GlobalMemory &mem, vm::AddressSpace &as, int scale)
{
    kasm::KernelBuilder b("vecadd");
    b.setNumParams(3);
    b.s2r(0, isa::SpecialReg::GlobalTid);
    b.ldparam(1, 0); // a
    b.ldparam(2, 1); // b
    b.ldparam(3, 2); // out
    b.shli(4, 0, 3); // byte offset
    b.iadd(5, 1, 4);
    b.ldGlobal(6, 5); // a[i]
    b.iadd(5, 2, 4);
    b.ldGlobal(7, 5); // b[i]
    b.fadd(8, 6, 7);
    b.iadd(5, 3, 4);
    b.stGlobal(5, 0, 8);
    b.exit();

    const std::uint32_t blocks = 2 * static_cast<std::uint32_t>(scale);
    const std::uint32_t threads = 256;
    const std::uint64_t n = static_cast<std::uint64_t>(blocks) * threads;
    func::Kernel k;
    k.program = b.build();
    k.grid = {blocks, 1, 1};
    k.block = {threads, 1, 1};
    Addr a = as.allocate(n * 8), bb = as.allocate(n * 8),
         out = as.allocate(n * 8);
    k.params = {a, bb, out};
    k.buffers = {{"a", a, n * 8, func::BufferKind::Input},
                 {"b", bb, n * 8, func::BufferKind::Input},
                 {"out", out, n * 8, func::BufferKind::Output}};
    for (std::uint64_t i = 0; i < n; ++i) {
        mem.writeF64(a + i * 8, static_cast<double>(i));
        mem.writeF64(bb + i * 8, 1.0);
    }
    return k;
}

/** Forward each event to both consumers. */
class TeeObserver : public obs::PipelineObserver
{
  public:
    TeeObserver(obs::PipelineObserver &a, obs::PipelineObserver &b)
        : a_(a), b_(b)
    {}
    void
    event(const obs::PipeEvent &e) override
    {
        a_.event(e);
        b_.event(e);
    }

  private:
    obs::PipelineObserver &a_;
    obs::PipelineObserver &b_;
};

int
toolMain(int argc, char **argv)
{
    std::string traceOut;
    std::string workload = "vecadd"; ///< in-process default, makeVecadd
    int scale = 1;
    int view = 0; ///< also print the last N events as a table

    // Trace-friendly knob defaults, applied before parse() so any
    // --config spec or knob flag overrides them: replay-queue over
    // demand paging shows squash/replay activity, one SM keeps the
    // trace small.
    config::RunParams params;
    params.cfg.scheme = gpu::Scheme::ReplayQueue;
    params.cfg.numSms = 1;
    params.policy = vm::VmPolicy::demandPaging();

    cli::ArgParser p("gexsim-trace",
                     "pipeline event trace exporter (Chrome trace JSON)");
    p.synopsis("gexsim-trace --trace-out FILE [--workload NAME] "
               "[--view N] [knob flags...]");
    p.option("--trace-out", "FILE", "output file (required)",
             [&](const std::string &v) { traceOut = v; });
    p.option("--workload", "NAME",
             "built-in workload, or 'vecadd' (default: a small vector "
             "add built in-process)",
             [&](const std::string &v) { workload = v; }, "workload");
    p.option("--scale", "N", "workload scale factor (default 1)",
             [&](const std::string &v) {
                 scale = cli::parseIntFlag("--scale", v, 1, 1 << 20);
             },
             "scale");
    p.option("--view", "N", "also print the last N pipeline events",
             [&](const std::string &v) {
                 view = cli::parseIntFlag("--view", v, 0, 1 << 20);
             });
    p.bindKnobs(&params);
    p.parse(argc, argv);

    if (traceOut.empty())
        fatal("--trace-out is required (--help for usage)");

    func::GlobalMemory mem;
    vm::AddressSpace as;
    func::Kernel kernel;
    if (workload == "vecadd") {
        kernel = makeVecadd(mem, as, scale);
    } else if (workloads::exists(workload)) {
        kernel = workloads::make(workload, mem, scale).kernel;
    } else {
        fatal("unknown workload '%s'", workload.c_str());
    }
    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(kernel);

    obs::ChromeTraceWriter trace_writer;
    trace_writer.setProgram(&kernel.program);
    obs::PipelineView pview(
        static_cast<std::size_t>(view > 0 ? view : 1));
    pview.setProgram(&kernel.program);
    TeeObserver tee(trace_writer, pview);

    gpu::Gpu g(params.cfg);
    g.setObserver(view > 0
                      ? static_cast<obs::PipelineObserver *>(&tee)
                      : &trace_writer);
    auto r = g.run(kernel, tr, params.policy);

    std::ofstream out(traceOut);
    if (!out)
        fatal("cannot open '%s' for writing", traceOut.c_str());
    trace_writer.write(out);

    std::printf("workload  %s (scale %d), scheme %s, policy %s\n",
                workload.c_str(), scale,
                gpu::schemeName(params.cfg.scheme),
                vm::policyName(params.policy));
    std::printf("cycles    %llu, instructions %llu, faults %.0f\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                r.stats.get("mmu.faults"));
    std::printf("trace     %zu events -> %s\n", trace_writer.eventCount(),
                traceOut.c_str());
    if (view > 0) {
        std::printf("\n");
        pview.render(std::cout);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::run("gexsim-trace",
                    [&] { return toolMain(argc, argv); });
}
