/**
 * @file
 * gexsim-trace: run a kernel with the pipeline observer attached and
 * export the instruction-lifecycle event stream as a Chrome-trace
 * (Perfetto) JSON file — each SM a process, each warp a track,
 * instructions as issue→commit slices, scheme events (fetch barriers,
 * TLB checks, faults, squashes, replays, context switches) as
 * instants.
 *
 *   gexsim-trace --trace-out out.json
 *   gexsim-trace --workload sgemm --scheme wd-lastcheck \
 *                --policy resident --trace-out sgemm.json --view 40
 *
 * The default run is a small vector-add under the replay-queue scheme
 * with demand paging, so the trace shows squash + replay at the page
 * faults. Load the output at https://ui.perfetto.dev or
 * chrome://tracing.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "gex.hpp"

using namespace gex;

namespace {

struct Options {
    std::string traceOut;
    std::string workload = "vecadd"; ///< built-in default, see makeVecadd
    int scale = 1;
    std::string scheme = "replay-queue";
    std::string policy = "demand-paging";
    int sms = 1;
    int view = 0; ///< also print the last N events as a table
};

void
usage()
{
    std::printf(
        "gexsim-trace: pipeline event trace exporter (Chrome trace "
        "JSON)\n\n"
        "  --trace-out FILE    output file (required)\n"
        "  --workload NAME     built-in workload, or 'vecadd' (default:\n"
        "                      a small vector add built in-process)\n"
        "  --scale N           workload scale factor (default 1)\n"
        "  --scheme S          exception scheme (default replay-queue)\n"
        "  --policy P          resident | demand-paging |\n"
        "                      output-faults[-local] | heap-faults[-local]"
        "\n"
        "  --sms N             number of SMs (default 1: small traces)\n"
        "  --view N            also print the last N pipeline events\n");
}

vm::VmPolicy
parsePolicy(const std::string &p)
{
    if (p == "resident") return vm::VmPolicy::allResident();
    if (p == "demand-paging") return vm::VmPolicy::demandPaging();
    if (p == "output-faults") return vm::VmPolicy::outputFaults(false);
    if (p == "output-faults-local") return vm::VmPolicy::outputFaults(true);
    if (p == "heap-faults") return vm::VmPolicy::heapFaults(false);
    if (p == "heap-faults-local") return vm::VmPolicy::heapFaults(true);
    fatal("unknown policy '%s'", p.c_str());
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--trace-out") o.traceOut = next();
        else if (a == "--workload") o.workload = next();
        else if (a == "--scale")
            o.scale = cli::parseIntFlag("--scale", next(), 1, 1 << 20);
        else if (a == "--scheme") o.scheme = next();
        else if (a == "--policy") o.policy = next();
        else if (a == "--sms")
            o.sms = cli::parseIntFlag("--sms", next(), 1, 4096);
        else if (a == "--view")
            o.view = cli::parseIntFlag("--view", next(), 0, 1 << 20);
        else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("unknown flag '%s'", a.c_str());
        }
    }
    if (o.traceOut.empty()) {
        usage();
        fatal("--trace-out is required");
    }
    return o;
}

/** Two-block vector add whose inputs span several pages. */
func::Kernel
makeVecadd(func::GlobalMemory &mem, vm::AddressSpace &as, int scale)
{
    kasm::KernelBuilder b("vecadd");
    b.setNumParams(3);
    b.s2r(0, isa::SpecialReg::GlobalTid);
    b.ldparam(1, 0); // a
    b.ldparam(2, 1); // b
    b.ldparam(3, 2); // out
    b.shli(4, 0, 3); // byte offset
    b.iadd(5, 1, 4);
    b.ldGlobal(6, 5); // a[i]
    b.iadd(5, 2, 4);
    b.ldGlobal(7, 5); // b[i]
    b.fadd(8, 6, 7);
    b.iadd(5, 3, 4);
    b.stGlobal(5, 0, 8);
    b.exit();

    const std::uint32_t blocks = 2 * static_cast<std::uint32_t>(scale);
    const std::uint32_t threads = 256;
    const std::uint64_t n = static_cast<std::uint64_t>(blocks) * threads;
    func::Kernel k;
    k.program = b.build();
    k.grid = {blocks, 1, 1};
    k.block = {threads, 1, 1};
    Addr a = as.allocate(n * 8), bb = as.allocate(n * 8),
         out = as.allocate(n * 8);
    k.params = {a, bb, out};
    k.buffers = {{"a", a, n * 8, func::BufferKind::Input},
                 {"b", bb, n * 8, func::BufferKind::Input},
                 {"out", out, n * 8, func::BufferKind::Output}};
    for (std::uint64_t i = 0; i < n; ++i) {
        mem.writeF64(a + i * 8, static_cast<double>(i));
        mem.writeF64(bb + i * 8, 1.0);
    }
    return k;
}

/** Forward each event to both consumers. */
class TeeObserver : public obs::PipelineObserver
{
  public:
    TeeObserver(obs::PipelineObserver &a, obs::PipelineObserver &b)
        : a_(a), b_(b)
    {}
    void
    event(const obs::PipeEvent &e) override
    {
        a_.event(e);
        b_.event(e);
    }

  private:
    obs::PipelineObserver &a_;
    obs::PipelineObserver &b_;
};

int
toolMain(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);

    func::GlobalMemory mem;
    vm::AddressSpace as;
    func::Kernel kernel;
    if (o.workload == "vecadd") {
        kernel = makeVecadd(mem, as, o.scale);
    } else if (workloads::exists(o.workload)) {
        kernel = workloads::make(o.workload, mem, o.scale).kernel;
    } else {
        fatal("unknown workload '%s'", o.workload.c_str());
    }
    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(kernel);

    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::schemeFromName(o.scheme);
    cfg.numSms = o.sms;

    obs::ChromeTraceWriter trace_writer;
    trace_writer.setProgram(&kernel.program);
    obs::PipelineView view(static_cast<std::size_t>(
        o.view > 0 ? o.view : 1));
    view.setProgram(&kernel.program);
    TeeObserver tee(trace_writer, view);

    gpu::Gpu g(cfg);
    g.setObserver(o.view > 0
                      ? static_cast<obs::PipelineObserver *>(&tee)
                      : &trace_writer);
    auto r = g.run(kernel, tr, parsePolicy(o.policy));

    std::ofstream out(o.traceOut);
    if (!out)
        fatal("cannot open '%s' for writing", o.traceOut.c_str());
    trace_writer.write(out);

    std::printf("workload  %s (scale %d), scheme %s, policy %s\n",
                o.workload.c_str(), o.scale, gpu::schemeName(cfg.scheme),
                o.policy.c_str());
    std::printf("cycles    %llu, instructions %llu, faults %.0f\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                r.stats.get("mmu.faults"));
    std::printf("trace     %zu events -> %s\n", trace_writer.eventCount(),
                o.traceOut.c_str());
    if (o.view > 0) {
        std::printf("\n");
        view.render(std::cout);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::run("gexsim-trace",
                    [&] { return toolMain(argc, argv); });
}
