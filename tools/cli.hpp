/**
 * @file
 * Shared command-line plumbing for the gexsim_* drivers: validated
 * numeric flag parsing (a bad value is a one-line ConfigError, not a
 * silent atoi(0)) and the top-level error guard that maps the
 * structured error taxonomy (common/error.hpp) onto stable process
 * exit codes (docs/ROBUSTNESS.md, "Exit codes").
 */

#ifndef GEX_TOOLS_CLI_HPP
#define GEX_TOOLS_CLI_HPP

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/error.hpp"
#include "common/log.hpp"

namespace gex::cli {

/**
 * Process exit codes of every gexsim tool, one per taxonomy kind so a
 * script (or the CI smokes) can branch on the failure class without
 * parsing stderr.
 */
enum ExitCode : int {
    ExitOk = 0,
    ExitInternal = 1, ///< non-taxonomy exception (simulator bug)
    ExitConfig = 2,   ///< ConfigError: bad flags / names / files
    ExitTrace = 3,    ///< TraceError
    ExitDeadlock = 4, ///< DeadlockError
    ExitLivelock = 5, ///< LivelockError (watchdog)
    ExitBudget = 6,   ///< CycleBudgetExceeded (--max-cycles)
};

inline int
exitCodeFor(const GexError &e)
{
    if (dynamic_cast<const ConfigError *>(&e)) return ExitConfig;
    if (dynamic_cast<const TraceError *>(&e)) return ExitTrace;
    if (dynamic_cast<const DeadlockError *>(&e)) return ExitDeadlock;
    if (dynamic_cast<const LivelockError *>(&e)) return ExitLivelock;
    if (dynamic_cast<const CycleBudgetExceeded *>(&e)) return ExitBudget;
    return ExitInternal;
}

/**
 * Parse @p text (the value of flag @p flag) as a decimal integer in
 * [@p lo, @p hi]; ConfigError on garbage, partial parses or range
 * violations — "--jobs banana" and "--sms 0" both die with one line.
 */
inline long long
parseInt(const char *flag, const std::string &text, long long lo,
         long long hi)
{
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        throw ConfigError(strprintf("%s needs an integer, got '%s'",
                                    flag, text.c_str()));
    if (v < lo || v > hi)
        throw ConfigError(
            strprintf("%s must be in [%lld, %lld], got %lld", flag, lo,
                      hi, v));
    return v;
}

/** parseInt, bounded to [lo, hi] of int. */
inline int
parseIntFlag(const char *flag, const std::string &text, int lo, int hi)
{
    return static_cast<int>(parseInt(flag, text, lo, hi));
}

/** Parse a real number in [@p lo, @p hi]; ConfigError otherwise. */
inline double
parseDouble(const char *flag, const std::string &text, double lo,
            double hi)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        throw ConfigError(strprintf("%s needs a number, got '%s'", flag,
                                    text.c_str()));
    if (!(v >= lo && v <= hi))
        throw ConfigError(strprintf("%s must be in [%g, %g], got %g",
                                    flag, lo, hi, v));
    return v;
}

/** Parse a probability/rate in [0, 1]; ConfigError otherwise. */
inline double
parseRate(const char *flag, const std::string &text)
{
    return parseDouble(flag, text, 0.0, 1.0);
}

/**
 * Top-level guard every tool's main() delegates to. Flag/config
 * mistakes print one line; simulation errors print the full report
 * (context line + diagnostics bundle); each kind maps to its ExitCode.
 */
template <typename Fn>
int
run(const char *prog, Fn &&fn)
{
    try {
        return fn();
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s: error: %s\n", prog, e.what());
        return ExitConfig;
    } catch (const GexError &e) {
        std::fprintf(stderr, "%s: %s\n", prog, e.report().c_str());
        return exitCodeFor(e);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: unexpected error: %s\n", prog,
                     e.what());
        return ExitInternal;
    }
}

} // namespace gex::cli

#endif // GEX_TOOLS_CLI_HPP
