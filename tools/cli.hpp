/**
 * @file
 * Forwarder kept for the historical include spelling: the shared CLI
 * plumbing (exit codes, validated flag parsing, the registry-driven
 * ArgParser) lives in src/config/cli.hpp since the knob-registry
 * refactor, next to the KnobRegistry it is generated from.
 */

#ifndef GEX_TOOLS_CLI_HPP
#define GEX_TOOLS_CLI_HPP

#include "config/cli.hpp"

#endif // GEX_TOOLS_CLI_HPP
