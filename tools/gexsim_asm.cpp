/**
 * @file
 * gexsim-asm: assemble, inspect and run .kasm kernel files.
 *
 *   gexsim-asm kernel.kasm                    # assemble + disassemble
 *   gexsim-asm kernel.kasm --run [options]    # run on the simulator
 *
 * When running, buffers are synthesized automatically: each kernel
 * parameter becomes the base of a --buffer-kb sized buffer filled with
 * a deterministic pattern, passed in parameter order. The machine
 * configuration comes from the knob registry (--scheme, --sms, ...,
 * or a --config spec file); run with --help for the full flag list.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli.hpp"
#include "gex.hpp"

using namespace gex;

namespace {

int
toolMain(int argc, char **argv)
{
    std::string path;
    bool run = false, dumpStats = false;
    std::uint32_t blocks = 16, threads = 128;
    std::uint64_t bufferKb = 256;
    config::RunParams params;

    cli::ArgParser p("gexsim-asm",
                     "assemble, inspect and run .kasm kernel files");
    p.synopsis("gexsim-asm FILE.kasm [--run] [--blocks N] [--threads N] "
               "[--buffer-kb N] [knob flags...]");
    p.positional("FILE.kasm", "kernel source to assemble",
                 [&](const std::string &v) { path = v; });
    p.flag("--run", "run the kernel on the simulator after assembly",
           [&] { run = true; });
    p.option("--blocks", "N", "grid size in blocks (default 16)",
             [&](const std::string &v) {
                 blocks = static_cast<std::uint32_t>(
                     cli::parseInt("--blocks", v, 1, 1 << 20));
             },
             "blocks");
    p.option("--threads", "N", "threads per block (default 128)",
             [&](const std::string &v) {
                 threads = static_cast<std::uint32_t>(
                     cli::parseInt("--threads", v, 1, 1024));
             },
             "threads");
    p.option("--buffer-kb", "N",
             "size of each synthesized parameter buffer (default 256)",
             [&](const std::string &v) {
                 bufferKb = static_cast<std::uint64_t>(
                     cli::parseInt("--buffer-kb", v, 1, 1 << 20));
             },
             "buffer-kb");
    p.flag("--stats", "dump all statistics after the run",
           [&] { dumpStats = true; });
    p.bindKnobs(&params);
    p.parse(argc, argv);

    if (path.empty())
        fatal("a FILE.kasm argument is required (--help for usage)");

    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();

    isa::Program prog = kasm::assemble(ss.str());
    std::printf("%s", prog.disassemble().c_str());
    if (!run)
        return 0;

    func::GlobalMemory mem;
    vm::AddressSpace as;
    func::Kernel k;
    k.program = prog;
    k.grid = {blocks, 1, 1};
    k.block = {threads, 1, 1};
    Rng rng(7);
    for (int pi = 0; pi < prog.numParams(); ++pi) {
        Addr base = as.allocate(bufferKb * 1024);
        k.params.push_back(base);
        k.buffers.push_back({"param" + std::to_string(pi), base,
                             bufferKb * 1024,
                             pi == 0 ? func::BufferKind::Input
                                     : func::BufferKind::InOut});
        for (std::uint64_t i = 0; i < bufferKb * 128; ++i)
            mem.write64(base + i * 8, rng.below(1 << 16));
    }

    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(k);

    gpu::Gpu g(params.cfg);
    auto r = g.run(k, tr, params.policy);
    std::printf("\n%u blocks x %u threads under %s: %llu cycles, ipc "
                "%.2f\n",
                blocks, threads, gpu::schemeName(params.cfg.scheme),
                static_cast<unsigned long long>(r.cycles), r.ipc());
    if (dumpStats)
        r.stats.dump(std::cout, "  ");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::run("gexsim-asm", [&] { return toolMain(argc, argv); });
}
