/**
 * @file
 * gexsim-asm: assemble, inspect and run .kasm kernel files.
 *
 *   gexsim-asm kernel.kasm                    # assemble + disassemble
 *   gexsim-asm kernel.kasm --run [options]    # run on the simulator
 *
 * When running, buffers are synthesized automatically: each kernel
 * parameter becomes the base of a --buffer-kb sized buffer filled with
 * a deterministic pattern, passed in parameter order.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli.hpp"
#include "gex.hpp"

using namespace gex;

namespace {

int
toolMain(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: gexsim-asm FILE.kasm [--run] [--blocks N] "
                     "[--threads N] [--buffer-kb N] [--scheme S] "
                     "[--stats]\n");
        return 1;
    }
    std::string path = argv[1];
    bool run = false, dump_stats = false;
    std::uint32_t blocks = 16, threads = 128;
    std::uint64_t buffer_kb = 256;
    std::string scheme = "baseline";
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--run") run = true;
        else if (a == "--blocks")
            blocks = static_cast<std::uint32_t>(
                cli::parseInt("--blocks", next(), 1, 1 << 20));
        else if (a == "--threads")
            threads = static_cast<std::uint32_t>(
                cli::parseInt("--threads", next(), 1, 1024));
        else if (a == "--buffer-kb")
            buffer_kb = static_cast<std::uint64_t>(
                cli::parseInt("--buffer-kb", next(), 1, 1 << 20));
        else if (a == "--scheme") scheme = next();
        else if (a == "--stats") dump_stats = true;
        else fatal("unknown flag '%s'", a.c_str());
    }

    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();

    isa::Program prog = kasm::assemble(ss.str());
    std::printf("%s", prog.disassemble().c_str());
    if (!run)
        return 0;

    func::GlobalMemory mem;
    vm::AddressSpace as;
    func::Kernel k;
    k.program = prog;
    k.grid = {blocks, 1, 1};
    k.block = {threads, 1, 1};
    Rng rng(7);
    for (int p = 0; p < prog.numParams(); ++p) {
        Addr base = as.allocate(buffer_kb * 1024);
        k.params.push_back(base);
        k.buffers.push_back({"param" + std::to_string(p), base,
                             buffer_kb * 1024,
                             p == 0 ? func::BufferKind::Input
                                    : func::BufferKind::InOut});
        for (std::uint64_t i = 0; i < buffer_kb * 128; ++i)
            mem.write64(base + i * 8, rng.below(1 << 16));
    }

    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(k);

    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    if (scheme == "wd-commit") cfg.scheme = gpu::Scheme::WarpDisableCommit;
    else if (scheme == "wd-lastcheck")
        cfg.scheme = gpu::Scheme::WarpDisableLastCheck;
    else if (scheme == "replay-queue") cfg.scheme = gpu::Scheme::ReplayQueue;
    else if (scheme == "operand-log") cfg.scheme = gpu::Scheme::OperandLog;
    else if (scheme != "baseline") fatal("unknown scheme '%s'",
                                         scheme.c_str());
    gpu::Gpu g(cfg);
    auto r = g.run(k, tr);
    std::printf("\n%u blocks x %u threads under %s: %llu cycles, ipc "
                "%.2f\n",
                blocks, threads, gpu::schemeName(cfg.scheme),
                static_cast<unsigned long long>(r.cycles), r.ipc());
    if (dump_stats)
        r.stats.dump(std::cout, "  ");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::run("gexsim-asm", [&] { return toolMain(argc, argv); });
}
