/**
 * @file
 * Differential fuzz campaigns over the simulator itself
 * (docs/VALIDATION.md): CounterRng-seeded random points in the
 * (workload, policy, fault model, knob) space, each executed under all
 * five exception schemes with the invariant sanitizer on, checked
 * against the architectural oracle and the smThreads-differential
 * bit-identity contract. Any failure is greedily shrunk to a minimal
 * reproducer and serialized as a spec.json one `gexsim-run --config`
 * invocation replays.
 *
 * Case generation is a pure function of (campaign seed, case index):
 * re-running a campaign with the same seed regenerates the same cases
 * in the same order, so a reported failing index is itself a repro.
 */

#ifndef GEX_CHECK_FUZZ_HPP
#define GEX_CHECK_FUZZ_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "config/knob_registry.hpp"
#include "gpu/config.hpp"
#include "harness/sweep.hpp"

namespace gex::check {

/** One generated fuzz point (scheme is chosen by the runner). */
struct FuzzCase {
    std::string workload;
    int scale = 1;
    config::RunParams params;
    std::uint64_t index = 0; ///< case index within the campaign
};

/** A failed case, pinned to the scheme (and thread count) that failed. */
struct FuzzFailure {
    FuzzCase c; ///< params carry the failing scheme and smThreads
    std::string kind;    ///< error taxonomy name ("InvariantError", ...)
    std::string message; ///< full report text
};

struct FuzzOptions {
    std::uint64_t seed = 1;
    int cases = 20;
    /** Workload pool; empty = a curated fast subset. */
    std::vector<std::string> workloads;
    /** Attach the last-K event ring to every run's sanitizer. */
    bool captureEvents = true;
    /** Second thread count for the bit-identity diff (<=1 disables). */
    int smThreadsAlt = 4;
};

class FuzzCampaign
{
  public:
    explicit FuzzCampaign(FuzzOptions opt);

    const FuzzOptions &options() const { return opt_; }

    /** The curated default workload pool. */
    static const std::vector<std::string> &defaultWorkloads();

    /** Deterministically generate case @p index of this campaign. */
    FuzzCase generate(std::uint64_t index) const;

    /**
     * Execute @p c under every scheme: sanitizer on, oracle replay +
     * timing verification, smThreads differential. True on pass; on
     * failure fills @p fail and returns false.
     */
    bool runCase(const FuzzCase &c, FuzzFailure *fail);

    /**
     * Run the whole campaign, stopping at the first failure. @p
     * progress (optional) is called after each case with its index and
     * pass/fail. True when every case passed.
     */
    bool run(FuzzFailure *fail,
             const std::function<void(const FuzzCase &, bool)> &progress
             = {});

    /**
     * Greedy shrink: try resetting each non-default knob (fault model
     * first, then UC1/UC2 switches, then machine-shape knobs) and keep
     * every reset under which the case still fails. The result fails
     * for the same scheme with a minimal set of non-default knobs.
     */
    FuzzCase shrink(const FuzzFailure &f);

    /**
     * Serialize @p c as a gexsim spec: {"workload", "scale", every
     * non-default non-preset knob}. `gexsim-run --config <file>`
     * replays it exactly (including --check and an armed violation).
     */
    static std::string reproSpecJson(const FuzzCase &c);

    /** One-line human summary: workload plus non-default knobs. */
    static std::string describeCase(const FuzzCase &c);

  private:
    /** Run one scheme of one case; false fills @p fail. */
    bool runScheme(const FuzzCase &c, gpu::Scheme scheme,
                   FuzzFailure *fail);

    FuzzOptions opt_;
    harness::TraceCache cache_;
};

} // namespace gex::check

#endif // GEX_CHECK_FUZZ_HPP
