#include "check/fuzz.hpp"

#include <sstream>

#include "check/oracle.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "gpu/gpu.hpp"
#include "inject/rng.hpp"

namespace gex::check {

namespace {

/** Write a knob value with its native JSON type. */
void
writeKnobValue(json::Writer &w, const config::Knob &k,
               const config::KnobValue &v)
{
    switch (k.type) {
      case config::KnobType::Int:
        if (v.i >= 0)
            w.value(static_cast<std::uint64_t>(v.i));
        else
            w.value(static_cast<int>(v.i));
        break;
      case config::KnobType::Real:
        w.value(v.r);
        break;
      case config::KnobType::Bool:
        w.value(v.b);
        break;
      case config::KnobType::Enum:
        w.value(v.e);
        break;
    }
}

} // namespace

FuzzCampaign::FuzzCampaign(FuzzOptions opt) : opt_(std::move(opt))
{
    if (opt_.workloads.empty())
        opt_.workloads = defaultWorkloads();
}

const std::vector<std::string> &
FuzzCampaign::defaultWorkloads()
{
    // Small, fast kernels covering the behaviours the invariants care
    // about: coalesced and scattered memory, atomics, divergence,
    // barriers, SFU arithmetic (arith exceptions), and the allocator.
    static const std::vector<std::string> kPool = [] {
        std::vector<std::string> pool;
        for (const char *name :
             {"sgemm", "spmv", "bfs", "histo", "stencil", "mri-q",
              "ha-prob"})
            if (workloads::exists(name))
                pool.emplace_back(name);
        GEX_ASSERT(!pool.empty(), "no fuzz workloads registered");
        return pool;
    }();
    return kPool;
}

FuzzCase
FuzzCampaign::generate(std::uint64_t index) const
{
    FuzzCase c;
    c.index = index;
    c.scale = 1;
    c.params = config::RunParams::baseline();

    const inject::CounterRng rng(opt_.seed, index);
    const auto &reg = config::KnobRegistry::instance();
    auto setEnum = [&](const char *name, const std::string &v) {
        reg.find(name)->set(c.params, config::KnobValue::ofEnum(v));
    };
    auto setInt = [&](const char *name, std::int64_t v) {
        reg.find(name)->set(c.params, config::KnobValue::ofInt(v));
    };
    auto setReal = [&](const char *name, double v) {
        reg.find(name)->set(c.params, config::KnobValue::ofReal(v));
    };
    auto setBool = [&](const char *name, bool v) {
        reg.find(name)->set(c.params, config::KnobValue::ofBool(v));
    };

    c.workload = opt_.workloads[static_cast<std::size_t>(
        rng.at(0) % opt_.workloads.size())];

    // Residency policy: where faults come from.
    static const char *kPolicies[] = {"resident", "demand-paging",
                                      "output-faults", "heap-faults"};
    setEnum("policy", kPolicies[rng.at(1) % 4]);

    // Fault model layered on top of the policy.
    static const char *kModels[] = {"none", "bernoulli", "burst",
                                    "hot-page"};
    const char *model = kModels[rng.at(2) % 4];
    setEnum("inject.model", model);
    if (std::string(model) != "none") {
        static const double kRates[] = {1e-4, 5e-4, 1e-3};
        setReal("inject.rate", kRates[rng.at(3) % 3]);
        setInt("inject.seed",
               static_cast<std::int64_t>(rng.at(4) % 100000));
    }

    // UC1 block switching and the arithmetic-exception extension.
    if (rng.realAt(5) < 0.5)
        setBool("block-switching", true);
    if (rng.realAt(6) < 0.25)
        setBool("ideal-switch", true);
    if (rng.realAt(7) < 0.5)
        setBool("arith-exceptions", true);

    // Machine-shape knobs that stress the checked structures: LSU
    // queue (replay pressure), TLB reach (fault paths), operand-log
    // capacity (back-pressure), SM count (event interleaving).
    static const std::int64_t kLsuDepths[] = {4, 8, 16};
    setInt("sm.lsu-queue-depth", kLsuDepths[rng.at(8) % 3]);
    static const std::int64_t kTlbEntries[] = {8, 16, 64};
    setInt("l1tlb.entries", kTlbEntries[rng.at(9) % 3]);
    static const std::int64_t kLogKb[] = {16, 32, 64};
    setInt("operand-log-kb", kLogKb[rng.at(10) % 3]);
    setInt("sms", 2 + static_cast<std::int64_t>(rng.at(11) % 3));

    // Self-checking contract of every fuzz run.
    c.params.cfg.checkInvariants = true;
    c.params.cfg.watchdogCaptureEvents = opt_.captureEvents;
    return c;
}

bool
FuzzCampaign::runScheme(const FuzzCase &c, gpu::Scheme scheme,
                        FuzzFailure *fail)
{
    const harness::TracedWorkload &tw = cache_.get(c.workload, c.scale);
    const ArchOracle oracle(c.workload, c.scale, *tw.mem, tw.trace);

    config::RunParams p = c.params;
    p.cfg.scheme = scheme;
    int failedThreads = 1;
    try {
        p.cfg.smThreads = 1;
        gpu::Gpu g1(p.cfg);
        const gpu::SimResult r1 = g1.run(tw.kernel, tw.trace, p.policy);
        oracle.verifyTiming(r1, p.cfg);
        if (opt_.smThreadsAlt > 1) {
            failedThreads = opt_.smThreadsAlt;
            p.cfg.smThreads = opt_.smThreadsAlt;
            gpu::Gpu gn(p.cfg);
            const gpu::SimResult rn =
                gn.run(tw.kernel, tw.trace, p.policy);
            if (rn.stats.toJson() != r1.stats.toJson()) {
                ErrorContext ctx;
                ctx.scheme = gpu::schemeName(scheme);
                ctx.workload = c.workload;
                throw InvariantError(
                    strprintf("differential oracle: smThreads %d "
                              "diverged from smThreads 1 (results must "
                              "be bit-identical at any thread count)",
                              opt_.smThreadsAlt),
                    std::move(ctx));
            }
        }
    } catch (const GexError &e) {
        if (fail) {
            fail->c = c;
            fail->c.params.cfg.scheme = scheme;
            fail->c.params.cfg.smThreads = failedThreads;
            fail->kind = e.kind();
            fail->message = e.report();
        }
        return false;
    }
    return true;
}

bool
FuzzCampaign::runCase(const FuzzCase &c, FuzzFailure *fail)
{
    // Oracle piece 1: the functional execution itself is reproducible.
    const harness::TracedWorkload &tw = cache_.get(c.workload, c.scale);
    const ArchOracle oracle(c.workload, c.scale, *tw.mem, tw.trace);
    try {
        oracle.verifyReplay();
    } catch (const GexError &e) {
        if (fail) {
            fail->c = c;
            fail->kind = e.kind();
            fail->message = e.report();
        }
        return false;
    }
    for (gpu::Scheme s : gpu::allSchemes())
        if (!runScheme(c, s, fail))
            return false;
    return true;
}

bool
FuzzCampaign::run(FuzzFailure *fail,
                  const std::function<void(const FuzzCase &, bool)>
                      &progress)
{
    for (int i = 0; i < opt_.cases; ++i) {
        FuzzCase c = generate(static_cast<std::uint64_t>(i));
        FuzzFailure ff;
        const bool ok = runCase(c, &ff);
        if (progress)
            progress(c, ok);
        if (!ok) {
            if (fail)
                *fail = ff;
            return false;
        }
    }
    return true;
}

FuzzCase
FuzzCampaign::shrink(const FuzzFailure &f)
{
    FuzzCase best = f.c;
    const gpu::Scheme scheme = best.params.cfg.scheme;
    const auto &reg = config::KnobRegistry::instance();

    // Reset order: biggest simplification first (fault model, then the
    // behaviour switches, then machine shape). Every reset that keeps
    // the case failing under the pinned scheme is kept.
    static const char *kResets[] = {
        "inject.model",     "inject.rate",   "inject.seed",
        "block-switching",  "ideal-switch",  "arith-exceptions",
        "policy",           "operand-log-kb", "sm.lsu-queue-depth",
        "l1tlb.entries",    "sms",
    };
    for (const char *name : kResets) {
        const config::Knob *k = reg.find(name);
        if (!k || k->get(best.params) == k->def)
            continue;
        FuzzCase cand = best;
        k->set(cand.params, k->def);
        cand.params.cfg.scheme = scheme; // presets never touch it
        if (!runScheme(cand, scheme, nullptr))
            best = cand;
    }
    best.params.cfg.scheme = scheme;
    return best;
}

std::string
FuzzCampaign::reproSpecJson(const FuzzCase &c)
{
    std::ostringstream os;
    json::Writer w(os);
    w.beginObject();
    w.key("workload").value(c.workload);
    w.key("scale").value(static_cast<std::uint64_t>(c.scale));
    // Non-default knobs only, in registry order; presets are skipped
    // (their component knobs already carry the exact state). Exec-only
    // knobs (check, check.violate, sm-threads, capture-events) are
    // included: the repro must re-arm the checkers that tripped.
    for (const config::Knob &k : config::KnobRegistry::instance().knobs()) {
        if (k.preset)
            continue;
        const config::KnobValue v = k.get(c.params);
        if (v == k.def)
            continue;
        w.key(k.name);
        writeKnobValue(w, k, v);
    }
    w.endObject();
    return os.str();
}

std::string
FuzzCampaign::describeCase(const FuzzCase &c)
{
    std::string out = strprintf("%s x%d", c.workload.c_str(), c.scale);
    for (const config::Knob &k : config::KnobRegistry::instance().knobs()) {
        if (k.preset)
            continue;
        const config::KnobValue v = k.get(c.params);
        if (v == k.def)
            continue;
        out += strprintf(" %s=%s", k.name.c_str(), v.toString().c_str());
    }
    return out;
}

} // namespace gex::check
