#include "check/oracle.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "func/functional_sim.hpp"
#include "func/memory.hpp"
#include "gpu/gpu.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

namespace gex::check {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
mix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
}

} // namespace

std::string
ArchFingerprint::toString() const
{
    return strprintf("mem %016llx, trace %016llx, %llu insts",
                     static_cast<unsigned long long>(memDigest),
                     static_cast<unsigned long long>(traceDigest),
                     static_cast<unsigned long long>(dynamicInsts));
}

std::uint64_t
traceDigest(const trace::KernelTrace &trace)
{
    std::uint64_t h = kFnvOffset;
    for (const trace::BlockTrace &bt : trace.blocks) {
        mix(h, bt.blockId);
        for (const trace::WarpTrace &wt : bt.warps) {
            mix(h, wt.insts.size());
            for (const trace::TraceInst &ti : wt.insts) {
                mix(h, ti.staticIdx);
                mix(h, static_cast<std::uint64_t>(ti.active));
                mix(h, (static_cast<std::uint64_t>(ti.numLines) << 17) ^
                           ti.numActive ^ (ti.arithFault ? 1ull << 40 : 0));
                const Addr *lines = wt.lines(ti);
                for (std::uint16_t l = 0; l < ti.numLines; ++l)
                    mix(h, lines[l]);
            }
        }
    }
    return h;
}

ArchFingerprint
fingerprint(const func::GlobalMemory &mem, const trace::KernelTrace &trace)
{
    ArchFingerprint fp;
    fp.memDigest = mem.digest();
    fp.traceDigest = traceDigest(trace);
    fp.dynamicInsts = trace.dynamicInsts();
    return fp;
}

ArchOracle::ArchOracle(std::string workload, int scale,
                       const func::GlobalMemory &mem,
                       const trace::KernelTrace &trace)
    : workload_(std::move(workload)), scale_(scale),
      ref_(fingerprint(mem, trace))
{
}

void
ArchOracle::verifyTiming(const gpu::SimResult &r,
                         const gpu::GpuConfig &cfg) const
{
    if (r.instructions == ref_.dynamicInsts)
        return;
    ErrorContext ctx;
    ctx.scheme = gpu::schemeName(cfg.scheme);
    ctx.workload = workload_;
    throw InvariantError(
        strprintf("architectural oracle: timing simulator retired %llu "
                  "instructions but the functional trace has %llu",
                  static_cast<unsigned long long>(r.instructions),
                  static_cast<unsigned long long>(ref_.dynamicInsts)),
        std::move(ctx));
}

void
ArchOracle::verifyReplay() const
{
    func::GlobalMemory mem;
    workloads::Workload wl = workloads::make(workload_, mem, scale_);
    func::FunctionalSim sim(mem);
    trace::KernelTrace replay = sim.run(wl.kernel);
    ArchFingerprint fp = fingerprint(mem, replay);
    if (fp == ref_)
        return;
    ErrorContext ctx;
    ctx.workload = workload_;
    throw InvariantError(
        strprintf("architectural oracle: functional replay diverged "
                  "from the reference execution (replay: %s; "
                  "reference: %s)",
                  fp.toString().c_str(), ref_.toString().c_str()),
        std::move(ctx));
}

} // namespace gex::check
