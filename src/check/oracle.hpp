/**
 * @file
 * ArchOracle: the architectural half of the self-checking simulation
 * (docs/VALIDATION.md). The timing simulator is trace-driven — it
 * never computes values — so the architectural contract decomposes
 * into three checkable pieces:
 *
 *  1. the functional simulator is deterministic: rebuilding the
 *     workload from scratch and re-executing it reproduces the final
 *     memory image and the per-warp committed instruction streams
 *     bit-for-bit (verifyReplay);
 *  2. the timing simulator retires exactly the traced stream: every
 *     traced instruction commits exactly once under any scheme, fault
 *     model, smThreads and UC1/UC2 setting — enforced per event by
 *     SimSanitizer's coverage bitmap, and summarized here by the
 *     committed-instruction count (verifyTiming);
 *  3. schemes are equivalent: with 1 and 2 holding for every scheme
 *     over the same trace, all five produce the same architectural
 *     final state, so cross-scheme divergence reduces to fingerprint
 *     or instruction-count inequality (the fuzz campaign's oracle).
 *
 * Violations raise InvariantError (exit code 7).
 */

#ifndef GEX_CHECK_ORACLE_HPP
#define GEX_CHECK_ORACLE_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace gex::func {
class GlobalMemory;
}
namespace gex::trace {
struct KernelTrace;
}
namespace gex::gpu {
struct SimResult;
struct GpuConfig;
}

namespace gex::check {

/** Architectural identity of one executed workload. */
struct ArchFingerprint {
    /** func::GlobalMemory::digest() of the final memory image. */
    std::uint64_t memDigest = 0;
    /** FNV-1a over every warp's committed instruction stream. */
    std::uint64_t traceDigest = 0;
    std::uint64_t dynamicInsts = 0;

    bool
    operator==(const ArchFingerprint &o) const
    {
        return memDigest == o.memDigest && traceDigest == o.traceDigest &&
               dynamicInsts == o.dynamicInsts;
    }
    bool operator!=(const ArchFingerprint &o) const { return !(*this == o); }

    std::string toString() const;
};

/**
 * FNV-1a digest of the per-warp committed instruction streams: every
 * (block, warp, staticIdx, active mask, coalesced lines, arithFault)
 * in program order. Two traces with equal digests describe the same
 * architectural execution.
 */
std::uint64_t traceDigest(const trace::KernelTrace &trace);

/** Fingerprint a finished functional execution. */
ArchFingerprint fingerprint(const func::GlobalMemory &mem,
                            const trace::KernelTrace &trace);

/**
 * One workload's oracle: captures the reference fingerprint at
 * construction, then checks timing results and replays against it.
 */
class ArchOracle
{
  public:
    ArchOracle(std::string workload, int scale,
               const func::GlobalMemory &mem,
               const trace::KernelTrace &trace);

    const ArchFingerprint &reference() const { return ref_; }

    /**
     * Check a timing-simulation result against the trace: the retired
     * instruction count must equal the trace's dynamic instruction
     * count (SimSanitizer's coverage bitmap guarantees the stronger
     * exactly-once property per instruction when --check is on).
     * Throws InvariantError on divergence.
     */
    void verifyTiming(const gpu::SimResult &r,
                      const gpu::GpuConfig &cfg) const;

    /**
     * Rebuild the workload on a fresh GlobalMemory, re-execute it on
     * the functional simulator, and diff the final memory image and
     * committed instruction streams against the reference. Throws
     * InvariantError on divergence.
     */
    void verifyReplay() const;

  private:
    std::string workload_;
    int scale_;
    ArchFingerprint ref_;
};

} // namespace gex::check

#endif // GEX_CHECK_ORACLE_HPP
