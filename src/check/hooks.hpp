/**
 * @file
 * Test-only violation hooks of the invariant sanitizer: one-shot
 * flags that arm a single deliberate protocol violation inside the
 * pipeline, so the sanitizer's *detection* path can be exercised end
 * to end (seeded-violation tests, the CI exit-7 smoke). Armed through
 * the exec-only `check.violate` knob; docs/VALIDATION.md.
 *
 * The flags are atomics because the consuming sites run in the
 * parallel SM-compute phase: exactly one SM wins the exchange, so a
 * hook fires once per run no matter the smThreads setting.
 */

#ifndef GEX_CHECK_HOOKS_HPP
#define GEX_CHECK_HOOKS_HPP

#include <atomic>
#include <string>

namespace gex::check {

/**
 * Consume a one-shot hook: true exactly once after arming. The load
 * keeps the disarmed fast path a read-only branch.
 */
inline bool
take(std::atomic<bool> &flag)
{
    return flag.load(std::memory_order_relaxed) &&
           flag.exchange(false, std::memory_order_relaxed);
}

/** The deliberate violations the test harness can arm (at most one). */
struct ViolationHooks {
    /** Issue stage: release a replay-queue source hold at operand
     *  read, violating the scheme's hold-until-last-check protocol. */
    std::atomic<bool> breakRqHold{false};
    /** Operand-collect: drop an operand-log release, leaking the
     *  partition bytes the entry held. */
    std::atomic<bool> leakLogEntry{false};
    /** Issue stage: schedule an event into the past, breaking the
     *  event heap's (cycle, seq) monotonicity. */
    std::atomic<bool> corruptEventSeq{false};
    /** Commit stage: emit a second Committed event for the same
     *  dynamic instruction (exactly-once retirement violation). */
    std::atomic<bool> doubleCommit{false};

    /** Arm the named hook ("none" arms nothing); ConfigError on an
     *  unknown name (defined out of line, src/check/sanitizer.cpp). */
    void arm(const std::string &name);
};

} // namespace gex::check

#endif // GEX_CHECK_HOOKS_HPP
