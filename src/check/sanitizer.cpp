#include "check/sanitizer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "gpu/config.hpp"
#include "isa/program.hpp"
#include "sm/exception_model.hpp"
#include "sm/pipeline.hpp"
#include "trace/trace.hpp"
#include "vm/fill_unit.hpp"
#include "vm/tlb.hpp"

namespace gex::check {

void
ViolationHooks::arm(const std::string &name)
{
    if (name == "none")
        return;
    if (name == "rq-hold")
        breakRqHold = true;
    else if (name == "ol-leak")
        leakLogEntry = true;
    else if (name == "event-seq")
        corruptEventSeq = true;
    else if (name == "double-commit")
        doubleCommit = true;
    else
        throw ConfigError(strprintf(
            "unknown violation hook '%s' (none, rq-hold, ol-leak, "
            "event-seq, double-commit)",
            name.c_str()));
}

SimSanitizer::SimSanitizer(const gpu::GpuConfig &cfg,
                           obs::PipelineObserver *next,
                           const obs::LastKObserver *tail)
    : cfg_(cfg), next_(next), tail_(tail)
{
    sm::SchemePolicy pol = sm::SchemePolicy::make(cfg.scheme);
    wdScheme_ = pol.fetchDisableOnGlobalMem;
    olScheme_ = pol.usesOperandLog;
    rqScheme_ = pol.holdSourcesUntilLastCheck;
    preemptible_ = pol.preemptible;
}

void
SimSanitizer::beginRun(const isa::Program &program,
                       const trace::KernelTrace &trace, int blocksPerSm,
                       int warpsPerBlock,
                       std::uint32_t logPartitionBytes,
                       const vm::SystemMmu *mmu)
{
    program_ = &program;
    trace_ = &trace;
    mmu_ = mmu;
    partitionBytes_ = logPartitionBytes;

    sms_.assign(static_cast<std::size_t>(cfg_.numSms), SmShadow{});
    for (SmShadow &s : sms_) {
        s.warps.assign(
            static_cast<std::size_t>(blocksPerSm * warpsPerBlock),
            WarpShadow{});
        s.slots.assign(static_cast<std::size_t>(blocksPerSm),
                       SlotShadow{});
    }

    coverage_.clear();
    coverage_.resize(trace.blocks.size());
    for (std::size_t b = 0; b < trace.blocks.size(); ++b) {
        const trace::BlockTrace &bt = trace.blocks[b];
        coverage_[b].resize(bt.warps.size());
        for (std::size_t w = 0; w < bt.warps.size(); ++w)
            coverage_[b][w].committed.assign(bt.warps[w].insts.size(),
                                             0);
    }
}

void
SimSanitizer::fail(const std::string &what, Cycle cycle, int sm,
                   int warp) const
{
    ErrorContext ctx;
    ctx.cycle = cycle;
    ctx.sm = sm;
    ctx.warp = warp;
    ctx.scheme = gpu::schemeName(cfg_.scheme);
    std::string diag;
    if (tail_) {
        diag = "  last pipeline events:\n";
        diag += tail_->render();
    } else {
        diag = "  (recent-event capture off; add --capture-events for "
               "the event tail)\n";
    }
    throw InvariantError(what, std::move(ctx), std::move(diag));
}

SimSanitizer::WarpShadow &
SimSanitizer::warpAt(const obs::PipeEvent &e)
{
    return sms_[static_cast<std::size_t>(e.sm)]
        .warps[static_cast<std::size_t>(e.warp)];
}

bool
SimSanitizer::staticIsGlobalMem(std::uint32_t staticIdx) const
{
    if (!program_ || staticIdx == obs::PipeEvent::kNoIndex)
        return false;
    return program_->at(staticIdx).isGlobalMem();
}

void
SimSanitizer::event(const obs::PipeEvent &e)
{
    // Forward first: the violating event must reach the last-K ring
    // (and any user observer) before a violation renders it.
    if (next_)
        next_->event(e);
    if (e.sm < 0 || static_cast<std::size_t>(e.sm) >= sms_.size())
        return;
    SmShadow &s = sms_[static_cast<std::size_t>(e.sm)];

    using K = obs::PipeEventKind;
    switch (e.kind) {
      case K::Fetched: {
        WarpShadow &w = warpAt(e);
        if (w.fetchDisabled) {
            if (e.traceIdx == w.allowFetchIdx)
                w.allowFetchIdx = obs::PipeEvent::kNoIndex;
            else
                fail(strprintf(
                         "warp-disable violation: instruction fetched "
                         "past an engaged fetch barrier (trace idx %u)",
                         e.traceIdx),
                     e.cycle, e.sm, e.warp);
        }
        break;
      }
      case K::FetchDisabled: {
        if (!wdScheme_)
            fail("fetch barrier engaged outside a warp-disable scheme",
                 e.cycle, e.sm, e.warp);
        WarpShadow &w = warpAt(e);
        if (w.fetchDisabled)
            fail("warp-disable exclusivity violation: second fetch "
                 "barrier engaged while one is already in flight",
                 e.cycle, e.sm, e.warp);
        w.fetchDisabled = true;
        w.allowFetchIdx = e.traceIdx;
        break;
      }
      case K::FetchReenabled: {
        WarpShadow &w = warpAt(e);
        if (!w.fetchDisabled)
            fail("fetch re-enabled without an engaged fetch barrier",
                 e.cycle, e.sm, e.warp);
        w.fetchDisabled = false;
        w.allowFetchIdx = obs::PipeEvent::kNoIndex;
        break;
      }
      case K::Issued: {
        WarpShadow &w = warpAt(e);
        auto [it, fresh] = w.inflight.emplace(e.traceIdx, InstShadow{});
        if (!fresh)
            fail(strprintf("instruction issued twice without an "
                           "intervening commit or squash (trace idx %u)",
                           e.traceIdx),
                 e.cycle, e.sm, e.warp);
        it->second.isGlobalMem = staticIsGlobalMem(e.staticIdx);
        break;
      }
      case K::SourcesHeld:
        break;
      case K::SourcesReleased: {
        if (!rqScheme_)
            break;
        WarpShadow &w = warpAt(e);
        auto it = w.inflight.find(e.traceIdx);
        // A squashed instruction's release is exempt: Squashed erases
        // the shadow entry before its SourcesReleased arrives.
        if (it != w.inflight.end() && it->second.isGlobalMem &&
            !it->second.tlbChecked)
            fail(strprintf(
                     "replay-queue hold violation: sources of "
                     "global-memory instruction (trace idx %u) released "
                     "before its last TLB check",
                     e.traceIdx),
                 e.cycle, e.sm, e.warp);
        break;
      }
      case K::LogAllocated: {
        if (!olScheme_)
            fail("operand-log allocation outside the operand-log "
                 "scheme",
                 e.cycle, e.sm, e.warp);
        if (e.slot < 0 ||
            static_cast<std::size_t>(e.slot) >= s.slots.size())
            break;
        SlotShadow &sl = s.slots[static_cast<std::size_t>(e.slot)];
        sl.logBytes += static_cast<std::int64_t>(e.arg);
        if (sl.logBytes > static_cast<std::int64_t>(partitionBytes_))
            fail(strprintf("operand-log capacity violation: partition "
                           "%d holds %lld bytes of a %u-byte partition",
                           static_cast<int>(e.slot),
                           static_cast<long long>(sl.logBytes),
                           partitionBytes_),
                 e.cycle, e.sm, e.warp);
        break;
      }
      case K::LogReleased: {
        if (e.slot < 0 ||
            static_cast<std::size_t>(e.slot) >= s.slots.size())
            break;
        SlotShadow &sl = s.slots[static_cast<std::size_t>(e.slot)];
        sl.logBytes -= static_cast<std::int64_t>(e.arg);
        if (sl.logBytes < 0)
            fail(strprintf("operand-log refcount violation: partition "
                           "%d released below zero",
                           static_cast<int>(e.slot)),
                 e.cycle, e.sm, e.warp);
        break;
      }
      case K::TlbChecked: {
        WarpShadow &w = warpAt(e);
        auto it = w.inflight.find(e.traceIdx);
        if (it == w.inflight.end())
            fail(strprintf("last TLB check for an instruction that is "
                           "not in flight (trace idx %u)",
                           e.traceIdx),
                 e.cycle, e.sm, e.warp);
        it->second.tlbChecked = true;
        break;
      }
      case K::Faulted: {
        if (!preemptible_)
            fail("precise-baseline violation: preemptible fault event "
                 "under a stall-on-fault scheme",
                 e.cycle, e.sm, e.warp);
        // The fault reaction clears the warp-disable barrier without a
        // FetchReenabled event (the squash re-fetches the barrier
        // instruction); mirror that silently.
        WarpShadow &w = warpAt(e);
        w.fetchDisabled = false;
        w.allowFetchIdx = obs::PipeEvent::kNoIndex;
        break;
      }
      case K::Squashed: {
        if (!preemptible_)
            fail("precise-baseline violation: squash under a "
                 "stall-on-fault scheme",
                 e.cycle, e.sm, e.warp);
        WarpShadow &w = warpAt(e);
        if (w.inflight.erase(e.traceIdx) == 0)
            fail(strprintf("squash of an instruction that is not in "
                           "flight (trace idx %u)",
                           e.traceIdx),
                 e.cycle, e.sm, e.warp);
        break;
      }
      case K::Replayed:
        if (!preemptible_)
            fail("precise-baseline violation: replay under a "
                 "stall-on-fault scheme",
                 e.cycle, e.sm, e.warp);
        break;
      case K::TrapEntered:
        if (!preemptible_)
            fail("precise-baseline violation: trap entry under a "
                 "stall-on-fault scheme",
                 e.cycle, e.sm, e.warp);
        break;
      case K::Committed: {
        WarpShadow &w = warpAt(e);
        if (w.blockId == kNoBlock)
            fail("commit on a warp with no installed thread block",
                 e.cycle, e.sm, e.warp);
        WarpCoverage &cov =
            coverage_[w.blockId][static_cast<std::size_t>(
                w.warpInBlock)];
        if (e.traceIdx >= cov.committed.size())
            fail(strprintf("commit beyond the warp's trace (idx %u of "
                           "%zu traced instructions)",
                           e.traceIdx, cov.committed.size()),
                 e.cycle, e.sm, e.warp);
        if (cov.committed[e.traceIdx])
            fail(strprintf("exactly-once retirement violation: "
                           "instruction committed twice (block %u, "
                           "warp %d, trace idx %u)",
                           w.blockId, w.warpInBlock, e.traceIdx),
                 e.cycle, e.sm, e.warp);
        cov.committed[e.traceIdx] = 1;
        ++cov.count;
        if (w.inflight.erase(e.traceIdx) == 0)
            fail(strprintf("commit of an instruction that never "
                           "issued (trace idx %u)",
                           e.traceIdx),
                 e.cycle, e.sm, e.warp);
        break;
      }
      case K::ContextSaved: {
        if (e.slot < 0 ||
            static_cast<std::size_t>(e.slot) >= s.slots.size())
            break;
        SlotShadow &sl = s.slots[static_cast<std::size_t>(e.slot)];
        for (int j = 0; j < sl.numWarps; ++j) {
            WarpShadow &w =
                s.warps[static_cast<std::size_t>(sl.firstWarp + j)];
            if (w.fetchDisabled)
                fail("context saved with an engaged fetch barrier",
                     e.cycle, e.sm, sl.firstWarp + j);
            if (!w.inflight.empty())
                fail(strprintf("context saved with %zu in-flight "
                               "instructions",
                               w.inflight.size()),
                     e.cycle, e.sm, sl.firstWarp + j);
            w.blockId = kNoBlock;
            w.warpInBlock = -1;
        }
        sl.blockId = kNoBlock;
        break;
      }
      case K::ContextRestored:
        break; // mapping updates through onBlockInstalled
    }
}

void
SimSanitizer::onCycleStart(int sm, Cycle now)
{
    SmShadow &s = sms_[static_cast<std::size_t>(sm)];
    if (now < s.now)
        fail(strprintf("event-heap violation: SM clock moved backwards "
                       "(tick at cycle %llu after cycle %llu)",
                       static_cast<unsigned long long>(now),
                       static_cast<unsigned long long>(s.now)),
             now, sm, -1);
    s.now = now;
    // Pop-order monotonicity is a per-tick property: processEvents
    // pops everything with cycle <= now in (cycle, seq) heap order
    // each tick, so only within one tick does a regression indicate a
    // corrupted heap (see onEventPopped).
    s.popped = false;
}

void
SimSanitizer::onEventScheduled(int sm, Cycle cycle, std::uint64_t seq,
                               int kind)
{
    static const char *const kEvNames[] = {
        "SourceRelease", "LastCheck",   "Commit",    "FaultReact",
        "WarpResume",    "SaveReady",   "SaveDone",  "RestoreDone",
        "SlotRetry",     "TrapEnter",
    };
    SmShadow &s = sms_[static_cast<std::size_t>(sm)];
    // Never-into-the-past, with one documented carve-out: a warp
    // joining a fault that has been outstanding for a while inherits
    // the *original* detect time from the TLB's pending-miss entry
    // (vm/tlb.cpp merge path), so its FaultReact legitimately targets
    // a past cycle — the event still fires on the very next tick.
    if (cycle < s.now &&
        kind != static_cast<int>(sm::EvKind::FaultReact) &&
        s.deferred.empty()) {
        const char *name =
            kind >= 0 && kind < 10 ? kEvNames[kind] : "?";
        s.deferred = strprintf(
            "event-heap violation: %s event scheduled into the past "
            "(target cycle %llu < current cycle %llu)",
            name, static_cast<unsigned long long>(cycle),
            static_cast<unsigned long long>(s.now));
        s.deferredCycle = s.now;
    }
    if (!s.liveSeqs.insert(seq).second && s.deferred.empty()) {
        s.deferred = strprintf(
            "event-heap violation: duplicate event sequence number "
            "%llu",
            static_cast<unsigned long long>(seq));
        s.deferredCycle = s.now;
    }
}

void
SimSanitizer::onEventPopped(int sm, Cycle cycle, std::uint64_t seq)
{
    SmShadow &s = sms_[static_cast<std::size_t>(sm)];
    if (s.popped &&
        (cycle < s.lastPopCycle ||
         (cycle == s.lastPopCycle && seq <= s.lastPopSeq)))
        fail(strprintf("event-heap violation: events popped out of "
                       "(cycle, seq) order — (%llu, %llu) after "
                       "(%llu, %llu)",
                       static_cast<unsigned long long>(cycle),
                       static_cast<unsigned long long>(seq),
                       static_cast<unsigned long long>(s.lastPopCycle),
                       static_cast<unsigned long long>(s.lastPopSeq)),
             s.now, sm, -1);
    if (s.liveSeqs.erase(seq) == 0)
        fail(strprintf("event-heap violation: popped an event that was "
                       "never scheduled (seq %llu)",
                       static_cast<unsigned long long>(seq)),
             s.now, sm, -1);
    s.popped = true;
    s.lastPopCycle = cycle;
    s.lastPopSeq = seq;
}

void
SimSanitizer::onBlockInstalled(int sm, int slot, std::uint32_t blockId,
                               int firstWarp, int numWarps)
{
    // Queued, not applied: events emitted earlier this cycle still sit
    // in the SM's buffer and belong to the slot's previous block.
    // onDrainEnd applies the mapping after that buffer flushed; a
    // freshly installed block cannot commit before its install cycle
    // ends (decode takes a cycle), so no commit ever sees a stale map.
    sms_[static_cast<std::size_t>(sm)].installs.push_back(
        PendingInstall{slot, blockId, firstWarp, numWarps});
}

void
SimSanitizer::onDrainEnd(int sm)
{
    SmShadow &s = sms_[static_cast<std::size_t>(sm)];
    for (const PendingInstall &pi : s.installs) {
        SlotShadow &sl = s.slots[static_cast<std::size_t>(pi.slot)];
        sl.blockId = pi.blockId;
        sl.firstWarp = pi.firstWarp;
        sl.numWarps = pi.numWarps;
        for (int j = 0; j < pi.numWarps; ++j) {
            WarpShadow &w =
                s.warps[static_cast<std::size_t>(pi.firstWarp + j)];
            // Only the block mapping updates: the warp-disable and
            // in-flight shadows track the continuous event stream.
            w.blockId = pi.blockId;
            w.warpInBlock = j;
        }
    }
    s.installs.clear();
}

void
SimSanitizer::onFaultedTranslation(int sm, int warp, Addr page,
                                   const vm::Tlb &l1tlb, Cycle now)
{
    if (l1tlb.contains(page))
        fail(strprintf("TLB caching violation: L1 TLB holds the "
                       "faulting translation of page 0x%llx",
                       static_cast<unsigned long long>(page)),
             now, sm, warp);
    if (mmu_ && mmu_->l2Tlb().contains(page))
        fail(strprintf("TLB caching violation: shared L2 TLB holds the "
                       "faulting translation of page 0x%llx",
                       static_cast<unsigned long long>(page)),
             now, sm, warp);
}

void
SimSanitizer::throwDeferred()
{
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        SmShadow &s = sms_[i];
        if (!s.deferred.empty())
            fail(s.deferred, s.deferredCycle, static_cast<int>(i), -1);
    }
}

void
SimSanitizer::checkDrained(const sm::PipelineState &st, Cycle now) const
{
    for (std::size_t i = 0; i < st.pool.size(); ++i)
        if (st.pool[i].live)
            fail(strprintf("leak at drain: in-flight pool entry %zu "
                           "still live (trace idx %u)",
                           i, st.pool[i].traceIdx),
                 now, st.smId, st.pool[i].warp);
    for (const sm::TbSlot &ts : st.slots)
        if (ts.state != sm::TbSlot::State::Empty)
            fail("leak at drain: thread-block slot not empty after the "
                 "run claimed completion",
                 now, st.smId, -1);
    for (int w = 0; w < st.activeWarps; ++w) {
        const sm::WarpRt &wr = st.warps[static_cast<std::size_t>(w)];
        if (wr.slot >= 0)
            fail("leak at drain: warp still owns a thread-block slot",
                 now, st.smId, w);
        if (wr.inflight != 0 || !wr.replayQ.empty() || !wr.ibuf.empty())
            fail(strprintf("leak at drain: warp state not empty "
                           "(inflight %d, replayQ %zu, ibuf %zu)",
                           wr.inflight, wr.replayQ.size(),
                           wr.ibuf.size()),
                 now, st.smId, w);
        if (wr.wdFetchDisable)
            fail("leak at drain: warp-disable fetch barrier still "
                 "engaged",
                 now, st.smId, w);
        if (!st.sb.clean(w))
            fail("leak at drain: scoreboard entries still held", now,
                 st.smId, w);
    }
    if (st.policy.usesOperandLog)
        for (int p = 0; p < st.li.blocksPerSm; ++p)
            if (st.log.used(p) != 0)
                fail(strprintf("leak at drain: operand-log partition "
                               "%d holds %u bytes",
                               p, st.log.used(p)),
                     now, st.smId, -1);
    if (!st.offchip.empty())
        fail("leak at drain: blocks still switched out off-chip", now,
             st.smId, -1);
    for (const sm::OffchipBlock &rb : st.restorePending)
        if (rb.bt != nullptr)
            fail("leak at drain: context restore still pending", now,
                 st.smId, -1);
    if (!st.staged.empty())
        fail("leak at drain: staged shared-memory operations not "
             "drained",
             now, st.smId, -1);
    if (!st.obsBuf.empty())
        fail("leak at drain: buffered observer events not flushed", now,
             st.smId, -1);
    if (st.inflightMem != 0)
        fail(strprintf("leak at drain: LSU in-flight count is %d",
                       st.inflightMem),
             now, st.smId, -1);
    // MSHRs and TLB miss queues drain lazily: quiescence at cycle N
    // means nothing outstanding past N, not emptiness.
    if (st.lsu.l1Tlb().maxPendingExpiry() > now)
        fail("leak at drain: L1 TLB miss outstanding past the end of "
             "the run",
             now, st.smId, -1);
    if (st.lsu.l1().maxPendingReady() > now)
        fail("leak at drain: L1 MSHR entry outstanding past the end of "
             "the run",
             now, st.smId, -1);
}

void
SimSanitizer::finishRun(Cycle now)
{
    throwDeferred();
    for (std::size_t b = 0; b < coverage_.size(); ++b)
        for (std::size_t w = 0; w < coverage_[b].size(); ++w) {
            const WarpCoverage &cov = coverage_[b][w];
            if (cov.count != cov.committed.size())
                fail(strprintf(
                         "architectural coverage violation: block %zu "
                         "warp %zu retired %llu of %zu traced "
                         "instructions",
                         b, w,
                         static_cast<unsigned long long>(cov.count),
                         cov.committed.size()),
                     now, -1, -1);
        }
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        const SmShadow &s = sms_[i];
        for (std::size_t w = 0; w < s.warps.size(); ++w) {
            if (!s.warps[w].inflight.empty())
                fail(strprintf("shadow leak at drain: %zu instructions "
                               "issued but never retired or squashed",
                               s.warps[w].inflight.size()),
                     now, static_cast<int>(i), static_cast<int>(w));
            if (s.warps[w].fetchDisabled)
                fail("shadow leak at drain: fetch barrier engaged at "
                     "end of run",
                     now, static_cast<int>(i), static_cast<int>(w));
        }
        for (std::size_t p = 0; p < s.slots.size(); ++p)
            if (s.slots[p].logBytes != 0)
                fail(strprintf("operand-log accounting violation: "
                               "partition %zu ends the run with %lld "
                               "bytes",
                               p,
                               static_cast<long long>(
                                   s.slots[p].logBytes)),
                     now, static_cast<int>(i), -1);
    }
}

} // namespace gex::check
