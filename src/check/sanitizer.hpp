/**
 * @file
 * SimSanitizer: the runtime invariant sanitizer behind `--check`
 * (docs/VALIDATION.md). A PipelineObserver that shadows the SM
 * pipelines off the instruction-lifecycle event stream plus a few
 * targeted hooks, and raises InvariantError (exit code 7) the moment
 * the simulator violates a modeled-hardware invariant:
 *
 *  - per-scheme protocol checkers: warp-disable fetch-barrier
 *    exclusivity, replay-queue scoreboard holds until the last TLB
 *    check, operand-log partition refcounts and capacity, and the
 *    precise-baseline rule that no preemption event ever appears;
 *  - structural checkers: event-heap (cycle, seq) monotonicity and
 *    never-into-the-past scheduling, exactly-once retirement of every
 *    traced instruction (the timing-side architectural oracle), and
 *    the TLB never caching a faulting translation;
 *  - drain checkers (checkDrained/finishRun): leak detection over the
 *    in-flight pool, scoreboard, replay queues, operand log, MSHRs
 *    and TLB miss queues once the machine claims quiescence.
 *
 * The sanitizer is exec-only: it forwards every event unchanged and
 * never mutates simulator state, so `--check` cannot alter results —
 * only detect that they were produced by a broken machine.
 */

#ifndef GEX_CHECK_SANITIZER_HPP
#define GEX_CHECK_SANITIZER_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/hooks.hpp"
#include "common/types.hpp"
#include "obs/observer.hpp"

namespace gex::gpu {
struct GpuConfig;
}
namespace gex::isa {
class Program;
}
namespace gex::trace {
struct KernelTrace;
}
namespace gex::vm {
class Tlb;
class SystemMmu;
}
namespace gex::sm {
struct PipelineState;
}

namespace gex::check {

class SimSanitizer : public obs::PipelineObserver
{
  public:
    /**
     * @p next is the downstream observer (the watchdog's last-K ring,
     * or the user's observer); every event forwards there *before* it
     * is checked, so a violation report's event tail includes the
     * violating event itself. @p tail, when non-null, is the last-K
     * ring whose render() becomes the diagnostics bundle.
     */
    SimSanitizer(const gpu::GpuConfig &cfg, obs::PipelineObserver *next,
                 const obs::LastKObserver *tail);

    /** Test-only deliberate violations (check/hooks.hpp). */
    ViolationHooks hooks;

    /** Size the shadow state for one kernel run. */
    void beginRun(const isa::Program &program,
                  const trace::KernelTrace &trace, int blocksPerSm,
                  int warpsPerBlock, std::uint32_t logPartitionBytes,
                  const vm::SystemMmu *mmu);

    /** Event-stream checkers; forwards to next, then checks (throws). */
    void event(const obs::PipeEvent &e) override;

    // --- targeted hooks (wired through PipelineState / sm::Sm) ----------

    /** Serial events phase: the SM's clock advanced to @p now. */
    void onCycleStart(int sm, Cycle now);
    /**
     * An event entered the SM's heap. Runs inside the parallel
     * compute phase, so violations are recorded per-SM and thrown
     * from throwDeferred() in the next serial section.
     */
    void onEventScheduled(int sm, Cycle cycle, std::uint64_t seq,
                          int kind);
    /** An event left the SM's heap (serial phase; throws directly). */
    void onEventPopped(int sm, Cycle cycle, std::uint64_t seq);
    /** A thread block was installed into a slot (applied at drain). */
    void onBlockInstalled(int sm, int slot, std::uint32_t blockId,
                          int firstWarp, int numWarps);
    /** End of the SM's drain phase: apply pending block installs. */
    void onDrainEnd(int sm);
    /**
     * The LSU saw a faulting translation for @p page; the invariant is
     * that no TLB level may have cached it (serial phase; throws).
     */
    void onFaultedTranslation(int sm, int warp, Addr page,
                              const vm::Tlb &l1tlb, Cycle now);
    /** Raise the first violation deferred by the parallel phase. */
    void throwDeferred();

    /**
     * Drain checker over one SM's pipeline state after the run loop
     * claims completion: leaked pool entries, scoreboard holds, warp
     * queues, operand-log bytes, staged ops, and lazily-drained
     * MSHR/TLB-miss entries still pending past @p now.
     */
    void checkDrained(const sm::PipelineState &st, Cycle now) const;

    /** End-of-run shadow checks: exactly-once trace coverage, empty
     *  in-flight shadows, zero log bytes, no deferred violations. */
    void finishRun(Cycle now);

    /** Build and throw the InvariantError for a violation. */
    [[noreturn]] void fail(const std::string &what, Cycle cycle, int sm,
                           int warp) const;

  private:
    struct InstShadow {
        bool tlbChecked = false;
        bool isGlobalMem = false;
    };

    static constexpr std::uint32_t kNoBlock = UINT32_MAX;

    struct WarpShadow {
        bool fetchDisabled = false;
        /** Barrier instruction allowed to fetch while disabled. */
        std::uint32_t allowFetchIdx = obs::PipeEvent::kNoIndex;
        std::uint32_t blockId = kNoBlock;
        int warpInBlock = -1;
        std::unordered_map<std::uint32_t, InstShadow> inflight;
    };

    struct SlotShadow {
        std::uint32_t blockId = kNoBlock;
        int firstWarp = 0;
        int numWarps = 0;
        /** Operand-log partition bytes (spans blocks; reset per run). */
        std::int64_t logBytes = 0;
    };

    struct PendingInstall {
        int slot;
        std::uint32_t blockId;
        int firstWarp;
        int numWarps;
    };

    struct SmShadow {
        Cycle now = 0;
        bool popped = false;
        Cycle lastPopCycle = 0;
        std::uint64_t lastPopSeq = 0;
        std::unordered_set<std::uint64_t> liveSeqs;
        /** First violation recorded by the parallel phase ("" = none). */
        std::string deferred;
        Cycle deferredCycle = 0;
        std::vector<WarpShadow> warps;
        std::vector<SlotShadow> slots;
        std::vector<PendingInstall> installs;
    };

    /** Exactly-once commit bitmap of one warp's trace. */
    struct WarpCoverage {
        std::vector<std::uint8_t> committed;
        std::uint64_t count = 0;
    };

    WarpShadow &warpAt(const obs::PipeEvent &e);
    bool staticIsGlobalMem(std::uint32_t staticIdx) const;

    const gpu::GpuConfig &cfg_;
    obs::PipelineObserver *next_;
    const obs::LastKObserver *tail_;

    // Scheme traits, resolved once per run from the config.
    bool wdScheme_ = false;
    bool olScheme_ = false;
    bool rqScheme_ = false;
    bool preemptible_ = false;

    const isa::Program *program_ = nullptr;
    const trace::KernelTrace *trace_ = nullptr;
    const vm::SystemMmu *mmu_ = nullptr;
    std::uint32_t partitionBytes_ = 0;

    std::vector<SmShadow> sms_;
    /** coverage_[blockId][warpInBlock] over the whole grid. */
    std::vector<std::vector<WarpCoverage>> coverage_;
};

} // namespace gex::check

#endif // GEX_CHECK_SANITIZER_HPP
