#include "sm/sm.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "gpu/local_scheduler.hpp"

namespace gex::sm {

using isa::Instruction;
using isa::Opcode;
using isa::Unit;

Sm::Sm(int id, const gpu::GpuConfig &cfg, MemorySystem &sys,
       BlockSupply &supply)
    : id_(id), cfg_(cfg), sys_(sys), supply_(supply),
      policy_(SchemePolicy::make(cfg.scheme)), lsu_(cfg.sm, sys),
      mathPort_(cfg.sm.numMathUnits), sfuPort_(1), branchPort_(1),
      sharedPort_(1)
{
    sb_.init(cfg.sm.maxWarps);
    warps_.resize(static_cast<size_t>(cfg.sm.maxWarps));
    fetchBlocked_.assign(static_cast<size_t>(cfg.sm.maxWarps), 0);
    issueStalled_.assign(static_cast<size_t>(cfg.sm.maxWarps), 0);
    // Pre-size the event heap from the config-derived in-flight bound:
    // each in-flight instruction carries at most three live events
    // (source release, last check, commit) and in-flight work per warp
    // is capped by the instruction buffer plus the LSU queue.
    std::vector<Event> backing;
    backing.reserve(static_cast<std::size_t>(cfg.sm.maxWarps) * 3 *
                    static_cast<std::size_t>(cfg.sm.instBufferDepth +
                                             cfg.sm.lsuQueueDepth));
    events_ = decltype(events_)(std::greater<>(), std::move(backing));
    pool_.reserve(static_cast<std::size_t>(cfg.sm.maxWarps) *
                  static_cast<std::size_t>(cfg.sm.instBufferDepth +
                                           cfg.sm.lsuQueueDepth));
}

void
Sm::beginKernel(const LaunchInfo &li)
{
    li_ = li;
    GEX_ASSERT(li.blocksPerSm > 0);
    GEX_ASSERT(li.blocksPerSm * li.warpsPerBlock <= cfg_.sm.maxWarps);
    activeWarps_ = li.blocksPerSm * li.warpsPerBlock;
    slots_.assign(static_cast<size_t>(li.blocksPerSm), TbSlot{});
    for (auto &w : warps_)
        w = WarpRt{};
    std::fill(fetchBlocked_.begin(), fetchBlocked_.end(), 0);
    std::fill(issueStalled_.begin(), issueStalled_.end(), 0);
    offchip_.clear();
    extraBlocksBrought_ = 0;
    slotRetryAt_ = kNoCycle;
    if (policy_.usesOperandLog)
        log_.configure(cfg_.operandLogBytes, li.blocksPerSm);
}

int
Sm::freeSlots() const
{
    int n = 0;
    for (const auto &s : slots_)
        if (s.state == TbSlot::State::Empty)
            ++n;
    return n;
}

int
Sm::ownedBlocks() const
{
    int n = static_cast<int>(offchip_.size());
    for (const auto &s : slots_)
        if (s.state != TbSlot::State::Empty)
            ++n;
    return n;
}

bool
Sm::launchBlock(const trace::BlockTrace *bt, Cycle now)
{
    for (size_t s = 0; s < slots_.size(); ++s) {
        if (slots_[s].state == TbSlot::State::Empty) {
            installBlock(static_cast<int>(s), bt, now, nullptr);
            return true;
        }
    }
    return false;
}

void
Sm::installBlock(int slot, const trace::BlockTrace *bt, Cycle now,
                 const OffchipBlock *restore_from)
{
    TbSlot &ts = slots_[static_cast<size_t>(slot)];
    ts.state = TbSlot::State::Running;
    ts.blockId = bt->blockId;
    ts.bt = bt;
    ts.firstWarp = slot * li_.warpsPerBlock;
    ts.numWarps = static_cast<int>(bt->warps.size());
    ts.warpsFinished = 0;
    ts.faultReadyAt = 0;
    ts.installedAt = now;

    for (int j = 0; j < ts.numWarps; ++j) {
        WarpRt &w = warps_[static_cast<size_t>(ts.firstWarp + j)];
        w = WarpRt{};
        wakeWarp(ts.firstWarp + j);
        w.slot = slot;
        w.tr = &bt->warps[static_cast<size_t>(j)];
        if (restore_from) {
            const SavedWarp &sv =
                restore_from->warps[static_cast<size_t>(j)];
            w.fetchIdx = sv.fetchIdx;
            w.replayQ = sv.replayQ;
            w.waitingBarrier = sv.waitingBarrier;
            w.finished = sv.finished;
            if (w.finished)
                ++ts.warpsFinished;
        }
    }
    didWork_ = true;
}

bool
Sm::busy() const
{
    if (!offchip_.empty())
        return true;
    for (const auto &s : slots_)
        if (s.state != TbSlot::State::Empty)
            return true;
    return false;
}

Cycle
Sm::nextEventCycle() const
{
    return events_.empty() ? kNoCycle : events_.top().cycle;
}

// ---------------------------------------------------------------------------
// Event plumbing

std::uint32_t
Sm::allocInflight()
{
    if (!freeList_.empty()) {
        std::uint32_t id = freeList_.back();
        freeList_.pop_back();
        pool_[id] = Inflight{};
        pool_[id].live = true;
        return id;
    }
    pool_.push_back(Inflight{});
    pool_.back().live = true;
    return static_cast<std::uint32_t>(pool_.size() - 1);
}

void
Sm::scheduleEvent(Cycle cycle, EvKind kind, std::int32_t arg,
                  std::uint32_t id)
{
    events_.push(Event{cycle, ++eventSeq_, kind, arg, id});
}

void
Sm::scheduleInstEvent(Cycle cycle, EvKind kind, std::int32_t arg,
                      std::uint32_t id)
{
    events_.push(Event{cycle, ++eventSeq_, kind, arg, id});
    ++pool_[id].eventsLeft;
}

void
Sm::retireEventRef(std::uint32_t id)
{
    Inflight &in = pool_[id];
    GEX_ASSERT(in.eventsLeft > 0);
    if (--in.eventsLeft == 0 && in.live && in.squashed) {
        in.live = false;
        freeList_.push_back(id);
    }
}

void
Sm::tick(Cycle now)
{
    didWork_ = false;
    processEvents(now);
    doFetch(now);
    doIssue(now);
}

void
Sm::processEvents(Cycle now)
{
    while (!events_.empty() && events_.top().cycle <= now) {
        Event ev = events_.top();
        events_.pop();
        didWork_ = true;
        switch (ev.kind) {
          case EvKind::SourceRelease: {
            Inflight &in = pool_[ev.id];
            if (!in.squashed && in.sourcesHeld) {
                const Instruction &si = *in.si;
                const auto &t = si.traits();
                for (int i = 0; i < t.numSrcs; ++i) {
                    if (i == 1 && si.useImm)
                        continue;
                    sb_.releaseSource(in.warp, Scoreboard::regName(si.srcs[i]));
                }
                sb_.releaseSource(in.warp, Scoreboard::predName(si.pred));
                if (si.op == Opcode::SEL || si.op == Opcode::PSETP)
                    sb_.releaseSource(in.warp, Scoreboard::predName(si.predA));
                if (si.op == Opcode::PSETP)
                    sb_.releaseSource(in.warp, Scoreboard::predName(si.predB));
                in.sourcesHeld = false;
                wakeWarp(in.warp);
            }
            retireEventRef(ev.id);
            break;
          }
          case EvKind::LastCheck: {
            Inflight &in = pool_[ev.id];
            if (!in.squashed)
                onLastCheck(in, now);
            retireEventRef(ev.id);
            break;
          }
          case EvKind::Commit: {
            Inflight &in = pool_[ev.id];
            if (!in.squashed)
                onCommit(in, now);
            retireEventRef(ev.id);
            // Commit retires the record.
            Inflight &in2 = pool_[ev.id];
            if (in2.live && !in2.squashed && in2.eventsLeft == 0) {
                in2.live = false;
                freeList_.push_back(ev.id);
            }
            break;
          }
          case EvKind::FaultReact: {
            Inflight &in = pool_[ev.id];
            if (!in.squashed)
                onFaultReact(in, now);
            retireEventRef(ev.id);
            break;
          }
          case EvKind::WarpResume:
            onWarpResume(ev.arg, now);
            break;
          case EvKind::TrapEnter: {
            // The warp switches to system mode and runs the trap
            // handler; no replay is needed (the instruction completed).
            Inflight &in = pool_[ev.id];
            WarpRt &wr = warps_[static_cast<size_t>(in.warp)];
            if (wr.slot >= 0) {
                wr.faultBlocked = true;
                wakeWarp(in.warp);
                wr.blockedUntil =
                    std::max(wr.blockedUntil, now + cfg_.trapHandlerCycles);
                scheduleEvent(wr.blockedUntil, EvKind::WarpResume, in.warp,
                              UINT32_MAX);
                ++trapsHandled_;
                systemModeCycles_ += cfg_.trapHandlerCycles;
            }
            retireEventRef(ev.id);
            break;
          }
          case EvKind::SaveReady: {
            int slot = ev.arg;
            TbSlot &ts = slots_[static_cast<size_t>(slot)];
            if (ts.state != TbSlot::State::Draining)
                break;
            bool drained = true;
            for (int j = 0; j < ts.numWarps; ++j)
                if (warps_[static_cast<size_t>(ts.firstWarp + j)].inflight >
                    0)
                    drained = false;
            if (!drained) {
                scheduleEvent(std::max(drainTime(slot), now + 1),
                              EvKind::SaveReady, slot, UINT32_MAX);
                break;
            }
            ts.state = TbSlot::State::Saving;
            Cycle done;
            if (cfg_.idealContextSwitch) {
                done = now + 1;
            } else {
                done = sys_.bulkDramTraffic(now, li_.contextBytesPerBlock) +
                       cfg_.contextSwitchOverhead;
                contextBytesMoved_ += li_.contextBytesPerBlock;
            }
            scheduleEvent(done, EvKind::SaveDone, slot, UINT32_MAX);
            break;
          }
          case EvKind::SaveDone: {
            int slot = ev.arg;
            TbSlot &ts = slots_[static_cast<size_t>(slot)];
            GEX_ASSERT(ts.state == TbSlot::State::Saving);
            OffchipBlock ob;
            ob.blockId = ts.blockId;
            ob.bt = ts.bt;
            ob.readyAt = ts.faultReadyAt;
            ob.warps.resize(static_cast<size_t>(ts.numWarps));
            for (int j = 0; j < ts.numWarps; ++j) {
                WarpRt &w = warps_[static_cast<size_t>(ts.firstWarp + j)];
                SavedWarp &sv = ob.warps[static_cast<size_t>(j)];
                sv.fetchIdx = w.fetchIdx;
                sv.replayQ = std::move(w.replayQ);
                sv.waitingBarrier = w.waitingBarrier;
                sv.finished = w.finished;
                w = WarpRt{};
                wakeWarp(ts.firstWarp + j);
            }
            offchip_.push_back(std::move(ob));
            ts = TbSlot{};
            ++switchOuts_;
            fillEmptySlots(now);
            break;
          }
          case EvKind::RestoreDone: {
            int slot = ev.arg;
            TbSlot &ts = slots_[static_cast<size_t>(slot)];
            GEX_ASSERT(ts.state == TbSlot::State::Restoring);
            GEX_ASSERT(ev.id < restorePending_.size() &&
                       restorePending_[ev.id].bt != nullptr);
            OffchipBlock ob = std::move(restorePending_[ev.id]);
            restorePending_[ev.id] = OffchipBlock{};
            installBlock(slot, ob.bt, now, &ob);
            ++switchIns_;
            break;
          }
          case EvKind::SlotRetry:
            slotRetryAt_ = kNoCycle;
            fillEmptySlots(now);
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Fetch

void
Sm::doFetch(Cycle now)
{
    // One instruction line (fetchWidth instructions) from one warp per
    // cycle (paper section 2.1). Fetch-disabling instructions stop the
    // line mid-way. Only the warps the kernel populated are scanned —
    // slots past activeWarps_ can never fetch, and skipping them keeps
    // the visit order over the live warps identical.
    const int n = activeWarps_;
    const bool greedy =
        cfg_.sm.schedPolicy == gpu::SchedPolicy::GreedyThenOldest;
    // GTO's oldest-first scan at full width visited indices
    // 0..maxWarps-2 after the sticky warp; mirror that bound.
    const int scan =
        greedy ? std::min(n, static_cast<int>(warps_.size()) - 1) + 1 : n;
    // LRR successor of the last fetching warp, tracked incrementally —
    // a divide per scanned warp is measurable at this call rate.
    int lrr = std::min(rrFetch_, n - 1) + 1;
    if (lrr == n)
        lrr = 0;
    for (int lines = 0, i = 0;
         i < scan && lines < cfg_.sm.fetchPerCycle; ++i) {
        // LRR rotates the start; GTO retries the last warp, then
        // scans from the oldest (lowest slot).
        int w;
        if (greedy) {
            w = i == 0 ? rrFetch_ : i - 1;
            if (i > 0 && w == rrFetch_)
                continue;
        } else {
            w = lrr;
            if (++lrr == n)
                lrr = 0;
        }
        if (fetchBlocked_[static_cast<size_t>(w)])
            continue; // still blocked on unchanged state — see fetchBlocked_
        WarpRt &wr = warps_[static_cast<size_t>(w)];
        if (!wr.schedulable()) {
            fetchBlocked_[static_cast<size_t>(w)] = 1;
            continue;
        }

        int fetched_from_warp = 0;
        while (fetched_from_warp < cfg_.sm.fetchWidth) {
            if (static_cast<int>(wr.ibuf.size()) >=
                cfg_.sm.instBufferDepth)
                break;
            if (wr.controlPending > 0 || wr.wdFetchDisable)
                break;
            if (now < wr.fetchResumeAt)
                break;

            std::uint32_t idx;
            if (!wr.replayQ.empty()) {
                idx = wr.replayQ.front();
                wr.replayQ.pop_front();
            } else if (wr.fetchIdx < wr.tr->insts.size()) {
                idx = wr.fetchIdx++;
            } else {
                break;
            }

            const trace::TraceInst &ti = wr.tr->insts[idx];
            const Instruction &si = li_.kernel->program.at(ti.staticIdx);
            if (si.isControl())
                ++wr.controlPending;
            if (policy_.fetchDisableOnGlobalMem &&
                (si.isGlobalMem() ||
                 (cfg_.arithExceptions && si.traits().canRaiseArith)))
                wr.wdFetchDisable = true;
            wr.ibuf.push_back(InstBufEntry{idx, now + 1});
            ++fetches_;
            ++fetched_from_warp;
            didWork_ = true;
        }
        if (fetched_from_warp > 0) {
            ++lines;
            rrFetch_ = w;
        } else {
            // Mark state-blocked warps so later scans skip them after
            // one byte read; a wait on fetchResumeAt is the only purely
            // time-based reason and must keep the warp scannable.
            const bool time_blocked =
                static_cast<int>(wr.ibuf.size()) <
                    cfg_.sm.instBufferDepth &&
                wr.controlPending == 0 && !wr.wdFetchDisable &&
                now < wr.fetchResumeAt;
            if (!time_blocked)
                fetchBlocked_[static_cast<size_t>(w)] = 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Issue

void
Sm::doIssue(Cycle now)
{
    // Same live-warp scan bound (and divide-free rotation) as doFetch.
    const int n = activeWarps_;
    const bool greedy =
        cfg_.sm.schedPolicy == gpu::SchedPolicy::GreedyThenOldest;
    const int scan =
        greedy ? std::min(n, static_cast<int>(warps_.size()) - 1) + 1 : n;
    int lrr = std::min(rrIssue_, n - 1) + 1;
    if (lrr == n)
        lrr = 0;
    int total = 0;
    int warps_used = 0;
    int last_issued = rrIssue_;
    for (int i = 0;
         i < scan && total < cfg_.sm.issueWidth && warps_used < 2; ++i) {
        int w;
        if (greedy) {
            w = i == 0 ? rrIssue_ : i - 1;
            if (i > 0 && w == rrIssue_)
                continue;
        } else {
            w = lrr;
            if (++lrr == n)
                lrr = 0;
        }
        // Byte-gate: a warp whose head is known-stalled on an
        // untouched scoreboard re-registers the stall (exactly one
        // increment, as a full rescan would) off one byte read.
        if (issueStalled_[static_cast<size_t>(w)]) {
            ++stallScoreboard_;
            continue;
        }
        // Cheap per-warp gates run inline; the full decode + check in
        // tryIssueHead only runs for warps that might actually issue.
        int k = 0;
        WarpRt &wr = warps_[static_cast<size_t>(w)];
        while (k < cfg_.sm.maxIssuePerWarp && total < cfg_.sm.issueWidth) {
            if (!wr.schedulable() || wr.ibuf.empty() ||
                wr.ibuf.front().readyAt > now)
                break;
            if (wr.ibuf.front().idx == wr.sbStallIdx &&
                sb_.gen(w) == wr.sbStallGen) {
                issueStalled_[static_cast<size_t>(w)] = 1;
                ++stallScoreboard_;
                break;
            }
            if (!tryIssueHead(w, now))
                break;
            ++k;
            ++total;
        }
        if (k > 0) {
            ++warps_used;
            last_issued = w;
        }
    }
    if (total > 0)
        rrIssue_ = last_issued;
}

bool
Sm::tryIssueHead(int w, Cycle now)
{
    WarpRt &wr = warps_[static_cast<size_t>(w)];
    if (!wr.schedulable() || wr.ibuf.empty() ||
        wr.ibuf.front().readyAt > now)
        return false;

    const std::uint32_t idx = wr.ibuf.front().idx;
    // Stall memo: this head already failed the scoreboard checks and
    // no scoreboard entry of this warp changed since, so the same
    // checks would fail again — register the stall without re-decoding.
    if (idx == wr.sbStallIdx && sb_.gen(w) == wr.sbStallGen) {
        ++stallScoreboard_;
        return false;
    }
    const trace::TraceInst &ti = wr.tr->insts[idx];
    const Instruction &si = li_.kernel->program.at(ti.staticIdx);
    const auto &t = si.traits();

    // The checks depend only on the instruction and this warp's
    // scoreboard state, so a failure stays valid until gen(w) moves.
    auto sb_stall = [&] {
        wr.sbStallIdx = idx;
        wr.sbStallGen = sb_.gen(w);
        issueStalled_[static_cast<size_t>(w)] = 1;
        ++stallScoreboard_;
    };

    // --- scoreboard checks (RAW on sources, WAW+WAR on destinations) ---
    for (int i = 0; i < t.numSrcs; ++i) {
        if (i == 1 && si.useImm)
            continue;
        if (!sb_.canRead(w, Scoreboard::regName(si.srcs[i]))) {
            sb_stall();
            return false;
        }
    }
    if (!sb_.canRead(w, Scoreboard::predName(si.pred))) {
        sb_stall();
        return false;
    }
    if ((si.op == Opcode::SEL || si.op == Opcode::PSETP) &&
        !sb_.canRead(w, Scoreboard::predName(si.predA))) {
        sb_stall();
        return false;
    }
    if (si.op == Opcode::PSETP &&
        !sb_.canRead(w, Scoreboard::predName(si.predB))) {
        sb_stall();
        return false;
    }
    if (t.writesDst && !sb_.canWrite(w, Scoreboard::regName(si.dst))) {
        sb_stall();
        return false;
    }
    if ((si.op == Opcode::SETP || si.op == Opcode::PSETP) &&
        !sb_.canWrite(w, Scoreboard::predName(si.predDst))) {
        sb_stall();
        return false;
    }

    const bool is_global = si.isGlobalMem();

    // --- structural gates ---
    if (is_global) {
        if (lsuIssuedAt_ == now) {
            return false; // one memory instruction per cycle
        }
        if (inflightMem_ >= cfg_.sm.lsuQueueDepth) {
            ++stallLsuQueue_;
            return false;
        }
    }

    // --- operand log gate (OperandLog scheme) ---
    std::uint32_t log_bytes = 0;
    if (policy_.usesOperandLog && is_global && ti.numActive > 0) {
        log_bytes = OperandLog::entryBytes(t.isStore || t.isAtomic);
        if (!log_.tryAllocate(wr.slot, log_bytes)) {
            ++stallLog_;
            return false;
        }
    }

    // --- issue ---
    wr.ibuf.pop_front();
    wakeWarp(w); // buffer space freed
    const Cycle op_read = now + 1;

    std::uint32_t id = allocInflight();
    Inflight &in = pool_[id];
    in.traceIdx = idx;
    in.warp = w;
    in.ti = &ti;
    in.si = &si;
    in.isGlobalMem = is_global;
    in.isControl = si.isControl();
    in.logHeld = log_bytes > 0;
    in.logBytes = log_bytes;
    in.logPartition = wr.slot;

    // Acquire scoreboard entries.
    for (int i = 0; i < t.numSrcs; ++i) {
        if (i == 1 && si.useImm)
            continue;
        sb_.acquireSource(w, Scoreboard::regName(si.srcs[i]));
    }
    sb_.acquireSource(w, Scoreboard::predName(si.pred));
    if (si.op == Opcode::SEL || si.op == Opcode::PSETP)
        sb_.acquireSource(w, Scoreboard::predName(si.predA));
    if (si.op == Opcode::PSETP)
        sb_.acquireSource(w, Scoreboard::predName(si.predB));
    in.sourcesHeld = true;
    if (t.writesDst) {
        sb_.acquireWrite(w, Scoreboard::regName(si.dst));
        in.dstHeld = true;
    }
    if (si.op == Opcode::SETP || si.op == Opcode::PSETP) {
        sb_.acquireWrite(w, Scoreboard::predName(si.predDst));
        in.dstHeld = true;
    }

    bool faulted = false;
    if (is_global) {
        lsuIssuedAt_ = now;
        ++inflightMem_;
        in.mem = lsu_.processGlobal(si, ti, wr.tr->lines(ti), op_read,
                                    !policy_.preemptible,
                                    cfg_.faultRetryLatency);
        faulted = in.mem.faulted;
        if (faulted) {
            scheduleInstEvent(in.mem.faultDetect, EvKind::FaultReact, w, id);
        } else {
            scheduleInstEvent(in.mem.lastTlbCheck, EvKind::LastCheck, w, id);
            in.commitAt = in.mem.execDone + 1;
            scheduleInstEvent(in.commitAt, EvKind::Commit, w, id);
        }
        // Source release point depends on the scheme.
        if (!(policy_.holdSourcesUntilLastCheck)) {
            scheduleInstEvent(op_read, EvKind::SourceRelease, w, id);
        } else if (faulted) {
            // Replay-queue scheme: sources stay held until the last
            // TLB check, which never happens for a faulted
            // instruction; they release when it is squashed.
        }
    } else {
        Cycle start = 0;
        Cycle lat = 1;
        switch (t.unit) {
          case Unit::Math:
            start = mathPort_.reserve(op_read + 1);
            lat = cfg_.sm.mathLatency;
            break;
          case Unit::Sfu:
            start = sfuPort_.reserve(op_read + 1);
            lat = cfg_.sm.sfuLatency;
            break;
          case Unit::Branch:
            start = branchPort_.reserve(op_read + 1);
            lat = cfg_.sm.branchLatency;
            break;
          case Unit::Shared:
            start = sharedPort_.reserve(op_read + 1);
            lat = cfg_.sm.sharedLatency;
            break;
          case Unit::None:
          default:
            start = op_read + 1;
            lat = 0;
            break;
        }
        in.commitAt = start + lat;
        scheduleInstEvent(in.commitAt, EvKind::Commit, w, id);
        const bool arith_capable =
            cfg_.arithExceptions && t.canRaiseArith;
        in.isArithBarrier =
            arith_capable && policy_.fetchDisableOnGlobalMem;
        if (arith_capable && policy_.holdSourcesUntilLastCheck) {
            // Replay queue extension: sources of possibly-raising
            // instructions release only once they are known safe
            // (here: completion); see paper section 3.2.
        } else {
            scheduleInstEvent(op_read, EvKind::SourceRelease, w, id);
        }
        if (arith_capable && ti.arithFault) {
            if (policy_.preemptible)
                scheduleInstEvent(in.commitAt, EvKind::TrapEnter, w, id);
            else
                ++arithReportedOnly_; // current GPUs: report, no recovery
        }
    }

    ++wr.inflight;
    wr.maxCommitScheduled = std::max(
        wr.maxCommitScheduled, faulted ? in.mem.faultDetect : in.commitAt);
    ++instsIssued_;
    didWork_ = true;
    return true;
}

// ---------------------------------------------------------------------------
// Event reactions

void
Sm::onLastCheck(Inflight &in, Cycle now)
{
    WarpRt &wr = warps_[static_cast<size_t>(in.warp)];
    if (policy_.holdSourcesUntilLastCheck && in.sourcesHeld) {
        const Instruction &si = *in.si;
        const auto &t = si.traits();
        for (int i = 0; i < t.numSrcs; ++i) {
            if (i == 1 && si.useImm)
                continue;
            sb_.releaseSource(in.warp, Scoreboard::regName(si.srcs[i]));
        }
        sb_.releaseSource(in.warp, Scoreboard::predName(si.pred));
        in.sourcesHeld = false;
    }
    if (in.logHeld) {
        log_.release(in.logPartition, in.logBytes);
        in.logHeld = false;
    }
    if (policy_.reenableAtLastCheck && in.isGlobalMem && wr.wdFetchDisable) {
        wr.wdFetchDisable = false;
        wr.fetchResumeAt = now + cfg_.sm.fetchRestartPenalty;
        // Wake the fetch stage when the refill completes (the main
        // loop skips cycles based on pending events).
        scheduleEvent(wr.fetchResumeAt, EvKind::WarpResume, in.warp,
                      UINT32_MAX);
    }
    wakeWarp(in.warp);
}

void
Sm::onCommit(Inflight &in, Cycle now)
{
    WarpRt &wr = warps_[static_cast<size_t>(in.warp)];
    const Instruction &si = *in.si;

    if (in.sourcesHeld) {
        // Safety net (e.g. replay-queue mem inst whose last check and
        // commit coincide and ordering put commit first).
        const auto &t = si.traits();
        for (int i = 0; i < t.numSrcs; ++i) {
            if (i == 1 && si.useImm)
                continue;
            sb_.releaseSource(in.warp, Scoreboard::regName(si.srcs[i]));
        }
        sb_.releaseSource(in.warp, Scoreboard::predName(si.pred));
        if (si.op == Opcode::SEL || si.op == Opcode::PSETP)
            sb_.releaseSource(in.warp, Scoreboard::predName(si.predA));
        if (si.op == Opcode::PSETP)
            sb_.releaseSource(in.warp, Scoreboard::predName(si.predB));
        in.sourcesHeld = false;
    }
    if (in.dstHeld) {
        if (si.traits().writesDst)
            sb_.releaseWrite(in.warp, Scoreboard::regName(si.dst));
        if (si.op == Opcode::SETP || si.op == Opcode::PSETP)
            sb_.releaseWrite(in.warp, Scoreboard::predName(si.predDst));
        in.dstHeld = false;
    }
    if (in.logHeld) {
        log_.release(in.logPartition, in.logBytes);
        in.logHeld = false;
    }
    if (in.isControl) {
        GEX_ASSERT(wr.controlPending > 0);
        --wr.controlPending;
    }
    if (in.isArithBarrier && wr.wdFetchDisable) {
        // Arithmetic fetch barriers re-enable at commit in both
        // warp-disable variants (there is no TLB check to wait for).
        wr.wdFetchDisable = false;
        wr.fetchResumeAt = now + cfg_.sm.fetchRestartPenalty;
        scheduleEvent(wr.fetchResumeAt, EvKind::WarpResume, in.warp,
                      UINT32_MAX);
    }
    if (in.isGlobalMem) {
        --inflightMem_;
        if (policy_.fetchDisableOnGlobalMem &&
            !policy_.reenableAtLastCheck && wr.wdFetchDisable) {
            wr.wdFetchDisable = false;
            wr.fetchResumeAt = now + cfg_.sm.fetchRestartPenalty;
            scheduleEvent(wr.fetchResumeAt, EvKind::WarpResume, in.warp,
                          UINT32_MAX);
        }
    }
    if (si.op == Opcode::BAR && wr.slot >= 0) {
        wr.waitingBarrier = true;
        releaseBarrierIfReady(wr.slot);
    }

    --wr.inflight;
    ++instsCommitted_;
    wakeWarp(in.warp);
    checkWarpFinished(in.warp, now);
}

void
Sm::squash(Inflight &in, Cycle now)
{
    (void)now;
    WarpRt &wr = warps_[static_cast<size_t>(in.warp)];
    const Instruction &si = *in.si;
    if (in.sourcesHeld) {
        const auto &t = si.traits();
        for (int i = 0; i < t.numSrcs; ++i) {
            if (i == 1 && si.useImm)
                continue;
            sb_.releaseSource(in.warp, Scoreboard::regName(si.srcs[i]));
        }
        sb_.releaseSource(in.warp, Scoreboard::predName(si.pred));
        if (si.op == Opcode::SEL || si.op == Opcode::PSETP)
            sb_.releaseSource(in.warp, Scoreboard::predName(si.predA));
        if (si.op == Opcode::PSETP)
            sb_.releaseSource(in.warp, Scoreboard::predName(si.predB));
        in.sourcesHeld = false;
    }
    if (in.dstHeld) {
        if (si.traits().writesDst)
            sb_.releaseWrite(in.warp, Scoreboard::regName(si.dst));
        if (si.op == Opcode::SETP || si.op == Opcode::PSETP)
            sb_.releaseWrite(in.warp, Scoreboard::predName(si.predDst));
        in.dstHeld = false;
    }
    if (in.logHeld) {
        log_.release(in.logPartition, in.logBytes);
        in.logHeld = false;
    }
    if (in.isControl) {
        GEX_ASSERT(wr.controlPending > 0);
        --wr.controlPending;
    }
    if (in.isGlobalMem)
        --inflightMem_;
    --wr.inflight;
    wakeWarp(in.warp);
    in.squashed = true;
}

void
Sm::revertIbuf(WarpRt &w)
{
    if (w.ibuf.empty())
        return;
    for (std::size_t i = 0; i < w.ibuf.size(); ++i) {
        const trace::TraceInst &ti = w.tr->insts[w.ibuf[i].idx];
        const Instruction &si = li_.kernel->program.at(ti.staticIdx);
        if (si.isControl()) {
            GEX_ASSERT(w.controlPending > 0);
            --w.controlPending;
        }
    }
    w.fetchIdx = w.ibuf.front().idx;
    w.ibuf.clear();
}

void
Sm::insertReplay(WarpRt &w, std::uint32_t trace_idx)
{
    std::size_t pos = w.replayQ.lowerBound(trace_idx);
    GEX_ASSERT(pos == w.replayQ.size() || w.replayQ[pos] != trace_idx,
               "instruction already in replay queue");
    w.replayQ.insert(pos, trace_idx);
}

void
Sm::onFaultReact(Inflight &in, Cycle now)
{
    GEX_ASSERT(policy_.preemptible,
               "fault reaction in non-preemptible scheme");
    WarpRt &wr = warps_[static_cast<size_t>(in.warp)];
    ++faultsSeen_;
    if (in.mem.kind == vm::FaultKind::Joined)
        ++faultsJoined_;
    if (in.mem.kind == vm::FaultKind::GpuAlloc) {
        ++faultsGpuHandled_;
        systemModeCycles_ += in.mem.resolveAll - in.mem.faultDetect;
    }

    const std::uint32_t replay_idx = in.traceIdx;
    squash(in, now);
    insertReplay(wr, replay_idx);
    revertIbuf(wr);
    wr.wdFetchDisable = false;

    wr.faultBlocked = true;
    wr.blockedUntil = std::max({wr.blockedUntil, in.mem.resolveAll,
                                wr.maxCommitScheduled});
    scheduleEvent(std::max(wr.blockedUntil, now + 1), EvKind::WarpResume,
                  in.warp, UINT32_MAX);

    if (wr.slot >= 0) {
        TbSlot &ts = slots_[static_cast<size_t>(wr.slot)];
        ts.faultReadyAt = std::max(ts.faultReadyAt, in.mem.resolveAll);
        if (cfg_.blockSwitching && ts.state == TbSlot::State::Running &&
            in.mem.kind != vm::FaultKind::GpuAlloc)
            considerSwitch(wr.slot, in.mem.queueDepth, now);
    }
}

void
Sm::onWarpResume(int w, Cycle now)
{
    WarpRt &wr = warps_[static_cast<size_t>(w)];
    if (wr.slot < 0 || !wr.faultBlocked || now < wr.blockedUntil)
        return; // stale (block switched out, or deadline extended)
    wr.faultBlocked = false;
    wakeWarp(w);
    didWork_ = true;
}

void
Sm::checkWarpFinished(int w, Cycle now)
{
    WarpRt &wr = warps_[static_cast<size_t>(w)];
    if (wr.finished || wr.slot < 0)
        return;
    if (wr.fetchIdx >= wr.tr->insts.size() && wr.replayQ.empty() &&
        wr.ibuf.empty() && wr.inflight == 0 && !wr.faultBlocked) {
        wr.finished = true;
        TbSlot &ts = slots_[static_cast<size_t>(wr.slot)];
        ++ts.warpsFinished;
        releaseBarrierIfReady(wr.slot);
        if (ts.warpsFinished == ts.numWarps)
            finishBlock(wr.slot, now);
    }
}

void
Sm::releaseBarrierIfReady(int slot)
{
    TbSlot &ts = slots_[static_cast<size_t>(slot)];
    int waiting = 0;
    for (int j = 0; j < ts.numWarps; ++j)
        if (warps_[static_cast<size_t>(ts.firstWarp + j)].waitingBarrier)
            ++waiting;
    if (waiting == 0)
        return;
    if (waiting + ts.warpsFinished == ts.numWarps) {
        for (int j = 0; j < ts.numWarps; ++j) {
            warps_[static_cast<size_t>(ts.firstWarp + j)].waitingBarrier =
                false;
            wakeWarp(ts.firstWarp + j);
        }
        didWork_ = true;
    }
}

void
Sm::finishBlock(int slot, Cycle now)
{
    TbSlot &ts = slots_[static_cast<size_t>(slot)];
    for (int j = 0; j < ts.numWarps; ++j) {
        warps_[static_cast<size_t>(ts.firstWarp + j)] = WarpRt{};
        wakeWarp(ts.firstWarp + j);
    }
    ts = TbSlot{};
    ++blocksCompleted_;
    fillEmptySlots(now);
}

// ---------------------------------------------------------------------------
// UC1: block switching on fault (paper section 4.1)

Cycle
Sm::drainTime(int slot) const
{
    const TbSlot &ts = slots_[static_cast<size_t>(slot)];
    Cycle t = 0;
    for (int j = 0; j < ts.numWarps; ++j)
        t = std::max(t, warps_[static_cast<size_t>(ts.firstWarp + j)]
                            .maxCommitScheduled);
    return t;
}

void
Sm::considerSwitch(int slot, int queue_depth, Cycle now)
{
    const TbSlot &ts = slots_[static_cast<size_t>(slot)];
    if (now < ts.installedAt + cfg_.minResidencyBeforeSwitch)
        return; // anti-churn: freshly installed blocks stay put
    if (!gpu::shouldSwitchOnFault(cfg_, queue_depth, ownedBlocks(),
                                  static_cast<int>(slots_.size()),
                                  supply_.hasPending(),
                                  static_cast<int>(offchip_.size())))
        return;
    beginDrain(slot, now);
}

void
Sm::beginDrain(int slot, Cycle now)
{
    TbSlot &ts = slots_[static_cast<size_t>(slot)];
    ts.state = TbSlot::State::Draining;
    for (int j = 0; j < ts.numWarps; ++j) {
        WarpRt &w = warps_[static_cast<size_t>(ts.firstWarp + j)];
        w.frozen = true;
        wakeWarp(ts.firstWarp + j);
        revertIbuf(w);
    }
    scheduleEvent(std::max(drainTime(slot), now + 1), EvKind::SaveReady,
                  slot, UINT32_MAX);
}

void
Sm::fillEmptySlots(Cycle now)
{
    for (size_t s = 0; s < slots_.size(); ++s) {
        TbSlot &ts = slots_[s];
        if (ts.state != TbSlot::State::Empty)
            continue;

        // 1) A switched-out block whose faults all resolved.
        int best = -1;
        for (size_t o = 0; o < offchip_.size(); ++o) {
            if (offchip_[o].readyAt <= now &&
                (best < 0 || offchip_[o].readyAt <
                                 offchip_[static_cast<size_t>(best)].readyAt))
                best = static_cast<int>(o);
        }
        if (best >= 0) {
            OffchipBlock ob = std::move(offchip_[static_cast<size_t>(best)]);
            offchip_.erase(offchip_.begin() + best);
            ts.state = TbSlot::State::Restoring;
            Cycle done;
            if (cfg_.idealContextSwitch) {
                done = now + 1;
            } else {
                done = sys_.bulkDramTraffic(now, li_.contextBytesPerBlock) +
                       cfg_.contextSwitchOverhead;
                contextBytesMoved_ += li_.contextBytesPerBlock;
            }
            std::uint32_t rid = static_cast<std::uint32_t>(
                restorePending_.size());
            for (std::uint32_t r = 0; r < restorePending_.size(); ++r) {
                if (restorePending_[r].bt == nullptr) {
                    rid = r;
                    break;
                }
            }
            if (rid == restorePending_.size())
                restorePending_.push_back(OffchipBlock{});
            restorePending_[rid] = std::move(ob);
            scheduleEvent(done, EvKind::RestoreDone,
                          static_cast<std::int32_t>(s), rid);
            continue;
        }

        // 2) A fresh pending block from the global scheduler.
        if (supply_.hasPending() &&
            ownedBlocks() <
                static_cast<int>(slots_.size()) + cfg_.maxExtraBlocks) {
            const trace::BlockTrace *bt = supply_.nextBlock();
            if (bt) {
                installBlock(static_cast<int>(s), bt, now, nullptr);
                if (!offchip_.empty())
                    ++newBlocksViaSwitch_;
                continue;
            }
        }

        // 3) Wait for the earliest off-chip block to become ready.
        // One pending retry per SM: a retry re-runs this whole scan,
        // so per-slot events would multiply.
        if (!offchip_.empty()) {
            Cycle earliest = kNoCycle;
            for (const auto &ob : offchip_)
                earliest = std::min(earliest, ob.readyAt);
            Cycle at = std::max(earliest, now + 1);
            if (slotRetryAt_ == kNoCycle || at < slotRetryAt_) {
                slotRetryAt_ = at;
                scheduleEvent(at, EvKind::SlotRetry,
                              static_cast<std::int32_t>(s), UINT32_MAX);
            }
        }
    }
}

// ---------------------------------------------------------------------------

void
Sm::collectStats(StatSet &s) const
{
    lsu_.collectStats(s);
    if (policy_.usesOperandLog)
        log_.collectStats(s);
    s.add("sm.insts_committed", static_cast<double>(instsCommitted_));
    s.add("sm.insts_issued", static_cast<double>(instsIssued_));
    s.add("sm.fetches", static_cast<double>(fetches_));
    s.add("sm.stall_scoreboard", static_cast<double>(stallScoreboard_));
    s.add("sm.stall_log", static_cast<double>(stallLog_));
    s.add("sm.stall_lsu_queue", static_cast<double>(stallLsuQueue_));
    s.add("sm.faults_reacted", static_cast<double>(faultsSeen_));
    s.add("sm.faults_joined", static_cast<double>(faultsJoined_));
    s.add("sm.faults_gpu_handled", static_cast<double>(faultsGpuHandled_));
    s.add("sm.switch_outs", static_cast<double>(switchOuts_));
    s.add("sm.switch_ins", static_cast<double>(switchIns_));
    s.add("sm.new_blocks_via_switch",
          static_cast<double>(newBlocksViaSwitch_));
    s.add("sm.system_mode_cycles", static_cast<double>(systemModeCycles_));
    s.add("sm.traps_handled", static_cast<double>(trapsHandled_));
    s.add("sm.arith_reported_only",
          static_cast<double>(arithReportedOnly_));
    s.add("sm.context_bytes_moved", static_cast<double>(contextBytesMoved_));
    s.add("sm.blocks_completed", static_cast<double>(blocksCompleted_));
}

} // namespace gex::sm
