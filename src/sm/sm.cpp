#include "sm/sm.hpp"

#include <algorithm>
#include <sstream>

#include "check/sanitizer.hpp"
#include "common/log.hpp"
#include "gpu/local_scheduler.hpp"
#include "sm/stages/operand_collect.hpp"

namespace gex::sm {

Sm::Sm(int id, const gpu::GpuConfig &cfg, MemorySystem &sys,
       BlockSupply &supply)
    : st_(id, cfg, sys), sys_(sys), supply_(supply), fetch_(st_),
      issue_(st_), memCheck_(st_, *this), commit_(st_, *this)
{
}

void
Sm::beginKernel(const LaunchInfo &li)
{
    st_.li = li;
    GEX_ASSERT(li.blocksPerSm > 0);
    GEX_ASSERT(li.blocksPerSm * li.warpsPerBlock <= st_.cfg.sm.maxWarps);
    st_.activeWarps = li.blocksPerSm * li.warpsPerBlock;
    st_.slots.assign(static_cast<size_t>(li.blocksPerSm), TbSlot{});
    for (auto &w : st_.warps)
        w = WarpRt{};
    std::fill(st_.fetchBlocked.begin(), st_.fetchBlocked.end(), 0);
    std::fill(st_.issueStalled.begin(), st_.issueStalled.end(), 0);
    st_.offchip.clear();
    st_.extraBlocksBrought = 0;
    st_.slotRetryAt = kNoCycle;
    if (st_.policy.usesOperandLog)
        st_.log.configure(st_.cfg.operandLogBytes, li.blocksPerSm);
}

int
Sm::freeSlots() const
{
    int n = 0;
    for (const auto &s : st_.slots)
        if (s.state == TbSlot::State::Empty)
            ++n;
    return n;
}

int
Sm::ownedBlocks() const
{
    int n = static_cast<int>(st_.offchip.size());
    for (const auto &s : st_.slots)
        if (s.state != TbSlot::State::Empty)
            ++n;
    return n;
}

bool
Sm::launchBlock(const trace::BlockTrace *bt, Cycle now)
{
    for (size_t s = 0; s < st_.slots.size(); ++s) {
        if (st_.slots[s].state == TbSlot::State::Empty) {
            installBlock(static_cast<int>(s), bt, now, nullptr);
            return true;
        }
    }
    return false;
}

void
Sm::installBlock(int slot, const trace::BlockTrace *bt, Cycle now,
                 const OffchipBlock *restore_from)
{
    TbSlot &ts = st_.slots[static_cast<size_t>(slot)];
    ts.state = TbSlot::State::Running;
    ts.blockId = bt->blockId;
    ts.bt = bt;
    ts.firstWarp = slot * st_.li.warpsPerBlock;
    ts.numWarps = static_cast<int>(bt->warps.size());
    ts.warpsFinished = 0;
    ts.faultReadyAt = 0;
    ts.installedAt = now;

    for (int j = 0; j < ts.numWarps; ++j) {
        WarpRt &w = st_.warps[static_cast<size_t>(ts.firstWarp + j)];
        w = WarpRt{};
        st_.wakeWarp(ts.firstWarp + j);
        w.slot = slot;
        w.tr = &bt->warps[static_cast<size_t>(j)];
        if (restore_from) {
            const SavedWarp &sv =
                restore_from->warps[static_cast<size_t>(j)];
            w.fetchIdx = sv.fetchIdx;
            w.replayQ = sv.replayQ;
            w.waitingBarrier = sv.waitingBarrier;
            w.finished = sv.finished;
            if (w.finished)
                ++ts.warpsFinished;
        }
    }
    if (st_.san)
        st_.san->onBlockInstalled(st_.smId, slot, bt->blockId,
                                  ts.firstWarp, ts.numWarps);
    st_.didWork = true;
}

bool
Sm::busy() const
{
    if (!st_.offchip.empty())
        return true;
    for (const auto &s : st_.slots)
        if (s.state != TbSlot::State::Empty)
            return true;
    return false;
}

Cycle
Sm::nextEventCycle() const
{
    return st_.events.empty() ? kNoCycle : st_.events.top().cycle;
}

void
Sm::tick(Cycle now)
{
    tickEvents(now);
    tickCompute(now);
    drainShared(now);
}

void
Sm::tickEvents(Cycle now)
{
    st_.didWork = false;
    st_.slotReleased = false;
    if (st_.san)
        st_.san->onCycleStart(st_.smId, now);
    processEvents(now);
}

void
Sm::tickCompute(Cycle now)
{
    fetch_.tick(now);
    issue_.tick(now);
}

void
Sm::drainShared(Cycle now)
{
    for (const StagedOp &op : st_.staged) {
        if (op.kind == StagedOp::Kind::Bulk) {
            Cycle done =
                sys_.bulkDramTraffic(now, st_.li.contextBytesPerBlock) +
                st_.cfg.contextSwitchOverhead;
            st_.scheduleEventAt(done, op.seq, op.doneKind, op.arg, op.id);
            continue;
        }
        // Staged global-memory instruction: the deferred tail of
        // IssueStage::tryIssueHead. op_read completes the cycle after
        // issue, and issue happened this cycle, so now + 1 is the same
        // op_read the in-place call would have used.
        Inflight &in = st_.pool[op.id];
        WarpRt &wr = st_.warps[static_cast<size_t>(in.warp)];
        in.mem = st_.lsu.processGlobal(*in.si, *in.ti,
                                       wr.tr->lines(*in.ti), now + 1,
                                       st_.policy.stallFaultsInPipeline(),
                                       st_.cfg.faultRetryLatency);
        if (in.mem.faulted) {
            if (st_.san)
                st_.san->onFaultedTranslation(st_.smId, in.warp,
                                              in.mem.faultPage,
                                              st_.lsu.l1Tlb(), now);
            st_.scheduleInstEventAt(in.mem.faultDetect, op.seq,
                                    EvKind::FaultReact, in.warp, op.id);
            wr.maxCommitScheduled =
                std::max(wr.maxCommitScheduled, in.mem.faultDetect);
        } else {
            st_.scheduleInstEventAt(in.mem.lastTlbCheck, op.seq,
                                    EvKind::LastCheck, in.warp, op.id);
            in.commitAt = in.mem.execDone + 1;
            st_.scheduleInstEventAt(in.commitAt, op.seq + 1,
                                    EvKind::Commit, in.warp, op.id);
            wr.maxCommitScheduled =
                std::max(wr.maxCommitScheduled, in.commitAt);
        }
    }
    st_.staged.clear();
    if (!st_.obsBuf.empty()) {
        for (const obs::PipeEvent &e : st_.obsBuf)
            st_.obs->event(e);
        st_.obsBuf.clear();
    }
    if (st_.san)
        st_.san->onDrainEnd(st_.smId);
}

// ---------------------------------------------------------------------------
// Event dispatch: pop due events and hand each to its stage.

void
Sm::processEvents(Cycle now)
{
    while (!st_.events.empty() && st_.events.top().cycle <= now) {
        Event ev = st_.events.top();
        st_.events.pop();
        if (st_.san)
            st_.san->onEventPopped(st_.smId, ev.cycle, ev.seq);
        st_.didWork = true;
        switch (ev.kind) {
          case EvKind::SourceRelease: {
            // Operand-collect stage: scheduled source-release point
            // (operand read for most schemes; see issue stage).
            Inflight &in = st_.pool[ev.id];
            if (!in.squashed && in.sourcesHeld) {
                releaseSources(st_, in, now);
                st_.wakeWarp(in.warp);
            }
            st_.retireEventRef(ev.id);
            break;
          }
          case EvKind::LastCheck: {
            Inflight &in = st_.pool[ev.id];
            if (!in.squashed)
                memCheck_.onLastCheck(in, now);
            st_.retireEventRef(ev.id);
            break;
          }
          case EvKind::Commit: {
            Inflight &in = st_.pool[ev.id];
            if (!in.squashed)
                commit_.onCommit(in, now);
            st_.retireEventRef(ev.id);
            // Commit retires the record.
            Inflight &in2 = st_.pool[ev.id];
            if (in2.live && !in2.squashed && in2.eventsLeft == 0) {
                in2.live = false;
                st_.freeList.push_back(ev.id);
            }
            break;
          }
          case EvKind::FaultReact: {
            Inflight &in = st_.pool[ev.id];
            if (!in.squashed)
                memCheck_.onFaultReact(in, now);
            st_.retireEventRef(ev.id);
            break;
          }
          case EvKind::WarpResume:
            onWarpResume(ev.arg, now);
            break;
          case EvKind::TrapEnter: {
            Inflight &in = st_.pool[ev.id];
            commit_.onTrapEnter(in, now);
            st_.retireEventRef(ev.id);
            break;
          }
          case EvKind::SaveReady: {
            int slot = ev.arg;
            TbSlot &ts = st_.slots[static_cast<size_t>(slot)];
            if (ts.state != TbSlot::State::Draining)
                break;
            bool drained = true;
            for (int j = 0; j < ts.numWarps; ++j)
                if (st_.warps[static_cast<size_t>(ts.firstWarp + j)]
                        .inflight > 0)
                    drained = false;
            if (!drained) {
                st_.scheduleEvent(std::max(drainTime(slot), now + 1),
                                  EvKind::SaveReady, slot, UINT32_MAX);
                break;
            }
            ts.state = TbSlot::State::Saving;
            if (st_.cfg.idealContextSwitch) {
                st_.scheduleEvent(now + 1, EvKind::SaveDone, slot,
                                  UINT32_MAX);
            } else {
                // Bulk DRAM traffic touches the shared memory system;
                // stage it for the drain phase with the seq the
                // in-place scheduleEvent would have consumed.
                st_.contextBytesMoved += st_.li.contextBytesPerBlock;
                st_.staged.push_back({StagedOp::Kind::Bulk,
                                      EvKind::SaveDone, slot, UINT32_MAX,
                                      st_.reserveSeq()});
            }
            break;
          }
          case EvKind::SaveDone: {
            int slot = ev.arg;
            TbSlot &ts = st_.slots[static_cast<size_t>(slot)];
            GEX_ASSERT(ts.state == TbSlot::State::Saving);
            OffchipBlock ob;
            ob.blockId = ts.blockId;
            ob.bt = ts.bt;
            ob.readyAt = ts.faultReadyAt;
            ob.warps.resize(static_cast<size_t>(ts.numWarps));
            for (int j = 0; j < ts.numWarps; ++j) {
                WarpRt &w = st_.warps[static_cast<size_t>(ts.firstWarp + j)];
                SavedWarp &sv = ob.warps[static_cast<size_t>(j)];
                sv.fetchIdx = w.fetchIdx;
                sv.replayQ = std::move(w.replayQ);
                sv.waitingBarrier = w.waitingBarrier;
                sv.finished = w.finished;
                w = WarpRt{};
                st_.wakeWarp(ts.firstWarp + j);
            }
            st_.emitBlock(now, obs::PipeEventKind::ContextSaved, slot,
                          ob.blockId);
            st_.offchip.push_back(std::move(ob));
            ts = TbSlot{};
            st_.slotReleased = true;
            ++st_.switchOuts;
            fillEmptySlots(now);
            break;
          }
          case EvKind::RestoreDone: {
            int slot = ev.arg;
            TbSlot &ts = st_.slots[static_cast<size_t>(slot)];
            GEX_ASSERT(ts.state == TbSlot::State::Restoring);
            GEX_ASSERT(ev.id < st_.restorePending.size() &&
                       st_.restorePending[ev.id].bt != nullptr);
            OffchipBlock ob = std::move(st_.restorePending[ev.id]);
            st_.restorePending[ev.id] = OffchipBlock{};
            installBlock(slot, ob.bt, now, &ob);
            st_.emitBlock(now, obs::PipeEventKind::ContextRestored, slot,
                          ob.blockId);
            ++st_.switchIns;
            break;
          }
          case EvKind::SlotRetry:
            st_.slotRetryAt = kNoCycle;
            fillEmptySlots(now);
            break;
        }
    }
}

void
Sm::onWarpResume(int w, Cycle now)
{
    WarpRt &wr = st_.warps[static_cast<size_t>(w)];
    if (wr.slot < 0 || !wr.faultBlocked || now < wr.blockedUntil)
        return; // stale (block switched out, or deadline extended)
    wr.faultBlocked = false;
    st_.wakeWarp(w);
    st_.didWork = true;
}

void
Sm::checkWarpFinished(int w, Cycle now)
{
    WarpRt &wr = st_.warps[static_cast<size_t>(w)];
    if (wr.finished || wr.slot < 0)
        return;
    if (wr.fetchIdx >= wr.tr->insts.size() && wr.replayQ.empty() &&
        wr.ibuf.empty() && wr.inflight == 0 && !wr.faultBlocked) {
        wr.finished = true;
        TbSlot &ts = st_.slots[static_cast<size_t>(wr.slot)];
        ++ts.warpsFinished;
        releaseBarrierIfReady(wr.slot);
        if (ts.warpsFinished == ts.numWarps)
            finishBlock(wr.slot, now);
    }
}

void
Sm::releaseBarrierIfReady(int slot)
{
    TbSlot &ts = st_.slots[static_cast<size_t>(slot)];
    int waiting = 0;
    for (int j = 0; j < ts.numWarps; ++j)
        if (st_.warps[static_cast<size_t>(ts.firstWarp + j)].waitingBarrier)
            ++waiting;
    if (waiting == 0)
        return;
    if (waiting + ts.warpsFinished == ts.numWarps) {
        for (int j = 0; j < ts.numWarps; ++j) {
            st_.warps[static_cast<size_t>(ts.firstWarp + j)]
                .waitingBarrier = false;
            st_.wakeWarp(ts.firstWarp + j);
        }
        st_.didWork = true;
    }
}

void
Sm::finishBlock(int slot, Cycle now)
{
    TbSlot &ts = st_.slots[static_cast<size_t>(slot)];
    for (int j = 0; j < ts.numWarps; ++j) {
        st_.warps[static_cast<size_t>(ts.firstWarp + j)] = WarpRt{};
        st_.wakeWarp(ts.firstWarp + j);
    }
    ts = TbSlot{};
    st_.slotReleased = true;
    ++st_.blocksCompleted;
    fillEmptySlots(now);
}

// ---------------------------------------------------------------------------
// UC1: block switching on fault (paper section 4.1)

Cycle
Sm::drainTime(int slot) const
{
    const TbSlot &ts = st_.slots[static_cast<size_t>(slot)];
    Cycle t = 0;
    for (int j = 0; j < ts.numWarps; ++j)
        t = std::max(t, st_.warps[static_cast<size_t>(ts.firstWarp + j)]
                            .maxCommitScheduled);
    return t;
}

void
Sm::considerSwitch(int slot, int queue_depth, Cycle now)
{
    const TbSlot &ts = st_.slots[static_cast<size_t>(slot)];
    if (now < ts.installedAt + st_.cfg.minResidencyBeforeSwitch)
        return; // anti-churn: freshly installed blocks stay put
    if (!gpu::shouldSwitchOnFault(st_.cfg, queue_depth, ownedBlocks(),
                                  static_cast<int>(st_.slots.size()),
                                  supply_.hasPending(),
                                  static_cast<int>(st_.offchip.size())))
        return;
    beginDrain(slot, now);
}

void
Sm::beginDrain(int slot, Cycle now)
{
    TbSlot &ts = st_.slots[static_cast<size_t>(slot)];
    ts.state = TbSlot::State::Draining;
    for (int j = 0; j < ts.numWarps; ++j) {
        WarpRt &w = st_.warps[static_cast<size_t>(ts.firstWarp + j)];
        w.frozen = true;
        st_.wakeWarp(ts.firstWarp + j);
        // A fetch barrier engages on the *fetch* of its instruction,
        // and fetch stops right behind it — so an engaged barrier with
        // a non-empty ibuf belongs to the ibuf tail, which revertIbuf
        // is about to un-fetch. Disengage it: the saved context must
        // not carry a barrier for an instruction that was never
        // issued (it re-engages when the instruction is re-fetched
        // after restore). An engaged barrier with an empty ibuf
        // belongs to an issued instruction; the drain wait runs until
        // that instruction commits, which re-enables fetch itself.
        if (w.wdFetchDisable && !w.ibuf.empty()) {
            w.wdFetchDisable = false;
            st_.emitWarp(now, obs::PipeEventKind::FetchReenabled,
                         ts.firstWarp + j);
        }
        st_.revertIbuf(w);
    }
    st_.scheduleEvent(std::max(drainTime(slot), now + 1),
                      EvKind::SaveReady, slot, UINT32_MAX);
}

void
Sm::fillEmptySlots(Cycle now)
{
    for (size_t s = 0; s < st_.slots.size(); ++s) {
        TbSlot &ts = st_.slots[s];
        if (ts.state != TbSlot::State::Empty)
            continue;

        // 1) A switched-out block whose faults all resolved.
        int best = -1;
        for (size_t o = 0; o < st_.offchip.size(); ++o) {
            if (st_.offchip[o].readyAt <= now &&
                (best < 0 ||
                 st_.offchip[o].readyAt <
                     st_.offchip[static_cast<size_t>(best)].readyAt))
                best = static_cast<int>(o);
        }
        if (best >= 0) {
            OffchipBlock ob =
                std::move(st_.offchip[static_cast<size_t>(best)]);
            st_.offchip.erase(st_.offchip.begin() + best);
            ts.state = TbSlot::State::Restoring;
            std::uint32_t rid =
                static_cast<std::uint32_t>(st_.restorePending.size());
            for (std::uint32_t r = 0; r < st_.restorePending.size(); ++r) {
                if (st_.restorePending[r].bt == nullptr) {
                    rid = r;
                    break;
                }
            }
            if (rid == st_.restorePending.size())
                st_.restorePending.push_back(OffchipBlock{});
            st_.restorePending[rid] = std::move(ob);
            if (st_.cfg.idealContextSwitch) {
                st_.scheduleEvent(now + 1, EvKind::RestoreDone,
                                  static_cast<std::int32_t>(s), rid);
            } else {
                // Shared bulk DRAM traffic: staged like the save path.
                st_.contextBytesMoved += st_.li.contextBytesPerBlock;
                st_.staged.push_back({StagedOp::Kind::Bulk,
                                      EvKind::RestoreDone,
                                      static_cast<std::int32_t>(s), rid,
                                      st_.reserveSeq()});
            }
            continue;
        }

        // 2) A fresh pending block from the global scheduler.
        if (supply_.hasPending() &&
            ownedBlocks() <
                static_cast<int>(st_.slots.size()) + st_.cfg.maxExtraBlocks) {
            const trace::BlockTrace *bt = supply_.nextBlock();
            if (bt) {
                installBlock(static_cast<int>(s), bt, now, nullptr);
                if (!st_.offchip.empty())
                    ++st_.newBlocksViaSwitch;
                continue;
            }
        }

        // 3) Wait for the earliest off-chip block to become ready.
        // One pending retry per SM: a retry re-runs this whole scan,
        // so per-slot events would multiply.
        if (!st_.offchip.empty()) {
            Cycle earliest = kNoCycle;
            for (const auto &ob : st_.offchip)
                earliest = std::min(earliest, ob.readyAt);
            Cycle at = std::max(earliest, now + 1);
            if (st_.slotRetryAt == kNoCycle || at < st_.slotRetryAt) {
                st_.slotRetryAt = at;
                st_.scheduleEvent(at, EvKind::SlotRetry,
                                  static_cast<std::int32_t>(s), UINT32_MAX);
            }
        }
    }
}

// ---------------------------------------------------------------------------

void
Sm::collectStats(StatSet &s) const
{
    st_.lsu.collectStats(s);
    if (st_.policy.usesOperandLog)
        st_.log.collectStats(s);
    s.add("sm.insts_committed", static_cast<double>(st_.instsCommitted));
    s.add("sm.insts_issued", static_cast<double>(st_.instsIssued));
    s.add("sm.fetches", static_cast<double>(st_.fetches));
    s.add("sm.stall_scoreboard", static_cast<double>(st_.stallScoreboard));
    s.add("sm.stall_log", static_cast<double>(st_.stallLog));
    s.add("sm.stall_lsu_queue", static_cast<double>(st_.stallLsuQueue));
    s.add("sm.faults_reacted", static_cast<double>(st_.faultsSeen));
    s.add("sm.faults_joined", static_cast<double>(st_.faultsJoined));
    s.add("sm.faults_gpu_handled",
          static_cast<double>(st_.faultsGpuHandled));
    s.add("sm.switch_outs", static_cast<double>(st_.switchOuts));
    s.add("sm.switch_ins", static_cast<double>(st_.switchIns));
    s.add("sm.new_blocks_via_switch",
          static_cast<double>(st_.newBlocksViaSwitch));
    s.add("sm.system_mode_cycles",
          static_cast<double>(st_.systemModeCycles));
    s.add("sm.traps_handled", static_cast<double>(st_.trapsHandled));
    s.add("sm.arith_reported_only",
          static_cast<double>(st_.arithReportedOnly));
    s.add("sm.context_bytes_moved",
          static_cast<double>(st_.contextBytesMoved));
    s.add("sm.blocks_completed", static_cast<double>(st_.blocksCompleted));
}

void
Sm::collectResilienceStats(StatSet &s) const
{
    std::uint64_t replays = 0;
    std::uint32_t max_per_warp = 0;
    std::uint64_t warps_with = 0;
    for (std::uint32_t r : st_.replaysPerWarp) {
        replays += r;
        max_per_warp = std::max(max_per_warp, r);
        if (r > 0)
            ++warps_with;
    }
    s.add("resil.replays_total", static_cast<double>(replays));
    s.maxOf("resil.replays_max_per_warp",
            static_cast<double>(max_per_warp));
    s.add("resil.warps_with_replays", static_cast<double>(warps_with));
    s.maxOf("resil.replayq_hwm", static_cast<double>(st_.replayQHwm));
    s.add("resil.log_backpressure_cycles",
          static_cast<double>(st_.logBackpressureCycles));
    s.add("resil.fault_blocked_warp_cycles",
          static_cast<double>(st_.faultBlockedCycles));
    s.add("resil.fetch_disabled_warp_cycles",
          static_cast<double>(st_.fetchDisabledCycles));
}

void
Sm::appendDiagnostics(std::string &out) const
{
    std::ostringstream os;
    auto slotState = [](TbSlot::State st) {
        switch (st) {
          case TbSlot::State::Empty: return "empty";
          case TbSlot::State::Running: return "running";
          case TbSlot::State::Draining: return "draining";
          case TbSlot::State::Saving: return "saving";
          case TbSlot::State::Restoring: return "restoring";
        }
        return "?";
    };
    os << "  sm" << st_.smId << ": " << st_.instsCommitted
       << " committed, " << st_.blocksCompleted << " blocks retired, "
       << st_.offchip.size() << " blocks off-chip, lsu in-flight "
       << st_.inflightMem << "\n";
    for (std::size_t i = 0; i < st_.slots.size(); ++i) {
        const TbSlot &ts = st_.slots[i];
        if (ts.state == TbSlot::State::Empty)
            continue;
        os << "    slot " << i << ": block " << ts.blockId << " "
           << slotState(ts.state) << ", " << ts.warpsFinished << "/"
           << ts.numWarps << " warps finished\n";
    }
    for (int w = 0; w < st_.activeWarps; ++w) {
        const WarpRt &wr = st_.warps[static_cast<std::size_t>(w)];
        if (wr.slot < 0 || wr.finished)
            continue;
        // Classify the stage the warp is wedged in, most-specific
        // condition first.
        const char *stage = "issue-wait";
        if (wr.frozen)
            stage = "frozen-for-switch";
        else if (wr.faultBlocked)
            stage = "fault-blocked";
        else if (wr.waitingBarrier)
            stage = "barrier";
        else if (wr.wdFetchDisable)
            stage = "wd-fetch-disabled";
        else if (!wr.replayQ.empty())
            stage = "replay-wait";
        else if (wr.ibuf.empty())
            stage = "fetch-wait";
        os << "    w" << w << ": slot " << wr.slot << " " << stage
           << ", ibuf " << wr.ibuf.size() << ", replayQ "
           << wr.replayQ.size() << ", inflight " << wr.inflight;
        if (wr.blockedUntil)
            os << ", blocked until " << wr.blockedUntil;
        os << "\n";
    }
    out += os.str();
}

} // namespace gex::sm
