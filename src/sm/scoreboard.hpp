/**
 * @file
 * Per-warp register scoreboard (paper section 2.1): pending-write
 * counters enforce RAW/WAW; source-hold counters enforce WAR in the
 * absence of register renaming. The *release point* of source holds is
 * the key difference between the baseline/operand-log pipelines
 * (operand read) and the replay-queue pipeline (last TLB check).
 */

#ifndef GEX_SM_SCOREBOARD_HPP
#define GEX_SM_SCOREBOARD_HPP

#include <cstdint>
#include <vector>

#include "common/log.hpp"
#include "isa/registers.hpp"

namespace gex::sm {

/**
 * Scoreboard for every warp slot of one SM. Register name space:
 * GPRs 0..239, predicates 240..246 (PT and RZ are never tracked).
 */
class Scoreboard
{
  public:
    static constexpr int kPredBase = 240;
    static constexpr int kNumNames = 247;

    void
    init(int num_warps)
    {
        pendingWrite_.assign(
            static_cast<size_t>(num_warps) * kNumNames, 0);
        sourceHold_.assign(static_cast<size_t>(num_warps) * kNumNames, 0);
        gen_.assign(static_cast<size_t>(num_warps), 0);
    }

    /**
     * Generation counter: bumped on every tracked acquire/release for
     * @p warp. While it is unchanged, any canRead/canWrite query on
     * that warp returns the same answer as before — the issue stage
     * uses this to skip re-checking a head instruction that already
     * stalled on an untouched scoreboard.
     */
    std::uint64_t
    gen(int warp) const
    {
        return gen_[static_cast<size_t>(warp)];
    }

    /** Scoreboard name for a GPR; -1 when untracked (RZ). */
    static int
    regName(isa::Reg r)
    {
        return r == isa::kRegZero ? -1 : static_cast<int>(r);
    }

    /** Scoreboard name for a predicate; -1 when untracked (PT). */
    static int
    predName(isa::PredReg p)
    {
        return p == isa::kPredTrue ? -1 : kPredBase + static_cast<int>(p);
    }

    bool
    canRead(int warp, int name) const
    {
        return name < 0 || at(pendingWrite_, warp, name) == 0;
    }

    /** Writable: no pending write (WAW) and no pending source hold (WAR). */
    bool
    canWrite(int warp, int name) const
    {
        return name < 0 || (at(pendingWrite_, warp, name) == 0 &&
                            at(sourceHold_, warp, name) == 0);
    }

    void
    acquireWrite(int warp, int name)
    {
        if (name >= 0) {
            ++at(pendingWrite_, warp, name);
            ++gen_[static_cast<size_t>(warp)];
        }
    }

    void
    releaseWrite(int warp, int name)
    {
        if (name >= 0) {
            auto &c = at(pendingWrite_, warp, name);
            GEX_ASSERT(c > 0, "releaseWrite underflow");
            --c;
            ++gen_[static_cast<size_t>(warp)];
        }
    }

    void
    acquireSource(int warp, int name)
    {
        if (name >= 0) {
            ++at(sourceHold_, warp, name);
            ++gen_[static_cast<size_t>(warp)];
        }
    }

    void
    releaseSource(int warp, int name)
    {
        if (name >= 0) {
            auto &c = at(sourceHold_, warp, name);
            GEX_ASSERT(c > 0, "releaseSource underflow");
            --c;
            ++gen_[static_cast<size_t>(warp)];
        }
    }

    /** True when the warp has no outstanding holds (drained). */
    bool clean(int warp) const;

  private:
    std::uint16_t &
    at(std::vector<std::uint16_t> &v, int warp, int name)
    {
        return v[static_cast<size_t>(warp) * kNumNames +
                 static_cast<size_t>(name)];
    }
    const std::uint16_t &
    at(const std::vector<std::uint16_t> &v, int warp, int name) const
    {
        return v[static_cast<size_t>(warp) * kNumNames +
                 static_cast<size_t>(name)];
    }

    std::vector<std::uint16_t> pendingWrite_;
    std::vector<std::uint16_t> sourceHold_;
    std::vector<std::uint64_t> gen_;
};

} // namespace gex::sm

#endif // GEX_SM_SCOREBOARD_HPP
