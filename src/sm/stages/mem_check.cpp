#include "sm/stages/mem_check.hpp"

#include <algorithm>

#include "sm/sm.hpp"
#include "sm/stages/operand_collect.hpp"

namespace gex::sm {

void
MemCheckStage::onLastCheck(Inflight &in, Cycle now)
{
    WarpRt &wr = st_.warps[static_cast<size_t>(in.warp)];
    st_.emitInst(now, obs::PipeEventKind::TlbChecked, in);
    if (st_.policy.releaseSourcesAtLastCheck() && in.sourcesHeld) {
        // A global-memory instruction has no SEL/PSETP predicate
        // sources, so the guard predicate completes the set.
        releaseSources(st_, in, now, /*extra_preds=*/false);
    }
    if (in.logHeld)
        releaseLogSpace(st_, in, now);
    if (st_.policy.reenableFetchAtLastCheck() && in.isGlobalMem &&
        wr.wdFetchDisable) {
        st_.fetchDisabledCycles += now - wr.wdDisabledSince;
        wr.wdFetchDisable = false;
        wr.fetchResumeAt = now + st_.cfg.sm.fetchRestartPenalty;
        // Wake the fetch stage when the refill completes (the main
        // loop skips cycles based on pending events).
        st_.scheduleEvent(wr.fetchResumeAt, EvKind::WarpResume, in.warp,
                          UINT32_MAX);
        st_.emitWarp(now, obs::PipeEventKind::FetchReenabled, in.warp);
    }
    st_.wakeWarp(in.warp);
}

void
MemCheckStage::squash(Inflight &in, Cycle now)
{
    WarpRt &wr = st_.warps[static_cast<size_t>(in.warp)];
    st_.emitInst(now, obs::PipeEventKind::Squashed, in);
    if (in.sourcesHeld)
        releaseSources(st_, in, now);
    if (in.dstHeld)
        releaseDestinations(st_, in);
    if (in.logHeld)
        releaseLogSpace(st_, in, now);
    if (in.isControl) {
        GEX_ASSERT(wr.controlPending > 0);
        --wr.controlPending;
    }
    if (in.isGlobalMem)
        --st_.inflightMem;
    --wr.inflight;
    st_.wakeWarp(in.warp);
    in.squashed = true;
}

void
MemCheckStage::onFaultReact(Inflight &in, Cycle now)
{
    GEX_ASSERT(st_.policy.squashOnFault(),
               "fault reaction in non-preemptible scheme");
    WarpRt &wr = st_.warps[static_cast<size_t>(in.warp)];
    ++st_.faultsSeen;
    if (in.mem.kind == vm::FaultKind::Joined)
        ++st_.faultsJoined;
    if (in.mem.kind == vm::FaultKind::GpuAlloc) {
        ++st_.faultsGpuHandled;
        st_.systemModeCycles += in.mem.resolveAll - in.mem.faultDetect;
    }
    st_.emitInst(now, obs::PipeEventKind::Faulted, in,
                 static_cast<std::uint64_t>(in.mem.kind));

    const std::uint32_t replay_idx = in.traceIdx;
    const std::uint32_t static_idx = in.ti->staticIdx;
    squash(in, now);
    PipelineState::insertReplay(wr, replay_idx);
    ++st_.replaysPerWarp[static_cast<size_t>(in.warp)];
    st_.replayQHwm = std::max(st_.replayQHwm, wr.replayQ.size());
    st_.emitFetch(now, obs::PipeEventKind::Replayed, in.warp, replay_idx,
                  static_idx);
    st_.revertIbuf(wr);
    if (wr.wdFetchDisable) {
        st_.fetchDisabledCycles += now - wr.wdDisabledSince;
        wr.wdFetchDisable = false;
    }

    st_.extendBlocked(wr, now,
                      std::max(in.mem.resolveAll, wr.maxCommitScheduled));
    wr.faultBlocked = true;
    st_.scheduleEvent(std::max(wr.blockedUntil, now + 1),
                      EvKind::WarpResume, in.warp, UINT32_MAX);

    if (wr.slot >= 0) {
        TbSlot &ts = st_.slots[static_cast<size_t>(wr.slot)];
        ts.faultReadyAt = std::max(ts.faultReadyAt, in.mem.resolveAll);
        if (st_.cfg.blockSwitching && ts.state == TbSlot::State::Running &&
            in.mem.kind != vm::FaultKind::GpuAlloc)
            sm_.considerSwitch(wr.slot, in.mem.queueDepth, now);
    }
}

} // namespace gex::sm
