#include "sm/stages/fetch.hpp"

#include <algorithm>

#include "sm/stages/decode.hpp"

namespace gex::sm {

void
FetchStage::tick(Cycle now)
{
    // Only the warps the kernel populated are scanned — slots past
    // activeWarps can never fetch, and skipping them keeps the visit
    // order of the live warps identical.
    const int n = st_.activeWarps;
    const bool greedy =
        st_.cfg.sm.schedPolicy == gpu::SchedPolicy::GreedyThenOldest;
    // GTO's oldest-first scan at full width visited indices
    // 0..maxWarps-2 after the sticky warp; mirror that bound.
    const int scan =
        greedy ? std::min(n, static_cast<int>(st_.warps.size()) - 1) + 1
               : n;
    // LRR successor of the last fetching warp, tracked incrementally —
    // a divide per scanned warp is measurable at this call rate.
    int lrr = std::min(st_.rrFetch, n - 1) + 1;
    if (lrr == n)
        lrr = 0;
    for (int lines = 0, i = 0;
         i < scan && lines < st_.cfg.sm.fetchPerCycle; ++i) {
        // LRR rotates the start; GTO retries the last warp, then
        // scans from the oldest (lowest slot).
        int w;
        if (greedy) {
            w = i == 0 ? st_.rrFetch : i - 1;
            if (i > 0 && w == st_.rrFetch)
                continue;
        } else {
            w = lrr;
            if (++lrr == n)
                lrr = 0;
        }
        if (st_.fetchBlocked[static_cast<size_t>(w)])
            continue; // still blocked on unchanged state — see fetchBlocked
        WarpRt &wr = st_.warps[static_cast<size_t>(w)];
        if (!wr.schedulable()) {
            st_.fetchBlocked[static_cast<size_t>(w)] = 1;
            continue;
        }

        int fetched_from_warp = 0;
        while (fetched_from_warp < st_.cfg.sm.fetchWidth) {
            if (static_cast<int>(wr.ibuf.size()) >=
                st_.cfg.sm.instBufferDepth)
                break;
            if (wr.controlPending > 0 || wr.wdFetchDisable)
                break;
            if (now < wr.fetchResumeAt)
                break;

            std::uint32_t idx;
            bool from_replay = false;
            if (!wr.replayQ.empty()) {
                idx = wr.replayQ.front();
                wr.replayQ.pop_front();
                from_replay = true;
            } else if (wr.fetchIdx < wr.tr->insts.size()) {
                idx = wr.fetchIdx++;
            } else {
                break;
            }

            const trace::TraceInst &ti = wr.tr->insts[idx];
            const isa::Instruction &si = decodeInst(st_, ti);
            if (si.isControl())
                ++wr.controlPending;
            if (st_.policy.fetchBarrier(si.isGlobalMem(),
                                        si.traits().canRaiseArith,
                                        st_.cfg.arithExceptions)) {
                wr.wdFetchDisable = true;
                wr.wdDisabledSince = now;
                st_.emitFetch(now, obs::PipeEventKind::FetchDisabled, w,
                              idx, ti.staticIdx);
            }
            wr.ibuf.push_back(InstBufEntry{idx, decodeReady(now)});
            st_.emitFetch(now, obs::PipeEventKind::Fetched, w, idx,
                          ti.staticIdx, from_replay ? 1 : 0);
            ++st_.fetches;
            ++fetched_from_warp;
            st_.didWork = true;
        }
        if (fetched_from_warp > 0) {
            ++lines;
            st_.rrFetch = w;
        } else {
            // Mark state-blocked warps so later scans skip them after
            // one byte read; a wait on fetchResumeAt is the only purely
            // time-based reason and must keep the warp scannable.
            const bool time_blocked =
                static_cast<int>(wr.ibuf.size()) <
                    st_.cfg.sm.instBufferDepth &&
                wr.controlPending == 0 && !wr.wdFetchDisable &&
                now < wr.fetchResumeAt;
            if (!time_blocked)
                st_.fetchBlocked[static_cast<size_t>(w)] = 1;
        }
    }
}

} // namespace gex::sm
