/**
 * @file
 * Issue stage: scoreboarded 2-wide in-order issue from up to two
 * warps per cycle (paper section 2.1). Admission runs the
 * operand-collect readiness checks, the structural gates (LSU slot
 * and queue depth, backend unit ports) and the operand-log space
 * reservation (SchemePolicy::logAdmission), then acquires scoreboard
 * entries and schedules the instruction's lifecycle events.
 */

#ifndef GEX_SM_STAGES_ISSUE_HPP
#define GEX_SM_STAGES_ISSUE_HPP

#include "sm/pipeline.hpp"

namespace gex::sm {

class IssueStage
{
  public:
    explicit IssueStage(PipelineState &st) : st_(st) {}

    void tick(Cycle now);

  private:
    bool tryIssueHead(int w, Cycle now);

    PipelineState &st_;
};

} // namespace gex::sm

#endif // GEX_SM_STAGES_ISSUE_HPP
