#include "sm/stages/commit.hpp"

#include <algorithm>

#include "check/sanitizer.hpp"
#include "sm/sm.hpp"
#include "sm/stages/operand_collect.hpp"

namespace gex::sm {

using isa::Opcode;

void
CommitStage::onCommit(Inflight &in, Cycle now)
{
    WarpRt &wr = st_.warps[static_cast<size_t>(in.warp)];
    const isa::Instruction &si = *in.si;

    if (in.sourcesHeld) {
        // Safety net (e.g. replay-queue mem inst whose last check and
        // commit coincide and ordering put commit first).
        releaseSources(st_, in, now);
    }
    if (in.dstHeld)
        releaseDestinations(st_, in);
    if (in.logHeld)
        releaseLogSpace(st_, in, now);
    if (in.isControl) {
        GEX_ASSERT(wr.controlPending > 0);
        --wr.controlPending;
    }
    if (in.isArithBarrier && wr.wdFetchDisable) {
        // Arithmetic fetch barriers re-enable at commit in both
        // warp-disable variants (there is no TLB check to wait for).
        st_.fetchDisabledCycles += now - wr.wdDisabledSince;
        wr.wdFetchDisable = false;
        wr.fetchResumeAt = now + st_.cfg.sm.fetchRestartPenalty;
        st_.scheduleEvent(wr.fetchResumeAt, EvKind::WarpResume, in.warp,
                          UINT32_MAX);
        st_.emitWarp(now, obs::PipeEventKind::FetchReenabled, in.warp);
    }
    if (in.isGlobalMem) {
        --st_.inflightMem;
        if (st_.policy.reenableFetchAtCommit() && wr.wdFetchDisable) {
            st_.fetchDisabledCycles += now - wr.wdDisabledSince;
            wr.wdFetchDisable = false;
            wr.fetchResumeAt = now + st_.cfg.sm.fetchRestartPenalty;
            st_.scheduleEvent(wr.fetchResumeAt, EvKind::WarpResume,
                              in.warp, UINT32_MAX);
            st_.emitWarp(now, obs::PipeEventKind::FetchReenabled, in.warp);
        }
    }
    if (si.op == Opcode::BAR && wr.slot >= 0) {
        wr.waitingBarrier = true;
        sm_.releaseBarrierIfReady(wr.slot);
    }

    --wr.inflight;
    ++st_.instsCommitted;
    st_.emitInst(now, obs::PipeEventKind::Committed, in);
    // Deliberate exactly-once-retirement break (check/hooks.hpp): emit
    // a second Committed event for the same dynamic instruction.
    if (st_.san && check::take(st_.san->hooks.doubleCommit))
        st_.emitInst(now, obs::PipeEventKind::Committed, in);
    st_.wakeWarp(in.warp);
    sm_.checkWarpFinished(in.warp, now);
}

void
CommitStage::onTrapEnter(Inflight &in, Cycle now)
{
    WarpRt &wr = st_.warps[static_cast<size_t>(in.warp)];
    if (wr.slot >= 0) {
        st_.extendBlocked(wr, now, now + st_.cfg.trapHandlerCycles);
        wr.faultBlocked = true;
        st_.wakeWarp(in.warp);
        st_.scheduleEvent(wr.blockedUntil, EvKind::WarpResume, in.warp,
                          UINT32_MAX);
        ++st_.trapsHandled;
        st_.systemModeCycles += st_.cfg.trapHandlerCycles;
        st_.emitInst(now, obs::PipeEventKind::TrapEntered, in);
    }
}

} // namespace gex::sm
