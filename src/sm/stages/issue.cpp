#include "sm/stages/issue.hpp"

#include <algorithm>

#include "check/sanitizer.hpp"
#include "sm/stages/decode.hpp"
#include "sm/stages/operand_collect.hpp"

namespace gex::sm {

using isa::Instruction;
using isa::Unit;

void
IssueStage::tick(Cycle now)
{
    // Deliberate event-heap corruption (check/hooks.hpp): schedule a
    // stale resume into the past so the sanitizer's never-into-the-past
    // shadow trips.
    if (st_.san && now > 0 &&
        check::take(st_.san->hooks.corruptEventSeq))
        st_.scheduleEvent(0, EvKind::WarpResume, 0, UINT32_MAX);
    // Same live-warp scan bound (and divide-free rotation) as fetch.
    const int n = st_.activeWarps;
    const bool greedy =
        st_.cfg.sm.schedPolicy == gpu::SchedPolicy::GreedyThenOldest;
    const int scan =
        greedy ? std::min(n, static_cast<int>(st_.warps.size()) - 1) + 1
               : n;
    int lrr = std::min(st_.rrIssue, n - 1) + 1;
    if (lrr == n)
        lrr = 0;
    int total = 0;
    int warps_used = 0;
    int last_issued = st_.rrIssue;
    for (int i = 0;
         i < scan && total < st_.cfg.sm.issueWidth && warps_used < 2;
         ++i) {
        int w;
        if (greedy) {
            w = i == 0 ? st_.rrIssue : i - 1;
            if (i > 0 && w == st_.rrIssue)
                continue;
        } else {
            w = lrr;
            if (++lrr == n)
                lrr = 0;
        }
        // Byte-gate: a warp whose head is known-stalled on an
        // untouched scoreboard re-registers the stall (exactly one
        // increment, as a full rescan would) off one byte read.
        if (st_.issueStalled[static_cast<size_t>(w)]) {
            ++st_.stallScoreboard;
            continue;
        }
        // Cheap per-warp gates run inline; the full decode + check in
        // tryIssueHead only runs for warps that might actually issue.
        int k = 0;
        WarpRt &wr = st_.warps[static_cast<size_t>(w)];
        while (k < st_.cfg.sm.maxIssuePerWarp &&
               total < st_.cfg.sm.issueWidth) {
            if (!wr.schedulable() || wr.ibuf.empty() ||
                wr.ibuf.front().readyAt > now)
                break;
            if (wr.ibuf.front().idx == wr.sbStallIdx &&
                st_.sb.gen(w) == wr.sbStallGen) {
                st_.issueStalled[static_cast<size_t>(w)] = 1;
                ++st_.stallScoreboard;
                break;
            }
            if (!tryIssueHead(w, now))
                break;
            ++k;
            ++total;
        }
        if (k > 0) {
            ++warps_used;
            last_issued = w;
        }
    }
    if (total > 0)
        st_.rrIssue = last_issued;
}

bool
IssueStage::tryIssueHead(int w, Cycle now)
{
    WarpRt &wr = st_.warps[static_cast<size_t>(w)];
    if (!wr.schedulable() || wr.ibuf.empty() ||
        wr.ibuf.front().readyAt > now)
        return false;

    const std::uint32_t idx = wr.ibuf.front().idx;
    // Stall memo: this head already failed the scoreboard checks and
    // no scoreboard entry of this warp changed since, so the same
    // checks would fail again — register the stall without re-decoding.
    if (idx == wr.sbStallIdx && st_.sb.gen(w) == wr.sbStallGen) {
        ++st_.stallScoreboard;
        return false;
    }
    const trace::TraceInst &ti = wr.tr->insts[idx];
    const Instruction &si = decodeInst(st_, ti);
    const auto &t = si.traits();

    // --- scoreboard checks (RAW on sources, WAW+WAR on destinations) ---
    // The checks depend only on the instruction and this warp's
    // scoreboard state, so a failure stays valid until gen(w) moves.
    if (!operandsReady(st_.sb, w, si)) {
        wr.sbStallIdx = idx;
        wr.sbStallGen = st_.sb.gen(w);
        st_.issueStalled[static_cast<size_t>(w)] = 1;
        ++st_.stallScoreboard;
        return false;
    }

    const bool is_global = si.isGlobalMem();

    // --- structural gates ---
    if (is_global) {
        if (st_.lsuIssuedAt == now) {
            return false; // one memory instruction per cycle
        }
        if (st_.inflightMem >= st_.cfg.sm.lsuQueueDepth) {
            ++st_.stallLsuQueue;
            return false;
        }
    }

    // --- operand log gate (OperandLog scheme) ---
    std::uint32_t log_bytes = 0;
    if (st_.policy.logAdmission(is_global, ti.numActive)) {
        log_bytes = OperandLog::entryBytes(t.isStore || t.isAtomic);
        if (!st_.log.tryAllocate(wr.slot, log_bytes)) {
            ++st_.stallLog;
            // Distinct-cycle back-pressure: count each cycle in which
            // at least one issue attempt was refused log space, not
            // each refused attempt.
            if (st_.lastLogStallCycle != now) {
                st_.lastLogStallCycle = now;
                ++st_.logBackpressureCycles;
            }
            return false;
        }
    }

    // --- issue ---
    wr.ibuf.pop_front();
    st_.wakeWarp(w); // buffer space freed
    const Cycle op_read = now + 1;

    std::uint32_t id = st_.allocInflight();
    Inflight &in = st_.pool[id];
    in.traceIdx = idx;
    in.warp = w;
    in.ti = &ti;
    in.si = &si;
    in.isGlobalMem = is_global;
    in.isControl = si.isControl();
    in.logHeld = log_bytes > 0;
    in.logBytes = log_bytes;
    in.logPartition = wr.slot;
    st_.emitInst(now, obs::PipeEventKind::Issued, in);
    if (in.logHeld)
        st_.emitInst(now, obs::PipeEventKind::LogAllocated, in, log_bytes);

    acquireOperands(st_, in, now);

    if (is_global) {
        st_.lsuIssuedAt = now;
        ++st_.inflightMem;
        // The LSU tail (translation through the shared MMU, L2/DRAM
        // access) runs in the serial drain phase; stage it with two
        // reserved seqs so the LastCheck-then-Commit (or FaultReact)
        // events sort exactly where the in-place calls put them. The
        // timeline feeds only strictly-future events, so nothing else
        // this cycle needs it.
        st_.staged.push_back({StagedOp::Kind::Mem, EvKind::LastCheck, w,
                              id, st_.reserveSeq(2)});
        // Source release point depends on the scheme. Under the
        // replay-queue scheme, sources of a faulted instruction stay
        // held until it is squashed (its last TLB check never comes).
        if (st_.policy.releaseSourcesAtOperandRead(true)) {
            st_.scheduleInstEvent(op_read, EvKind::SourceRelease, w, id);
        } else if (st_.san &&
                   check::take(st_.san->hooks.breakRqHold)) {
            // Deliberate protocol break (check/hooks.hpp): release the
            // replay-queue hold at operand read anyway.
            st_.scheduleInstEvent(op_read, EvKind::SourceRelease, w, id);
        }
    } else {
        Cycle start = 0;
        Cycle lat = 1;
        switch (t.unit) {
          case Unit::Math:
            start = st_.mathPort.reserve(op_read + 1);
            lat = st_.cfg.sm.mathLatency;
            break;
          case Unit::Sfu:
            start = st_.sfuPort.reserve(op_read + 1);
            lat = st_.cfg.sm.sfuLatency;
            break;
          case Unit::Branch:
            start = st_.branchPort.reserve(op_read + 1);
            lat = st_.cfg.sm.branchLatency;
            break;
          case Unit::Shared:
            start = st_.sharedPort.reserve(op_read + 1);
            lat = st_.cfg.sm.sharedLatency;
            break;
          case Unit::None:
          default:
            start = op_read + 1;
            lat = 0;
            break;
        }
        in.commitAt = start + lat;
        st_.scheduleInstEvent(in.commitAt, EvKind::Commit, w, id);
        const bool arith_capable =
            st_.cfg.arithExceptions && t.canRaiseArith;
        in.isArithBarrier =
            arith_capable && st_.policy.fetchDisableOnGlobalMem;
        if (st_.policy.releaseSourcesAtOperandRead(arith_capable)) {
            st_.scheduleInstEvent(op_read, EvKind::SourceRelease, w, id);
        } else {
            // Replay queue extension: sources of possibly-raising
            // instructions release only once they are known safe
            // (here: completion); see paper section 3.2.
        }
        if (arith_capable && ti.arithFault) {
            if (st_.policy.preemptible)
                st_.scheduleInstEvent(in.commitAt, EvKind::TrapEnter, w,
                                      id);
            else
                ++st_.arithReportedOnly; // current GPUs: report, no recovery
        }
    }

    ++wr.inflight;
    // Global-memory instructions extend maxCommitScheduled in the
    // drain phase, once their timeline exists; no reader runs before
    // then (the drain-time users all live in the events phase).
    if (!is_global)
        wr.maxCommitScheduled =
            std::max(wr.maxCommitScheduled, in.commitAt);
    ++st_.instsIssued;
    st_.didWork = true;
    return true;
}

} // namespace gex::sm
