/**
 * @file
 * Writeback/commit stage: out-of-order retirement at each
 * instruction's completion cycle. Commit is the scheme-independent
 * cleanup point — any scoreboard holds, operand-log space or fetch
 * barriers an earlier stage did not release fall away here — plus the
 * entry point into the trap handler for completed arithmetic faults.
 */

#ifndef GEX_SM_STAGES_COMMIT_HPP
#define GEX_SM_STAGES_COMMIT_HPP

#include "sm/pipeline.hpp"

namespace gex::sm {

class Sm;

class CommitStage
{
  public:
    CommitStage(PipelineState &st, Sm &sm) : st_(st), sm_(sm) {}

    /** Retire @p in: release everything still held, update the warp. */
    void onCommit(Inflight &in, Cycle now);

    /**
     * A completed arithmetic-fault instruction enters the trap
     * handler: the warp runs in system mode for trapHandlerCycles (no
     * replay — the instruction committed).
     */
    void onTrapEnter(Inflight &in, Cycle now);

  private:
    PipelineState &st_;
    Sm &sm_;
};

} // namespace gex::sm

#endif // GEX_SM_STAGES_COMMIT_HPP
