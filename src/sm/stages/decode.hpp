/**
 * @file
 * Decode / instruction-buffer stage. Decode is a fixed one-cycle
 * stage in this model: the fetch stage pushes an InstBufEntry whose
 * readyAt is the cycle after fetch (decodeReady), and the issue stage
 * re-resolves the static instruction from the trace index when the
 * entry reaches the buffer head. The helpers here are the single
 * place that mapping lives; both fetch (barrier classification) and
 * issue (operand checks) decode through them.
 */

#ifndef GEX_SM_STAGES_DECODE_HPP
#define GEX_SM_STAGES_DECODE_HPP

#include "sm/pipeline.hpp"

namespace gex::sm {

/** Static instruction behind a dynamic trace record. */
inline const isa::Instruction &
decodeInst(const PipelineState &st, const trace::TraceInst &ti)
{
    return st.li.kernel->program.at(ti.staticIdx);
}

/** Cycle a just-fetched instruction becomes issue-eligible. */
inline Cycle
decodeReady(Cycle fetched_at)
{
    return fetched_at + 1;
}

} // namespace gex::sm

#endif // GEX_SM_STAGES_DECODE_HPP
