/**
 * @file
 * Operand-collect stage: acquisition and release of scoreboard
 * entries (and the operand-log space that shadows them). *When* these
 * helpers run is the essence of the paper's schemes — the issue stage
 * acquires, then each scheme picks its release point (operand read,
 * last TLB check, commit, or squash) through the SchemePolicy hooks —
 * so the acquire/release mechanics live in one module and every stage
 * calls the same code.
 *
 * Header-only and inline: these run per instruction on the timing
 * loop's hot path.
 */

#ifndef GEX_SM_STAGES_OPERAND_COLLECT_HPP
#define GEX_SM_STAGES_OPERAND_COLLECT_HPP

#include "check/sanitizer.hpp"
#include "isa/instruction.hpp"
#include "sm/pipeline.hpp"

namespace gex::sm {

/**
 * Issue-stage readiness: RAW on every source (registers and
 * predicates), WAW+WAR on every destination. Short-circuits on the
 * first hazard; a false result is stable until the warp's scoreboard
 * generation moves (the issue stage's stall memo relies on this).
 */
inline bool
operandsReady(const Scoreboard &sb, int w, const isa::Instruction &si)
{
    using isa::Opcode;
    const auto &t = si.traits();
    for (int i = 0; i < t.numSrcs; ++i) {
        if (i == 1 && si.useImm)
            continue;
        if (!sb.canRead(w, Scoreboard::regName(si.srcs[i])))
            return false;
    }
    if (!sb.canRead(w, Scoreboard::predName(si.pred)))
        return false;
    if ((si.op == Opcode::SEL || si.op == Opcode::PSETP) &&
        !sb.canRead(w, Scoreboard::predName(si.predA)))
        return false;
    if (si.op == Opcode::PSETP &&
        !sb.canRead(w, Scoreboard::predName(si.predB)))
        return false;
    if (t.writesDst && !sb.canWrite(w, Scoreboard::regName(si.dst)))
        return false;
    if ((si.op == Opcode::SETP || si.op == Opcode::PSETP) &&
        !sb.canWrite(w, Scoreboard::predName(si.predDst)))
        return false;
    return true;
}

/**
 * Acquire every scoreboard entry of a just-issued instruction:
 * source holds (WAR protection) and destination writes (RAW/WAW).
 */
inline void
acquireOperands(PipelineState &st, Inflight &in, Cycle now)
{
    using isa::Opcode;
    const isa::Instruction &si = *in.si;
    const auto &t = si.traits();
    const int w = in.warp;
    for (int i = 0; i < t.numSrcs; ++i) {
        if (i == 1 && si.useImm)
            continue;
        st.sb.acquireSource(w, Scoreboard::regName(si.srcs[i]));
    }
    st.sb.acquireSource(w, Scoreboard::predName(si.pred));
    if (si.op == Opcode::SEL || si.op == Opcode::PSETP)
        st.sb.acquireSource(w, Scoreboard::predName(si.predA));
    if (si.op == Opcode::PSETP)
        st.sb.acquireSource(w, Scoreboard::predName(si.predB));
    in.sourcesHeld = true;
    st.emitInst(now, obs::PipeEventKind::SourcesHeld, in);
    if (t.writesDst) {
        st.sb.acquireWrite(w, Scoreboard::regName(si.dst));
        in.dstHeld = true;
    }
    if (si.op == Opcode::SETP || si.op == Opcode::PSETP) {
        st.sb.acquireWrite(w, Scoreboard::predName(si.predDst));
        in.dstHeld = true;
    }
}

/**
 * Release the source holds of @p in. The mem-check stage releases
 * only the register sources and the guard predicate
 * (@p extra_preds = false: a global-memory instruction has no
 * SEL/PSETP predicate sources); every other release point covers the
 * full set.
 */
inline void
releaseSources(PipelineState &st, Inflight &in, Cycle now,
               bool extra_preds = true)
{
    using isa::Opcode;
    const isa::Instruction &si = *in.si;
    const auto &t = si.traits();
    for (int i = 0; i < t.numSrcs; ++i) {
        if (i == 1 && si.useImm)
            continue;
        st.sb.releaseSource(in.warp, Scoreboard::regName(si.srcs[i]));
    }
    st.sb.releaseSource(in.warp, Scoreboard::predName(si.pred));
    if (extra_preds) {
        if (si.op == Opcode::SEL || si.op == Opcode::PSETP)
            st.sb.releaseSource(in.warp, Scoreboard::predName(si.predA));
        if (si.op == Opcode::PSETP)
            st.sb.releaseSource(in.warp, Scoreboard::predName(si.predB));
    }
    in.sourcesHeld = false;
    st.emitInst(now, obs::PipeEventKind::SourcesReleased, in);
}

/** Release the destination writes of @p in (commit or squash). */
inline void
releaseDestinations(PipelineState &st, Inflight &in)
{
    using isa::Opcode;
    const isa::Instruction &si = *in.si;
    if (si.traits().writesDst)
        st.sb.releaseWrite(in.warp, Scoreboard::regName(si.dst));
    if (si.op == Opcode::SETP || si.op == Opcode::PSETP)
        st.sb.releaseWrite(in.warp, Scoreboard::predName(si.predDst));
    in.dstHeld = false;
}

/** Release the operand-log space of @p in (last check/commit/squash). */
inline void
releaseLogSpace(PipelineState &st, Inflight &in, Cycle now)
{
    // Deliberate leak (check/hooks.hpp): drop one release, keeping the
    // entry's bytes allocated in the partition.
    if (st.san && check::take(st.san->hooks.leakLogEntry)) {
        in.logHeld = false;
        return;
    }
    st.log.release(in.logPartition, in.logBytes);
    in.logHeld = false;
    st.emitInst(now, obs::PipeEventKind::LogReleased, in, in.logBytes);
}

} // namespace gex::sm

#endif // GEX_SM_STAGES_OPERAND_COLLECT_HPP
