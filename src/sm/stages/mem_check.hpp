/**
 * @file
 * LSU / TLB-check stage: reactions to the two outcomes of a
 * global-memory instruction's translation — the last TLB check passed
 * (the paper's Figure 5 event that wd-lastcheck, replay-queue and
 * operand-log key their release/re-enable decisions on), or a request
 * page-faulted (squash + replay under every preemptible scheme).
 */

#ifndef GEX_SM_STAGES_MEM_CHECK_HPP
#define GEX_SM_STAGES_MEM_CHECK_HPP

#include "sm/pipeline.hpp"

namespace gex::sm {

class Sm;

class MemCheckStage
{
  public:
    MemCheckStage(PipelineState &st, Sm &sm) : st_(st), sm_(sm) {}

    /** All requests of @p in translated without fault. */
    void onLastCheck(Inflight &in, Cycle now);

    /** A request of @p in faulted: squash, queue for replay, block. */
    void onFaultReact(Inflight &in, Cycle now);

    /** Kill an in-flight instruction, releasing everything it holds. */
    void squash(Inflight &in, Cycle now);

  private:
    PipelineState &st_;
    Sm &sm_;
};

} // namespace gex::sm

#endif // GEX_SM_STAGES_MEM_CHECK_HPP
