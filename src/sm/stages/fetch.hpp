/**
 * @file
 * Fetch stage: one instruction line (fetchWidth instructions) from
 * one warp per cycle (paper section 2.1), replay queue first, with
 * the scheme's fetch barriers (SchemePolicy::fetchBarrier) stopping a
 * line mid-way.
 */

#ifndef GEX_SM_STAGES_FETCH_HPP
#define GEX_SM_STAGES_FETCH_HPP

#include "sm/pipeline.hpp"

namespace gex::sm {

class FetchStage
{
  public:
    explicit FetchStage(PipelineState &st) : st_(st) {}

    void tick(Cycle now);

  private:
    PipelineState &st_;
};

} // namespace gex::sm

#endif // GEX_SM_STAGES_FETCH_HPP
