#include "sm/lsu.hpp"

namespace gex::sm {

Lsu::Lsu(const gpu::SmConfig &cfg, MemorySystem &sys)
    : sys_(sys), tlb_(cfg.l1Tlb), l1_(cfg.l1), port_(1),
      xlatePort_(cfg.translationsPerCycle),
      frontendCycles_(cfg.memFrontendCycles)
{
    lowerFn_ = [this](Addr p, Cycle t) { return sys_.translatePage(p, t); };
    l2FetchFn_ = [this](Addr l, Cycle t) { return sys_.l2Load(l, t); };
}

Cycle
Lsu::accessForData(const isa::Instruction &inst, Addr line, Cycle earliest)
{
    const auto &t = inst.traits();
    if (t.isAtomic) {
        // Atomics are performed at the L2 (GPU-typical); they bypass
        // the L1 data array but still paid translation.
        return sys_.l2Atomic(line, earliest);
    }
    if (t.isStore) {
        // Write-through, no-allocate: local ack at L1 speed; the
        // write traffic continues to L2 for bandwidth accounting.
        Cycle ack = l1_.store(line, earliest);
        sys_.l2Store(line, ack);
        return ack;
    }
    // Load through L1; misses fetch from L2 (which fetches from DRAM).
    return l1_.load(line, earliest, l2FetchFn_);
}

MemTimeline
Lsu::processGlobal(const isa::Instruction &inst, const trace::TraceInst &ti,
                   const Addr *lines, Cycle op_read_done,
                   bool stall_on_fault, Cycle fault_retry_latency)
{
    ++instsProcessed_;
    MemTimeline tl;
    const Cycle front_done = op_read_done + frontendCycles_;
    tl.lastTlbCheck = front_done;
    tl.execDone = front_done;

    if (ti.numLines == 0) {
        // Fully predicated-off instruction: flows through the pipe
        // with no memory work.
        tl.execDone = front_done + 1;
        tl.lastTlbCheck = front_done + 1;
        return tl;
    }

    for (std::uint16_t i = 0; i < ti.numLines; ++i) {
        Addr line = lines[i];
        Addr page = pageOf(line);
        ++requests_;

        // One coalesced request enters translation per cycle, after
        // the address-calc/coalescing front end.
        Cycle xlate_start = xlatePort_.reserve(front_done + 1);
        vm::Translation tr = tlb_.translate(page, xlate_start, lowerFn_);

        if (!tr.fault) {
            tl.lastTlbCheck = std::max(tl.lastTlbCheck, tr.ready);
            Cycle done = accessForData(inst, line, tr.ready);
            tl.execDone = std::max(tl.execDone, done);
            continue;
        }

        // Page fault on this request.
        ++faults_;
        if (tr.detect < tl.faultDetect) {
            tl.faultDetect = tr.detect;
            tl.faultPage = page;
        }
        tl.resolveAll = std::max(tl.resolveAll, tr.resolve);
        if (tl.kind == vm::FaultKind::None ||
            tr.kind == vm::FaultKind::GpuAlloc)
            tl.kind = tr.kind;
        tl.queueDepth = std::max(tl.queueDepth, tr.queueDepth);

        if (stall_on_fault) {
            // Baseline: the request is parked in the fill unit and
            // re-sent when the fault resolves (paper section 2.3);
            // the instruction stays stalled in the pipeline.
            Cycle retry = tr.resolve + fault_retry_latency;
            Cycle done = accessForData(inst, line, retry);
            tl.execDone = std::max(tl.execDone, done);
            tl.lastTlbCheck = std::max(tl.lastTlbCheck, retry);
        } else {
            tl.faulted = true;
        }
    }
    return tl;
}

void
Lsu::collectStats(StatSet &s) const
{
    tlb_.collectStats(s);
    l1_.collectStats(s);
    s.add("lsu.insts", static_cast<double>(instsProcessed_));
    s.add("lsu.requests", static_cast<double>(requests_));
    s.add("lsu.faulted_requests", static_cast<double>(faults_));
}

} // namespace gex::sm
