#include "sm/scoreboard.hpp"

namespace gex::sm {

bool
Scoreboard::clean(int warp) const
{
    for (int n = 0; n < kNumNames; ++n)
        if (at(pendingWrite_, warp, n) != 0 || at(sourceHold_, warp, n) != 0)
            return false;
    return true;
}

} // namespace gex::sm
