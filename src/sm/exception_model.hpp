/**
 * @file
 * Exception scheme policies (the paper's core contribution, section 3)
 * and the operand log storage model (section 3.3).
 *
 * The SM pipeline consults a SchemePolicy at fetch, issue, operand
 * read, last-TLB-check and fault time; each of the five schemes is a
 * distinct setting of these decision points:
 *
 *   scheme          fetch disable      source release    fault action
 *   baseline        control insts      operand read      stall in pipe
 *   wd-commit       + global mem,      operand read      squash+replay
 *                     until commit
 *   wd-lastcheck    + global mem,      operand read      squash+replay
 *                     until last check
 *   replay-queue    control insts      last TLB check    squash+replay
 *                                      (global mem only)
 *   operand-log     control insts      operand read      squash+replay
 *                                      (log backs replay; finite space)
 */

#ifndef GEX_SM_EXCEPTION_MODEL_HPP
#define GEX_SM_EXCEPTION_MODEL_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "gpu/config.hpp"

namespace gex::sm {

/**
 * Decision-point view of a Scheme (see file comment).
 *
 * The raw flags parameterize the scheme; the pipeline stages consult
 * them only through the named per-stage hooks below, so each stage
 * module states *which* decision it is making rather than re-deriving
 * it from flag combinations. Everything stays flag-based and inline —
 * no virtual dispatch on the timing loop.
 */
struct SchemePolicy {
    gpu::Scheme kind = gpu::Scheme::StallOnFault;

    /** Fetching a global-memory instruction disables warp fetch. */
    bool fetchDisableOnGlobalMem = false;
    /** Fetch re-enables at last TLB check instead of commit. */
    bool reenableAtLastCheck = false;
    /** Global-mem source operands release at last TLB check. */
    bool holdSourcesUntilLastCheck = false;
    /** Issue requires (and holds) operand log space. */
    bool usesOperandLog = false;
    /** Faults squash + replay (otherwise stall in the pipeline). */
    bool preemptible = false;

    static SchemePolicy make(gpu::Scheme s);

    // --- per-stage hooks ------------------------------------------------

    /**
     * Fetch stage: does this instruction act as a fetch barrier for
     * its warp (warp-disable schemes; arithmetic-capable instructions
     * join in under the arith-exception extension)?
     */
    bool
    fetchBarrier(bool is_global_mem, bool can_raise_arith,
                 bool arith_exceptions) const
    {
        return fetchDisableOnGlobalMem &&
               (is_global_mem || (arith_exceptions && can_raise_arith));
    }

    /**
     * Issue stage: must this instruction reserve operand-log space
     * before it may issue (operand-log scheme back-pressure)?
     */
    bool
    logAdmission(bool is_global_mem, unsigned num_active) const
    {
        return usesOperandLog && is_global_mem && num_active > 0;
    }

    /**
     * Operand-collect stage: do the source scoreboard holds of an
     * instruction that can fault (@p can_fault: global memory, or
     * arithmetic-capable under the extension) release at operand read?
     * When false (replay queue) they stay held until the last TLB
     * check / completion so a replay re-reads unclobbered values.
     */
    bool
    releaseSourcesAtOperandRead(bool can_fault) const
    {
        return !(holdSourcesUntilLastCheck && can_fault);
    }

    /** Mem-check stage: held sources release at the last TLB check. */
    bool
    releaseSourcesAtLastCheck() const
    {
        return holdSourcesUntilLastCheck;
    }

    /** Mem-check stage: fetch barrier lifts at the last TLB check. */
    bool
    reenableFetchAtLastCheck() const
    {
        return reenableAtLastCheck;
    }

    /** Commit stage: fetch barrier lifts only at commit (wd-commit). */
    bool
    reenableFetchAtCommit() const
    {
        return fetchDisableOnGlobalMem && !reenableAtLastCheck;
    }

    /** Fault reaction: squash + replay the faulting instruction. */
    bool
    squashOnFault() const
    {
        return preemptible;
    }

    /** LSU: faulted requests stall in the pipeline (baseline). */
    bool
    stallFaultsInPipeline() const
    {
        return !preemptible;
    }
};

/**
 * Operand log (section 3.3): a single-ported SRAM partitioned per
 * resident thread block at launch. Loads log one 256 B entry (source
 * address x 32 lanes), stores/atomics two (address + data). A full
 * partition back-pressures memory-instruction issue, which is how a
 * small log costs performance.
 */
class OperandLog
{
  public:
    static constexpr std::uint32_t kLoadEntryBytes = 256;
    static constexpr std::uint32_t kStoreEntryBytes = 512;

    /** Partition @p totalBytes across @p partitions resident blocks. */
    void configure(std::uint32_t total_bytes, int partitions);

    /** Bytes a given instruction class needs. */
    static std::uint32_t entryBytes(bool is_store_like);

    bool tryAllocate(int partition, std::uint32_t bytes);
    void release(int partition, std::uint32_t bytes);

    std::uint32_t partitionBytes() const { return partitionBytes_; }
    std::uint32_t used(int partition) const;
    std::uint64_t allocFailures() const { return failures_; }

    void collectStats(StatSet &s) const;

  private:
    std::uint32_t partitionBytes_ = 0;
    std::vector<std::uint32_t> used_;
    std::uint64_t failures_ = 0;
    std::uint64_t allocs_ = 0;
};

} // namespace gex::sm

#endif // GEX_SM_EXCEPTION_MODEL_HPP
