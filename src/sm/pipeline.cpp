#include "sm/pipeline.hpp"

#include "check/sanitizer.hpp"
#include "sm/stages/decode.hpp"

namespace gex::sm {

void
PipelineState::sanEventScheduled(Cycle cycle, std::uint64_t seq,
                                 EvKind kind)
{
    san->onEventScheduled(smId, cycle, seq, static_cast<int>(kind));
}

PipelineState::PipelineState(int id, const gpu::GpuConfig &config,
                             MemorySystem &sys)
    : smId(id), cfg(config), policy(SchemePolicy::make(config.scheme)),
      lsu(config.sm, sys), mathPort(config.sm.numMathUnits), sfuPort(1),
      branchPort(1), sharedPort(1)
{
    sb.init(cfg.sm.maxWarps);
    warps.resize(static_cast<size_t>(cfg.sm.maxWarps));
    fetchBlocked.assign(static_cast<size_t>(cfg.sm.maxWarps), 0);
    issueStalled.assign(static_cast<size_t>(cfg.sm.maxWarps), 0);
    replaysPerWarp.assign(static_cast<size_t>(cfg.sm.maxWarps), 0);
    // Pre-size the event heap from the config-derived in-flight bound:
    // each in-flight instruction carries at most three live events
    // (source release, last check, commit) and in-flight work per warp
    // is capped by the instruction buffer plus the LSU queue.
    std::vector<Event> backing;
    backing.reserve(static_cast<std::size_t>(cfg.sm.maxWarps) * 3 *
                    static_cast<std::size_t>(cfg.sm.instBufferDepth +
                                             cfg.sm.lsuQueueDepth));
    events = decltype(events)(std::greater<>(), std::move(backing));
    pool.reserve(static_cast<std::size_t>(cfg.sm.maxWarps) *
                 static_cast<std::size_t>(cfg.sm.instBufferDepth +
                                          cfg.sm.lsuQueueDepth));
}

void
PipelineState::revertIbuf(WarpRt &w)
{
    if (w.ibuf.empty())
        return;
    for (std::size_t i = 0; i < w.ibuf.size(); ++i) {
        const trace::TraceInst &ti = w.tr->insts[w.ibuf[i].idx];
        const isa::Instruction &si = decodeInst(*this, ti);
        if (si.isControl()) {
            GEX_ASSERT(w.controlPending > 0);
            --w.controlPending;
        }
    }
    w.fetchIdx = w.ibuf.front().idx;
    w.ibuf.clear();
}

void
PipelineState::insertReplay(WarpRt &w, std::uint32_t trace_idx)
{
    std::size_t pos = w.replayQ.lowerBound(trace_idx);
    GEX_ASSERT(pos == w.replayQ.size() || w.replayQ[pos] != trace_idx,
               "instruction already in replay queue");
    w.replayQ.insert(pos, trace_idx);
}

void
PipelineState::emitWarpSlow(Cycle now, obs::PipeEventKind k, int w,
                            std::uint64_t arg)
{
    obs::PipeEvent e;
    e.cycle = now;
    e.sm = static_cast<std::int16_t>(smId);
    e.slot = static_cast<std::int16_t>(warps[static_cast<size_t>(w)].slot);
    e.warp = w;
    e.kind = k;
    e.arg = arg;
    obsBuf.push_back(e);
}

void
PipelineState::emitInstSlow(Cycle now, obs::PipeEventKind k,
                            const Inflight &in, std::uint64_t arg)
{
    obs::PipeEvent e;
    e.cycle = now;
    e.sm = static_cast<std::int16_t>(smId);
    e.slot = static_cast<std::int16_t>(
        warps[static_cast<size_t>(in.warp)].slot);
    e.warp = in.warp;
    e.kind = k;
    e.traceIdx = in.traceIdx;
    e.staticIdx = in.ti ? in.ti->staticIdx : obs::PipeEvent::kNoIndex;
    e.arg = arg;
    obsBuf.push_back(e);
}

void
PipelineState::emitFetchSlow(Cycle now, obs::PipeEventKind k, int w,
                             std::uint32_t trace_idx,
                             std::uint32_t static_idx, std::uint64_t arg)
{
    obs::PipeEvent e;
    e.cycle = now;
    e.sm = static_cast<std::int16_t>(smId);
    e.slot = static_cast<std::int16_t>(warps[static_cast<size_t>(w)].slot);
    e.warp = w;
    e.kind = k;
    e.traceIdx = trace_idx;
    e.staticIdx = static_idx;
    e.arg = arg;
    obsBuf.push_back(e);
}

void
PipelineState::emitBlockSlow(Cycle now, obs::PipeEventKind k, int slot,
                             std::uint64_t block_id)
{
    obs::PipeEvent e;
    e.cycle = now;
    e.sm = static_cast<std::int16_t>(smId);
    e.slot = static_cast<std::int16_t>(slot);
    e.kind = k;
    e.arg = block_id;
    obsBuf.push_back(e);
}

} // namespace gex::sm
