/**
 * @file
 * Shared state of the SM pipeline: the runtime structures every stage
 * module (src/sm/stages) ticks over — per-warp state, the in-flight
 * instruction pool, the event heap, backend unit ports, statistics —
 * plus the observer emission points.
 *
 * PipelineState is plain data with small inline helpers; the pipeline
 * *logic* lives in the stage modules (fetch, decode, issue,
 * operand-collect, mem-check, commit) and the block-lifecycle /
 * context-switch machinery stays in sm::Sm. Splitting state from
 * stages keeps each stage a small unit while every stage still sees
 * the one shared pipeline, exactly as the hardware's stages share
 * latches and the scoreboard.
 */

#ifndef GEX_SM_PIPELINE_HPP
#define GEX_SM_PIPELINE_HPP

#include <algorithm>
#include <queue>
#include <vector>

#include "common/log.hpp"
#include "common/ring.hpp"
#include "func/kernel.hpp"
#include "gpu/config.hpp"
#include "obs/observer.hpp"
#include "sm/exception_model.hpp"
#include "sm/lsu.hpp"
#include "sm/scoreboard.hpp"
#include "trace/trace.hpp"

namespace gex::check {
class SimSanitizer;
}

namespace gex::sm {

/** Per-kernel launch geometry computed by the GPU front end. */
struct LaunchInfo {
    const func::Kernel *kernel = nullptr;
    const trace::KernelTrace *trace = nullptr;
    int warpsPerBlock = 0;
    int blocksPerSm = 0;           ///< occupancy (resident TBs per SM)
    std::uint64_t contextBytesPerBlock = 0;
};

/** Non-instruction pipeline events and context-switch steps. */
enum class EvKind : std::uint8_t {
    SourceRelease, LastCheck, Commit, FaultReact, WarpResume,
    SaveReady, SaveDone, RestoreDone, SlotRetry, TrapEnter,
};

struct Event {
    Cycle cycle;
    std::uint64_t seq;
    EvKind kind;
    std::int32_t arg;   ///< warp or slot index
    std::uint32_t id;   ///< inflight pool index (when applicable)
    bool
    operator>(const Event &o) const
    {
        return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
    }
};

/** One issued-but-not-retired instruction (pool slot). */
struct Inflight {
    std::uint32_t traceIdx = 0;
    int warp = -1;
    const trace::TraceInst *ti = nullptr;
    const isa::Instruction *si = nullptr;
    Cycle commitAt = 0;
    MemTimeline mem;
    bool isGlobalMem = false;
    bool isControl = false;
    bool isArithBarrier = false; ///< wd fetch barrier for arith exc.
    bool squashed = false;
    bool sourcesHeld = false;
    bool dstHeld = false;
    bool logHeld = false;
    std::uint32_t logBytes = 0;
    int logPartition = 0;
    int eventsLeft = 0;    ///< pool slot frees when this hits 0
    bool live = false;
};

/** Decoded-instruction buffer entry (see stages/decode.hpp). */
struct InstBufEntry {
    std::uint32_t idx;
    Cycle readyAt;
};

struct WarpRt {
    // The fields below are everything the fetch/issue scans touch
    // for a warp that cannot make progress this cycle; they are
    // kept together (ahead of the rings) so a failing scan reads
    // one cache line per warp.
    int slot = -1;
    int controlPending = 0;
    bool wdFetchDisable = false;
    bool waitingBarrier = false;
    bool exitFetched = false;
    bool exitCommitted = false;
    bool finished = false;
    bool faultBlocked = false;
    bool frozen = false;       ///< TB draining for a context switch
    std::uint32_t fetchIdx = 0;
    const trace::WarpTrace *tr = nullptr;
    Cycle fetchResumeAt = 0;   ///< wd re-enable pipeline refill
    /**
     * Issue-stall memo: the head trace index that last failed the
     * scoreboard checks and the warp's scoreboard generation at
     * that moment. While both still match, the same checks would
     * fail identically, so the issue stage re-registers the stall
     * without re-decoding the instruction.
     */
    std::uint32_t sbStallIdx = UINT32_MAX;
    std::uint64_t sbStallGen = 0;
    /** Cycle the current wd fetch barrier engaged (resilience stats). */
    Cycle wdDisabledSince = 0;
    // Inline ring buffers: the fetch/issue stages scan every warp
    // every cycle, so the common-case queue state lives inside the
    // WarpRt itself (no per-entry heap nodes to chase).
    Ring<InstBufEntry, 4> ibuf;
    Ring<std::uint32_t, 4> replayQ;
    int inflight = 0;
    Cycle blockedUntil = 0;
    Cycle maxCommitScheduled = 0;

    bool
    schedulable() const
    {
        return slot >= 0 && !finished && !waitingBarrier &&
               !faultBlocked && !frozen;
    }
};

struct TbSlot {
    enum class State : std::uint8_t {
        Empty, Running, Draining, Saving, Restoring,
    };
    State state = State::Empty;
    std::uint32_t blockId = 0;
    const trace::BlockTrace *bt = nullptr;
    int firstWarp = 0;
    int numWarps = 0;
    int warpsFinished = 0;
    Cycle faultReadyAt = 0;
    Cycle installedAt = 0; ///< for the UC1 anti-churn residency rule
};

struct SavedWarp {
    std::uint32_t fetchIdx = 0;
    Ring<std::uint32_t, 4> replayQ;
    bool waitingBarrier = false;
    bool finished = false;
};

struct OffchipBlock {
    std::uint32_t blockId = 0;
    const trace::BlockTrace *bt = nullptr;
    std::vector<SavedWarp> warps;
    Cycle readyAt = 0;
};

/**
 * One shared-memory-system operation staged by the SM-local tick
 * phases for the serial drain phase (Sm::drainShared). The phased
 * tick engine keeps L2/DRAM/MMU port reservations in ascending-SM
 * FIFO order — the exact order the unsplit serial tick produced — by
 * recording each would-be access here instead of performing it
 * in-place, together with the event sequence number(s) reserved at
 * the original call site so the resulting events keep their exact
 * position in the (cycle, seq) total order.
 */
struct StagedOp {
    enum class Kind : std::uint8_t {
        /** Global-memory instruction: LSU translate + cache access
         *  (deferred tail of IssueStage::tryIssueHead; two seqs
         *  reserved, LastCheck/FaultReact then Commit). */
        Mem,
        /** Context save/restore bulk DRAM transfer (deferred from the
         *  SaveReady handler / fillEmptySlots; one seq reserved for
         *  the completion event). */
        Bulk,
    };
    Kind kind;
    EvKind doneKind;    ///< Bulk: SaveDone or RestoreDone
    std::int32_t arg;   ///< Bulk: slot; Mem: warp
    std::uint32_t id;   ///< Mem: inflight id; Bulk: restore id payload
    std::uint64_t seq;  ///< first reserved event sequence number
};

/**
 * Everything the stage modules share. Helpers that run on the
 * fetch/issue/event hot paths are defined inline here so the stage
 * split does not cost the timing loop any cross-module calls.
 */
struct PipelineState {
    PipelineState(int id, const gpu::GpuConfig &config, MemorySystem &sys);

    int smId;
    const gpu::GpuConfig &cfg;
    SchemePolicy policy;
    Scoreboard sb;
    OperandLog log;
    Lsu lsu;

    LaunchInfo li;
    /**
     * Warps actually populated by the current kernel (blocksPerSm ×
     * warpsPerBlock). The fetch/issue scans rotate over only these;
     * slots past the count can never become schedulable, and skipping
     * them preserves the visit order of the live ones exactly.
     */
    int activeWarps = 0;
    std::vector<WarpRt> warps;
    /**
     * Fetch gate cache, one byte per warp: 1 means the last fetch scan
     * found the warp blocked for a *state* reason (buffer full, pending
     * control, fetch-disable, trace drained, unschedulable) — nothing
     * time-based. Until some event mutates the warp (wakeWarp), a
     * rescan would reproduce the same result, so the fetch stage skips
     * the warp after one byte read instead of touching its WarpRt.
     * Warps blocked only on fetchResumeAt are never marked (time
     * unblocks them without an accompanying state change). Skipped
     * scans have no side effects (no counters, no didWork), so this is
     * invisible to simulation results.
     */
    std::vector<std::uint8_t> fetchBlocked;
    /**
     * Issue gate cache, one byte per warp: 1 means the warp is
     * schedulable, its ibuf head has passed its ready cycle, and that
     * head already failed the scoreboard checks with no scoreboard
     * change since. A rescan would fail the same way with exactly one
     * stallScoreboard increment, so the issue scan performs just that
     * increment off one byte read. Any event that could change the
     * warp's schedulability, ibuf head, or scoreboard state clears the
     * byte (wakeWarp) and the next scan re-runs the full checks.
     */
    std::vector<std::uint8_t> issueStalled;

    std::vector<TbSlot> slots;
    std::vector<OffchipBlock> offchip;
    std::vector<OffchipBlock> restorePending;
    int extraBlocksBrought = 0;
    Cycle lsuIssuedAt = kNoCycle;
    /** Earliest pending SlotRetry event (dedup; kNoCycle = none). */
    Cycle slotRetryAt = kNoCycle;

    std::vector<Inflight> pool;
    std::vector<std::uint32_t> freeList;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
    std::uint64_t eventSeq = 0;

    mem::Port mathPort;
    mem::Port sfuPort;
    mem::Port branchPort;
    mem::Port sharedPort;
    int inflightMem = 0;
    int rrFetch = 0;
    int rrIssue = 0;
    bool didWork = false;
    /**
     * A TB slot went Empty this cycle (block finished or saved
     * off-chip). The only cycles in which Gpu::allDone() can flip
     * true, so the driver's per-cycle completion scan is gated on it.
     */
    bool slotReleased = false;

    /**
     * Shared-resource operations staged by this cycle's SM-local
     * phases, in program order (event-handler stagings first, then at
     * most one issued memory instruction). Drained FIFO by
     * Sm::drainShared in ascending SM order and always empty between
     * cycles.
     */
    std::vector<StagedOp> staged;

    /** Attached observer; nullptr (the default) disables all tracing. */
    obs::PipelineObserver *obs = nullptr;
    /**
     * Attached invariant sanitizer (--check); nullptr (the default)
     * disables the event-heap shadow at the cost of one
     * predicted-not-taken branch per scheduled event.
     */
    check::SimSanitizer *san = nullptr;
    /**
     * Events emitted this cycle, buffered until this SM's drain phase
     * so parallel SM-local phases never call the (shared) observer
     * concurrently. Flushing in ascending SM order per cycle replays
     * the exact sequence the serial tick delivered. Empty whenever no
     * observer is attached (the emit guards never run).
     */
    std::vector<obs::PipeEvent> obsBuf;

    // statistics
    std::uint64_t instsCommitted = 0;
    std::uint64_t instsIssued = 0;
    std::uint64_t fetches = 0;
    std::uint64_t stallScoreboard = 0;
    std::uint64_t stallLog = 0;
    std::uint64_t stallLsuQueue = 0;
    std::uint64_t faultsSeen = 0;
    std::uint64_t faultsJoined = 0;
    std::uint64_t faultsGpuHandled = 0;
    std::uint64_t switchOuts = 0;
    std::uint64_t switchIns = 0;
    std::uint64_t newBlocksViaSwitch = 0;
    std::uint64_t systemModeCycles = 0;
    std::uint64_t trapsHandled = 0;
    std::uint64_t arithReportedOnly = 0;
    std::uint64_t contextBytesMoved = 0;
    std::uint64_t blocksCompleted = 0;

    // Resilience counters (emitted only through the opt-in
    // Sm::collectResilienceStats block; tracked unconditionally —
    // every site is on a fault/stall path, never the per-cycle scans).
    /** Replays queued per warp slot, accumulated across blocks. */
    std::vector<std::uint32_t> replaysPerWarp;
    /** Deepest replay queue any warp ever reached. */
    std::size_t replayQHwm = 0;
    /** Cycles with at least one warp refused issue for log space. */
    std::uint64_t logBackpressureCycles = 0;
    Cycle lastLogStallCycle = kNoCycle;
    /** Warp-cycles spent fault-blocked (squash-to-resume windows). */
    std::uint64_t faultBlockedCycles = 0;
    /** Warp-cycles spent under a warp-disable fetch barrier. */
    std::uint64_t fetchDisabledCycles = 0;

    /**
     * Extend a warp's blocked window to @p until and account the
     * newly-added span (fault reaction and trap paths). Call before
     * setting faultBlocked so the previous state is visible.
     */
    void
    extendBlocked(WarpRt &w, Cycle now, Cycle until)
    {
        Cycle from = w.faultBlocked ? std::max(w.blockedUntil, now) : now;
        if (until > w.blockedUntil)
            w.blockedUntil = until;
        if (w.blockedUntil > from)
            faultBlockedCycles += w.blockedUntil - from;
    }

    // --- hot-path helpers (inline: see file comment) -------------------

    void
    wakeWarp(int w)
    {
        fetchBlocked[static_cast<std::size_t>(w)] = 0;
        issueStalled[static_cast<std::size_t>(w)] = 0;
    }

    std::uint32_t
    allocInflight()
    {
        if (!freeList.empty()) {
            std::uint32_t id = freeList.back();
            freeList.pop_back();
            pool[id] = Inflight{};
            pool[id].live = true;
            return id;
        }
        pool.push_back(Inflight{});
        pool.back().live = true;
        return static_cast<std::uint32_t>(pool.size() - 1);
    }

    /** Schedule a non-instruction event (id is free payload). */
    void
    scheduleEvent(Cycle cycle, EvKind kind, std::int32_t arg,
                  std::uint32_t id)
    {
        events.push(Event{cycle, ++eventSeq, kind, arg, id});
        if (san)
            sanEventScheduled(cycle, eventSeq, kind);
    }

    /** Schedule an event referencing inflight record @p id. */
    void
    scheduleInstEvent(Cycle cycle, EvKind kind, std::int32_t arg,
                      std::uint32_t id)
    {
        events.push(Event{cycle, ++eventSeq, kind, arg, id});
        ++pool[id].eventsLeft;
        if (san)
            sanEventScheduled(cycle, eventSeq, kind);
    }

    /**
     * Reserve @p n consecutive event sequence numbers for a StagedOp.
     * Taking them at the original (staging) call site keeps the
     * (cycle, seq) tie-break order of the later-materialized events
     * identical to the unstaged schedule; an unused reserved seq (the
     * faulted-instruction case) leaves a harmless gap.
     */
    std::uint64_t
    reserveSeq(std::uint64_t n = 1)
    {
        std::uint64_t first = eventSeq + 1;
        eventSeq += n;
        return first;
    }

    /** Materialize a staged event with its reserved seq. */
    void
    scheduleEventAt(Cycle cycle, std::uint64_t seq, EvKind kind,
                    std::int32_t arg, std::uint32_t id)
    {
        events.push(Event{cycle, seq, kind, arg, id});
        if (san)
            sanEventScheduled(cycle, seq, kind);
    }

    /** Same, referencing inflight record @p id. */
    void
    scheduleInstEventAt(Cycle cycle, std::uint64_t seq, EvKind kind,
                        std::int32_t arg, std::uint32_t id)
    {
        events.push(Event{cycle, seq, kind, arg, id});
        ++pool[id].eventsLeft;
        if (san)
            sanEventScheduled(cycle, seq, kind);
    }

    /**
     * Un-fetch a warp's decoded-instruction buffer: rewind fetchIdx to
     * the buffer head and drop the control-pending counts the buffered
     * instructions contributed (squash and drain paths).
     */
    void revertIbuf(WarpRt &w);

    /** Queue @p trace_idx for re-fetch, keeping replayQ sorted. */
    static void insertReplay(WarpRt &w, std::uint32_t trace_idx);

    void
    retireEventRef(std::uint32_t id)
    {
        Inflight &in = pool[id];
        GEX_ASSERT(in.eventsLeft > 0);
        if (--in.eventsLeft == 0 && in.live && in.squashed) {
            in.live = false;
            freeList.push_back(id);
        }
    }

    // --- observer emission ---------------------------------------------
    // One predicted-not-taken branch when no observer is attached; the
    // event construction lives out of line. Emission appends to obsBuf
    // (fields captured at emit time); the virtual observer dispatch
    // happens when Sm::drainShared flushes the buffer.

    /** Warp-level event (slot taken from the warp's runtime state). */
    void
    emitWarp(Cycle now, obs::PipeEventKind k, int w, std::uint64_t arg = 0)
    {
        if (obs)
            emitWarpSlow(now, k, w, arg);
    }

    /** Instruction-level event for an in-flight record. */
    void
    emitInst(Cycle now, obs::PipeEventKind k, const Inflight &in,
             std::uint64_t arg = 0)
    {
        if (obs)
            emitInstSlow(now, k, in, arg);
    }

    /** Instruction-level event before an Inflight record exists. */
    void
    emitFetch(Cycle now, obs::PipeEventKind k, int w,
              std::uint32_t trace_idx, std::uint32_t static_idx,
              std::uint64_t arg = 0)
    {
        if (obs)
            emitFetchSlow(now, k, w, trace_idx, static_idx, arg);
    }

    /** Block-level event (context save/restore). */
    void
    emitBlock(Cycle now, obs::PipeEventKind k, int slot,
              std::uint64_t block_id)
    {
        if (obs)
            emitBlockSlow(now, k, slot, block_id);
    }

  private:
    /** Out of line so this header need not see the sanitizer class. */
    void sanEventScheduled(Cycle cycle, std::uint64_t seq, EvKind kind);
    void emitWarpSlow(Cycle now, obs::PipeEventKind k, int w,
                      std::uint64_t arg);
    void emitInstSlow(Cycle now, obs::PipeEventKind k, const Inflight &in,
                      std::uint64_t arg);
    void emitFetchSlow(Cycle now, obs::PipeEventKind k, int w,
                       std::uint32_t trace_idx, std::uint32_t static_idx,
                       std::uint64_t arg);
    void emitBlockSlow(Cycle now, obs::PipeEventKind k, int slot,
                       std::uint64_t block_id);
};

} // namespace gex::sm

#endif // GEX_SM_PIPELINE_HPP
