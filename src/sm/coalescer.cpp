#include "sm/coalescer.hpp"

#include <algorithm>

namespace gex::sm {

void
coalesceInto(const Addr *lane_addrs, std::size_t n,
             std::vector<Addr> &lines_out)
{
    lines_out.clear();
    lines_out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        lines_out.push_back(lineOf(lane_addrs[i]));
    std::sort(lines_out.begin(), lines_out.end());
    lines_out.erase(std::unique(lines_out.begin(), lines_out.end()),
                    lines_out.end());
}

std::vector<Addr>
coalesce(const std::vector<Addr> &lane_addrs)
{
    std::vector<Addr> lines;
    coalesceInto(lane_addrs.data(), lane_addrs.size(), lines);
    return lines;
}

std::size_t
coalescedCount(const std::vector<Addr> &lane_addrs)
{
    // A warp has at most kWarpSize lanes, so the working set fits on
    // the stack; fall back to the allocating path for oversized input.
    if (lane_addrs.size() > static_cast<std::size_t>(kWarpSize))
        return coalesce(lane_addrs).size();
    Addr lines[kWarpSize];
    std::size_t n = lane_addrs.size();
    for (std::size_t i = 0; i < n; ++i)
        lines[i] = lineOf(lane_addrs[i]);
    std::sort(lines, lines + n);
    return static_cast<std::size_t>(std::unique(lines, lines + n) - lines);
}

} // namespace gex::sm
