#include "sm/coalescer.hpp"

#include <algorithm>

namespace gex::sm {

std::vector<Addr>
coalesce(const std::vector<Addr> &lane_addrs)
{
    std::vector<Addr> lines;
    lines.reserve(lane_addrs.size());
    for (Addr a : lane_addrs)
        lines.push_back(lineOf(a));
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

std::size_t
coalescedCount(std::vector<Addr> lane_addrs)
{
    return coalesce(lane_addrs).size();
}

} // namespace gex::sm
