/**
 * @file
 * Memory access coalescing (paper Figure 5): one memory request per
 * unique cache line touched by a warp instruction. Used at trace
 * generation time; the LSU then charges one translation + one cache
 * access per generated request.
 */

#ifndef GEX_SM_COALESCER_HPP
#define GEX_SM_COALESCER_HPP

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace gex::sm {

/**
 * Coalesce @p n per-lane addresses into @p lines_out (replaced, not
 * appended): unique, sorted line addresses. The caller owns and reuses
 * @p lines_out across calls, so steady-state tracing allocates nothing.
 */
void coalesceInto(const Addr *lane_addrs, std::size_t n,
                  std::vector<Addr> &lines_out);

/** Unique, sorted line addresses for a set of per-lane addresses. */
std::vector<Addr> coalesce(const std::vector<Addr> &lane_addrs);

/** Number of requests @p lane_addrs coalesces to (no copy, no heap
 *  allocation for warp-sized inputs). */
std::size_t coalescedCount(const std::vector<Addr> &lane_addrs);

} // namespace gex::sm

#endif // GEX_SM_COALESCER_HPP
