/**
 * @file
 * Memory access coalescing (paper Figure 5): one memory request per
 * unique cache line touched by a warp instruction. Used at trace
 * generation time; the LSU then charges one translation + one cache
 * access per generated request.
 */

#ifndef GEX_SM_COALESCER_HPP
#define GEX_SM_COALESCER_HPP

#include <vector>

#include "common/types.hpp"

namespace gex::sm {

/** Unique, sorted line addresses for a set of per-lane addresses. */
std::vector<Addr> coalesce(const std::vector<Addr> &lane_addrs);

/** Number of requests @p lane_addrs coalesces to (no allocation). */
std::size_t coalescedCount(std::vector<Addr> lane_addrs);

} // namespace gex::sm

#endif // GEX_SM_COALESCER_HPP
