/**
 * @file
 * Global-memory pipeline (LSU) of one SM: per-request address
 * translation through the L1 TLB (the "last TLB check" event central to
 * the paper's schemes, Figure 5), then cache hierarchy access. Also the
 * MemorySystem interface the SM uses to reach shared resources.
 */

#ifndef GEX_SM_LSU_HPP
#define GEX_SM_LSU_HPP

#include "common/stats.hpp"
#include "gpu/config.hpp"
#include "isa/instruction.hpp"
#include "mem/cache.hpp"
#include "trace/trace.hpp"
#include "vm/tlb.hpp"

namespace gex::sm {

/**
 * Shared (system-level) resources, implemented by gpu::Gpu: the L2
 * cache, DRAM, the system MMU (L2 TLB + walkers + fault routing) and
 * bulk DRAM traffic for context switches.
 */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    virtual Cycle l2Load(Addr line, Cycle earliest) = 0;
    virtual Cycle l2Store(Addr line, Cycle earliest) = 0;
    virtual Cycle l2Atomic(Addr line, Cycle earliest) = 0;
    virtual vm::Translation translatePage(Addr page, Cycle earliest) = 0;
    virtual Cycle bulkDramTraffic(Cycle earliest, std::uint64_t bytes) = 0;
    virtual int pendingFaults(Cycle now) = 0;
};

/** Computed timeline of one global-memory warp instruction. */
struct MemTimeline {
    /** All requests passed translation without fault by this cycle. */
    Cycle lastTlbCheck = 0;
    /** Data/ack complete; commit is the cycle after. */
    Cycle execDone = 0;
    /** At least one request page-faulted. */
    bool faulted = false;
    /** Earliest fault detection (walk completion). */
    Cycle faultDetect = kNoCycle;
    /** All faults raised by this instruction resolve by this cycle. */
    Cycle resolveAll = 0;
    /** Most significant fault kind (GpuAlloc > Migration > ...). */
    vm::FaultKind kind = vm::FaultKind::None;
    /** Page of the earliest-detected fault (sanitizer TLB probe). */
    Addr faultPage = kBadAddr;
    /** Pending-fault queue depth at first detect (UC1 input). */
    int queueDepth = 0;
};

/**
 * Per-SM LSU. Owns the L1 TLB and L1 cache; accepts one memory
 * instruction per cycle and one translation per cycle (paper section
 * 3.3 justifies the single-ported operand log with this rate).
 */
class Lsu
{
  public:
    Lsu(const gpu::SmConfig &cfg, MemorySystem &sys);

    /**
     * Process the requests of a global-memory instruction issued so
     * its operand-read completes at @p op_read_done.
     *
     * @param stall_on_fault  baseline semantics: faulted requests wait
     *        for resolution and retry inside the pipeline, so the
     *        returned timeline never reports a fault.
     */
    MemTimeline processGlobal(const isa::Instruction &inst,
                              const trace::TraceInst &ti,
                              const Addr *lines, Cycle op_read_done,
                              bool stall_on_fault,
                              Cycle fault_retry_latency);

    /** One LSU instruction slot per cycle. */
    Cycle reserveIssueSlot(Cycle earliest) { return port_.reserve(earliest); }

    void collectStats(StatSet &s) const;

    const vm::Tlb &l1Tlb() const { return tlb_; }
    const mem::Cache &l1() const { return l1_; }

  private:
    Cycle accessForData(const isa::Instruction &inst, Addr line,
                        Cycle earliest);

    MemorySystem &sys_;
    vm::Tlb tlb_;
    mem::Cache l1_;
    /** Built once: constructing a std::function per access is hot-path
     *  overhead the translation/L1 loops do not need to pay. */
    vm::Tlb::LowerFn lowerFn_;
    mem::Cache::FetchFn l2FetchFn_;
    mem::Port port_;       ///< 1 memory instruction per cycle
    mem::Port xlatePort_;  ///< translations per cycle
    Cycle frontendCycles_; ///< address calc + coalescing queue depth

    std::uint64_t instsProcessed_ = 0;
    std::uint64_t requests_ = 0;
    std::uint64_t faults_ = 0;
};

} // namespace gex::sm

#endif // GEX_SM_LSU_HPP
