#include "sm/exception_model.hpp"

#include "common/log.hpp"

namespace gex::sm {

SchemePolicy
SchemePolicy::make(gpu::Scheme s)
{
    SchemePolicy p;
    p.kind = s;
    switch (s) {
      case gpu::Scheme::StallOnFault:
        break;
      case gpu::Scheme::WarpDisableCommit:
        p.fetchDisableOnGlobalMem = true;
        p.preemptible = true;
        break;
      case gpu::Scheme::WarpDisableLastCheck:
        p.fetchDisableOnGlobalMem = true;
        p.reenableAtLastCheck = true;
        p.preemptible = true;
        break;
      case gpu::Scheme::ReplayQueue:
        p.holdSourcesUntilLastCheck = true;
        p.preemptible = true;
        break;
      case gpu::Scheme::OperandLog:
        p.usesOperandLog = true;
        p.preemptible = true;
        break;
    }
    return p;
}

void
OperandLog::configure(std::uint32_t total_bytes, int partitions)
{
    GEX_ASSERT(partitions > 0);
    partitionBytes_ = total_bytes / static_cast<std::uint32_t>(partitions);
    // Guarantee forward progress: every partition fits at least one
    // store entry (the paper's rationale for the 8 KB minimum log).
    if (partitionBytes_ < kStoreEntryBytes)
        partitionBytes_ = kStoreEntryBytes;
    used_.assign(static_cast<size_t>(partitions), 0);
}

std::uint32_t
OperandLog::entryBytes(bool is_store_like)
{
    return is_store_like ? kStoreEntryBytes : kLoadEntryBytes;
}

bool
OperandLog::tryAllocate(int partition, std::uint32_t bytes)
{
    auto &u = used_[static_cast<size_t>(partition)];
    if (u + bytes > partitionBytes_) {
        ++failures_;
        return false;
    }
    u += bytes;
    ++allocs_;
    return true;
}

void
OperandLog::release(int partition, std::uint32_t bytes)
{
    auto &u = used_[static_cast<size_t>(partition)];
    GEX_ASSERT(u >= bytes, "operand log release underflow");
    u -= bytes;
}

std::uint32_t
OperandLog::used(int partition) const
{
    return used_[static_cast<size_t>(partition)];
}

void
OperandLog::collectStats(StatSet &s) const
{
    s.add("operand_log.allocs", static_cast<double>(allocs_));
    s.add("operand_log.alloc_failures", static_cast<double>(failures_));
}

} // namespace gex::sm
