/**
 * @file
 * The streaming multiprocessor timing model (paper Figure 1): fetch
 * with per-warp instruction buffers, scoreboarded 2-wide in-order
 * issue, latency-modeled backend units, an LSU with translation and
 * fault handling, out-of-order commit — plus the five exception
 * schemes and the UC1 local scheduler (block switching on fault).
 *
 * The per-cycle pipeline logic lives in the stage modules under
 * sm/stages (fetch, decode, issue, operand-collect, mem-check,
 * commit), all ticking over one shared PipelineState (sm/pipeline.hpp).
 * Sm owns that state, dispatches the event heap to the stages, and
 * keeps the block lifecycle: launch, barriers, block completion and
 * the UC1 drain/save/restore context-switch machinery.
 */

#ifndef GEX_SM_SM_HPP
#define GEX_SM_SM_HPP

#include "sm/pipeline.hpp"
#include "sm/stages/commit.hpp"
#include "sm/stages/fetch.hpp"
#include "sm/stages/issue.hpp"
#include "sm/stages/mem_check.hpp"

namespace gex::sm {

/** Source of pending thread blocks (the global TB scheduler). */
class BlockSupply
{
  public:
    virtual ~BlockSupply() = default;
    /** Next pending block, or nullptr when the grid is exhausted. */
    virtual const trace::BlockTrace *nextBlock() = 0;
    virtual bool hasPending() const = 0;
};

class Sm
{
  public:
    Sm(int id, const gpu::GpuConfig &cfg, MemorySystem &sys,
       BlockSupply &supply);

    /** Prepare warp slots and the operand log for a kernel. */
    void beginKernel(const LaunchInfo &li);

    /** Install a thread block into a free slot (initial fill). */
    bool launchBlock(const trace::BlockTrace *bt, Cycle now);

    /**
     * Advance one cycle; sets didWork() when any state changed.
     * Equivalent to tickEvents + tickCompute + drainShared (the serial
     * composition of the phased engine below).
     */
    void tick(Cycle now);
    bool didWork() const { return st_.didWork; }

    // --- phased tick engine (see docs/PERFORMANCE.md) --------------------
    // One global cycle is three phases, driven by gpu::Gpu::run:
    //   E  tickEvents   serial, ascending SM — event dispatch, block
    //                   lifecycle, TB-scheduler grabs; shared bulk-DRAM
    //                   calls are staged, not performed
    //   C  tickCompute  parallel over SMs — fetch/decode/issue against
    //                   SM-private state only; the memory-system tail
    //                   of an issued global instruction is staged
    //   D  drainShared  serial, ascending SM — performs the staged
    //                   L2/DRAM/MMU accesses in FIFO order and flushes
    //                   buffered observer events
    // Draining in ascending SM index reproduces the shared-resource
    // access order of the serial tick exactly, so results are
    // bit-identical at any thread count.

    /** Phase E: dispatch due events (serial; touches the shared TB
     *  scheduler, stages bulk context-switch traffic). */
    void tickEvents(Cycle now);
    /** Phase C: SM-local pipeline stages (safe to run in parallel
     *  with other SMs' compute phases). */
    void tickCompute(Cycle now);
    /** Phase D: perform staged shared-memory-system operations and
     *  flush buffered observer events (serial). */
    void drainShared(Cycle now);
    /** A TB slot went Empty this cycle (gates Gpu::allDone scans). */
    bool slotReleased() const { return st_.slotReleased; }

    /** Earliest future event, or kNoCycle when quiescent. */
    Cycle nextEventCycle() const;

    /** True while any block is resident or switched out. */
    bool busy() const;

    int freeSlots() const;

    void collectStats(StatSet &s) const;

    /**
     * Emit the opt-in resilience block (`resil.*`): replay pressure,
     * operand-log back-pressure and blocked-warp cycle breakdown.
     * Separate from collectStats() so plain runs keep the stat set the
     * golden digests were captured over; Gpu::run() calls it when a
     * fault injector is active or GpuConfig::resilienceStats is set.
     */
    void collectResilienceStats(StatSet &s) const;

    std::uint64_t instsCommitted() const { return st_.instsCommitted; }
    std::uint64_t blocksCompleted() const { return st_.blocksCompleted; }

    /**
     * Append a human-readable per-warp state dump to @p out — which
     * stage each resident warp is blocked in, its replay-queue and
     * i-buffer depths and in-flight count — for DeadlockError /
     * LivelockError diagnostics (docs/ROBUSTNESS.md). Warps that are
     * finished or whose slot is empty are skipped.
     */
    void appendDiagnostics(std::string &out) const;

    /**
     * Attach a pipeline observer (nullptr detaches). The observer
     * receives every instruction-lifecycle event this SM emits; with
     * none attached the emission sites are single predicted branches.
     */
    void setObserver(obs::PipelineObserver *o) { st_.obs = o; }

    /**
     * Attach the invariant sanitizer (nullptr detaches). Separate from
     * the observer chain: the sanitizer also needs the targeted hooks
     * (event heap, block installs, faulting translations) that never
     * surface as pipeline events.
     */
    void setSanitizer(check::SimSanitizer *s) { st_.san = s; }

    /** Read-only pipeline state (drain checks, log partition size). */
    const PipelineState &state() const { return st_; }

    /** UC1 hook for the mem-check stage: maybe drain this block. */
    void considerSwitch(int slot, int queue_depth, Cycle now);

    /** Commit-stage hooks into the block lifecycle. */
    void checkWarpFinished(int w, Cycle now);
    void releaseBarrierIfReady(int slot);

  private:
    void processEvents(Cycle now);
    void onWarpResume(int w, Cycle now);
    void finishBlock(int slot, Cycle now);
    void installBlock(int slot, const trace::BlockTrace *bt, Cycle now,
                      const OffchipBlock *restore_from);
    void fillEmptySlots(Cycle now);
    int ownedBlocks() const;

    // --- UC1: block switching --------------------------------------------
    void beginDrain(int slot, Cycle now);
    Cycle drainTime(int slot) const;

    PipelineState st_;
    MemorySystem &sys_;
    BlockSupply &supply_;

    FetchStage fetch_;
    IssueStage issue_;
    MemCheckStage memCheck_;
    CommitStage commit_;
};

} // namespace gex::sm

#endif // GEX_SM_SM_HPP
