/**
 * @file
 * The streaming multiprocessor timing model (paper Figure 1): fetch
 * with per-warp instruction buffers, scoreboarded 2-wide in-order
 * issue, latency-modeled backend units, an LSU with translation and
 * fault handling, out-of-order commit — plus the five exception
 * schemes and the UC1 local scheduler (block switching on fault).
 */

#ifndef GEX_SM_SM_HPP
#define GEX_SM_SM_HPP

#include <queue>
#include <vector>

#include "common/ring.hpp"
#include "func/kernel.hpp"
#include "gpu/config.hpp"
#include "sm/exception_model.hpp"
#include "sm/lsu.hpp"
#include "sm/scoreboard.hpp"
#include "trace/trace.hpp"

namespace gex::sm {

/** Per-kernel launch geometry computed by the GPU front end. */
struct LaunchInfo {
    const func::Kernel *kernel = nullptr;
    const trace::KernelTrace *trace = nullptr;
    int warpsPerBlock = 0;
    int blocksPerSm = 0;           ///< occupancy (resident TBs per SM)
    std::uint64_t contextBytesPerBlock = 0;
};

/** Source of pending thread blocks (the global TB scheduler). */
class BlockSupply
{
  public:
    virtual ~BlockSupply() = default;
    /** Next pending block, or nullptr when the grid is exhausted. */
    virtual const trace::BlockTrace *nextBlock() = 0;
    virtual bool hasPending() const = 0;
};

class Sm
{
  public:
    Sm(int id, const gpu::GpuConfig &cfg, MemorySystem &sys,
       BlockSupply &supply);

    /** Prepare warp slots and the operand log for a kernel. */
    void beginKernel(const LaunchInfo &li);

    /** Install a thread block into a free slot (initial fill). */
    bool launchBlock(const trace::BlockTrace *bt, Cycle now);

    /** Advance one cycle; sets didWork() when any state changed. */
    void tick(Cycle now);
    bool didWork() const { return didWork_; }

    /** Earliest future event, or kNoCycle when quiescent. */
    Cycle nextEventCycle() const;

    /** True while any block is resident or switched out. */
    bool busy() const;

    int freeSlots() const;

    void collectStats(StatSet &s) const;

    std::uint64_t instsCommitted() const { return instsCommitted_; }

  private:
    enum class EvKind : std::uint8_t {
        SourceRelease, LastCheck, Commit, FaultReact, WarpResume,
        SaveReady, SaveDone, RestoreDone, SlotRetry, TrapEnter,
    };

    struct Event {
        Cycle cycle;
        std::uint64_t seq;
        EvKind kind;
        std::int32_t arg;   ///< warp or slot index
        std::uint32_t id;   ///< inflight pool index (when applicable)
        bool
        operator>(const Event &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
        }
    };

    struct Inflight {
        std::uint32_t traceIdx = 0;
        int warp = -1;
        const trace::TraceInst *ti = nullptr;
        const isa::Instruction *si = nullptr;
        Cycle commitAt = 0;
        MemTimeline mem;
        bool isGlobalMem = false;
        bool isControl = false;
        bool isArithBarrier = false; ///< wd fetch barrier for arith exc.
        bool squashed = false;
        bool sourcesHeld = false;
        bool dstHeld = false;
        bool logHeld = false;
        std::uint32_t logBytes = 0;
        int logPartition = 0;
        int eventsLeft = 0;    ///< pool slot frees when this hits 0
        bool live = false;
    };

    struct InstBufEntry {
        std::uint32_t idx;
        Cycle readyAt;
    };

    struct WarpRt {
        // The fields below are everything the fetch/issue scans touch
        // for a warp that cannot make progress this cycle; they are
        // kept together (ahead of the rings) so a failing scan reads
        // one cache line per warp.
        int slot = -1;
        int controlPending = 0;
        bool wdFetchDisable = false;
        bool waitingBarrier = false;
        bool exitFetched = false;
        bool exitCommitted = false;
        bool finished = false;
        bool faultBlocked = false;
        bool frozen = false;       ///< TB draining for a context switch
        std::uint32_t fetchIdx = 0;
        const trace::WarpTrace *tr = nullptr;
        Cycle fetchResumeAt = 0;   ///< wd re-enable pipeline refill
        /**
         * Issue-stall memo: the head trace index that last failed the
         * scoreboard checks and the warp's scoreboard generation at
         * that moment. While both still match, the same checks would
         * fail identically, so the issue stage re-registers the stall
         * without re-decoding the instruction.
         */
        std::uint32_t sbStallIdx = UINT32_MAX;
        std::uint64_t sbStallGen = 0;
        // Inline ring buffers: the fetch/issue stages scan every warp
        // every cycle, so the common-case queue state lives inside the
        // WarpRt itself (no per-entry heap nodes to chase).
        Ring<InstBufEntry, 4> ibuf;
        Ring<std::uint32_t, 4> replayQ;
        int inflight = 0;
        Cycle blockedUntil = 0;
        Cycle maxCommitScheduled = 0;

        bool
        schedulable() const
        {
            return slot >= 0 && !finished && !waitingBarrier &&
                   !faultBlocked && !frozen;
        }
    };

    struct TbSlot {
        enum class State : std::uint8_t {
            Empty, Running, Draining, Saving, Restoring,
        };
        State state = State::Empty;
        std::uint32_t blockId = 0;
        const trace::BlockTrace *bt = nullptr;
        int firstWarp = 0;
        int numWarps = 0;
        int warpsFinished = 0;
        Cycle faultReadyAt = 0;
        Cycle installedAt = 0; ///< for the UC1 anti-churn residency rule
    };

    struct SavedWarp {
        std::uint32_t fetchIdx = 0;
        Ring<std::uint32_t, 4> replayQ;
        bool waitingBarrier = false;
        bool finished = false;
    };

    struct OffchipBlock {
        std::uint32_t blockId = 0;
        const trace::BlockTrace *bt = nullptr;
        std::vector<SavedWarp> warps;
        Cycle readyAt = 0;
    };

    // --- pipeline stages -------------------------------------------------
    void processEvents(Cycle now);
    void doFetch(Cycle now);
    void doIssue(Cycle now);
    bool tryIssueHead(int w, Cycle now);

    // --- event reactions -------------------------------------------------
    void onCommit(Inflight &in, Cycle now);
    void onLastCheck(Inflight &in, Cycle now);
    void onFaultReact(Inflight &in, Cycle now);
    void onWarpResume(int w, Cycle now);

    // --- helpers ---------------------------------------------------------
    std::uint32_t allocInflight();
    /** Schedule a non-instruction event (id is free payload). */
    void scheduleEvent(Cycle cycle, EvKind kind, std::int32_t arg,
                       std::uint32_t id);
    /** Schedule an event referencing inflight record @p id. */
    void scheduleInstEvent(Cycle cycle, EvKind kind, std::int32_t arg,
                           std::uint32_t id);
    void retireEventRef(std::uint32_t id);
    void squash(Inflight &in, Cycle now);
    void revertIbuf(WarpRt &w);
    void insertReplay(WarpRt &w, std::uint32_t trace_idx);
    void checkWarpFinished(int w, Cycle now);
    void releaseBarrierIfReady(int slot);
    void finishBlock(int slot, Cycle now);
    void installBlock(int slot, const trace::BlockTrace *bt, Cycle now,
                      const OffchipBlock *restore_from);
    void fillEmptySlots(Cycle now);
    int ownedBlocks() const;

    // --- UC1: block switching --------------------------------------------
    void considerSwitch(int slot, int queue_depth, Cycle now);
    void beginDrain(int slot, Cycle now);
    Cycle drainTime(int slot) const;

    int id_;
    const gpu::GpuConfig &cfg_;
    MemorySystem &sys_;
    BlockSupply &supply_;
    SchemePolicy policy_;
    Scoreboard sb_;
    OperandLog log_;
    Lsu lsu_;

    LaunchInfo li_;
    /**
     * Warps actually populated by the current kernel (blocksPerSm ×
     * warpsPerBlock). The fetch/issue scans rotate over only these;
     * slots past the count can never become schedulable, and skipping
     * them preserves the visit order of the live ones exactly.
     */
    int activeWarps_ = 0;
    std::vector<WarpRt> warps_;
    /**
     * Fetch gate cache, one byte per warp: 1 means the last fetch scan
     * found the warp blocked for a *state* reason (buffer full, pending
     * control, fetch-disable, trace drained, unschedulable) — nothing
     * time-based. Until some event mutates the warp (wakeFetch), a
     * rescan would reproduce the same result, so doFetch skips the
     * warp after one byte read instead of touching its WarpRt. Warps
     * blocked only on fetchResumeAt are never marked (time unblocks
     * them without an accompanying state change). Skipped scans have
     * no side effects (no counters, no didWork), so this is invisible
     * to simulation results.
     */
    std::vector<std::uint8_t> fetchBlocked_;
    /**
     * Issue gate cache, one byte per warp: 1 means the warp is
     * schedulable, its ibuf head has passed its ready cycle, and that
     * head already failed the scoreboard checks with no scoreboard
     * change since. A rescan would fail the same way with exactly one
     * stallScoreboard_ increment, so the issue scan performs just that
     * increment off one byte read. Any event that could change the
     * warp's schedulability, ibuf head, or scoreboard state clears the
     * byte (wakeWarp) and the next scan re-runs the full checks.
     */
    std::vector<std::uint8_t> issueStalled_;
    void
    wakeWarp(int w)
    {
        fetchBlocked_[static_cast<std::size_t>(w)] = 0;
        issueStalled_[static_cast<std::size_t>(w)] = 0;
    }
    std::vector<TbSlot> slots_;
    std::vector<OffchipBlock> offchip_;
    std::vector<OffchipBlock> restorePending_;
    int extraBlocksBrought_ = 0;
    Cycle lsuIssuedAt_ = kNoCycle;
    /** Earliest pending SlotRetry event (dedup; kNoCycle = none). */
    Cycle slotRetryAt_ = kNoCycle;

    std::vector<Inflight> pool_;
    std::vector<std::uint32_t> freeList_;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    std::uint64_t eventSeq_ = 0;

    mem::Port mathPort_;
    mem::Port sfuPort_;
    mem::Port branchPort_;
    mem::Port sharedPort_;
    int inflightMem_ = 0;
    int rrFetch_ = 0;
    int rrIssue_ = 0;
    bool didWork_ = false;

    // statistics
    std::uint64_t instsCommitted_ = 0;
    std::uint64_t instsIssued_ = 0;
    std::uint64_t fetches_ = 0;
    std::uint64_t stallScoreboard_ = 0;
    std::uint64_t stallLog_ = 0;
    std::uint64_t stallLsuQueue_ = 0;
    std::uint64_t faultsSeen_ = 0;
    std::uint64_t faultsJoined_ = 0;
    std::uint64_t faultsGpuHandled_ = 0;
    std::uint64_t switchOuts_ = 0;
    std::uint64_t switchIns_ = 0;
    std::uint64_t newBlocksViaSwitch_ = 0;
    std::uint64_t systemModeCycles_ = 0;
    std::uint64_t trapsHandled_ = 0;
    std::uint64_t arithReportedOnly_ = 0;
    std::uint64_t contextBytesMoved_ = 0;
    std::uint64_t blocksCompleted_ = 0;
};

} // namespace gex::sm

#endif // GEX_SM_SM_HPP
