/**
 * @file
 * Global thread block scheduler (paper Figure 1, "TB scheduler"):
 * hands out pending thread blocks in launch order. SMs pull a new
 * block when a running block finishes, or — with UC1 — when the local
 * scheduler switches a faulted block out.
 */

#ifndef GEX_GPU_TB_SCHEDULER_HPP
#define GEX_GPU_TB_SCHEDULER_HPP

#include "sm/sm.hpp"
#include "trace/trace.hpp"

namespace gex::gpu {

class TbScheduler : public sm::BlockSupply
{
  public:
    explicit TbScheduler(const trace::KernelTrace &kt) : kt_(kt) {}

    const trace::BlockTrace *
    nextBlock() override
    {
        if (next_ >= kt_.blocks.size())
            return nullptr;
        return &kt_.blocks[next_++];
    }

    bool hasPending() const override { return next_ < kt_.blocks.size(); }

    std::size_t issued() const { return next_; }
    std::size_t total() const { return kt_.blocks.size(); }

  private:
    const trace::KernelTrace &kt_;
    std::size_t next_ = 0;
};

} // namespace gex::gpu

#endif // GEX_GPU_TB_SCHEDULER_HPP
