/**
 * @file
 * UC1 local scheduler policy (paper section 4.1, Figure 9): decide
 * whether a faulted thread block is worth switching out. The decision
 * inputs are the fault's position in the global pending-fault queue
 * (a deep queue means a long resolution) and whether there is anything
 * to run in the block's place.
 */

#ifndef GEX_GPU_LOCAL_SCHEDULER_HPP
#define GEX_GPU_LOCAL_SCHEDULER_HPP

#include "gpu/config.hpp"

namespace gex::gpu {

/**
 * Switch-out decision. @p queue_depth is the number of pending faults
 * ahead of this one, @p owned is active+off-chip blocks on the SM,
 * @p capacity the SM's resident block limit, @p has_pending whether the
 * global scheduler still has blocks, @p offchip the SM's off-chip count.
 */
bool shouldSwitchOnFault(const GpuConfig &cfg, int queue_depth, int owned,
                         int capacity, bool has_pending, int offchip);

} // namespace gex::gpu

#endif // GEX_GPU_LOCAL_SCHEDULER_HPP
