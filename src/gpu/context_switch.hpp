/**
 * @file
 * Thread block context sizing (paper section 4.1): the state that must
 * move off-chip on a switch — register file footprint of all the
 * block's threads, its shared memory partition, and control state
 * (barrier unit, divergence stacks, replay queue entries).
 */

#ifndef GEX_GPU_CONTEXT_SWITCH_HPP
#define GEX_GPU_CONTEXT_SWITCH_HPP

#include "func/kernel.hpp"
#include "gpu/config.hpp"

namespace gex::gpu {

/** Control-state bytes per block (barrier unit, SIMT stacks, RQ). */
inline constexpr std::uint64_t kControlStateBytes = 512;

/** Bytes saved/restored when context switching one thread block. */
std::uint64_t contextBytesPerBlock(const GpuConfig &cfg,
                                   const func::Kernel &kernel);

/** Resident thread blocks per SM for this kernel (occupancy). */
int blocksPerSm(const GpuConfig &cfg, const func::Kernel &kernel);

} // namespace gex::gpu

#endif // GEX_GPU_CONTEXT_SWITCH_HPP
