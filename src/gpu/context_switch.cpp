#include "gpu/context_switch.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace gex::gpu {

std::uint64_t
contextBytesPerBlock(const GpuConfig &cfg, const func::Kernel &kernel)
{
    std::uint64_t rf = static_cast<std::uint64_t>(kernel.threadsPerBlock()) *
                       static_cast<std::uint64_t>(
                           kernel.program.regsPerThread()) *
                       kRegBytes;
    std::uint64_t bytes = rf + kernel.program.sharedBytes() +
                          kControlStateBytes;
    // The operand log partition is part of the context too (§3.3).
    if (cfg.scheme == Scheme::OperandLog) {
        int blocks = blocksPerSm(cfg, kernel);
        bytes += cfg.operandLogBytes / static_cast<std::uint32_t>(blocks);
    }
    return bytes;
}

int
blocksPerSm(const GpuConfig &cfg, const func::Kernel &kernel)
{
    const std::uint32_t threads = kernel.threadsPerBlock();
    const std::uint32_t warps = kernel.warpsPerBlock();
    GEX_ASSERT(threads > 0);

    std::uint64_t reg_bytes =
        static_cast<std::uint64_t>(threads) *
        static_cast<std::uint64_t>(kernel.program.regsPerThread()) *
        kRegBytes;
    std::uint64_t by_rf = cfg.sm.registerFileBytes / reg_bytes;
    std::uint64_t by_shared =
        kernel.program.sharedBytes() > 0
            ? cfg.sm.sharedMemBytes / kernel.program.sharedBytes()
            : static_cast<std::uint64_t>(cfg.sm.maxThreadBlocks);
    std::uint64_t by_warps = static_cast<std::uint64_t>(cfg.sm.maxWarps) /
                             warps;
    std::uint64_t blocks =
        std::min({by_rf, by_shared, by_warps,
                  static_cast<std::uint64_t>(cfg.sm.maxThreadBlocks)});
    if (blocks == 0)
        fatal("kernel '%s' does not fit on an SM (regs=%d threads=%u "
              "shared=%uB)",
              kernel.program.name().c_str(),
              kernel.program.regsPerThread(), threads,
              kernel.program.sharedBytes());
    return static_cast<int>(blocks);
}

} // namespace gex::gpu
