/**
 * @file
 * GPU configuration: paper Table 1 defaults (NVIDIA Kepler K20-class,
 * 16 SMs) plus the exception-scheme and use-case knobs under study.
 */

#ifndef GEX_GPU_CONFIG_HPP
#define GEX_GPU_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache.hpp"
#include "vm/fill_unit.hpp"
#include "vm/gpu_fault_handler.hpp"
#include "vm/host_link.hpp"
#include "vm/tlb.hpp"

namespace gex::gpu {

/**
 * Exception handling scheme implemented by the SM pipeline (paper
 * section 3). StallOnFault is the baseline: faults stall in the
 * pipeline and are not preemptible. The remaining schemes support
 * preemptible faults at increasing complexity.
 */
enum class Scheme : std::uint8_t {
    StallOnFault,         ///< baseline (section 2.2)
    WarpDisableCommit,    ///< wd-commit (section 3.1)
    WarpDisableLastCheck, ///< wd-lastcheck (section 3.1)
    ReplayQueue,          ///< replay queue (section 3.2)
    OperandLog,           ///< operand log (section 3.3)
};

const char *schemeName(Scheme s);

/**
 * Parse a scheme from its canonical name ("baseline", "wd-commit",
 * "wd-lastcheck", "replay-queue", "operand-log"); fatal() on unknown
 * names, listing the accepted spellings.
 */
Scheme schemeFromName(const std::string &name);

/** All five schemes in paper order (baseline first). */
const std::vector<Scheme> &allSchemes();

/** Warp selection policy for the fetch/issue schedulers. */
enum class SchedPolicy : std::uint8_t {
    LooseRoundRobin, ///< rotate the starting warp every grant (default)
    GreedyThenOldest, ///< stick with the last warp, then oldest ready
};

const char *schedPolicyName(SchedPolicy p);

/**
 * Parse a scheduling policy from its canonical name
 * ("loose-round-robin", "greedy-then-oldest"); fatal() on unknown
 * names, listing the accepted spellings.
 */
SchedPolicy schedPolicyFromName(const std::string &name);

/** Per-SM microarchitecture (paper Table 1, SM section). */
struct SmConfig {
    int maxThreadBlocks = 16;
    int maxWarps = 64;
    std::uint32_t registerFileBytes = 256 * 1024;
    std::uint32_t sharedMemBytes = 32 * 1024;

    int issueWidth = 2;        ///< 2 instructions total per cycle
    int maxIssuePerWarp = 2;   ///< from 1 or 2 warps
    int fetchPerCycle = 1;     ///< one instruction line per cycle...
    int fetchWidth = 2;        ///< ...holding this many instructions
    int instBufferDepth = 2;

    SchedPolicy schedPolicy = SchedPolicy::LooseRoundRobin;

    int numMathUnits = 2;
    Cycle mathLatency = 4;
    Cycle sfuLatency = 16;
    Cycle branchLatency = 4;
    Cycle sharedLatency = 24;
    Cycle atomicExtraLatency = 8;

    mem::CacheConfig l1 = {"l1", 32 * 1024, 4, 40, 32, 1};
    vm::TlbConfig l1Tlb = {"l1tlb", 32, 8, 1, 32};

    /** Coalesced requests entering translation per cycle. */
    int translationsPerCycle = 1;

    /**
     * Global-memory pipeline front end: address calculation and
     * coalescing-queue occupancy between operand read and the first
     * TLB access (paper Figures 3-7 show the deep, variable-latency
     * global memory pipeline). This is the distance between issue and
     * the "last TLB check" that wd-lastcheck / replay-queue /
     * operand-log wait on.
     */
    Cycle memFrontendCycles = 10;

    /** In-flight global-memory instructions per SM (LSU queue). */
    int lsuQueueDepth = 32;

    /**
     * Fetch pipeline refill penalty after a warp-disable re-enable:
     * the warp lost its fetch slot and must re-enter the fetch stage
     * (warp-disable schemes only).
     */
    Cycle fetchRestartPenalty = 6;
};

/** Whole-GPU configuration (paper Table 1, System section). */
struct GpuConfig {
    int numSms = 16;
    /**
     * Worker threads ticking the SM-local pipeline phase of one run
     * (gpu::Gpu::run's phased tick engine). 1 (the default) keeps the
     * fully serial driver; values above numSms or the host's core
     * count are clamped (extra threads are pure overhead). Results
     * are bit-identical at every setting: shared-resource accesses
     * (L2, DRAM, MMU, TB scheduler, observer) are drained serially in
     * ascending SM order regardless of the thread count. Composes
     * with sweep-engine --jobs; total concurrency is jobs × smThreads.
     */
    int smThreads = 1;
    SmConfig sm;

    mem::CacheConfig l2 = {"l2", 2 * 1024 * 1024, 8, 70, 512, 2};
    double dramBytesPerCycle = 256.0; ///< 256 GB/s at 1 GHz
    Cycle dramLatency = 200;

    /** Fault handling / migration granularity (paper: 64 KB). */
    Addr migrationGranularityBytes = kDefaultMigrationBytes;

    vm::MmuConfig mmu;
    vm::HostLinkConfig hostLink = vm::HostLinkConfig::nvlink();
    vm::GpuHandlerConfig gpuHandler;

    Scheme scheme = Scheme::StallOnFault;
    /** Operand log capacity per SM (OperandLog scheme only). */
    std::uint32_t operandLogBytes = 16 * 1024;

    /** UC1: context switch faulted thread blocks (section 4.1). */
    bool blockSwitching = false;
    /** UC1: ideal 1-cycle context save/restore (Figure 12). */
    bool idealContextSwitch = false;
    /** UC1: extra off-chip blocks allowed per SM. */
    int maxExtraBlocks = 4;
    /** UC1: switch only when this many faults are already pending. */
    int switchQueueThreshold = 1;
    /** Fixed per-switch control overhead (non-ideal), cycles. */
    Cycle contextSwitchOverhead = 100;
    /**
     * UC1 anti-churn: a block must have been resident this long
     * before it may be switched out again. Freshly installed
     * replacement blocks usually fault immediately during a migration
     * storm; re-switching them thrashes context state for no gain.
     */
    Cycle minResidencyBeforeSwitch = 4000;

    /** Retry latency after a stalled fault resolves (baseline). */
    Cycle faultRetryLatency = 20;

    /**
     * Emit the resilience stat block (`resil.*`, `mmu.injected_faults`)
     * even on runs without an injected fault model, so fault-free
     * reference runs of a campaign share the campaign's stat schema.
     * Runs with injection enabled always emit it. Off by default: the
     * golden-stats digests pin the historical stat set of plain runs.
     */
    bool resilienceStats = false;

    // --- robustness knobs (docs/ROBUSTNESS.md) -------------------------

    /**
     * Forward-progress watchdog window, in cycles; 0 disables. If no
     * instruction commits and no thread block retires for a full
     * window while warps are resident, the run raises LivelockError
     * with a per-warp state snapshot instead of spinning forever
     * (detection latency is between one and two windows). Pure
     * observation: the watchdog never changes simulation results, and
     * its bookkeeping runs at most once per window, off the hot path.
     */
    Cycle watchdogCycles = 2'000'000;
    /**
     * Capture the last watchdogLastEvents pipeline events (src/obs)
     * for the watchdog's diagnostics bundle. Off by default: attaching
     * the capture observer makes every emission site construct its
     * event, which plain runs should not pay for. Composes with a
     * user observer (events are forwarded).
     */
    bool watchdogCaptureEvents = false;
    /** Ring capacity for watchdogCaptureEvents. */
    int watchdogLastEvents = 64;
    /**
     * Hard cycle budget; 0 means unlimited. A run that reaches this
     * cycle raises CycleBudgetExceeded — the backstop that bounds one
     * grid point's cost in a campaign even when it commits just often
     * enough to evade the watchdog.
     */
    Cycle maxCycles = 0;

    /**
     * Run the invariant sanitizer and drain-time self-checks
     * (src/check, docs/VALIDATION.md): per-scheme protocol checkers,
     * event-heap ordering checks and end-of-run leak detection. A
     * violation raises InvariantError (exit code 7). Exec-only: off
     * (the default) leaves results and digests bit-identical and the
     * hot path untouched; on changes only whether violations are
     * detected, never the simulated outcome.
     */
    bool checkInvariants = false;
    /**
     * Test-only: arm one deliberate invariant violation so the
     * sanitizer's detection path itself can be exercised end to end
     * ("none", "rq-hold", "ol-leak", "event-seq", "double-commit").
     * Only honored when checkInvariants is on; docs/VALIDATION.md.
     */
    std::string checkViolation = "none";

    /**
     * Extension (paper sections 3.1/3.2): make arithmetic exceptions
     * (divide by zero, ...) preemptible too. Under the warp-disable
     * schemes, instructions that can raise them become fetch barriers;
     * under the replay queue their sources release at completion. A
     * raising instruction switches its warp into a GPU trap handler.
     */
    bool arithExceptions = false;
    /** Trap handler routine latency for arithmetic exceptions. */
    Cycle trapHandlerCycles = 500;

    /** Paper Table 1 defaults. */
    static GpuConfig baseline();

    /** Human-readable parameter dump (Table 1 reproduction). */
    std::string describe() const;
};

} // namespace gex::gpu

#endif // GEX_GPU_CONFIG_HPP
