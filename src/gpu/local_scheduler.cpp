#include "gpu/local_scheduler.hpp"

namespace gex::gpu {

bool
shouldSwitchOnFault(const GpuConfig &cfg, int queue_depth, int owned,
                    int capacity, bool has_pending, int offchip)
{
    if (!cfg.blockSwitching)
        return false;
    // Avoid wasteful switching: only when the fault is queued behind
    // enough others that resolution is far away (paper: "position
    // above a set threshold").
    if (queue_depth < cfg.switchQueueThreshold)
        return false;
    // There must be something to run instead: either a fresh pending
    // block within the extra-block budget, or a resolved/soon-resolved
    // off-chip block.
    bool can_take_new =
        has_pending && owned < capacity + cfg.maxExtraBlocks;
    return can_take_new || offchip > 0;
}

} // namespace gex::gpu
