#include "gpu/config.hpp"

#include <sstream>

#include "common/log.hpp"

namespace gex::gpu {

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::StallOnFault: return "baseline";
      case Scheme::WarpDisableCommit: return "wd-commit";
      case Scheme::WarpDisableLastCheck: return "wd-lastcheck";
      case Scheme::ReplayQueue: return "replay-queue";
      case Scheme::OperandLog: return "operand-log";
    }
    return "?";
}

Scheme
schemeFromName(const std::string &name)
{
    for (Scheme s : allSchemes())
        if (name == schemeName(s))
            return s;
    // Derive the accepted spellings from the scheme list itself so a
    // new scheme can never be missing from the message.
    std::string expected;
    for (Scheme s : allSchemes()) {
        if (!expected.empty())
            expected += " | ";
        expected += schemeName(s);
    }
    fatal("unknown scheme '%s' (expected %s)", name.c_str(),
          expected.c_str());
}

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::LooseRoundRobin: return "loose-round-robin";
      case SchedPolicy::GreedyThenOldest: return "greedy-then-oldest";
    }
    return "?";
}

SchedPolicy
schedPolicyFromName(const std::string &name)
{
    for (SchedPolicy p :
         {SchedPolicy::LooseRoundRobin, SchedPolicy::GreedyThenOldest})
        if (name == schedPolicyName(p))
            return p;
    fatal("unknown scheduling policy '%s' (expected "
          "loose-round-robin | greedy-then-oldest)",
          name.c_str());
}

const std::vector<Scheme> &
allSchemes()
{
    static const std::vector<Scheme> all = {
        Scheme::StallOnFault, Scheme::WarpDisableCommit,
        Scheme::WarpDisableLastCheck, Scheme::ReplayQueue,
        Scheme::OperandLog,
    };
    return all;
}

GpuConfig
GpuConfig::baseline()
{
    return GpuConfig{};
}

std::string
GpuConfig::describe() const
{
    std::ostringstream os;
    os << "SM:\n"
       << "  Frequency            1GHz\n"
       << "  Max TBs              " << sm.maxThreadBlocks << "\n"
       << "  Max Warps            " << sm.maxWarps << "\n"
       << "  Register File        " << sm.registerFileBytes / 1024 << "KB\n"
       << "  Shared memory        " << sm.sharedMemBytes / 1024 << "KB\n"
       << "  Issue ways           " << sm.issueWidth
       << " instructions total from 1 or 2 warps\n"
       << "  Backend units        " << sm.numMathUnits
       << " math, 1 special func, 1 ld/st, 1 branch\n"
       << "  L1 cache             " << sm.l1.sizeBytes / 1024 << "KB / "
       << sm.l1.ways << "-way LRU / " << kLineSize << "B line\n"
       << "                       " << sm.l1.mshrs << " MSHRs / "
       << sm.l1.latency << " clk latency / virtual\n"
       << "  L1 TLB               " << sm.l1Tlb.entries << " entries / "
       << sm.l1Tlb.ways << "-way LRU\n"
       << "System:\n"
       << "  Number of SMs        " << numSms << "\n"
       << "  L2 cache             " << l2.sizeBytes / (1024 * 1024)
       << "MB / " << l2.ways << "-way LRU / " << kLineSize << "B line\n"
       << "                       " << l2.latency << " clk latency / "
       << l2.mshrs << " MSHRs\n"
       << "  L2 TLB               " << mmu.l2Tlb.entries << " entries / "
       << mmu.l2Tlb.ways << "-way LRU\n"
       << "                       " << mmu.l2Tlb.missQueue << " MSHRs / "
       << mmu.l2Tlb.latency << " clk latency\n"
       << "  Number of PT walkers " << mmu.numWalkers << "\n"
       << "  Walking latency      " << mmu.walkCycles << " clk\n"
       << "  DRAM bandwidth       "
       << static_cast<int>(dramBytesPerCycle) << " GB/s\n"
       << "  DRAM latency         " << dramLatency << " clk\n";
    return os.str();
}

} // namespace gex::gpu
