#include "gpu/gpu.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "check/sanitizer.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "common/task_pool.hpp"

namespace gex::gpu {

void
SimResult::writeJson(json::Writer &w) const
{
    w.beginObject();
    w.key("cycles").value(static_cast<std::uint64_t>(cycles));
    w.key("instructions").value(instructions);
    w.key("ipc").value(ipc());
    w.key("stats");
    stats.writeJson(w);
    w.endObject();
}

std::string
SimResult::toJson() const
{
    std::ostringstream os;
    json::Writer w(os);
    writeJson(w);
    return os.str();
}

Gpu::Gpu(const GpuConfig &cfg) : cfg_(cfg) {}
Gpu::~Gpu() = default;

void
Gpu::reset(const func::Kernel &kernel, const trace::KernelTrace &trace,
           const vm::VmPolicy &policy)
{
    mem::CacheConfig l2cfg = cfg_.l2;
    l2cfg.writeAllocate = true; // GPU L2: write-back, write-allocate
    l2_ = std::make_unique<mem::Cache>(l2cfg);
    dram_ = std::make_unique<mem::Dram>(cfg_.dramBytesPerCycle,
                                        cfg_.dramLatency);
    l2_->setWriteback([this](Addr, Cycle at) { dram_->writeLine(at); });
    dramFetchFn_ = [this](Addr, Cycle t) { return dram_->readLine(t); };
    dir_ = std::make_unique<vm::PageDirectory>(
        cfg_.migrationGranularityBytes);
    link_ = std::make_unique<vm::HostLink>(cfg_.hostLink);
    gpuHandler_ = std::make_unique<vm::GpuFaultHandler>(cfg_.gpuHandler);

    vm::MmuConfig mmu_cfg = cfg_.mmu;
    mmu_cfg.localHandling = policy.localHandling;
    mmu_ = std::make_unique<vm::SystemMmu>(mmu_cfg, *dir_, *link_,
                                           *gpuHandler_);
    injector_.reset();
    if (policy.inject.enabled()) {
        injector_ =
            std::make_unique<inject::FaultInjector>(policy.inject);
        mmu_->setInjector(injector_.get());
    }

    vm::applyPolicy(*dir_, kernel, policy);

    sched_ = std::make_unique<TbScheduler>(trace);
    // Watchdog event capture: a bounded ring teeing into the user's
    // observer (if any). Only built on request — attaching any
    // observer makes every emission site construct its event, which
    // plain runs must not pay for.
    lastK_.reset();
    obs::PipelineObserver *eff = observer_;
    if (cfg_.watchdogCaptureEvents) {
        lastK_ = std::make_unique<obs::LastKObserver>(
            static_cast<std::size_t>(std::max(1, cfg_.watchdogLastEvents)),
            observer_);
        eff = lastK_.get();
    }
    // Invariant sanitizer (--check): heads the chain so it sees the
    // same stream the ring and the user observer do, and forwards
    // every event before checking it.
    san_.reset();
    if (cfg_.checkInvariants) {
        san_ = std::make_unique<check::SimSanitizer>(cfg_, eff,
                                                     lastK_.get());
        san_->hooks.arm(cfg_.checkViolation);
        eff = san_.get();
    }
    sms_.clear();
    sms_.reserve(static_cast<std::size_t>(cfg_.numSms));
    for (int i = 0; i < cfg_.numSms; ++i) {
        sms_.push_back(std::make_unique<sm::Sm>(i, cfg_, *this, *sched_));
        sms_.back()->setObserver(eff);
        sms_.back()->setSanitizer(san_.get());
    }
}

bool
Gpu::allDone() const
{
    if (sched_->hasPending())
        return false;
    for (const auto &s : sms_)
        if (s->busy())
            return false;
    return true;
}

bool
Gpu::anyBusy() const
{
    for (const auto &s : sms_)
        if (s->busy())
            return true;
    return false;
}

std::string
Gpu::diagnose(Cycle now)
{
    std::string out;
    out += strprintf("  pending faults: %d, blocks still queued: %s\n",
                     mmu_->pendingFaults(now),
                     sched_->hasPending() ? "yes" : "no");
    for (auto &s : sms_)
        s->appendDiagnostics(out);
    if (lastK_) {
        out += strprintf("  last %d pipeline events:\n",
                         cfg_.watchdogLastEvents);
        out += lastK_->render();
    } else {
        out += "  (recent-event capture off; set "
               "GpuConfig::watchdogCaptureEvents for the event tail)\n";
    }
    return out;
}

SimResult
Gpu::run(const func::Kernel &kernel, const trace::KernelTrace &trace,
         const vm::VmPolicy &policy)
{
    kernel.program.validate();
    if (trace.blocks.size() != kernel.numBlocks())
        throw TraceError(strprintf(
            "trace/kernel geometry mismatch: trace has %zu blocks, "
            "kernel '%s' declares %u",
            trace.blocks.size(), kernel.program.name().c_str(),
            kernel.numBlocks()));
    reset(kernel, trace, policy);

    sm::LaunchInfo li;
    li.kernel = &kernel;
    li.trace = &trace;
    li.warpsPerBlock = static_cast<int>(kernel.warpsPerBlock());
    li.blocksPerSm = blocksPerSm(cfg_, kernel);
    li.contextBytesPerBlock = contextBytesPerBlock(cfg_, kernel);
    for (auto &s : sms_)
        s->beginKernel(li);
    if (san_)
        san_->beginRun(kernel.program, trace, li.blocksPerSm,
                       li.warpsPerBlock,
                       sms_[0]->state().log.partitionBytes(),
                       mmu_.get());

    // Initial fill: breadth-first across SMs, as the baseline TB
    // scheduler does on a kernel launch.
    bool placed = true;
    while (placed && sched_->hasPending()) {
        placed = false;
        for (auto &s : sms_) {
            if (!sched_->hasPending())
                break;
            if (s->freeSlots() > 0) {
                const trace::BlockTrace *bt = sched_->nextBlock();
                GEX_ASSERT(bt != nullptr);
                bool ok = s->launchBlock(bt, 0);
                GEX_ASSERT(ok);
                placed = true;
            }
        }
    }

    // Phased tick engine (see docs/PERFORMANCE.md): per global cycle,
    // a serial events phase (ascending SM), a parallel SM-local
    // compute phase, then a serial drain of staged shared-resource
    // accesses (ascending SM). The drain order equals the access
    // order of the fully serial tick, so every smThreads setting —
    // including 1, which skips the pool entirely — produces
    // bit-identical results.
    const int nsm = static_cast<int>(sms_.size());
    // Also clamp to the host's core count: ticking with more threads
    // than cores is pure oversubscription — the per-cycle dispatch
    // handshake degenerates into scheduler churn (pathological under
    // a single-core CPU quota). Unobservable in any output: results
    // are smThreads-independent by the contract above.
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int threads = std::max(
        1, std::min({cfg_.smThreads, nsm, hw > 0 ? hw : cfg_.smThreads}));
    std::unique_ptr<common::TaskPool> pool;
    if (threads > 1)
        pool = std::make_unique<common::TaskPool>(threads);
    struct TickCtx {
        std::unique_ptr<sm::Sm> *sms;
        Cycle now;
    } tctx{sms_.data(), 0};

    // Forward-progress watchdog (docs/ROBUSTNESS.md): the run loop
    // pays one predictable `now >= checkAt` branch per cycle; the
    // actual progress scan (summing commits and retired blocks across
    // SMs) runs at most once per window. Progress is measured against
    // the last scan, so a livelock is detected between one and two
    // windows after the last commit/retire. The maxCycles budget
    // shares the same branch via the min() below.
    const Cycle wdWindow = cfg_.watchdogCycles;
    const Cycle budget = cfg_.maxCycles ? cfg_.maxCycles : kNoCycle;
    Cycle wdCheckAt = wdWindow ? wdWindow : kNoCycle;
    Cycle checkAt = std::min(wdCheckAt, budget);
    std::uint64_t wdLastProgress = 0;
    Cycle wdProgressAt = 0;

    Cycle now = 0;
    while (true) {
        if (now >= checkAt) {
            ErrorContext ctx;
            ctx.cycle = now;
            ctx.scheme = schemeName(cfg_.scheme);
            if (now >= budget)
                throw CycleBudgetExceeded(
                    strprintf("run reached the %llu-cycle budget "
                              "(GpuConfig::maxCycles)",
                              static_cast<unsigned long long>(budget)),
                    std::move(ctx), diagnose(now));
            std::uint64_t progress = 0;
            for (auto &s : sms_)
                progress += s->instsCommitted() + s->blocksCompleted();
            if (progress == wdLastProgress && anyBusy())
                throw LivelockError(
                    strprintf("forward-progress watchdog: no instruction "
                              "committed and no thread block retired in "
                              "%llu cycles (window %llu, last progress "
                              "at cycle %llu)",
                              static_cast<unsigned long long>(
                                  now - wdProgressAt),
                              static_cast<unsigned long long>(wdWindow),
                              static_cast<unsigned long long>(
                                  wdProgressAt)),
                    std::move(ctx), diagnose(now));
            wdLastProgress = progress;
            wdProgressAt = now;
            wdCheckAt = now + wdWindow;
            checkAt = std::min(wdCheckAt, budget);
        }
        for (auto &s : sms_)
            s->tickEvents(now);
        if (pool) {
            tctx.now = now;
            pool->run(nsm,
                      [](void *c, int i) {
                          TickCtx *t = static_cast<TickCtx *>(c);
                          t->sms[i]->tickCompute(t->now);
                      },
                      &tctx);
        } else {
            for (auto &s : sms_)
                s->tickCompute(now);
        }
        bool any = false;
        bool released = false;
        for (auto &s : sms_) {
            s->drainShared(now);
            any |= s->didWork();
            released |= s->slotReleased();
        }
        // Violations recorded during the parallel compute phase are
        // raised here, in the serial section of the same cycle.
        if (san_)
            san_->throwDeferred();
        // allDone() scans every SM; it can only flip true in a cycle
        // that emptied a TB slot (or when the machine was idle to
        // begin with), so the scan is gated on those cases instead of
        // running every cycle.
        if (released && allDone())
            break;
        if (any) {
            ++now;
            continue;
        }
        if (allDone())
            break;
        Cycle nxt = kNoCycle;
        for (auto &s : sms_)
            nxt = std::min(nxt, s->nextEventCycle());
        if (nxt == kNoCycle) {
            // Warps are resident but nothing can ever run again: a
            // survivable, classifiable event — the harness records the
            // point and the campaign continues (docs/ROBUSTNESS.md).
            ErrorContext ctx;
            ctx.cycle = now;
            ctx.scheme = schemeName(cfg_.scheme);
            throw DeadlockError(
                strprintf("GPU deadlock at cycle %llu: no work and no "
                          "future events while warps are resident",
                          static_cast<unsigned long long>(now)),
                std::move(ctx), diagnose(now));
        }
        now = std::max(now + 1, nxt);
    }

    if (san_) {
        for (auto &s : sms_)
            san_->checkDrained(s->state(), now);
        if (l2_->maxPendingReady() > now)
            san_->fail("leak at drain: L2 MSHR entry outstanding past "
                       "the end of the run",
                       now, -1, -1);
        san_->finishRun(now);
    }

    SimResult r;
    r.cycles = now;
    for (auto &s : sms_) {
        r.instructions += s->instsCommitted();
        s->collectStats(r.stats);
    }
    l2_->collectStats(r.stats);
    dram_->collectStats(r.stats);
    mmu_->collectStats(r.stats);
    link_->collectStats(r.stats);
    gpuHandler_->collectStats(r.stats);
    dir_->collectStats(r.stats);
    // The resilience block is opt-in (injection active, or the
    // resilienceStats knob): plain runs keep the exact stat set the
    // golden digests were captured over.
    if (injector_ || cfg_.resilienceStats) {
        mmu_->collectResilienceStats(r.stats);
        for (auto &s : sms_)
            s->collectResilienceStats(r.stats);
        if (injector_)
            injector_->collectStats(r.stats);
    }
    r.stats.set("gpu.cycles", static_cast<double>(r.cycles));
    r.stats.set("gpu.instructions", static_cast<double>(r.instructions));
    r.stats.set("gpu.ipc", r.ipc());
    r.stats.set("gpu.blocks", static_cast<double>(trace.blocks.size()));
    return r;
}

Cycle
Gpu::l2Load(Addr line, Cycle earliest)
{
    return l2_->load(line, earliest, dramFetchFn_);
}

Cycle
Gpu::l2Store(Addr line, Cycle earliest)
{
    // Write-allocate: DRAM traffic happens on dirty eviction (the
    // writeback callback), not on the store itself.
    return l2_->store(line, earliest);
}

Cycle
Gpu::l2Atomic(Addr line, Cycle earliest)
{
    Cycle done = l2_->load(line, earliest, dramFetchFn_);
    return done + cfg_.sm.atomicExtraLatency;
}

vm::Translation
Gpu::translatePage(Addr page, Cycle earliest)
{
    return mmu_->translate(page, earliest);
}

Cycle
Gpu::bulkDramTraffic(Cycle earliest, std::uint64_t bytes)
{
    return dram_->bulkTransfer(earliest, bytes);
}

int
Gpu::pendingFaults(Cycle now)
{
    return mmu_->pendingFaults(now);
}

} // namespace gex::gpu
