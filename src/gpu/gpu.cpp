#include "gpu/gpu.hpp"

#include <algorithm>
#include <sstream>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/task_pool.hpp"

namespace gex::gpu {

void
SimResult::writeJson(json::Writer &w) const
{
    w.beginObject();
    w.key("cycles").value(static_cast<std::uint64_t>(cycles));
    w.key("instructions").value(instructions);
    w.key("ipc").value(ipc());
    w.key("stats");
    stats.writeJson(w);
    w.endObject();
}

std::string
SimResult::toJson() const
{
    std::ostringstream os;
    json::Writer w(os);
    writeJson(w);
    return os.str();
}

Gpu::Gpu(const GpuConfig &cfg) : cfg_(cfg) {}
Gpu::~Gpu() = default;

void
Gpu::reset(const func::Kernel &kernel, const trace::KernelTrace &trace,
           const vm::VmPolicy &policy)
{
    mem::CacheConfig l2cfg = cfg_.l2;
    l2cfg.writeAllocate = true; // GPU L2: write-back, write-allocate
    l2_ = std::make_unique<mem::Cache>(l2cfg);
    dram_ = std::make_unique<mem::Dram>(cfg_.dramBytesPerCycle,
                                        cfg_.dramLatency);
    l2_->setWriteback([this](Addr, Cycle at) { dram_->writeLine(at); });
    dramFetchFn_ = [this](Addr, Cycle t) { return dram_->readLine(t); };
    dir_ = std::make_unique<vm::PageDirectory>(
        cfg_.migrationGranularityBytes);
    link_ = std::make_unique<vm::HostLink>(cfg_.hostLink);
    gpuHandler_ = std::make_unique<vm::GpuFaultHandler>(cfg_.gpuHandler);

    vm::MmuConfig mmu_cfg = cfg_.mmu;
    mmu_cfg.localHandling = policy.localHandling;
    mmu_ = std::make_unique<vm::SystemMmu>(mmu_cfg, *dir_, *link_,
                                           *gpuHandler_);
    injector_.reset();
    if (policy.inject.enabled()) {
        injector_ =
            std::make_unique<inject::FaultInjector>(policy.inject);
        mmu_->setInjector(injector_.get());
    }

    vm::applyPolicy(*dir_, kernel, policy);

    sched_ = std::make_unique<TbScheduler>(trace);
    sms_.clear();
    sms_.reserve(static_cast<std::size_t>(cfg_.numSms));
    for (int i = 0; i < cfg_.numSms; ++i) {
        sms_.push_back(std::make_unique<sm::Sm>(i, cfg_, *this, *sched_));
        sms_.back()->setObserver(observer_);
    }
}

bool
Gpu::allDone() const
{
    if (sched_->hasPending())
        return false;
    for (const auto &s : sms_)
        if (s->busy())
            return false;
    return true;
}

SimResult
Gpu::run(const func::Kernel &kernel, const trace::KernelTrace &trace,
         const vm::VmPolicy &policy)
{
    kernel.program.validate();
    GEX_ASSERT(trace.blocks.size() == kernel.numBlocks(),
               "trace/kernel geometry mismatch");
    reset(kernel, trace, policy);

    sm::LaunchInfo li;
    li.kernel = &kernel;
    li.trace = &trace;
    li.warpsPerBlock = static_cast<int>(kernel.warpsPerBlock());
    li.blocksPerSm = blocksPerSm(cfg_, kernel);
    li.contextBytesPerBlock = contextBytesPerBlock(cfg_, kernel);
    for (auto &s : sms_)
        s->beginKernel(li);

    // Initial fill: breadth-first across SMs, as the baseline TB
    // scheduler does on a kernel launch.
    bool placed = true;
    while (placed && sched_->hasPending()) {
        placed = false;
        for (auto &s : sms_) {
            if (!sched_->hasPending())
                break;
            if (s->freeSlots() > 0) {
                const trace::BlockTrace *bt = sched_->nextBlock();
                GEX_ASSERT(bt != nullptr);
                bool ok = s->launchBlock(bt, 0);
                GEX_ASSERT(ok);
                placed = true;
            }
        }
    }

    // Phased tick engine (see docs/PERFORMANCE.md): per global cycle,
    // a serial events phase (ascending SM), a parallel SM-local
    // compute phase, then a serial drain of staged shared-resource
    // accesses (ascending SM). The drain order equals the access
    // order of the fully serial tick, so every smThreads setting —
    // including 1, which skips the pool entirely — produces
    // bit-identical results.
    const int nsm = static_cast<int>(sms_.size());
    const int threads = std::max(1, std::min(cfg_.smThreads, nsm));
    std::unique_ptr<common::TaskPool> pool;
    if (threads > 1)
        pool = std::make_unique<common::TaskPool>(threads);
    struct TickCtx {
        std::unique_ptr<sm::Sm> *sms;
        Cycle now;
    } tctx{sms_.data(), 0};

    Cycle now = 0;
    while (true) {
        for (auto &s : sms_)
            s->tickEvents(now);
        if (pool) {
            tctx.now = now;
            pool->run(nsm,
                      [](void *c, int i) {
                          TickCtx *t = static_cast<TickCtx *>(c);
                          t->sms[i]->tickCompute(t->now);
                      },
                      &tctx);
        } else {
            for (auto &s : sms_)
                s->tickCompute(now);
        }
        bool any = false;
        bool released = false;
        for (auto &s : sms_) {
            s->drainShared(now);
            any |= s->didWork();
            released |= s->slotReleased();
        }
        // allDone() scans every SM; it can only flip true in a cycle
        // that emptied a TB slot (or when the machine was idle to
        // begin with), so the scan is gated on those cases instead of
        // running every cycle.
        if (released && allDone())
            break;
        if (any) {
            ++now;
            continue;
        }
        if (allDone())
            break;
        Cycle nxt = kNoCycle;
        for (auto &s : sms_)
            nxt = std::min(nxt, s->nextEventCycle());
        if (nxt == kNoCycle)
            panic("GPU deadlock at cycle %llu: no work and no events",
                  static_cast<unsigned long long>(now));
        now = std::max(now + 1, nxt);
    }

    SimResult r;
    r.cycles = now;
    for (auto &s : sms_) {
        r.instructions += s->instsCommitted();
        s->collectStats(r.stats);
    }
    l2_->collectStats(r.stats);
    dram_->collectStats(r.stats);
    mmu_->collectStats(r.stats);
    link_->collectStats(r.stats);
    gpuHandler_->collectStats(r.stats);
    dir_->collectStats(r.stats);
    // The resilience block is opt-in (injection active, or the
    // resilienceStats knob): plain runs keep the exact stat set the
    // golden digests were captured over.
    if (injector_ || cfg_.resilienceStats) {
        mmu_->collectResilienceStats(r.stats);
        for (auto &s : sms_)
            s->collectResilienceStats(r.stats);
        if (injector_)
            injector_->collectStats(r.stats);
    }
    r.stats.set("gpu.cycles", static_cast<double>(r.cycles));
    r.stats.set("gpu.instructions", static_cast<double>(r.instructions));
    r.stats.set("gpu.ipc", r.ipc());
    r.stats.set("gpu.blocks", static_cast<double>(trace.blocks.size()));
    return r;
}

Cycle
Gpu::l2Load(Addr line, Cycle earliest)
{
    return l2_->load(line, earliest, dramFetchFn_);
}

Cycle
Gpu::l2Store(Addr line, Cycle earliest)
{
    // Write-allocate: DRAM traffic happens on dirty eviction (the
    // writeback callback), not on the store itself.
    return l2_->store(line, earliest);
}

Cycle
Gpu::l2Atomic(Addr line, Cycle earliest)
{
    Cycle done = l2_->load(line, earliest, dramFetchFn_);
    return done + cfg_.sm.atomicExtraLatency;
}

vm::Translation
Gpu::translatePage(Addr page, Cycle earliest)
{
    return mmu_->translate(page, earliest);
}

Cycle
Gpu::bulkDramTraffic(Cycle earliest, std::uint64_t bytes)
{
    return dram_->bulkTransfer(earliest, bytes);
}

int
Gpu::pendingFaults(Cycle now)
{
    return mmu_->pendingFaults(now);
}

} // namespace gex::gpu
