/**
 * @file
 * Top-level GPU timing simulator: owns the SM array, the shared L2,
 * DRAM, the system MMU, the host link and the GPU-local fault handler;
 * drives the global clock with event-based cycle skipping; produces a
 * SimResult per kernel run.
 */

#ifndef GEX_GPU_GPU_HPP
#define GEX_GPU_GPU_HPP

#include <memory>
#include <vector>

#include "func/kernel.hpp"
#include "gpu/config.hpp"
#include "gpu/context_switch.hpp"
#include "gpu/tb_scheduler.hpp"
#include "inject/fault_model.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "sm/lsu.hpp"
#include "sm/sm.hpp"
#include "trace/trace.hpp"
#include "vm/fill_unit.hpp"
#include "vm/memory_manager.hpp"

namespace gex::gpu {

/** Outcome of one kernel execution on the timing simulator. */
struct SimResult {
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    StatSet stats;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /**
     * JSON object: {"cycles": N, "instructions": N, "ipc": X,
     * "stats": {...}} with round-trippable numbers.
     */
    std::string toJson() const;

    /** Stream @p this as a JSON object into an in-progress document. */
    void writeJson(json::Writer &w) const;
};

/**
 * A configured GPU. Each run() executes one kernel trace to completion
 * on fresh microarchitectural state (caches, TLBs, page directory),
 * mirroring the paper's one-kernel-per-simulation methodology.
 */
class Gpu : public sm::MemorySystem
{
  public:
    explicit Gpu(const GpuConfig &cfg);
    ~Gpu() override;

    /**
     * Execute @p kernel (whose dynamic behaviour is @p trace) under
     * the given paging policy.
     *
     * Thread-safety contract (relied on by harness::SweepEngine): the
     * kernel and trace are read-only here and in everything reachable
     * from run() — any number of Gpu instances on different threads
     * may share one trace concurrently. A single Gpu instance is NOT
     * reentrant; use one Gpu per thread.
     */
    SimResult run(const func::Kernel &kernel,
                  const trace::KernelTrace &trace,
                  const vm::VmPolicy &policy = vm::VmPolicy::allResident());

    const GpuConfig &config() const { return cfg_; }

    /**
     * Attach a pipeline observer to every SM (nullptr detaches). The
     * pointer is installed on the fresh SM array each run(), so it may
     * be set once before any number of runs; it must outlive them.
     */
    void setObserver(obs::PipelineObserver *o) { observer_ = o; }

    // --- sm::MemorySystem ---
    Cycle l2Load(Addr line, Cycle earliest) override;
    Cycle l2Store(Addr line, Cycle earliest) override;
    Cycle l2Atomic(Addr line, Cycle earliest) override;
    vm::Translation translatePage(Addr page, Cycle earliest) override;
    Cycle bulkDramTraffic(Cycle earliest, std::uint64_t bytes) override;
    int pendingFaults(Cycle now) override;

  private:
    void reset(const func::Kernel &kernel,
               const trace::KernelTrace &trace, const vm::VmPolicy &policy);
    bool allDone() const;
    /** Any SM still owns a block (resident or switched out)? */
    bool anyBusy() const;
    /**
     * Render the machine-state diagnostics bundle for DeadlockError /
     * LivelockError / CycleBudgetExceeded: per-SM warp dumps, pending
     * fault count, and — when watchdogCaptureEvents is on — the last-K
     * pipeline events from the capture ring.
     */
    std::string diagnose(Cycle now);

    GpuConfig cfg_;
    std::unique_ptr<mem::Cache> l2_;
    std::unique_ptr<mem::Dram> dram_;
    /** Built once per reset(); l2Load/l2Atomic run per miss and must
     *  not construct a std::function each call. */
    mem::Cache::FetchFn dramFetchFn_;
    std::unique_ptr<vm::PageDirectory> dir_;
    std::unique_ptr<vm::HostLink> link_;
    std::unique_ptr<vm::GpuFaultHandler> gpuHandler_;
    std::unique_ptr<inject::FaultInjector> injector_;
    std::unique_ptr<vm::SystemMmu> mmu_;
    std::unique_ptr<TbScheduler> sched_;
    std::vector<std::unique_ptr<sm::Sm>> sms_;
    obs::PipelineObserver *observer_ = nullptr;
    /**
     * Last-K event capture ring for watchdog diagnostics, created per
     * reset() when GpuConfig::watchdogCaptureEvents is set; tees into
     * observer_ so capture composes with a user observer.
     */
    std::unique_ptr<obs::LastKObserver> lastK_;
    /**
     * Invariant sanitizer (GpuConfig::checkInvariants), rebuilt per
     * reset(). Heads the observer chain (sanitizer → last-K ring →
     * user observer) and is also attached to every SM's targeted
     * hooks; exec-only, so results are identical with it detached.
     */
    std::unique_ptr<check::SimSanitizer> san_;
};

} // namespace gex::gpu

#endif // GEX_GPU_GPU_HPP
