/**
 * @file
 * Umbrella public header for the gex library: a cycle-level GPU timing
 * simulator with preemptible exception support, reproducing "Efficient
 * Exception Handling Support for GPUs" (MICRO-50, 2017).
 *
 * Typical use:
 *
 *     gex::func::GlobalMemory mem;
 *     gex::func::Kernel k = gex::workloads::make("sgemm", mem);
 *     gex::func::FunctionalSim fsim(mem);
 *     gex::trace::KernelTrace tr = fsim.run(k);
 *
 *     gex::gpu::GpuConfig cfg = gex::gpu::GpuConfig::baseline();
 *     cfg.scheme = gex::gpu::Scheme::ReplayQueue;
 *     gex::gpu::Gpu gpu(cfg);
 *     auto result = gpu.run(k, tr);
 */

#ifndef GEX_GEX_HPP
#define GEX_GEX_HPP

#include "check/fuzz.hpp"
#include "check/oracle.hpp"
#include "check/sanitizer.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "config/cli.hpp"
#include "config/knob_registry.hpp"
#include "func/functional_sim.hpp"
#include "func/kernel.hpp"
#include "func/memory.hpp"
#include "gpu/config.hpp"
#include "gpu/gpu.hpp"
#include "harness/journal.hpp"
#include "harness/sweep.hpp"
#include "inject/fault_model.hpp"
#include "inject/rng.hpp"
#include "isa/program.hpp"
#include "kasm/builder.hpp"
#include "kasm/parser.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/observer.hpp"
#include "obs/pipeline_view.hpp"
#include "power/overheads.hpp"
#include "vm/memory_manager.hpp"
#include "workloads/workloads.hpp"

#endif // GEX_GEX_HPP
