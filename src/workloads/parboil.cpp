/**
 * @file
 * Parboil-like workload generators (see workloads.hpp and DESIGN.md).
 *
 * Each kernel reproduces the microarchitectural behaviour of its
 * Parboil namesake that the paper's figures depend on:
 *
 *  - sgemm:        tiled matmul, shared-memory staging, FFMA-dense
 *  - stencil:      3D 7-point, memory streaming, predicated halo
 *  - lbm:          19 loads/stores via an incremented address register
 *                  (WAR chains) at 128 regs/thread -> 8-warp occupancy;
 *                  the paper's worst case for wd/rq schemes
 *  - histo:        data-dependent global atomics
 *  - spmv:         CSR gather, divergent row loops
 *  - bfs:          frontier check + divergent edge loops + atomics
 *  - sad:          integer ALU block matching, fully coalesced
 *  - mri-q:        SFU-heavy (sin/cos) compute bound, broadcast loads
 *  - mri-gridding: SFU + two-orders-of-magnitude block load imbalance
 *  - cutcp:        compute bound, rsqrt inner loop, cached atom data
 *  - tpacf:        shared-memory histogram + log2 binning
 */

#include "workloads/detail.hpp"

#include "common/log.hpp"

namespace gex::workloads::detail {

using kasm::Cmp;
using kasm::KernelBuilder;
using kasm::PLogic;
using kasm::Reg;
using kasm::SpecialReg;

namespace {
constexpr Reg R(int i) { return static_cast<Reg>(i); }
constexpr isa::Reg RZ = isa::kRegZero;
} // namespace

// ---------------------------------------------------------------------------

func::Kernel
makeSgemm(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t dim = 96u * static_cast<std::uint32_t>(scale) + 32;
    GEX_ASSERT(dim % 16 == 0);
    Ctx c(mem);

    const std::uint64_t n = static_cast<std::uint64_t>(dim) * dim;
    Addr A = c.buf("A", n * 8, func::BufferKind::Input);
    Addr B = c.buf("B", n * 8, func::BufferKind::Input);
    Addr C = c.buf("C", n * 64, func::BufferKind::Output);
    for (std::uint64_t i = 0; i < n; ++i) {
        mem.writeF64(A + i * 8, c.smallReal());
        mem.writeF64(B + i * 8, c.smallReal());
    }

    KernelBuilder b("sgemm");
    b.setNumParams(4);
    b.setSharedBytes(4096); // two 16x16 double tiles

    b.s2r(R(0), SpecialReg::TidX);
    b.andi(R(1), R(0), 15);   // tx
    b.shri(R(2), R(0), 4);    // ty
    b.s2r(R(3), SpecialReg::CtaIdX);
    b.s2r(R(4), SpecialReg::CtaIdY);
    b.ldparam(R(7), 0);       // A
    b.ldparam(R(8), 1);       // B
    b.ldparam(R(9), 2);       // C
    b.ldparam(R(10), 3);      // dim
    b.shli(R(5), R(4), 4);
    b.iadd(R(5), R(5), R(2)); // row
    b.shli(R(6), R(3), 4);
    b.iadd(R(6), R(6), R(1)); // col
    b.movi(R(13), 0);         // acc = 0.0
    b.movi(R(12), 0);         // kt
    b.shli(R(17), R(0), 3);           // As store offset = tid*8
    b.iaddi(R(18), R(17), 2048);      // Bs store offset
    b.shli(R(19), R(2), 7);           // As read base = ty*128
    b.shli(R(20), R(1), 3);           // Bs read base = tx*8 (+2048 via imm)

    auto loop = b.label();
    b.bind(loop);
    // As[ty][tx] = A[row*dim + kt + tx]
    b.imul(R(14), R(5), R(10));
    b.iadd(R(14), R(14), R(12));
    b.iadd(R(14), R(14), R(1));
    b.shli(R(14), R(14), 3);
    b.iadd(R(14), R(14), R(7));
    b.ldGlobal(R(15), R(14));
    b.stShared(R(17), 0, R(15));
    // Bs[ty][tx] = B[col*dim + kt+ty] (B is stored column-major, as
    // in Parboil's sgemm: a block's B panel is contiguous)
    b.imul(R(14), R(6), R(10));
    b.iadd(R(14), R(14), R(12));
    b.iadd(R(14), R(14), R(2));
    b.shli(R(14), R(14), 3);
    b.iadd(R(14), R(14), R(8));
    b.ldGlobal(R(15), R(14));
    b.stShared(R(18), 0, R(15));
    b.bar();
    for (int i = 0; i < 16; ++i) {
        b.ldShared(R(15), R(19), i * 8);
        b.ldShared(R(16), R(20), 2048 + i * 128);
        b.ffma(R(13), R(15), R(16), R(13));
    }
    b.bar();
    b.iaddi(R(12), R(12), 16);
    b.setp(0, Cmp::LT, R(12), R(10));
    b.guard(0);
    b.bra(loop);
    b.clearGuard();
    // C[row*dim + col] = acc. Output records are 64 B apart so the
    // output footprint per unit compute matches the original
    // benchmark's (the whole suite is scaled down ~100x).
    b.imul(R(14), R(5), R(10));
    b.iadd(R(14), R(14), R(6));
    b.shli(R(14), R(14), 6);
    b.iadd(R(14), R(14), R(9));
    b.stGlobal(R(14), 0, R(13));
    b.exit();

    c.k.program = b.build();
    c.k.grid = {dim / 16, dim / 16, 1};
    c.k.block = {256, 1, 1};
    c.k.params = {A, B, C, dim};
    return c.k;
}

// ---------------------------------------------------------------------------

func::Kernel
makeStencil(func::GlobalMemory &mem, int scale)
{
    const std::int64_t N = 256;
    const std::int64_t M = 64 * scale;
    const std::int64_t D = 16;
    Ctx c(mem);
    const std::uint64_t cells =
        static_cast<std::uint64_t>(N * M * (D + 2));
    Addr in = c.buf("in", cells * 8, func::BufferKind::Input);
    Addr out = c.buf("out", cells * 32, func::BufferKind::Output);
    for (std::uint64_t i = 0; i < cells; ++i)
        mem.writeF64(in + i * 8, c.smallReal());

    const std::int64_t ys = N * 8;       // +-y line stride, bytes
    const std::int64_t zs = N * M * 8;   // +-z plane stride, bytes
    const double c0 = 0.55, c1 = 0.075;

    KernelBuilder b("stencil");
    b.setNumParams(2);
    b.s2r(R(0), SpecialReg::CtaIdX);
    b.shli(R(0), R(0), 7);
    b.s2r(R(14), SpecialReg::TidX);
    b.iadd(R(0), R(0), R(14));           // x
    b.s2r(R(1), SpecialReg::CtaIdY);     // y
    b.ldparam(R(2), 0);                  // in
    b.ldparam(R(3), 1);                  // out
    // interior predicate: 0 < x < N-1 and 0 < y < M-1
    b.setpi(0, Cmp::GT, R(0), 0);
    b.setpi(1, Cmp::LT, R(0), N - 1);
    b.psetp(0, PLogic::And, 0, 1);
    b.setpi(1, Cmp::GT, R(1), 0);
    b.psetp(0, PLogic::And, 0, 1);
    b.setpi(1, Cmp::LT, R(1), M - 1);
    b.psetp(0, PLogic::And, 0, 1);
    // base address at z=1: ((1*M + y)*N + x) * 8
    b.iaddi(R(14), R(1), M);
    b.imuli(R(14), R(14), N);
    b.iadd(R(14), R(14), R(0));
    b.shli(R(14), R(14), 3);
    b.iadd(R(10), R(2), R(14));          // in addr
    b.shli(R(15), R(14), 2);             // 32 B output records
    b.iadd(R(11), R(3), R(15));          // out addr
    b.movf(R(7), c0);
    b.movf(R(8), c1);
    b.movi(R(9), 1);                     // z

    auto loop = b.label();
    b.bind(loop);
    b.ldGlobal(R(13), R(10));            // center
    b.ldGlobal(R(14), R(10), 8);
    b.ldGlobal(R(15), R(10), -8);
    b.fadd(R(14), R(14), R(15));
    b.ldGlobal(R(15), R(10), ys);
    b.fadd(R(14), R(14), R(15));
    b.ldGlobal(R(15), R(10), -ys);
    b.fadd(R(14), R(14), R(15));
    b.ldGlobal(R(15), R(10), zs);
    b.fadd(R(14), R(14), R(15));
    b.ldGlobal(R(15), R(10), -zs);
    b.fadd(R(14), R(14), R(15));
    b.fmul(R(13), R(13), R(7));
    b.ffma(R(13), R(14), R(8), R(13));
    b.guard(0);
    b.stGlobal(R(11), 0, R(13));
    b.clearGuard();
    b.iaddi(R(10), R(10), zs);
    b.iaddi(R(11), R(11), zs * 4);
    b.iaddi(R(9), R(9), 1);
    b.setpi(2, Cmp::LT, R(9), D + 1);
    b.guard(2);
    b.bra(loop);
    b.clearGuard();
    b.exit();

    c.k.program = b.build();
    c.k.grid = {static_cast<std::uint32_t>(N / 128),
                static_cast<std::uint32_t>(M), 1};
    c.k.block = {128, 1, 1};
    c.k.params = {in, out};
    return c.k;
}

// ---------------------------------------------------------------------------

func::Kernel
makeLbm(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 32u * static_cast<std::uint32_t>(scale);
    const std::uint64_t n = static_cast<std::uint64_t>(blocks) * 256;
    const std::uint64_t W = 4096;     // shared input window cells/array
    const std::int64_t in_stride = static_cast<std::int64_t>(W) * 8;
    const std::int64_t out_stride = static_cast<std::int64_t>(n) * 8;
    Ctx c(mem);
    // 19 input distribution arrays (SoA). The per-SM working set spans
    // ~38 pages (19 input + 19 output arrays), thrashing the 32-entry
    // L1 TLB exactly as the real lbm's scattered SoA accesses do; the
    // input window is L2-resident so loads are latency- (not DRAM-)
    // bound.
    Addr in = c.buf("fin", 19 * W * 8, func::BufferKind::Input);
    Addr out = c.buf("fout", 19 * n * 8, func::BufferKind::Output);
    for (std::uint64_t i = 0; i < 19 * W; ++i)
        mem.writeF64(in + i * 8, 0.05 + 0.001 * static_cast<double>(i % 97));

    // D3Q19 lattice directions (x/y components) and weights, used in
    // the per-direction equilibrium computation.
    const double cx[19] = {0, 1, -1, 0, 0,  1,  1, -1, -1, 0,  0,
                           1, -1, 1, -1, 1, -1,  1, -1};
    const double cy[19] = {0, 0,  0, 1, -1, 1, -1,  1, -1, 0,  0,
                           0,  0, 1,  1, -1, -1, -1,  1};
    const double wgt[19] = {1. / 3,  1. / 18, 1. / 18, 1. / 18, 1. / 18,
                            1. / 36, 1. / 36, 1. / 36, 1. / 36, 1. / 18,
                            1. / 18, 1. / 36, 1. / 36, 1. / 36, 1. / 36,
                            1. / 36, 1. / 36, 1. / 36, 1. / 36};

    KernelBuilder b("lbm");
    b.setNumParams(2);
    // The real lbm kernel burns ~128 registers per thread, capping
    // occupancy at 8 warps (1 block) per SM — the paper's key case.
    b.setMinRegs(128);

    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.ldparam(R(2), 1);
    // Block-tiled gather window: all warps of a block stream the same
    // 32-cell halo per direction (heavy L1 reuse, as the tiled lbm
    // streaming step exhibits), offset per block within the window.
    b.s2r(R(21), SpecialReg::CtaIdX);
    b.imuli(R(21), R(21), 32);
    b.s2r(R(23), SpecialReg::LaneId);
    b.iadd(R(23), R(23), R(21));
    b.andi(R(23), R(23), static_cast<std::int64_t>(W - 1));
    b.shli(R(23), R(23), 3);
    b.iadd(R(1), R(1), R(23));    // &fin[0][window + lane]
    b.shli(R(23), R(0), 3);
    b.iadd(R(2), R(2), R(23));    // &fout[0][gtid]
    b.movi(R(27), 0);             // correction coefficient (0.0)
    // 19 gathers through one stepped address register: every iadd is
    // WAR-dependent on the previous load's source read -- where the
    // replay-queue scheme's delayed source release bites (section 5.2).
    for (int i = 0; i < 19; ++i) {
        b.ldGlobal(R(3 + i), R(1));
        if (i < 18)
            b.iaddi(R(1), R(1), in_stride);
    }
    // Collision: density and momentum moments (serial FP chains).
    b.mov(R(22), R(3));
    for (int i = 1; i < 19; ++i)
        b.fadd(R(22), R(22), R(3 + i));      // rho
    b.movi(R(24), 0);
    for (int i = 1; i < 19; i += 2)
        b.fadd(R(24), R(24), R(3 + i));      // ux ~ sum of +x dirs
    b.movi(R(25), 0);
    for (int i = 2; i < 19; i += 2)
        b.fadd(R(25), R(25), R(3 + i));      // uy ~ sum of +y dirs
    b.frcp(R(26), R(22));
    b.fmul(R(24), R(24), R(26));
    b.fmul(R(25), R(25), R(26));
    b.fmul(R(28), R(24), R(24));
    b.ffma(R(28), R(25), R(25), R(28));      // usq
    b.fmuli(R(28), R(28), 1.5);
    // Per-direction BGK equilibrium + relaxation (~20 FLOPs each,
    // matching the real kernel's ~470-instruction body).
    for (int i = 0; i < 19; ++i) {
        b.fmuli(R(29), R(24), cx[i]);
        b.fmuli(R(30), R(25), cy[i]);
        b.fadd(R(29), R(29), R(30));         // cu
        b.fmuli(R(30), R(29), 3.0);
        b.faddi(R(30), R(30), 1.0);
        b.fmul(R(31), R(29), R(29));
        b.fmuli(R(31), R(31), 4.5);
        b.fadd(R(30), R(30), R(31));
        b.fsub(R(30), R(30), R(28));         // 1 + 3cu + 4.5cu^2 - usq
        b.fmul(R(31), R(22), R(30));
        b.fmuli(R(31), R(31), wgt[i]);       // feq
        b.fsub(R(31), R(31), R(3 + i));
        b.fmuli(R(31), R(31), 0.1);          // omega (feq - f)
        b.fadd(R(3 + i), R(3 + i), R(31));
        b.fmuli(R(29), R(31), 0.5);          // second-moment correction
        b.fmul(R(29), R(29), R(29));
        b.ffma(R(3 + i), R(29), R(27), R(3 + i));
    }
    // 19 SoA stores through the second stepped address register.
    for (int i = 0; i < 19; ++i) {
        b.stGlobal(R(2), 0, R(3 + i));
        if (i < 18)
            b.iaddi(R(2), R(2), out_stride);
    }
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {256, 1, 1};
    c.k.params = {in, out};
    return c.k;
}

// ---------------------------------------------------------------------------

func::Kernel
makeHisto(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 96u * static_cast<std::uint32_t>(scale);
    const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 256;
    const int iters = 8;
    const std::int64_t tstride = static_cast<std::int64_t>(threads) * 8;
    Ctx c(mem);
    Addr in = c.buf("in", threads * iters * 8, func::BufferKind::Input);
    Addr bins = c.buf("bins", 1024 * 8, func::BufferKind::InOut);
    Addr out = c.buf("out", threads * 64, func::BufferKind::Output);
    for (std::uint64_t i = 0; i < threads * iters; ++i)
        mem.write64(in + i * 8, c.rng.next());

    KernelBuilder b("histo");
    b.setNumParams(3);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.ldparam(R(2), 1);
    b.ldparam(R(3), 2);
    b.shli(R(9), R(0), 3);
    b.iadd(R(1), R(1), R(9)); // &in[gtid]
    b.movi(R(7), 1);
    b.movi(R(6), 0);
    for (int k = 0; k < iters; ++k) {
        b.ldGlobal(R(4), R(1), k * tstride);
        b.andi(R(5), R(4), 1023);
        b.shli(R(5), R(5), 3);
        b.iadd(R(5), R(5), R(2));
        b.atomAdd(RZ, R(5), R(7));
        b.xor_(R(6), R(6), R(4));
    }
    // Per-thread digest written to the (large) output buffer.
    b.shli(R(9), R(0), 6);
    b.iadd(R(9), R(9), R(3));
    b.stGlobal(R(9), 0, R(6));
    b.stGlobal(R(9), 8, R(0));
    b.stGlobal(R(9), 16, R(6));
    b.stGlobal(R(9), 24, R(0));
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {256, 1, 1};
    c.k.params = {in, bins, out};
    return c.k;
}

// ---------------------------------------------------------------------------

func::Kernel
makeSpmv(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 96u * static_cast<std::uint32_t>(scale);
    const std::uint64_t nrows = static_cast<std::uint64_t>(blocks) * 128;
    Ctx c(mem);

    // CSR with jittered row lengths (8..24 nnz, mean ~16).
    std::vector<std::uint64_t> rowptr(nrows + 1, 0);
    for (std::uint64_t r = 0; r < nrows; ++r)
        rowptr[r + 1] = rowptr[r] + 8 + c.rng.below(17);
    const std::uint64_t nnz = rowptr[nrows];

    Addr rp = c.buf("rowptr", (nrows + 1) * 8, func::BufferKind::Input);
    Addr ci = c.buf("colidx", nnz * 8, func::BufferKind::Input);
    Addr va = c.buf("vals", nnz * 8, func::BufferKind::Input);
    Addr x = c.buf("x", nrows * 8, func::BufferKind::Input);
    Addr y = c.buf("y", nrows * 64, func::BufferKind::Output);
    for (std::uint64_t r = 0; r <= nrows; ++r)
        mem.write64(rp + r * 8, rowptr[r]);
    for (std::uint64_t j = 0; j < nnz; ++j) {
        mem.write64(ci + j * 8, c.rng.below(nrows));
        mem.writeF64(va + j * 8, c.smallReal());
    }
    for (std::uint64_t r = 0; r < nrows; ++r)
        mem.writeF64(x + r * 8, c.smallReal());

    KernelBuilder b("spmv");
    b.setNumParams(5);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.ldparam(R(2), 1);
    b.ldparam(R(3), 2);
    b.ldparam(R(4), 3);
    b.ldparam(R(5), 4);
    b.shli(R(10), R(0), 3);
    b.iadd(R(10), R(10), R(1));
    b.ldGlobal(R(6), R(10));      // row start
    b.ldGlobal(R(7), R(10), 8);   // row end
    b.movi(R(8), 0);              // acc
    b.mov(R(9), R(6));            // j

    auto lexit = b.label();
    auto loop = b.label();
    b.ssy(lexit);
    b.bind(loop);
    b.setp(0, Cmp::GE, R(9), R(7));
    b.guard(0);
    b.bra(lexit);                 // divergent row-length exit
    b.clearGuard();
    b.shli(R(10), R(9), 3);
    b.iadd(R(10), R(10), R(2));
    b.ldGlobal(R(11), R(10));     // col
    b.shli(R(10), R(9), 3);
    b.iadd(R(10), R(10), R(3));
    b.ldGlobal(R(12), R(10));     // val
    b.shli(R(10), R(11), 3);
    b.iadd(R(10), R(10), R(4));
    b.ldGlobal(R(13), R(10));     // x[col], gather
    b.ffma(R(8), R(12), R(13), R(8));
    b.iaddi(R(9), R(9), 1);
    b.bra(loop);
    b.bind(lexit);
    b.join();
    b.shli(R(10), R(0), 6); // 64 B output records (footprint scaling)
    b.iadd(R(10), R(10), R(5));
    b.stGlobal(R(10), 0, R(8));
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {rp, ci, va, x, y};
    return c.k;
}

// ---------------------------------------------------------------------------

func::Kernel
makeBfs(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 96u * static_cast<std::uint32_t>(scale);
    const std::uint64_t n = static_cast<std::uint64_t>(blocks) * 128;
    const std::int64_t level = 5;
    Ctx c(mem);

    std::vector<std::uint64_t> adjptr(n + 1, 0);
    for (std::uint64_t v = 0; v < n; ++v)
        adjptr[v + 1] = adjptr[v] + 4 + c.rng.below(9);
    const std::uint64_t nedges = adjptr[n];

    Addr depth = c.buf("depth", n * 8, func::BufferKind::InOut);
    Addr ap = c.buf("adjptr", (n + 1) * 8, func::BufferKind::Input);
    Addr al = c.buf("adjlist", nedges * 8, func::BufferKind::Input);
    for (std::uint64_t v = 0; v < n; ++v)
        mem.write64(depth + v * 8,
                    v % 5 == 0 ? static_cast<std::uint64_t>(level) : 99);
    for (std::uint64_t v = 0; v <= n; ++v)
        mem.write64(ap + v * 8, adjptr[v]);
    for (std::uint64_t e = 0; e < nedges; ++e)
        mem.write64(al + e * 8, c.rng.below(n));

    KernelBuilder b("bfs");
    b.setNumParams(3);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.ldparam(R(2), 1);
    b.ldparam(R(3), 2);
    b.shli(R(10), R(0), 3);
    b.iadd(R(10), R(10), R(1));
    b.ldGlobal(R(4), R(10));          // depth[node]
    b.setpi(0, Cmp::NE, R(4), level); // not in frontier

    auto end = b.label();
    b.ssy(end);
    b.guard(0);
    b.bra(end);                       // divergent frontier skip
    b.clearGuard();
    b.shli(R(10), R(0), 3);
    b.iadd(R(10), R(10), R(2));
    b.ldGlobal(R(5), R(10));          // edge start
    b.ldGlobal(R(6), R(10), 8);       // edge end
    b.movi(R(9), level + 1);

    auto lexit = b.label();
    auto loop = b.label();
    b.ssy(lexit);
    b.bind(loop);
    b.setp(1, Cmp::GE, R(5), R(6));
    b.guard(1);
    b.bra(lexit);                     // divergent degree exit
    b.clearGuard();
    b.shli(R(10), R(5), 3);
    b.iadd(R(10), R(10), R(3));
    b.ldGlobal(R(7), R(10));          // neighbour id
    b.shli(R(10), R(7), 3);
    b.iadd(R(10), R(10), R(1));
    b.atomMin(RZ, R(10), R(9));       // relax neighbour depth
    b.iaddi(R(5), R(5), 1);
    b.bra(loop);
    b.bind(lexit);
    b.join();
    b.bind(end);
    b.join();
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {depth, ap, al};
    return c.k;
}

// ---------------------------------------------------------------------------

func::Kernel
makeSad(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 128u * static_cast<std::uint32_t>(scale);
    const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 128;
    const int win = 16;
    const std::int64_t tstride = static_cast<std::int64_t>(threads) * 8;
    Ctx c(mem);
    Addr cur = c.buf("cur", threads * win * 8, func::BufferKind::Input);
    Addr ref = c.buf("ref", threads * win * 8, func::BufferKind::Input);
    Addr out = c.buf("out", threads * 64, func::BufferKind::Output);
    for (std::uint64_t i = 0; i < threads * win; ++i) {
        mem.write64(cur + i * 8, c.rng.below(256));
        mem.write64(ref + i * 8, c.rng.below(256));
    }

    KernelBuilder b("sad");
    b.setNumParams(3);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.ldparam(R(2), 1);
    b.ldparam(R(3), 2);
    b.shli(R(9), R(0), 3);
    b.iadd(R(1), R(1), R(9));
    b.iadd(R(2), R(2), R(9));
    b.movi(R(8), 0);
    for (int k = 0; k < win; ++k) {
        b.ldGlobal(R(4), R(1), k * tstride);
        b.ldGlobal(R(5), R(2), k * tstride);
        b.isub(R(6), R(4), R(5));
        b.isub(R(7), RZ, R(6));
        b.imax(R(6), R(6), R(7));    // |a - b|
        b.iadd(R(8), R(8), R(6));
    }
    b.shli(R(9), R(0), 6); // 64 B output records (footprint scaling)
    b.iadd(R(9), R(9), R(3));
    b.stGlobal(R(9), 0, R(8));
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {cur, ref, out};
    return c.k;
}

// ---------------------------------------------------------------------------

func::Kernel
makeMriQ(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 48u * static_cast<std::uint32_t>(scale);
    const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 128;
    const std::int64_t K = 64;
    Ctx c(mem);
    Addr ks = c.buf("kspace", static_cast<std::uint64_t>(K) * 3 * 8,
                    func::BufferKind::Input);
    // Interleaved complex output (one 64 B record per voxel).
    Addr out = c.buf("out", threads * 64, func::BufferKind::Output);
    for (std::int64_t i = 0; i < K * 3; ++i)
        mem.writeF64(ks + static_cast<std::uint64_t>(i) * 8, c.smallReal());

    KernelBuilder b("mri-q");
    b.setNumParams(2);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.ldparam(R(2), 1);
    // Voxel coordinates derived from the thread id.
    b.i2f(R(4), R(0));
    b.fmuli(R(5), R(4), 0.001);       // x
    b.fmuli(R(6), R(4), 0.0007);      // y
    b.fmuli(R(7), R(4), 0.0003);      // z
    b.movi(R(8), 0);                  // accR
    b.movi(R(9), 0);                  // accI
    b.movi(R(10), 0);                 // k
    b.mov(R(11), R(1));               // k-space cursor

    auto loop = b.label();
    b.bind(loop);
    b.ldGlobal(R(12), R(11));         // kx (broadcast: same addr/warp)
    b.ldGlobal(R(13), R(11), 8);      // ky
    b.ldGlobal(R(14), R(11), 16);     // kz
    b.fmul(R(15), R(12), R(5));
    b.ffma(R(15), R(13), R(6), R(15));
    b.ffma(R(15), R(14), R(7), R(15)); // phase
    b.fsin(R(16), R(15));
    b.fcos(R(17), R(15));
    b.fadd(R(8), R(8), R(17));
    b.fadd(R(9), R(9), R(16));
    b.iaddi(R(11), R(11), 24);
    b.iaddi(R(10), R(10), 1);
    b.setpi(0, Cmp::LT, R(10), K);
    b.guard(0);
    b.bra(loop);
    b.clearGuard();
    b.shli(R(15), R(0), 6); // 64 B output records (footprint scaling)
    b.iadd(R(16), R(15), R(2));
    b.stGlobal(R(16), 0, R(8));  // real part
    b.stGlobal(R(16), 8, R(9));  // imaginary part
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {ks, out};
    return c.k;
}

// ---------------------------------------------------------------------------

func::Kernel
makeMriGridding(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 96u * static_cast<std::uint32_t>(scale);
    const std::uint64_t S = 16384;    // sample pool (power of two)
    const std::uint64_t O = 262144;   // output grid cells (power of two)
    Ctx c(mem);
    Addr work = c.buf("work", blocks * 8, func::BufferKind::Input);
    Addr samples = c.buf("samples", S * 8, func::BufferKind::Input);
    Addr out = c.buf("grid", O * 8, func::BufferKind::Output);
    // Two-orders-of-magnitude block imbalance (paper section 5.3):
    // most blocks do 6 iterations, every 37th does ~50x more.
    for (std::uint32_t bi = 0; bi < blocks; ++bi)
        mem.write64(work + static_cast<std::uint64_t>(bi) * 8,
                    bi % 37 == 0 ? 300 : 6);
    for (std::uint64_t i = 0; i < S; ++i)
        mem.writeF64(samples + i * 8, c.smallReal());

    KernelBuilder b("mri-gridding");
    b.setNumParams(3);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.s2r(R(1), SpecialReg::CtaIdX);
    b.ldparam(R(2), 0);
    b.ldparam(R(3), 1);
    b.ldparam(R(4), 2);
    b.shli(R(10), R(1), 3);
    b.iadd(R(10), R(10), R(2));
    b.ldGlobal(R(5), R(10));          // per-block iteration count
    b.movi(R(6), 0);                  // j

    auto loop = b.label();
    auto done = b.label();
    b.bind(loop);
    b.setp(0, Cmp::GE, R(6), R(5));   // uniform within the block
    b.guard(0);
    b.bra(done);
    b.clearGuard();
    // gather a sample
    b.imuli(R(10), R(6), 13);
    b.imuli(R(11), R(0), 7);
    b.iadd(R(10), R(10), R(11));
    b.andi(R(10), R(10), static_cast<std::int64_t>(S - 1));
    b.shli(R(10), R(10), 3);
    b.iadd(R(10), R(10), R(3));
    b.ldGlobal(R(7), R(10));
    // gridding kernel weight
    b.fsin(R(8), R(7));
    b.fmul(R(8), R(8), R(7));
    // scatter
    b.imuli(R(10), R(6), 31);
    b.iadd(R(10), R(10), R(0));
    b.andi(R(10), R(10), static_cast<std::int64_t>(O - 1));
    b.shli(R(10), R(10), 3);
    b.iadd(R(10), R(10), R(4));
    b.stGlobal(R(10), 0, R(8));
    b.iaddi(R(6), R(6), 1);
    b.bra(loop);
    b.bind(done);
    b.join();
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {work, samples, out};
    return c.k;
}

// ---------------------------------------------------------------------------

func::Kernel
makeCutcp(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 64u * static_cast<std::uint32_t>(scale);
    const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 128;
    const std::int64_t A = 48;        // atoms
    Ctx c(mem);
    Addr atoms = c.buf("atoms", static_cast<std::uint64_t>(A) * 32,
                       func::BufferKind::Input);
    Addr out = c.buf("potential", threads * 64, func::BufferKind::Output);
    for (std::int64_t i = 0; i < A * 4; ++i)
        mem.writeF64(atoms + static_cast<std::uint64_t>(i) * 8,
                     0.25 + c.rng.real());

    KernelBuilder b("cutcp");
    b.setNumParams(2);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.ldparam(R(2), 1);
    b.i2f(R(3), R(0));
    b.fmuli(R(4), R(3), 0.01);        // gx
    b.fmuli(R(5), R(3), 0.003);       // gy
    b.fmuli(R(6), R(3), 0.0007);      // gz
    b.movi(R(7), 0);                  // acc
    b.movi(R(8), 0);                  // a
    b.mov(R(9), R(1));                // atom cursor

    auto loop = b.label();
    b.bind(loop);
    b.ldGlobal(R(10), R(9));          // ax
    b.ldGlobal(R(11), R(9), 8);       // ay
    b.ldGlobal(R(12), R(9), 16);      // az
    b.ldGlobal(R(13), R(9), 24);      // q
    b.fsub(R(10), R(10), R(4));
    b.fsub(R(11), R(11), R(5));
    b.fsub(R(12), R(12), R(6));
    b.fmul(R(14), R(10), R(10));
    b.ffma(R(14), R(11), R(11), R(14));
    b.ffma(R(14), R(12), R(12), R(14));
    b.faddi(R(14), R(14), 0.01);      // softening
    b.frsq(R(15), R(14));
    b.ffma(R(7), R(13), R(15), R(7));
    b.iaddi(R(9), R(9), 32);
    b.iaddi(R(8), R(8), 1);
    b.setpi(0, Cmp::LT, R(8), A);
    b.guard(0);
    b.bra(loop);
    b.clearGuard();
    b.shli(R(10), R(0), 6); // 64 B output records (footprint scaling)
    b.iadd(R(10), R(10), R(2));
    b.stGlobal(R(10), 0, R(7));
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {atoms, out};
    return c.k;
}

// ---------------------------------------------------------------------------

func::Kernel
makeTpacf(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 64u * static_cast<std::uint32_t>(scale);
    const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 128;
    const std::int64_t P = 40;
    const std::uint64_t N = threads; // power-of-two-ish gather domain
    Ctx c(mem);
    Addr d1 = c.buf("data1", threads * static_cast<std::uint64_t>(P) * 8,
                    func::BufferKind::Input);
    Addr d2 = c.buf("data2", N * 8, func::BufferKind::Input);
    Addr hist = c.buf("hist", 64 * 8, func::BufferKind::InOut);
    for (std::uint64_t i = 0; i < threads * static_cast<std::uint64_t>(P);
         ++i)
        mem.writeF64(d1 + i * 8, c.smallReal());
    for (std::uint64_t i = 0; i < N; ++i)
        mem.writeF64(d2 + i * 8, c.smallReal());

    // Round N down to a power of two for the gather mask.
    std::uint64_t mask = 1;
    while (mask * 2 <= N)
        mask *= 2;
    mask -= 1;

    KernelBuilder b("tpacf");
    b.setNumParams(3);
    b.setSharedBytes(512); // 64-bin block-local histogram

    b.s2r(R(0), SpecialReg::GlobalTid);
    b.s2r(R(1), SpecialReg::TidX);
    b.ldparam(R(2), 0);
    b.ldparam(R(3), 1);
    b.ldparam(R(4), 2);
    // Zero the shared histogram (first 64 threads).
    b.setpi(0, Cmp::LT, R(1), 64);
    b.shli(R(10), R(1), 3);
    b.guard(0);
    b.stShared(R(10), 0, RZ);
    b.clearGuard();
    b.bar();

    b.shli(R(11), R(0), 3);
    b.iadd(R(11), R(11), R(2));       // d1 cursor (strided, coalesced)
    b.movi(R(6), 0);                  // p
    const std::int64_t tstride =
        static_cast<std::int64_t>(threads) * 8;

    auto loop = b.label();
    b.bind(loop);
    b.ldGlobal(R(7), R(11));          // d1 sample
    b.iaddi(R(11), R(11), tstride);
    b.imuli(R(10), R(0), 13);
    b.imuli(R(12), R(6), 17);
    b.iadd(R(10), R(10), R(12));
    b.andi(R(10), R(10), static_cast<std::int64_t>(mask));
    b.shli(R(10), R(10), 3);
    b.iadd(R(10), R(10), R(3));
    b.ldGlobal(R(8), R(10));          // d2 gather
    b.fmul(R(9), R(7), R(8));
    b.faddi(R(9), R(9), 1.5);
    b.flog2(R(9), R(9));              // angular separation proxy
    b.fmuli(R(9), R(9), 24.0);
    b.faddi(R(9), R(9), 32.0);
    b.f2i(R(12), R(9));
    b.movi(R(13), 63);
    b.imin(R(12), R(12), R(13));
    b.imax(R(12), R(12), RZ);
    b.shli(R(12), R(12), 3);
    b.ldShared(R(13), R(12));         // shared-memory histogram
    b.iaddi(R(13), R(13), 1);
    b.stShared(R(12), 0, R(13));
    b.iaddi(R(6), R(6), 1);
    b.setpi(1, Cmp::LT, R(6), P);
    b.guard(1);
    b.bra(loop);
    b.clearGuard();
    b.bar();
    // Merge block histogram into the global one (first 64 threads).
    b.shli(R(10), R(1), 3);
    b.guard(0);
    b.ldShared(R(12), R(10));
    b.clearGuard();
    b.iadd(R(10), R(10), R(4));
    b.guard(0);
    b.atomAdd(RZ, R(10), R(12));
    b.clearGuard();
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {d1, d2, hist};
    return c.k;
}

} // namespace gex::workloads::detail
