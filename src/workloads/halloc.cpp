/**
 * @file
 * Halloc-like dynamic-allocation benchmarks and the quad-tree CUDA SDK
 * port (paper section 5.4, Figure 13). Every kernel allocates device
 * heap memory (ALLOC: an atomic bump on the heap cursor) and writes to
 * the fresh pages, producing first-touch faults on unmapped regions —
 * the fault stream that UC2's GPU-local handler accelerates.
 */

#include "workloads/detail.hpp"

#include "common/log.hpp"

namespace gex::workloads::detail {

using kasm::Cmp;
using kasm::KernelBuilder;
using kasm::Reg;
using kasm::SpecialReg;

namespace {
constexpr Reg R(int i) { return static_cast<Reg>(i); }
constexpr isa::Reg RZ = isa::kRegZero;

/**
 * Integer hash rounds standing in for the per-element work the Halloc
 * benchmarks do around their allocations (fault handling should not be
 * the *only* thing these kernels do).
 */
void
emitHashRounds(KernelBuilder &b, Reg v, Reg tmp, int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        b.imuli(tmp, v, 2654435761);
        b.shri(tmp, tmp, 13);
        b.xor_(v, v, tmp);
        b.imuli(v, v, 2246822519);
        b.shri(tmp, v, 7);
        b.iadd(v, v, tmp);
    }
}

/** Configure a device heap sized for @p bytes of allocations. */
Addr
setupHeap(Ctx &c, std::uint64_t bytes)
{
    std::uint64_t sz = (bytes + (1u << 20)) / kDefaultMigrationBytes *
                           kDefaultMigrationBytes +
                       kDefaultMigrationBytes;
    Addr heap = c.buf("heap", sz, func::BufferKind::Heap);
    c.mem.setHeap(heap, sz);
    return heap;
}
} // namespace

// ---------------------------------------------------------------------------
// ha-prob: probabilistic throughput test — every thread repeatedly
// allocates a small chunk and initializes it (halloc's prob-throughput).

func::Kernel
makeHaProb(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 48u * static_cast<std::uint32_t>(scale);
    const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 128;
    const int allocs = 3;
    const std::int64_t chunk = 160;
    Ctx c(mem);
    Addr out = c.buf("out", threads * 8, func::BufferKind::Output);
    setupHeap(c, threads * allocs * chunk);

    KernelBuilder b("ha-prob");
    b.setNumParams(1);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.movi(R(2), chunk);
    b.movi(R(7), 0); // checksum
    for (int a = 0; a < allocs; ++a) {
        b.alloc(R(3), R(2));
        // Initialize the chunk.
        b.stGlobal(R(3), 0, R(0));
        b.stGlobal(R(3), 64, R(0));
        b.ldGlobal(R(4), R(3));
        b.iadd(R(7), R(7), R(4));
        // Work between allocations.
        emitHashRounds(b, R(7), R(5), 8);
    }
    b.shli(R(6), R(0), 3);
    b.iadd(R(6), R(6), R(1));
    b.stGlobal(R(6), 0, R(7));
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {out};
    return c.k;
}

// ---------------------------------------------------------------------------
// ha-grid: grid-points — each thread allocates a per-cell record and
// fills it with strided writes (one write per cache line).

func::Kernel
makeHaGrid(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 48u * static_cast<std::uint32_t>(scale);
    const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 128;
    const std::int64_t rec = 320;
    Ctx c(mem);
    Addr cells = c.buf("cells", threads * 8, func::BufferKind::Output);
    setupHeap(c, threads * rec);

    KernelBuilder b("ha-grid");
    b.setNumParams(1);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.movi(R(2), rec);
    b.alloc(R(3), R(2));
    for (int i = 0; i < 4; ++i)
        b.stGlobal(R(3), i * 64, R(0));
    // Read one field back and derive a value (dependency on the heap).
    b.ldGlobal(R(4), R(3), 128);
    emitHashRounds(b, R(4), R(7), 16);
    b.stGlobal(R(3), 8, R(4));
    b.shli(R(5), R(0), 3);
    b.iadd(R(5), R(5), R(1));
    b.stGlobal(R(5), 0, R(3)); // publish the cell pointer
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {cells};
    return c.k;
}

// ---------------------------------------------------------------------------
// ha-tree: linked structure build — each thread chains a few nodes,
// storing parent pointers (pointer-chasing writes into fresh pages).

func::Kernel
makeHaTree(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 48u * static_cast<std::uint32_t>(scale);
    const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 128;
    const int depth = 4;
    const std::int64_t node = 160;
    Ctx c(mem);
    Addr roots = c.buf("roots", threads * 8, func::BufferKind::Output);
    setupHeap(c, threads * depth * node);

    KernelBuilder b("ha-tree");
    b.setNumParams(1);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.movi(R(2), node);
    b.mov(R(5), RZ); // parent = null
    for (int d = 0; d < depth; ++d) {
        b.alloc(R(3), R(2));
        b.stGlobal(R(3), 0, R(5));  // node->parent
        b.stGlobal(R(3), 8, R(0));  // node->key
        b.mov(R(5), R(3));
    }
    b.shli(R(6), R(0), 3);
    b.iadd(R(6), R(6), R(1));
    b.stGlobal(R(6), 0, R(5));
    // Walk back up the chain (loads from the fresh pages).
    b.movi(R(7), 0);
    for (int d = 0; d < depth; ++d) {
        b.ldGlobal(R(8), R(5), 8);
        b.iadd(R(7), R(7), R(8));
        emitHashRounds(b, R(7), R(9), 6);
        b.ldGlobal(R(5), R(5), 0);
    }
    b.stGlobal(R(6), 0, R(7));
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {roots};
    return c.k;
}

// ---------------------------------------------------------------------------
// ha-queue: segment queue — threads allocate segments, fill them and
// publish via atomic exchange into a slot table.

func::Kernel
makeHaQueue(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 48u * static_cast<std::uint32_t>(scale);
    const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 128;
    const std::int64_t seg = 512;
    const std::int64_t slots = 4096; // power of two
    Ctx c(mem);
    Addr table = c.buf("slots", static_cast<std::uint64_t>(slots) * 8,
                       func::BufferKind::InOut);
    setupHeap(c, threads * seg);

    KernelBuilder b("ha-queue");
    b.setNumParams(1);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.movi(R(2), seg);
    b.alloc(R(3), R(2));
    for (int i = 0; i < 8; ++i)
        b.stGlobal(R(3), i * 64, R(0));
    b.mov(R(4), R(0));
    emitHashRounds(b, R(4), R(7), 12);
    b.andi(R(4), R(4), slots - 1);
    b.shli(R(4), R(4), 3);
    b.iadd(R(4), R(4), R(1));
    b.atomExch(R(5), R(4), R(3)); // publish; returns previous segment
    // Consume the previous segment if there was one.
    b.setpi(0, Cmp::NE, R(5), 0);
    auto skip = b.label();
    b.ssy(skip);
    b.guard(0, true); // @!p0 -> skip consumption
    b.bra(skip);
    b.clearGuard();
    b.ldGlobal(R(6), R(5));
    b.stGlobal(R(3), 8, R(6));
    b.bind(skip);
    b.join();
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {table};
    return c.k;
}

// ---------------------------------------------------------------------------
// quad-tree: the CUDA SDK sample ported to dynamic allocation (paper
// section 5.4): nodes allocate their children on demand instead of
// preallocating the full tree; per-node point counts drive divergent
// allocation decisions.

func::Kernel
makeQuadTree(func::GlobalMemory &mem, int scale)
{
    const std::uint32_t blocks = 48u * static_cast<std::uint32_t>(scale);
    const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 128;
    const std::int64_t node = 160; // node descriptor + 4 child slots
    const std::int64_t threshold = 8;
    Ctx c(mem);
    Addr counts = c.buf("counts", threads * 8, func::BufferKind::Input);
    Addr nodes = c.buf("nodes", threads * 8, func::BufferKind::Output);
    setupHeap(c, threads * 5 * node);
    // ~60% of the nodes exceed the split threshold.
    for (std::uint64_t i = 0; i < threads; ++i)
        mem.write64(counts + i * 8, c.rng.below(20));

    KernelBuilder b("quad-tree");
    b.setNumParams(2);
    b.s2r(R(0), SpecialReg::GlobalTid);
    b.ldparam(R(1), 0);
    b.ldparam(R(2), 1);
    b.movi(R(3), node);
    b.shli(R(10), R(0), 3);
    b.iadd(R(10), R(10), R(1));
    b.ldGlobal(R(4), R(10));            // point count of this node
    b.mov(R(8), R(4));
    emitHashRounds(b, R(8), R(9), 12);  // point classification work
    b.alloc(R(5), R(3));                // the node itself
    b.stGlobal(R(5), 0, R(4));
    b.setpi(0, Cmp::GT, R(4), threshold);
    auto leaf = b.label();
    b.ssy(leaf);
    b.guard(0, true);
    b.bra(leaf);                        // divergent: leaves skip split
    b.clearGuard();
    for (int ch = 0; ch < 4; ++ch) {    // allocate the four children
        b.alloc(R(6), R(3));
        b.shri(R(7), R(4), 2);
        b.stGlobal(R(6), 0, R(7));      // child point count
        b.stGlobal(R(6), 8, R(5));      // child->parent
        b.stGlobal(R(5), 8 + ch * 8, R(6)); // parent->child[ch]
    }
    b.bind(leaf);
    b.join();
    b.shli(R(10), R(0), 3);
    b.iadd(R(10), R(10), R(2));
    b.stGlobal(R(10), 0, R(5));
    b.exit();

    c.k.program = b.build();
    c.k.grid = {blocks, 1, 1};
    c.k.block = {128, 1, 1};
    c.k.params = {counts, nodes};
    return c.k;
}

} // namespace gex::workloads::detail
