/**
 * @file
 * Internal helpers shared by the workload generators.
 */

#ifndef GEX_WORKLOADS_DETAIL_HPP
#define GEX_WORKLOADS_DETAIL_HPP

#include <bit>

#include "common/stats.hpp"
#include "func/kernel.hpp"
#include "func/memory.hpp"
#include "kasm/builder.hpp"
#include "vm/memory_manager.hpp"

namespace gex::workloads::detail {

/** Buffer layout + init context for one workload build. */
struct Ctx {
    explicit Ctx(func::GlobalMemory &m) : mem(m) {}

    func::GlobalMemory &mem;
    vm::AddressSpace as{16ull << 20};
    func::Kernel k;
    Rng rng{0x5eed5eed1234ull};

    Addr
    buf(const char *name, std::uint64_t bytes, func::BufferKind kind)
    {
        Addr a = as.allocate(bytes);
        k.buffers.push_back(func::Buffer{name, a, bytes, kind});
        return a;
    }

    /** Deterministic small double in [-1, 1). */
    double
    smallReal()
    {
        return rng.real() * 2.0 - 1.0;
    }
};

inline std::uint64_t
f64Param(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

// Parboil-like kernels (parboil.cpp).
func::Kernel makeSgemm(func::GlobalMemory &mem, int scale);
func::Kernel makeStencil(func::GlobalMemory &mem, int scale);
func::Kernel makeLbm(func::GlobalMemory &mem, int scale);
func::Kernel makeHisto(func::GlobalMemory &mem, int scale);
func::Kernel makeSpmv(func::GlobalMemory &mem, int scale);
func::Kernel makeBfs(func::GlobalMemory &mem, int scale);
func::Kernel makeSad(func::GlobalMemory &mem, int scale);
func::Kernel makeMriQ(func::GlobalMemory &mem, int scale);
func::Kernel makeMriGridding(func::GlobalMemory &mem, int scale);
func::Kernel makeCutcp(func::GlobalMemory &mem, int scale);
func::Kernel makeTpacf(func::GlobalMemory &mem, int scale);

// Halloc-like + quad-tree kernels (halloc.cpp).
func::Kernel makeHaProb(func::GlobalMemory &mem, int scale);
func::Kernel makeHaGrid(func::GlobalMemory &mem, int scale);
func::Kernel makeHaTree(func::GlobalMemory &mem, int scale);
func::Kernel makeHaQueue(func::GlobalMemory &mem, int scale);
func::Kernel makeQuadTree(func::GlobalMemory &mem, int scale);

} // namespace gex::workloads::detail

#endif // GEX_WORKLOADS_DETAIL_HPP
