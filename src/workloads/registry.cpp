#include "workloads/workloads.hpp"

#include <map>

#include "common/log.hpp"
#include "workloads/detail.hpp"

namespace gex::workloads {

namespace {

using Maker = func::Kernel (*)(func::GlobalMemory &, int);

const std::map<std::string, Maker> &
registry()
{
    static const std::map<std::string, Maker> r = {
        {"sgemm", detail::makeSgemm},
        {"stencil", detail::makeStencil},
        {"lbm", detail::makeLbm},
        {"histo", detail::makeHisto},
        {"spmv", detail::makeSpmv},
        {"bfs", detail::makeBfs},
        {"sad", detail::makeSad},
        {"mri-q", detail::makeMriQ},
        {"mri-gridding", detail::makeMriGridding},
        {"cutcp", detail::makeCutcp},
        {"tpacf", detail::makeTpacf},
        {"ha-prob", detail::makeHaProb},
        {"ha-grid", detail::makeHaGrid},
        {"ha-tree", detail::makeHaTree},
        {"ha-queue", detail::makeHaQueue},
        {"quad-tree", detail::makeQuadTree},
    };
    return r;
}

} // namespace

const std::vector<std::string> &
parboilSuite()
{
    static const std::vector<std::string> names = {
        "bfs",   "cutcp", "histo",        "lbm",   "mri-gridding",
        "mri-q", "sad",   "sgemm",        "spmv",  "stencil",
        "tpacf",
    };
    return names;
}

const std::vector<std::string> &
hallocSuite()
{
    static const std::vector<std::string> names = {
        "ha-prob", "ha-grid", "ha-tree", "ha-queue", "quad-tree",
    };
    return names;
}

Workload
make(const std::string &name, func::GlobalMemory &mem, int scale)
{
    auto it = registry().find(name);
    if (it == registry().end())
        fatal("unknown workload '%s'", name.c_str());
    if (scale < 1)
        fatal("workload scale must be >= 1");
    Workload w;
    w.name = name;
    w.kernel = it->second(mem, scale);
    return w;
}

bool
exists(const std::string &name)
{
    return registry().count(name) != 0;
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const auto &kv : registry())
        names.push_back(kv.first);
    return names;
}

} // namespace gex::workloads
