/**
 * @file
 * Workload registry: Parboil-like kernels (Figures 10-12, 14), Halloc-
 * like allocator benchmarks and the quad-tree sample (Figure 13),
 * written in the gex ISA via KernelBuilder. Each kernel mimics the
 * published characteristics of its namesake that drive the paper's
 * results: register pressure / occupancy, shared memory, arithmetic
 * intensity, SFU use, coalescing behaviour, atomics, divergence, and
 * load imbalance. See DESIGN.md for the substitution rationale.
 */

#ifndef GEX_WORKLOADS_WORKLOADS_HPP
#define GEX_WORKLOADS_WORKLOADS_HPP

#include <string>
#include <vector>

#include "func/kernel.hpp"
#include "func/memory.hpp"

namespace gex::workloads {

/** A built workload: kernel plus initialized memory expectations. */
struct Workload {
    func::Kernel kernel;
    std::string name;
};

/** Parboil-like suite names, in the paper's figure order. */
const std::vector<std::string> &parboilSuite();

/** Halloc-like + quad-tree suite names (Figure 13). */
const std::vector<std::string> &hallocSuite();

/**
 * Build the named workload, registering and initializing its buffers
 * in @p mem. @p scale >= 1 grows the grid (for scalability studies).
 * Unknown names are fatal.
 */
Workload make(const std::string &name, func::GlobalMemory &mem,
              int scale = 1);

/** True when make() knows @p name. */
bool exists(const std::string &name);

/** All registered workload names. */
std::vector<std::string> allNames();

} // namespace gex::workloads

#endif // GEX_WORKLOADS_WORKLOADS_HPP
