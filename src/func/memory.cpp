#include "func/memory.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"

namespace gex::func {

GlobalMemory::Page &
GlobalMemory::page(Addr page_num)
{
    auto it = pages_.find(page_num);
    if (it == pages_.end())
        it = pages_.emplace(page_num, Page(kPageSize, 0)).first;
    return it->second;
}

const GlobalMemory::Page *
GlobalMemory::pageIfPresent(Addr page_num) const
{
    auto it = pages_.find(page_num);
    return it == pages_.end() ? nullptr : &it->second;
}

std::uint64_t
GlobalMemory::read64(Addr a) const
{
    GEX_ASSERT((a & 7) == 0, "unaligned read64 at 0x%llx",
               static_cast<unsigned long long>(a));
    const Page *p = pageIfPresent(pageOf(a));
    if (!p)
        return 0;
    std::uint64_t v;
    std::memcpy(&v, p->data() + (a % kPageSize), sizeof(v));
    return v;
}

void
GlobalMemory::write64(Addr a, std::uint64_t v)
{
    GEX_ASSERT((a & 7) == 0, "unaligned write64 at 0x%llx",
               static_cast<unsigned long long>(a));
    Page &p = page(pageOf(a));
    std::memcpy(p.data() + (a % kPageSize), &v, sizeof(v));
}

void
GlobalMemory::fill64(Addr base, std::uint64_t count, std::uint64_t value)
{
    for (std::uint64_t i = 0; i < count; ++i)
        write64(base + i * 8, value);
}

void
GlobalMemory::fillF64(Addr base, std::uint64_t count, double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    fill64(base, count, bits);
}

void
GlobalMemory::setHeap(Addr base, std::uint64_t bytes)
{
    GEX_ASSERT((base & (kPageSize - 1)) == 0, "heap base not page aligned");
    heapBase_ = base;
    heapBytes_ = bytes;
    heapUsed_ = 16; // first 16 bytes hold the cursor itself
    write64(base, base + heapUsed_);
}

std::uint64_t
GlobalMemory::digest() const
{
    std::vector<Addr> nums;
    nums.reserve(pages_.size());
    for (const auto &kv : pages_)
        nums.push_back(kv.first);
    std::sort(nums.begin(), nums.end());
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (Addr n : nums) {
        mix(n);
        const Page &p = pages_.at(n);
        for (std::uint8_t b : p) {
            h ^= b;
            h *= 1099511628211ull;
        }
    }
    mix(heapUsed_);
    return h;
}

Addr
GlobalMemory::allocFromHeap(std::uint64_t bytes)
{
    GEX_ASSERT(heapBytes_ > 0, "ALLOC executed but no heap configured");
    std::uint64_t aligned = (bytes + 15) & ~15ull;
    if (heapUsed_ + aligned > heapBytes_)
        fatal("device heap exhausted (%llu + %llu > %llu bytes)",
              static_cast<unsigned long long>(heapUsed_),
              static_cast<unsigned long long>(aligned),
              static_cast<unsigned long long>(heapBytes_));
    Addr result = heapBase_ + heapUsed_;
    heapUsed_ += aligned;
    write64(heapBase_, heapBase_ + heapUsed_);
    return result;
}

} // namespace gex::func
