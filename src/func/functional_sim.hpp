/**
 * @file
 * Execution-driven functional simulator: runs a Kernel in SIMT lockstep
 * (divergence stack, barriers, shared memory, global atomics, device
 * malloc) and emits the dynamic trace the timing simulator consumes.
 */

#ifndef GEX_FUNC_FUNCTIONAL_SIM_HPP
#define GEX_FUNC_FUNCTIONAL_SIM_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "func/kernel.hpp"
#include "func/memory.hpp"
#include "func/simt_stack.hpp"
#include "trace/trace.hpp"

namespace gex::func {

/**
 * Functional executor. Thread blocks run one at a time (launch order);
 * warps within a block interleave at instruction granularity with
 * correct barrier semantics, so intra-block shared-memory communication
 * behaves as on hardware.
 */
class FunctionalSim
{
  public:
    /**
     * @param mem  global memory image (inputs pre-filled by the caller;
     *             outputs and heap written during execution)
     */
    explicit FunctionalSim(GlobalMemory &mem) : mem_(mem) {}

    /**
     * Execute @p kernel to completion and return its dynamic trace.
     * Fatal on malformed kernels (unbound divergence, missing barrier
     * convergence, heap exhaustion).
     */
    trace::KernelTrace run(const Kernel &kernel);

    /** Cap on dynamic warp instructions per block (runaway guard). */
    void setMaxWarpInsts(std::uint64_t n) { maxWarpInsts_ = n; }

  private:
    struct WarpExec;
    struct BlockExec;

    void runBlock(const Kernel &kernel, std::uint32_t block_id,
                  trace::BlockTrace &out);
    /** Execute one instruction of warp @p w; returns false if stalled
     *  at a barrier or finished. */
    bool stepWarp(const Kernel &kernel, BlockExec &blk, WarpExec &w,
                  trace::WarpTrace &out);

    GlobalMemory &mem_;
    std::uint64_t maxWarpInsts_ = 50'000'000;
    /** Scratch reused across every traced memory instruction so the
     *  per-instruction hot path performs no heap allocation. */
    std::vector<Addr> addrScratch_;
    std::vector<Addr> lineScratch_;
};

} // namespace gex::func

#endif // GEX_FUNC_FUNCTIONAL_SIM_HPP
