/**
 * @file
 * Sparse functional global memory: a page-granular byte store backing
 * kernel data. Also tracks the device heap cursor used by ALLOC.
 */

#ifndef GEX_FUNC_MEMORY_HPP
#define GEX_FUNC_MEMORY_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace gex::func {

/**
 * Byte-addressable sparse memory. Pages are materialized (zero-filled)
 * on first touch, which conveniently matches the lazy-allocation
 * semantics the paper's use case 2 exposes to software.
 */
class GlobalMemory
{
  public:
    std::uint64_t read64(Addr a) const;
    void write64(Addr a, std::uint64_t v);

    double
    readF64(Addr a) const
    {
        std::uint64_t bits = read64(a);
        double d;
        static_assert(sizeof(d) == sizeof(bits));
        __builtin_memcpy(&d, &bits, sizeof(d));
        return d;
    }

    void
    writeF64(Addr a, double v)
    {
        std::uint64_t bits;
        __builtin_memcpy(&bits, &v, sizeof(bits));
        write64(a, bits);
    }

    /** Bulk helpers for test/bench setup. */
    void fill64(Addr base, std::uint64_t count, std::uint64_t value);
    void fillF64(Addr base, std::uint64_t count, double value);

    /**
     * Configure the device heap region used by ALLOC. Allocations bump
     * @c heapCursor; running past @p bytes is a fatal error.
     */
    void setHeap(Addr base, std::uint64_t bytes);
    Addr heapBase() const { return heapBase_; }
    Addr heapCursorAddr() const { return heapBase_; }

    /**
     * Device-side allocation: returns the old cursor, 16-byte aligned.
     * The first 16 bytes of the heap hold the cursor itself, so the
     * bump is also a real memory access (the timing side models it as
     * an atomic on that address).
     */
    Addr allocFromHeap(std::uint64_t bytes);

    /** Pages ever touched (reads or writes). */
    std::size_t touchedPages() const { return pages_.size(); }

    /**
     * FNV-1a digest of the full memory image: every touched page's
     * number and bytes, visited in ascending page order so the hash is
     * independent of touch order. The architectural-oracle fingerprint
     * of a final memory state (src/check, docs/VALIDATION.md).
     */
    std::uint64_t digest() const;

  private:
    using Page = std::vector<std::uint8_t>;
    Page &page(Addr pageNum);
    const Page *pageIfPresent(Addr pageNum) const;

    std::unordered_map<Addr, Page> pages_;
    Addr heapBase_ = 0;
    std::uint64_t heapBytes_ = 0;
    std::uint64_t heapUsed_ = 0;
};

} // namespace gex::func

#endif // GEX_FUNC_MEMORY_HPP
