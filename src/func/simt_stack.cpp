#include "func/simt_stack.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace gex::func {

void
SimtStack::reset(WarpMask mask)
{
    stack_.clear();
    scopes_.clear();
    if (mask)
        stack_.push_back({0, kNoRpc, mask});
}

void
SimtStack::diverge(std::uint32_t taken_pc, std::uint32_t fall_pc,
                   std::uint32_t rpc, WarpMask taken, WarpMask not_taken)
{
    GEX_ASSERT(!stack_.empty());
    GEX_ASSERT(taken && not_taken, "diverge with a uniform mask");
    GEX_ASSERT(rpc != kNoRpc,
               "divergent branch outside any SSY scope");

    // The current entry becomes the reconvergence continuation.
    stack_.back().pc = rpc;

    // A side whose first pc is already the reconvergence point has no
    // work to do; its lanes simply wait in the parent entry.
    if (fall_pc != rpc)
        stack_.push_back({fall_pc, rpc, not_taken});
    if (taken_pc != rpc)
        stack_.push_back({taken_pc, rpc, taken});
}

bool
SimtStack::advance(std::uint32_t next_pc)
{
    GEX_ASSERT(!stack_.empty());
    stack_.back().pc = next_pc;

    // Pop entries that reached their reconvergence point.
    while (!stack_.empty() && stack_.back().pc == stack_.back().rpc)
        stack_.pop_back();

    // Close SSY scopes whose label the (converged) flow has passed.
    // Only when no divergence is pending on that scope: children of a
    // scope carry rpc == scope target and would have popped above.
    while (!stack_.empty() && !scopes_.empty() &&
           stack_.back().pc == scopes_.back()) {
        bool pending = false;
        for (const Entry &e : stack_)
            if (e.rpc == scopes_.back() && &e != &stack_.back())
                pending = true;
        if (pending)
            break;
        scopes_.pop_back();
    }
    return !stack_.empty();
}

void
SimtStack::removeLanes(WarpMask lanes)
{
    for (Entry &e : stack_)
        e.mask &= ~lanes;
    stack_.erase(std::remove_if(stack_.begin(), stack_.end(),
                                [](const Entry &e) { return e.mask == 0; }),
                 stack_.end());
}

} // namespace gex::func
