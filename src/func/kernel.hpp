/**
 * @file
 * Kernel launch description: program, geometry and parameters. Shared
 * by the functional and timing simulators.
 */

#ifndef GEX_FUNC_KERNEL_HPP
#define GEX_FUNC_KERNEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/program.hpp"

namespace gex::func {

struct Dim3 {
    std::uint32_t x = 1, y = 1, z = 1;
    std::uint32_t count() const { return x * y * z; }
};

/**
 * Classification of a kernel data buffer, controlling its initial page
 * ownership in the demand-paging experiments (paper sections 2.3, 4.2):
 * inputs start CPU-owned (fault ⇒ migration), outputs and heap start
 * untouched (fault ⇒ allocation only).
 */
enum class BufferKind { Input, Output, InOut, Heap };

struct Buffer {
    std::string name;
    Addr base = 0;
    std::uint64_t bytes = 0;
    BufferKind kind = BufferKind::Input;
};

/** A launchable kernel: code + geometry + arguments + data layout. */
struct Kernel {
    isa::Program program;
    Dim3 grid;
    Dim3 block;
    std::vector<std::uint64_t> params;
    std::vector<Buffer> buffers;

    std::uint32_t threadsPerBlock() const { return block.count(); }
    std::uint32_t
    warpsPerBlock() const
    {
        return (block.count() + kWarpSize - 1) / kWarpSize;
    }
    std::uint32_t numBlocks() const { return grid.count(); }
};

} // namespace gex::func

#endif // GEX_FUNC_KERNEL_HPP
