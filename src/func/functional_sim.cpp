#include "func/functional_sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/log.hpp"
#include "sm/coalescer.hpp"

namespace gex::func {

using isa::Instruction;
using isa::kPredTrue;
using isa::kRegZero;
using isa::Opcode;
using isa::SpecialReg;

namespace {

double
asF64(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

} // namespace

/** Per-warp execution state. */
struct FunctionalSim::WarpExec {
    std::uint32_t warpId = 0;
    std::uint32_t laneBase = 0;   ///< first thread index of this warp
    WarpMask launchMask = 0;      ///< lanes that exist (last warp may be partial)
    SimtStack stack;
    WarpMask exited = 0;
    bool atBarrier = false;
    bool done = false;
    std::uint64_t instCount = 0;
};

/** Per-block execution state. */
struct FunctionalSim::BlockExec {
    std::uint32_t blockId = 0;
    std::uint32_t numThreads = 0;
    int regsPerThread = 0;
    std::vector<std::uint64_t> regs;   // [thread][reg]
    std::vector<std::uint8_t> preds;   // [thread] bitmask of P0..P6
    std::vector<std::uint8_t> shared;  // shared memory bytes
    std::vector<WarpExec> warps;

    std::uint64_t &
    reg(std::uint32_t thread, isa::Reg r)
    {
        return regs[thread * static_cast<std::uint32_t>(regsPerThread) + r];
    }

    std::uint64_t
    readReg(std::uint32_t thread, isa::Reg r) const
    {
        if (r == kRegZero)
            return 0;
        return regs[thread * static_cast<std::uint32_t>(regsPerThread) + r];
    }

    bool
    readPred(std::uint32_t thread, isa::PredReg p) const
    {
        if (p == kPredTrue)
            return true;
        return (preds[thread] >> p) & 1;
    }

    void
    writePred(std::uint32_t thread, isa::PredReg p, bool v)
    {
        if (p == kPredTrue)
            return;
        if (v)
            preds[thread] |= static_cast<std::uint8_t>(1u << p);
        else
            preds[thread] &= static_cast<std::uint8_t>(~(1u << p));
    }

    std::uint64_t
    readShared64(std::uint64_t off) const
    {
        GEX_ASSERT(off + 8 <= shared.size(),
                   "shared access out of bounds: %llu",
                   static_cast<unsigned long long>(off));
        std::uint64_t v;
        std::memcpy(&v, shared.data() + off, sizeof(v));
        return v;
    }

    void
    writeShared64(std::uint64_t off, std::uint64_t v)
    {
        GEX_ASSERT(off + 8 <= shared.size(),
                   "shared access out of bounds: %llu",
                   static_cast<unsigned long long>(off));
        std::memcpy(shared.data() + off, &v, sizeof(v));
    }
};

trace::KernelTrace
FunctionalSim::run(const Kernel &kernel)
{
    kernel.program.validate();
    trace::KernelTrace kt;
    std::uint32_t nblocks = kernel.numBlocks();
    kt.blocks.resize(nblocks);
    for (std::uint32_t b = 0; b < nblocks; ++b) {
        kt.blocks[b].blockId = b;
        runBlock(kernel, b, kt.blocks[b]);
        for (auto &w : kt.blocks[b].warps) {
            for (auto &ti : w.insts) {
                const Instruction &in = kernel.program.at(ti.staticIdx);
                if (in.isGlobalMem()) {
                    ++kt.memInsts;
                    kt.memRequests += ti.numLines;
                }
            }
        }
    }
    kt.stats.set("func.dynamic_warp_insts",
                 static_cast<double>(kt.dynamicInsts()));
    kt.stats.set("func.mem_insts", static_cast<double>(kt.memInsts));
    kt.stats.set("func.mem_requests", static_cast<double>(kt.memRequests));
    kt.stats.set("func.touched_pages",
                 static_cast<double>(mem_.touchedPages()));
    return kt;
}

void
FunctionalSim::runBlock(const Kernel &kernel, std::uint32_t block_id,
                        trace::BlockTrace &out)
{
    const isa::Program &prog = kernel.program;
    BlockExec blk;
    blk.blockId = block_id;
    blk.numThreads = kernel.threadsPerBlock();
    blk.regsPerThread = prog.regsPerThread();
    blk.regs.assign(static_cast<size_t>(blk.numThreads) *
                        static_cast<size_t>(blk.regsPerThread),
                    0);
    blk.preds.assign(blk.numThreads, 0);
    blk.shared.assign(prog.sharedBytes(), 0);

    std::uint32_t nwarps = kernel.warpsPerBlock();
    blk.warps.resize(nwarps);
    out.blockId = block_id;
    out.warps.resize(nwarps);
    for (std::uint32_t w = 0; w < nwarps; ++w) {
        WarpExec &we = blk.warps[w];
        we.warpId = w;
        we.laneBase = w * kWarpSize;
        std::uint32_t lanes =
            std::min<std::uint32_t>(kWarpSize, blk.numThreads - we.laneBase);
        we.launchMask = lanes == kWarpSize
                            ? kFullMask
                            : ((1u << lanes) - 1);
        we.stack.reset(we.launchMask);
    }

    // Warp-at-a-time execution with barrier-driven round robin.
    bool all_done = false;
    while (!all_done) {
        bool progressed = false;
        for (std::uint32_t w = 0; w < nwarps; ++w) {
            WarpExec &we = blk.warps[w];
            while (!we.done && !we.atBarrier) {
                if (!stepWarp(kernel, blk, we, out.warps[w]))
                    break;
                progressed = true;
            }
        }
        all_done = true;
        bool any_waiting = false;
        for (auto &we : blk.warps) {
            if (!we.done)
                all_done = false;
            if (we.atBarrier)
                any_waiting = true;
        }
        if (all_done)
            break;
        if (any_waiting) {
            // Release the barrier when every live warp arrived.
            bool all_arrived = true;
            for (auto &we : blk.warps)
                if (!we.done && !we.atBarrier)
                    all_arrived = false;
            if (all_arrived) {
                for (auto &we : blk.warps)
                    we.atBarrier = false;
                progressed = true;
            }
        }
        if (!progressed)
            throw TraceError(strprintf(
                "functional deadlock in kernel '%s' block %u",
                prog.name().c_str(), block_id));
    }
}

bool
FunctionalSim::stepWarp(const Kernel &kernel, BlockExec &blk, WarpExec &we,
                        trace::WarpTrace &out)
{
    if (we.done || we.atBarrier)
        return false;
    if (we.stack.empty()) {
        we.done = true;
        return false;
    }
    if (++we.instCount > maxWarpInsts_)
        throw TraceError(strprintf(
            "kernel '%s': warp exceeded %llu dynamic instructions",
            kernel.program.name().c_str(),
            static_cast<unsigned long long>(maxWarpInsts_)));

    const isa::Program &prog = kernel.program;
    SimtStack::Entry &e = we.stack.top();
    std::uint32_t pc = e.pc;
    WarpMask mask = e.mask;
    GEX_ASSERT(pc < prog.size(), "pc out of range");
    const Instruction &in = prog.at(pc);

    // Guard predicate: which of the active lanes actually execute.
    WarpMask g = 0;
    if (in.pred == kPredTrue && !in.predNeg) {
        g = mask;
    } else {
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(mask & (1u << lane)))
                continue;
            bool p = blk.readPred(we.laneBase + static_cast<std::uint32_t>(lane),
                                  in.pred);
            if (p != in.predNeg)
                g |= 1u << lane;
        }
    }

    // Trace record (line addresses filled below for global-memory ops).
    trace::TraceInst ti;
    ti.staticIdx = pc;
    ti.active = g;
    ti.numActive = static_cast<std::uint16_t>(std::popcount(g));
    ti.lineOff = static_cast<std::uint32_t>(out.linePool.size());
    ti.numLines = 0;

    auto add_lines_for = [&](const std::vector<Addr> &addrs) {
        // Coalesce: one request per unique cache line (paper Fig 5).
        sm::coalesceInto(addrs.data(), addrs.size(), lineScratch_);
        for (Addr l : lineScratch_)
            out.linePool.push_back(l);
        ti.numLines = static_cast<std::uint16_t>(lineScratch_.size());
    };

    auto lane_reg = [&](int lane, isa::Reg r) {
        return blk.readReg(we.laneBase + static_cast<std::uint32_t>(lane), r);
    };
    auto set_lane_reg = [&](int lane, isa::Reg r, std::uint64_t v) {
        if (r != kRegZero)
            blk.reg(we.laneBase + static_cast<std::uint32_t>(lane), r) = v;
    };
    auto src_b = [&](int lane) -> std::uint64_t {
        return in.useImm ? static_cast<std::uint64_t>(in.imm)
                         : lane_reg(lane, in.srcs[1]);
    };

    bool is_control = in.isControl();
    std::uint32_t next_pc = pc + 1;
    bool stack_handled = false;

    switch (in.op) {
      case Opcode::BRA: {
        WarpMask taken = g;
        WarpMask not_taken = mask & ~g;
        GEX_ASSERT(in.target >= 0);
        auto target = static_cast<std::uint32_t>(in.target);
        if (not_taken == 0) {
            next_pc = target;
        } else if (taken == 0) {
            next_pc = pc + 1;
        } else {
            we.stack.diverge(target, pc + 1, we.stack.scopeTarget(), taken,
                             not_taken);
            stack_handled = true;
        }
        break;
      }
      case Opcode::SSY:
        GEX_ASSERT(in.target >= 0);
        we.stack.pushScope(static_cast<std::uint32_t>(in.target));
        break;
      case Opcode::JOIN:
      case Opcode::MEMBAR:
      case Opcode::NOP:
        break;
      case Opcode::BAR:
        if (mask != (we.launchMask & ~we.exited))
            throw TraceError(strprintf(
                "kernel '%s': divergent barrier at pc %u",
                prog.name().c_str(), pc));
        we.atBarrier = true;
        break;
      case Opcode::EXIT: {
        we.exited |= g;
        we.stack.removeLanes(g);
        if (we.stack.empty()) {
            we.done = true;
            out.insts.push_back(ti);
            return true;
        }
        if (g == mask)
            stack_handled = true; // TOS changed; pc already correct
        break;
      }
      case Opcode::MOVI:
        for (int lane = 0; lane < kWarpSize; ++lane)
            if (g & (1u << lane))
                set_lane_reg(lane, in.dst,
                             static_cast<std::uint64_t>(in.imm));
        break;
      case Opcode::MOV:
        for (int lane = 0; lane < kWarpSize; ++lane)
            if (g & (1u << lane))
                set_lane_reg(lane, in.dst, lane_reg(lane, in.srcs[0]));
        break;
      case Opcode::S2R: {
        auto sr = static_cast<SpecialReg>(in.imm);
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            std::uint32_t tid = we.laneBase + static_cast<std::uint32_t>(lane);
            std::uint32_t bx = kernel.block.x, by = kernel.block.y;
            std::uint32_t tx = tid % bx;
            std::uint32_t ty = (tid / bx) % by;
            std::uint32_t tz = tid / (bx * by);
            std::uint32_t gx = kernel.grid.x, gy = kernel.grid.y;
            std::uint32_t cx = blk.blockId % gx;
            std::uint32_t cy = (blk.blockId / gx) % gy;
            std::uint32_t cz = blk.blockId / (gx * gy);
            std::uint64_t v = 0;
            switch (sr) {
              case SpecialReg::TidX: v = tx; break;
              case SpecialReg::TidY: v = ty; break;
              case SpecialReg::TidZ: v = tz; break;
              case SpecialReg::NTidX: v = kernel.block.x; break;
              case SpecialReg::NTidY: v = kernel.block.y; break;
              case SpecialReg::NTidZ: v = kernel.block.z; break;
              case SpecialReg::CtaIdX: v = cx; break;
              case SpecialReg::CtaIdY: v = cy; break;
              case SpecialReg::CtaIdZ: v = cz; break;
              case SpecialReg::NCtaIdX: v = kernel.grid.x; break;
              case SpecialReg::NCtaIdY: v = kernel.grid.y; break;
              case SpecialReg::NCtaIdZ: v = kernel.grid.z; break;
              case SpecialReg::LaneId: v = static_cast<std::uint64_t>(lane); break;
              case SpecialReg::WarpId: v = we.warpId; break;
              case SpecialReg::GlobalTid:
                v = static_cast<std::uint64_t>(blk.blockId) *
                        kernel.threadsPerBlock() + tid;
                break;
              default:
                panic("bad special register %d", static_cast<int>(sr));
            }
            set_lane_reg(lane, in.dst, v);
        }
        break;
      }
      case Opcode::LDPARAM:
        GEX_ASSERT(in.imm >= 0 &&
                   static_cast<size_t>(in.imm) < kernel.params.size(),
                   "LDPARAM index out of range");
        for (int lane = 0; lane < kWarpSize; ++lane)
            if (g & (1u << lane))
                set_lane_reg(lane, in.dst,
                             kernel.params[static_cast<size_t>(in.imm)]);
        break;
      case Opcode::IADD: case Opcode::ISUB: case Opcode::IMUL:
      case Opcode::IMIN: case Opcode::IMAX: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SHL:
      case Opcode::SHR: {
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            auto a = static_cast<std::int64_t>(lane_reg(lane, in.srcs[0]));
            auto b = static_cast<std::int64_t>(src_b(lane));
            std::int64_t r = 0;
            switch (in.op) {
              // Integer add/sub/mul wrap (two's complement), as on the
              // hardware; compute unsigned to keep the wrap defined.
              case Opcode::IADD:
                r = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                              static_cast<std::uint64_t>(b));
                break;
              case Opcode::ISUB:
                r = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                              static_cast<std::uint64_t>(b));
                break;
              case Opcode::IMUL:
                r = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                              static_cast<std::uint64_t>(b));
                break;
              case Opcode::IMIN: r = std::min(a, b); break;
              case Opcode::IMAX: r = std::max(a, b); break;
              case Opcode::AND: r = a & b; break;
              case Opcode::OR: r = a | b; break;
              case Opcode::XOR: r = a ^ b; break;
              case Opcode::SHL:
                r = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(a) << (b & 63));
                break;
              case Opcode::SHR:
                r = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(a) >> (b & 63));
                break;
              default: break;
            }
            set_lane_reg(lane, in.dst, static_cast<std::uint64_t>(r));
        }
        break;
      }
      case Opcode::NOT:
        for (int lane = 0; lane < kWarpSize; ++lane)
            if (g & (1u << lane))
                set_lane_reg(lane, in.dst, ~lane_reg(lane, in.srcs[0]));
        break;
      case Opcode::IMAD:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            auto a = static_cast<std::int64_t>(lane_reg(lane, in.srcs[0]));
            auto b = static_cast<std::int64_t>(lane_reg(lane, in.srcs[1]));
            auto c = static_cast<std::int64_t>(lane_reg(lane, in.srcs[2]));
            set_lane_reg(lane, in.dst,
                         static_cast<std::uint64_t>(a * b + c));
        }
        break;
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FMIN: case Opcode::FMAX: {
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            double a = asF64(lane_reg(lane, in.srcs[0]));
            double b = asF64(src_b(lane));
            double r = 0;
            switch (in.op) {
              case Opcode::FADD: r = a + b; break;
              case Opcode::FSUB: r = a - b; break;
              case Opcode::FMUL: r = a * b; break;
              case Opcode::FMIN: r = std::fmin(a, b); break;
              case Opcode::FMAX: r = std::fmax(a, b); break;
              default: break;
            }
            set_lane_reg(lane, in.dst, asBits(r));
        }
        break;
      }
      case Opcode::FFMA:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            double a = asF64(lane_reg(lane, in.srcs[0]));
            double b = asF64(lane_reg(lane, in.srcs[1]));
            double c = asF64(lane_reg(lane, in.srcs[2]));
            set_lane_reg(lane, in.dst, asBits(std::fma(a, b, c)));
        }
        break;
      case Opcode::FRCP: case Opcode::FRSQ: case Opcode::FSQRT:
      case Opcode::FSIN: case Opcode::FCOS: case Opcode::FEXP2:
      case Opcode::FLOG2: {
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            double a = asF64(lane_reg(lane, in.srcs[0]));
            double r = 0;
            switch (in.op) {
              case Opcode::FRCP:
                if (a == 0.0)
                    ti.arithFault = true;
                r = 1.0 / a;
                break;
              case Opcode::FRSQ:
                if (a <= 0.0)
                    ti.arithFault = true;
                r = 1.0 / std::sqrt(a);
                break;
              case Opcode::FSQRT:
                if (a < 0.0)
                    ti.arithFault = true;
                r = std::sqrt(a);
                break;
              case Opcode::FSIN: r = std::sin(a); break;
              case Opcode::FCOS: r = std::cos(a); break;
              case Opcode::FEXP2: r = std::exp2(a); break;
              case Opcode::FLOG2:
                if (a <= 0.0)
                    ti.arithFault = true;
                r = std::log2(a);
                break;
              default: break;
            }
            set_lane_reg(lane, in.dst, asBits(r));
        }
        break;
      }
      case Opcode::FDIV:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            double a = asF64(lane_reg(lane, in.srcs[0]));
            double b = asF64(src_b(lane));
            if (b == 0.0)
                ti.arithFault = true;
            set_lane_reg(lane, in.dst, asBits(a / b));
        }
        break;
      case Opcode::I2F:
        for (int lane = 0; lane < kWarpSize; ++lane)
            if (g & (1u << lane))
                set_lane_reg(lane, in.dst,
                             asBits(static_cast<double>(
                                 static_cast<std::int64_t>(
                                     lane_reg(lane, in.srcs[0])))));
        break;
      case Opcode::F2I:
        for (int lane = 0; lane < kWarpSize; ++lane)
            if (g & (1u << lane))
                set_lane_reg(lane, in.dst,
                             static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(
                                     asF64(lane_reg(lane, in.srcs[0])))));
        break;
      case Opcode::SETP: {
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            bool r;
            if (in.fcmp) {
                double a = asF64(lane_reg(lane, in.srcs[0]));
                double b = asF64(src_b(lane));
                switch (in.cmp) {
                  case isa::Cmp::EQ: r = a == b; break;
                  case isa::Cmp::NE: r = a != b; break;
                  case isa::Cmp::LT: r = a < b; break;
                  case isa::Cmp::LE: r = a <= b; break;
                  case isa::Cmp::GT: r = a > b; break;
                  default: r = a >= b; break;
                }
            } else {
                auto a = static_cast<std::int64_t>(lane_reg(lane, in.srcs[0]));
                auto b = static_cast<std::int64_t>(src_b(lane));
                switch (in.cmp) {
                  case isa::Cmp::EQ: r = a == b; break;
                  case isa::Cmp::NE: r = a != b; break;
                  case isa::Cmp::LT: r = a < b; break;
                  case isa::Cmp::LE: r = a <= b; break;
                  case isa::Cmp::GT: r = a > b; break;
                  default: r = a >= b; break;
                }
            }
            blk.writePred(we.laneBase + static_cast<std::uint32_t>(lane),
                          in.predDst, r);
        }
        break;
      }
      case Opcode::PSETP: {
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            std::uint32_t t = we.laneBase + static_cast<std::uint32_t>(lane);
            bool a = blk.readPred(t, in.predA);
            bool b = blk.readPred(t, in.predB);
            bool r;
            switch (in.plogic) {
              case isa::PLogic::And: r = a && b; break;
              case isa::PLogic::Or: r = a || b; break;
              case isa::PLogic::Xor: r = a != b; break;
              default: r = !a; break;
            }
            blk.writePred(t, in.predDst, r);
        }
        break;
      }
      case Opcode::SEL:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            std::uint32_t t = we.laneBase + static_cast<std::uint32_t>(lane);
            bool p = blk.readPred(t, in.predA);
            set_lane_reg(lane, in.dst,
                         p ? lane_reg(lane, in.srcs[0])
                           : lane_reg(lane, in.srcs[1]));
        }
        break;
      case Opcode::LD_GLOBAL: {
        std::vector<Addr> &addrs = addrScratch_;
        addrs.clear();
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            Addr a = lane_reg(lane, in.srcs[0]) +
                     static_cast<std::uint64_t>(in.imm);
            addrs.push_back(a);
            set_lane_reg(lane, in.dst, mem_.read64(a));
        }
        add_lines_for(addrs);
        break;
      }
      case Opcode::ST_GLOBAL: {
        std::vector<Addr> &addrs = addrScratch_;
        addrs.clear();
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            Addr a = lane_reg(lane, in.srcs[0]) +
                     static_cast<std::uint64_t>(in.imm);
            addrs.push_back(a);
            mem_.write64(a, lane_reg(lane, in.srcs[1]));
        }
        add_lines_for(addrs);
        break;
      }
      case Opcode::LD_SHARED:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            std::uint64_t off = lane_reg(lane, in.srcs[0]) +
                                static_cast<std::uint64_t>(in.imm);
            set_lane_reg(lane, in.dst, blk.readShared64(off));
        }
        break;
      case Opcode::ST_SHARED:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            std::uint64_t off = lane_reg(lane, in.srcs[0]) +
                                static_cast<std::uint64_t>(in.imm);
            blk.writeShared64(off, lane_reg(lane, in.srcs[1]));
        }
        break;
      case Opcode::ATOM_ADD: case Opcode::ATOM_MIN: case Opcode::ATOM_MAX:
      case Opcode::ATOM_EXCH: {
        std::vector<Addr> &addrs = addrScratch_;
        addrs.clear();
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            Addr a = lane_reg(lane, in.srcs[0]) +
                     static_cast<std::uint64_t>(in.imm);
            addrs.push_back(a);
            auto old = static_cast<std::int64_t>(mem_.read64(a));
            auto v = static_cast<std::int64_t>(lane_reg(lane, in.srcs[1]));
            std::int64_t nv;
            switch (in.op) {
              case Opcode::ATOM_ADD: nv = old + v; break;
              case Opcode::ATOM_MIN: nv = std::min(old, v); break;
              case Opcode::ATOM_MAX: nv = std::max(old, v); break;
              default: nv = v; break;
            }
            mem_.write64(a, static_cast<std::uint64_t>(nv));
            set_lane_reg(lane, in.dst, static_cast<std::uint64_t>(old));
        }
        add_lines_for(addrs);
        break;
      }
      case Opcode::ATOM_CAS: {
        std::vector<Addr> &addrs = addrScratch_;
        addrs.clear();
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            Addr a = lane_reg(lane, in.srcs[0]) +
                     static_cast<std::uint64_t>(in.imm);
            addrs.push_back(a);
            std::uint64_t old = mem_.read64(a);
            if (old == lane_reg(lane, in.srcs[1]))
                mem_.write64(a, lane_reg(lane, in.srcs[2]));
            set_lane_reg(lane, in.dst, old);
        }
        add_lines_for(addrs);
        break;
      }
      case Opcode::ALLOC: {
        std::vector<Addr> &addrs = addrScratch_;
        addrs.clear();
        for (int lane = 0; lane < kWarpSize; ++lane) {
            if (!(g & (1u << lane)))
                continue;
            std::uint64_t sz = lane_reg(lane, in.srcs[0]);
            Addr p = mem_.allocFromHeap(sz);
            set_lane_reg(lane, in.dst, p);
        }
        // Timing-wise the bump is an atomic on the heap cursor word.
        if (g)
            addrs.push_back(mem_.heapCursorAddr());
        add_lines_for(addrs);
        break;
      }
      default:
        panic("unimplemented opcode %d", static_cast<int>(in.op));
    }

    out.insts.push_back(ti);
    (void)is_control;

    if (!stack_handled) {
        if (!we.stack.advance(next_pc))
            we.done = true;
    } else if (we.stack.empty()) {
        we.done = true;
    }
    return true;
}

} // namespace gex::func
