/**
 * @file
 * Per-warp SIMT reconvergence stack with explicit SSY-scope management,
 * matching the ISA's "explicit management of the divergence stack".
 */

#ifndef GEX_FUNC_SIMT_STACK_HPP
#define GEX_FUNC_SIMT_STACK_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace gex::func {

/** Sentinel reconvergence pc meaning "top level, never reconverges". */
inline constexpr std::uint32_t kNoRpc = 0xffffffffu;

/**
 * Classic stack-based reconvergence. The top entry drives execution
 * (pc + active mask). SSY instructions push reconvergence *scopes*; a
 * divergent branch splits the top entry using the innermost scope
 * target as the reconvergence pc.
 */
class SimtStack
{
  public:
    struct Entry {
        std::uint32_t pc;
        std::uint32_t rpc;
        WarpMask mask;
    };

    /** Reset to a single top-level entry covering @p mask at pc 0. */
    void reset(WarpMask mask);

    bool empty() const { return stack_.empty(); }
    Entry &top() { return stack_.back(); }
    const Entry &top() const { return stack_.back(); }
    size_t depth() const { return stack_.size(); }

    /** Enter an SSY scope reconverging at @p target. */
    void pushScope(std::uint32_t target) { scopes_.push_back(target); }

    /** Innermost scope target; kNoRpc when no scope is open. */
    std::uint32_t
    scopeTarget() const
    {
        return scopes_.empty() ? kNoRpc : scopes_.back();
    }

    /**
     * Split the top entry on a divergent branch: the current entry
     * becomes the reconvergence continuation at @p rpc, then the
     * not-taken and taken sides are pushed (taken executes first).
     */
    void diverge(std::uint32_t taken_pc, std::uint32_t fall_pc,
                 std::uint32_t rpc, WarpMask taken, WarpMask not_taken);

    /**
     * Advance the top entry to @p next_pc, popping entries whose
     * reconvergence point was reached and closing SSY scopes whose
     * label the flow has passed. Returns false when the stack emptied
     * (warp finished).
     */
    bool advance(std::uint32_t next_pc);

    /** Remove exited lanes from every entry (EXIT under divergence). */
    void removeLanes(WarpMask lanes);

  private:
    std::vector<Entry> stack_;
    std::vector<std::uint32_t> scopes_;
};

} // namespace gex::func

#endif // GEX_FUNC_SIMT_STACK_HPP
