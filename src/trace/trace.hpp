/**
 * @file
 * Dynamic trace data model: the interface between the execution-driven
 * functional simulator and the cycle-level timing simulator, mirroring
 * the paper's methodology (section 5.1).
 *
 * Memory instructions carry their post-coalescing unique cache-line
 * addresses (what the LSU, TLBs and caches operate on); per-lane
 * addresses are coalesced at trace-generation time by the same rules the
 * hardware coalescing unit applies (one request per unique line).
 */

#ifndef GEX_TRACE_TRACE_HPP
#define GEX_TRACE_TRACE_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace gex::trace {

/** One dynamic warp instruction. */
struct TraceInst {
    std::uint32_t staticIdx;  ///< pc of the static instruction
    WarpMask active;          ///< lanes that executed (guard included)
    std::uint32_t lineOff;    ///< first entry in WarpTrace::linePool
    std::uint16_t numLines;   ///< coalesced unique lines (mem ops only)
    std::uint16_t numActive;  ///< popcount of active (operand log sizing)
    /**
     * Some active lane raised an arithmetic exception (divide by
     * zero, log of a non-positive value, ...). Only meaningful for
     * opcodes with the canRaiseArith trait.
     */
    bool arithFault = false;
};

/** The full dynamic instruction stream of one warp. */
struct WarpTrace {
    std::vector<TraceInst> insts;
    std::vector<Addr> linePool;

    /** Line addresses of instruction @p i. */
    const Addr *
    lines(const TraceInst &ti) const
    {
        return linePool.data() + ti.lineOff;
    }
};

/** All warps of one thread block, in warp-id order. */
struct BlockTrace {
    std::uint32_t blockId = 0;   ///< linearized block index
    std::vector<WarpTrace> warps;

    std::uint64_t dynamicInsts() const;
};

/** The whole kernel: one BlockTrace per launched thread block. */
struct KernelTrace {
    std::vector<BlockTrace> blocks;
    StatSet stats;  ///< functional-execution statistics

    std::uint64_t dynamicInsts() const;
    std::uint64_t dynamicMemInsts() const { return memInsts; }

    std::uint64_t memInsts = 0;      ///< global memory instructions
    std::uint64_t memRequests = 0;   ///< post-coalescing line requests
};

} // namespace gex::trace

#endif // GEX_TRACE_TRACE_HPP
