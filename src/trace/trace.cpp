#include "trace/trace.hpp"

namespace gex::trace {

std::uint64_t
BlockTrace::dynamicInsts() const
{
    std::uint64_t n = 0;
    for (const auto &w : warps)
        n += w.insts.size();
    return n;
}

std::uint64_t
KernelTrace::dynamicInsts() const
{
    std::uint64_t n = 0;
    for (const auto &b : blocks)
        n += b.dynamicInsts();
    return n;
}

} // namespace gex::trace
