#include "config/knob_registry.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/log.hpp"

namespace gex::config {

namespace {

constexpr std::int64_t kNoLimit = 0x7fffffffffffffffll;

const char *
typeName(KnobType t)
{
    switch (t) {
    case KnobType::Int: return "int";
    case KnobType::Real: return "real";
    case KnobType::Bool: return "bool";
    case KnobType::Enum: return "enum";
    }
    return "?";
}

/** FNV-1a with explicit little-endian serialization (see journal). */
struct Fnv {
    std::uint64_t h = 14695981039346656037ull;

    void
    bytes(const void *p, std::size_t n)
    {
        const unsigned char *c = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= c[i];
            h *= 1099511628211ull;
        }
    }
    void
    u64(std::uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        bytes(b, 8);
    }
    void
    d(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    void
    s(const std::string &v)
    {
        u64(v.size());
        bytes(v.data(), v.size());
    }
    void
    value(const KnobValue &v)
    {
        u64(static_cast<std::uint64_t>(v.type));
        switch (v.type) {
        case KnobType::Int: u64(static_cast<std::uint64_t>(v.i)); break;
        case KnobType::Real: d(v.r); break;
        case KnobType::Bool: u64(v.b ? 1 : 0); break;
        case KnobType::Enum: s(v.e); break;
        }
    }
};

std::string
enumList(const std::vector<std::string> &values)
{
    std::string out;
    for (const auto &v : values) {
        if (!out.empty())
            out += " | ";
        out += v;
    }
    return out;
}

} // namespace

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t prev = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t cur = row[j];
            std::size_t sub = prev + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j - 1] + 1, row[j] + 1, sub});
            prev = cur;
        }
    }
    return row[b.size()];
}

// --- KnobValue -------------------------------------------------------

KnobValue
KnobValue::ofInt(std::int64_t v)
{
    KnobValue k;
    k.type = KnobType::Int;
    k.i = v;
    return k;
}

KnobValue
KnobValue::ofReal(double v)
{
    KnobValue k;
    k.type = KnobType::Real;
    k.r = v;
    return k;
}

KnobValue
KnobValue::ofBool(bool v)
{
    KnobValue k;
    k.type = KnobType::Bool;
    k.b = v;
    return k;
}

KnobValue
KnobValue::ofEnum(std::string v)
{
    KnobValue k;
    k.type = KnobType::Enum;
    k.e = std::move(v);
    return k;
}

bool
KnobValue::operator==(const KnobValue &o) const
{
    if (type != o.type)
        return false;
    switch (type) {
    case KnobType::Int: return i == o.i;
    case KnobType::Real: return r == o.r;
    case KnobType::Bool: return b == o.b;
    case KnobType::Enum: return e == o.e;
    }
    return false;
}

std::string
KnobValue::toString() const
{
    switch (type) {
    case KnobType::Int: return std::to_string(i);
    case KnobType::Real: return json::formatNumber(r);
    case KnobType::Bool: return b ? "true" : "false";
    case KnobType::Enum: return e;
    }
    return "?";
}

// --- Knob ------------------------------------------------------------

std::string
Knob::rangeText() const
{
    switch (type) {
    case KnobType::Int:
        return strprintf("[%lld, %s]", static_cast<long long>(imin),
                         imax == kNoLimit
                             ? "inf"
                             : std::to_string(imax).c_str());
    case KnobType::Real:
        return strprintf("[%s, %s]", json::formatNumber(rmin).c_str(),
                         json::formatNumber(rmax).c_str());
    case KnobType::Bool: return "true | false";
    case KnobType::Enum: return enumList(enumValues);
    }
    return "?";
}

KnobValue
Knob::parseText(const std::string &context,
                const std::string &text) const
{
    switch (type) {
    case KnobType::Int: {
        errno = 0;
        char *end = nullptr;
        long long v = std::strtoll(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0' || errno == ERANGE)
            throw ConfigError(strprintf("%s needs an integer, got '%s'",
                                        context.c_str(), text.c_str()));
        if (v < imin || v > imax)
            throw ConfigError(strprintf(
                "%s must be in %s, got %lld", context.c_str(),
                rangeText().c_str(), v));
        return KnobValue::ofInt(v);
    }
    case KnobType::Real: {
        errno = 0;
        char *end = nullptr;
        double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0' || errno == ERANGE)
            throw ConfigError(strprintf("%s needs a number, got '%s'",
                                        context.c_str(), text.c_str()));
        if (!(v >= rmin && v <= rmax))
            throw ConfigError(strprintf(
                "%s must be in %s, got %s", context.c_str(),
                rangeText().c_str(), json::formatNumber(v).c_str()));
        return KnobValue::ofReal(v);
    }
    case KnobType::Bool: {
        if (text == "true" || text == "1")
            return KnobValue::ofBool(true);
        if (text == "false" || text == "0")
            return KnobValue::ofBool(false);
        throw ConfigError(strprintf("%s needs true or false, got '%s'",
                                    context.c_str(), text.c_str()));
    }
    case KnobType::Enum: {
        for (const auto &v : enumValues)
            if (text == v)
                return KnobValue::ofEnum(text);
        throw ConfigError(strprintf(
            "%s must be one of %s, got '%s'", context.c_str(),
            enumList(enumValues).c_str(), text.c_str()));
    }
    }
    throw ConfigError(context + ": unhandled knob type");
}

KnobValue
Knob::fromJson(const std::string &context, const json::Value &v) const
{
    switch (type) {
    case KnobType::Int: {
        if (!v.isNumber())
            throw ConfigError(context + " needs an integer");
        double n = v.number;
        std::int64_t i = static_cast<std::int64_t>(n);
        if (static_cast<double>(i) != n)
            throw ConfigError(strprintf(
                "%s needs an integer, got %s", context.c_str(),
                json::formatNumber(n).c_str()));
        if (i < imin || i > imax)
            throw ConfigError(strprintf(
                "%s must be in %s, got %lld", context.c_str(),
                rangeText().c_str(), static_cast<long long>(i)));
        return KnobValue::ofInt(i);
    }
    case KnobType::Real: {
        if (!v.isNumber())
            throw ConfigError(context + " needs a number");
        if (!(v.number >= rmin && v.number <= rmax))
            throw ConfigError(strprintf(
                "%s must be in %s, got %s", context.c_str(),
                rangeText().c_str(),
                json::formatNumber(v.number).c_str()));
        return KnobValue::ofReal(v.number);
    }
    case KnobType::Bool: {
        if (v.kind != json::Value::Kind::Bool)
            throw ConfigError(context + " needs true or false");
        return KnobValue::ofBool(v.boolean);
    }
    case KnobType::Enum: {
        if (!v.isString())
            throw ConfigError(strprintf(
                "%s needs a string (one of %s)", context.c_str(),
                enumList(enumValues).c_str()));
        return parseText(context, v.str);
    }
    }
    throw ConfigError(context + ": unhandled knob type");
}

// --- Registration helpers --------------------------------------------

void
KnobRegistry::finish(Knob k)
{
    if (k.flag.empty())
        k.flag = "--" + k.name;
    GEX_ASSERT(find(k.name) == nullptr, "duplicate knob '%s'",
               k.name.c_str());
    GEX_ASSERT(findFlag(k.flag) == nullptr, "duplicate flag '%s'",
               k.flag.c_str());
    k.def = k.get(RunParams::baseline());
    knobs_.push_back(std::move(k));
}

void
KnobRegistry::integer(std::string name, std::string doc, std::int64_t lo,
                      std::int64_t hi,
                      std::function<std::int64_t(const RunParams &)> get,
                      std::function<void(RunParams &, std::int64_t)> set,
                      std::string flag, bool execOnly)
{
    Knob k;
    k.name = std::move(name);
    k.flag = std::move(flag);
    k.type = KnobType::Int;
    k.doc = std::move(doc);
    k.imin = lo;
    k.imax = hi;
    k.execOnly = execOnly;
    k.get = [get = std::move(get)](const RunParams &p) {
        return KnobValue::ofInt(get(p));
    };
    k.set = [set = std::move(set)](RunParams &p, const KnobValue &v) {
        set(p, v.i);
    };
    finish(std::move(k));
}

void
KnobRegistry::real(std::string name, std::string doc, double lo,
                   double hi,
                   std::function<double(const RunParams &)> get,
                   std::function<void(RunParams &, double)> set,
                   std::string flag)
{
    Knob k;
    k.name = std::move(name);
    k.flag = std::move(flag);
    k.type = KnobType::Real;
    k.doc = std::move(doc);
    k.rmin = lo;
    k.rmax = hi;
    k.get = [get = std::move(get)](const RunParams &p) {
        return KnobValue::ofReal(get(p));
    };
    k.set = [set = std::move(set)](RunParams &p, const KnobValue &v) {
        set(p, v.r);
    };
    finish(std::move(k));
}

void
KnobRegistry::boolean(std::string name, std::string doc,
                      std::function<bool(const RunParams &)> get,
                      std::function<void(RunParams &, bool)> set,
                      std::string flag, bool execOnly)
{
    Knob k;
    k.name = std::move(name);
    k.flag = std::move(flag);
    k.type = KnobType::Bool;
    k.doc = std::move(doc);
    k.execOnly = execOnly;
    k.get = [get = std::move(get)](const RunParams &p) {
        return KnobValue::ofBool(get(p));
    };
    k.set = [set = std::move(set)](RunParams &p, const KnobValue &v) {
        set(p, v.b);
    };
    finish(std::move(k));
}

void
KnobRegistry::enumeration(
    std::string name, std::string doc, std::vector<std::string> values,
    std::function<std::string(const RunParams &)> get,
    std::function<void(RunParams &, const std::string &)> set,
    std::string flag, bool preset, bool execOnly)
{
    Knob k;
    k.name = std::move(name);
    k.flag = std::move(flag);
    k.type = KnobType::Enum;
    k.doc = std::move(doc);
    k.enumValues = std::move(values);
    k.preset = preset;
    k.execOnly = execOnly;
    k.get = [get = std::move(get)](const RunParams &p) {
        return KnobValue::ofEnum(get(p));
    };
    k.set = [set = std::move(set)](RunParams &p, const KnobValue &v) {
        set(p, v.e);
    };
    finish(std::move(k));
}

// --- The knob inventory ----------------------------------------------

// Field-accessor shorthand: FIELD is a member chain under RunParams
// (e.g. cfg.sm.maxWarps). The KB variants expose byte-sized fields in
// kilobytes, the granularity every driver flag has always used.
#define GETSET_INT(FIELD)                                               \
    [](const RunParams &p) {                                            \
        return static_cast<std::int64_t>(p.FIELD);                      \
    },                                                                  \
    [](RunParams &p, std::int64_t v) {                                  \
        p.FIELD =                                                       \
            static_cast<std::remove_reference_t<decltype(p.FIELD)>>(v); \
    }
#define GETSET_KB(FIELD)                                                \
    [](const RunParams &p) {                                            \
        return static_cast<std::int64_t>(p.FIELD / 1024);               \
    },                                                                  \
    [](RunParams &p, std::int64_t v) {                                  \
        p.FIELD =                                                       \
            static_cast<std::remove_reference_t<decltype(p.FIELD)>>(    \
                v * 1024);                                              \
    }
#define GETSET_REAL(FIELD)                                              \
    [](const RunParams &p) { return static_cast<double>(p.FIELD); },    \
    [](RunParams &p, double v) { p.FIELD = v; }
#define GETSET_BOOL(FIELD)                                              \
    [](const RunParams &p) { return p.FIELD; },                         \
    [](RunParams &p, bool v) { p.FIELD = v; }

KnobRegistry::KnobRegistry()
{
    // ---- Presets first: spec files apply knobs in registry order, so
    // a preset is always applied before the component knobs that
    // refine it ("policy": "demand-paging" + "policy.heap": ...).
    {
        std::vector<std::string> policies = {
            "resident",          "demand-paging", "output-faults",
            "output-faults-local", "heap-faults", "heap-faults-local"};
        enumeration(
            "policy", "residency preset (paper evaluation mode)",
            std::move(policies),
            [](const RunParams &p) {
                return std::string(vm::policyName(p.policy));
            },
            [](RunParams &p, const std::string &v) {
                // Presets configure residency only; a fault model
                // composed onto the policy survives the switch.
                inject::InjectConfig inj = p.policy.inject;
                p.policy = vm::policyFromName(v);
                p.policy.inject = inj;
            },
            "--policy", /*preset=*/true);
    }
    enumeration(
        "link", "host interconnect preset", {"nvlink", "pcie"},
        [](const RunParams &p) { return p.cfg.hostLink.name; },
        [](RunParams &p, const std::string &v) {
            p.cfg.hostLink = v == "pcie" ? vm::HostLinkConfig::pcie()
                                         : vm::HostLinkConfig::nvlink();
        },
        "--link", /*preset=*/true);

    // ---- Scheme and system-level machine knobs.
    {
        std::vector<std::string> schemes;
        for (gpu::Scheme s : gpu::allSchemes())
            schemes.push_back(gpu::schemeName(s));
        enumeration(
            "scheme", "exception handling scheme (paper section 3)",
            std::move(schemes),
            [](const RunParams &p) {
                return std::string(gpu::schemeName(p.cfg.scheme));
            },
            [](RunParams &p, const std::string &v) {
                p.cfg.scheme = gpu::schemeFromName(v);
            },
            "--scheme");
    }
    integer("sms", "number of SMs", 1, 4096, GETSET_INT(cfg.numSms),
            "--sms");
    integer("sm-threads",
            "threads ticking the SMs of one run (results identical "
            "at any value)",
            1, 1024, GETSET_INT(cfg.smThreads), "--sm-threads",
            /*execOnly=*/true);
    integer("operand-log-kb", "operand log size per SM in KB "
            "(operand-log scheme)", 1, 1 << 20,
            GETSET_KB(cfg.operandLogBytes), "--log-kb");
    integer("migration-kb", "fault handling / migration granularity "
            "in KB", 4, 1 << 20,
            GETSET_KB(cfg.migrationGranularityBytes));
    real("dram-bytes-per-cycle", "DRAM bandwidth in bytes per cycle",
         0.001, 1e9, GETSET_REAL(cfg.dramBytesPerCycle));
    integer("dram-latency", "DRAM access latency in cycles", 0,
            kNoLimit, GETSET_INT(cfg.dramLatency));
    integer("fault-retry-latency", "retry latency after a stalled "
            "fault resolves (baseline scheme)", 0, kNoLimit,
            GETSET_INT(cfg.faultRetryLatency));

    // ---- UC1 block switching.
    boolean("block-switching", "UC1: context switch faulted thread "
            "blocks", GETSET_BOOL(cfg.blockSwitching),
            "--block-switching");
    boolean("ideal-switch", "UC1: ideal 1-cycle context save/restore",
            GETSET_BOOL(cfg.idealContextSwitch), "--ideal-switch");
    integer("max-extra-blocks", "UC1: extra off-chip blocks allowed "
            "per SM", 0, 1024, GETSET_INT(cfg.maxExtraBlocks));
    integer("switch-queue-threshold", "UC1: switch only above this "
            "many pending faults", 0, 1 << 20,
            GETSET_INT(cfg.switchQueueThreshold));
    integer("context-switch-overhead", "fixed per-switch control "
            "overhead in cycles (non-ideal)", 0, kNoLimit,
            GETSET_INT(cfg.contextSwitchOverhead));
    integer("min-residency-before-switch", "UC1 anti-churn: cycles a "
            "block must be resident before switching out again", 0,
            kNoLimit, GETSET_INT(cfg.minResidencyBeforeSwitch));

    // ---- Arithmetic-exception extension.
    boolean("arith-exceptions", "make arithmetic exceptions "
            "preemptible too", GETSET_BOOL(cfg.arithExceptions),
            "--arith-exceptions");
    integer("trap-handler-cycles", "trap handler routine latency for "
            "arithmetic exceptions", 0, kNoLimit,
            GETSET_INT(cfg.trapHandlerCycles));

    // ---- Robustness (docs/ROBUSTNESS.md).
    integer("watchdog", "forward-progress watchdog window in cycles "
            "(0 disables)", 0, kNoLimit,
            GETSET_INT(cfg.watchdogCycles), "--watchdog");
    boolean("capture-events", "keep the last-K pipeline events for "
            "watchdog diagnostics", GETSET_BOOL(cfg.watchdogCaptureEvents),
            "--capture-events");
    integer("watchdog-last-events", "event-ring capacity for "
            "capture-events", 1, 1 << 20,
            GETSET_INT(cfg.watchdogLastEvents));
    integer("max-cycles", "hard cycle budget (0 = unlimited)", 0,
            kNoLimit, GETSET_INT(cfg.maxCycles), "--max-cycles");
    boolean("resilience-stats", "emit the resil.* stat block on "
            "fault-free runs too", GETSET_BOOL(cfg.resilienceStats));
    boolean("check", "run the invariant sanitizer and self-checks "
            "(docs/VALIDATION.md); results are never changed",
            GETSET_BOOL(cfg.checkInvariants), "--check",
            /*execOnly=*/true);
    enumeration("check.violate", "test-only: arm one deliberate "
                "invariant violation under --check",
                {"none", "rq-hold", "ol-leak", "event-seq",
                 "double-commit"},
                [](const RunParams &p) { return p.cfg.checkViolation; },
                [](RunParams &p, const std::string &v) {
                    p.cfg.checkViolation = v;
                },
                "--violate", /*preset=*/false, /*execOnly=*/true);

    // ---- Per-SM microarchitecture (paper Table 1, SM section).
    integer("sm.max-blocks", "resident thread blocks per SM", 1, 64,
            GETSET_INT(cfg.sm.maxThreadBlocks));
    integer("sm.max-warps", "resident warps per SM", 1, 1024,
            GETSET_INT(cfg.sm.maxWarps));
    integer("sm.register-file-kb", "register file size per SM in KB",
            1, 1 << 20, GETSET_KB(cfg.sm.registerFileBytes));
    integer("sm.shared-mem-kb", "shared memory per SM in KB", 1,
            1 << 20, GETSET_KB(cfg.sm.sharedMemBytes));
    integer("sm.issue-width", "instructions issued per cycle", 1, 32,
            GETSET_INT(cfg.sm.issueWidth));
    integer("sm.max-issue-per-warp", "issue slots one warp may take "
            "per cycle", 1, 32, GETSET_INT(cfg.sm.maxIssuePerWarp));
    integer("sm.fetch-per-cycle", "instruction lines fetched per "
            "cycle", 1, 32, GETSET_INT(cfg.sm.fetchPerCycle));
    integer("sm.fetch-width", "instructions per fetched line", 1, 32,
            GETSET_INT(cfg.sm.fetchWidth));
    integer("sm.ibuf-depth", "per-warp instruction buffer depth", 1,
            64, GETSET_INT(cfg.sm.instBufferDepth));
    enumeration(
        "sm.sched-policy", "warp selection policy",
        {gpu::schedPolicyName(gpu::SchedPolicy::LooseRoundRobin),
         gpu::schedPolicyName(gpu::SchedPolicy::GreedyThenOldest)},
        [](const RunParams &p) {
            return std::string(gpu::schedPolicyName(p.cfg.sm.schedPolicy));
        },
        [](RunParams &p, const std::string &v) {
            p.cfg.sm.schedPolicy = gpu::schedPolicyFromName(v);
        });
    integer("sm.math-units", "math units per SM", 1, 64,
            GETSET_INT(cfg.sm.numMathUnits));
    integer("sm.math-latency", "math unit latency in cycles", 1,
            kNoLimit, GETSET_INT(cfg.sm.mathLatency));
    integer("sm.sfu-latency", "special function unit latency", 1,
            kNoLimit, GETSET_INT(cfg.sm.sfuLatency));
    integer("sm.branch-latency", "branch unit latency", 1, kNoLimit,
            GETSET_INT(cfg.sm.branchLatency));
    integer("sm.shared-latency", "shared memory access latency", 1,
            kNoLimit, GETSET_INT(cfg.sm.sharedLatency));
    integer("sm.atomic-extra-latency", "extra latency of atomic "
            "accesses", 0, kNoLimit,
            GETSET_INT(cfg.sm.atomicExtraLatency));
    integer("sm.translations-per-cycle", "coalesced requests entering "
            "translation per cycle", 1, 64,
            GETSET_INT(cfg.sm.translationsPerCycle));
    integer("sm.mem-frontend-cycles", "global-memory pipeline front "
            "end depth (issue to last TLB check)", 0, kNoLimit,
            GETSET_INT(cfg.sm.memFrontendCycles));
    integer("sm.lsu-queue-depth", "in-flight global-memory "
            "instructions per SM", 1, 1 << 20,
            GETSET_INT(cfg.sm.lsuQueueDepth));
    integer("sm.fetch-restart-penalty", "fetch refill penalty after a "
            "warp-disable re-enable", 0, kNoLimit,
            GETSET_INT(cfg.sm.fetchRestartPenalty));

    // ---- Caches and TLBs.
    integer("l1.size-kb", "L1 cache size per SM in KB", 1, 1 << 20,
            GETSET_KB(cfg.sm.l1.sizeBytes));
    integer("l1.ways", "L1 associativity", 1, 64,
            GETSET_INT(cfg.sm.l1.ways));
    integer("l1.latency", "L1 hit latency in cycles", 1, kNoLimit,
            GETSET_INT(cfg.sm.l1.latency));
    integer("l1.mshrs", "L1 MSHRs", 1, 1 << 20,
            GETSET_INT(cfg.sm.l1.mshrs));
    integer("l1.ports", "L1 ports", 1, 64, GETSET_INT(cfg.sm.l1.ports));
    boolean("l1.write-allocate", "L1 write-allocate + write-back "
            "(vs write-through)", GETSET_BOOL(cfg.sm.l1.writeAllocate));
    integer("l1tlb.entries", "L1 TLB entries", 1, 1 << 20,
            GETSET_INT(cfg.sm.l1Tlb.entries));
    integer("l1tlb.ways", "L1 TLB associativity", 1, 64,
            GETSET_INT(cfg.sm.l1Tlb.ways));
    integer("l1tlb.latency", "L1 TLB hit latency", 1, kNoLimit,
            GETSET_INT(cfg.sm.l1Tlb.latency));
    integer("l1tlb.miss-queue", "outstanding distinct-page L1 TLB "
            "misses", 1, 1 << 20, GETSET_INT(cfg.sm.l1Tlb.missQueue));
    integer("l2.size-kb", "shared L2 cache size in KB", 1, 1 << 24,
            GETSET_KB(cfg.l2.sizeBytes));
    integer("l2.ways", "L2 associativity", 1, 64,
            GETSET_INT(cfg.l2.ways));
    integer("l2.latency", "L2 hit latency in cycles", 1, kNoLimit,
            GETSET_INT(cfg.l2.latency));
    integer("l2.mshrs", "L2 MSHRs", 1, 1 << 20,
            GETSET_INT(cfg.l2.mshrs));
    integer("l2.ports", "L2 ports", 1, 64, GETSET_INT(cfg.l2.ports));
    boolean("l2.write-allocate", "L2 write-allocate + write-back "
            "(vs write-through)", GETSET_BOOL(cfg.l2.writeAllocate));
    integer("l2tlb.entries", "shared L2 TLB entries", 1, 1 << 20,
            GETSET_INT(cfg.mmu.l2Tlb.entries));
    integer("l2tlb.ways", "L2 TLB associativity", 1, 64,
            GETSET_INT(cfg.mmu.l2Tlb.ways));
    integer("l2tlb.latency", "L2 TLB hit latency", 1, kNoLimit,
            GETSET_INT(cfg.mmu.l2Tlb.latency));
    integer("l2tlb.miss-queue", "outstanding distinct-page L2 TLB "
            "misses", 1, 1 << 20, GETSET_INT(cfg.mmu.l2Tlb.missQueue));

    // ---- MMU / fault servicing.
    integer("mmu.walkers", "concurrent page table walkers", 1, 4096,
            GETSET_INT(cfg.mmu.numWalkers));
    integer("mmu.walk-cycles", "page table walk latency in cycles", 0,
            kNoLimit, GETSET_INT(cfg.mmu.walkCycles));
    integer("link.one-way-latency", "host link one-way propagation + "
            "software stack latency", 0, kNoLimit,
            GETSET_INT(cfg.hostLink.oneWayLatency));
    integer("link.cpu-service-cycles", "CPU handler service time per "
            "fault (fully serialized)", 0, kNoLimit,
            GETSET_INT(cfg.hostLink.cpuServiceCycles));
    real("link.bytes-per-cycle", "effective host link bandwidth for "
         "page data", 0.001, 1e9,
         GETSET_REAL(cfg.hostLink.linkBytesPerCycle));
    integer("link.signal-bytes", "per-fault request/response signaling "
            "bytes on the link", 0, 1ll << 40,
            GETSET_INT(cfg.hostLink.signalBytes));
    integer("handler.cycles", "GPU-local fault handler routine "
            "latency (UC2)", 0, kNoLimit,
            GETSET_INT(cfg.gpuHandler.handlerCycles));
    integer("handler.serial-cycles", "serialization between concurrent "
            "GPU-local handlers", 0, kNoLimit,
            GETSET_INT(cfg.gpuHandler.allocatorSerialCycles));

    // ---- Residency policy components (exact state behind the
    // "policy" preset; these are what the digest and manifest carry).
    {
        auto names = [] {
            return std::vector<std::string>{
                vm::regionStateName(vm::RegionState::GpuResident),
                vm::regionStateName(vm::RegionState::CpuOwned),
                vm::regionStateName(vm::RegionState::Untouched)};
        };
        enumeration(
            "policy.inputs", "initial residency of input buffers",
            names(),
            [](const RunParams &p) {
                return std::string(vm::regionStateName(p.policy.inputs));
            },
            [](RunParams &p, const std::string &v) {
                p.policy.inputs = vm::regionStateFromName(v);
            });
        enumeration(
            "policy.outputs", "initial residency of output buffers",
            names(),
            [](const RunParams &p) {
                return std::string(vm::regionStateName(p.policy.outputs));
            },
            [](RunParams &p, const std::string &v) {
                p.policy.outputs = vm::regionStateFromName(v);
            });
        enumeration(
            "policy.heap", "initial residency of device-malloc heap "
            "pages", names(),
            [](const RunParams &p) {
                return std::string(vm::regionStateName(p.policy.heap));
            },
            [](RunParams &p, const std::string &v) {
                p.policy.heap = vm::regionStateFromName(v);
            });
    }
    boolean("policy.local-handling", "UC2: first-touch faults handled "
            "by the GPU-local handler",
            GETSET_BOOL(policy.localHandling));

    // ---- Fault injection (docs/FAULT_INJECTION.md).
    {
        std::vector<std::string> models;
        for (inject::ModelKind k :
             {inject::ModelKind::None, inject::ModelKind::Bernoulli,
              inject::ModelKind::Burst, inject::ModelKind::HotPage,
              inject::ModelKind::FirstTouch})
            models.push_back(inject::modelName(k));
        enumeration(
            "inject.model", "injected fault model", std::move(models),
            [](const RunParams &p) {
                return std::string(
                    inject::modelName(p.policy.inject.model));
            },
            [](RunParams &p, const std::string &v) {
                p.policy.inject.model = inject::modelFromName(v);
            },
            "--inject-model");
    }
    real("inject.rate", "injected fault rate", 0.0, 1.0,
         GETSET_REAL(policy.inject.rate), "--inject-rate");
    integer("inject.seed", "injection campaign seed", 0, kNoLimit,
            GETSET_INT(policy.inject.seed), "--inject-seed");
    real("inject.burst-rate", "burst model: in-storm fault "
         "probability", 0.0, 1.0, GETSET_REAL(policy.inject.burstRate));
    real("inject.burst-enter", "burst model: P(calm to storm) per "
         "walk", 0.0, 1.0, GETSET_REAL(policy.inject.burstEnter));
    real("inject.burst-exit", "burst model: P(storm to calm) per "
         "walk", 0.0, 1.0, GETSET_REAL(policy.inject.burstExit));
    real("inject.hot-fraction", "hot-page model: fraction of regions "
         "that are hot", 0.0, 1.0,
         GETSET_REAL(policy.inject.hotFraction));
    real("inject.hot-boost", "hot-page model: hot-region rate "
         "multiplier", 0.0, 1e9, GETSET_REAL(policy.inject.hotBoost));
}

#undef GETSET_INT
#undef GETSET_KB
#undef GETSET_REAL
#undef GETSET_BOOL

// --- Registry services -----------------------------------------------

const KnobRegistry &
KnobRegistry::instance()
{
    static const KnobRegistry reg;
    return reg;
}

const Knob *
KnobRegistry::find(const std::string &name) const
{
    for (const Knob &k : knobs_)
        if (k.name == name)
            return &k;
    return nullptr;
}

const Knob *
KnobRegistry::findFlag(const std::string &flag) const
{
    for (const Knob &k : knobs_)
        if (k.flag == flag)
            return &k;
    return nullptr;
}

std::string
KnobRegistry::suggest(const std::string &name) const
{
    std::string best;
    std::size_t bestDist = name.size() / 2 + 2; // only near misses
    for (const Knob &k : knobs_) {
        std::size_t d = editDistance(name, k.name);
        if (d < bestDist) {
            bestDist = d;
            best = k.name;
        }
    }
    return best;
}

void
KnobRegistry::applySpecText(
    RunParams &p, const std::string &text, const std::string &origin,
    const std::function<bool(const std::string &, const json::Value &)>
        &extraKey,
    const std::function<std::string(const std::string &)> &extraSuggest)
    const
{
    std::string err;
    std::unique_ptr<json::Value> root = json::parse(text, &err);
    if (!root)
        throw ConfigError(
            strprintf("%s: %s", origin.c_str(), err.c_str()));
    if (!root->isObject())
        throw ConfigError(strprintf(
            "%s: an experiment spec must be a JSON object",
            origin.c_str()));

    // Knobs apply in registry order (presets before their component
    // knobs), independent of key order in the file.
    for (const Knob &k : knobs_) {
        const json::Value *v = root->find(k.name);
        if (!v)
            continue;
        std::string ctx =
            strprintf("%s: key '%s'", origin.c_str(), k.name.c_str());
        k.set(p, k.fromJson(ctx, *v));
    }
    // Remaining keys are driver-specific or mistakes.
    for (const auto &kv : root->members) {
        if (find(kv.first))
            continue;
        if (extraKey && extraKey(kv.first, kv.second))
            continue;
        std::string hint = suggest(kv.first);
        if (hint.empty() && extraSuggest)
            hint = extraSuggest(kv.first);
        throw ConfigError(strprintf(
            "%s: unknown key '%s'%s", origin.c_str(), kv.first.c_str(),
            hint.empty()
                ? ""
                : strprintf(" (did you mean '%s'?)", hint.c_str())
                      .c_str()));
    }
}

void
KnobRegistry::applySpecFile(
    RunParams &p, const std::string &path,
    const std::function<bool(const std::string &, const json::Value &)>
        &extraKey,
    const std::function<std::string(const std::string &)> &extraSuggest)
    const
{
    std::ifstream is(path);
    if (!is)
        throw ConfigError(strprintf("cannot open spec file '%s'",
                                    path.c_str()));
    std::ostringstream ss;
    ss << is.rdbuf();
    applySpecText(p, ss.str(), path, extraKey, extraSuggest);
}

void
KnobRegistry::writeManifest(json::Writer &w, const RunParams &p) const
{
    w.beginObject();
    for (const Knob &k : knobs_) {
        if (k.preset || k.execOnly)
            continue;
        KnobValue v = k.get(p);
        w.key(k.name);
        switch (v.type) {
        case KnobType::Int:
            w.value(static_cast<std::uint64_t>(v.i));
            break;
        case KnobType::Real: w.value(v.r); break;
        case KnobType::Bool: w.value(v.b); break;
        case KnobType::Enum: w.value(v.e); break;
        }
    }
    w.endObject();
}

std::uint64_t
KnobRegistry::resultDigest(const RunParams &p) const
{
    Fnv f;
    for (const Knob &k : knobs_) {
        if (k.preset || k.execOnly)
            continue;
        f.s(k.name);
        f.value(k.get(p));
    }
    return f.h;
}

std::uint64_t
KnobRegistry::registryDigest() const
{
    Fnv f;
    for (const Knob &k : knobs_) {
        f.s(k.name);
        f.s(k.flag);
        f.u64(static_cast<std::uint64_t>(k.type));
        f.u64(static_cast<std::uint64_t>(k.imin));
        f.u64(static_cast<std::uint64_t>(k.imax));
        f.d(k.rmin);
        f.d(k.rmax);
        for (const auto &e : k.enumValues)
            f.s(e);
        f.u64((k.execOnly ? 1u : 0u) | (k.preset ? 2u : 0u));
        f.value(k.def);
    }
    return f.h;
}

std::string
KnobRegistry::helpText() const
{
    std::ostringstream os;
    os << "configuration knobs (every flag doubles as a spec-file key;"
          "\nbool knobs also accept a --no- prefix):\n";
    for (const Knob &k : knobs_) {
        std::string left = "  " + k.flag;
        switch (k.type) {
        case KnobType::Int: left += " N"; break;
        case KnobType::Real: left += " X"; break;
        case KnobType::Bool: break;
        case KnobType::Enum: left += " NAME"; break;
        }
        os << left;
        if (left.size() < 30)
            os << std::string(30 - left.size(), ' ');
        else
            os << "\n" << std::string(30, ' ');
        os << k.doc;
        os << " (" << k.rangeText() << "; default "
           << k.def.toString() << ")";
        if (k.execOnly)
            os << " [execution-only]";
        if (k.preset)
            os << " [preset]";
        os << "\n";
    }
    return os.str();
}

std::string
KnobRegistry::markdownTable() const
{
    std::ostringstream os;
    os << "| knob | flag | type | default | range | description |\n";
    os << "|---|---|---|---|---|---|\n";
    for (const Knob &k : knobs_) {
        std::string notes;
        if (k.execOnly)
            notes = " *(execution-only: excluded from result digest "
                    "and manifest)*";
        if (k.preset)
            notes = " *(preset: excluded from result digest and "
                    "manifest; sets the component knobs below)*";
        // rangeText() separates alternatives with '|', which would
        // split the markdown cell; list them comma-separated here.
        std::string range;
        if (k.type == KnobType::Enum) {
            for (const std::string &v : k.enumValues) {
                if (!range.empty())
                    range += ", ";
                range += "`" + v + "`";
            }
        } else if (k.type == KnobType::Bool) {
            range = "`true`, `false`";
        } else {
            range = k.rangeText();
        }
        os << "| `" << k.name << "` | `" << k.flag << "` | "
           << typeName(k.type) << " | `" << k.def.toString() << "` | "
           << range << " | " << k.doc << notes << " |\n";
    }
    return os.str();
}

} // namespace gex::config
