/**
 * @file
 * The knob registry: one declarative description of every
 * result-affecting configuration knob of the simulator — name, CLI
 * flag, type, default, range/enum validation, doc string, and the
 * getter/setter binding it to its target field in gpu::GpuConfig,
 * vm::VmPolicy or inject::InjectConfig.
 *
 * Every layer that consumes or produces configuration is derived from
 * this single enumeration (docs/CONFIGURATION.md):
 *
 *  - JSON experiment-spec files (`--config spec.json`) are validated
 *    through it, with unknown-key rejection and nearest-name
 *    suggestions;
 *  - the `gexsim_*` drivers' knob flags and `--help` knob section are
 *    generated from it (config/cli.hpp);
 *  - every output JSON document carries a `resolved_config` manifest
 *    emitted from it (writeManifest);
 *  - the campaign journal's result digest (harness::specDigest) is
 *    computed over its enumeration, so a newly registered knob can
 *    never silently be excluded from resume keying.
 *
 * Registering a knob here is therefore the whole integration surface
 * for a new scenario parameter: flags, specs, validation, provenance
 * and resume keying all follow from the one registration line.
 */

#ifndef GEX_CONFIG_KNOB_REGISTRY_HPP
#define GEX_CONFIG_KNOB_REGISTRY_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpu/config.hpp"
#include "vm/memory_manager.hpp"

namespace gex::json {
class Writer;
struct Value;
} // namespace gex::json

namespace gex::config {

/**
 * Classic Levenshtein edit distance between two short names, shared by
 * every "did you mean" diagnostic (spec keys here, CLI flags in
 * config/cli.cpp).
 */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * The complete result-affecting parameterization of one simulation:
 * the machine configuration plus the paging/injection policy. Every
 * registry knob targets a field reachable from here.
 */
struct RunParams {
    gpu::GpuConfig cfg;
    vm::VmPolicy policy = vm::VmPolicy::allResident();

    /** Paper Table 1 machine, everything resident, injection off. */
    static RunParams baseline() { return RunParams{}; }
};

enum class KnobType : std::uint8_t {
    Int,  ///< integer (validated range), carried as int64
    Real, ///< floating point (validated range)
    Bool, ///< true/false; CLI form `--flag` / `--no-flag`
    Enum, ///< one of a fixed set of canonical names
};

/** A typed knob value; exactly the member matching `type` is valid. */
struct KnobValue {
    KnobType type = KnobType::Int;
    std::int64_t i = 0;
    double r = 0.0;
    bool b = false;
    std::string e;

    static KnobValue ofInt(std::int64_t v);
    static KnobValue ofReal(double v);
    static KnobValue ofBool(bool v);
    static KnobValue ofEnum(std::string v);

    bool operator==(const KnobValue &o) const;
    bool operator!=(const KnobValue &o) const { return !(*this == o); }

    /** Canonical text form ("16", "0.01", "true", "replay-queue"). */
    std::string toString() const;
};

/** One registered knob. */
struct Knob {
    std::string name; ///< spec-file key ("sms", "inject.rate", ...)
    std::string flag; ///< CLI spelling ("--sms", "--inject-rate", ...)
    KnobType type = KnobType::Int;
    std::string doc; ///< one-line description (help text, doc table)

    std::int64_t imin = 0, imax = 0;           ///< KnobType::Int range
    double rmin = 0.0, rmax = 0.0;             ///< KnobType::Real range
    std::vector<std::string> enumValues;       ///< KnobType::Enum set

    /**
     * Execution-only: changes how a run executes but provably not its
     * results (sm-threads). Excluded from the result digest and the
     * resolved_config manifest — a campaign resumes at any value.
     */
    bool execOnly = false;
    /**
     * Preset macro: one setter writing several component knobs'
     * fields (policy, link). Settable via flag/spec like any knob but
     * excluded from the digest and the manifest, where its component
     * knobs already carry the exact state.
     */
    bool preset = false;

    std::function<KnobValue(const RunParams &)> get;
    std::function<void(RunParams &, const KnobValue &)> set;

    KnobValue def; ///< value in RunParams::baseline()

    /**
     * Parse @p text (a CLI flag value) into a validated KnobValue;
     * ConfigError mentioning @p context (the flag or "file.json: key
     * 'x'") on garbage, partial parses or range/enum violations.
     */
    KnobValue parseText(const std::string &context,
                        const std::string &text) const;

    /** Convert + validate a parsed JSON spec value; ConfigError. */
    KnobValue fromJson(const std::string &context,
                       const json::Value &v) const;

    /** "[1, 4096]", "[0, 1]", "true|false" or "a | b | c". */
    std::string rangeText() const;
};

/**
 * The registry proper: an immutable, ordered knob list built once.
 * Order is meaningful — spec files are applied in registration order,
 * so preset knobs (policy, link) are registered before the component
 * knobs that refine them.
 */
class KnobRegistry
{
  public:
    /** The process-wide registry (built on first use, then frozen). */
    static const KnobRegistry &instance();

    const std::vector<Knob> &knobs() const { return knobs_; }

    /** Lookup by spec key; nullptr when absent. */
    const Knob *find(const std::string &name) const;
    /** Lookup by CLI flag spelling; nullptr when absent. */
    const Knob *findFlag(const std::string &flag) const;

    /**
     * Nearest registered knob name to @p name by edit distance, for
     * "did you mean" diagnostics; empty when nothing is close.
     */
    std::string suggest(const std::string &name) const;

    /**
     * Apply a JSON experiment spec to @p p. @p text must parse to one
     * JSON object. Knob keys are validated and applied in registry
     * order; any other key is offered to @p extraKey (driver-specific
     * keys: workloads, schemes, ...) and, if unclaimed, rejected with
     * a one-line ConfigError naming @p origin, the key and the nearest
     * suggestion. @p extraKey may be null.
     */
    void applySpecText(
        RunParams &p, const std::string &text, const std::string &origin,
        const std::function<bool(const std::string &key,
                                 const json::Value &v)> &extraKey = {},
        const std::function<std::string(const std::string &key)>
            &extraSuggest = {}) const;

    /** Read @p path and applySpecText; ConfigError when unreadable. */
    void applySpecFile(
        RunParams &p, const std::string &path,
        const std::function<bool(const std::string &key,
                                 const json::Value &v)> &extraKey = {},
        const std::function<std::string(const std::string &key)>
            &extraSuggest = {}) const;

    /**
     * Emit the resolved_config provenance manifest of @p p: one JSON
     * object member per digested knob (everything except presets and
     * execution-only knobs), in registry order. Feeding the object
     * back through applySpecText reproduces @p p's result-affecting
     * state exactly.
     */
    void writeManifest(json::Writer &w, const RunParams &p) const;

    /**
     * FNV-1a digest over (name, typed value) of every digested knob
     * of @p p — the registry-enumerated replacement for a hand-listed
     * field digest. Equal digests guarantee identical results for the
     * same (workload, scale).
     */
    std::uint64_t resultDigest(const RunParams &p) const;

    /**
     * Digest of the knob *schema* (names, flags, types, ranges,
     * defaults): campaign provenance for --version, and the doc-drift
     * guard's identity of the registered knob set.
     */
    std::uint64_t registryDigest() const;

    /** The generated --help knob section. */
    std::string helpText() const;

    /**
     * The full knob reference as a markdown table (name, flag, type,
     * default, range, doc) — `--dump-knobs` output, and the generated
     * table in docs/CONFIGURATION.md that CI diffs against it.
     */
    std::string markdownTable() const;

  private:
    KnobRegistry();

    void integer(std::string name, std::string doc, std::int64_t lo,
                 std::int64_t hi,
                 std::function<std::int64_t(const RunParams &)> get,
                 std::function<void(RunParams &, std::int64_t)> set,
                 std::string flag = {}, bool execOnly = false);
    void real(std::string name, std::string doc, double lo, double hi,
              std::function<double(const RunParams &)> get,
              std::function<void(RunParams &, double)> set,
              std::string flag = {});
    void boolean(std::string name, std::string doc,
                 std::function<bool(const RunParams &)> get,
                 std::function<void(RunParams &, bool)> set,
                 std::string flag = {}, bool execOnly = false);
    void enumeration(std::string name, std::string doc,
                     std::vector<std::string> values,
                     std::function<std::string(const RunParams &)> get,
                     std::function<void(RunParams &, const std::string &)>
                         set,
                     std::string flag = {}, bool preset = false,
                     bool execOnly = false);
    void finish(Knob k);

    std::vector<Knob> knobs_;
};

} // namespace gex::config

#endif // GEX_CONFIG_KNOB_REGISTRY_HPP
