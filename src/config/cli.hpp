/**
 * @file
 * Shared command-line plumbing for the gexsim_* drivers: validated
 * numeric flag parsing (a bad value is a one-line ConfigError, not a
 * silent atoi(0)), the top-level error guard that maps the structured
 * error taxonomy (common/error.hpp) onto stable process exit codes
 * (docs/ROBUSTNESS.md, "Exit codes"), and the registry-driven
 * ArgParser that gives every driver the same knob flags, `--config`
 * spec-file loading, `--help`, `--version` and `--dump-knobs` without
 * any per-driver flag loop.
 */

#ifndef GEX_CONFIG_CLI_HPP
#define GEX_CONFIG_CLI_HPP

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "config/knob_registry.hpp"

namespace gex::cli {

/**
 * Process exit codes of every gexsim tool, one per taxonomy kind so a
 * script (or the CI smokes) can branch on the failure class without
 * parsing stderr.
 */
enum ExitCode : int {
    ExitOk = 0,
    ExitInternal = 1, ///< non-taxonomy exception (simulator bug)
    ExitConfig = 2,   ///< ConfigError: bad flags / names / files
    ExitTrace = 3,    ///< TraceError
    ExitDeadlock = 4, ///< DeadlockError
    ExitLivelock = 5, ///< LivelockError (watchdog)
    ExitBudget = 6,   ///< CycleBudgetExceeded (--max-cycles)
    ExitInvariant = 7, ///< InvariantError (--check self-checks)
};

inline int
exitCodeFor(const GexError &e)
{
    if (dynamic_cast<const ConfigError *>(&e)) return ExitConfig;
    if (dynamic_cast<const TraceError *>(&e)) return ExitTrace;
    if (dynamic_cast<const DeadlockError *>(&e)) return ExitDeadlock;
    if (dynamic_cast<const LivelockError *>(&e)) return ExitLivelock;
    if (dynamic_cast<const CycleBudgetExceeded *>(&e)) return ExitBudget;
    if (dynamic_cast<const InvariantError *>(&e)) return ExitInvariant;
    return ExitInternal;
}

/**
 * Parse @p text (the value of flag @p flag) as a decimal integer in
 * [@p lo, @p hi]; ConfigError on garbage, partial parses or range
 * violations — "--jobs banana" and "--sms 0" both die with one line.
 */
inline long long
parseInt(const char *flag, const std::string &text, long long lo,
         long long hi)
{
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        throw ConfigError(strprintf("%s needs an integer, got '%s'",
                                    flag, text.c_str()));
    if (v < lo || v > hi)
        throw ConfigError(
            strprintf("%s must be in [%lld, %lld], got %lld", flag, lo,
                      hi, v));
    return v;
}

/** parseInt, bounded to [lo, hi] of int. */
inline int
parseIntFlag(const char *flag, const std::string &text, int lo, int hi)
{
    return static_cast<int>(parseInt(flag, text, lo, hi));
}

/** Parse a real number in [@p lo, @p hi]; ConfigError otherwise. */
inline double
parseDouble(const char *flag, const std::string &text, double lo,
            double hi)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        throw ConfigError(strprintf("%s needs a number, got '%s'", flag,
                                    text.c_str()));
    if (!(v >= lo && v <= hi))
        throw ConfigError(strprintf("%s must be in [%g, %g], got %g",
                                    flag, lo, hi, v));
    return v;
}

/** Parse a probability/rate in [0, 1]; ConfigError otherwise. */
inline double
parseRate(const char *flag, const std::string &text)
{
    return parseDouble(flag, text, 0.0, 1.0);
}

/** Split a comma-separated list; empty segments are dropped. */
inline std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/**
 * Top-level guard every tool's main() delegates to. Flag/config
 * mistakes print one line; simulation errors print the full report
 * (context line + diagnostics bundle); each kind maps to its ExitCode.
 */
template <typename Fn>
int
run(const char *prog, Fn &&fn)
{
    try {
        return fn();
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s: error: %s\n", prog, e.what());
        return ExitConfig;
    } catch (const GexError &e) {
        std::fprintf(stderr, "%s: %s\n", prog, e.report().c_str());
        return exitCodeFor(e);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: unexpected error: %s\n", prog,
                     e.what());
        return ExitInternal;
    }
}

/**
 * The build-provenance text behind every driver's --version: program
 * name, compiler, build type, and the knob-registry digest identifying
 * the exact knob schema the binary was built with.
 */
std::string versionText(const std::string &prog);

/**
 * Registry-driven argument parser shared by all gexsim_* drivers.
 *
 * A driver registers only its *driver-specific* options (workload
 * selection, output paths, grid axes) and calls bindKnobs() with its
 * config::RunParams; every registered knob then parses from its CLI
 * flag (`--sms 32`, bool knobs also as `--no-capture-events`), and the
 * driver gains for free:
 *
 *   --config FILE   apply a JSON experiment spec (repeatable; files
 *                   apply in order, then flags override regardless of
 *                   their position relative to --config)
 *   --help          driver options + the generated knob reference
 *   --version       build/provenance info (versionText)
 *   --dump-knobs    the registry knob table as markdown (what CI
 *                   diffs against docs/CONFIGURATION.md)
 *
 * Spec files accept every knob name plus the driver options that were
 * registered with a spec key; any other key is rejected with exit
 * code 2 and a nearest-name suggestion.
 */
class ArgParser
{
  public:
    ArgParser(std::string prog, std::string description);

    /** One "usage: ..." synopsis line under --help (optional). */
    void synopsis(std::string text);

    /**
     * A driver option taking a value. @p specKey, when non-null, also
     * accepts the option as a spec-file key under that name (use for
     * result-affecting driver keys: workloads, schemes, scale, ...;
     * spec values may be strings, numbers, bools or arrays of those —
     * arrays reach @p setter comma-joined, matching the CSV flags).
     */
    void option(std::string flag, std::string valueName, std::string doc,
                std::function<void(const std::string &)> setter,
                const char *specKey = nullptr);

    /** A value-less driver flag (--stats, --quick, --list). */
    void flag(std::string flag, std::string doc,
              std::function<void()> setter);

    /** The positional argument (gexsim-asm FILE); at most one. */
    void positional(std::string name, std::string doc,
                    std::function<void(const std::string &)> setter);

    /**
     * Bind the knob registry to @p params: enables every knob flag,
     * --config, --dump-knobs, and the knob section of --help. @p params
     * must outlive parse().
     */
    void bindKnobs(config::RunParams *params);

    /**
     * Parse the command line. Spec files named by --config apply first
     * (in order), then flags in CLI order, so a flag always overrides
     * a spec regardless of position. --help/--version/--dump-knobs
     * print and exit 0. Unknown flags, unknown spec keys, malformed or
     * out-of-range values throw ConfigError (exit 2 via run()).
     */
    void parse(int argc, char **argv);

    /** Spec files applied by the last parse() (campaign provenance). */
    const std::vector<std::string> &configFiles() const
    {
        return configFiles_;
    }

  private:
    struct Option {
        std::string flag;
        std::string valueName; ///< empty for value-less flags
        std::string doc;
        std::function<void(const std::string &)> setter; ///< valued
        std::function<void()> action;                    ///< value-less
        std::string specKey; ///< empty: not accepted in spec files
    };

    const Option *findOption(const std::string &flag) const;
    [[noreturn]] void unknownFlag(const std::string &flag) const;
    void applySpec(const std::string &path);
    void printHelp() const;

    std::string prog_;
    std::string description_;
    std::string synopsis_;
    std::vector<Option> options_;
    std::string positionalName_, positionalDoc_;
    std::function<void(const std::string &)> positionalSetter_;
    config::RunParams *params_ = nullptr;
    std::vector<std::string> configFiles_;
};

} // namespace gex::cli

#endif // GEX_CONFIG_CLI_HPP
