#include "config/cli.hpp"

#include <utility>

#include "common/json.hpp"

namespace gex::cli {

std::string
versionText(const std::string &prog)
{
#if defined(__clang__)
    const char *compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
    const char *compiler = "g++ " __VERSION__;
#else
    const char *compiler = "unknown compiler";
#endif
#ifdef GEXSIM_BUILD_TYPE
    const char *buildType =
        GEXSIM_BUILD_TYPE[0] ? GEXSIM_BUILD_TYPE : "default";
#else
    const char *buildType = "unknown";
#endif
    const config::KnobRegistry &reg = config::KnobRegistry::instance();
    return strprintf(
        "%s (gexsim GPU exception-handling simulator)\n"
        "  compiler:       %s\n"
        "  build type:     %s\n"
        "  knob registry:  %zu knobs, registry digest %016llx\n",
        prog.c_str(), compiler, buildType, reg.knobs().size(),
        static_cast<unsigned long long>(reg.registryDigest()));
}

ArgParser::ArgParser(std::string prog, std::string description)
    : prog_(std::move(prog)), description_(std::move(description))
{}

void
ArgParser::synopsis(std::string text)
{
    synopsis_ = std::move(text);
}

void
ArgParser::option(std::string flag, std::string valueName,
                  std::string doc,
                  std::function<void(const std::string &)> setter,
                  const char *specKey)
{
    Option o;
    o.flag = std::move(flag);
    o.valueName = std::move(valueName);
    o.doc = std::move(doc);
    o.setter = std::move(setter);
    if (specKey)
        o.specKey = specKey;
    options_.push_back(std::move(o));
}

void
ArgParser::flag(std::string flag, std::string doc,
                std::function<void()> setter)
{
    Option o;
    o.flag = std::move(flag);
    o.doc = std::move(doc);
    o.action = std::move(setter);
    options_.push_back(std::move(o));
}

void
ArgParser::positional(std::string name, std::string doc,
                      std::function<void(const std::string &)> setter)
{
    positionalName_ = std::move(name);
    positionalDoc_ = std::move(doc);
    positionalSetter_ = std::move(setter);
}

void
ArgParser::bindKnobs(config::RunParams *params)
{
    params_ = params;
}

const ArgParser::Option *
ArgParser::findOption(const std::string &flag) const
{
    for (const Option &o : options_)
        if (o.flag == flag)
            return &o;
    return nullptr;
}

void
ArgParser::unknownFlag(const std::string &flag) const
{
    std::vector<std::string> known = {"--help", "--version"};
    for (const Option &o : options_)
        known.push_back(o.flag);
    if (params_) {
        known.push_back("--config");
        known.push_back("--dump-knobs");
        for (const config::Knob &k :
             config::KnobRegistry::instance().knobs()) {
            known.push_back(k.flag);
            if (k.type == config::KnobType::Bool)
                known.push_back("--no-" + k.flag.substr(2));
        }
    }
    std::string best;
    std::size_t bestDist = flag.size() / 2 + 2;
    for (const std::string &cand : known) {
        std::size_t d = config::editDistance(flag, cand);
        if (d < bestDist) {
            bestDist = d;
            best = cand;
        }
    }
    throw ConfigError(strprintf(
        "unknown flag '%s'%s (--help lists every flag)", flag.c_str(),
        best.empty()
            ? ""
            : strprintf(" (did you mean '%s'?)", best.c_str()).c_str()));
}

void
ArgParser::applySpec(const std::string &path)
{
    // Driver options registered with a spec key are legal spec keys
    // too; their values arrive as the same text the CLI flag takes
    // (arrays comma-joined, matching the CSV list flags).
    auto extraKey = [&](const std::string &key,
                        const json::Value &v) -> bool {
        for (const Option &o : options_) {
            if (o.specKey != key)
                continue;
            std::string ctx = strprintf("%s: key '%s'", path.c_str(),
                                        key.c_str());
            auto scalarText =
                [&ctx](const json::Value &s) -> std::string {
                switch (s.kind) {
                case json::Value::Kind::String: return s.str;
                case json::Value::Kind::Number:
                    return json::formatNumber(s.number);
                case json::Value::Kind::Bool:
                    return s.boolean ? "true" : "false";
                default:
                    throw ConfigError(
                        ctx + " needs a string, number or bool");
                }
            };
            std::string text;
            if (v.isArray()) {
                for (const json::Value &item : v.items) {
                    if (!text.empty())
                        text += ",";
                    text += scalarText(item);
                }
            } else {
                text = scalarText(v);
            }
            o.setter(text);
            return true;
        }
        return false;
    };
    auto extraSuggest = [&](const std::string &key) -> std::string {
        std::string best;
        std::size_t bestDist = key.size() / 2 + 2;
        for (const Option &o : options_) {
            if (o.specKey.empty())
                continue;
            std::size_t d = config::editDistance(key, o.specKey);
            if (d < bestDist) {
                bestDist = d;
                best = o.specKey;
            }
        }
        return best;
    };
    config::KnobRegistry::instance().applySpecFile(*params_, path,
                                                  extraKey, extraSuggest);
    configFiles_.push_back(path);
}

void
ArgParser::printHelp() const
{
    std::printf("%s: %s\n\n", prog_.c_str(), description_.c_str());
    if (!synopsis_.empty())
        std::printf("usage: %s\n\n", synopsis_.c_str());
    std::printf("driver options:\n");
    auto line = [](const std::string &left, const std::string &doc) {
        if (left.size() < 30)
            std::printf("  %s%s%s\n", left.c_str(),
                        std::string(30 - left.size(), ' ').c_str(),
                        doc.c_str());
        else
            std::printf("  %s\n  %s%s\n", left.c_str(),
                        std::string(30, ' ').c_str(), doc.c_str());
    };
    if (!positionalName_.empty())
        line(positionalName_, positionalDoc_);
    for (const Option &o : options_) {
        std::string left = o.flag;
        if (!o.valueName.empty())
            left += " " + o.valueName;
        std::string doc = o.doc;
        if (!o.specKey.empty())
            doc += strprintf(" [spec key: %s]", o.specKey.c_str());
        line(left, doc);
    }
    if (params_) {
        line("--config FILE",
             "apply a JSON experiment spec (repeatable; flags "
             "override spec values)");
        line("--dump-knobs",
             "print the knob reference table (markdown) and exit");
    }
    line("--version", "print build and knob-registry provenance");
    line("--help", "this text");
    if (params_) {
        std::printf("\n%s",
                    config::KnobRegistry::instance().helpText().c_str());
        std::printf(
            "\nspec files are JSON objects of knob names%s; unknown "
            "keys are\nrejected with a suggestion (exit code 2). "
            "docs/CONFIGURATION.md has the\nfull reference.\n",
            options_.empty() ? "" : " and the marked spec keys");
    }
}

void
ArgParser::parse(int argc, char **argv)
{
    configFiles_.clear();

    // Informational modes win over everything else on the line.
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            printHelp();
            std::exit(ExitOk);
        }
        if (a == "--version") {
            std::printf("%s", versionText(prog_).c_str());
            std::exit(ExitOk);
        }
        if (params_ && a == "--dump-knobs") {
            std::printf(
                "%s",
                config::KnobRegistry::instance().markdownTable().c_str());
            std::exit(ExitOk);
        }
    }

    auto valueOf = [&](int &i, const std::string &flag) -> std::string {
        if (i + 1 >= argc)
            throw ConfigError(
                strprintf("flag %s needs a value", flag.c_str()));
        return argv[++i];
    };

    // Pass 1: spec files apply first, in order, so that any flag —
    // before or after its --config on the line — overrides the spec.
    if (params_) {
        for (int i = 1; i < argc; ++i) {
            if (std::string(argv[i]) == "--config")
                applySpec(valueOf(i, "--config"));
        }
    }

    // Pass 2: everything else, in CLI order.
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (params_ && a == "--config") {
            ++i; // already applied
            continue;
        }
        if (!a.empty() && a[0] != '-') {
            if (!positionalSetter_)
                throw ConfigError(
                    strprintf("unexpected argument '%s'", a.c_str()));
            positionalSetter_(a);
            continue;
        }
        if (const Option *o = findOption(a)) {
            if (o->setter)
                o->setter(valueOf(i, a));
            else
                o->action();
            continue;
        }
        if (params_) {
            const config::KnobRegistry &reg =
                config::KnobRegistry::instance();
            if (const config::Knob *k = reg.findFlag(a)) {
                if (k->type == config::KnobType::Bool)
                    k->set(*params_, config::KnobValue::ofBool(true));
                else
                    k->set(*params_, k->parseText(a, valueOf(i, a)));
                continue;
            }
            if (a.rfind("--no-", 0) == 0) {
                const config::Knob *k =
                    reg.findFlag("--" + a.substr(5));
                if (k && k->type == config::KnobType::Bool) {
                    k->set(*params_, config::KnobValue::ofBool(false));
                    continue;
                }
            }
        }
        unknownFlag(a);
    }
}

} // namespace gex::cli
