/**
 * @file
 * Operand-log area/power overhead accounting (paper Table 2): the SRAM
 * model's raw numbers, a 1.5x control-logic factor, and the published
 * SM/GPU area and power baselines the paper compares against.
 */

#ifndef GEX_POWER_OVERHEADS_HPP
#define GEX_POWER_OVERHEADS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace gex::power {

/** Published baselines used by the paper (references [40] and [15]). */
struct GpuAreaPowerBaseline {
    double smAreaMm2 = 16.0;
    double gpuAreaMm2 = 561.0;  ///< 16-SM chip
    double smPowerW = 5.7;
    double gpuPowerW = 130.0;   ///< chip only
    int numSms = 16;
    double controlLogicFactor = 1.5;
};

/** One Table 2 row. */
struct OverheadRow {
    std::uint64_t logBytes = 0;
    double smAreaPct = 0.0;
    double gpuAreaPct = 0.0;
    double smPowerPct = 0.0;
    double gpuPowerPct = 0.0;
};

/**
 * Compute the overhead row for an operand log of @p log_bytes per SM,
 * assuming the paper's worst case of one log write per cycle at 1 GHz.
 */
OverheadRow operandLogOverheads(std::uint64_t log_bytes,
                                const GpuAreaPowerBaseline &base = {});

/** The full Table 2 (8/16/20/32 KB). */
std::vector<OverheadRow> table2(const GpuAreaPowerBaseline &base = {});

/** Render rows in the paper's format. */
std::string formatTable2(const std::vector<OverheadRow> &rows);

} // namespace gex::power

#endif // GEX_POWER_OVERHEADS_HPP
