/**
 * @file
 * First-order SRAM area/energy model standing in for CACTI 6.5
 * (paper section 5.2, Table 2). Linear area/leakage and affine
 * access-energy coefficients are fit to CACTI-class outputs for small
 * single-ported SRAM arrays at the 40 nm node — the same node the
 * paper uses so its published SM/GPU baselines [40][15] apply.
 */

#ifndef GEX_POWER_SRAM_MODEL_HPP
#define GEX_POWER_SRAM_MODEL_HPP

#include <cstdint>

namespace gex::power {

/**
 * Single-ported SRAM at 40 nm. All outputs are for the raw array;
 * callers apply the paper's 1.5x control-logic factor.
 */
class SramModel
{
  public:
    /** Array area in mm^2. */
    static double
    areaMm2(std::uint64_t bytes)
    {
        double kb = static_cast<double>(bytes) / 1024.0;
        return kAreaBase + kAreaPerKb * kb;
    }

    /** Leakage power in mW. */
    static double
    leakageMw(std::uint64_t bytes)
    {
        double kb = static_cast<double>(bytes) / 1024.0;
        return kLeakBase + kLeakPerKb * kb;
    }

    /** Energy of one (full-width) access in pJ. */
    static double
    accessEnergyPj(std::uint64_t bytes)
    {
        double kb = static_cast<double>(bytes) / 1024.0;
        return kAccessBase + kAccessPerKb * kb;
    }

    /**
     * Total power in mW at @p accesses_per_second (1 GHz worst case:
     * one write per cycle, the paper's assumption).
     */
    static double
    totalPowerMw(std::uint64_t bytes, double accesses_per_second)
    {
        return leakageMw(bytes) +
               accessEnergyPj(bytes) * accesses_per_second * 1e-9;
    }

  private:
    // Fit against CACTI 6.5, 40 nm, single-ported, 128 B-line arrays
    // in the 8-32 KB range (raw array, no control-logic factor).
    static constexpr double kAreaBase = 0.0636;     // mm^2
    static constexpr double kAreaPerKb = 0.005887;  // mm^2 / KB
    static constexpr double kLeakBase = 29.0 / 1.5; // mW
    static constexpr double kLeakPerKb = 2.51 / 1.5;
    static constexpr double kAccessBase = 45.0 / 1.5; // pJ
    static constexpr double kAccessPerKb = 1.20 / 1.5;
};

} // namespace gex::power

#endif // GEX_POWER_SRAM_MODEL_HPP
