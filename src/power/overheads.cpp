#include "power/overheads.hpp"

#include <sstream>

#include "common/log.hpp"
#include "power/sram_model.hpp"

namespace gex::power {

OverheadRow
operandLogOverheads(std::uint64_t log_bytes,
                    const GpuAreaPowerBaseline &base)
{
    OverheadRow row;
    row.logBytes = log_bytes;

    const double f = base.controlLogicFactor;
    double area = SramModel::areaMm2(log_bytes) * f;
    // Worst case: one log write per cycle at 1 GHz (paper section 5.2).
    double power_mw = SramModel::totalPowerMw(log_bytes, 1e9) * f;

    row.smAreaPct = 100.0 * area / base.smAreaMm2;
    row.gpuAreaPct = 100.0 * area * base.numSms / base.gpuAreaMm2;
    row.smPowerPct = 100.0 * (power_mw / 1000.0) / base.smPowerW;
    row.gpuPowerPct =
        100.0 * (power_mw / 1000.0) * base.numSms / base.gpuPowerW;
    return row;
}

std::vector<OverheadRow>
table2(const GpuAreaPowerBaseline &base)
{
    std::vector<OverheadRow> rows;
    for (std::uint64_t kb : {8, 16, 20, 32})
        rows.push_back(operandLogOverheads(kb * 1024, base));
    return rows;
}

std::string
formatTable2(const std::vector<OverheadRow> &rows)
{
    std::ostringstream os;
    os << "Log Size | SM Area | GPU Area | SM Power | GPU Power\n";
    for (const auto &r : rows) {
        os << strprintf("%5llu KB |  %5.2f%% |   %5.2f%% |   %5.2f%% |    "
                        "%5.2f%%\n",
                        static_cast<unsigned long long>(r.logBytes / 1024),
                        r.smAreaPct, r.gpuAreaPct, r.smPowerPct,
                        r.gpuPowerPct);
    }
    return os.str();
}

} // namespace gex::power
