#include "obs/pipeline_view.hpp"

#include <cstdio>

namespace gex::obs {

PipelineView::PipelineView(std::size_t capacity)
    : cap_(capacity ? capacity : 1)
{
    ring_.reserve(cap_);
}

void
PipelineView::event(const PipeEvent &e)
{
    if (warpFilter_ >= 0 && e.warp != warpFilter_)
        return;
    if (ring_.size() < cap_)
        ring_.push_back(e);
    else
        ring_[count_ % cap_] = e;
    ++count_;
}

void
PipelineView::clear()
{
    ring_.clear();
    count_ = 0;
}

const PipeEvent &
PipelineView::at(std::size_t i) const
{
    if (count_ <= cap_)
        return ring_[i];
    return ring_[(count_ + i) % cap_];
}

void
PipelineView::render(std::ostream &os) const
{
    os << " cycle  sm wp  event             inst\n";
    char buf[64];
    for (std::size_t i = 0; i < size(); ++i) {
        const PipeEvent &e = at(i);
        std::snprintf(buf, sizeof buf, "%6llu  %2d %2d  %-16s",
                      static_cast<unsigned long long>(e.cycle), e.sm,
                      e.warp, pipeEventName(e.kind));
        os << buf;
        if (e.staticIdx != PipeEvent::kNoIndex) {
            std::snprintf(buf, sizeof buf, "  #%u ", e.traceIdx);
            os << buf;
            if (program_ && e.staticIdx < program_->size())
                os << program_->at(e.staticIdx).toString();
            else
                os << "pc " << e.staticIdx;
        }
        if (e.arg != 0) {
            std::snprintf(buf, sizeof buf, "  (arg=%llu)",
                          static_cast<unsigned long long>(e.arg));
            os << buf;
        }
        os << '\n';
    }
    if (count_ > cap_) {
        os << " ... " << (count_ - cap_)
           << " earlier events dropped (ring capacity " << cap_ << ")\n";
    }
}

} // namespace gex::obs
