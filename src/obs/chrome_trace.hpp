/**
 * @file
 * Chrome-trace (Perfetto) exporter: an observer that records the full
 * instruction-lifecycle event stream and writes it as a Chrome Trace
 * Event Format JSON document — load the file in Perfetto or
 * chrome://tracing to see each SM as a process, each warp as a track,
 * in-flight instructions as duration slices (issue → commit/squash)
 * and the scheme-specific events (fetch barriers, TLB checks, faults,
 * replays, context switches) as instants on those tracks.
 */

#ifndef GEX_OBS_CHROME_TRACE_HPP
#define GEX_OBS_CHROME_TRACE_HPP

#include <ostream>
#include <vector>

#include "isa/program.hpp"
#include "obs/observer.hpp"

namespace gex::obs {

class ChromeTraceWriter : public PipelineObserver
{
  public:
    /** Optional: name duration slices by disassembly from @p p. */
    void setProgram(const isa::Program *p) { program_ = p; }

    void event(const PipeEvent &e) override { events_.push_back(e); }

    std::size_t eventCount() const { return events_.size(); }
    void clear() { events_.clear(); }

    /**
     * Write everything recorded so far as one JSON document
     * ({"traceEvents": [...]}; one simulated cycle = 1 µs of trace
     * time). Compact output — traces run to megabytes.
     */
    void write(std::ostream &os) const;

  private:
    std::vector<PipeEvent> events_;
    const isa::Program *program_ = nullptr;
};

} // namespace gex::obs

#endif // GEX_OBS_CHROME_TRACE_HPP
