#include "obs/observer.hpp"

#include <sstream>

namespace gex::obs {

const char *
pipeEventName(PipeEventKind k)
{
    switch (k) {
      case PipeEventKind::Fetched: return "fetched";
      case PipeEventKind::FetchDisabled: return "fetch-disabled";
      case PipeEventKind::FetchReenabled: return "fetch-reenabled";
      case PipeEventKind::Issued: return "issued";
      case PipeEventKind::SourcesHeld: return "sources-held";
      case PipeEventKind::SourcesReleased: return "sources-released";
      case PipeEventKind::LogAllocated: return "log-allocated";
      case PipeEventKind::LogReleased: return "log-released";
      case PipeEventKind::TlbChecked: return "tlb-checked";
      case PipeEventKind::Faulted: return "faulted";
      case PipeEventKind::Squashed: return "squashed";
      case PipeEventKind::Replayed: return "replayed";
      case PipeEventKind::TrapEntered: return "trap-entered";
      case PipeEventKind::Committed: return "committed";
      case PipeEventKind::ContextSaved: return "context-saved";
      case PipeEventKind::ContextRestored: return "context-restored";
    }
    return "?";
}

std::vector<PipeEvent>
LastKObserver::snapshot() const
{
    std::vector<PipeEvent> out;
    out.reserve(buf_.size());
    for (std::size_t i = 0; i < buf_.size(); ++i)
        out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
}

std::string
LastKObserver::render() const
{
    std::ostringstream os;
    for (const PipeEvent &e : snapshot()) {
        os << "    cycle " << e.cycle << " sm" << e.sm;
        if (e.warp >= 0)
            os << " w" << e.warp;
        os << " " << pipeEventName(e.kind);
        if (e.traceIdx != PipeEvent::kNoIndex)
            os << " t" << e.traceIdx;
        if (e.arg)
            os << " arg=" << e.arg;
        os << "\n";
    }
    return os.str();
}

} // namespace gex::obs
