#include "obs/observer.hpp"

namespace gex::obs {

const char *
pipeEventName(PipeEventKind k)
{
    switch (k) {
      case PipeEventKind::Fetched: return "fetched";
      case PipeEventKind::FetchDisabled: return "fetch-disabled";
      case PipeEventKind::FetchReenabled: return "fetch-reenabled";
      case PipeEventKind::Issued: return "issued";
      case PipeEventKind::SourcesHeld: return "sources-held";
      case PipeEventKind::SourcesReleased: return "sources-released";
      case PipeEventKind::LogAllocated: return "log-allocated";
      case PipeEventKind::LogReleased: return "log-released";
      case PipeEventKind::TlbChecked: return "tlb-checked";
      case PipeEventKind::Faulted: return "faulted";
      case PipeEventKind::Squashed: return "squashed";
      case PipeEventKind::Replayed: return "replayed";
      case PipeEventKind::TrapEntered: return "trap-entered";
      case PipeEventKind::Committed: return "committed";
      case PipeEventKind::ContextSaved: return "context-saved";
      case PipeEventKind::ContextRestored: return "context-restored";
    }
    return "?";
}

} // namespace gex::obs
