/**
 * @file
 * Cycle-level pipeline observability: the instruction-lifecycle event
 * stream emitted by the SM stage modules (src/sm/stages) and the
 * observer interface consumers implement.
 *
 * The timing loop pays nothing when tracing is off: every emission
 * site is guarded by a single observer-null check (see
 * sm::PipelineState), and no event is constructed unless an observer
 * is attached. Attaching one (gpu::Gpu::setObserver) is strictly
 * additive — it never changes simulation behaviour, only watches it.
 *
 * docs/OBSERVABILITY.md has the event reference table (emitting stage
 * and payload of every kind) and the consumer walkthrough.
 */

#ifndef GEX_OBS_OBSERVER_HPP
#define GEX_OBS_OBSERVER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace gex::obs {

/** Instruction-lifecycle / warp-state event kinds, in pipeline order. */
enum class PipeEventKind : std::uint8_t {
    Fetched,         ///< fetch: instruction entered the i-buffer
    FetchDisabled,   ///< fetch: warp-disable barrier fetched (wd-*)
    FetchReenabled,  ///< last check or commit: barrier lifted
    Issued,          ///< issue: passed scoreboard + structural gates
    SourcesHeld,     ///< issue: source scoreboard entries acquired
    SourcesReleased, ///< operand read / last check / commit / squash
    LogAllocated,    ///< issue: operand-log partition space reserved
    LogReleased,     ///< last check / commit / squash
    TlbChecked,      ///< LSU: last TLB check passed (all requests)
    Faulted,         ///< LSU: a request page-faulted (preemptible)
    Squashed,        ///< fault reaction: in-flight instruction killed
    Replayed,        ///< fault reaction: trace index queued for replay
    TrapEntered,     ///< commit: arithmetic-exception trap handler
    Committed,       ///< commit: instruction retired
    ContextSaved,    ///< UC1: block context saved off-chip
    ContextRestored, ///< UC1: block context restored into a slot
};

/** Number of distinct PipeEventKind values. */
inline constexpr int kNumPipeEventKinds =
    static_cast<int>(PipeEventKind::ContextRestored) + 1;

/** Canonical short name ("fetched", "fetch-disabled", ...). */
const char *pipeEventName(PipeEventKind k);

/**
 * One pipeline event. Instruction-level events carry the dynamic trace
 * index and the static instruction index (program counter);
 * warp/block-level events leave them at kNoIndex. `arg` is a
 * kind-specific payload documented per kind in docs/OBSERVABILITY.md
 * (operand-log bytes, fault kind, fetch-resume cycle, block id, ...).
 */
struct PipeEvent {
    static constexpr std::uint32_t kNoIndex = UINT32_MAX;

    Cycle cycle = 0;
    std::int16_t sm = -1;
    std::int16_t slot = -1;       ///< thread-block slot; -1 when n/a
    std::int32_t warp = -1;       ///< SM warp index; -1 when n/a
    PipeEventKind kind = PipeEventKind::Fetched;
    std::uint32_t traceIdx = kNoIndex;
    std::uint32_t staticIdx = kNoIndex;
    std::uint64_t arg = 0;
};

/**
 * Observer interface threaded through every pipeline stage. One
 * virtual call per event while attached; never called when detached.
 * Implementations must not mutate simulator state.
 */
class PipelineObserver
{
  public:
    virtual ~PipelineObserver() = default;
    virtual void event(const PipeEvent &e) = 0;
};

/** Keep-everything observer for tests and small traces. */
class RecordingObserver : public PipelineObserver
{
  public:
    void
    event(const PipeEvent &e) override
    {
        events.push_back(e);
    }

    std::vector<PipeEvent> events;
};

/**
 * Bounded-memory observer keeping only the last K events, optionally
 * forwarding every event to a downstream observer (tee). The
 * forward-progress watchdog (gpu::Gpu) uses one to capture the tail of
 * the event stream for LivelockError/DeadlockError diagnostics without
 * growing memory with the run.
 */
class LastKObserver : public PipelineObserver
{
  public:
    explicit LastKObserver(std::size_t k = 64,
                           PipelineObserver *next = nullptr)
        : next_(next), cap_(k ? k : 1)
    {
        buf_.reserve(cap_);
    }

    void
    event(const PipeEvent &e) override
    {
        if (next_)
            next_->event(e);
        if (buf_.size() < cap_) {
            buf_.push_back(e);
        } else {
            buf_[head_] = e;
            head_ = (head_ + 1) % cap_;
        }
    }

    /** The retained events, oldest first. */
    std::vector<PipeEvent> snapshot() const;

    /** One "cycle sm/warp kind trace-idx [arg]" text line per event. */
    std::string render() const;

  private:
    PipelineObserver *next_;
    std::size_t cap_;
    std::size_t head_ = 0; ///< index of the oldest event once full
    std::vector<PipeEvent> buf_;
};

} // namespace gex::obs

#endif // GEX_OBS_OBSERVER_HPP
