#include "obs/chrome_trace.hpp"

#include <map>
#include <string>
#include <tuple>

#include "common/json.hpp"
#include "obs/observer.hpp"

namespace gex::obs {

namespace {

/** Common fields of every trace event. */
void
eventHeader(json::Writer &w, const char *name, const char *ph, Cycle ts,
            const PipeEvent &e)
{
    w.beginObject();
    w.key("name").value(name);
    w.key("ph").value(ph);
    // One simulated cycle = 1 µs of trace time (ts is in µs).
    w.key("ts").value(static_cast<std::uint64_t>(ts));
    w.key("pid").value(static_cast<int>(e.sm));
    // Block-level events carry no warp; park them on a slot track.
    w.key("tid").value(e.warp >= 0 ? e.warp : 1000 + e.slot);
}

} // namespace

void
ChromeTraceWriter::write(std::ostream &os) const
{
    json::Writer w(os, /*indentWidth=*/-1);
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();

    // Process/thread naming metadata (one per SM / per warp seen).
    std::map<int, bool> sms;
    std::map<std::pair<int, int>, bool> tracks;
    for (const PipeEvent &e : events_) {
        if (e.warp < 0)
            continue;
        sms.emplace(e.sm, true);
        tracks.emplace(std::make_pair(static_cast<int>(e.sm), e.warp),
                       true);
    }
    for (const auto &s : sms) {
        w.beginObject();
        w.key("name").value("process_name");
        w.key("ph").value("M");
        w.key("pid").value(s.first);
        w.key("args").beginObject();
        w.key("name").value("SM " + std::to_string(s.first));
        w.endObject();
        w.endObject();
    }
    for (const auto &t : tracks) {
        w.beginObject();
        w.key("name").value("thread_name");
        w.key("ph").value("M");
        w.key("pid").value(t.first.first);
        w.key("tid").value(t.first.second);
        w.key("args").beginObject();
        w.key("name").value("warp " + std::to_string(t.first.second));
        w.endObject();
        w.endObject();
    }

    // Duration slices: one per issue → commit/squash interval of a
    // dynamic instruction. A trace index can be in flight once per
    // (sm, warp) at a time, so that triple keys the open slice.
    std::map<std::tuple<int, int, std::uint32_t>, PipeEvent> open;
    auto slice_name = [&](const PipeEvent &e) {
        if (program_ && e.staticIdx < program_->size())
            return program_->at(e.staticIdx).toString();
        return "pc " + std::to_string(e.staticIdx);
    };
    for (const PipeEvent &e : events_) {
        const auto key = std::make_tuple(static_cast<int>(e.sm), e.warp,
                                         e.traceIdx);
        if (e.kind == PipeEventKind::Issued) {
            open[key] = e;
            continue;
        }
        if (e.kind == PipeEventKind::Committed ||
            e.kind == PipeEventKind::Squashed) {
            auto it = open.find(key);
            if (it != open.end()) {
                eventHeader(w, slice_name(e).c_str(), "X",
                            it->second.cycle, e);
                w.key("dur").value(
                    static_cast<std::uint64_t>(e.cycle -
                                               it->second.cycle));
                w.key("args").beginObject();
                w.key("trace_idx").value(
                    static_cast<std::uint64_t>(e.traceIdx));
                w.key("static_idx").value(
                    static_cast<std::uint64_t>(e.staticIdx));
                w.key("end").value(pipeEventName(e.kind));
                w.endObject();
                w.endObject();
                open.erase(it);
            }
        }
        if (e.kind == PipeEventKind::Committed)
            continue; // fully described by its slice
        // Everything else (and Squashed, marking the kill point) is an
        // instant on the warp's track.
        eventHeader(w, pipeEventName(e.kind), "i", e.cycle, e);
        w.key("s").value("t");
        w.key("args").beginObject();
        if (e.traceIdx != PipeEvent::kNoIndex)
            w.key("trace_idx").value(
                static_cast<std::uint64_t>(e.traceIdx));
        if (e.staticIdx != PipeEvent::kNoIndex)
            w.key("static_idx").value(
                static_cast<std::uint64_t>(e.staticIdx));
        if (e.arg != 0)
            w.key("arg").value(static_cast<std::uint64_t>(e.arg));
        w.endObject();
        w.endObject();
    }

    // Instructions still in flight when recording stopped: zero-length
    // slices so they remain visible.
    for (const auto &o : open) {
        eventHeader(w, slice_name(o.second).c_str(), "X", o.second.cycle,
                    o.second);
        w.key("dur").value(static_cast<std::uint64_t>(0));
        w.key("args").beginObject();
        w.key("end").value("open");
        w.endObject();
        w.endObject();
    }

    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace gex::obs
