/**
 * @file
 * Textual pipeline view: an observer that keeps the last N
 * instruction-lifecycle events in a ring and renders them as a
 * human-readable table — the tool behind the paper's Figure 3/4/6/7
 * style walkthroughs (examples/pipeline_diagrams.cpp) and quick
 * "what did the pipeline just do" debugging.
 */

#ifndef GEX_OBS_PIPELINE_VIEW_HPP
#define GEX_OBS_PIPELINE_VIEW_HPP

#include <cstddef>
#include <ostream>
#include <vector>

#include "isa/program.hpp"
#include "obs/observer.hpp"

namespace gex::obs {

class PipelineView : public PipelineObserver
{
  public:
    /** Keep the most recent @p capacity events. */
    explicit PipelineView(std::size_t capacity = 256);

    /** Optional: annotate rows with disassembly from @p p. */
    void setProgram(const isa::Program *p) { program_ = p; }

    /** Restrict the view to one warp (-1, the default, shows all). */
    void filterWarp(int w) { warpFilter_ = w; }

    void event(const PipeEvent &e) override;

    std::size_t size() const { return count_ < cap_ ? count_ : cap_; }
    std::uint64_t totalEvents() const { return count_; }
    void clear();

    /**
     * Render the retained events, oldest first, one per line:
     *
     *     cycle  sm wp  event             inst
     *      112    0  1  fetched           #5 LD.E R3, [R2]
     */
    void render(std::ostream &os) const;

  private:
    const PipeEvent &at(std::size_t i) const; ///< i-th oldest retained

    std::size_t cap_;
    std::uint64_t count_ = 0; ///< events accepted since clear()
    std::vector<PipeEvent> ring_;
    const isa::Program *program_ = nullptr;
    int warpFilter_ = -1;
};

} // namespace gex::obs

#endif // GEX_OBS_PIPELINE_VIEW_HPP
