/**
 * @file
 * Deterministic fault-injection models: synthetic page-fault patterns
 * layered on top of a VmPolicy's residency presets, so the exception
 * schemes can be stressed under bursty, correlated or adversarial
 * fault regimes that the three paper presets never produce.
 *
 * A FaultModel decides, per page-table walk that would otherwise hit a
 * GPU-resident region, whether to fault it anyway; the SystemMmu then
 * services the injected fault exactly like a first-touch allocation
 * fault (CPU handler, or the GPU-local handler under UC2). Injection
 * composes with any residency policy: organic faults from CpuOwned /
 * Untouched regions are untouched by the injector.
 *
 * Determinism: every decision derives from a CounterRng (inject/rng.hpp)
 * keyed by the campaign seed and the walk/region being decided, so a
 * run's fault pattern is a pure function of (workload, config, seed) —
 * bit-identical at any sweep --jobs count.
 *
 * docs/FAULT_INJECTION.md is the user-facing guide: model taxonomy,
 * parameter reference, the determinism contract, and campaign examples.
 */

#ifndef GEX_INJECT_FAULT_MODEL_HPP
#define GEX_INJECT_FAULT_MODEL_HPP

#include <memory>
#include <string>
#include <unordered_set>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "inject/rng.hpp"

namespace gex::inject {

/** The built-in fault-pattern families. */
enum class ModelKind : std::uint8_t {
    None,       ///< injection disabled (the default)
    Bernoulli,  ///< independent per-walk coin flip at `rate`
    Burst,      ///< two-state Markov chain: calm `rate` / storm `burstRate`
    HotPage,    ///< a `hotFraction` of regions fault `hotBoost`x more often
    FirstTouch, ///< a `rate` fraction of regions fault on first touch only
};

/** Canonical model name ("none", "bernoulli", "burst", ...). */
const char *modelName(ModelKind k);

/**
 * Parse a model from its canonical name ("none" | "bernoulli" |
 * "burst" | "hot-page" | "first-touch"); fatal() on unknown names.
 */
ModelKind modelFromName(const std::string &name);

/**
 * Fault-injection parameters, carried inside vm::VmPolicy so a
 * RunSpec's policy fully describes the fault environment of a run.
 * Defaults leave injection off; enabled() gates every hook, so a
 * default-constructed config is exactly the pre-injection simulator.
 */
struct InjectConfig {
    ModelKind model = ModelKind::None;
    /**
     * Base fault probability per eligible page-table walk (Bernoulli,
     * Burst calm state, HotPage cold regions) or, for FirstTouch, the
     * fraction of regions that fault on their first walk.
     */
    double rate = 0.0;
    /** Campaign seed; equal seeds reproduce identical fault patterns. */
    std::uint64_t seed = 1;

    // --- Burst (Markov fault storm) -----------------------------------
    double burstRate = 0.5;    ///< in-storm fault probability
    double burstEnter = 0.002; ///< P(calm -> storm) per walk
    double burstExit = 0.05;   ///< P(storm -> calm) per walk

    // --- HotPage (spatial concentration) ------------------------------
    double hotFraction = 0.125; ///< fraction of regions that are hot
    double hotBoost = 16.0;     ///< hot-region rate multiplier

    bool enabled() const { return model != ModelKind::None; }
};

/**
 * A fault-pattern generator. decide() is called once per eligible
 * page-table walk (a walk that found its region GPU-resident), in
 * simulation order; implementations may keep state (storm phase,
 * touched-region set) because each timing run owns a private instance.
 */
class FaultModel
{
  public:
    virtual ~FaultModel() = default;
    virtual ModelKind kind() const = 0;
    /**
     * Should the @p walkIdx-th eligible walk, touching @p region
     * (64 KB fault-granularity index), be turned into a fault?
     */
    virtual bool decide(Addr region, std::uint64_t walkIdx) = 0;
};

/** Build the model described by @p cfg (nullptr for ModelKind::None). */
std::unique_ptr<FaultModel> makeModel(const InjectConfig &cfg);

/**
 * Fixed-bucket latency histogram for fault service times, exported as
 * `<prefix>le_1k` ... `<prefix>gt_256k` plus count/sum/max scalars.
 * Buckets are powers of four from 1024 cycles, bracketing the CPU
 * round-trip (~10k) and GPU-local handler (~20k) service latencies.
 */
class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 6; // le_1k..le_256k, gt_256k

    void
    record(Cycle latency)
    {
        ++count_;
        sum_ += latency;
        if (latency > max_)
            max_ = latency;
        Cycle bound = 1024;
        for (int b = 0; b < kBuckets - 1; ++b, bound *= 4) {
            if (latency <= bound) {
                ++buckets_[b];
                return;
            }
        }
        ++buckets_[kBuckets - 1];
    }

    std::uint64_t count() const { return count_; }

    /** Emit `<prefix>count|sum|max|le_*|gt_*` into @p s (add-merged). */
    void collect(StatSet &s, const std::string &prefix) const;

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    Cycle max_ = 0;
};

/**
 * Per-run injection front end: owns the model instance and the walk
 * counter, and keeps the considered/injected tallies. The SystemMmu
 * asks shouldInject() once per walk that found its region resident;
 * everything else in the walk path is unchanged.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const InjectConfig &cfg);

    /** Decide the current walk; advances the walk counter. */
    bool
    shouldInject(Addr region)
    {
        std::uint64_t idx = walkIdx_++;
        if (!model_ || !model_->decide(region, idx))
            return false;
        ++injected_;
        return true;
    }

    const InjectConfig &config() const { return cfg_; }
    /** Eligible (resident-region) walks seen so far. */
    std::uint64_t considered() const { return walkIdx_; }
    std::uint64_t injected() const { return injected_; }

    /** Emit the `inject.*` stat block. */
    void collectStats(StatSet &s) const;

  private:
    InjectConfig cfg_;
    std::unique_ptr<FaultModel> model_;
    std::uint64_t walkIdx_ = 0;
    std::uint64_t injected_ = 0;
};

} // namespace gex::inject

#endif // GEX_INJECT_FAULT_MODEL_HPP
