/**
 * @file
 * Counter-based splittable RNG for the fault-injection subsystem.
 *
 * Every draw is a pure function of (seed, stream, counter): no state
 * advances, so a draw's value depends only on *what* is being decided
 * (which walk, which region), never on how many draws happened before
 * it or on which worker thread performed it. That is the determinism
 * contract behind campaign results being bit-identical at any --jobs
 * (docs/FAULT_INJECTION.md, "Seeding and determinism").
 *
 * Streams partition the draw space so independent decision kinds
 * (fault decision vs. storm transition vs. region hotness) never
 * consume each other's counters; split() derives a child generator
 * whose draws are statistically independent of the parent's.
 */

#ifndef GEX_INJECT_RNG_HPP
#define GEX_INJECT_RNG_HPP

#include <cstdint>

namespace gex::inject {

/** SplitMix64 finalizer: a well-mixed 64-bit permutation. */
constexpr std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * A (seed, stream) pair of a counter-based generator. at(counter) is
 * pure; the object itself is immutable and freely copyable.
 */
class CounterRng
{
  public:
    constexpr CounterRng(std::uint64_t seed, std::uint64_t stream)
        : seed_(seed), stream_(stream)
    {}

    /** The @p counter-th draw of this stream, uniform over 2^64. */
    constexpr std::uint64_t
    at(std::uint64_t counter) const
    {
        return mix64(seed_ ^ mix64(stream_ ^ mix64(counter)));
    }

    /** The @p counter-th draw as a uniform double in [0, 1). */
    constexpr double
    realAt(std::uint64_t counter) const
    {
        return static_cast<double>(at(counter) >> 11) *
               (1.0 / 9007199254740992.0);
    }

    /** Child generator for substream @p key (independent draws). */
    constexpr CounterRng
    split(std::uint64_t key) const
    {
        return CounterRng(mix64(seed_ ^ mix64(key)), stream_);
    }

    constexpr std::uint64_t seed() const { return seed_; }
    constexpr std::uint64_t stream() const { return stream_; }

  private:
    std::uint64_t seed_;
    std::uint64_t stream_;
};

} // namespace gex::inject

#endif // GEX_INJECT_RNG_HPP
