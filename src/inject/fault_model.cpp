#include "inject/fault_model.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace gex::inject {

namespace {

// Stream ids partitioning the CounterRng draw space per decision kind.
constexpr std::uint64_t kStreamDecision = 1;
constexpr std::uint64_t kStreamTransition = 2;
constexpr std::uint64_t kStreamRegion = 3;

class BernoulliModel final : public FaultModel
{
  public:
    explicit BernoulliModel(const InjectConfig &cfg)
        : rate_(cfg.rate), rng_(cfg.seed, kStreamDecision)
    {}

    ModelKind kind() const override { return ModelKind::Bernoulli; }

    bool
    decide(Addr, std::uint64_t walk_idx) override
    {
        return rng_.realAt(walk_idx) < rate_;
    }

  private:
    double rate_;
    CounterRng rng_;
};

/**
 * Two-state Markov chain advanced once per eligible walk: calm state
 * faults at `rate`, storm state at `burstRate`. Storms model the
 * correlated fault trains of a migration burst, where many warps touch
 * newly-unmapped data in a short window — the regime that fills replay
 * queues and drains operand-log partitions.
 */
class BurstModel final : public FaultModel
{
  public:
    explicit BurstModel(const InjectConfig &cfg)
        : cfg_(cfg), decide_(cfg.seed, kStreamDecision),
          transition_(cfg.seed, kStreamTransition)
    {}

    ModelKind kind() const override { return ModelKind::Burst; }

    bool
    decide(Addr, std::uint64_t walk_idx) override
    {
        double t = transition_.realAt(walk_idx);
        if (inStorm_) {
            if (t < cfg_.burstExit)
                inStorm_ = false;
        } else {
            if (t < cfg_.burstEnter)
                inStorm_ = true;
        }
        double p = inStorm_ ? cfg_.burstRate : cfg_.rate;
        return decide_.realAt(walk_idx) < p;
    }

  private:
    InjectConfig cfg_;
    CounterRng decide_;
    CounterRng transition_;
    bool inStorm_ = false;
};

/**
 * Spatial concentration: a seed-chosen `hotFraction` of regions fault
 * at `hotBoost` times the base rate (capped at 1), the rest at the
 * base rate. Hotness is a pure function of (seed, region), so the same
 * regions stay hot for the whole run — faults pile onto the same
 * in-flight fault entries and exercise the join path.
 */
class HotPageModel final : public FaultModel
{
  public:
    explicit HotPageModel(const InjectConfig &cfg)
        : cfg_(cfg), decide_(cfg.seed, kStreamDecision),
          region_(cfg.seed, kStreamRegion)
    {}

    ModelKind kind() const override { return ModelKind::HotPage; }

    bool
    decide(Addr region, std::uint64_t walk_idx) override
    {
        bool hot = region_.realAt(region) < cfg_.hotFraction;
        double p = hot ? std::min(1.0, cfg_.rate * cfg_.hotBoost)
                       : cfg_.rate;
        return decide_.realAt(walk_idx) < p;
    }

  private:
    InjectConfig cfg_;
    CounterRng decide_;
    CounterRng region_;
};

/**
 * First-touch fraction: a seed-chosen `rate` fraction of regions fault
 * on the first eligible walk that touches them, and never again. This
 * reproduces partial first-touch residency (some of the footprint is
 * warm, some is not) without declaring whole buffers untouched.
 */
class FirstTouchModel final : public FaultModel
{
  public:
    explicit FirstTouchModel(const InjectConfig &cfg)
        : rate_(cfg.rate), region_(cfg.seed, kStreamRegion)
    {}

    ModelKind kind() const override { return ModelKind::FirstTouch; }

    bool
    decide(Addr region, std::uint64_t) override
    {
        if (!touched_.insert(region).second)
            return false;
        return region_.realAt(region) < rate_;
    }

  private:
    double rate_;
    CounterRng region_;
    std::unordered_set<Addr> touched_;
};

} // namespace

const char *
modelName(ModelKind k)
{
    switch (k) {
      case ModelKind::None: return "none";
      case ModelKind::Bernoulli: return "bernoulli";
      case ModelKind::Burst: return "burst";
      case ModelKind::HotPage: return "hot-page";
      case ModelKind::FirstTouch: return "first-touch";
    }
    return "?";
}

ModelKind
modelFromName(const std::string &name)
{
    for (ModelKind k : {ModelKind::None, ModelKind::Bernoulli,
                        ModelKind::Burst, ModelKind::HotPage,
                        ModelKind::FirstTouch})
        if (name == modelName(k))
            return k;
    fatal("unknown fault model '%s' (expected none | bernoulli | burst | "
          "hot-page | first-touch)", name.c_str());
}

std::unique_ptr<FaultModel>
makeModel(const InjectConfig &cfg)
{
    switch (cfg.model) {
      case ModelKind::None: return nullptr;
      case ModelKind::Bernoulli:
        return std::make_unique<BernoulliModel>(cfg);
      case ModelKind::Burst: return std::make_unique<BurstModel>(cfg);
      case ModelKind::HotPage: return std::make_unique<HotPageModel>(cfg);
      case ModelKind::FirstTouch:
        return std::make_unique<FirstTouchModel>(cfg);
    }
    panic("unreachable model kind");
}

void
LatencyHistogram::collect(StatSet &s, const std::string &prefix) const
{
    static const char *const names[kBuckets] = {
        "le_1k", "le_4k", "le_16k", "le_64k", "le_256k", "gt_256k",
    };
    s.add(prefix + "count", static_cast<double>(count_));
    s.add(prefix + "sum", static_cast<double>(sum_));
    s.maxOf(prefix + "max", static_cast<double>(max_));
    for (int b = 0; b < kBuckets; ++b)
        s.add(prefix + names[b], static_cast<double>(buckets_[b]));
}

FaultInjector::FaultInjector(const InjectConfig &cfg)
    : cfg_(cfg), model_(makeModel(cfg))
{
}

void
FaultInjector::collectStats(StatSet &s) const
{
    s.set("inject.model", static_cast<double>(cfg_.model));
    s.set("inject.rate", cfg_.rate);
    s.set("inject.seed", static_cast<double>(cfg_.seed));
    s.set("inject.walks_considered", static_cast<double>(walkIdx_));
    s.set("inject.faults_injected", static_cast<double>(injected_));
}

} // namespace gex::inject
