/**
 * @file
 * Set-associative LRU cache with MSHR-based miss tracking, modeled with
 * timestamp reservations (see mem/port.hpp). Used for both the per-SM
 * L1 (virtually addressed, paper Table 1) and the shared L2.
 */

#ifndef GEX_MEM_CACHE_HPP
#define GEX_MEM_CACHE_HPP

#include <algorithm>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "mem/port.hpp"

namespace gex::mem {

struct CacheConfig {
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t ways = 4;
    Cycle latency = 40;
    std::uint32_t mshrs = 32;
    int ports = 1;
    /**
     * Write-allocate + write-back (GPU L2 style): store misses
     * allocate the line dirty (no fetch: warp stores cover full
     * lines); dirty evictions invoke the writeback callback. When
     * false: write-through, no write-allocate (GPU L1 style).
     */
    bool writeAllocate = false;
};

/**
 * Timing-only cache: tags are tracked for hit/miss decisions, data
 * lives in the functional memory image. Misses are forwarded to a
 * lower-level callback; concurrent misses to the same line merge in
 * the MSHRs; MSHR exhaustion back-pressures accesses in time.
 */
class Cache
{
  public:
    /** Lower-level fetch: (line, earliest) -> data-ready cycle. */
    using FetchFn = std::function<Cycle(Addr, Cycle)>;

    /** Dirty-eviction writeback sink: (line, evict time). */
    using WritebackFn = std::function<void(Addr, Cycle)>;

    explicit Cache(const CacheConfig &cfg);

    /** Install the writeback sink (write-allocate caches only). */
    void setWriteback(WritebackFn fn) { writeback_ = std::move(fn); }

    /**
     * Load @p line at @p now (or later under port/MSHR pressure).
     * @return cycle at which the data is available to the requester.
     */
    Cycle load(Addr line, Cycle now, const FetchFn &fetch);

    /**
     * Store to @p line (write-through, no write-allocate). Returns the
     * local acknowledge time; the caller forwards the write traffic to
     * the next level itself (so it can route it to a bandwidth pipe).
     * @param hit_out optionally receives whether the line was present.
     */
    Cycle store(Addr line, Cycle now, bool *hit_out = nullptr);

    /** Probe without timing side effects (tests/diagnostics). */
    bool contains(Addr line) const;

    /**
     * Latest data-ready cycle over all outstanding misses, 0 when
     * none. MSHR entries drain lazily on later accesses, so "nothing
     * in flight at cycle N" is maxPendingReady() <= N, not emptiness
     * (sanitizer drain checks, docs/VALIDATION.md).
     */
    Cycle
    maxPendingReady() const
    {
        Cycle m = 0;
        pendingByLine_.forEach(
            [&m](Addr, const Cycle &ready) { m = std::max(m, ready); });
        return m;
    }

    /** Invalidate everything (kernel boundary). */
    void flush();

    void collectStats(StatSet &s) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t mshrMerges() const { return merges_; }

  private:
    struct Way {
        Addr tag = kBadAddr;
        std::uint64_t lastUse = 0;
        bool dirty = false;
    };

    std::uint64_t setIndex(Addr line) const;
    /** Returns way index of @p line in its set, or -1. */
    int findWay(std::uint64_t set, Addr line) const;
    void touch(std::uint64_t set, int way);
    void insert(std::uint64_t set, Addr line, bool dirty, Cycle now);
    /** Apply MSHR occupancy pressure; may push @p t forward. */
    Cycle acquireMshr(Addr line, Cycle t, Cycle ready);
    void drainMshrs(Cycle now);

    CacheConfig cfg_;
    std::uint64_t numSets_;
    std::vector<Way> ways_;  // numSets * cfg.ways
    Port port_;
    WritebackFn writeback_;
    std::uint64_t useClock_ = 0;
    std::uint64_t writebacks_ = 0;

    // Outstanding misses: per-line ready time for merging (flat
    // open-addressing map: one probe per access, no node churn) plus a
    // heap for occupancy accounting, its backing vector pre-reserved
    // for the MSHR count so steady state never reallocates.
    FlatMap<Cycle> pendingByLine_;
    std::priority_queue<std::pair<Cycle, Addr>,
                        std::vector<std::pair<Cycle, Addr>>,
                        std::greater<>>
        pendingHeap_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t merges_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t mshrStalls_ = 0;
};

} // namespace gex::mem

#endif // GEX_MEM_CACHE_HPP
