/**
 * @file
 * Timestamp-reservation primitives used across the timing model.
 *
 * The memory system is modeled analytically: structural resources hand
 * out *time slots* instead of being ticked every cycle. A Port grants k
 * accesses per cycle; a BandwidthPipe grants byte slots at a configured
 * rate. Reservations are made in simulation-time order by the SM issue
 * loops, so contention and queueing delays are preserved.
 */

#ifndef GEX_MEM_PORT_HPP
#define GEX_MEM_PORT_HPP

#include <queue>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace gex::mem {

/**
 * A pool of @c slots units, each busy for @c hold cycles per grant,
 * FIFO-queued. Models issue ports (slots=k, hold=1) as well as
 * longer-occupancy pools such as the 64 page-table walkers (slots=64,
 * hold=500).
 */
class Port
{
  public:
    explicit Port(int slots = 1, Cycle hold = 1) : hold_(hold)
    {
        GEX_ASSERT(slots >= 1 && hold >= 1);
        for (int i = 0; i < slots; ++i)
            free_.push(0);
    }

    /**
     * Reserve one slot no earlier than @p earliest; returns the cycle
     * the access actually starts (>= earliest, delayed by queueing).
     */
    Cycle
    reserve(Cycle earliest)
    {
        Cycle top = free_.top();
        free_.pop();
        Cycle start = std::max(earliest, top);
        free_.push(start + hold_);
        return start;
    }

    void
    reset()
    {
        size_t n = free_.size();
        free_ = {};
        for (size_t i = 0; i < n; ++i)
            free_.push(0);
    }

  private:
    Cycle hold_;
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>> free_;
};

/**
 * A serialized channel with fixed bandwidth. Time is tracked in Q8
 * fixed point (1/256 cycle) so sub-cycle transfer slots (e.g. a 128 B
 * line at 256 B/cycle) accumulate exactly.
 */
class BandwidthPipe
{
  public:
    /** @param bytes_per_cycle channel bandwidth (1 GHz clock domain) */
    explicit BandwidthPipe(double bytes_per_cycle)
        : bytesPerCycleQ8_(static_cast<std::uint64_t>(bytes_per_cycle * 256))
    {
        GEX_ASSERT(bytesPerCycleQ8_ > 0);
    }

    /**
     * Occupy the channel for @p bytes starting no earlier than
     * @p earliest; returns the cycle the transfer finishes.
     */
    Cycle
    transfer(Cycle earliest, std::uint64_t bytes)
    {
        std::uint64_t startQ8 =
            std::max(nextQ8_, static_cast<std::uint64_t>(earliest) << 8);
        std::uint64_t durQ8 = (bytes << 16) / bytesPerCycleQ8_;
        if (durQ8 == 0)
            durQ8 = 1;
        nextQ8_ = startQ8 + durQ8;
        totalBytes_ += bytes;
        return (nextQ8_ + 255) >> 8;
    }

    std::uint64_t totalBytes() const { return totalBytes_; }

    void
    reset()
    {
        nextQ8_ = 0;
        totalBytes_ = 0;
    }

  private:
    std::uint64_t bytesPerCycleQ8_;
    std::uint64_t nextQ8_ = 0;
    std::uint64_t totalBytes_ = 0;
};

} // namespace gex::mem

#endif // GEX_MEM_PORT_HPP
