/**
 * @file
 * Simple DRAM model: fixed access latency plus a shared bandwidth pipe
 * (paper Table 1: 256 GB/s, 200-cycle latency).
 */

#ifndef GEX_MEM_DRAM_HPP
#define GEX_MEM_DRAM_HPP

#include "common/stats.hpp"
#include "mem/port.hpp"

namespace gex::mem {

class Dram
{
  public:
    Dram(double bytes_per_cycle, Cycle latency)
        : pipe_(bytes_per_cycle), latency_(latency)
    {}

    /** Read one cache line; returns data-ready time. */
    Cycle
    readLine(Cycle earliest)
    {
        ++reads_;
        return pipe_.transfer(earliest, kLineSize) + latency_;
    }

    /** Write one cache line; returns completion (for bandwidth only). */
    Cycle
    writeLine(Cycle earliest)
    {
        ++writes_;
        return pipe_.transfer(earliest, kLineSize) + latency_;
    }

    /**
     * Bulk traffic (context save/restore, page migration fill):
     * occupies bandwidth; returns completion time.
     */
    Cycle
    bulkTransfer(Cycle earliest, std::uint64_t bytes)
    {
        return pipe_.transfer(earliest, bytes) + latency_;
    }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t totalBytes() const { return pipe_.totalBytes(); }

    void
    collectStats(StatSet &s) const
    {
        s.set("dram.reads", static_cast<double>(reads_));
        s.set("dram.writes", static_cast<double>(writes_));
        s.set("dram.bytes", static_cast<double>(pipe_.totalBytes()));
    }

  private:
    BandwidthPipe pipe_;
    Cycle latency_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace gex::mem

#endif // GEX_MEM_DRAM_HPP
