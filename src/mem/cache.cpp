#include "mem/cache.hpp"

namespace gex::mem {

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg), numSets_(cfg.sizeBytes / (kLineSize * cfg.ways)),
      ways_(numSets_ * cfg.ways), port_(cfg.ports)
{
    GEX_ASSERT(numSets_ > 0, "cache %s too small", cfg.name.c_str());
    // Steady-state occupancy is bounded by the MSHR count (entries
    // expire lazily, so keep headroom); sizing up front keeps the miss
    // path allocation-free.
    pendingByLine_.reserve(cfg.mshrs * 2);
    std::vector<std::pair<Cycle, Addr>> backing;
    backing.reserve(cfg.mshrs * 2);
    pendingHeap_ = decltype(pendingHeap_)(std::greater<>(),
                                          std::move(backing));
}

std::uint64_t
Cache::setIndex(Addr line) const
{
    return (line / kLineSize) % numSets_;
}

int
Cache::findWay(std::uint64_t set, Addr line) const
{
    const Way *base = &ways_[set * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w)
        if (base[w].tag == line)
            return static_cast<int>(w);
    return -1;
}

void
Cache::touch(std::uint64_t set, int way)
{
    ways_[set * cfg_.ways + static_cast<std::uint64_t>(way)].lastUse =
        ++useClock_;
}

void
Cache::insert(std::uint64_t set, Addr line, bool dirty, Cycle now)
{
    Way *base = &ways_[set * cfg_.ways];
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < cfg_.ways; ++w)
        if (base[w].lastUse < base[victim].lastUse)
            victim = w;
    if (base[victim].dirty && base[victim].tag != kBadAddr) {
        ++writebacks_;
        if (writeback_)
            writeback_(base[victim].tag, now);
    }
    base[victim].tag = line;
    base[victim].lastUse = ++useClock_;
    base[victim].dirty = dirty;
}

void
Cache::drainMshrs(Cycle now)
{
    while (!pendingHeap_.empty() && pendingHeap_.top().first <= now) {
        auto [ready, line] = pendingHeap_.top();
        pendingHeap_.pop();
        const Cycle *p = pendingByLine_.find(line);
        if (p && *p == ready)
            pendingByLine_.erase(line);
    }
}

Cycle
Cache::acquireMshr(Addr line, Cycle t, Cycle ready)
{
    // Occupancy back-pressure: wait for the earliest completion when
    // all MSHRs are busy at time t.
    while (pendingHeap_.size() >= cfg_.mshrs &&
           pendingHeap_.top().first > t) {
        ++mshrStalls_;
        t = pendingHeap_.top().first;
    }
    drainMshrs(t);
    pendingByLine_[line] = ready;
    pendingHeap_.emplace(ready, line);
    return t;
}

Cycle
Cache::load(Addr line, Cycle now, const FetchFn &fetch)
{
    Cycle start = port_.reserve(now);
    drainMshrs(start);

    std::uint64_t set = setIndex(line);
    int way = findWay(set, line);
    // Tags are installed when the miss is issued, so a "hit" may be on
    // a line whose fill is still in flight: such accesses merge into
    // the outstanding miss and see its completion time.
    const Cycle *pending = pendingByLine_.find(line);
    if (pending && *pending > start + cfg_.latency) {
        ++merges_;
        if (way >= 0)
            touch(set, way);
        return *pending;
    }
    if (way >= 0) {
        ++hits_;
        touch(set, way);
        return start + cfg_.latency;
    }

    ++misses_;
    // Tag lookup happens before the miss goes below; the fill latency
    // is covered by the lower level's own latency.
    Cycle below_start = start + cfg_.latency;
    Cycle ready = fetch(line, below_start);
    acquireMshr(line, start, ready);
    // The victim writeback is charged at miss time, not fill time:
    // bandwidth reservations must stay (roughly) monotone in time.
    insert(set, line, false, below_start);
    return ready;
}

Cycle
Cache::store(Addr line, Cycle now, bool *hit_out)
{
    Cycle start = port_.reserve(now);
    ++stores_;
    std::uint64_t set = setIndex(line);
    int way = findWay(set, line);
    if (way >= 0) {
        touch(set, way);
        if (cfg_.writeAllocate)
            ways_[set * cfg_.ways + static_cast<std::uint64_t>(way)]
                .dirty = true;
    } else if (cfg_.writeAllocate) {
        // Full-line warp store: allocate dirty without a fill.
        insert(set, line, true, start + cfg_.latency);
    }
    if (hit_out)
        *hit_out = way >= 0;
    return start + cfg_.latency;
}

bool
Cache::contains(Addr line) const
{
    return findWay(setIndex(line), line) >= 0;
}

void
Cache::flush()
{
    for (Way &w : ways_)
        w = Way{};
    pendingByLine_.clear();
    while (!pendingHeap_.empty()) // keeps the reserved backing storage
        pendingHeap_.pop();
}

void
Cache::collectStats(StatSet &s) const
{
    // add(), not set(): per-SM instances accumulate into one total.
    const std::string p = cfg_.name + ".";
    s.add(p + "hits", static_cast<double>(hits_));
    s.add(p + "misses", static_cast<double>(misses_));
    s.add(p + "mshr_merges", static_cast<double>(merges_));
    s.add(p + "stores", static_cast<double>(stores_));
    s.add(p + "mshr_stalls", static_cast<double>(mshrStalls_));
    s.add(p + "writebacks", static_cast<double>(writebacks_));
}

} // namespace gex::mem
