/**
 * @file
 * Minimal leveled logging plus fatal/panic helpers in the gem5 spirit:
 * panic() for simulator bugs, fatal() for user/configuration errors.
 */

#ifndef GEX_COMMON_LOG_HPP
#define GEX_COMMON_LOG_HPP

#include <cstdarg>
#include <string>

namespace gex {

enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/** Global log level; defaults to Warn so library use is silent-ish. */
LogLevel logLevel();
void setLogLevel(LogLevel lvl);

/** printf-style log at the given level; a newline is appended. */
void logf(LogLevel lvl, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Abort with a message: the simulator itself is broken (invariant
 * violation). Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user error: something unsupported or inconsistent was asked
 * for (bad configuration, malformed kernel). Throws gex::ConfigError
 * (common/error.hpp) so harnesses can survive a bad grid point and
 * tools can catch at the top level; never returns normally.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Assertion failure backend for GEX_ASSERT. Never returns. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

#define GEX_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond))                                                       \
            ::gex::panicAssert(#cond, __FILE__, __LINE__, "" __VA_ARGS__); \
    } while (0)

} // namespace gex

#endif // GEX_COMMON_LOG_HPP
