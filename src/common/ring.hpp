/**
 * @file
 * Ring: a growable FIFO ring buffer with inline small-buffer storage,
 * replacing std::deque in the SM's per-warp hot state (instruction
 * buffers, replay queues, saved-warp context). A std::deque allocates
 * its map and at least one node on first use and scatters entries
 * across heap chunks; Ring keeps the common case (a handful of
 * entries) inside the owning object, so scanning 64 warps per cycle
 * touches contiguous memory and empty()/front() are two loads.
 *
 * Restricted to trivially copyable element types: that keeps growth
 * and copies memmove-simple and is all the SM state needs.
 */

#ifndef GEX_COMMON_RING_HPP
#define GEX_COMMON_RING_HPP

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "common/log.hpp"

namespace gex {

template <typename T, std::size_t InlineN = 8>
class Ring
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "Ring is for trivially copyable element types");
    static_assert(InlineN >= 2 && (InlineN & (InlineN - 1)) == 0,
                  "InlineN must be a power of two");

  public:
    Ring() = default;

    Ring(const Ring &o) { copyFrom(o); }

    Ring &
    operator=(const Ring &o)
    {
        if (this != &o) {
            release();
            copyFrom(o);
        }
        return *this;
    }

    Ring(Ring &&o) noexcept { moveFrom(o); }

    Ring &
    operator=(Ring &&o) noexcept
    {
        if (this != &o) {
            release();
            moveFrom(o);
        }
        return *this;
    }

    ~Ring() { release(); }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    /** Slots available before the next growth (power of two). */
    std::size_t capacity() const { return cap_; }
    bool onHeap() const { return buf_ != inline_; }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Grow so @p n elements fit without reallocation. */
    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    T &
    operator[](std::size_t i)
    {
        GEX_ASSERT(i < size_);
        return buf_[(head_ + i) & (cap_ - 1)];
    }

    const T &
    operator[](std::size_t i) const
    {
        GEX_ASSERT(i < size_);
        return buf_[(head_ + i) & (cap_ - 1)];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[size_ - 1]; }
    const T &back() const { return (*this)[size_ - 1]; }

    void
    push_back(const T &v)
    {
        if (size_ == cap_)
            grow(cap_ * 2);
        buf_[(head_ + size_) & (cap_ - 1)] = v;
        ++size_;
    }

    void
    pop_front()
    {
        GEX_ASSERT(size_ > 0);
        head_ = (head_ + 1) & (cap_ - 1);
        --size_;
    }

    void
    pop_back()
    {
        GEX_ASSERT(size_ > 0);
        --size_;
    }

    /** Insert @p v before position @p pos (0..size()), shifting the tail. */
    void
    insert(std::size_t pos, const T &v)
    {
        GEX_ASSERT(pos <= size_);
        if (size_ == cap_)
            grow(cap_ * 2);
        const std::size_t mask = cap_ - 1;
        for (std::size_t j = size_; j > pos; --j)
            buf_[(head_ + j) & mask] = buf_[(head_ + j - 1) & mask];
        buf_[(head_ + pos) & mask] = v;
        ++size_;
    }

    /**
     * First position whose element is not less than @p v, assuming the
     * ring's contents are sorted ascending (the replay queue
     * invariant). Standard binary search over operator[].
     */
    std::size_t
    lowerBound(const T &v) const
    {
        std::size_t lo = 0, hi = size_;
        while (lo < hi) {
            std::size_t mid = lo + (hi - lo) / 2;
            if ((*this)[mid] < v)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

  private:
    void
    copyFrom(const Ring &o)
    {
        if (o.size_ <= InlineN) {
            buf_ = inline_;
            cap_ = InlineN;
        } else {
            cap_ = InlineN;
            while (cap_ < o.size_)
                cap_ *= 2;
            buf_ = new T[cap_];
        }
        head_ = 0;
        size_ = o.size_;
        for (std::size_t i = 0; i < size_; ++i)
            buf_[i] = o[i];
    }

    void
    moveFrom(Ring &o)
    {
        if (o.onHeap()) {
            buf_ = o.buf_;
            cap_ = o.cap_;
            head_ = o.head_;
            size_ = o.size_;
            o.buf_ = o.inline_;
            o.cap_ = InlineN;
        } else {
            buf_ = inline_;
            cap_ = InlineN;
            head_ = o.head_;
            size_ = o.size_;
            std::memcpy(inline_, o.inline_, sizeof inline_);
        }
        o.head_ = 0;
        o.size_ = 0;
    }

    void
    grow(std::size_t min_cap)
    {
        std::size_t ncap = cap_;
        while (ncap < min_cap)
            ncap *= 2;
        T *nbuf = new T[ncap];
        for (std::size_t i = 0; i < size_; ++i)
            nbuf[i] = buf_[(head_ + i) & (cap_ - 1)];
        if (onHeap())
            delete[] buf_;
        buf_ = nbuf;
        cap_ = ncap;
        head_ = 0;
    }

    void
    release()
    {
        if (onHeap()) {
            delete[] buf_;
            buf_ = inline_;
            cap_ = InlineN;
        }
        head_ = 0;
        size_ = 0;
    }

    T inline_[InlineN];
    T *buf_ = inline_;
    std::size_t cap_ = InlineN;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace gex

#endif // GEX_COMMON_RING_HPP
