#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"

namespace gex::json {

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
formatNumber(double v)
{
    GEX_ASSERT(std::isfinite(v), "NaN/Inf cannot be represented in JSON");
    // Integral values within uint64/int64 range print exactly without
    // an exponent; everything else gets the shortest round-trip form.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        return buf;
    }
    char buf[40];
    // %.17g always round-trips an IEEE double; try shorter first.
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    return buf;
}

// --- Writer -----------------------------------------------------------

void
Writer::raw(const std::string &text)
{
    os_ << text;
}

void
Writer::indent()
{
    if (indentWidth_ < 0)
        return; // compact mode: no newlines or indentation
    os_ << '\n';
    for (std::size_t i = 0;
         i < scopes_.size() * static_cast<std::size_t>(indentWidth_); ++i)
        os_ << ' ';
}

void
Writer::preValue()
{
    if (scopes_.empty()) {
        GEX_ASSERT(!wroteTop_, "JSON document already complete");
        wroteTop_ = true;
        return;
    }
    if (scopes_.back() == Scope::Object) {
        GEX_ASSERT(pendingKey_, "value inside an object needs key() first");
        pendingKey_ = false;
        return;
    }
    if (scopeHasItems_.back())
        raw(",");
    scopeHasItems_.back() = true;
    indent();
}

Writer &
Writer::key(const std::string &k)
{
    GEX_ASSERT(!scopes_.empty() && scopes_.back() == Scope::Object,
               "key() outside an object");
    GEX_ASSERT(!pendingKey_, "key() twice without a value");
    if (scopeHasItems_.back())
        raw(",");
    scopeHasItems_.back() = true;
    indent();
    raw(indentWidth_ < 0 ? "\"" + escape(k) + "\":"
                         : "\"" + escape(k) + "\": ");
    pendingKey_ = true;
    return *this;
}

Writer &
Writer::beginObject()
{
    preValue();
    raw("{");
    scopes_.push_back(Scope::Object);
    scopeHasItems_.push_back(false);
    return *this;
}

Writer &
Writer::endObject()
{
    GEX_ASSERT(!scopes_.empty() && scopes_.back() == Scope::Object,
               "endObject() without matching beginObject()");
    GEX_ASSERT(!pendingKey_, "endObject() with a dangling key");
    bool had = scopeHasItems_.back();
    scopes_.pop_back();
    scopeHasItems_.pop_back();
    if (had)
        indent();
    raw("}");
    return *this;
}

Writer &
Writer::beginArray()
{
    preValue();
    raw("[");
    scopes_.push_back(Scope::Array);
    scopeHasItems_.push_back(false);
    return *this;
}

Writer &
Writer::endArray()
{
    GEX_ASSERT(!scopes_.empty() && scopes_.back() == Scope::Array,
               "endArray() without matching beginArray()");
    bool had = scopeHasItems_.back();
    scopes_.pop_back();
    scopeHasItems_.pop_back();
    if (had)
        indent();
    raw("]");
    return *this;
}

Writer &
Writer::value(const std::string &v)
{
    preValue();
    raw("\"" + escape(v) + "\"");
    return *this;
}

Writer &
Writer::value(const char *v)
{
    return value(std::string(v));
}

Writer &
Writer::value(double v)
{
    preValue();
    raw(formatNumber(v));
    return *this;
}

Writer &
Writer::value(std::uint64_t v)
{
    preValue();
    raw(std::to_string(v));
    return *this;
}

Writer &
Writer::value(int v)
{
    preValue();
    raw(std::to_string(v));
    return *this;
}

Writer &
Writer::value(bool v)
{
    preValue();
    raw(v ? "true" : "false");
    return *this;
}

Writer &
Writer::null()
{
    preValue();
    raw("null");
    return *this;
}

// --- Value ------------------------------------------------------------

const Value *
Value::find(const std::string &k) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = members.find(k);
    return it == members.end() ? nullptr : &it->second;
}

double
Value::asNumber() const
{
    GEX_ASSERT(kind == Kind::Number, "JSON value is not a number");
    return number;
}

const std::string &
Value::asString() const
{
    GEX_ASSERT(kind == Kind::String, "JSON value is not a string");
    return str;
}

// --- Parser -----------------------------------------------------------

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {}

    std::unique_ptr<Value>
    parseDocument()
    {
        auto v = std::make_unique<Value>();
        if (!parseValue(*v))
            return nullptr;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            return nullptr;
        }
        return v;
    }

  private:
    void
    fail(const std::string &msg)
    {
        if (error_ && error_->empty())
            *error_ = msg + " at offset " + std::to_string(pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"')) {
            fail("expected string");
            return false;
        }
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                // A raw control byte inside a string is how a torn or
                // corrupted document usually manifests; JSON requires
                // these to be \u-escaped.
                --pos_;
                fail("unescaped control character in string");
                return false;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size()) {
                      fail("truncated \\u escape");
                      return false;
                  }
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = text_[pos_++];
                      cp <<= 4;
                      if (h >= '0' && h <= '9') cp |= h - '0';
                      else if (h >= 'a' && h <= 'f') cp |= h - 'a' + 10;
                      else if (h >= 'A' && h <= 'F') cp |= h - 'A' + 10;
                      else {
                          fail("bad \\u escape digit");
                          return false;
                      }
                  }
                  // UTF-8 encode the BMP code point (no surrogate-pair
                  // combining; the writer never emits surrogates).
                  if (cp < 0x80) {
                      out += static_cast<char>(cp);
                  } else if (cp < 0x800) {
                      out += static_cast<char>(0xC0 | (cp >> 6));
                      out += static_cast<char>(0x80 | (cp & 0x3F));
                  } else {
                      out += static_cast<char>(0xE0 | (cp >> 12));
                      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                      out += static_cast<char>(0x80 | (cp & 0x3F));
                  }
                  break;
              }
              default:
                fail("unknown escape");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseValue(Value &v)
    {
        // Containers recurse once per nesting level; a pathological
        // "[[[[..." document must produce a parse error, not exhaust
        // the thread stack. 200 levels is far beyond any document the
        // writer emits.
        if (depth_ >= kMaxDepth) {
            fail("nesting deeper than 200 levels");
            return false;
        }
        ++depth_;
        bool ok = parseValueInner(v);
        --depth_;
        return ok;
    }

    bool
    parseValueInner(Value &v)
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            v.kind = Value::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string k;
                if (!parseString(k))
                    return false;
                if (!consume(':')) {
                    fail("expected ':' in object");
                    return false;
                }
                Value member;
                if (!parseValue(member))
                    return false;
                v.members.emplace(std::move(k), std::move(member));
                if (consume(','))
                    { skipWs(); continue; }
                if (consume('}'))
                    return true;
                fail("expected ',' or '}' in object");
                return false;
            }
        }
        if (c == '[') {
            ++pos_;
            v.kind = Value::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                Value item;
                if (!parseValue(item))
                    return false;
                v.items.push_back(std::move(item));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                fail("expected ',' or ']' in array");
                return false;
            }
        }
        if (c == '"') {
            v.kind = Value::Kind::String;
            return parseString(v.str);
        }
        if (literal("true")) {
            v.kind = Value::Kind::Bool;
            v.boolean = true;
            return true;
        }
        if (literal("false")) {
            v.kind = Value::Kind::Bool;
            v.boolean = false;
            return true;
        }
        if (literal("null")) {
            v.kind = Value::Kind::Null;
            return true;
        }
        // Number: strtod accepts a superset of JSON numbers; reject the
        // parts JSON forbids (leading '+', hex, inf/nan).
        if (c == '-' || (c >= '0' && c <= '9')) {
            const char *start = text_.c_str() + pos_;
            char *end = nullptr;
            double d = std::strtod(start, &end);
            if (end == start || std::isinf(d) || std::isnan(d)) {
                fail("bad number");
                return false;
            }
            // strtod happily consumes C hex floats ("0x1A"), which
            // JSON forbids.
            for (const char *p = start; p != end; ++p)
                if (*p == 'x' || *p == 'X') {
                    fail("hex numbers are not JSON");
                    return false;
                }
            v.kind = Value::Kind::Number;
            v.number = d;
            pos_ += static_cast<std::size_t>(end - start);
            return true;
        }
        fail("unexpected character");
        return false;
    }

    static constexpr int kMaxDepth = 200;

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

std::unique_ptr<Value>
parse(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    Parser p(text, error);
    return p.parseDocument();
}

} // namespace gex::json
