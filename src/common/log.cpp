#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"

namespace gex {

namespace {
LogLevel g_level = LogLevel::Warn;

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel lvl)
{
    g_level = lvl;
}

void
logf(LogLevel lvl, const char *fmt, ...)
{
    if (static_cast<int>(lvl) > static_cast<int>(g_level))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "[gex] %s\n", msg.c_str());
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "[gex PANIC] %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw ConfigError(msg);
}

void
panicAssert(const char *cond, const char *file, int line, const char *fmt,
            ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "[gex PANIC] assertion failed: %s (%s:%d) %s\n",
                 cond, file, line, msg.c_str());
    std::abort();
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace gex
