/**
 * @file
 * Persistent worker pool for fine-grained per-cycle fan-out: run(n)
 * executes fn(ctx, i) for i in [0, n) across the pool and returns when
 * every index has completed. Built for the phased SM tick engine
 * (gpu::Gpu::run), where one dispatch per simulated cycle must cost on
 * the order of a microsecond, so the design choices differ from the
 * coarse-grained harness::SweepEngine pool:
 *
 *  - The calling thread participates: it drains indices alongside the
 *    workers, so a pool of T threads spawns only T-1. On a machine
 *    with fewer cores than threads (or a pool bigger than the work),
 *    the caller simply does everything itself and never blocks on a
 *    descheduled worker.
 *  - Indices are claimed from a shared atomic counter (work stealing),
 *    not pre-chunked, so a stalled worker can only delay the indices
 *    it already claimed.
 *  - Workers spin briefly on an epoch counter between dispatches
 *    (consecutive simulated cycles arrive within microseconds) and
 *    fall back to a condition variable when idle, so an idle pool
 *    costs no CPU.
 *
 * Completion is detected by a per-index done count, never by queue
 * emptiness, so run() returning means every fn call has finished and
 * its writes are visible to the caller (release/acquire on done_).
 * The assignment of indices to threads is scheduling-dependent; callers
 * needing determinism must make fn(i) touch index-private state only,
 * which is exactly the contract of the SM-local tick phase.
 */

#ifndef GEX_COMMON_TASK_POOL_HPP
#define GEX_COMMON_TASK_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace gex::common {

class TaskPool
{
  public:
    /** Plain function pointer: one indirect call per index, and a
     *  capture-less lambda converts implicitly. */
    using Fn = void (*)(void *ctx, int index);

    /** @p threads total workers including the caller (min 1). */
    explicit TaskPool(int threads)
    {
        int spawn = threads > 1 ? threads - 1 : 0;
        workers_.reserve(static_cast<std::size_t>(spawn));
        for (int t = 0; t < spawn; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~TaskPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_.store(true, std::memory_order_release);
            epoch_.fetch_add(1, std::memory_order_release);
        }
        cv_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    int threads() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /** Execute fn(ctx, 0..n-1); returns once all calls completed. */
    void
    run(int n, Fn fn, void *ctx)
    {
        if (n <= 0)
            return;
        if (workers_.empty()) {
            for (int i = 0; i < n; ++i)
                fn(ctx, i);
            return;
        }
        fn_ = fn;
        ctx_ = ctx;
        n_ = n;
        next_.store(0, std::memory_order_relaxed);
        done_.store(0, std::memory_order_relaxed);
        {
            // The lock pairs with the cv_ predicate check so a worker
            // moving to sleep cannot miss the epoch bump.
            std::lock_guard<std::mutex> lock(mu_);
            epoch_.fetch_add(1, std::memory_order_release);
        }
        cv_.notify_all();
        drain();
        // Queue emptiness is not completion: a worker may hold a
        // claimed index. Wait for the count, yielding so an
        // oversubscribed worker can finish its claim.
        while (done_.load(std::memory_order_acquire) < n)
            std::this_thread::yield();
    }

  private:
    void
    drain()
    {
        for (;;) {
            int i = next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= n_)
                return;
            fn_(ctx_, i);
            done_.fetch_add(1, std::memory_order_release);
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = epoch_.load(std::memory_order_acquire);
        for (;;) {
            // A worker first scheduled only after ~TaskPool ran (tiny
            // pool lifetime on a loaded host) starts with seen already
            // at the final epoch, so no further bump or notify is
            // coming: stop_ must gate the wait itself, not just the
            // post-wakeup path.
            if (stop_.load(std::memory_order_acquire))
                return;
            int spins = 0;
            while (epoch_.load(std::memory_order_acquire) == seen) {
                if (stop_.load(std::memory_order_acquire))
                    return;
                if (++spins < kSpinsBeforeSleep) {
                    std::this_thread::yield();
                } else {
                    std::unique_lock<std::mutex> lock(mu_);
                    cv_.wait(lock, [&] {
                        return stop_.load(std::memory_order_relaxed) ||
                               epoch_.load(std::memory_order_relaxed) !=
                                   seen;
                    });
                    break;
                }
            }
            seen = epoch_.load(std::memory_order_acquire);
            if (stop_.load(std::memory_order_relaxed))
                return;
            drain();
        }
    }

    static constexpr int kSpinsBeforeSleep = 1024;

    // Job slots: written by run() before the epoch release-store,
    // read by workers after their acquire-load of epoch_.
    Fn fn_ = nullptr;
    void *ctx_ = nullptr;
    int n_ = 0;

    alignas(64) std::atomic<int> next_{0};
    alignas(64) std::atomic<int> done_{0};
    alignas(64) std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> stop_{false};

    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::thread> workers_;
};

} // namespace gex::common

#endif // GEX_COMMON_TASK_POOL_HPP
