/**
 * @file
 * Fundamental type aliases and constants shared by every gex module.
 */

#ifndef GEX_COMMON_TYPES_HPP
#define GEX_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace gex {

/** Simulated clock cycle count (1 GHz SM domain throughout). */
using Cycle = std::uint64_t;

/** Virtual (and, in this simulator, physical) byte address. */
using Addr = std::uint64_t;

/** Per-warp lane activity mask; bit i set means lane i is active. */
using WarpMask = std::uint32_t;

/** Number of SIMT lanes in a warp. */
inline constexpr int kWarpSize = 32;

/** Mask with every lane active. */
inline constexpr WarpMask kFullMask = 0xffffffffu;

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid addresses. */
inline constexpr Addr kBadAddr = std::numeric_limits<Addr>::max();

/** Page size in bytes (paper: 4 KB GPU pages). */
inline constexpr Addr kPageSize = 4096;

/** Fault handling / migration granularity (paper: 64 KB). */
inline constexpr Addr kDefaultMigrationBytes = 64 * 1024;

/** Cache line size in bytes (paper Table 1: 128 B lines). */
inline constexpr Addr kLineSize = 128;

/** Bytes in one architectural register (8 B: the ISA is 64-bit). */
inline constexpr int kRegBytes = 8;

/** Convert an address to its page number. */
constexpr Addr
pageOf(Addr a)
{
    return a / kPageSize;
}

/** Convert an address to its cache line address (aligned down). */
constexpr Addr
lineOf(Addr a)
{
    return a & ~(kLineSize - 1);
}

} // namespace gex

#endif // GEX_COMMON_TYPES_HPP
