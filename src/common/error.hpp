/**
 * @file
 * Structured error taxonomy for the simulator library. Library code
 * throws a GexError subclass instead of killing the process, so
 * harnesses (src/harness) can classify one grid point's failure and
 * keep a multi-hour campaign alive, and tools can catch at the top
 * level and render one actionable report with a stable exit code.
 *
 * The taxonomy (docs/ROBUSTNESS.md has the user-facing contract):
 *
 *   ConfigError          bad user input: unknown scheme/model/workload
 *                        names, malformed kasm, invalid flag values
 *   TraceError           the functional trace is unusable: functional
 *                        deadlock, runaway warp, trace/kernel mismatch
 *   DeadlockError        timing simulation wedged: warps resident but
 *                        no work and no future events
 *   LivelockError        the forward-progress watchdog tripped: the
 *                        machine keeps ticking but nothing commits
 *   CycleBudgetExceeded  the run crossed GpuConfig::maxCycles
 *   InvariantError       a runtime self-check tripped: the invariant
 *                        sanitizer or architectural oracle (--check,
 *                        docs/VALIDATION.md) caught the simulator
 *                        violating a modeled-hardware invariant
 *
 * panic() / GEX_ASSERT remain aborting: they flag simulator bugs, not
 * survivable events. fatal() (common/log.hpp) throws ConfigError.
 */

#ifndef GEX_COMMON_ERROR_HPP
#define GEX_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace gex {

/**
 * Where in the simulated machine an error was detected. Fields that do
 * not apply stay at their defaults and are omitted from reports.
 */
struct ErrorContext {
    Cycle cycle = kNoCycle; ///< global cycle at detection
    int sm = -1;            ///< SM index, when one is implicated
    int warp = -1;          ///< warp index within that SM
    std::string scheme;     ///< exception scheme of the run, if known
    std::string workload;   ///< workload name, if known

    /** "cycle 1234, sm 2, warp 7, scheme replay-queue" (set fields). */
    std::string describe() const;
};

/**
 * Base of every structured simulator error. Carries a one-line message
 * (what()), machine context, and an optional multi-line diagnostics
 * bundle (per-warp state dumps, recent pipeline events) that report()
 * renders after the headline.
 */
class GexError : public std::runtime_error
{
  public:
    GexError(std::string kind, const std::string &message,
             ErrorContext ctx = {}, std::string diagnostics = {});

    /** Stable taxonomy name ("ConfigError", "LivelockError", ...). */
    const std::string &kind() const { return kind_; }
    const ErrorContext &context() const { return ctx_; }
    /** Multi-line diagnostic text bundle; empty when none captured. */
    const std::string &diagnostics() const { return diag_; }

    /**
     * Render the full actionable report: "<kind>: <message>", the
     * context line when any field is set, then the diagnostics bundle.
     */
    std::string report() const;

  private:
    std::string kind_;
    ErrorContext ctx_;
    std::string diag_;
};

/** The user asked for something unsupported or inconsistent. */
class ConfigError : public GexError
{
  public:
    explicit ConfigError(const std::string &message, ErrorContext ctx = {})
        : GexError("ConfigError", message, std::move(ctx))
    {}
};

/** The functional trace (or its kernel) is unusable for timing. */
class TraceError : public GexError
{
  public:
    explicit TraceError(const std::string &message, ErrorContext ctx = {},
                        std::string diagnostics = {})
        : GexError("TraceError", message, std::move(ctx),
                   std::move(diagnostics))
    {}
};

/** Timing simulation wedged: no work, no events, warps resident. */
class DeadlockError : public GexError
{
  public:
    explicit DeadlockError(const std::string &message, ErrorContext ctx = {},
                           std::string diagnostics = {})
        : GexError("DeadlockError", message, std::move(ctx),
                   std::move(diagnostics))
    {}
};

/** Forward-progress watchdog: ticking without committing. */
class LivelockError : public GexError
{
  public:
    explicit LivelockError(const std::string &message, ErrorContext ctx = {},
                           std::string diagnostics = {})
        : GexError("LivelockError", message, std::move(ctx),
                   std::move(diagnostics))
    {}
};

/** The run crossed the hard GpuConfig::maxCycles budget. */
class CycleBudgetExceeded : public GexError
{
  public:
    explicit CycleBudgetExceeded(const std::string &message,
                                 ErrorContext ctx = {},
                                 std::string diagnostics = {})
        : GexError("CycleBudgetExceeded", message, std::move(ctx),
                   std::move(diagnostics))
    {}
};

/**
 * A runtime self-check tripped: the invariant sanitizer or the
 * architectural oracle (src/check, enabled by --check) detected the
 * simulator violating an invariant the modeled hardware guarantees.
 * Unlike panic(), this is survivable — fuzz campaigns catch it,
 * shrink the failing case and keep going (docs/VALIDATION.md).
 */
class InvariantError : public GexError
{
  public:
    explicit InvariantError(const std::string &message,
                            ErrorContext ctx = {},
                            std::string diagnostics = {})
        : GexError("InvariantError", message, std::move(ctx),
                   std::move(diagnostics))
    {}
};

} // namespace gex

#endif // GEX_COMMON_ERROR_HPP
