#include "common/stats.hpp"

#include <cmath>
#include <sstream>

#include "common/json.hpp"
#include "common/log.hpp"

namespace gex {

void
StatSet::merge(const StatSet &other)
{
    for (const auto &kv : other.scalars_)
        scalars_[kv.first] += kv.second;
}

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &kv : scalars_)
        os << prefix << kv.first << " = " << kv.second << "\n";
}

void
StatSet::dumpCsv(std::ostream &os) const
{
    os << "stat,value\n";
    for (const auto &kv : scalars_)
        os << kv.first << "," << kv.second << "\n";
}

void
StatSet::writeJson(json::Writer &w) const
{
    w.beginObject();
    for (const auto &kv : scalars_)
        w.key(kv.first).value(kv.second);
    w.endObject();
}

std::string
StatSet::toJson() const
{
    std::ostringstream os;
    json::Writer w(os);
    writeJson(w);
    return os.str();
}

double
geomean(const std::vector<double> &xs)
{
    GEX_ASSERT(!xs.empty());
    double acc = 0.0;
    for (double x : xs) {
        GEX_ASSERT(x > 0.0, "geomean needs positive values");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace gex
