/**
 * @file
 * Minimal in-repo JSON support for sweep/bench output: a streaming
 * writer (objects, arrays, scalars, correct string escaping and
 * round-trippable doubles) plus a small recursive-descent parser used
 * by tests and tools to validate emitted documents. No external
 * dependency; deliberately tiny rather than general (no comments, no
 * NaN/Inf — they are not valid JSON and writers must avoid them).
 */

#ifndef GEX_COMMON_JSON_HPP
#define GEX_COMMON_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace gex::json {

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string escape(const std::string &s);

/**
 * Format a double so that parsing the text recovers the exact same
 * bits (shortest round-trippable form). Integral values print without
 * an exponent or trailing ".0" noise where possible.
 */
std::string formatNumber(double v);

/**
 * Streaming JSON writer. Usage:
 *
 *     json::Writer w(os);
 *     w.beginObject();
 *     w.key("name").value("fig10");
 *     w.key("runs").beginArray();
 *     ...
 *     w.endArray();
 *     w.endObject();
 *
 * The writer tracks nesting and inserts commas/indentation; it panics
 * on gross misuse (closing the wrong scope, value without a key inside
 * an object).
 */
class Writer
{
  public:
    /**
     * @p indentWidth spaces per nesting level; a negative width
     * selects compact mode (no newlines or padding — for large
     * machine-consumed documents like traces).
     */
    explicit Writer(std::ostream &os, int indentWidth = 2)
        : os_(os), indentWidth_(indentWidth)
    {}

    Writer &beginObject();
    Writer &endObject();
    Writer &beginArray();
    Writer &endArray();

    /** Start a "key": inside the current object. */
    Writer &key(const std::string &k);

    Writer &value(const std::string &v);
    Writer &value(const char *v);
    Writer &value(double v);
    Writer &value(std::uint64_t v);
    Writer &value(int v);
    Writer &value(bool v);
    Writer &null();

    /** True once every opened scope has been closed. */
    bool complete() const { return scopes_.empty() && wroteTop_; }

  private:
    enum class Scope : std::uint8_t { Object, Array };

    void preValue(); ///< comma/newline bookkeeping before any value
    void indent();
    void raw(const std::string &text);

    std::ostream &os_;
    int indentWidth_;
    std::vector<Scope> scopes_;
    std::vector<bool> scopeHasItems_;
    bool pendingKey_ = false;
    bool wroteTop_ = false;
};

/** Parsed JSON value (tree form), produced by parse(). */
struct Value {
    enum class Kind : std::uint8_t {
        Null, Bool, Number, String, Array, Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> items;                    ///< Kind::Array
    std::map<std::string, Value> members;        ///< Kind::Object

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &k) const;

    /** Convenience accessors that panic on kind mismatch. */
    double asNumber() const;
    const std::string &asString() const;
};

/**
 * Parse @p text as one JSON document. On success returns the root
 * value; on failure returns nullptr and, when @p error is non-null,
 * stores a human-readable message with the byte offset.
 */
std::unique_ptr<Value> parse(const std::string &text,
                             std::string *error = nullptr);

} // namespace gex::json

#endif // GEX_COMMON_JSON_HPP
