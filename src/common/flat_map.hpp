/**
 * @file
 * FlatMap: a small open-addressing hash map keyed by Addr, built for
 * the timing simulator's hot pending-request bookkeeping (cache MSHRs,
 * TLB miss merging, page-directory regions). Compared with
 * std::unordered_map it stores key/value pairs in one contiguous
 * power-of-two array (no per-node allocation, no bucket pointers),
 * probes linearly (one cache line covers several slots), and erases by
 * backward shifting instead of tombstones, so lookup cost never degrades
 * as entries churn.
 *
 * Design constraints (checked statically or asserted):
 *  - keys are Addr (64-bit); the value kBadAddr is reserved as the
 *    empty-slot sentinel and must never be inserted. Line addresses,
 *    page numbers and region indices never collide with it.
 *  - the mapped type is default-constructible; trivially copyable
 *    types are ideal (everything stays memmove-friendly).
 *
 * Iteration is exposed as forEach()/eraseIf() rather than iterators:
 * every in-tree use walks the whole map, and backshift erase moves
 * elements around in ways classic iterators cannot express safely.
 */

#ifndef GEX_COMMON_FLAT_MAP_HPP
#define GEX_COMMON_FLAT_MAP_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace gex {

template <typename T>
class FlatMap
{
  public:
    /** Reserved key marking an empty slot. */
    static constexpr Addr kEmptyKey = kBadAddr;

    explicit FlatMap(std::size_t min_capacity = 0)
    {
        rehash(capacityFor(min_capacity));
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    /** Current slot count (power of two). */
    std::size_t capacity() const { return slots_.size(); }

    /** Drop every entry; keeps the current capacity. */
    void
    clear()
    {
        for (Slot &s : slots_)
            s = Slot{};
        size_ = 0;
    }

    /** Grow so that @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = capacityFor(n);
        if (cap > slots_.size())
            rehash(cap);
    }

    /** Pointer to the value stored under @p key, or nullptr. */
    T *
    find(Addr key)
    {
        std::size_t i = probe(key);
        return slots_[i].key == key ? &slots_[i].value : nullptr;
    }

    const T *
    find(Addr key) const
    {
        std::size_t i = probe(key);
        return slots_[i].key == key ? &slots_[i].value : nullptr;
    }

    bool contains(Addr key) const { return find(key) != nullptr; }

    /** Value under @p key, default-constructed on first access. */
    T &
    operator[](Addr key)
    {
        GEX_ASSERT(key != kEmptyKey, "FlatMap: reserved key");
        std::size_t i = probe(key);
        if (slots_[i].key == key)
            return slots_[i].value;
        if (size_ + 1 > limit_) {
            rehash(slots_.size() * 2);
            i = probe(key);
        }
        slots_[i].key = key;
        slots_[i].value = T{};
        ++size_;
        return slots_[i].value;
    }

    /**
     * Remove @p key if present; returns whether it was. Erasure shifts
     * the following probe cluster back one slot (no tombstones), so
     * the table stays as dense as if the key had never been inserted.
     */
    bool
    erase(Addr key)
    {
        std::size_t i = probe(key);
        if (slots_[i].key != key)
            return false;
        eraseSlot(i);
        return true;
    }

    /** Visit every (key, value) pair; @p f must not mutate the map. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (const Slot &s : slots_)
            if (s.key != kEmptyKey)
                f(s.key, s.value);
    }

    template <typename F>
    void
    forEach(F &&f)
    {
        for (Slot &s : slots_)
            if (s.key != kEmptyKey)
                f(s.key, s.value);
    }

    /**
     * Erase every entry for which @p pred(key, value) is true; returns
     * how many were removed. The predicate is evaluated exactly once
     * per entry (backshift during a raw slot walk could move entries
     * across the scan frontier, so doomed keys are collected first).
     */
    template <typename Pred>
    std::size_t
    eraseIf(Pred &&pred)
    {
        scratch_.clear();
        for (Slot &s : slots_)
            if (s.key != kEmptyKey && pred(s.key, s.value))
                scratch_.push_back(s.key);
        for (Addr k : scratch_)
            erase(k);
        return scratch_.size();
    }

  private:
    struct Slot {
        Addr key = kEmptyKey;
        T value{};
    };

    static constexpr std::size_t kMinCapacity = 16;

    /** Smallest power-of-two capacity keeping load factor under 0.7. */
    static std::size_t
    capacityFor(std::size_t n)
    {
        std::size_t cap = kMinCapacity;
        while (n + 1 > cap - cap / 4 - cap / 16) // limit = 0.6875 * cap
            cap *= 2;
        return cap;
    }

    /** Fibonacci multiplicative hash: home slot of @p key. */
    std::size_t
    home(Addr key) const
    {
        return static_cast<std::size_t>(
            (key * 0x9E3779B97F4A7C15ull) >> shift_);
    }

    /** First slot holding @p key, or the empty slot ending its cluster. */
    std::size_t
    probe(Addr key) const
    {
        std::size_t mask = slots_.size() - 1;
        std::size_t i = home(key);
        while (slots_[i].key != key && slots_[i].key != kEmptyKey)
            i = (i + 1) & mask;
        return i;
    }

    void
    eraseSlot(std::size_t hole)
    {
        std::size_t mask = slots_.size() - 1;
        std::size_t j = hole;
        while (true) {
            j = (j + 1) & mask;
            if (slots_[j].key == kEmptyKey)
                break;
            // An entry may backshift into the hole only if its home
            // slot is outside (hole, j] in cyclic probe order —
            // otherwise the shift would strand it before its home.
            std::size_t h = home(slots_[j].key);
            if (((j - h) & mask) >= ((j - hole) & mask)) {
                slots_[hole] = std::move(slots_[j]);
                hole = j;
            }
        }
        slots_[hole] = Slot{};
        --size_;
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_cap, Slot{});
        shift_ = 64;
        for (std::size_t c = new_cap; c > 1; c /= 2)
            --shift_;
        limit_ = new_cap - new_cap / 4 - new_cap / 16;
        size_ = 0;
        for (Slot &s : old) {
            if (s.key == kEmptyKey)
                continue;
            std::size_t i = probe(s.key);
            slots_[i] = std::move(s);
            ++size_;
        }
    }

    std::vector<Slot> slots_;
    std::vector<Addr> scratch_;  ///< eraseIf staging (reused)
    std::size_t size_ = 0;
    std::size_t limit_ = 0;      ///< grow when size_ would exceed this
    int shift_ = 64;             ///< 64 - log2(capacity)
};

} // namespace gex

#endif // GEX_COMMON_FLAT_MAP_HPP
