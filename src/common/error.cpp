#include "common/error.hpp"

#include <sstream>

namespace gex {

std::string
ErrorContext::describe() const
{
    std::ostringstream os;
    const char *sep = "";
    if (cycle != kNoCycle) {
        os << "cycle " << cycle;
        sep = ", ";
    }
    if (sm >= 0) {
        os << sep << "sm " << sm;
        sep = ", ";
    }
    if (warp >= 0) {
        os << sep << "warp " << warp;
        sep = ", ";
    }
    if (!scheme.empty()) {
        os << sep << "scheme " << scheme;
        sep = ", ";
    }
    if (!workload.empty())
        os << sep << "workload " << workload;
    return os.str();
}

GexError::GexError(std::string kind, const std::string &message,
                   ErrorContext ctx, std::string diagnostics)
    : std::runtime_error(message), kind_(std::move(kind)),
      ctx_(std::move(ctx)), diag_(std::move(diagnostics))
{
}

std::string
GexError::report() const
{
    std::string out = kind_ + ": " + what();
    std::string where = ctx_.describe();
    if (!where.empty())
        out += "\n  at " + where;
    if (!diag_.empty()) {
        out += "\n";
        out += diag_;
        if (out.back() != '\n')
            out += '\n';
    }
    return out;
}

} // namespace gex
