/**
 * @file
 * Lightweight named statistics: scalar counters, ratios and histograms
 * grouped into a StatSet that can be dumped as text or queried by name.
 */

#ifndef GEX_COMMON_STATS_HPP
#define GEX_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace gex {

namespace json { class Writer; }

/**
 * A group of named scalar statistics. Components register counters by
 * name; harnesses read them back after simulation.
 */
class StatSet
{
  public:
    /** Add @p delta to the counter called @p name (created on demand). */
    void
    add(const std::string &name, double delta = 1.0)
    {
        scalars_[name] += delta;
    }

    /** Overwrite the counter called @p name. */
    void
    set(const std::string &name, double value)
    {
        scalars_[name] = value;
    }

    /** Track the maximum seen for @p name. */
    void
    maxOf(const std::string &name, double value)
    {
        auto it = scalars_.find(name);
        if (it == scalars_.end() || it->second < value)
            scalars_[name] = value;
    }

    /** Value of the counter, or 0 if it was never touched. */
    double
    get(const std::string &name) const
    {
        auto it = scalars_.find(name);
        return it == scalars_.end() ? 0.0 : it->second;
    }

    bool
    has(const std::string &name) const
    {
        return scalars_.count(name) != 0;
    }

    /** Merge another StatSet into this one (summing shared names). */
    void merge(const StatSet &other);

    /** All entries, sorted by name. */
    const std::map<std::string, double> &scalars() const { return scalars_; }

    void clear() { scalars_.clear(); }

    /** Human-readable dump, one "name = value" per line. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Machine-readable dump: "name,value" rows with a header line,
     * suitable for spreadsheet/pandas ingestion of sweep results.
     */
    void dumpCsv(std::ostream &os) const;

    /**
     * JSON object mapping stat name to value, keys sorted, doubles in
     * round-trippable form: parsing the text back recovers bit-equal
     * values (see json::formatNumber).
     */
    std::string toJson() const;

    /** Stream @p this as a JSON object into an in-progress document. */
    void writeJson(json::Writer &w) const;

  private:
    std::map<std::string, double> scalars_;
};

/** Geometric mean of a vector of strictly positive values. */
double geomean(const std::vector<double> &xs);

/** Integer ceiling division. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Deterministic xorshift64* PRNG so simulations are reproducible across
 * platforms and standard library versions.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state_;
};

} // namespace gex

#endif // GEX_COMMON_STATS_HPP
