/**
 * @file
 * KernelBuilder: a programmatic assembler. Workload generators use it to
 * emit ISA programs with labels, forward references and guard
 * predicates, replacing the paper's NVCC+LLVM compilation flow.
 */

#ifndef GEX_KASM_BUILDER_HPP
#define GEX_KASM_BUILDER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace gex::kasm {

using isa::Cmp;
using isa::Opcode;
using isa::PLogic;
using isa::PredReg;
using isa::Reg;
using isa::SpecialReg;

/**
 * Builds an isa::Program instruction by instruction.
 *
 * Labels are created with label() and placed with bind(); branches may
 * reference labels before they are bound (patched in build()). A guard
 * predicate set with guard() applies to every subsequently emitted
 * instruction until clearGuard().
 */
class KernelBuilder
{
  public:
    using Label = int;

    explicit KernelBuilder(std::string name) : name_(std::move(name)) {}

    /** @name Labels and guards
     *  @{ */
    Label label();
    void bind(Label l);
    void guard(PredReg p, bool negate = false);
    void clearGuard();
    /** @} */

    /** @name Moves, conversions, special registers
     *  @{ */
    void movi(Reg d, std::int64_t v);
    void movf(Reg d, double v);
    void mov(Reg d, Reg a);
    void s2r(Reg d, SpecialReg sr);
    void ldparam(Reg d, int index);
    void i2f(Reg d, Reg a);
    void f2i(Reg d, Reg a);
    /** @} */

    /** @name Integer and logical ALU
     *  @{ */
    void iadd(Reg d, Reg a, Reg b);
    void iaddi(Reg d, Reg a, std::int64_t imm);
    void isub(Reg d, Reg a, Reg b);
    void isubi(Reg d, Reg a, std::int64_t imm);
    void imul(Reg d, Reg a, Reg b);
    void imuli(Reg d, Reg a, std::int64_t imm);
    void imad(Reg d, Reg a, Reg b, Reg c);
    void imin(Reg d, Reg a, Reg b);
    void imax(Reg d, Reg a, Reg b);
    void and_(Reg d, Reg a, Reg b);
    void andi(Reg d, Reg a, std::int64_t imm);
    void or_(Reg d, Reg a, Reg b);
    void xor_(Reg d, Reg a, Reg b);
    void not_(Reg d, Reg a);
    void shli(Reg d, Reg a, std::int64_t sh);
    void shri(Reg d, Reg a, std::int64_t sh);
    /** @} */

    /** @name Floating point (math pipes) and SFU
     *  @{ */
    void fadd(Reg d, Reg a, Reg b);
    void fsub(Reg d, Reg a, Reg b);
    void fmul(Reg d, Reg a, Reg b);
    void fmuli(Reg d, Reg a, double imm);
    void faddi(Reg d, Reg a, double imm);
    void ffma(Reg d, Reg a, Reg b, Reg c);
    void fmin(Reg d, Reg a, Reg b);
    void fmax(Reg d, Reg a, Reg b);
    void frcp(Reg d, Reg a);
    void frsq(Reg d, Reg a);
    void fsqrt(Reg d, Reg a);
    void fsin(Reg d, Reg a);
    void fcos(Reg d, Reg a);
    void fexp2(Reg d, Reg a);
    void flog2(Reg d, Reg a);
    void fdiv(Reg d, Reg a, Reg b);
    /** @} */

    /** @name Predicates and select
     *  @{ */
    void setp(PredReg pd, Cmp c, Reg a, Reg b, bool fp = false);
    void setpi(PredReg pd, Cmp c, Reg a, std::int64_t imm);
    void psetp(PredReg pd, PLogic op, PredReg pa, PredReg pb);
    void sel(Reg d, Reg a, Reg b, PredReg selp);
    /** @} */

    /** @name Control flow
     *  @{ */
    void bra(Label l);
    void ssy(Label l);
    void join();
    void bar();
    void exit();
    void membar();
    void nop();
    /** @} */

    /** @name Memory and allocation
     *  @{ */
    void ldGlobal(Reg d, Reg base, std::int64_t off = 0);
    void stGlobal(Reg base, std::int64_t off, Reg val);
    void ldShared(Reg d, Reg base, std::int64_t off = 0);
    void stShared(Reg base, std::int64_t off, Reg val);
    void atomAdd(Reg d, Reg addr, Reg val);
    void atomMin(Reg d, Reg addr, Reg val);
    void atomMax(Reg d, Reg addr, Reg val);
    void atomExch(Reg d, Reg addr, Reg val);
    void atomCas(Reg d, Reg addr, Reg cmp, Reg swap);
    void alloc(Reg d, Reg size);
    /** @} */

    /** Static shared memory used per thread block. */
    void setSharedBytes(std::uint32_t bytes) { sharedBytes_ = bytes; }
    /** Number of kernel parameters (for validation of LDPARAM). */
    void setNumParams(int n) { numParams_ = n; }
    /**
     * Force at least this many registers per thread: models register
     * pressure beyond the architecturally referenced registers (used by
     * the lbm-like kernel to cap occupancy as in the paper).
     */
    void setMinRegs(int n) { minRegs_ = n; }

    /** Raw emission escape hatch (used by tests). */
    void emit(const isa::Instruction &inst);

    /** Number of instructions emitted so far. */
    size_t size() const { return insts_.size(); }

    /** Finalize: patch labels, compute register count, validate. */
    isa::Program build();

  private:
    isa::Instruction make(Opcode op);
    void emitAlu(Opcode op, Reg d, Reg a, Reg b);
    void emitAluImm(Opcode op, Reg d, Reg a, std::int64_t imm);
    void emitUnary(Opcode op, Reg d, Reg a);
    void emitBranch(Opcode op, Label l);
    void trackReg(Reg r);

    std::string name_;
    std::vector<isa::Instruction> insts_;
    std::vector<int> labelPc_;            // -1 until bound
    std::vector<std::pair<size_t, Label>> fixups_;
    PredReg guardPred_ = isa::kPredTrue;
    bool guardNeg_ = false;
    int maxReg_ = -1;
    int minRegs_ = 0;
    std::uint32_t sharedBytes_ = 0;
    int numParams_ = 0;
};

} // namespace gex::kasm

#endif // GEX_KASM_BUILDER_HPP
