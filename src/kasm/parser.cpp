#include "kasm/parser.hpp"

#include <bit>
#include <map>

#include "common/log.hpp"
#include "kasm/builder.hpp"
#include "kasm/lexer.hpp"

namespace gex::kasm {

using isa::Cmp;
using isa::Instruction;
using isa::kPredTrue;
using isa::kRegZero;
using isa::Opcode;
using isa::PLogic;
using isa::PredReg;
using isa::Reg;
using isa::SpecialReg;

namespace {

/** Token cursor plus the builder/label state for one assembly unit. */
class Parser
{
  public:
    explicit Parser(const std::string &src)
        : toks_(lex(src)), builder_("anonymous")
    {}

    isa::Program run();

  private:
    const Token &peek() const { return toks_[pos_]; }
    const Token &get() { return toks_[pos_++]; }
    bool
    accept(TokKind k)
    {
        if (peek().kind == k) {
            ++pos_;
            return true;
        }
        return false;
    }
    void
    expect(TokKind k, const char *what)
    {
        if (!accept(k))
            fatal("kasm line %d: expected %s", peek().line, what);
    }

    void parseLine();
    void parseDirective(const std::string &name);
    void parseInstruction(const std::string &mnemonic);

    Reg parseReg();
    PredReg parsePred();
    KernelBuilder::Label labelFor(const std::string &name);
    std::int64_t parseInt(const char *what);

    std::vector<Token> toks_;
    size_t pos_ = 0;
    KernelBuilder builder_;
    PredReg guardPred_ = kPredTrue;
    bool guardNeg_ = false;
    std::string kernelName_ = "anonymous";
    int minRegs_ = 0;
    std::uint32_t sharedBytes_ = 0;
    int numParams_ = 0;
    std::map<std::string, KernelBuilder::Label> labels_;
};

Reg
Parser::parseReg()
{
    const Token &t = get();
    if (t.kind != TokKind::Ident)
        fatal("kasm line %d: expected register", t.line);
    if (t.text == "rz")
        return kRegZero;
    if (t.text.size() >= 2 && t.text[0] == 'r') {
        int idx = std::atoi(t.text.c_str() + 1);
        if (idx >= 0 && idx < isa::kMaxRegs)
            return static_cast<Reg>(idx);
    }
    fatal("kasm line %d: bad register '%s'", t.line, t.text.c_str());
}

PredReg
Parser::parsePred()
{
    const Token &t = get();
    if (t.kind != TokKind::Ident)
        fatal("kasm line %d: expected predicate", t.line);
    if (t.text == "pt")
        return kPredTrue;
    if (t.text.size() >= 2 && t.text[0] == 'p') {
        int idx = std::atoi(t.text.c_str() + 1);
        if (idx >= 0 && idx < isa::kNumPreds)
            return static_cast<PredReg>(idx);
    }
    fatal("kasm line %d: bad predicate '%s'", t.line, t.text.c_str());
}

KernelBuilder::Label
Parser::labelFor(const std::string &name)
{
    auto it = labels_.find(name);
    if (it != labels_.end())
        return it->second;
    auto l = builder_.label();
    labels_.emplace(name, l);
    return l;
}

std::int64_t
Parser::parseInt(const char *what)
{
    bool neg = accept(TokKind::Minus);
    const Token &t = get();
    if (t.kind != TokKind::Number || t.isFloat)
        fatal("kasm line %d: expected integer %s", t.line, what);
    return neg ? -t.ival : t.ival;
}

void
Parser::parseDirective(const std::string &name)
{
    if (name == ".kernel") {
        const Token &t = get();
        if (t.kind != TokKind::Ident)
            fatal("kasm line %d: expected kernel name", t.line);
        kernelName_ = t.text;
    } else if (name == ".regs") {
        minRegs_ = static_cast<int>(parseInt("register count"));
    } else if (name == ".shared") {
        sharedBytes_ = static_cast<std::uint32_t>(parseInt("shared bytes"));
    } else if (name == ".params") {
        numParams_ = static_cast<int>(parseInt("param count"));
    } else {
        fatal("kasm: unknown directive '%s'", name.c_str());
    }
}

Cmp
cmpFromString(const std::string &s, int line)
{
    if (s == "eq") return Cmp::EQ;
    if (s == "ne") return Cmp::NE;
    if (s == "lt") return Cmp::LT;
    if (s == "le") return Cmp::LE;
    if (s == "gt") return Cmp::GT;
    if (s == "ge") return Cmp::GE;
    fatal("kasm line %d: bad comparison '%s'", line, s.c_str());
}

void
Parser::parseInstruction(const std::string &mnemonic)
{
    int line = toks_[pos_ ? pos_ - 1 : 0].line;
    Instruction in;
    in.pred = guardPred_;
    in.predNeg = guardNeg_;

    // setp.i.lt / setp.f.ge
    if (mnemonic.rfind("setp.", 0) == 0) {
        std::string rest = mnemonic.substr(5);
        auto dot = rest.find('.');
        if (dot == std::string::npos)
            fatal("kasm line %d: setp needs .i/.f and condition", line);
        in.op = Opcode::SETP;
        in.fcmp = rest.substr(0, dot) == "f";
        in.cmp = cmpFromString(rest.substr(dot + 1), line);
        in.predDst = parsePred();
        expect(TokKind::Comma, "','");
        in.srcs[0] = parseReg();
        expect(TokKind::Comma, "','");
        if (peek().kind == TokKind::Number || peek().kind == TokKind::Minus) {
            in.imm = parseInt("setp immediate");
            in.useImm = true;
        } else {
            in.srcs[1] = parseReg();
        }
        builder_.emit(in);
        return;
    }

    // psetp.and / .or / .xor / .not
    if (mnemonic.rfind("psetp.", 0) == 0) {
        std::string op = mnemonic.substr(6);
        in.op = Opcode::PSETP;
        if (op == "and") in.plogic = PLogic::And;
        else if (op == "or") in.plogic = PLogic::Or;
        else if (op == "xor") in.plogic = PLogic::Xor;
        else if (op == "not") in.plogic = PLogic::Not;
        else fatal("kasm line %d: bad psetp op '%s'", line, op.c_str());
        in.predDst = parsePred();
        expect(TokKind::Comma, "','");
        in.predA = parsePred();
        if (in.plogic != PLogic::Not) {
            expect(TokKind::Comma, "','");
            in.predB = parsePred();
        }
        builder_.emit(in);
        return;
    }

    Opcode op = isa::opcodeFromName(mnemonic);
    if (op == Opcode::NumOpcodes)
        fatal("kasm line %d: unknown mnemonic '%s'", line, mnemonic.c_str());
    in.op = op;
    const auto &t = isa::traits(op);

    auto parse_mem_operand = [&]() {
        expect(TokKind::LBracket, "'['");
        in.srcs[0] = parseReg();
        if (accept(TokKind::Plus))
            in.imm = parseInt("offset");
        else if (peek().kind == TokKind::Minus)
            in.imm = parseInt("offset");
        expect(TokKind::RBracket, "']'");
    };

    switch (op) {
      case Opcode::MOVI: {
        in.dst = parseReg();
        expect(TokKind::Comma, "','");
        bool neg = accept(TokKind::Minus);
        const Token &v = get();
        if (v.kind != TokKind::Number)
            fatal("kasm line %d: movi needs an immediate", line);
        if (v.isFloat) {
            double d = neg ? -v.fval : v.fval;
            in.imm = static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(d));
        } else {
            in.imm = neg ? -v.ival : v.ival;
        }
        break;
      }
      case Opcode::S2R: {
        in.dst = parseReg();
        expect(TokKind::Comma, "','");
        const Token &v = get();
        SpecialReg sr = isa::specialRegFromName(v.text);
        if (sr == SpecialReg::NumSpecialRegs)
            fatal("kasm line %d: bad special register '%s'", line,
                  v.text.c_str());
        in.imm = static_cast<std::int64_t>(sr);
        break;
      }
      case Opcode::LDPARAM: {
        in.dst = parseReg();
        expect(TokKind::Comma, "','");
        const Token &v = get();
        if (v.kind == TokKind::Ident && v.text == "param") {
            expect(TokKind::LBracket, "'['");
            in.imm = parseInt("param index");
            expect(TokKind::RBracket, "']'");
        } else if (v.kind == TokKind::Number && !v.isFloat) {
            in.imm = v.ival;
        } else {
            fatal("kasm line %d: ldparam needs param[N] or N", line);
        }
        break;
      }
      case Opcode::SEL: {
        in.dst = parseReg();
        expect(TokKind::Comma, "','");
        in.srcs[0] = parseReg();
        expect(TokKind::Comma, "','");
        in.srcs[1] = parseReg();
        expect(TokKind::Comma, "','");
        in.predA = parsePred();
        break;
      }
      case Opcode::BRA:
      case Opcode::SSY: {
        const Token &v = get();
        if (v.kind != TokKind::Ident)
            fatal("kasm line %d: branch needs a label", line);
        builder_.emit(in); // placeholder emit replaced below
        // Rewind: branches need builder label fixups, so emit through
        // the builder's branch API instead. Remove the placeholder.
        fatal("kasm internal: unreachable");
      }
      case Opcode::LD_GLOBAL:
      case Opcode::LD_SHARED: {
        in.dst = parseReg();
        expect(TokKind::Comma, "','");
        parse_mem_operand();
        break;
      }
      case Opcode::ST_GLOBAL:
      case Opcode::ST_SHARED: {
        parse_mem_operand();
        expect(TokKind::Comma, "','");
        in.srcs[1] = parseReg();
        break;
      }
      case Opcode::ATOM_ADD:
      case Opcode::ATOM_MIN:
      case Opcode::ATOM_MAX:
      case Opcode::ATOM_EXCH: {
        in.dst = parseReg();
        expect(TokKind::Comma, "','");
        parse_mem_operand();
        expect(TokKind::Comma, "','");
        in.srcs[1] = parseReg();
        break;
      }
      case Opcode::ATOM_CAS: {
        in.dst = parseReg();
        expect(TokKind::Comma, "','");
        parse_mem_operand();
        expect(TokKind::Comma, "','");
        in.srcs[1] = parseReg();
        expect(TokKind::Comma, "','");
        in.srcs[2] = parseReg();
        break;
      }
      case Opcode::ALLOC: {
        in.dst = parseReg();
        expect(TokKind::Comma, "','");
        in.srcs[0] = parseReg();
        break;
      }
      case Opcode::JOIN:
      case Opcode::BAR:
      case Opcode::EXIT:
      case Opcode::MEMBAR:
      case Opcode::NOP:
        break;
      default: {
        // Generic ALU forms: dst, src0 [, src1|imm [, src2]]
        if (t.writesDst) {
            in.dst = parseReg();
            if (t.numSrcs > 0)
                expect(TokKind::Comma, "','");
        }
        for (int i = 0; i < t.numSrcs; ++i) {
            if (i > 0)
                expect(TokKind::Comma, "','");
            if (i == 1 && (peek().kind == TokKind::Number ||
                           peek().kind == TokKind::Minus)) {
                bool neg = accept(TokKind::Minus);
                const Token &v = get();
                if (v.isFloat) {
                    double d = neg ? -v.fval : v.fval;
                    in.imm = static_cast<std::int64_t>(
                        std::bit_cast<std::uint64_t>(d));
                } else {
                    in.imm = neg ? -v.ival : v.ival;
                }
                in.useImm = true;
            } else {
                in.srcs[i] = parseReg();
            }
        }
        break;
      }
    }
    builder_.emit(in);
}

void
Parser::parseLine()
{
    // Optional guard predicate.
    PredReg guard = kPredTrue;
    bool guard_neg = false;
    bool has_guard = false;
    if (accept(TokKind::At)) {
        guard_neg = accept(TokKind::Bang);
        guard = parsePred();
        has_guard = true;
    }

    const Token &t = get();
    if (t.kind != TokKind::Ident)
        fatal("kasm line %d: expected mnemonic or label", t.line);

    // Label definition?
    if (!has_guard && peek().kind == TokKind::Colon) {
        get();
        builder_.bind(labelFor(t.text));
        // Allow an instruction on the same line after the label.
        if (peek().kind != TokKind::Newline && peek().kind != TokKind::End)
            parseLine();
        return;
    }

    if (!has_guard && !t.text.empty() && t.text[0] == '.') {
        parseDirective(t.text);
        return;
    }

    if (has_guard) {
        builder_.guard(guard, guard_neg);
        guardPred_ = guard;
        guardNeg_ = guard_neg;
    }

    // Branch-family mnemonics route through the builder for label fixups.
    if (t.text == "bra" || t.text == "ssy") {
        const Token &v = get();
        if (v.kind != TokKind::Ident)
            fatal("kasm line %d: branch needs a label", v.line);
        if (t.text == "bra")
            builder_.bra(labelFor(v.text));
        else
            builder_.ssy(labelFor(v.text));
    } else {
        parseInstruction(t.text);
    }

    if (has_guard) {
        builder_.clearGuard();
        guardPred_ = kPredTrue;
        guardNeg_ = false;
    }
}

isa::Program
Parser::run()
{
    while (peek().kind != TokKind::End) {
        if (accept(TokKind::Newline))
            continue;
        parseLine();
        if (peek().kind != TokKind::End)
            expect(TokKind::Newline, "end of line");
    }
    builder_.setMinRegs(minRegs_);
    builder_.setSharedBytes(sharedBytes_);
    builder_.setNumParams(numParams_);
    isa::Program prog = builder_.build();
    // Re-wrap with the declared kernel name.
    return isa::Program(kernelName_, prog.insts(), prog.regsPerThread(),
                        prog.sharedBytes(), prog.numParams());
}

} // namespace

isa::Program
assemble(const std::string &src)
{
    Parser p(src);
    return p.run();
}

} // namespace gex::kasm
