/**
 * @file
 * Parser for the .kasm assembly text format: turns source text into an
 * isa::Program by driving a KernelBuilder.
 *
 * Grammar (per line):
 *
 *     .kernel NAME | .regs N | .shared N | .params N
 *     LABEL:
 *     [@[!]pN] MNEMONIC operands...
 *
 * Operand syntax: rN / rz (GPRs), pN / pt (predicates), %tid.x etc.
 * (special registers), integers / floats (immediates), [rN+OFF]
 * (memory), LABEL (branch targets), param[N].
 */

#ifndef GEX_KASM_PARSER_HPP
#define GEX_KASM_PARSER_HPP

#include <string>

#include "isa/program.hpp"

namespace gex::kasm {

/** Assemble source text into a validated Program. fatal() on errors. */
isa::Program assemble(const std::string &src);

} // namespace gex::kasm

#endif // GEX_KASM_PARSER_HPP
