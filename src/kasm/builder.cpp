#include "kasm/builder.hpp"

#include <bit>

#include "common/log.hpp"

namespace gex::kasm {

using isa::Instruction;
using isa::kPredTrue;
using isa::kRegZero;

KernelBuilder::Label
KernelBuilder::label()
{
    labelPc_.push_back(-1);
    return static_cast<Label>(labelPc_.size()) - 1;
}

void
KernelBuilder::bind(Label l)
{
    GEX_ASSERT(l >= 0 && static_cast<size_t>(l) < labelPc_.size());
    GEX_ASSERT(labelPc_[static_cast<size_t>(l)] == -1,
               "label %d bound twice", l);
    labelPc_[static_cast<size_t>(l)] = static_cast<int>(insts_.size());
}

void
KernelBuilder::guard(PredReg p, bool negate)
{
    guardPred_ = p;
    guardNeg_ = negate;
}

void
KernelBuilder::clearGuard()
{
    guardPred_ = kPredTrue;
    guardNeg_ = false;
}

Instruction
KernelBuilder::make(Opcode op)
{
    Instruction in;
    in.op = op;
    in.pred = guardPred_;
    in.predNeg = guardNeg_;
    return in;
}

void
KernelBuilder::trackReg(Reg r)
{
    if (r != kRegZero && static_cast<int>(r) > maxReg_)
        maxReg_ = static_cast<int>(r);
}

void
KernelBuilder::emit(const Instruction &inst)
{
    const auto &t = inst.traits();
    if (t.writesDst)
        trackReg(inst.dst);
    for (int i = 0; i < t.numSrcs; ++i)
        trackReg(inst.srcs[i]);
    insts_.push_back(inst);
}

void
KernelBuilder::emitAlu(Opcode op, Reg d, Reg a, Reg b)
{
    Instruction in = make(op);
    in.dst = d;
    in.srcs[0] = a;
    in.srcs[1] = b;
    emit(in);
}

void
KernelBuilder::emitAluImm(Opcode op, Reg d, Reg a, std::int64_t imm)
{
    Instruction in = make(op);
    in.dst = d;
    in.srcs[0] = a;
    in.imm = imm;
    in.useImm = true;
    emit(in);
}

void
KernelBuilder::emitUnary(Opcode op, Reg d, Reg a)
{
    Instruction in = make(op);
    in.dst = d;
    in.srcs[0] = a;
    emit(in);
}

void
KernelBuilder::movi(Reg d, std::int64_t v)
{
    Instruction in = make(Opcode::MOVI);
    in.dst = d;
    in.imm = v;
    emit(in);
}

void
KernelBuilder::movf(Reg d, double v)
{
    movi(d, static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(v)));
}

void
KernelBuilder::mov(Reg d, Reg a)
{
    emitUnary(Opcode::MOV, d, a);
}

void
KernelBuilder::s2r(Reg d, SpecialReg sr)
{
    Instruction in = make(Opcode::S2R);
    in.dst = d;
    in.imm = static_cast<std::int64_t>(sr);
    emit(in);
}

void
KernelBuilder::ldparam(Reg d, int index)
{
    Instruction in = make(Opcode::LDPARAM);
    in.dst = d;
    in.imm = index;
    emit(in);
}

void KernelBuilder::i2f(Reg d, Reg a) { emitUnary(Opcode::I2F, d, a); }
void KernelBuilder::f2i(Reg d, Reg a) { emitUnary(Opcode::F2I, d, a); }

void KernelBuilder::iadd(Reg d, Reg a, Reg b) { emitAlu(Opcode::IADD, d, a, b); }
void KernelBuilder::iaddi(Reg d, Reg a, std::int64_t v) { emitAluImm(Opcode::IADD, d, a, v); }
void KernelBuilder::isub(Reg d, Reg a, Reg b) { emitAlu(Opcode::ISUB, d, a, b); }
void KernelBuilder::isubi(Reg d, Reg a, std::int64_t v) { emitAluImm(Opcode::ISUB, d, a, v); }
void KernelBuilder::imul(Reg d, Reg a, Reg b) { emitAlu(Opcode::IMUL, d, a, b); }
void KernelBuilder::imuli(Reg d, Reg a, std::int64_t v) { emitAluImm(Opcode::IMUL, d, a, v); }
void KernelBuilder::imin(Reg d, Reg a, Reg b) { emitAlu(Opcode::IMIN, d, a, b); }
void KernelBuilder::imax(Reg d, Reg a, Reg b) { emitAlu(Opcode::IMAX, d, a, b); }
void KernelBuilder::and_(Reg d, Reg a, Reg b) { emitAlu(Opcode::AND, d, a, b); }
void KernelBuilder::andi(Reg d, Reg a, std::int64_t v) { emitAluImm(Opcode::AND, d, a, v); }
void KernelBuilder::or_(Reg d, Reg a, Reg b) { emitAlu(Opcode::OR, d, a, b); }
void KernelBuilder::xor_(Reg d, Reg a, Reg b) { emitAlu(Opcode::XOR, d, a, b); }
void KernelBuilder::not_(Reg d, Reg a) { emitUnary(Opcode::NOT, d, a); }
void KernelBuilder::shli(Reg d, Reg a, std::int64_t sh) { emitAluImm(Opcode::SHL, d, a, sh); }
void KernelBuilder::shri(Reg d, Reg a, std::int64_t sh) { emitAluImm(Opcode::SHR, d, a, sh); }

void
KernelBuilder::imad(Reg d, Reg a, Reg b, Reg c)
{
    Instruction in = make(Opcode::IMAD);
    in.dst = d;
    in.srcs[0] = a;
    in.srcs[1] = b;
    in.srcs[2] = c;
    emit(in);
}

void KernelBuilder::fadd(Reg d, Reg a, Reg b) { emitAlu(Opcode::FADD, d, a, b); }
void KernelBuilder::fsub(Reg d, Reg a, Reg b) { emitAlu(Opcode::FSUB, d, a, b); }
void KernelBuilder::fmul(Reg d, Reg a, Reg b) { emitAlu(Opcode::FMUL, d, a, b); }
void KernelBuilder::fmin(Reg d, Reg a, Reg b) { emitAlu(Opcode::FMIN, d, a, b); }
void KernelBuilder::fmax(Reg d, Reg a, Reg b) { emitAlu(Opcode::FMAX, d, a, b); }

void
KernelBuilder::fmuli(Reg d, Reg a, double imm)
{
    emitAluImm(Opcode::FMUL, d, a,
               static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(imm)));
}

void
KernelBuilder::faddi(Reg d, Reg a, double imm)
{
    emitAluImm(Opcode::FADD, d, a,
               static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(imm)));
}

void
KernelBuilder::ffma(Reg d, Reg a, Reg b, Reg c)
{
    Instruction in = make(Opcode::FFMA);
    in.dst = d;
    in.srcs[0] = a;
    in.srcs[1] = b;
    in.srcs[2] = c;
    emit(in);
}

void KernelBuilder::frcp(Reg d, Reg a) { emitUnary(Opcode::FRCP, d, a); }
void KernelBuilder::frsq(Reg d, Reg a) { emitUnary(Opcode::FRSQ, d, a); }
void KernelBuilder::fsqrt(Reg d, Reg a) { emitUnary(Opcode::FSQRT, d, a); }
void KernelBuilder::fsin(Reg d, Reg a) { emitUnary(Opcode::FSIN, d, a); }
void KernelBuilder::fcos(Reg d, Reg a) { emitUnary(Opcode::FCOS, d, a); }
void KernelBuilder::fexp2(Reg d, Reg a) { emitUnary(Opcode::FEXP2, d, a); }
void KernelBuilder::flog2(Reg d, Reg a) { emitUnary(Opcode::FLOG2, d, a); }
void KernelBuilder::fdiv(Reg d, Reg a, Reg b) { emitAlu(Opcode::FDIV, d, a, b); }

void
KernelBuilder::setp(PredReg pd, Cmp c, Reg a, Reg b, bool fp)
{
    Instruction in = make(Opcode::SETP);
    in.predDst = pd;
    in.cmp = c;
    in.fcmp = fp;
    in.srcs[0] = a;
    in.srcs[1] = b;
    emit(in);
}

void
KernelBuilder::setpi(PredReg pd, Cmp c, Reg a, std::int64_t imm)
{
    Instruction in = make(Opcode::SETP);
    in.predDst = pd;
    in.cmp = c;
    in.srcs[0] = a;
    in.imm = imm;
    in.useImm = true;
    emit(in);
}

void
KernelBuilder::psetp(PredReg pd, PLogic op, PredReg pa, PredReg pb)
{
    Instruction in = make(Opcode::PSETP);
    in.predDst = pd;
    in.plogic = op;
    in.predA = pa;
    in.predB = pb;
    emit(in);
}

void
KernelBuilder::sel(Reg d, Reg a, Reg b, PredReg selp)
{
    Instruction in = make(Opcode::SEL);
    in.dst = d;
    in.srcs[0] = a;
    in.srcs[1] = b;
    in.predA = selp;
    emit(in);
}

void
KernelBuilder::emitBranch(Opcode op, Label l)
{
    GEX_ASSERT(l >= 0 && static_cast<size_t>(l) < labelPc_.size());
    Instruction in = make(op);
    int pc = labelPc_[static_cast<size_t>(l)];
    if (pc >= 0) {
        in.target = pc;
    } else {
        fixups_.emplace_back(insts_.size(), l);
    }
    emit(in);
}

void KernelBuilder::bra(Label l) { emitBranch(Opcode::BRA, l); }
void KernelBuilder::ssy(Label l) { emitBranch(Opcode::SSY, l); }
void KernelBuilder::join() { emit(make(Opcode::JOIN)); }
void KernelBuilder::bar() { emit(make(Opcode::BAR)); }
void KernelBuilder::exit() { emit(make(Opcode::EXIT)); }
void KernelBuilder::membar() { emit(make(Opcode::MEMBAR)); }
void KernelBuilder::nop() { emit(make(Opcode::NOP)); }

void
KernelBuilder::ldGlobal(Reg d, Reg base, std::int64_t off)
{
    Instruction in = make(Opcode::LD_GLOBAL);
    in.dst = d;
    in.srcs[0] = base;
    in.imm = off;
    emit(in);
}

void
KernelBuilder::stGlobal(Reg base, std::int64_t off, Reg val)
{
    Instruction in = make(Opcode::ST_GLOBAL);
    in.srcs[0] = base;
    in.srcs[1] = val;
    in.imm = off;
    emit(in);
}

void
KernelBuilder::ldShared(Reg d, Reg base, std::int64_t off)
{
    Instruction in = make(Opcode::LD_SHARED);
    in.dst = d;
    in.srcs[0] = base;
    in.imm = off;
    emit(in);
}

void
KernelBuilder::stShared(Reg base, std::int64_t off, Reg val)
{
    Instruction in = make(Opcode::ST_SHARED);
    in.srcs[0] = base;
    in.srcs[1] = val;
    in.imm = off;
    emit(in);
}

namespace {
isa::Instruction
makeAtom(Opcode op, Reg d, Reg addr, Reg val, PredReg pred, bool neg)
{
    Instruction in;
    in.op = op;
    in.pred = pred;
    in.predNeg = neg;
    in.dst = d;
    in.srcs[0] = addr;
    in.srcs[1] = val;
    return in;
}
} // namespace

void
KernelBuilder::atomAdd(Reg d, Reg addr, Reg val)
{
    emit(makeAtom(Opcode::ATOM_ADD, d, addr, val, guardPred_, guardNeg_));
}

void
KernelBuilder::atomMin(Reg d, Reg addr, Reg val)
{
    emit(makeAtom(Opcode::ATOM_MIN, d, addr, val, guardPred_, guardNeg_));
}

void
KernelBuilder::atomMax(Reg d, Reg addr, Reg val)
{
    emit(makeAtom(Opcode::ATOM_MAX, d, addr, val, guardPred_, guardNeg_));
}

void
KernelBuilder::atomExch(Reg d, Reg addr, Reg val)
{
    emit(makeAtom(Opcode::ATOM_EXCH, d, addr, val, guardPred_, guardNeg_));
}

void
KernelBuilder::atomCas(Reg d, Reg addr, Reg cmp, Reg swap)
{
    Instruction in = make(Opcode::ATOM_CAS);
    in.dst = d;
    in.srcs[0] = addr;
    in.srcs[1] = cmp;
    in.srcs[2] = swap;
    emit(in);
}

void
KernelBuilder::alloc(Reg d, Reg size)
{
    Instruction in = make(Opcode::ALLOC);
    in.dst = d;
    in.srcs[0] = size;
    emit(in);
}

isa::Program
KernelBuilder::build()
{
    for (const auto &[pc, l] : fixups_) {
        int t = labelPc_[static_cast<size_t>(l)];
        if (t < 0)
            fatal("kernel '%s': label %d never bound", name_.c_str(), l);
        insts_[pc].target = t;
    }
    fixups_.clear();

    int regs = std::max(maxReg_ + 1, minRegs_);
    if (regs <= 0)
        regs = 1;
    isa::Program prog(name_, insts_, regs, sharedBytes_, numParams_);
    prog.validate();
    return prog;
}

} // namespace gex::kasm
