/**
 * @file
 * Tokenizer for the .kasm assembly text format.
 */

#ifndef GEX_KASM_LEXER_HPP
#define GEX_KASM_LEXER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace gex::kasm {

enum class TokKind {
    Ident,      ///< mnemonics, labels, directives (.regs), %special
    Number,     ///< integer (decimal/hex) or floating point
    Comma,
    LBracket,
    RBracket,
    Plus,
    Minus,
    Colon,
    At,
    Bang,
    Newline,
    End,
};

struct Token {
    TokKind kind;
    std::string text;    ///< identifier text
    std::int64_t ival = 0;
    double fval = 0.0;
    bool isFloat = false;
    int line = 0;
};

/**
 * Tokenize a full source string. Comments start with '#' or "//" and
 * run to end of line. Newlines are significant (statement separators).
 * Throws via fatal() on malformed input.
 */
std::vector<Token> lex(const std::string &src);

} // namespace gex::kasm

#endif // GEX_KASM_LEXER_HPP
