#include "kasm/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "common/log.hpp"

namespace gex::kasm {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '%';
}

} // namespace

std::vector<Token>
lex(const std::string &src)
{
    std::vector<Token> toks;
    int line = 1;
    size_t i = 0;
    const size_t n = src.size();

    auto push = [&](TokKind k) {
        Token t;
        t.kind = k;
        t.line = line;
        toks.push_back(t);
    };

    while (i < n) {
        char c = src[i];
        if (c == '#' || (c == '/' && i + 1 < n && src[i + 1] == '/')) {
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '\n') {
            if (!toks.empty() && toks.back().kind != TokKind::Newline)
                push(TokKind::Newline);
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        switch (c) {
          case ',': push(TokKind::Comma); ++i; continue;
          case '[': push(TokKind::LBracket); ++i; continue;
          case ']': push(TokKind::RBracket); ++i; continue;
          case '+': push(TokKind::Plus); ++i; continue;
          case ':': push(TokKind::Colon); ++i; continue;
          case '@': push(TokKind::At); ++i; continue;
          case '!': push(TokKind::Bang); ++i; continue;
          default: break;
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            if (c == '-')
                ++i;
            if (i >= n || !std::isdigit(static_cast<unsigned char>(src[i]))) {
                // A lone '-' acts as a minus sign token (offsets).
                Token t;
                t.kind = TokKind::Minus;
                t.line = line;
                toks.push_back(t);
                continue;
            }
            bool is_float = false;
            bool is_hex = false;
            if (src[i] == '0' && i + 1 < n &&
                (src[i + 1] == 'x' || src[i + 1] == 'X')) {
                is_hex = true;
                i += 2;
                while (i < n &&
                       std::isxdigit(static_cast<unsigned char>(src[i])))
                    ++i;
            } else {
                while (i < n &&
                       (std::isdigit(static_cast<unsigned char>(src[i])) ||
                        src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
                        ((src[i] == '-' || src[i] == '+') && i > start &&
                         (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
                    if (src[i] == '.' || src[i] == 'e' || src[i] == 'E')
                        is_float = true;
                    ++i;
                }
            }
            std::string text = src.substr(start, i - start);
            Token t;
            t.kind = TokKind::Number;
            t.line = line;
            t.text = text;
            if (is_float) {
                t.isFloat = true;
                t.fval = std::strtod(text.c_str(), nullptr);
            } else {
                t.ival = std::strtoll(text.c_str(), nullptr, is_hex ? 16 : 10);
            }
            toks.push_back(t);
            continue;
        }
        if (identChar(c)) {
            size_t start = i;
            while (i < n && identChar(src[i]))
                ++i;
            Token t;
            t.kind = TokKind::Ident;
            t.line = line;
            t.text = src.substr(start, i - start);
            toks.push_back(t);
            continue;
        }
        fatal("kasm lexer: unexpected character '%c' at line %d", c, line);
    }
    push(TokKind::End);
    return toks;
}

} // namespace gex::kasm
