#include "harness/journal.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "config/knob_registry.hpp"

namespace gex::harness {

namespace {

/**
 * FNV-1a accumulator. Every value is hashed with a length/tag prefix
 * baked into the field order below, so reordered or merged fields
 * cannot collide by concatenation.
 */
struct Fnv {
    std::uint64_t h = 14695981039346656037ull;

    void
    bytes(const void *p, std::size_t n)
    {
        const unsigned char *c = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= c[i];
            h *= 1099511628211ull;
        }
    }
    void
    u64(std::uint64_t v)
    {
        // Byte-serialize explicitly (not memcpy of the in-memory
        // representation) so the digest is endian-independent.
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        bytes(b, 8);
    }
    void i(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void
    s(const std::string &v)
    {
        u64(v.size());
        bytes(v.data(), v.size());
    }
};

PointStatus
pointStatusFromName(const std::string &name, bool *ok)
{
    *ok = true;
    if (name == "ok")
        return PointStatus::Ok;
    if (name == "failed")
        return PointStatus::Failed;
    if (name == "livelock")
        return PointStatus::Livelock;
    if (name == "budget")
        return PointStatus::Budget;
    *ok = false;
    return PointStatus::Failed;
}

std::string
digestHex(std::uint64_t d)
{
    return strprintf("%016llx", static_cast<unsigned long long>(d));
}

std::string
mapKey(const RunSpec &spec)
{
    return pointKey(spec) + "#" + digestHex(specDigest(spec));
}

} // namespace

std::string
pointKey(const RunSpec &spec)
{
    // Human-readable coordinates matching the report row fields.
    // inject rate uses json::formatNumber so the text is an exact
    // (round-trippable) spelling of the double.
    return strprintf(
        "%s@%d|%s|%s|%s|%s|%s:%s:%llu", spec.workload.c_str(), spec.scale,
        spec.groupLabel().c_str(), spec.seriesLabel().c_str(),
        gpu::schemeName(spec.cfg.scheme), vm::policyName(spec.policy),
        inject::modelName(spec.policy.inject.model),
        json::formatNumber(spec.policy.inject.rate).c_str(),
        static_cast<unsigned long long>(spec.policy.inject.seed));
}

std::uint64_t
specDigest(const RunSpec &spec)
{
    // The config contribution is the knob registry's resultDigest:
    // every digested knob (everything that can change the recorded
    // outcome of a point, including the watchdog/budget knobs that
    // decide how a non-terminating point is classified) hashed as
    // (name, typed value) in registry order. Execution-only knobs
    // (GpuConfig::smThreads, and the engine's --jobs) are excluded by
    // the registry — pure parallelism with bit-identical results — as
    // are the group/series labels, which are naming only (and already
    // part of the point key). A new knob registration automatically
    // lands here; it can never silently be excluded from resume
    // keying. Hashing names alongside values also means a journal
    // written before a knob existed never resumes against a binary
    // that has it (the points safely re-run).
    Fnv f;
    f.s(spec.workload);
    f.i(spec.scale);
    config::RunParams params;
    params.cfg = spec.cfg;
    params.policy = spec.policy;
    f.u64(config::KnobRegistry::instance().resultDigest(params));
    return f.h;
}

CampaignJournal::CampaignJournal(std::string path)
    : path_(std::move(path))
{}

std::size_t
CampaignJournal::load()
{
    if (!active())
        return 0;
    std::ifstream is(path_);
    if (!is)
        return 0; // no journal yet: a fresh campaign
    std::lock_guard<std::mutex> lock(mu_);
    std::string line;
    std::size_t loaded = 0, lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string perr;
        std::unique_ptr<json::Value> v = json::parse(line, &perr);
        bool ok = false;
        if (v && v->isObject()) {
            const json::Value *key = v->find("key");
            const json::Value *digest = v->find("digest");
            const json::Value *status = v->find("status");
            if (key && key->isString() && digest && digest->isString() &&
                status && status->isString()) {
                bool known = false;
                RunRecord rec;
                rec.status =
                    pointStatusFromName(status->asString(), &known);
                if (known) {
                    const json::Value *f;
                    if ((f = v->find("cycles")) && f->isNumber())
                        rec.result.cycles =
                            static_cast<Cycle>(f->number);
                    if ((f = v->find("instructions")) && f->isNumber())
                        rec.result.instructions =
                            static_cast<std::uint64_t>(f->number);
                    if ((f = v->find("error")) && f->isString())
                        rec.error = f->str;
                    if ((f = v->find("attempts")) && f->isNumber())
                        rec.attempts = static_cast<int>(f->number);
                    if ((f = v->find("stats")) && f->isObject())
                        for (const auto &kv : f->members)
                            if (kv.second.isNumber())
                                rec.result.stats.set(kv.first,
                                                     kv.second.number);
                    Entry &e = entries_[key->asString() + "#" +
                                        digest->asString()];
                    e.line = line;
                    e.rec = std::move(rec);
                    ok = true;
                    ++loaded;
                }
            }
        }
        if (!ok)
            logf(LogLevel::Warn,
                 "journal %s line %zu unreadable (%s); skipping it",
                 path_.c_str(), lineno,
                 perr.empty() ? "unexpected shape" : perr.c_str());
    }
    return loaded;
}

bool
CampaignJournal::lookup(const RunSpec &spec, RunRecord *out) const
{
    if (!active())
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(mapKey(spec));
    if (it == entries_.end())
        return false;
    out->result = it->second.rec.result;
    out->status = it->second.rec.status;
    out->error = it->second.rec.error;
    out->attempts = it->second.rec.attempts;
    return true;
}

void
CampaignJournal::record(const RunRecord &rec)
{
    if (!active())
        return;
    std::ostringstream os;
    json::Writer w(os, -1); // compact: one line per point
    w.beginObject();
    w.key("key").value(pointKey(rec.spec));
    w.key("digest").value(digestHex(specDigest(rec.spec)));
    w.key("status").value(pointStatusName(rec.status));
    w.key("attempts").value(rec.attempts);
    w.key("error").value(rec.error);
    w.key("cycles").value(static_cast<std::uint64_t>(rec.result.cycles));
    w.key("instructions").value(rec.result.instructions);
    w.key("stats");
    rec.result.stats.writeJson(w);
    w.endObject();

    Entry e;
    e.line = os.str();
    e.rec.result = rec.result;
    e.rec.status = rec.status;
    e.rec.error = rec.error;
    e.rec.attempts = rec.attempts;

    std::lock_guard<std::mutex> lock(mu_);
    entries_[mapKey(rec.spec)] = std::move(e);
    writeAllLocked();
}

std::size_t
CampaignJournal::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
CampaignJournal::writeAllLocked() const
{
    // Rewrite the whole document to a sibling tmp file and rename it
    // over the journal: readers (and a resume after SIGKILL) only ever
    // see a complete, parseable JSONL document.
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            throw ConfigError(strprintf(
                "cannot open journal temp file '%s' for writing",
                tmp.c_str()));
        for (const auto &kv : entries_)
            os << kv.second.line << "\n";
        os.flush();
        if (!os)
            throw ConfigError(
                strprintf("short write to journal temp file '%s'",
                          tmp.c_str()));
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        throw ConfigError(strprintf("cannot rename '%s' over '%s'",
                                    tmp.c_str(), path_.c_str()));
}

} // namespace gex::harness
