/**
 * @file
 * Parallel sweep engine: executes an arbitrary (workload × scheme ×
 * GpuConfig × VmPolicy) grid on a thread pool, sharing each workload's
 * one-time functional trace across all timing runs, and collects every
 * run's SimResult + StatSet into a deterministic, order-independent
 * result table with JSON export.
 *
 * Determinism: each grid point is an independent simulation on its own
 * Gpu instance over a shared read-only trace (see the thread-safety
 * contract on gpu::Gpu::run), and results land at the index their spec
 * was add()ed with — so a sweep's result table is bit-identical
 * regardless of the number of worker threads or their interleaving.
 */

#ifndef GEX_HARNESS_SWEEP_HPP
#define GEX_HARNESS_SWEEP_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "config/knob_registry.hpp"
#include "func/functional_sim.hpp"
#include "func/kernel.hpp"
#include "func/memory.hpp"
#include "gpu/config.hpp"
#include "gpu/gpu.hpp"
#include "trace/trace.hpp"
#include "vm/memory_manager.hpp"
#include "workloads/workloads.hpp"

namespace gex::harness {

/** A workload plus its one-time functional trace. */
struct TracedWorkload {
    std::string name;
    int scale = 1;
    std::unique_ptr<func::GlobalMemory> mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

/** Build and functionally trace the named workload (fatal if unknown). */
TracedWorkload buildTraced(const std::string &name, int scale = 1);

/**
 * Thread-safe trace cache: each (workload, scale) pair is built and
 * functionally traced exactly once, no matter how many timing runs
 * (or worker threads) request it. References stay valid for the cache's
 * lifetime.
 */
class TraceCache
{
  public:
    const TracedWorkload &get(const std::string &name, int scale = 1);

    std::size_t size() const;

  private:
    struct Entry {
        std::once_flag once;
        TracedWorkload tw;
    };

    mutable std::mutex mu_;
    std::map<std::pair<std::string, int>, std::unique_ptr<Entry>>
        entries_;
};

/** One point of a sweep grid. */
struct RunSpec {
    std::string workload;
    int scale = 1;
    gpu::GpuConfig cfg;
    vm::VmPolicy policy = vm::VmPolicy::allResident();

    /**
     * Row label in reports; defaults to the workload name. Runs that
     * should be compared against each other (normalization) share a
     * group.
     */
    std::string group;
    /** Column label in reports; defaults to schemeName(cfg.scheme). */
    std::string series;

    const std::string &groupLabel() const
    {
        return group.empty() ? workload : group;
    }
    std::string seriesLabel() const
    {
        return series.empty() ? gpu::schemeName(cfg.scheme) : series;
    }
};

/**
 * Outcome of one grid point. A failed point never kills its sweep: the
 * engine classifies the error, records it here, and moves on — summary
 * rows (geomeans, normalization) are computed over Ok points only.
 */
enum class PointStatus : std::uint8_t {
    Ok,       ///< simulation completed
    Failed,   ///< ConfigError/TraceError/unknown exception
    Livelock, ///< the forward-progress watchdog tripped
    Budget,   ///< GpuConfig::maxCycles exceeded
};

/** Canonical status name ("ok", "failed", "livelock", "budget"). */
const char *pointStatusName(PointStatus s);

/** A finished grid point: its spec, timing result and derived values. */
struct RunRecord {
    RunSpec spec;
    gpu::SimResult result;
    /**
     * Bench-computed per-run metrics (e.g. "normalized" performance
     * relative to a baseline series), included in the JSON output.
     */
    std::map<std::string, double> derived;

    PointStatus status = PointStatus::Ok;
    /** "<Kind>: <message>" plus diagnostics when status != Ok. */
    std::string error;
    /** Executions of this point (1 + retries of transient failures). */
    int attempts = 1;

    bool ok() const { return status == PointStatus::Ok; }
};

/**
 * The sweep engine proper. add() grid points, then run() them all:
 *
 *     harness::SweepEngine eng(jobs);
 *     for (const auto &w : workloads)
 *         for (auto s : schemes) {
 *             harness::RunSpec rs;
 *             rs.workload = w;
 *             rs.cfg.scheme = s;
 *             eng.add(std::move(rs));
 *         }
 *     std::vector<harness::RunRecord> runs = eng.run();
 */
class SweepEngine
{
  public:
    /** @p jobs worker threads; <= 0 means hardware concurrency. */
    explicit SweepEngine(int jobs = 1);

    /** Queue a grid point; returns its index in the result table. */
    std::size_t add(RunSpec spec);

    std::size_t size() const { return specs_.size(); }
    int jobs() const { return jobs_; }

    /**
     * Execute every queued run and return records in add() order.
     * Blocks until all runs finish. May be called repeatedly; each
     * call consumes the specs queued since the previous one. Traces
     * are cached across calls.
     *
     * Resilience contract (docs/ROBUSTNESS.md): a point that throws
     * is recorded with its classified PointStatus and error text —
     * the sweep itself always completes. Failed (but not livelocked
     * or budget-exceeded: those are deterministic) points are retried
     * up to maxRetries() times before being recorded.
     */
    std::vector<RunRecord> run();

    /** The engine's trace cache (shared across run() calls). */
    TraceCache &traces() { return cache_; }

    /** Retries for transiently-Failed points (default 1). */
    int maxRetries() const { return maxRetries_; }
    void setMaxRetries(int n) { maxRetries_ = n < 0 ? 0 : n; }

    /**
     * Attach a crash-resume journal (nullptr detaches): points already
     * journaled are restored instead of re-run, and every finished
     * point is recorded. The journal must outlive run().
     */
    void setJournal(class CampaignJournal *j) { journal_ = j; }

  private:
    int jobs_;
    int maxRetries_ = 1;
    class CampaignJournal *journal_ = nullptr;
    TraceCache cache_;
    std::vector<RunSpec> specs_;
};

/**
 * For every group, set derived[@p key] = base.cycles / run.cycles on
 * each run, where base is the group's run in @p baseSeries (the usual
 * "normalized to baseline, higher is better" metric of the paper's
 * figures). Groups without a base run are left untouched.
 */
void normalizeToSeries(std::vector<RunRecord> &runs,
                       const std::string &baseSeries,
                       const std::string &key = "normalized");

/**
 * Geometric mean of derived[@p key] per series, over the runs that
 * carry the key (e.g. fig10's per-scheme geomean row). Series with no
 * such runs are absent from the result.
 */
std::map<std::string, double>
seriesGeomeans(const std::vector<RunRecord> &runs,
               const std::string &key = "normalized");

/**
 * A complete sweep outcome: metadata + per-run records + summary
 * rows, serializable as one BENCH_*.json document (schema documented
 * in docs/METRICS.md).
 */
struct SweepReport {
    std::string name;        ///< bench/tool name ("fig10_schemes", ...)
    int jobs = 1;            ///< worker threads used
    double wallSeconds = 0;  ///< sweep wall-clock time
    /**
     * Omit the execution-environment fields (jobs, wall_seconds) from
     * the JSON so the document is a pure function of the grid and its
     * results. Set by the tools whenever a resume journal is in use:
     * the resume contract promises a resumed campaign's final JSON is
     * byte-identical to an uninterrupted run's at any --jobs.
     */
    bool deterministic = false;
    /**
     * The campaign's base configuration (grid axes aside), emitted as
     * the `resolved_config` provenance manifest: one member per
     * digested registry knob (config::KnobRegistry::writeManifest).
     * Feeding the manifest back through `--config` reproduces the
     * run's result-affecting state exactly. Unset: no manifest (old
     * schema).
     */
    std::optional<config::RunParams> baseConfig;
    std::vector<RunRecord> runs;
    std::map<std::string, double> geomeans; ///< per-series summary

    /** Runs with the given status. */
    std::size_t countStatus(PointStatus s) const;

    void writeJson(std::ostream &os) const;

    /** writeJson() to @p path; throws ConfigError when unwritable. */
    void saveJson(const std::string &path) const;
};

} // namespace gex::harness

#endif // GEX_HARNESS_SWEEP_HPP
