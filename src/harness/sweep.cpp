#include "harness/sweep.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <thread>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "harness/journal.hpp"

namespace gex::harness {

TracedWorkload
buildTraced(const std::string &name, int scale)
{
    TracedWorkload tw;
    tw.name = name;
    tw.scale = scale;
    tw.mem = std::make_unique<func::GlobalMemory>();
    auto w = workloads::make(name, *tw.mem, scale);
    tw.kernel = std::move(w.kernel);
    func::FunctionalSim fsim(*tw.mem);
    tw.trace = fsim.run(tw.kernel);
    return tw;
}

const TracedWorkload &
TraceCache::get(const std::string &name, int scale)
{
    Entry *e;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &slot = entries_[{name, scale}];
        if (!slot)
            slot = std::make_unique<Entry>();
        e = slot.get();
    }
    // Build outside the map lock so distinct workloads trace
    // concurrently; call_once serializes builders of the same one.
    std::call_once(e->once,
                   [&] { e->tw = buildTraced(name, scale); });
    return e->tw;
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

SweepEngine::SweepEngine(int jobs)
{
    if (jobs <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw ? static_cast<int>(hw) : 1;
    }
    jobs_ = jobs;
}

std::size_t
SweepEngine::add(RunSpec spec)
{
    specs_.push_back(std::move(spec));
    return specs_.size() - 1;
}

const char *
pointStatusName(PointStatus s)
{
    switch (s) {
    case PointStatus::Ok: return "ok";
    case PointStatus::Failed: return "failed";
    case PointStatus::Livelock: return "livelock";
    case PointStatus::Budget: return "budget";
    }
    return "?";
}

namespace {

/**
 * Execute one grid point, classifying any thrown error instead of
 * propagating it (docs/ROBUSTNESS.md): the record always comes back
 * filled. Failed points (ConfigError, TraceError, DeadlockError,
 * unknown exceptions — anything potentially transient or environmental)
 * are retried up to @p maxRetries times; Livelock and Budget outcomes
 * are deterministic functions of the spec and never retried.
 */
void
runOnePoint(TraceCache &cache, const RunSpec &rs, int maxRetries,
            RunRecord &rec)
{
    rec.spec = rs;
    for (int attempt = 1;; ++attempt) {
        rec.attempts = attempt;
        rec.status = PointStatus::Ok;
        rec.error.clear();
        try {
            const TracedWorkload &tw = cache.get(rs.workload, rs.scale);
            gpu::Gpu g(rs.cfg);
            rec.result = g.run(tw.kernel, tw.trace, rs.policy);
            return;
        } catch (const LivelockError &ex) {
            rec.status = PointStatus::Livelock;
            rec.error = ex.report();
        } catch (const CycleBudgetExceeded &ex) {
            rec.status = PointStatus::Budget;
            rec.error = ex.report();
        } catch (const GexError &ex) {
            rec.status = PointStatus::Failed;
            rec.error = ex.report();
        } catch (const std::exception &ex) {
            rec.status = PointStatus::Failed;
            rec.error = std::string("exception: ") + ex.what();
        }
        rec.result = gpu::SimResult{};
        if (rec.status != PointStatus::Failed || attempt > maxRetries) {
            logf(LogLevel::Warn, "grid point %s: %s (recorded, %d %s)",
                 pointKey(rs).c_str(), pointStatusName(rec.status),
                 attempt, attempt == 1 ? "attempt" : "attempts");
            return;
        }
        logf(LogLevel::Warn, "grid point %s failed (attempt %d/%d); "
             "retrying", pointKey(rs).c_str(), attempt, maxRetries + 1);
    }
}

} // namespace

std::vector<RunRecord>
SweepEngine::run()
{
    std::vector<RunSpec> specs = std::move(specs_);
    specs_.clear();

    std::vector<RunRecord> records(specs.size());
    std::atomic<std::size_t> nextIdx{0};
    std::atomic<bool> stop{false};
    std::mutex errMu;
    std::string campaignError; // journal I/O death, not a point failure

    auto worker = [&]() {
        while (!stop.load(std::memory_order_relaxed)) {
            std::size_t i = nextIdx.fetch_add(1);
            if (i >= specs.size())
                return;
            const RunSpec &rs = specs[i];
            RunRecord &rec = records[i];
            if (journal_ && journal_->lookup(rs, &rec)) {
                rec.spec = rs;
                continue;
            }
            runOnePoint(cache_, rs, maxRetries_, rec);
            // The journal write sits outside the point's own error
            // handling: an unwritable journal is campaign-level
            // trouble (the resume contract can no longer be honored),
            // not a property of this grid point.
            if (journal_) {
                try {
                    journal_->record(rec);
                } catch (const std::exception &ex) {
                    std::lock_guard<std::mutex> lock(errMu);
                    if (campaignError.empty())
                        campaignError = ex.what();
                    stop.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        }
    };

    int nthreads =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(jobs_), specs.size()));
    if (nthreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(nthreads));
        for (int t = 0; t < nthreads; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }

    if (!campaignError.empty())
        throw ConfigError("sweep journal failed: " + campaignError);
    return records;
}

void
normalizeToSeries(std::vector<RunRecord> &runs,
                  const std::string &baseSeries, const std::string &key)
{
    std::map<std::string, double> baseCycles;
    for (const RunRecord &r : runs)
        if (r.ok() && r.spec.seriesLabel() == baseSeries)
            baseCycles[r.spec.groupLabel()] =
                static_cast<double>(r.result.cycles);
    for (RunRecord &r : runs) {
        if (!r.ok())
            continue;
        auto it = baseCycles.find(r.spec.groupLabel());
        if (it == baseCycles.end() || r.result.cycles == 0)
            continue;
        r.derived[key] =
            it->second / static_cast<double>(r.result.cycles);
    }
}

std::map<std::string, double>
seriesGeomeans(const std::vector<RunRecord> &runs, const std::string &key)
{
    std::map<std::string, std::vector<double>> bySeries;
    for (const RunRecord &r : runs) {
        if (!r.ok())
            continue;
        auto it = r.derived.find(key);
        if (it != r.derived.end() && it->second > 0.0)
            bySeries[r.spec.seriesLabel()].push_back(it->second);
    }
    std::map<std::string, double> out;
    for (const auto &kv : bySeries)
        out[kv.first] = geomean(kv.second);
    return out;
}

std::size_t
SweepReport::countStatus(PointStatus s) const
{
    std::size_t n = 0;
    for (const RunRecord &r : runs)
        if (r.status == s)
            ++n;
    return n;
}

void
SweepReport::writeJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject();
    w.key("name").value(name);
    if (baseConfig) {
        w.key("resolved_config");
        config::KnobRegistry::instance().writeManifest(w, *baseConfig);
    }
    if (!deterministic) {
        // Execution-environment fields; omitted under the resume
        // contract so a resumed campaign's document is byte-identical
        // to an uninterrupted run's at any --jobs (docs/ROBUSTNESS.md).
        w.key("jobs").value(jobs);
        w.key("wall_seconds").value(wallSeconds);
    }
    w.key("runs").beginArray();
    for (const RunRecord &r : runs) {
        w.beginObject();
        w.key("workload").value(r.spec.workload);
        w.key("scale").value(r.spec.scale);
        w.key("group").value(r.spec.groupLabel());
        w.key("series").value(r.spec.seriesLabel());
        w.key("scheme").value(gpu::schemeName(r.spec.cfg.scheme));
        w.key("policy").value(vm::policyName(r.spec.policy));
        // Fault-injection coordinates of the run; "none"/0/seed for
        // injection-free runs, so rows of one campaign stay uniform.
        w.key("inject_model")
            .value(inject::modelName(r.spec.policy.inject.model));
        w.key("inject_rate").value(r.spec.policy.inject.rate);
        w.key("inject_seed").value(r.spec.policy.inject.seed);
        w.key("status").value(pointStatusName(r.status));
        w.key("attempts").value(r.attempts);
        w.key("error").value(r.error);
        w.key("cycles").value(
            static_cast<std::uint64_t>(r.result.cycles));
        w.key("instructions").value(r.result.instructions);
        w.key("ipc").value(r.result.ipc());
        w.key("derived").beginObject();
        for (const auto &kv : r.derived)
            w.key(kv.first).value(kv.second);
        w.endObject();
        w.key("stats");
        r.result.stats.writeJson(w);
        w.endObject();
    }
    w.endArray();
    w.key("geomeans").beginObject();
    for (const auto &kv : geomeans)
        w.key(kv.first).value(kv.second);
    w.endObject();
    w.endObject();
    os << "\n";
    GEX_ASSERT(w.complete());
}

void
SweepReport::saveJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        throw ConfigError(
            strprintf("cannot open '%s' for writing", path.c_str()));
    writeJson(os);
}

} // namespace gex::harness
