#include "harness/sweep.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <thread>

#include "common/json.hpp"
#include "common/log.hpp"

namespace gex::harness {

TracedWorkload
buildTraced(const std::string &name, int scale)
{
    TracedWorkload tw;
    tw.name = name;
    tw.scale = scale;
    tw.mem = std::make_unique<func::GlobalMemory>();
    auto w = workloads::make(name, *tw.mem, scale);
    tw.kernel = std::move(w.kernel);
    func::FunctionalSim fsim(*tw.mem);
    tw.trace = fsim.run(tw.kernel);
    return tw;
}

const TracedWorkload &
TraceCache::get(const std::string &name, int scale)
{
    Entry *e;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto &slot = entries_[{name, scale}];
        if (!slot)
            slot = std::make_unique<Entry>();
        e = slot.get();
    }
    // Build outside the map lock so distinct workloads trace
    // concurrently; call_once serializes builders of the same one.
    std::call_once(e->once,
                   [&] { e->tw = buildTraced(name, scale); });
    return e->tw;
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

SweepEngine::SweepEngine(int jobs)
{
    if (jobs <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw ? static_cast<int>(hw) : 1;
    }
    jobs_ = jobs;
}

std::size_t
SweepEngine::add(RunSpec spec)
{
    specs_.push_back(std::move(spec));
    return specs_.size() - 1;
}

std::vector<RunRecord>
SweepEngine::run()
{
    std::vector<RunSpec> specs = std::move(specs_);
    specs_.clear();

    std::vector<RunRecord> records(specs.size());
    std::atomic<std::size_t> nextIdx{0};
    std::atomic<bool> failed{false};
    std::mutex errMu;
    std::string firstError;

    auto worker = [&]() {
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i = nextIdx.fetch_add(1);
            if (i >= specs.size())
                return;
            try {
                const RunSpec &rs = specs[i];
                const TracedWorkload &tw =
                    cache_.get(rs.workload, rs.scale);
                gpu::Gpu g(rs.cfg);
                records[i].spec = rs;
                records[i].result =
                    g.run(tw.kernel, tw.trace, rs.policy);
            } catch (const std::exception &ex) {
                std::lock_guard<std::mutex> lock(errMu);
                if (firstError.empty())
                    firstError = ex.what();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    int nthreads =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(jobs_), specs.size()));
    if (nthreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(nthreads));
        for (int t = 0; t < nthreads; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }

    if (failed.load())
        fatal("sweep run failed: %s", firstError.c_str());
    return records;
}

void
normalizeToSeries(std::vector<RunRecord> &runs,
                  const std::string &baseSeries, const std::string &key)
{
    std::map<std::string, double> baseCycles;
    for (const RunRecord &r : runs)
        if (r.spec.seriesLabel() == baseSeries)
            baseCycles[r.spec.groupLabel()] =
                static_cast<double>(r.result.cycles);
    for (RunRecord &r : runs) {
        auto it = baseCycles.find(r.spec.groupLabel());
        if (it == baseCycles.end() || r.result.cycles == 0)
            continue;
        r.derived[key] =
            it->second / static_cast<double>(r.result.cycles);
    }
}

std::map<std::string, double>
seriesGeomeans(const std::vector<RunRecord> &runs, const std::string &key)
{
    std::map<std::string, std::vector<double>> bySeries;
    for (const RunRecord &r : runs) {
        auto it = r.derived.find(key);
        if (it != r.derived.end() && it->second > 0.0)
            bySeries[r.spec.seriesLabel()].push_back(it->second);
    }
    std::map<std::string, double> out;
    for (const auto &kv : bySeries)
        out[kv.first] = geomean(kv.second);
    return out;
}

void
SweepReport::writeJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject();
    w.key("name").value(name);
    w.key("jobs").value(jobs);
    w.key("wall_seconds").value(wallSeconds);
    w.key("runs").beginArray();
    for (const RunRecord &r : runs) {
        w.beginObject();
        w.key("workload").value(r.spec.workload);
        w.key("scale").value(r.spec.scale);
        w.key("group").value(r.spec.groupLabel());
        w.key("series").value(r.spec.seriesLabel());
        w.key("scheme").value(gpu::schemeName(r.spec.cfg.scheme));
        w.key("policy").value(vm::policyName(r.spec.policy));
        // Fault-injection coordinates of the run; "none"/0/seed for
        // injection-free runs, so rows of one campaign stay uniform.
        w.key("inject_model")
            .value(inject::modelName(r.spec.policy.inject.model));
        w.key("inject_rate").value(r.spec.policy.inject.rate);
        w.key("inject_seed").value(r.spec.policy.inject.seed);
        w.key("cycles").value(
            static_cast<std::uint64_t>(r.result.cycles));
        w.key("instructions").value(r.result.instructions);
        w.key("ipc").value(r.result.ipc());
        w.key("derived").beginObject();
        for (const auto &kv : r.derived)
            w.key(kv.first).value(kv.second);
        w.endObject();
        w.key("stats");
        r.result.stats.writeJson(w);
        w.endObject();
    }
    w.endArray();
    w.key("geomeans").beginObject();
    for (const auto &kv : geomeans)
        w.key(kv.first).value(kv.second);
    w.endObject();
    w.endObject();
    os << "\n";
    GEX_ASSERT(w.complete());
}

void
SweepReport::saveJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    writeJson(os);
}

} // namespace gex::harness
