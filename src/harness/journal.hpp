/**
 * @file
 * Crash-resumable campaign journal: an append-only JSONL record of
 * every finished grid point, written atomically (tmp + rename) after
 * each point so a campaign killed at any instant can be resumed with
 * `--resume` and produce the exact final report an uninterrupted run
 * would have produced (docs/ROBUSTNESS.md, "Resume contract").
 *
 * Each line is one JSON object keyed by (point key, config digest):
 * the key names the grid coordinates a human recognizes, the digest
 * fingerprints every result-affecting configuration field, so a
 * journal written under different knobs — or by an older grid — can
 * never satisfy a lookup it shouldn't. Execution-only knobs (--jobs,
 * --sm-threads) are deliberately excluded from the digest: they do not
 * change results, and a campaign may be resumed at any parallelism.
 */

#ifndef GEX_HARNESS_JOURNAL_HPP
#define GEX_HARNESS_JOURNAL_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "harness/sweep.hpp"

namespace gex::harness {

/** Human-readable grid coordinates of @p spec (journal lookup key). */
std::string pointKey(const RunSpec &spec);

/**
 * FNV-1a digest over every field of @p spec that can change the
 * simulation result. Two specs with equal keys and equal digests are
 * guaranteed to produce identical SimResults.
 */
std::uint64_t specDigest(const RunSpec &spec);

/**
 * The journal proper. Thread-safe: SweepEngine workers record
 * completed points concurrently. A journal with an empty path is
 * inert (lookup misses, record drops) so call sites need no guards.
 */
class CampaignJournal
{
  public:
    explicit CampaignJournal(std::string path = {});

    const std::string &path() const { return path_; }
    bool active() const { return !path_.empty(); }

    /**
     * Load existing entries from path() if the file exists. Malformed
     * lines (a torn write from a previous crash, a corrupt byte) are
     * skipped with a warning — everything parseable still resumes.
     * Returns the number of entries loaded.
     */
    std::size_t load();

    /**
     * Look up a completed point. On a hit, fills @p out's result,
     * status, error and attempts fields (the spec is the caller's) and
     * returns true.
     */
    bool lookup(const RunSpec &spec, RunRecord *out) const;

    /**
     * Record a finished point and rewrite the journal file atomically
     * (write to "<path>.tmp", then rename over path()). The journal
     * is therefore a complete, valid JSONL document after every
     * point, whatever instant the process dies.
     */
    void record(const RunRecord &rec);

    std::size_t size() const;

  private:
    struct Entry {
        std::string line; ///< serialized JSONL line (kept for rewrite)
        RunRecord rec;    ///< result/status fields only
    };

    void writeAllLocked() const;

    std::string path_;
    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_; ///< "<key>#<digest>" -> entry
};

} // namespace gex::harness

#endif // GEX_HARNESS_JOURNAL_HPP
