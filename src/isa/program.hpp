/**
 * @file
 * A Program is a validated straight-line array of instructions plus the
 * static resource metadata that determines SM occupancy.
 */

#ifndef GEX_ISA_PROGRAM_HPP
#define GEX_ISA_PROGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace gex::isa {

/**
 * A compiled kernel body. Instruction indices are the program counter
 * values used by branches and the divergence stack.
 */
class Program
{
  public:
    Program() = default;
    Program(std::string name, std::vector<Instruction> insts,
            int regs_per_thread, std::uint32_t shared_bytes,
            int num_params);

    const std::string &name() const { return name_; }
    const std::vector<Instruction> &insts() const { return insts_; }
    const Instruction &at(size_t pc) const { return insts_[pc]; }
    size_t size() const { return insts_.size(); }

    /** Architectural registers per thread (drives RF occupancy). */
    int regsPerThread() const { return regsPerThread_; }
    /** Static shared memory per thread block in bytes. */
    std::uint32_t sharedBytes() const { return sharedBytes_; }
    /** Number of kernel parameters expected by LDPARAM. */
    int numParams() const { return numParams_; }

    /**
     * Check structural invariants: branch targets in range, register
     * indices below regsPerThread, program ends in EXIT on every path
     * (approximated as: an EXIT exists and the last instruction is
     * EXIT or an unconditional BRA). Calls fatal() on violation.
     */
    void validate() const;

    /** Full disassembly listing, one instruction per line. */
    std::string disassemble() const;

  private:
    std::string name_;
    std::vector<Instruction> insts_;
    int regsPerThread_ = 0;
    std::uint32_t sharedBytes_ = 0;
    int numParams_ = 0;
};

} // namespace gex::isa

#endif // GEX_ISA_PROGRAM_HPP
