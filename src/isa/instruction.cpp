#include "isa/instruction.hpp"

#include <array>
#include <sstream>

#include "common/log.hpp"

namespace gex::isa {

namespace {

std::array<const char *, static_cast<size_t>(SpecialReg::NumSpecialRegs)>
    kSpecialNames = {
        "%tid.x",    "%tid.y",    "%tid.z",
        "%ntid.x",   "%ntid.y",   "%ntid.z",
        "%ctaid.x",  "%ctaid.y",  "%ctaid.z",
        "%nctaid.x", "%nctaid.y", "%nctaid.z",
        "%laneid",   "%warpid",   "%gtid",
};

std::string
regName(Reg r)
{
    if (r == kRegZero)
        return "rz";
    return "r" + std::to_string(static_cast<int>(r));
}

std::string
predName(PredReg p)
{
    if (p == kPredTrue)
        return "pt";
    return "p" + std::to_string(static_cast<int>(p));
}

} // namespace

std::string
specialRegName(SpecialReg r)
{
    auto idx = static_cast<size_t>(r);
    GEX_ASSERT(idx < kSpecialNames.size());
    return kSpecialNames[idx];
}

SpecialReg
specialRegFromName(const std::string &name)
{
    for (size_t i = 0; i < kSpecialNames.size(); ++i)
        if (name == kSpecialNames[i])
            return static_cast<SpecialReg>(i);
    return SpecialReg::NumSpecialRegs;
}

int
Instruction::numSrcRegs() const
{
    int n = traits().numSrcs;
    // CAS uses all three sources; plain atomics use two; loads one.
    return n;
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    if (pred != kPredTrue || predNeg)
        os << "@" << (predNeg ? "!" : "") << predName(pred) << " ";
    os << opcodeName(op);

    const auto &t = traits();
    switch (op) {
      case Opcode::MOVI:
        os << " " << regName(dst) << ", " << imm;
        break;
      case Opcode::S2R:
        os << " " << regName(dst) << ", "
           << specialRegName(static_cast<SpecialReg>(imm));
        break;
      case Opcode::LDPARAM:
        os << " " << regName(dst) << ", param[" << imm << "]";
        break;
      case Opcode::SETP:
        os << (fcmp ? ".f" : ".i") << "." << cmpName(cmp) << " "
           << predName(predDst) << ", " << regName(srcs[0]) << ", "
           << regName(srcs[1]);
        break;
      case Opcode::PSETP:
        os << " " << predName(predDst) << ", " << predName(predA) << ", "
           << predName(predB);
        break;
      case Opcode::SEL:
        os << " " << regName(dst) << ", " << regName(srcs[0]) << ", "
           << regName(srcs[1]) << ", " << predName(predA);
        break;
      case Opcode::BRA:
      case Opcode::SSY:
        os << " @" << target;
        break;
      case Opcode::LD_GLOBAL:
      case Opcode::LD_SHARED:
        os << " " << regName(dst) << ", [" << regName(srcs[0]);
        if (imm)
            os << (imm > 0 ? "+" : "") << imm;
        os << "]";
        break;
      case Opcode::ST_GLOBAL:
      case Opcode::ST_SHARED:
        os << " [" << regName(srcs[0]);
        if (imm)
            os << (imm > 0 ? "+" : "") << imm;
        os << "], " << regName(srcs[1]);
        break;
      case Opcode::ATOM_ADD:
      case Opcode::ATOM_MIN:
      case Opcode::ATOM_MAX:
      case Opcode::ATOM_EXCH:
        os << " " << regName(dst) << ", [" << regName(srcs[0]) << "], "
           << regName(srcs[1]);
        break;
      case Opcode::ATOM_CAS:
        os << " " << regName(dst) << ", [" << regName(srcs[0]) << "], "
           << regName(srcs[1]) << ", " << regName(srcs[2]);
        break;
      case Opcode::ALLOC:
        os << " " << regName(dst) << ", " << regName(srcs[0]);
        break;
      default: {
        bool first = true;
        if (writesReg() || (t.writesDst && dst == kRegZero)) {
            os << " " << regName(dst);
            first = false;
        }
        for (int i = 0; i < t.numSrcs; ++i) {
            os << (first ? " " : ", ") << regName(srcs[i]);
            first = false;
        }
        if (op == Opcode::SHL || op == Opcode::SHR ||
            op == Opcode::IADD || op == Opcode::IMUL) {
            if (imm)
                os << ", " << imm;
        }
        break;
      }
    }
    return os.str();
}

} // namespace gex::isa
