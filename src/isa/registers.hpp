/**
 * @file
 * Register identifiers: general purpose registers, predicate registers
 * and the read-only special registers exposed through S2R.
 */

#ifndef GEX_ISA_REGISTERS_HPP
#define GEX_ISA_REGISTERS_HPP

#include <cstdint>
#include <string>

namespace gex::isa {

/** General purpose register index (per thread, 64-bit each). */
using Reg = std::uint8_t;

/** Maximum addressable GPRs per thread (matches Kepler-class limits). */
inline constexpr int kMaxRegs = 240;

/** RZ: reads as zero, writes are discarded. */
inline constexpr Reg kRegZero = 255;

/** Predicate register index. */
using PredReg = std::uint8_t;

/** Number of writable predicate registers per thread. */
inline constexpr int kNumPreds = 7;

/** PT: always-true predicate; writes are discarded. */
inline constexpr PredReg kPredTrue = 7;

/**
 * Special (read-only) registers available via S2R.
 * Thread/block geometry mirrors the CUDA built-ins.
 */
enum class SpecialReg : std::uint8_t {
    TidX, TidY, TidZ,
    NTidX, NTidY, NTidZ,
    CtaIdX, CtaIdY, CtaIdZ,
    NCtaIdX, NCtaIdY, NCtaIdZ,
    LaneId,
    WarpId,
    GlobalTid,   ///< flattened global thread index (convenience)
    NumSpecialRegs,
};

/** Name like "%tid.x" for diagnostics and the assembler. */
std::string specialRegName(SpecialReg r);

/** Inverse of specialRegName; NumSpecialRegs when unknown. */
SpecialReg specialRegFromName(const std::string &name);

} // namespace gex::isa

#endif // GEX_ISA_REGISTERS_HPP
