#include "isa/opcodes.hpp"

#include <array>

#include "common/log.hpp"

namespace gex::isa {

namespace {

constexpr int kNum = static_cast<int>(Opcode::NumOpcodes);

// name, unit, global, shared, load, store, atomic, control, barrier,
// exit, writesDst, numSrcs[, canRaiseArith — value-initialized false
// when omitted]
constexpr std::array<OpTraits, kNum> kTraits = {{
    {"iadd",      Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"isub",      Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"imul",      Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"imad",      Unit::Math,  false,false,false,false,false,false,false,false,true, 3,false},
    {"imin",      Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"imax",      Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"and",       Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"or",        Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"xor",       Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"not",       Unit::Math,  false,false,false,false,false,false,false,false,true, 1,false},
    {"shl",       Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"shr",       Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"fadd",      Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"fsub",      Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"fmul",      Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"ffma",      Unit::Math,  false,false,false,false,false,false,false,false,true, 3,false},
    {"fmin",      Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"fmax",      Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"frcp",      Unit::Sfu,   false,false,false,false,false,false,false,false,true, 1,true },
    {"frsq",      Unit::Sfu,   false,false,false,false,false,false,false,false,true, 1,true },
    {"fsqrt",     Unit::Sfu,   false,false,false,false,false,false,false,false,true, 1,true },
    {"fsin",      Unit::Sfu,   false,false,false,false,false,false,false,false,true, 1,false},
    {"fcos",      Unit::Sfu,   false,false,false,false,false,false,false,false,true, 1,false},
    {"fexp2",     Unit::Sfu,   false,false,false,false,false,false,false,false,true, 1,false},
    {"flog2",     Unit::Sfu,   false,false,false,false,false,false,false,false,true, 1,true },
    {"fdiv",      Unit::Sfu,   false,false,false,false,false,false,false,false,true, 2,true },
    {"mov",       Unit::Math,  false,false,false,false,false,false,false,false,true, 1,false},
    {"movi",      Unit::Math,  false,false,false,false,false,false,false,false,true, 0,false},
    {"i2f",       Unit::Math,  false,false,false,false,false,false,false,false,true, 1,false},
    {"f2i",       Unit::Math,  false,false,false,false,false,false,false,false,true, 1,false},
    {"s2r",       Unit::Math,  false,false,false,false,false,false,false,false,true, 0,false},
    {"ldparam",   Unit::Math,  false,false,false,false,false,false,false,false,true, 0,false},
    {"sel",       Unit::Math,  false,false,false,false,false,false,false,false,true, 2,false},
    {"setp",      Unit::Math,  false,false,false,false,false,false,false,false,false,2,false},
    {"psetp",     Unit::Math,  false,false,false,false,false,false,false,false,false,0,false},
    {"bra",       Unit::Branch,false,false,false,false,false,true, false,false,false,0,false},
    {"ssy",       Unit::Branch,false,false,false,false,false,true, false,false,false,0,false},
    {"join",      Unit::Branch,false,false,false,false,false,true, false,false,false,0,false},
    {"bar",       Unit::Branch,false,false,false,false,false,true, true, false,false,0,false},
    {"exit",      Unit::Branch,false,false,false,false,false,true, false,true, false,0,false},
    {"ld.global", Unit::LdSt,  true, false,true, false,false,false,false,false,true, 1,false},
    {"st.global", Unit::LdSt,  true, false,false,true, false,false,false,false,false,2,false},
    {"ld.shared", Unit::Shared,false,true, true, false,false,false,false,false,true, 1,false},
    {"st.shared", Unit::Shared,false,true, false,true, false,false,false,false,false,2,false},
    {"atom.add",  Unit::LdSt,  true, false,true, true, true, false,false,false,true, 2,false},
    {"atom.min",  Unit::LdSt,  true, false,true, true, true, false,false,false,true, 2,false},
    {"atom.max",  Unit::LdSt,  true, false,true, true, true, false,false,false,true, 2,false},
    {"atom.exch", Unit::LdSt,  true, false,true, true, true, false,false,false,true, 2,false},
    {"atom.cas",  Unit::LdSt,  true, false,true, true, true, false,false,false,true, 3,false},
    {"membar",    Unit::Branch,false,false,false,false,false,true, false,false,false,0,false},
    {"alloc",     Unit::LdSt,  true, false,true, true, true, false,false,false,true, 1,false},
    {"nop",       Unit::None,  false,false,false,false,false,false,false,false,false,0,false},
}};

constexpr std::array<std::string_view, 6> kCmpNames =
    {"eq", "ne", "lt", "le", "gt", "ge"};

} // namespace

const OpTraits &
traits(Opcode op)
{
    int idx = static_cast<int>(op);
    GEX_ASSERT(idx >= 0 && idx < kNum, "bad opcode %d", idx);
    return kTraits[static_cast<size_t>(idx)];
}

std::string_view
opcodeName(Opcode op)
{
    return traits(op).name;
}

Opcode
opcodeFromName(std::string_view name)
{
    for (int i = 0; i < kNum; ++i)
        if (kTraits[static_cast<size_t>(i)].name == name)
            return static_cast<Opcode>(i);
    return Opcode::NumOpcodes;
}

bool
canRaiseArith(Opcode op)
{
    return traits(op).canRaiseArith;
}

std::string_view
cmpName(Cmp c)
{
    return kCmpNames[static_cast<size_t>(c)];
}

} // namespace gex::isa
