/**
 * @file
 * Opcode definitions for the gex GPU ISA.
 *
 * The ISA mimics modern GPU ISAs (paper section 5.1): SIMT execution over
 * a large unified 64-bit register file, explicit divergence-stack
 * management (SSY/JOIN), fused multiply-add, approximate complex math on
 * a special function unit, separate shared/global memory pipelines, and
 * a device-side allocation intrinsic backing the lazy-allocation use
 * case.
 */

#ifndef GEX_ISA_OPCODES_HPP
#define GEX_ISA_OPCODES_HPP

#include <cstdint>
#include <string_view>

namespace gex::isa {

enum class Opcode : std::uint8_t {
    // Integer ALU (math units).
    IADD, ISUB, IMUL, IMAD, IMIN, IMAX,
    AND, OR, XOR, NOT, SHL, SHR,
    // Floating point (math units); values are IEEE double in 64-bit regs.
    FADD, FSUB, FMUL, FFMA, FMIN, FMAX,
    // Approximate / complex math (special function unit).
    FRCP, FRSQ, FSQRT, FSIN, FCOS, FEXP2, FLOG2, FDIV,
    // Data movement and conversions (math units).
    MOV, MOVI, I2F, F2I, S2R, LDPARAM, SEL,
    // Predicate manipulation (math units).
    SETP, PSETP,
    // Control flow (branch unit).
    BRA, SSY, JOIN, BAR, EXIT,
    // Memory.
    LD_GLOBAL, ST_GLOBAL, LD_SHARED, ST_SHARED,
    ATOM_ADD, ATOM_MIN, ATOM_MAX, ATOM_EXCH, ATOM_CAS,
    MEMBAR,
    // Device-side heap allocation intrinsic (lowered to an atomic bump on
    // the heap cursor; timing-wise an ATOM on the global pipeline).
    ALLOC,
    NOP,
    NumOpcodes,
};

/** Execution unit classes of the baseline SM backend (paper Table 1). */
enum class Unit : std::uint8_t {
    Math,    ///< one of the 2 math pipelines
    Sfu,     ///< special function unit
    Branch,  ///< branch unit
    LdSt,    ///< global memory pipeline (cache + translation)
    Shared,  ///< shared memory (scratch-pad) pipeline
    None,    ///< consumes no backend unit (NOP)
};

/** Comparison condition for SETP. */
enum class Cmp : std::uint8_t { EQ, NE, LT, LE, GT, GE };

/** Static properties of an opcode. */
struct OpTraits {
    std::string_view name;
    Unit unit;
    bool isGlobalMem;   ///< goes through translation; can page fault
    bool isSharedMem;
    bool isLoad;
    bool isStore;       ///< writes memory (stores and atomics)
    bool isAtomic;
    bool isControl;     ///< disables warp fetch until commit (baseline)
    bool isBarrier;
    bool isExit;
    bool writesDst;     ///< produces a destination register value
    int numSrcs;        ///< architectural source register count
    /**
     * Can raise an arithmetic exception (division by zero, log of a
     * non-positive value, ...). Paper sections 3.1/3.2 extend the
     * preemptible-exception schemes to these instructions.
     */
    bool canRaiseArith;
};

/** True when @p op can raise an arithmetic exception. */
bool canRaiseArith(Opcode op);

/** Traits lookup; total over all opcodes. */
const OpTraits &traits(Opcode op);

/** Mnemonic, e.g. "ld.global". */
std::string_view opcodeName(Opcode op);

/** Inverse of opcodeName; returns NumOpcodes when unknown. */
Opcode opcodeFromName(std::string_view name);

/** Condition mnemonic ("eq", "ne", ...). */
std::string_view cmpName(Cmp c);

} // namespace gex::isa

#endif // GEX_ISA_OPCODES_HPP
