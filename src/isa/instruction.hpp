/**
 * @file
 * The static instruction representation shared by the assembler, the
 * functional simulator and the timing simulator.
 */

#ifndef GEX_ISA_INSTRUCTION_HPP
#define GEX_ISA_INSTRUCTION_HPP

#include <cstdint>
#include <string>

#include "isa/opcodes.hpp"
#include "isa/registers.hpp"

namespace gex::isa {

/** Logic ops for PSETP (predicate combine). */
enum class PLogic : std::uint8_t { And, Or, Xor, Not };

/**
 * One static instruction. A fixed-size POD: operands that are unused by
 * a given opcode are left at their defaults. Field use by class:
 *
 *  - ALU/FPU:     dst, srcs[0..2], imm (MOVI/shift immediates)
 *  - SETP:        predDst, cmp, fcmp, srcs[0..1]
 *  - PSETP:       predDst, plogic, predA, predB
 *  - SEL:         dst, srcs[0..1], predA (selector)
 *  - S2R:         dst, sreg
 *  - LDPARAM:     dst, imm = parameter index
 *  - LD/ST/ATOM:  dst (loads/atomics), srcs[0] = address base,
 *                 imm = byte offset, srcs[1] = store/atomic data,
 *                 srcs[2] = CAS swap value
 *  - BRA/SSY:     target (instruction index, resolved from labels)
 *  - ALLOC:       dst = returned address, srcs[0] = size in bytes
 *
 * Every instruction is guarded by predicate @c pred (negated when
 * @c predNeg), defaulting to PT.
 */
struct Instruction {
    Opcode op = Opcode::NOP;

    Reg dst = kRegZero;
    Reg srcs[3] = {kRegZero, kRegZero, kRegZero};
    std::int64_t imm = 0;
    /**
     * When set on a two-source ALU/SETP instruction, the second operand
     * is @c imm instead of srcs[1] (for FP opcodes imm holds the
     * bit-cast double). Memory opcodes always use imm as byte offset.
     */
    bool useImm = false;

    Cmp cmp = Cmp::EQ;
    bool fcmp = false;            ///< SETP compares as floating point
    PLogic plogic = PLogic::And;
    PredReg predDst = kPredTrue;  ///< SETP/PSETP destination
    PredReg predA = kPredTrue;    ///< PSETP lhs / SEL selector
    PredReg predB = kPredTrue;    ///< PSETP rhs

    PredReg pred = kPredTrue;     ///< guard predicate
    bool predNeg = false;

    std::int32_t target = -1;     ///< branch/SSY target (pc index)

    const OpTraits &traits() const { return isa::traits(op); }
    bool isGlobalMem() const { return traits().isGlobalMem; }
    bool isMem() const
    {
        const auto &t = traits();
        return t.isGlobalMem || t.isSharedMem;
    }
    bool isControl() const { return traits().isControl; }

    /** Number of architectural source GPRs actually read. */
    int numSrcRegs() const;

    /** True when the instruction writes a GPR (honours RZ). */
    bool
    writesReg() const
    {
        return traits().writesDst && dst != kRegZero;
    }

    /** Disassemble to text (labels rendered as absolute indices). */
    std::string toString() const;
};

} // namespace gex::isa

#endif // GEX_ISA_INSTRUCTION_HPP
