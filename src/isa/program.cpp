#include "isa/program.hpp"

#include <sstream>

#include "common/log.hpp"

namespace gex::isa {

Program::Program(std::string name, std::vector<Instruction> insts,
                 int regs_per_thread, std::uint32_t shared_bytes,
                 int num_params)
    : name_(std::move(name)), insts_(std::move(insts)),
      regsPerThread_(regs_per_thread), sharedBytes_(shared_bytes),
      numParams_(num_params)
{
}

void
Program::validate() const
{
    if (insts_.empty())
        fatal("program '%s' is empty", name_.c_str());
    if (regsPerThread_ <= 0 || regsPerThread_ > kMaxRegs)
        fatal("program '%s': bad regsPerThread %d", name_.c_str(),
              regsPerThread_);

    bool has_exit = false;
    for (size_t pc = 0; pc < insts_.size(); ++pc) {
        const Instruction &in = insts_[pc];
        const OpTraits &t = in.traits();
        if (t.isExit)
            has_exit = true;
        if (in.op == Opcode::BRA || in.op == Opcode::SSY) {
            if (in.target < 0 ||
                static_cast<size_t>(in.target) >= insts_.size()) {
                fatal("program '%s': pc %zu target %d out of range",
                      name_.c_str(), pc, in.target);
            }
        }
        auto check_reg = [&](Reg r, const char *what) {
            if (r != kRegZero && r >= regsPerThread_)
                fatal("program '%s': pc %zu %s r%d >= regsPerThread %d",
                      name_.c_str(), pc, what, r, regsPerThread_);
        };
        if (t.writesDst)
            check_reg(in.dst, "dst");
        for (int i = 0; i < t.numSrcs; ++i)
            check_reg(in.srcs[i], "src");
        if (in.op == Opcode::LDPARAM &&
            (in.imm < 0 || in.imm >= numParams_)) {
            fatal("program '%s': pc %zu param index %lld out of range",
                  name_.c_str(), pc, static_cast<long long>(in.imm));
        }
    }
    if (!has_exit)
        fatal("program '%s' has no EXIT", name_.c_str());

    const Instruction &last = insts_.back();
    if (!(last.traits().isExit ||
          (last.op == Opcode::BRA && last.pred == kPredTrue &&
           !last.predNeg))) {
        fatal("program '%s' can fall off the end", name_.c_str());
    }
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    os << "// kernel " << name_ << "  regs=" << regsPerThread_
       << " shared=" << sharedBytes_ << "B params=" << numParams_ << "\n";
    for (size_t pc = 0; pc < insts_.size(); ++pc)
        os << pc << ":\t" << insts_[pc].toString() << "\n";
    return os.str();
}

} // namespace gex::isa
