/**
 * @file
 * Host interconnect + CPU fault handler cost model.
 *
 * Calibrated to the paper's measured per-fault round-trip costs
 * (section 5.3): NVLink 12 us with migration / 10 us allocation-only,
 * PCIe 3.0 25 us / 12 us, decomposed into a parallel propagation
 * latency, a serialized CPU handler service time, and serialized link
 * occupancy (signaling + page data). The serialized components are what
 * produce contention when many faults are outstanding (sections 5.3,
 * 5.4) — the effect the use cases exploit.
 */

#ifndef GEX_VM_HOST_LINK_HPP
#define GEX_VM_HOST_LINK_HPP

#include <string>

#include "common/stats.hpp"
#include "mem/port.hpp"

namespace gex::vm {

struct HostLinkConfig {
    std::string name = "nvlink";
    /** One-way propagation + software stack latency (parallel part). */
    Cycle oneWayLatency = 4000;
    /** CPU handler service time per fault (fully serialized). */
    Cycle cpuServiceCycles = 2000;
    /** Effective link bandwidth for page data (bytes per cycle). */
    double linkBytesPerCycle = 32.0;
    /** Per-fault request/response signaling occupancy on the link. */
    std::uint64_t signalBytes = 4096;

    /** Paper's NVLink estimate: 12 us migrate / 10 us alloc-only. */
    static HostLinkConfig nvlink();
    /** Paper's PCIe 3.0 estimate: 25 us migrate / 12 us alloc-only. */
    static HostLinkConfig pcie();
};

/**
 * Services CPU-handled faults. All methods are timestamp-functional:
 * they reserve serialized resources in call order and return the cycle
 * at which the GPU page table update is visible.
 */
class HostLink
{
  public:
    explicit HostLink(const HostLinkConfig &cfg)
        : cfg_(cfg), link_(cfg.linkBytesPerCycle)
    {}

    const HostLinkConfig &config() const { return cfg_; }

    /**
     * CPU-handled fault detected at @p detect.
     * @param migrate_bytes  page data to transfer (0 = allocation only)
     * @return resolve time (faulting access may retry from then on)
     */
    Cycle serviceFault(Cycle detect, std::uint64_t migrate_bytes);

    /** Isolated (contention-free) round-trip cost, for reporting. */
    Cycle isolatedCost(std::uint64_t migrate_bytes) const;

    std::uint64_t faultsServiced() const { return faults_; }
    std::uint64_t bytesMigrated() const { return bytesMigrated_; }

    void collectStats(StatSet &s) const;

  private:
    HostLinkConfig cfg_;
    mem::BandwidthPipe link_;
    Cycle cpuFree_ = 0;
    std::uint64_t faults_ = 0;
    std::uint64_t bytesMigrated_ = 0;
};

} // namespace gex::vm

#endif // GEX_VM_HOST_LINK_HPP
