/**
 * @file
 * Set-associative TLB with outstanding-miss merging, plus the
 * Translation result type that flows back to the LSU (including page
 * fault disposition — the input to the exception schemes).
 */

#ifndef GEX_VM_TLB_HPP
#define GEX_VM_TLB_HPP

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace gex::vm {

/** How a page fault is being resolved. */
enum class FaultKind : std::uint8_t {
    None,       ///< no fault
    Migration,  ///< CPU-owned dirty page: CPU handler + data transfer
    CpuAlloc,   ///< first touch handled by the CPU (allocation only)
    GpuAlloc,   ///< first touch handled by the GPU-local handler (UC2)
    Joined,     ///< joined an already in-flight fault on the region
};

/** Outcome of translating one memory request's page. */
struct Translation {
    bool fault = false;
    Cycle ready = 0;    ///< translation-complete time (no fault)
    Cycle detect = 0;   ///< fault detect time (walk completion)
    Cycle resolve = 0;  ///< PTE valid from this cycle on
    FaultKind kind = FaultKind::None;
    int queueDepth = 0; ///< pending faults ahead at detect (UC1 input)
};

struct TlbConfig {
    std::string name = "tlb";
    std::uint32_t entries = 32;
    std::uint32_t ways = 8;
    Cycle latency = 1;       ///< hit latency
    std::uint32_t missQueue = 32; ///< outstanding distinct-page misses
};

/**
 * Timing TLB. On a miss the lower-level callback produces the
 * Translation; concurrent misses to the same page share it. Faulting
 * translations are never cached.
 */
class Tlb
{
  public:
    /** Lower level: (page, earliest) -> Translation. */
    using LowerFn = std::function<Translation(Addr, Cycle)>;

    explicit Tlb(const TlbConfig &cfg);

    Translation translate(Addr page, Cycle now, const LowerFn &lower);

    /** Probe tags without side effects. */
    bool contains(Addr page) const;

    /**
     * Latest expiry cycle over all outstanding misses, 0 when none.
     * Pending entries drain lazily, so quiescence at cycle N means
     * maxPendingExpiry() <= N (sanitizer drain checks).
     */
    Cycle
    maxPendingExpiry() const
    {
        Cycle m = 0;
        pending_.forEach([&m](Addr, const PendingMiss &p) {
            m = std::max(m, p.expires);
        });
        return m;
    }

    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t merges() const { return merges_; }

    void collectStats(StatSet &s) const;

  private:
    struct Way {
        Addr tag = kBadAddr;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setIndex(Addr page) const { return page % numSets_; }
    int findWay(std::uint64_t set, Addr page) const;
    void insert(std::uint64_t set, Addr page);
    void drainPending(Cycle now);

    TlbConfig cfg_;
    std::uint64_t numSets_;
    std::vector<Way> ways_;
    std::uint64_t useClock_ = 0;

    /** Outstanding misses by page; entries expire at their end time. */
    struct PendingMiss {
        Translation result;
        Cycle expires;
    };
    FlatMap<PendingMiss> pending_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t merges_ = 0;
};

} // namespace gex::vm

#endif // GEX_VM_TLB_HPP
