#include "vm/host_link.hpp"

namespace gex::vm {

HostLinkConfig
HostLinkConfig::nvlink()
{
    HostLinkConfig c;
    c.name = "nvlink";
    c.oneWayLatency = 4000;      // 4 us
    c.cpuServiceCycles = 2000;   // 2 us (paper's CPU handler estimate)
    c.linkBytesPerCycle = 32.0;  // 32 GB/s effective => 2 us per 64 KB
    c.signalBytes = 4096;        // ~0.13 us signaling occupancy
    return c;
}

HostLinkConfig
HostLinkConfig::pcie()
{
    HostLinkConfig c;
    c.name = "pcie";
    c.oneWayLatency = 5000;      // 5 us
    c.cpuServiceCycles = 2000;   // 2 us
    c.linkBytesPerCycle = 5.0;   // small-transfer-effective => 13 us / 64 KB
    c.signalBytes = 4096;        // ~0.8 us signaling occupancy
    return c;
}

Cycle
HostLink::serviceFault(Cycle detect, std::uint64_t migrate_bytes)
{
    ++faults_;
    // Fault notification crosses the link (occupies it for signaling).
    Cycle at_cpu = link_.transfer(detect, cfg_.signalBytes) +
                   cfg_.oneWayLatency;
    // CPU handler: page pinning, allocation, page table updates; one
    // fault at a time (the paper's driver model).
    Cycle cpu_start = std::max(at_cpu, cpuFree_);
    Cycle cpu_done = cpu_start + cfg_.cpuServiceCycles;
    cpuFree_ = cpu_done;
    // Page data DMA (migrations only), serialized on the link.
    Cycle data_done = cpu_done;
    if (migrate_bytes > 0) {
        data_done = link_.transfer(cpu_done, migrate_bytes);
        bytesMigrated_ += migrate_bytes;
    }
    // Completion notification back to the GPU.
    return data_done + cfg_.oneWayLatency;
}

Cycle
HostLink::isolatedCost(std::uint64_t migrate_bytes) const
{
    Cycle sig = static_cast<Cycle>(
        static_cast<double>(cfg_.signalBytes) / cfg_.linkBytesPerCycle);
    Cycle xfer = static_cast<Cycle>(
        static_cast<double>(migrate_bytes) / cfg_.linkBytesPerCycle);
    return sig + 2 * cfg_.oneWayLatency + cfg_.cpuServiceCycles + xfer;
}

void
HostLink::collectStats(StatSet &s) const
{
    const std::string p = "hostlink.";
    s.set(p + "faults", static_cast<double>(faults_));
    s.set(p + "bytes_migrated", static_cast<double>(bytesMigrated_));
    s.set(p + "link_bytes", static_cast<double>(link_.totalBytes()));
}

} // namespace gex::vm
