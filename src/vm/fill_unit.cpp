#include "vm/fill_unit.hpp"

namespace gex::vm {

SystemMmu::SystemMmu(const MmuConfig &cfg, PageDirectory &dir,
                     HostLink &link, GpuFaultHandler &gpu_handler)
    : cfg_(cfg), dir_(dir), link_(link), gpuHandler_(gpu_handler),
      l2tlb_(cfg.l2Tlb), walkers_(cfg.numWalkers, cfg.walkCycles)
{
}

int
SystemMmu::pendingFaults(Cycle now)
{
    while (!outstandingFaults_.empty() && outstandingFaults_.top() <= now)
        outstandingFaults_.pop();
    return static_cast<int>(outstandingFaults_.size());
}

Translation
SystemMmu::allocFault(Addr addr, Cycle done, bool injected)
{
    ++faults_;
    if (injected)
        ++injected_;
    Translation t;
    t.fault = true;
    t.detect = done;
    t.queueDepth = pendingFaults(done);
    if (cfg_.localHandling) {
        ++gpuAllocs_;
        t.resolve = gpuHandler_.handle(done);
        t.kind = FaultKind::GpuAlloc;
    } else {
        ++cpuAllocs_;
        t.resolve = link_.serviceFault(done, 0);
        t.kind = FaultKind::CpuAlloc;
    }
    dir_.beginPending(addr, t.resolve);
    outstandingFaults_.push(t.resolve);
    svcLatency_.record(t.resolve - t.detect);
    return t;
}

Translation
SystemMmu::walk(Addr page, Cycle now)
{
    ++walks_;
    Cycle start = walkers_.reserve(now);
    Cycle done = start + cfg_.walkCycles;
    Addr addr = page * kPageSize;

    switch (dir_.stateAt(addr, done)) {
      case RegionState::GpuResident: {
        // Fault-injection hook: a resident region may still fault when
        // an injected model fires. The fault is serviced like a
        // first-touch allocation (no data transfer); once it resolves
        // the region is resident again.
        if (injector_ && injector_->shouldInject(dir_.regionOf(addr)))
            return allocFault(addr, done, /*injected=*/true);
        Translation t;
        t.ready = done;
        return t;
      }
      case RegionState::Pending: {
        ++joined_;
        Translation t;
        t.fault = true;
        t.detect = done;
        t.resolve = dir_.pendingReadyAt(addr);
        t.kind = FaultKind::Joined;
        t.queueDepth = pendingFaults(done);
        svcLatency_.record(t.resolve - t.detect);
        return t;
      }
      case RegionState::CpuOwned: {
        ++faults_;
        ++migrations_;
        Translation t;
        t.fault = true;
        t.detect = done;
        t.queueDepth = pendingFaults(done);
        t.resolve = link_.serviceFault(done, dir_.regionBytes());
        t.kind = FaultKind::Migration;
        dir_.beginPending(addr, t.resolve);
        outstandingFaults_.push(t.resolve);
        svcLatency_.record(t.resolve - t.detect);
        return t;
      }
      case RegionState::Untouched:
        return allocFault(addr, done, /*injected=*/false);
    }
    panic("unreachable region state");
}

Translation
SystemMmu::translate(Addr page, Cycle now)
{
    return l2tlb_.translate(page, now, [this](Addr p, Cycle t) {
        return walk(p, t);
    });
}

void
SystemMmu::collectStats(StatSet &s) const
{
    l2tlb_.collectStats(s);
    const std::string p = "mmu.";
    s.set(p + "walks", static_cast<double>(walks_));
    s.set(p + "faults", static_cast<double>(faults_));
    s.set(p + "joined_faults", static_cast<double>(joined_));
    s.set(p + "migration_faults", static_cast<double>(migrations_));
    s.set(p + "cpu_alloc_faults", static_cast<double>(cpuAllocs_));
    s.set(p + "gpu_alloc_faults", static_cast<double>(gpuAllocs_));
}

void
SystemMmu::collectResilienceStats(StatSet &s) const
{
    s.set("mmu.injected_faults", static_cast<double>(injected_));
    svcLatency_.collect(s, "resil.svc_latency_");
}

} // namespace gex::vm
