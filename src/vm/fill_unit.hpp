/**
 * @file
 * System-level MMU: shared L2 TLB, the fill unit's page-table walker
 * pool, the global pending-fault queue, and fault routing to the CPU
 * (host link) or the GPU-local handler (paper Figures 1 and 2).
 */

#ifndef GEX_VM_FILL_UNIT_HPP
#define GEX_VM_FILL_UNIT_HPP

#include <queue>

#include "inject/fault_model.hpp"
#include "mem/port.hpp"
#include "vm/gpu_fault_handler.hpp"
#include "vm/host_link.hpp"
#include "vm/page_table.hpp"
#include "vm/tlb.hpp"

namespace gex::vm {

struct MmuConfig {
    TlbConfig l2Tlb = {"l2tlb", 1024, 8, 70, 128};
    int numWalkers = 64;
    Cycle walkCycles = 500;
    /** UC2: handle allocation (first-touch) faults on the GPU itself. */
    bool localHandling = false;
};

/**
 * The shared translation machinery behind all per-SM L1 TLBs. The fill
 * unit performs page table walks; a walk hitting a non-resident region
 * raises a page fault, which is entered in the global pending-fault
 * queue and routed to the CPU or the GPU-local handler. Faults to a
 * region with an in-flight fault join it.
 */
class SystemMmu
{
  public:
    SystemMmu(const MmuConfig &cfg, PageDirectory &dir, HostLink &link,
              GpuFaultHandler &gpuHandler);

    /**
     * Translate @p page, request arriving from an SM at @p now.
     * This is the lower level of every per-SM L1 TLB.
     */
    Translation translate(Addr page, Cycle now);

    /** Pending (unresolved) faults at @p now. */
    int pendingFaults(Cycle now);

    /**
     * Attach a fault injector (nullptr detaches, the default): walks
     * that find their region GPU-resident additionally consult the
     * injector and, when it fires, are serviced as allocation faults
     * (CPU handler, or GPU-local under localHandling). The pointer
     * must outlive the MMU; with none attached the walk path is
     * exactly the pre-injection simulator.
     */
    void setInjector(inject::FaultInjector *inj) { injector_ = inj; }

    const Tlb &l2Tlb() const { return l2tlb_; }

    std::uint64_t walks() const { return walks_; }
    std::uint64_t faults() const { return faults_; }
    std::uint64_t joinedFaults() const { return joined_; }
    std::uint64_t injectedFaults() const { return injected_; }

    void collectStats(StatSet &s) const;

    /**
     * Emit the resilience stat block (`resil.svc_latency_*`,
     * `mmu.injected_faults`). Kept separate from collectStats() so
     * fault-free runs' stat sets — and the golden digests pinned over
     * them — are untouched unless a campaign asks for these stats.
     */
    void collectResilienceStats(StatSet &s) const;

  private:
    Translation walk(Addr page, Cycle now);
    /** Service a first-touch-style allocation fault detected at @p done. */
    Translation allocFault(Addr addr, Cycle done, bool injected);

    MmuConfig cfg_;
    PageDirectory &dir_;
    HostLink &link_;
    GpuFaultHandler &gpuHandler_;
    Tlb l2tlb_;
    mem::Port walkers_;
    inject::FaultInjector *injector_ = nullptr;

    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>
        outstandingFaults_;

    std::uint64_t walks_ = 0;
    std::uint64_t faults_ = 0;
    std::uint64_t joined_ = 0;
    std::uint64_t migrations_ = 0;
    std::uint64_t cpuAllocs_ = 0;
    std::uint64_t gpuAllocs_ = 0;
    std::uint64_t injected_ = 0;
    /** Service latency (resolve - detect) of every fault, joins included. */
    inject::LatencyHistogram svcLatency_;
};

} // namespace gex::vm

#endif // GEX_VM_FILL_UNIT_HPP
