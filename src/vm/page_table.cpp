#include "vm/page_table.hpp"

#include "common/log.hpp"

namespace gex::vm {

void
PageDirectory::setRange(Addr base, std::uint64_t bytes, RegionState st)
{
    if (bytes == 0)
        return;
    Addr first = regionOf(base);
    Addr last = regionOf(base + bytes - 1);
    for (Addr r = first; r <= last; ++r)
        regions_[r] = Entry{st, 0};
}

const PageDirectory::Entry *
PageDirectory::lookup(Addr addr) const
{
    return regions_.find(regionOf(addr));
}

RegionState
PageDirectory::stateAt(Addr addr, Cycle now) const
{
    const Entry *e = lookup(addr);
    if (!e)
        return RegionState::GpuResident;
    if (e->state == RegionState::Pending && now >= e->readyAt) {
        // Lazy transition: the fault resolved in the past. lookup()
        // returned a live slot, so casting away const mutates in place
        // (the map itself is not restructured).
        const_cast<Entry *>(e)->state = RegionState::GpuResident;
        return RegionState::GpuResident;
    }
    return e->state;
}

Cycle
PageDirectory::pendingReadyAt(Addr addr) const
{
    const Entry *e = lookup(addr);
    GEX_ASSERT(e && e->state == RegionState::Pending,
               "pendingReadyAt on non-pending region");
    return e->readyAt;
}

void
PageDirectory::beginPending(Addr addr, Cycle ready)
{
    regions_[regionOf(addr)] = Entry{RegionState::Pending, ready};
}

std::uint64_t
PageDirectory::residentRegions() const
{
    std::uint64_t n = 0;
    regions_.forEach([&n](Addr, const Entry &e) {
        if (e.state == RegionState::GpuResident)
            ++n;
    });
    return n;
}

void
PageDirectory::collectStats(StatSet &s) const
{
    s.set("pagedir.regions_tracked", static_cast<double>(regions_.size()));
}

} // namespace gex::vm
