/**
 * @file
 * Memory manager: lays out kernel buffers in the virtual address
 * space and applies a paging policy (which buffer classes start
 * CPU-owned / untouched / resident) to the page directory. Each
 * evaluation mode of the paper maps to one policy preset.
 */

#ifndef GEX_VM_MEMORY_MANAGER_HPP
#define GEX_VM_MEMORY_MANAGER_HPP

#include "func/kernel.hpp"
#include "vm/page_table.hpp"

namespace gex::vm {

/** Initial residency per buffer class (see func::BufferKind). */
struct VmPolicy {
    RegionState inputs = RegionState::GpuResident;
    RegionState outputs = RegionState::GpuResident;
    RegionState heap = RegionState::GpuResident;
    /** UC2: first-touch faults handled by the GPU-local handler. */
    bool localHandling = false;

    /** Fault-free runs (Figures 10, 11): everything resident. */
    static VmPolicy allResident();
    /**
     * On-demand paging (Figure 12): all data starts in CPU memory —
     * inputs dirty (migration), outputs clean (CPU allocation only).
     */
    static VmPolicy demandPaging();
    /**
     * Output-page faults (Figure 14): inputs resident, output pages
     * first-touch; @p local selects GPU-side handling vs CPU baseline.
     */
    static VmPolicy outputFaults(bool local);
    /**
     * Device-malloc faults (Figure 13): only heap pages first-touch;
     * @p local selects GPU-side handling vs CPU baseline.
     */
    static VmPolicy heapFaults(bool local);
};

/**
 * Simple bump allocator for buffer virtual addresses, aligned to the
 * fault-handling granularity so buffers never share a region.
 */
class AddressSpace
{
  public:
    explicit AddressSpace(Addr base = 16ull * 1024 * 1024,
                          Addr align = kDefaultMigrationBytes)
        : next_(base), align_(align)
    {}

    Addr
    allocate(std::uint64_t bytes)
    {
        Addr a = next_;
        next_ += (bytes + align_ - 1) / align_ * align_;
        return a;
    }

  private:
    Addr next_;
    Addr align_;
};

/** Program @p dir with the initial residency of @p kernel's buffers. */
void applyPolicy(PageDirectory &dir, const func::Kernel &kernel,
                 const VmPolicy &policy);

/**
 * Parse one of the evaluation-mode preset names: "resident" |
 * "demand-paging" | "output-faults[-local]" | "heap-faults[-local]".
 * fatal() on unknown names.
 */
VmPolicy policyFromName(const std::string &name);

/**
 * Canonical preset name of @p policy, matching policyFromName();
 * "custom" when the field combination matches no preset.
 */
const char *policyName(const VmPolicy &policy);

} // namespace gex::vm

#endif // GEX_VM_MEMORY_MANAGER_HPP
