/**
 * @file
 * Memory manager: lays out kernel buffers in the virtual address
 * space and applies a paging policy to the page directory. A VmPolicy
 * has two orthogonal layers: the *residency preset* (which buffer
 * classes start CPU-owned / untouched / resident — each evaluation
 * mode of the paper maps to one preset) and an optional *injected
 * fault model* (src/inject) that synthesizes additional faults on
 * resident regions on top of whatever the preset produces.
 */

#ifndef GEX_VM_MEMORY_MANAGER_HPP
#define GEX_VM_MEMORY_MANAGER_HPP

#include "func/kernel.hpp"
#include "inject/fault_model.hpp"
#include "vm/page_table.hpp"

namespace gex::vm {

/**
 * Paging policy of one run: initial residency per buffer class (see
 * func::BufferKind) plus the injected-fault decoration.
 *
 * The factory presets below configure residency only and compose
 * freely with injection: assign `policy.inject` after construction
 * (e.g. `auto p = VmPolicy::allResident(); p.inject.model =
 * inject::ModelKind::Burst;`) to stress a scheme with synthetic fault
 * storms while the organic fault behaviour of the preset is preserved.
 * policyFromName()/policyName() address the residency layer alone;
 * a preset with injection enabled still reports its preset name.
 */
struct VmPolicy {
    RegionState inputs = RegionState::GpuResident;
    RegionState outputs = RegionState::GpuResident;
    RegionState heap = RegionState::GpuResident;
    /** UC2: first-touch faults handled by the GPU-local handler.
     *  Injected faults follow the same routing (CPU vs GPU-local). */
    bool localHandling = false;
    /**
     * Injected fault model layered over the residency preset
     * (default: disabled). See docs/FAULT_INJECTION.md.
     */
    inject::InjectConfig inject;

    /** Fault-free runs (Figures 10, 11): everything resident. */
    static VmPolicy allResident();
    /**
     * On-demand paging (Figure 12): all data starts in CPU memory —
     * inputs dirty (migration), outputs clean (CPU allocation only).
     */
    static VmPolicy demandPaging();
    /**
     * Output-page faults (Figure 14): inputs resident, output pages
     * first-touch; @p local selects GPU-side handling vs CPU baseline.
     */
    static VmPolicy outputFaults(bool local);
    /**
     * Device-malloc faults (Figure 13): only heap pages first-touch;
     * @p local selects GPU-side handling vs CPU baseline.
     */
    static VmPolicy heapFaults(bool local);
};

/**
 * Simple bump allocator for buffer virtual addresses, aligned to the
 * fault-handling granularity so buffers never share a region.
 */
class AddressSpace
{
  public:
    explicit AddressSpace(Addr base = 16ull * 1024 * 1024,
                          Addr align = kDefaultMigrationBytes)
        : next_(base), align_(align)
    {}

    Addr
    allocate(std::uint64_t bytes)
    {
        Addr a = next_;
        next_ += (bytes + align_ - 1) / align_ * align_;
        return a;
    }

  private:
    Addr next_;
    Addr align_;
};

/** Program @p dir with the initial residency of @p kernel's buffers. */
void applyPolicy(PageDirectory &dir, const func::Kernel &kernel,
                 const VmPolicy &policy);

/**
 * Parse one of the evaluation-mode preset names: "resident" |
 * "demand-paging" | "output-faults[-local]" | "heap-faults[-local]".
 * fatal() on unknown names. The result has injection disabled; set
 * `.inject` afterwards to compose a fault model with the preset.
 */
VmPolicy policyFromName(const std::string &name);

/**
 * Canonical preset name of @p policy's residency layer, matching
 * policyFromName(); "custom" when the residency fields match no
 * preset. The injected-fault configuration does not participate —
 * report it separately (e.g. via inject::modelName).
 */
const char *policyName(const VmPolicy &policy);

/**
 * Canonical name of a settable residency state: "gpu-resident" |
 * "cpu-owned" | "untouched". RegionState::Pending is transient
 * simulation state, never part of a policy, and has no name here.
 */
const char *regionStateName(RegionState st);

/** Parse a settable residency state name; fatal() on unknown names. */
RegionState regionStateFromName(const std::string &name);

} // namespace gex::vm

#endif // GEX_VM_MEMORY_MANAGER_HPP
