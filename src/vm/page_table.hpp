/**
 * @file
 * Page directory: per-region residency state driving the demand-paging
 * experiments. Handling granularity is 64 KB (paper section 5.1), i.e.
 * one fault migrates/allocates a whole region of 16 pages.
 */

#ifndef GEX_VM_PAGE_TABLE_HPP
#define GEX_VM_PAGE_TABLE_HPP

#include <cstdint>

#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace gex::vm {

/** Residency / ownership state of a memory region. */
enum class RegionState : std::uint8_t {
    GpuResident,  ///< PTEs valid; accesses translate normally
    CpuOwned,     ///< dirty in CPU memory: fault requires migration
    Untouched,    ///< first touch: fault requires allocation only
    Pending,      ///< fault in flight; becomes GpuResident at readyAt
};

/**
 * Region-granular page directory. Addresses not covered by any
 * configured region default to GpuResident (simulator-internal
 * structures and prepopulated runs never fault).
 */
class PageDirectory
{
  public:
    explicit PageDirectory(Addr region_bytes = kDefaultMigrationBytes)
        : regionBytes_(region_bytes)
    {}

    Addr regionBytes() const { return regionBytes_; }
    Addr regionOf(Addr a) const { return a / regionBytes_; }

    /** Mark [base, base+bytes) with the given initial state. */
    void setRange(Addr base, std::uint64_t bytes, RegionState st);

    /** Effective state of the region covering @p addr at @p now. */
    RegionState stateAt(Addr addr, Cycle now) const;

    /** True when a fault on @p addr at @p now joins an in-flight one. */
    bool
    isPending(Addr addr, Cycle now) const
    {
        return stateAt(addr, now) == RegionState::Pending;
    }

    /** Resolve time of the pending fault covering @p addr. */
    Cycle pendingReadyAt(Addr addr) const;

    /** Transition the region covering @p addr to Pending until @p ready. */
    void beginPending(Addr addr, Cycle ready);

    std::uint64_t residentRegions() const;

    void collectStats(StatSet &s) const;

  private:
    struct Entry {
        RegionState state = RegionState::GpuResident;
        Cycle readyAt = 0;
    };

    const Entry *lookup(Addr addr) const;

    Addr regionBytes_;
    mutable FlatMap<Entry> regions_;
};

} // namespace gex::vm

#endif // GEX_VM_PAGE_TABLE_HPP
