#include "vm/tlb.hpp"

#include "common/log.hpp"

namespace gex::vm {

Tlb::Tlb(const TlbConfig &cfg)
    : cfg_(cfg), numSets_(cfg.entries / cfg.ways),
      ways_(static_cast<size_t>(cfg.entries))
{
    GEX_ASSERT(numSets_ > 0, "TLB %s too small", cfg.name.c_str());
    // drainPending() trims at missQueue * 4 entries; sizing for that
    // bound keeps the miss path allocation-free.
    pending_.reserve(cfg.missQueue * 4);
}

int
Tlb::findWay(std::uint64_t set, Addr page) const
{
    const Way *base = &ways_[set * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w)
        if (base[w].tag == page)
            return static_cast<int>(w);
    return -1;
}

void
Tlb::insert(std::uint64_t set, Addr page)
{
    Way *base = &ways_[set * cfg_.ways];
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < cfg_.ways; ++w)
        if (base[w].lastUse < base[victim].lastUse)
            victim = w;
    base[victim].tag = page;
    base[victim].lastUse = ++useClock_;
}

void
Tlb::drainPending(Cycle now)
{
    // Lazy cleanup keeps the map bounded by in-flight misses.
    if (pending_.size() < cfg_.missQueue * 4)
        return;
    pending_.eraseIf(
        [now](Addr, const PendingMiss &m) { return m.expires <= now; });
}

Translation
Tlb::translate(Addr page, Cycle now, const LowerFn &lower)
{
    std::uint64_t set = setIndex(page);
    int way = findWay(set, page);
    // PTEs are installed when the fill is issued; accesses to a page
    // whose fill (or fault) is still in flight merge into it.
    const PendingMiss *pm = pending_.find(page);
    if (pm && pm->expires > now) {
        ++merges_;
        Translation t = pm->result;
        if (t.fault) {
            t.kind = FaultKind::Joined;
        } else if (t.ready < now + cfg_.latency) {
            t.ready = now + cfg_.latency;
        }
        if (way >= 0)
            ways_[set * cfg_.ways + static_cast<std::uint64_t>(way)]
                .lastUse = ++useClock_;
        return t;
    }
    if (way >= 0) {
        ++hits_;
        ways_[set * cfg_.ways + static_cast<std::uint64_t>(way)].lastUse =
            ++useClock_;
        Translation t;
        t.ready = now + cfg_.latency;
        return t;
    }

    ++misses_;
    drainPending(now);
    Translation t = lower(page, now + cfg_.latency);
    if (t.fault) {
        // Do not cache; remember so same-page requests join the fault.
        pending_[page] = PendingMiss{t, t.resolve};
    } else {
        insert(set, page);
        pending_[page] = PendingMiss{t, t.ready};
    }
    return t;
}

bool
Tlb::contains(Addr page) const
{
    return findWay(setIndex(page), page) >= 0;
}

void
Tlb::flush()
{
    for (Way &w : ways_)
        w = Way{};
    pending_.clear();
}

void
Tlb::collectStats(StatSet &s) const
{
    // add(), not set(): per-SM instances accumulate into one total.
    const std::string p = cfg_.name + ".";
    s.add(p + "hits", static_cast<double>(hits_));
    s.add(p + "misses", static_cast<double>(misses_));
    s.add(p + "merges", static_cast<double>(merges_));
}

} // namespace gex::vm
