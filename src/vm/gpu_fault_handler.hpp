/**
 * @file
 * GPU-local page fault handler model (paper section 4.2): a faulted
 * warp switches to system mode and runs an allocator + page-table
 * update routine on its own SM. Latency is the paper's measured
 * prototype cost (20 us), an order of magnitude above the CPU handler,
 * but handling is fully parallel across warps/SMs — the throughput win
 * behind Figures 13 and 14.
 */

#ifndef GEX_VM_GPU_FAULT_HANDLER_HPP
#define GEX_VM_GPU_FAULT_HANDLER_HPP

#include "common/stats.hpp"
#include "common/types.hpp"

namespace gex::vm {

struct GpuHandlerConfig {
    /** End-to-end handler routine latency (paper: 20 us). */
    Cycle handlerCycles = 20000;
    /**
     * Serialization between concurrent handlers on the same allocator
     * partition. The paper's prototype uses lock-free structures and
     * address-space partitioning, so the default is no serialization;
     * nonzero values support the ablation bench.
     */
    Cycle allocatorSerialCycles = 0;
};

class GpuFaultHandler
{
  public:
    explicit GpuFaultHandler(const GpuHandlerConfig &cfg) : cfg_(cfg) {}

    const GpuHandlerConfig &config() const { return cfg_; }

    /**
     * Handle an allocation fault detected at @p detect on the GPU.
     * @return cycle at which the page table update is visible.
     */
    Cycle
    handle(Cycle detect)
    {
        ++handled_;
        Cycle start = detect;
        if (cfg_.allocatorSerialCycles > 0) {
            start = std::max(start, allocatorFree_);
            allocatorFree_ = start + cfg_.allocatorSerialCycles;
        }
        return start + cfg_.handlerCycles;
    }

    std::uint64_t handled() const { return handled_; }

    void
    collectStats(StatSet &s) const
    {
        s.set("gpuhandler.faults", static_cast<double>(handled_));
    }

  private:
    GpuHandlerConfig cfg_;
    Cycle allocatorFree_ = 0;
    std::uint64_t handled_ = 0;
};

} // namespace gex::vm

#endif // GEX_VM_GPU_FAULT_HANDLER_HPP
