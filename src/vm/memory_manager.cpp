#include "vm/memory_manager.hpp"

#include "common/log.hpp"

namespace gex::vm {

VmPolicy
VmPolicy::allResident()
{
    return VmPolicy{};
}

VmPolicy
VmPolicy::demandPaging()
{
    VmPolicy p;
    p.inputs = RegionState::CpuOwned;
    p.outputs = RegionState::Untouched;
    p.heap = RegionState::Untouched;
    p.localHandling = false;
    return p;
}

VmPolicy
VmPolicy::outputFaults(bool local)
{
    VmPolicy p;
    p.outputs = RegionState::Untouched;
    p.localHandling = local;
    return p;
}

VmPolicy
VmPolicy::heapFaults(bool local)
{
    VmPolicy p;
    p.heap = RegionState::Untouched;
    p.localHandling = local;
    return p;
}

VmPolicy
policyFromName(const std::string &name)
{
    if (name == "resident") return VmPolicy::allResident();
    if (name == "demand-paging") return VmPolicy::demandPaging();
    if (name == "output-faults") return VmPolicy::outputFaults(false);
    if (name == "output-faults-local") return VmPolicy::outputFaults(true);
    if (name == "heap-faults") return VmPolicy::heapFaults(false);
    if (name == "heap-faults-local") return VmPolicy::heapFaults(true);
    fatal("unknown policy '%s' (expected resident | demand-paging | "
          "output-faults[-local] | heap-faults[-local])", name.c_str());
}

const char *
policyName(const VmPolicy &p)
{
    auto same = [](const VmPolicy &a, const VmPolicy &b) {
        return a.inputs == b.inputs && a.outputs == b.outputs &&
               a.heap == b.heap && a.localHandling == b.localHandling;
    };
    if (same(p, VmPolicy::allResident())) return "resident";
    if (same(p, VmPolicy::demandPaging())) return "demand-paging";
    if (same(p, VmPolicy::outputFaults(false))) return "output-faults";
    if (same(p, VmPolicy::outputFaults(true))) return "output-faults-local";
    if (same(p, VmPolicy::heapFaults(false))) return "heap-faults";
    if (same(p, VmPolicy::heapFaults(true))) return "heap-faults-local";
    return "custom";
}

const char *
regionStateName(RegionState st)
{
    switch (st) {
      case RegionState::GpuResident: return "gpu-resident";
      case RegionState::CpuOwned: return "cpu-owned";
      case RegionState::Untouched: return "untouched";
      case RegionState::Pending: return "pending";
    }
    return "?";
}

RegionState
regionStateFromName(const std::string &name)
{
    for (RegionState st : {RegionState::GpuResident,
                           RegionState::CpuOwned, RegionState::Untouched})
        if (name == regionStateName(st))
            return st;
    fatal("unknown residency state '%s' (expected gpu-resident | "
          "cpu-owned | untouched)", name.c_str());
}

void
applyPolicy(PageDirectory &dir, const func::Kernel &kernel,
            const VmPolicy &policy)
{
    for (const func::Buffer &b : kernel.buffers) {
        RegionState st = RegionState::GpuResident;
        switch (b.kind) {
          case func::BufferKind::Input:
            st = policy.inputs;
            break;
          case func::BufferKind::Output:
            st = policy.outputs;
            break;
          case func::BufferKind::InOut:
            // Read-write data is dirty wherever inputs live.
            st = policy.inputs;
            break;
          case func::BufferKind::Heap:
            st = policy.heap;
            break;
        }
        dir.setRange(b.base, b.bytes, st);
    }
}

} // namespace gex::vm
