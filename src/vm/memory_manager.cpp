#include "vm/memory_manager.hpp"

namespace gex::vm {

VmPolicy
VmPolicy::allResident()
{
    return VmPolicy{};
}

VmPolicy
VmPolicy::demandPaging()
{
    VmPolicy p;
    p.inputs = RegionState::CpuOwned;
    p.outputs = RegionState::Untouched;
    p.heap = RegionState::Untouched;
    p.localHandling = false;
    return p;
}

VmPolicy
VmPolicy::outputFaults(bool local)
{
    VmPolicy p;
    p.outputs = RegionState::Untouched;
    p.localHandling = local;
    return p;
}

VmPolicy
VmPolicy::heapFaults(bool local)
{
    VmPolicy p;
    p.heap = RegionState::Untouched;
    p.localHandling = local;
    return p;
}

void
applyPolicy(PageDirectory &dir, const func::Kernel &kernel,
            const VmPolicy &policy)
{
    for (const func::Buffer &b : kernel.buffers) {
        RegionState st = RegionState::GpuResident;
        switch (b.kind) {
          case func::BufferKind::Input:
            st = policy.inputs;
            break;
          case func::BufferKind::Output:
            st = policy.outputs;
            break;
          case func::BufferKind::InOut:
            // Read-write data is dirty wherever inputs live.
            st = policy.inputs;
            break;
          case func::BufferKind::Heap:
            st = policy.heap;
            break;
        }
        dir.setRange(b.base, b.bytes, st);
    }
}

} // namespace gex::vm
