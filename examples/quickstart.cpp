/**
 * @file
 * Quickstart: build a kernel with the KernelBuilder API, execute it on
 * the functional simulator, then time it on the GPU model under every
 * exception handling scheme.
 *
 *     ./examples/quickstart [--trace-out FILE]
 *
 * With --trace-out, the demand-paging run at the end is recorded
 * through the pipeline observer and written as Chrome-trace JSON
 * (open in Perfetto).
 */

#include <cstdio>
#include <cstring>
#include <fstream>

#include "gex.hpp"

using namespace gex;

int
main(int argc, char **argv)
{
    const char *trace_out = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
            trace_out = argv[++i];
    }
    // --- 1. Write a kernel: out[i] = a[i] * b[i] + 1.0 --------------
    kasm::KernelBuilder b("saxpyish");
    b.setNumParams(3);
    b.s2r(0, isa::SpecialReg::GlobalTid);
    b.ldparam(1, 0); // a
    b.ldparam(2, 1); // b
    b.ldparam(3, 2); // out
    b.shli(4, 0, 3); // byte offset
    b.iadd(5, 1, 4);
    b.ldGlobal(6, 5); // a[i]
    b.iadd(5, 2, 4);
    b.ldGlobal(7, 5); // b[i]
    b.fmul(8, 6, 7);
    b.faddi(8, 8, 1.0);
    b.iadd(5, 3, 4);
    b.stGlobal(5, 0, 8);
    b.exit();
    isa::Program prog = b.build();
    std::printf("--- kernel ---\n%s\n", prog.disassemble().c_str());

    // --- 2. Lay out memory and launch geometry ----------------------
    func::GlobalMemory mem;
    vm::AddressSpace as;
    const std::uint32_t blocks = 64, threads = 256;
    const std::uint64_t n = static_cast<std::uint64_t>(blocks) * threads;

    func::Kernel k;
    k.program = prog;
    k.grid = {blocks, 1, 1};
    k.block = {threads, 1, 1};
    Addr a = as.allocate(n * 8), bb = as.allocate(n * 8),
         out = as.allocate(n * 8);
    k.params = {a, bb, out};
    k.buffers = {{"a", a, n * 8, func::BufferKind::Input},
                 {"b", bb, n * 8, func::BufferKind::Input},
                 {"out", out, n * 8, func::BufferKind::Output}};
    for (std::uint64_t i = 0; i < n; ++i) {
        mem.writeF64(a + i * 8, 0.5);
        mem.writeF64(bb + i * 8, static_cast<double>(i % 7));
    }

    // --- 3. Functional execution -> dynamic trace -------------------
    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(k);
    std::printf("functional: %llu warp instructions, %llu memory "
                "instructions, out[5] = %.1f\n\n",
                static_cast<unsigned long long>(tr.dynamicInsts()),
                static_cast<unsigned long long>(tr.memInsts),
                mem.readF64(out + 5 * 8));

    // --- 4. Timing simulation under each exception scheme -----------
    std::printf("--- timing (fault-free) ---\n");
    double base = 0;
    for (auto s : {gpu::Scheme::StallOnFault, gpu::Scheme::WarpDisableCommit,
                   gpu::Scheme::WarpDisableLastCheck,
                   gpu::Scheme::ReplayQueue, gpu::Scheme::OperandLog}) {
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.scheme = s;
        gpu::Gpu g(cfg);
        auto r = g.run(k, tr);
        if (s == gpu::Scheme::StallOnFault)
            base = static_cast<double>(r.cycles);
        std::printf("%-14s %8llu cycles  ipc %5.2f  relative %.3f\n",
                    gpu::schemeName(s),
                    static_cast<unsigned long long>(r.cycles), r.ipc(),
                    base / static_cast<double>(r.cycles));
    }

    // --- 5. The same kernel with demand paging ----------------------
    std::printf("\n--- demand paging (inputs start on the CPU) ---\n");
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue;
    gpu::Gpu g(cfg);
    obs::ChromeTraceWriter trace_writer;
    if (trace_out) {
        trace_writer.setProgram(&k.program);
        g.setObserver(&trace_writer);
    }
    auto r = g.run(k, tr, vm::VmPolicy::demandPaging());
    std::printf("cycles %llu, migrations %.0f, data moved %.0f KB\n",
                static_cast<unsigned long long>(r.cycles),
                r.stats.get("mmu.migration_faults"),
                r.stats.get("hostlink.bytes_migrated") / 1024.0);
    if (trace_out) {
        std::ofstream out(trace_out);
        trace_writer.write(out);
        std::printf("wrote %zu pipeline events to %s\n",
                    trace_writer.eventCount(), trace_out);
    }
    return 0;
}
