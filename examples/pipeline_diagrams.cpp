/**
 * @file
 * The paper's running example (Figures 3, 4, 6, 7): four instructions
 *
 *     A: R3 <- ld [R2]
 *     B: R9 <- sub R9, 4
 *     C: R8 <- ld [R4]
 *     D: R4 <- add R7, 8     (WAR on R4 with C)
 *
 * executed by a single warp under each pipeline organization — drawn
 * from the pipeline observer's event stream rather than guessed from
 * totals. For every scheme the issue→commit interval of each
 * instruction is printed as a diagram row, so the figures' structure
 * is directly visible: the baseline and the operand log overlap
 * everything; the replay queue delays D (source release of C at the
 * last TLB check); warp-disable serializes the loads against younger
 * instructions.
 *
 *     ./examples/pipeline_diagrams [--events]
 *
 * With --events, the raw event table (obs::PipelineView) of the
 * wd-lastcheck run is printed as well: fetch-disable at each load,
 * re-enable at its last TLB check.
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "gex.hpp"

using namespace gex;

namespace {

/** Issue/commit cycles of one instruction, from the event stream. */
struct Lifetime {
    Cycle issued = 0;
    Cycle committed = 0;
    bool seen = false;
};

} // namespace

int
main(int argc, char **argv)
{
    bool show_events = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--events") == 0)
            show_events = true;

    kasm::KernelBuilder b("fig3");
    b.setNumParams(1);
    b.ldparam(2, 0);     // R2 = buffer
    b.iaddi(4, 2, 4096); // R4 = another page of it
    b.movi(9, 100);
    b.movi(7, 8);
    // The four instructions of the paper's example:
    b.ldGlobal(3, 2);    // A
    b.isubi(9, 9, 4);    // B
    b.ldGlobal(8, 4);    // C
    b.iaddi(4, 7, 8);    // D: WAR on R4
    b.exit();

    func::GlobalMemory mem;
    func::Kernel k;
    k.program = b.build();
    k.grid = {1, 1, 1};
    k.block = {32, 1, 1};
    k.params = {1 << 20};
    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(k);

    // Trace indices of the paper's four instructions (after the four
    // setup instructions above).
    const std::uint32_t first = 4;
    const char *labels = "ABCD";

    std::printf("paper Figures 3/4/6/7 example: A=ld, B=sub, C=ld (WAR "
                "source of D), D=add\n");
    std::printf("one warp, one SM; issue->commit of each instruction "
                "under each pipeline:\n\n");

    Cycle base = 0;
    struct Row {
        gpu::Scheme s;
        const char *note;
    } rows[] = {
        {gpu::Scheme::StallOnFault,
         "baseline: B and D overlap the loads (Fig 3)"},
        {gpu::Scheme::WarpDisableCommit,
         "wd-commit: fetch blocked until each load commits (Fig 4)"},
        {gpu::Scheme::WarpDisableLastCheck,
         "wd-lastcheck: fetch resumes after the last TLB check"},
        {gpu::Scheme::ReplayQueue,
         "replay queue: D waits for C's last TLB check (Fig 6)"},
        {gpu::Scheme::OperandLog,
         "operand log: baseline overlap restored (Fig 7)"},
    };
    for (const auto &row : rows) {
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.scheme = row.s;
        gpu::Gpu g(cfg);
        obs::RecordingObserver rec;
        g.setObserver(&rec);
        auto r = g.run(k, tr);
        if (row.s == gpu::Scheme::StallOnFault)
            base = r.cycles;

        Lifetime life[4];
        for (const auto &e : rec.events) {
            if (e.traceIdx < first || e.traceIdx >= first + 4)
                continue;
            Lifetime &l = life[e.traceIdx - first];
            if (e.kind == obs::PipeEventKind::Issued) {
                l.issued = e.cycle;
                l.seen = true;
            } else if (e.kind == obs::PipeEventKind::Committed) {
                l.committed = e.cycle;
            }
        }

        std::printf("  %-14s %5llu cycles (+%3lld)   %s\n",
                    gpu::schemeName(row.s),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<long long>(r.cycles) -
                        static_cast<long long>(base),
                    row.note);
        for (int i = 0; i < 4; ++i) {
            if (!life[i].seen)
                continue;
            std::printf("      %c: issue @%3llu  commit @%3llu\n",
                        labels[i],
                        static_cast<unsigned long long>(life[i].issued),
                        static_cast<unsigned long long>(
                            life[i].committed));
        }
    }

    if (show_events) {
        std::printf("\n--- wd-lastcheck event stream (fetch-disabled at "
                    "each load,\n    fetch-reenabled at its last TLB "
                    "check) ---\n");
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.scheme = gpu::Scheme::WarpDisableLastCheck;
        gpu::Gpu g(cfg);
        obs::PipelineView view(128);
        view.setProgram(&k.program);
        g.setObserver(&view);
        g.run(k, tr);
        view.render(std::cout);
    }

    std::printf("\nThe two pipeline hazards of section 2.5 in this "
                "sequence:\n"
                "  sparse replay: if A and C fault, B and D must not "
                "replay;\n"
                "  RAW on replay: D overwrites R4, so a replayed C "
                "would read the wrong address\n"
                "    (the replay queue prevents this by holding C's "
                "source operands; the operand\n"
                "     log by keeping a copy of the operands).\n");
    return 0;
}
