/**
 * @file
 * Device-side malloc + GPU-local fault handling walkthrough (paper
 * section 4.2): a kernel that builds a linked structure with ALLOC,
 * whose first-touch faults are handled either by the CPU (baseline)
 * or by the faulting SM itself (UC2).
 *
 *     ./examples/device_malloc
 */

#include <cstdio>

#include "gex.hpp"

using namespace gex;

int
main()
{
    // A kernel where every thread allocates a 3-node chain and links
    // it, touching fresh heap pages as it goes.
    kasm::KernelBuilder b("chains");
    b.setNumParams(1);
    b.s2r(0, isa::SpecialReg::GlobalTid);
    b.ldparam(1, 0);
    b.movi(2, 160); // node size
    b.mov(5, isa::kRegZero);
    for (int d = 0; d < 3; ++d) {
        b.alloc(3, 2);
        b.stGlobal(3, 0, 5); // node->next = previous
        b.stGlobal(3, 8, 0); // node->key = gtid
        b.mov(5, 3);
    }
    b.shli(4, 0, 3);
    b.iadd(4, 4, 1);
    b.stGlobal(4, 0, 5); // heads[gtid] = chain
    b.exit();

    func::GlobalMemory mem;
    vm::AddressSpace as;
    const std::uint32_t blocks = 48;
    const std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 128;

    func::Kernel k;
    k.program = b.build();
    k.grid = {blocks, 1, 1};
    k.block = {128, 1, 1};
    Addr heads = as.allocate(threads * 8);
    std::uint64_t heap_bytes =
        (threads * 3 * 160 / kDefaultMigrationBytes + 2) *
        kDefaultMigrationBytes;
    Addr heap = as.allocate(heap_bytes);
    mem.setHeap(heap, heap_bytes);
    k.params = {heads};
    k.buffers = {{"heads", heads, threads * 8, func::BufferKind::Output},
                 {"heap", heap, heap_bytes, func::BufferKind::Heap}};

    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(k);

    // Functional check: walk one chain.
    Addr n0 = mem.read64(heads + 1234 * 8);
    Addr n1 = mem.read64(n0);
    Addr n2 = mem.read64(n1);
    std::printf("thread 1234 chain: %#llx -> %#llx -> %#llx (key %llu)\n\n",
                static_cast<unsigned long long>(n0),
                static_cast<unsigned long long>(n1),
                static_cast<unsigned long long>(n2),
                static_cast<unsigned long long>(mem.read64(n0 + 8)));

    for (const char *link_name : {"nvlink", "pcie"}) {
        vm::HostLinkConfig link = std::string(link_name) == "nvlink"
                                      ? vm::HostLinkConfig::nvlink()
                                      : vm::HostLinkConfig::pcie();
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.scheme = gpu::Scheme::ReplayQueue;
        cfg.hostLink = link;

        gpu::Gpu g1(cfg);
        auto cpu = g1.run(k, tr, vm::VmPolicy::heapFaults(false));
        gpu::Gpu g2(cfg);
        auto gpu_r = g2.run(k, tr, vm::VmPolicy::heapFaults(true));

        std::printf("[%s] CPU-handled: %llu cycles (%.0f faults via "
                    "host link)\n",
                    link_name,
                    static_cast<unsigned long long>(cpu.cycles),
                    cpu.stats.get("hostlink.faults"));
        std::printf("[%s] GPU-local:   %llu cycles (%.0f faults, "
                    "%.0f handler runs, %.1f us of system-mode time)\n",
                    link_name,
                    static_cast<unsigned long long>(gpu_r.cycles),
                    gpu_r.stats.get("mmu.gpu_alloc_faults"),
                    gpu_r.stats.get("gpuhandler.faults"),
                    gpu_r.stats.get("sm.system_mode_cycles") / 1000.0);
        std::printf("[%s] speedup: %.2fx\n\n", link_name,
                    static_cast<double>(cpu.cycles) /
                        static_cast<double>(gpu_r.cycles));
    }
    return 0;
}
