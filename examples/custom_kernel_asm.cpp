/**
 * @file
 * Using the text assembler: write a kernel in .kasm assembly, assemble
 * it, run it functionally and time it. The kernel computes a per-block
 * reduction through shared memory with a divergent tail.
 *
 *     ./examples/custom_kernel_asm
 */

#include <cstdio>

#include "gex.hpp"

using namespace gex;

static const char *kSource = R"(
# Per-block sum of in[], one element per thread, atomically added to
# out[0]. Demonstrates shared memory, barriers, divergence and atomics.
.kernel block_sum
.shared 2048
.params 2

    s2r r0, %tid.x
    s2r r1, %gtid
    ldparam r2, param[0]        # in
    ldparam r3, param[1]        # out
    shl r4, r1, 3
    iadd r4, r4, r2
    ld.global r5, [r4]          # v = in[gtid]
    shl r6, r0, 3
    st.shared [r6], r5
    bar

    # Tree reduction in shared memory (256 threads -> 1 value).
    movi r7, 128
loop:
    setp.i.lt p0, r0, r7        # active half
    ssy skip
    @!p0 bra skip
    iadd r8, r0, r7
    shl r8, r8, 3
    ld.shared r9, [r8]
    ld.shared r10, [r6]
    iadd r10, r10, r9
    st.shared [r6], r10
skip:
    join
    bar
    shr r7, r7, 1
    setp.i.ge p1, r7, 1
    @p1 bra loop

    setp.i.eq p2, r0, 0
    @p2 ld.shared r11, [r6]
    @p2 atom.add rz, [r3], r11
    exit
)";

int
main()
{
    isa::Program prog = kasm::assemble(kSource);
    std::printf("assembled '%s': %zu instructions, %d regs, %u B "
                "shared\n\n",
                prog.name().c_str(), prog.size(), prog.regsPerThread(),
                prog.sharedBytes());

    func::GlobalMemory mem;
    vm::AddressSpace as;
    const std::uint32_t blocks = 64, threads = 256;
    const std::uint64_t n = static_cast<std::uint64_t>(blocks) * threads;
    Addr in = as.allocate(n * 8), out = as.allocate(64);
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        mem.write64(in + i * 8, i % 100);
        expect += i % 100;
    }

    func::Kernel k;
    k.program = prog;
    k.grid = {blocks, 1, 1};
    k.block = {threads, 1, 1};
    k.params = {in, out};
    k.buffers = {{"in", in, n * 8, func::BufferKind::Input},
                 {"out", out, 64, func::BufferKind::InOut}};

    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(k);
    std::uint64_t got = mem.read64(out);
    std::printf("reduction: got %llu, expected %llu (%s)\n",
                static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(expect),
                got == expect ? "OK" : "MISMATCH");

    gpu::Gpu g(gpu::GpuConfig::baseline());
    auto r = g.run(k, tr);
    std::printf("timing: %llu cycles, ipc %.2f, l1 hit rate %.2f\n",
                static_cast<unsigned long long>(r.cycles), r.ipc(),
                r.stats.get("l1.hits") /
                    (r.stats.get("l1.hits") + r.stats.get("l1.misses") +
                     1e-9));
    return got == expect ? 0 : 1;
}
