/**
 * @file
 * Demand paging + block switching walkthrough (paper sections 2.3 and
 * 4.1): runs an oversubscribed workload with all inputs initially in
 * CPU memory and compares plain demand paging against UC1 block
 * switching, printing the fault and scheduling activity.
 *
 *     ./examples/demand_paging [workload] [scale] [--trace-out FILE]
 *
 * With --trace-out, the block-switching run is recorded through the
 * pipeline observer and written as Chrome-trace JSON (the context
 * save/restore events appear on per-slot tracks).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gex.hpp"

using namespace gex;

namespace {

void
report(const char *label, const gpu::SimResult &r)
{
    std::printf("%-22s %9llu cycles | migrations %4.0f, joined %4.0f | "
                "switch-outs %3.0f, switch-ins %3.0f, context moved "
                "%5.0f KB\n",
                label, static_cast<unsigned long long>(r.cycles),
                r.stats.get("mmu.migration_faults"),
                r.stats.get("mmu.joined_faults"),
                r.stats.get("sm.switch_outs"),
                r.stats.get("sm.switch_ins"),
                r.stats.get("sm.context_bytes_moved") / 1024.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *trace_out = nullptr;
    std::vector<std::string> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
            trace_out = argv[++i];
        else
            pos.push_back(argv[i]);
    }
    std::string name = !pos.empty() ? pos[0] : "sgemm";
    int scale = pos.size() > 1 ? std::atoi(pos[1].c_str()) : 3;
    if (!workloads::exists(name)) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }

    func::GlobalMemory mem;
    auto w = workloads::make(name, mem, scale);
    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(w.kernel);

    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue; // preemptible faults
    std::printf("workload %s (scale %d): %u blocks, %d resident/SM, "
                "%llu warp insts\n\n",
                name.c_str(), scale, w.kernel.numBlocks(),
                gpu::blocksPerSm(cfg, w.kernel),
                static_cast<unsigned long long>(tr.dynamicInsts()));

    // Fault-free reference.
    {
        gpu::Gpu g(cfg);
        report("all-resident", g.run(w.kernel, tr));
    }
    // Demand paging, faulted blocks stay resident (stall until the
    // migration completes).
    gpu::SimResult no_switch;
    {
        gpu::Gpu g(cfg);
        no_switch = g.run(w.kernel, tr, vm::VmPolicy::demandPaging());
        report("demand paging", no_switch);
    }
    // UC1: switch faulted blocks out, run pending blocks meanwhile.
    {
        cfg.blockSwitching = true;
        gpu::Gpu g(cfg);
        obs::ChromeTraceWriter trace_writer;
        if (trace_out) {
            trace_writer.setProgram(&w.kernel.program);
            g.setObserver(&trace_writer);
        }
        auto r = g.run(w.kernel, tr, vm::VmPolicy::demandPaging());
        report("+ block switching", r);
        std::printf("\nblock switching speedup over plain demand "
                    "paging: %.3fx\n",
                    static_cast<double>(no_switch.cycles) /
                        static_cast<double>(r.cycles));
        if (trace_out) {
            std::ofstream out(trace_out);
            trace_writer.write(out);
            std::printf("wrote %zu pipeline events to %s\n",
                        trace_writer.eventCount(), trace_out);
        }
    }
    return 0;
}
