/**
 * @file
 * Demand paging + block switching walkthrough (paper sections 2.3 and
 * 4.1): runs an oversubscribed workload with all inputs initially in
 * CPU memory and compares plain demand paging against UC1 block
 * switching, printing the fault and scheduling activity.
 *
 *     ./examples/demand_paging [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gex.hpp"

using namespace gex;

namespace {

void
report(const char *label, const gpu::SimResult &r)
{
    std::printf("%-22s %9llu cycles | migrations %4.0f, joined %4.0f | "
                "switch-outs %3.0f, switch-ins %3.0f, context moved "
                "%5.0f KB\n",
                label, static_cast<unsigned long long>(r.cycles),
                r.stats.get("mmu.migration_faults"),
                r.stats.get("mmu.joined_faults"),
                r.stats.get("sm.switch_outs"),
                r.stats.get("sm.switch_ins"),
                r.stats.get("sm.context_bytes_moved") / 1024.0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "sgemm";
    int scale = argc > 2 ? std::atoi(argv[2]) : 3;
    if (!workloads::exists(name)) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }

    func::GlobalMemory mem;
    auto w = workloads::make(name, mem, scale);
    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(w.kernel);

    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue; // preemptible faults
    std::printf("workload %s (scale %d): %u blocks, %d resident/SM, "
                "%llu warp insts\n\n",
                name.c_str(), scale, w.kernel.numBlocks(),
                gpu::blocksPerSm(cfg, w.kernel),
                static_cast<unsigned long long>(tr.dynamicInsts()));

    // Fault-free reference.
    {
        gpu::Gpu g(cfg);
        report("all-resident", g.run(w.kernel, tr));
    }
    // Demand paging, faulted blocks stay resident (stall until the
    // migration completes).
    gpu::SimResult no_switch;
    {
        gpu::Gpu g(cfg);
        no_switch = g.run(w.kernel, tr, vm::VmPolicy::demandPaging());
        report("demand paging", no_switch);
    }
    // UC1: switch faulted blocks out, run pending blocks meanwhile.
    {
        cfg.blockSwitching = true;
        gpu::Gpu g(cfg);
        auto r = g.run(w.kernel, tr, vm::VmPolicy::demandPaging());
        report("+ block switching", r);
        std::printf("\nblock switching speedup over plain demand "
                    "paging: %.3fx\n",
                    static_cast<double>(no_switch.cycles) /
                        static_cast<double>(r.cycles));
    }
    return 0;
}
