# Empty dependencies file for gexsim-run.
# This may be replaced when dependencies are built.
