file(REMOVE_RECURSE
  "CMakeFiles/gexsim-run.dir/gexsim_run.cpp.o"
  "CMakeFiles/gexsim-run.dir/gexsim_run.cpp.o.d"
  "gexsim-run"
  "gexsim-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gexsim-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
