# Empty compiler generated dependencies file for gexsim-asm.
# This may be replaced when dependencies are built.
