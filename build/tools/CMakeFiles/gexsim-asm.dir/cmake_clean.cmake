file(REMOVE_RECURSE
  "CMakeFiles/gexsim-asm.dir/gexsim_asm.cpp.o"
  "CMakeFiles/gexsim-asm.dir/gexsim_asm.cpp.o.d"
  "gexsim-asm"
  "gexsim-asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gexsim-asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
