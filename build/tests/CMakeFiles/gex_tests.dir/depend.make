# Empty dependencies file for gex_tests.
# This may be replaced when dependencies are built.
