
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arith_exceptions.cpp" "tests/CMakeFiles/gex_tests.dir/test_arith_exceptions.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_arith_exceptions.cpp.o.d"
  "/root/repo/tests/test_block_switching.cpp" "tests/CMakeFiles/gex_tests.dir/test_block_switching.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_block_switching.cpp.o.d"
  "/root/repo/tests/test_cache_properties.cpp" "tests/CMakeFiles/gex_tests.dir/test_cache_properties.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_cache_properties.cpp.o.d"
  "/root/repo/tests/test_coalescer.cpp" "tests/CMakeFiles/gex_tests.dir/test_coalescer.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_coalescer.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/gex_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_config_knobs.cpp" "tests/CMakeFiles/gex_tests.dir/test_config_knobs.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_config_knobs.cpp.o.d"
  "/root/repo/tests/test_exception_model.cpp" "tests/CMakeFiles/gex_tests.dir/test_exception_model.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_exception_model.cpp.o.d"
  "/root/repo/tests/test_faults.cpp" "tests/CMakeFiles/gex_tests.dir/test_faults.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_faults.cpp.o.d"
  "/root/repo/tests/test_functional.cpp" "tests/CMakeFiles/gex_tests.dir/test_functional.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_functional.cpp.o.d"
  "/root/repo/tests/test_functional_edge.cpp" "tests/CMakeFiles/gex_tests.dir/test_functional_edge.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_functional_edge.cpp.o.d"
  "/root/repo/tests/test_gpu_top.cpp" "tests/CMakeFiles/gex_tests.dir/test_gpu_top.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_gpu_top.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/gex_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_kasm.cpp" "tests/CMakeFiles/gex_tests.dir/test_kasm.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_kasm.cpp.o.d"
  "/root/repo/tests/test_local_handling.cpp" "tests/CMakeFiles/gex_tests.dir/test_local_handling.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_local_handling.cpp.o.d"
  "/root/repo/tests/test_lsu.cpp" "tests/CMakeFiles/gex_tests.dir/test_lsu.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_lsu.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/gex_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/gex_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/gex_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_queueing.cpp" "tests/CMakeFiles/gex_tests.dir/test_queueing.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_queueing.cpp.o.d"
  "/root/repo/tests/test_schemes.cpp" "tests/CMakeFiles/gex_tests.dir/test_schemes.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_schemes.cpp.o.d"
  "/root/repo/tests/test_scoreboard.cpp" "tests/CMakeFiles/gex_tests.dir/test_scoreboard.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_scoreboard.cpp.o.d"
  "/root/repo/tests/test_simt_stack.cpp" "tests/CMakeFiles/gex_tests.dir/test_simt_stack.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_simt_stack.cpp.o.d"
  "/root/repo/tests/test_timing_sm.cpp" "tests/CMakeFiles/gex_tests.dir/test_timing_sm.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_timing_sm.cpp.o.d"
  "/root/repo/tests/test_tlb.cpp" "tests/CMakeFiles/gex_tests.dir/test_tlb.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_tlb.cpp.o.d"
  "/root/repo/tests/test_vm.cpp" "tests/CMakeFiles/gex_tests.dir/test_vm.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_vm.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/gex_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/gex_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
