file(REMOVE_RECURSE
  "CMakeFiles/fig14_local_output.dir/fig14_local_output.cpp.o"
  "CMakeFiles/fig14_local_output.dir/fig14_local_output.cpp.o.d"
  "fig14_local_output"
  "fig14_local_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_local_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
