# Empty compiler generated dependencies file for fig14_local_output.
# This may be replaced when dependencies are built.
