file(REMOVE_RECURSE
  "CMakeFiles/fig12_block_switching.dir/fig12_block_switching.cpp.o"
  "CMakeFiles/fig12_block_switching.dir/fig12_block_switching.cpp.o.d"
  "fig12_block_switching"
  "fig12_block_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_block_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
