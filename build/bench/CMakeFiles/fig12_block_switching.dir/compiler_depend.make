# Empty compiler generated dependencies file for fig12_block_switching.
# This may be replaced when dependencies are built.
