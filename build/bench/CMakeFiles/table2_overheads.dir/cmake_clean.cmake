file(REMOVE_RECURSE
  "CMakeFiles/table2_overheads.dir/table2_overheads.cpp.o"
  "CMakeFiles/table2_overheads.dir/table2_overheads.cpp.o.d"
  "table2_overheads"
  "table2_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
