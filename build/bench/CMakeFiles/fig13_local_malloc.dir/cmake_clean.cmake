file(REMOVE_RECURSE
  "CMakeFiles/fig13_local_malloc.dir/fig13_local_malloc.cpp.o"
  "CMakeFiles/fig13_local_malloc.dir/fig13_local_malloc.cpp.o.d"
  "fig13_local_malloc"
  "fig13_local_malloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_local_malloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
