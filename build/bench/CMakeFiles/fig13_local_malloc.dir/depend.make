# Empty dependencies file for fig13_local_malloc.
# This may be replaced when dependencies are built.
