file(REMOVE_RECURSE
  "CMakeFiles/fig11_operand_log.dir/fig11_operand_log.cpp.o"
  "CMakeFiles/fig11_operand_log.dir/fig11_operand_log.cpp.o.d"
  "fig11_operand_log"
  "fig11_operand_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_operand_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
