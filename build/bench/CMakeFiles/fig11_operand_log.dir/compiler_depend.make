# Empty compiler generated dependencies file for fig11_operand_log.
# This may be replaced when dependencies are built.
