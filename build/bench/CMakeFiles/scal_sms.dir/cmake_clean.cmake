file(REMOVE_RECURSE
  "CMakeFiles/scal_sms.dir/scal_sms.cpp.o"
  "CMakeFiles/scal_sms.dir/scal_sms.cpp.o.d"
  "scal_sms"
  "scal_sms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scal_sms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
