# Empty dependencies file for scal_sms.
# This may be replaced when dependencies are built.
