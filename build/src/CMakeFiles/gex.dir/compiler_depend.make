# Empty compiler generated dependencies file for gex.
# This may be replaced when dependencies are built.
