
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/gex.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/gex.dir/common/log.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/gex.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/gex.dir/common/stats.cpp.o.d"
  "/root/repo/src/func/functional_sim.cpp" "src/CMakeFiles/gex.dir/func/functional_sim.cpp.o" "gcc" "src/CMakeFiles/gex.dir/func/functional_sim.cpp.o.d"
  "/root/repo/src/func/memory.cpp" "src/CMakeFiles/gex.dir/func/memory.cpp.o" "gcc" "src/CMakeFiles/gex.dir/func/memory.cpp.o.d"
  "/root/repo/src/func/simt_stack.cpp" "src/CMakeFiles/gex.dir/func/simt_stack.cpp.o" "gcc" "src/CMakeFiles/gex.dir/func/simt_stack.cpp.o.d"
  "/root/repo/src/gpu/config.cpp" "src/CMakeFiles/gex.dir/gpu/config.cpp.o" "gcc" "src/CMakeFiles/gex.dir/gpu/config.cpp.o.d"
  "/root/repo/src/gpu/context_switch.cpp" "src/CMakeFiles/gex.dir/gpu/context_switch.cpp.o" "gcc" "src/CMakeFiles/gex.dir/gpu/context_switch.cpp.o.d"
  "/root/repo/src/gpu/gpu.cpp" "src/CMakeFiles/gex.dir/gpu/gpu.cpp.o" "gcc" "src/CMakeFiles/gex.dir/gpu/gpu.cpp.o.d"
  "/root/repo/src/gpu/local_scheduler.cpp" "src/CMakeFiles/gex.dir/gpu/local_scheduler.cpp.o" "gcc" "src/CMakeFiles/gex.dir/gpu/local_scheduler.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/CMakeFiles/gex.dir/isa/instruction.cpp.o" "gcc" "src/CMakeFiles/gex.dir/isa/instruction.cpp.o.d"
  "/root/repo/src/isa/opcodes.cpp" "src/CMakeFiles/gex.dir/isa/opcodes.cpp.o" "gcc" "src/CMakeFiles/gex.dir/isa/opcodes.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "src/CMakeFiles/gex.dir/isa/program.cpp.o" "gcc" "src/CMakeFiles/gex.dir/isa/program.cpp.o.d"
  "/root/repo/src/kasm/builder.cpp" "src/CMakeFiles/gex.dir/kasm/builder.cpp.o" "gcc" "src/CMakeFiles/gex.dir/kasm/builder.cpp.o.d"
  "/root/repo/src/kasm/lexer.cpp" "src/CMakeFiles/gex.dir/kasm/lexer.cpp.o" "gcc" "src/CMakeFiles/gex.dir/kasm/lexer.cpp.o.d"
  "/root/repo/src/kasm/parser.cpp" "src/CMakeFiles/gex.dir/kasm/parser.cpp.o" "gcc" "src/CMakeFiles/gex.dir/kasm/parser.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/gex.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/gex.dir/mem/cache.cpp.o.d"
  "/root/repo/src/power/overheads.cpp" "src/CMakeFiles/gex.dir/power/overheads.cpp.o" "gcc" "src/CMakeFiles/gex.dir/power/overheads.cpp.o.d"
  "/root/repo/src/sm/coalescer.cpp" "src/CMakeFiles/gex.dir/sm/coalescer.cpp.o" "gcc" "src/CMakeFiles/gex.dir/sm/coalescer.cpp.o.d"
  "/root/repo/src/sm/exception_model.cpp" "src/CMakeFiles/gex.dir/sm/exception_model.cpp.o" "gcc" "src/CMakeFiles/gex.dir/sm/exception_model.cpp.o.d"
  "/root/repo/src/sm/lsu.cpp" "src/CMakeFiles/gex.dir/sm/lsu.cpp.o" "gcc" "src/CMakeFiles/gex.dir/sm/lsu.cpp.o.d"
  "/root/repo/src/sm/scoreboard.cpp" "src/CMakeFiles/gex.dir/sm/scoreboard.cpp.o" "gcc" "src/CMakeFiles/gex.dir/sm/scoreboard.cpp.o.d"
  "/root/repo/src/sm/sm.cpp" "src/CMakeFiles/gex.dir/sm/sm.cpp.o" "gcc" "src/CMakeFiles/gex.dir/sm/sm.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/gex.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/gex.dir/trace/trace.cpp.o.d"
  "/root/repo/src/vm/fill_unit.cpp" "src/CMakeFiles/gex.dir/vm/fill_unit.cpp.o" "gcc" "src/CMakeFiles/gex.dir/vm/fill_unit.cpp.o.d"
  "/root/repo/src/vm/host_link.cpp" "src/CMakeFiles/gex.dir/vm/host_link.cpp.o" "gcc" "src/CMakeFiles/gex.dir/vm/host_link.cpp.o.d"
  "/root/repo/src/vm/memory_manager.cpp" "src/CMakeFiles/gex.dir/vm/memory_manager.cpp.o" "gcc" "src/CMakeFiles/gex.dir/vm/memory_manager.cpp.o.d"
  "/root/repo/src/vm/page_table.cpp" "src/CMakeFiles/gex.dir/vm/page_table.cpp.o" "gcc" "src/CMakeFiles/gex.dir/vm/page_table.cpp.o.d"
  "/root/repo/src/vm/tlb.cpp" "src/CMakeFiles/gex.dir/vm/tlb.cpp.o" "gcc" "src/CMakeFiles/gex.dir/vm/tlb.cpp.o.d"
  "/root/repo/src/workloads/halloc.cpp" "src/CMakeFiles/gex.dir/workloads/halloc.cpp.o" "gcc" "src/CMakeFiles/gex.dir/workloads/halloc.cpp.o.d"
  "/root/repo/src/workloads/parboil.cpp" "src/CMakeFiles/gex.dir/workloads/parboil.cpp.o" "gcc" "src/CMakeFiles/gex.dir/workloads/parboil.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/gex.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/gex.dir/workloads/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
