file(REMOVE_RECURSE
  "libgex.a"
)
