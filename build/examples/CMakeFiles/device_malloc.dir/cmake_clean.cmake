file(REMOVE_RECURSE
  "CMakeFiles/device_malloc.dir/device_malloc.cpp.o"
  "CMakeFiles/device_malloc.dir/device_malloc.cpp.o.d"
  "device_malloc"
  "device_malloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_malloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
