# Empty compiler generated dependencies file for device_malloc.
# This may be replaced when dependencies are built.
