file(REMOVE_RECURSE
  "CMakeFiles/demand_paging.dir/demand_paging.cpp.o"
  "CMakeFiles/demand_paging.dir/demand_paging.cpp.o.d"
  "demand_paging"
  "demand_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demand_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
