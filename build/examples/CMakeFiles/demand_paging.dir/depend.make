# Empty dependencies file for demand_paging.
# This may be replaced when dependencies are built.
