# Empty compiler generated dependencies file for custom_kernel_asm.
# This may be replaced when dependencies are built.
