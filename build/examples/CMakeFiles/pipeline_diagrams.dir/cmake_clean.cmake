file(REMOVE_RECURSE
  "CMakeFiles/pipeline_diagrams.dir/pipeline_diagrams.cpp.o"
  "CMakeFiles/pipeline_diagrams.dir/pipeline_diagrams.cpp.o.d"
  "pipeline_diagrams"
  "pipeline_diagrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_diagrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
