# Empty dependencies file for pipeline_diagrams.
# This may be replaced when dependencies are built.
