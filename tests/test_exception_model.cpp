/** @file Unit tests: scheme policies and the operand log. */

#include <gtest/gtest.h>

#include <iterator>

#include "sm/exception_model.hpp"

namespace gex::sm {
namespace {

TEST(SchemePolicy, BaselineIsNotPreemptible)
{
    SchemePolicy p = SchemePolicy::make(gpu::Scheme::StallOnFault);
    EXPECT_FALSE(p.preemptible);
    EXPECT_FALSE(p.fetchDisableOnGlobalMem);
    EXPECT_FALSE(p.holdSourcesUntilLastCheck);
    EXPECT_FALSE(p.usesOperandLog);
}

TEST(SchemePolicy, WarpDisableVariants)
{
    SchemePolicy c = SchemePolicy::make(gpu::Scheme::WarpDisableCommit);
    EXPECT_TRUE(c.preemptible);
    EXPECT_TRUE(c.fetchDisableOnGlobalMem);
    EXPECT_FALSE(c.reenableAtLastCheck);

    SchemePolicy l = SchemePolicy::make(gpu::Scheme::WarpDisableLastCheck);
    EXPECT_TRUE(l.fetchDisableOnGlobalMem);
    EXPECT_TRUE(l.reenableAtLastCheck);
}

TEST(SchemePolicy, ReplayQueueHoldsSources)
{
    SchemePolicy p = SchemePolicy::make(gpu::Scheme::ReplayQueue);
    EXPECT_TRUE(p.preemptible);
    EXPECT_TRUE(p.holdSourcesUntilLastCheck);
    EXPECT_FALSE(p.fetchDisableOnGlobalMem);
    EXPECT_FALSE(p.usesOperandLog);
}

TEST(SchemePolicy, OperandLogRestoresBaselineScoreboarding)
{
    SchemePolicy p = SchemePolicy::make(gpu::Scheme::OperandLog);
    EXPECT_TRUE(p.preemptible);
    EXPECT_FALSE(p.holdSourcesUntilLastCheck);
    EXPECT_FALSE(p.fetchDisableOnGlobalMem);
    EXPECT_TRUE(p.usesOperandLog);
}

TEST(SchemePolicy, MakeTruthTable)
{
    // Every flag of every scheme, in one place (the five rows of the
    // file comment in exception_model.hpp).
    struct Row {
        gpu::Scheme s;
        bool fetchDisable, reenableLastCheck, holdSources, usesLog,
            preemptible;
    };
    const Row rows[] = {
        {gpu::Scheme::StallOnFault, false, false, false, false, false},
        {gpu::Scheme::WarpDisableCommit, true, false, false, false, true},
        {gpu::Scheme::WarpDisableLastCheck, true, true, false, false,
         true},
        {gpu::Scheme::ReplayQueue, false, false, true, false, true},
        {gpu::Scheme::OperandLog, false, false, false, true, true},
    };
    ASSERT_EQ(std::size(rows), gpu::allSchemes().size());
    for (const Row &r : rows) {
        SchemePolicy p = SchemePolicy::make(r.s);
        EXPECT_EQ(p.kind, r.s);
        EXPECT_EQ(p.fetchDisableOnGlobalMem, r.fetchDisable)
            << gpu::schemeName(r.s);
        EXPECT_EQ(p.reenableAtLastCheck, r.reenableLastCheck)
            << gpu::schemeName(r.s);
        EXPECT_EQ(p.holdSourcesUntilLastCheck, r.holdSources)
            << gpu::schemeName(r.s);
        EXPECT_EQ(p.usesOperandLog, r.usesLog) << gpu::schemeName(r.s);
        EXPECT_EQ(p.preemptible, r.preemptible) << gpu::schemeName(r.s);
    }
}

TEST(SchemePolicy, StageHooksFollowFlags)
{
    // The named per-stage hooks are pure views of the flags; pin the
    // mapping for every scheme so a stage module can rely on it.
    for (gpu::Scheme s : gpu::allSchemes()) {
        SchemePolicy p = SchemePolicy::make(s);

        // Fetch: global-mem instructions are barriers only under the
        // warp-disable schemes; arith-capable ones join in only when
        // the extension is enabled.
        EXPECT_EQ(p.fetchBarrier(true, false, false),
                  p.fetchDisableOnGlobalMem);
        EXPECT_EQ(p.fetchBarrier(false, true, true),
                  p.fetchDisableOnGlobalMem);
        EXPECT_FALSE(p.fetchBarrier(false, true, false));
        EXPECT_FALSE(p.fetchBarrier(false, false, true));

        // Issue: log admission applies to global-mem instructions with
        // active lanes, under the operand-log scheme only.
        EXPECT_EQ(p.logAdmission(true, 32), p.usesOperandLog);
        EXPECT_FALSE(p.logAdmission(false, 32));
        EXPECT_FALSE(p.logAdmission(true, 0));

        // Operand read vs last check: exactly one release point for a
        // faultable instruction, and non-faultable instructions always
        // release at operand read.
        EXPECT_EQ(p.releaseSourcesAtOperandRead(true),
                  !p.releaseSourcesAtLastCheck());
        EXPECT_TRUE(p.releaseSourcesAtOperandRead(false));

        // Fetch re-enable: at most one of the two re-enable points,
        // and one exists iff the scheme disables fetch at all.
        EXPECT_FALSE(p.reenableFetchAtLastCheck() &&
                     p.reenableFetchAtCommit());
        EXPECT_EQ(p.reenableFetchAtLastCheck() || p.reenableFetchAtCommit(),
                  p.fetchDisableOnGlobalMem);

        // Fault action: squash+replay and stall-in-pipeline partition
        // the schemes.
        EXPECT_NE(p.squashOnFault(), p.stallFaultsInPipeline());
        EXPECT_EQ(p.squashOnFault(), p.preemptible);
    }
}

TEST(OperandLog, EntrySizesMatchPaper)
{
    // Paper section 3.3: loads log one entry (8 B address x 32),
    // stores two (address + data).
    EXPECT_EQ(OperandLog::entryBytes(false), 256u);
    EXPECT_EQ(OperandLog::entryBytes(true), 512u);
}

TEST(OperandLog, PartitioningPerResidentBlock)
{
    OperandLog log;
    log.configure(16 * 1024, 16);
    EXPECT_EQ(log.partitionBytes(), 1024u);
    log.configure(16 * 1024, 1); // lbm-style single resident block
    EXPECT_EQ(log.partitionBytes(), 16u * 1024u);
}

TEST(OperandLog, MinimumPartitionGuaranteesProgress)
{
    OperandLog log;
    // 2 KB over 16 partitions would be 128 B; clamped to one store
    // entry (the paper's 8 KB-minimum rationale).
    log.configure(2 * 1024, 16);
    EXPECT_EQ(log.partitionBytes(), OperandLog::kStoreEntryBytes);
}

TEST(OperandLog, AllocateReleaseAccounting)
{
    OperandLog log;
    log.configure(8 * 1024, 16); // 512 B per partition
    EXPECT_TRUE(log.tryAllocate(0, 256));
    EXPECT_TRUE(log.tryAllocate(0, 256));
    EXPECT_FALSE(log.tryAllocate(0, 256)); // partition full
    EXPECT_EQ(log.allocFailures(), 1u);
    // Other partitions unaffected.
    EXPECT_TRUE(log.tryAllocate(5, 512));
    log.release(0, 256);
    EXPECT_TRUE(log.tryAllocate(0, 256));
    EXPECT_EQ(log.used(0), 512u);
}

TEST(OperandLog, EntryBytesGateLoadVsStore)
{
    OperandLog log;
    log.configure(8 * 1024, 16); // 512 B per partition
    // A store-like entry exactly fills a partition: a second one (or
    // even a load entry) must back-pressure until it releases.
    EXPECT_TRUE(log.tryAllocate(3, OperandLog::entryBytes(true)));
    EXPECT_FALSE(log.tryAllocate(3, OperandLog::entryBytes(false)));
    log.release(3, OperandLog::entryBytes(true));
    EXPECT_TRUE(log.tryAllocate(3, OperandLog::entryBytes(false)));
    EXPECT_TRUE(log.tryAllocate(3, OperandLog::entryBytes(false)));
    EXPECT_EQ(log.used(3), 512u);
}

TEST(OperandLog, BackPressureIsPerPartition)
{
    OperandLog log;
    log.configure(4 * 1024, 8); // 512 B per partition
    // Fill every even partition; odd partitions stay fully available,
    // and each full partition recovers independently on release.
    for (int p = 0; p < 8; p += 2) {
        EXPECT_TRUE(log.tryAllocate(p, 512));
        EXPECT_FALSE(log.tryAllocate(p, 256));
    }
    for (int p = 1; p < 8; p += 2)
        EXPECT_TRUE(log.tryAllocate(p, 256));
    log.release(2, 512);
    EXPECT_TRUE(log.tryAllocate(2, 512));
    EXPECT_FALSE(log.tryAllocate(0, 256)); // others still full
    EXPECT_EQ(log.allocFailures(), 5u);
}

TEST(OperandLogDeath, ReleaseUnderflow)
{
    OperandLog log;
    log.configure(8 * 1024, 16);
    EXPECT_DEATH(log.release(0, 256), "underflow");
}

} // namespace
} // namespace gex::sm
