/** @file Unit tests: scheme policies and the operand log. */

#include <gtest/gtest.h>

#include "sm/exception_model.hpp"

namespace gex::sm {
namespace {

TEST(SchemePolicy, BaselineIsNotPreemptible)
{
    SchemePolicy p = SchemePolicy::make(gpu::Scheme::StallOnFault);
    EXPECT_FALSE(p.preemptible);
    EXPECT_FALSE(p.fetchDisableOnGlobalMem);
    EXPECT_FALSE(p.holdSourcesUntilLastCheck);
    EXPECT_FALSE(p.usesOperandLog);
}

TEST(SchemePolicy, WarpDisableVariants)
{
    SchemePolicy c = SchemePolicy::make(gpu::Scheme::WarpDisableCommit);
    EXPECT_TRUE(c.preemptible);
    EXPECT_TRUE(c.fetchDisableOnGlobalMem);
    EXPECT_FALSE(c.reenableAtLastCheck);

    SchemePolicy l = SchemePolicy::make(gpu::Scheme::WarpDisableLastCheck);
    EXPECT_TRUE(l.fetchDisableOnGlobalMem);
    EXPECT_TRUE(l.reenableAtLastCheck);
}

TEST(SchemePolicy, ReplayQueueHoldsSources)
{
    SchemePolicy p = SchemePolicy::make(gpu::Scheme::ReplayQueue);
    EXPECT_TRUE(p.preemptible);
    EXPECT_TRUE(p.holdSourcesUntilLastCheck);
    EXPECT_FALSE(p.fetchDisableOnGlobalMem);
    EXPECT_FALSE(p.usesOperandLog);
}

TEST(SchemePolicy, OperandLogRestoresBaselineScoreboarding)
{
    SchemePolicy p = SchemePolicy::make(gpu::Scheme::OperandLog);
    EXPECT_TRUE(p.preemptible);
    EXPECT_FALSE(p.holdSourcesUntilLastCheck);
    EXPECT_FALSE(p.fetchDisableOnGlobalMem);
    EXPECT_TRUE(p.usesOperandLog);
}

TEST(OperandLog, EntrySizesMatchPaper)
{
    // Paper section 3.3: loads log one entry (8 B address x 32),
    // stores two (address + data).
    EXPECT_EQ(OperandLog::entryBytes(false), 256u);
    EXPECT_EQ(OperandLog::entryBytes(true), 512u);
}

TEST(OperandLog, PartitioningPerResidentBlock)
{
    OperandLog log;
    log.configure(16 * 1024, 16);
    EXPECT_EQ(log.partitionBytes(), 1024u);
    log.configure(16 * 1024, 1); // lbm-style single resident block
    EXPECT_EQ(log.partitionBytes(), 16u * 1024u);
}

TEST(OperandLog, MinimumPartitionGuaranteesProgress)
{
    OperandLog log;
    // 2 KB over 16 partitions would be 128 B; clamped to one store
    // entry (the paper's 8 KB-minimum rationale).
    log.configure(2 * 1024, 16);
    EXPECT_EQ(log.partitionBytes(), OperandLog::kStoreEntryBytes);
}

TEST(OperandLog, AllocateReleaseAccounting)
{
    OperandLog log;
    log.configure(8 * 1024, 16); // 512 B per partition
    EXPECT_TRUE(log.tryAllocate(0, 256));
    EXPECT_TRUE(log.tryAllocate(0, 256));
    EXPECT_FALSE(log.tryAllocate(0, 256)); // partition full
    EXPECT_EQ(log.allocFailures(), 1u);
    // Other partitions unaffected.
    EXPECT_TRUE(log.tryAllocate(5, 512));
    log.release(0, 256);
    EXPECT_TRUE(log.tryAllocate(0, 256));
    EXPECT_EQ(log.used(0), 512u);
}

TEST(OperandLogDeath, ReleaseUnderflow)
{
    OperandLog log;
    log.configure(8 * 1024, 16);
    EXPECT_DEATH(log.release(0, 256), "underflow");
}

} // namespace
} // namespace gex::sm
