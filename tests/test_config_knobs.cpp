/**
 * @file
 * Tests for configuration knobs added beyond the paper's fixed
 * setup: warp scheduler policy, migration granularity, SM count,
 * and the Table 1 describe() output.
 */

#include <gtest/gtest.h>

#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "workloads/workloads.hpp"

namespace gex {
namespace {

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

Built *
buildShared(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<Built>> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        auto bt = std::make_unique<Built>();
        auto w = workloads::make(name, bt->mem, 1);
        bt->kernel = std::move(w.kernel);
        func::FunctionalSim fsim(bt->mem);
        bt->trace = fsim.run(bt->kernel);
        it = cache.emplace(name, std::move(bt)).first;
    }
    return it->second.get();
}

TEST(ConfigDescribe, ContainsTable1Parameters)
{
    std::string d = gpu::GpuConfig::baseline().describe();
    EXPECT_NE(d.find("Max Warps            64"), std::string::npos);
    EXPECT_NE(d.find("Register File        256KB"), std::string::npos);
    EXPECT_NE(d.find("Number of SMs        16"), std::string::npos);
    EXPECT_NE(d.find("Walking latency      500"), std::string::npos);
    EXPECT_NE(d.find("DRAM bandwidth       256 GB/s"), std::string::npos);
}

TEST(SchedPolicy, BothPoliciesCompleteIdenticalWork)
{
    Built *bt = buildShared("sad");
    for (auto pol : {gpu::SchedPolicy::LooseRoundRobin,
                     gpu::SchedPolicy::GreedyThenOldest}) {
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.sm.schedPolicy = pol;
        gpu::Gpu g(cfg);
        auto r = g.run(bt->kernel, bt->trace);
        EXPECT_EQ(r.instructions, bt->trace.dynamicInsts());
        EXPECT_GT(r.cycles, 0u);
    }
}

TEST(SchedPolicy, PoliciesDifferInTiming)
{
    Built *bt = buildShared("spmv");
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.sm.schedPolicy = gpu::SchedPolicy::LooseRoundRobin;
    gpu::Gpu g1(cfg);
    auto lrr = g1.run(bt->kernel, bt->trace);
    cfg.sm.schedPolicy = gpu::SchedPolicy::GreedyThenOldest;
    gpu::Gpu g2(cfg);
    auto gto = g2.run(bt->kernel, bt->trace);
    EXPECT_NE(lrr.cycles, gto.cycles); // genuinely different schedules
}

TEST(MigrationGranularity, SmallerRegionsMoreFaults)
{
    Built *bt = buildShared("sad");
    auto run_gran = [&](Addr bytes) {
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.scheme = gpu::Scheme::ReplayQueue;
        cfg.migrationGranularityBytes = bytes;
        gpu::Gpu g(cfg);
        return g.run(bt->kernel, bt->trace, vm::VmPolicy::demandPaging());
    };
    auto small = run_gran(16 * 1024);
    auto big = run_gran(256 * 1024);
    EXPECT_GT(small.stats.get("mmu.migration_faults"),
              big.stats.get("mmu.migration_faults"));
    // Same total data, different batching.
    EXPECT_EQ(small.instructions, big.instructions);
}

TEST(SmCount, FewerSmsSlower)
{
    Built *bt = buildShared("sad");
    auto run_sms = [&](int n) {
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.numSms = n;
        gpu::Gpu g(cfg);
        return g.run(bt->kernel, bt->trace);
    };
    auto few = run_sms(4);
    auto many = run_sms(16);
    EXPECT_GT(few.cycles, many.cycles);
    EXPECT_EQ(few.instructions, many.instructions);
}

TEST(SchemeNames, AllDistinct)
{
    std::set<std::string> names;
    for (auto s : {gpu::Scheme::StallOnFault, gpu::Scheme::WarpDisableCommit,
                   gpu::Scheme::WarpDisableLastCheck,
                   gpu::Scheme::ReplayQueue, gpu::Scheme::OperandLog})
        names.insert(gpu::schemeName(s));
    EXPECT_EQ(names.size(), 5u);
}

} // namespace
} // namespace gex
