/** @file Unit tests: SRAM model and Table 2 overhead reproduction. */

#include <gtest/gtest.h>

#include "power/overheads.hpp"
#include "power/sram_model.hpp"

namespace gex::power {
namespace {

TEST(SramModel, MonotoneInSize)
{
    EXPECT_LT(SramModel::areaMm2(8 * 1024), SramModel::areaMm2(32 * 1024));
    EXPECT_LT(SramModel::leakageMw(8 * 1024),
              SramModel::leakageMw(32 * 1024));
    EXPECT_LT(SramModel::accessEnergyPj(8 * 1024),
              SramModel::accessEnergyPj(32 * 1024));
}

TEST(SramModel, TotalPowerIncludesDynamic)
{
    double idle = SramModel::totalPowerMw(16 * 1024, 0.0);
    double busy = SramModel::totalPowerMw(16 * 1024, 1e9);
    EXPECT_NEAR(idle, SramModel::leakageMw(16 * 1024), 1e-9);
    EXPECT_GT(busy, idle);
}

/** Table 2 rows from the paper, for comparison. */
struct PaperRow {
    std::uint64_t kb;
    double smArea, gpuArea, smPower, gpuPower;
};
constexpr PaperRow kPaper[] = {
    {8, 1.04, 0.47, 1.82, 1.28},
    {16, 1.47, 0.67, 2.34, 1.64},
    {20, 1.67, 0.76, 2.61, 1.83},
    {32, 2.36, 1.08, 3.38, 2.37},
};

TEST(Table2, MatchesPaperWithinTolerance)
{
    auto rows = table2();
    ASSERT_EQ(rows.size(), 4u);
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        const auto &p = kPaper[i];
        EXPECT_EQ(r.logBytes, p.kb * 1024);
        // Within 10% relative of the published numbers.
        EXPECT_NEAR(r.smAreaPct, p.smArea, p.smArea * 0.10) << p.kb;
        EXPECT_NEAR(r.gpuAreaPct, p.gpuArea, p.gpuArea * 0.10) << p.kb;
        EXPECT_NEAR(r.smPowerPct, p.smPower, p.smPower * 0.10) << p.kb;
        EXPECT_NEAR(r.gpuPowerPct, p.gpuPower, p.gpuPower * 0.10) << p.kb;
    }
}

TEST(Table2, PaperHeadlineClaim)
{
    // "For all log sizes except the largest studied (32 KB), the total
    // GPU overheads are below 1% area and 2% power."
    auto rows = table2();
    for (const auto &r : rows) {
        if (r.logBytes < 32 * 1024) {
            EXPECT_LT(r.gpuAreaPct, 1.0);
            EXPECT_LT(r.gpuPowerPct, 2.0);
        }
    }
}

TEST(Table2, GpuPercentagesConsistentWithSm)
{
    GpuAreaPowerBaseline base;
    auto row = operandLogOverheads(16 * 1024, base);
    // GPU % = SM % x (smArea x numSms / gpuArea) etc.
    double area_scale = base.smAreaMm2 * base.numSms / base.gpuAreaMm2;
    EXPECT_NEAR(row.gpuAreaPct, row.smAreaPct * area_scale, 1e-9);
    double power_scale = base.smPowerW * base.numSms / base.gpuPowerW;
    EXPECT_NEAR(row.gpuPowerPct, row.smPowerPct * power_scale, 1e-9);
}

TEST(Table2, FormatContainsAllRows)
{
    std::string s = formatTable2(table2());
    EXPECT_NE(s.find("8 KB"), std::string::npos);
    EXPECT_NE(s.find("32 KB"), std::string::npos);
    EXPECT_NE(s.find("SM Area"), std::string::npos);
}

} // namespace
} // namespace gex::power
