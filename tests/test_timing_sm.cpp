/**
 * @file
 * Integration tests: the SM timing pipeline on small kernels —
 * instruction accounting, latency plausibility, barrier handling,
 * occupancy and the Figure 3 pipeline-behaviour example.
 */

#include <gtest/gtest.h>

#include "func/functional_sim.hpp"
#include "gpu/context_switch.hpp"
#include "gpu/gpu.hpp"
#include "kasm/builder.hpp"

namespace gex {
namespace {

using kasm::Cmp;
using kasm::KernelBuilder;
using kasm::SpecialReg;

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

void
finish(Built &bt, isa::Program prog, std::uint32_t threads,
       std::uint32_t blocks, std::vector<std::uint64_t> params)
{
    bt.kernel.program = std::move(prog);
    bt.kernel.grid = {blocks, 1, 1};
    bt.kernel.block = {threads, 1, 1};
    bt.kernel.params = std::move(params);
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);
}

/** out[i] = in[i] * 2 + 1 over one warp per block. */
void
buildStream(Built &bt, std::uint32_t blocks)
{
    constexpr Addr in = 1 << 20, out = 2 << 20;
    for (int i = 0; i < 4096; ++i)
        bt.mem.write64(in + 8 * static_cast<Addr>(i),
                       static_cast<std::uint64_t>(i));
    KernelBuilder b("stream");
    b.setNumParams(2);
    b.s2r(0, SpecialReg::GlobalTid);
    b.ldparam(1, 0);
    b.ldparam(2, 1);
    b.shli(3, 0, 3);
    b.iadd(4, 3, 1);
    b.ldGlobal(5, 4);
    b.shli(5, 5, 1);
    b.iaddi(5, 5, 1);
    b.iadd(4, 3, 2);
    b.stGlobal(4, 0, 5);
    b.exit();
    finish(bt, b.build(), 32, blocks, {in, out});
}

TEST(TimingSm, CommitsEveryTraceInstructionExactlyOnce)
{
    Built bt;
    buildStream(bt, 8);
    gpu::Gpu g(gpu::GpuConfig::baseline());
    auto r = g.run(bt.kernel, bt.trace);
    EXPECT_EQ(r.instructions, bt.trace.dynamicInsts());
    EXPECT_GT(r.cycles, 0u);
}

TEST(TimingSm, SingleWarpLatencyPlausible)
{
    Built bt;
    buildStream(bt, 1);
    gpu::Gpu g(gpu::GpuConfig::baseline());
    auto r = g.run(bt.kernel, bt.trace);
    // 11 instructions; the load goes to DRAM (~350+ cycles); the whole
    // thing must finish well under a demand-paging timescale.
    EXPECT_GT(r.cycles, 300u);
    EXPECT_LT(r.cycles, 2000u);
}

TEST(TimingSm, MoreBlocksMoreParallelism)
{
    Built one, many;
    buildStream(one, 1);
    buildStream(many, 16); // one block per SM
    gpu::Gpu g(gpu::GpuConfig::baseline());
    auto r1 = g.run(one.kernel, one.trace);
    auto r16 = g.run(many.kernel, many.trace);
    // 16 blocks over 16 SMs should be barely slower than one block.
    EXPECT_LT(r16.cycles, r1.cycles * 2);
}

TEST(TimingSm, DependentChainSlowerThanIndependent)
{
    auto build = [](Built &bt, bool dependent) {
        KernelBuilder b("chain");
        b.movi(0, 1);
        for (int i = 0; i < 64; ++i) {
            if (dependent)
                b.iaddi(0, 0, 1);
            else
                b.iaddi(static_cast<kasm::Reg>(1 + (i % 8)), 0, 1);
        }
        b.exit();
        finish(bt, b.build(), 32, 1, {});
    };
    Built dep, indep;
    build(dep, true);
    build(indep, false);
    gpu::Gpu g(gpu::GpuConfig::baseline());
    auto rd = g.run(dep.kernel, dep.trace);
    auto ri = g.run(indep.kernel, indep.trace);
    EXPECT_GT(rd.cycles, ri.cycles + 50);
}

TEST(TimingSm, SfuLatencyLongerThanMath)
{
    auto build = [](Built &bt, bool sfu) {
        KernelBuilder b("lat");
        b.movi(0, 1);
        for (int i = 0; i < 32; ++i) {
            if (sfu)
                b.fsin(0, 0); // serial SFU chain
            else
                b.fadd(0, 0, 0); // serial math chain
        }
        b.exit();
        finish(bt, b.build(), 32, 1, {});
    };
    Built s, m;
    build(s, true);
    build(m, false);
    gpu::Gpu g(gpu::GpuConfig::baseline());
    EXPECT_GT(g.run(s.kernel, s.trace).cycles,
              g.run(m.kernel, m.trace).cycles);
}

TEST(TimingSm, BarrierSynchronizesWarps)
{
    // Two warps; barrier between shared store and load phases. The
    // run must complete (barrier releases) and commit everything.
    Built bt;
    KernelBuilder b("bar");
    b.setSharedBytes(64 * 8);
    b.s2r(0, SpecialReg::TidX);
    b.shli(1, 0, 3);
    b.stShared(1, 0, 0);
    b.bar();
    b.ldShared(2, 1);
    b.exit();
    finish(bt, b.build(), 64, 4, {});
    gpu::Gpu g(gpu::GpuConfig::baseline());
    auto r = g.run(bt.kernel, bt.trace);
    EXPECT_EQ(r.instructions, bt.trace.dynamicInsts());
}

TEST(TimingSm, CacheHitsSpeedRepeatedAccess)
{
    // Same line loaded 32 times by one warp.
    Built bt;
    constexpr Addr in = 1 << 20;
    KernelBuilder b("rep");
    b.setNumParams(1);
    b.ldparam(1, 0);
    for (int i = 0; i < 32; ++i)
        b.ldGlobal(2, 1);
    b.exit();
    finish(bt, b.build(), 32, 1, {in});
    gpu::Gpu g(gpu::GpuConfig::baseline());
    auto r = g.run(bt.kernel, bt.trace);
    EXPECT_GT(r.stats.get("l1.hits") + r.stats.get("l1.mshr_merges"),
              25.0);
    EXPECT_LE(r.stats.get("dram.reads"), 2.0);
}

TEST(TimingSm, Figure3StyleOverlap)
{
    // Paper Figure 3: independent ALU op (B) between two loads (A, C)
    // and a WAR-dependent ALU op (D). With the baseline pipeline, B
    // and D commit long before the loads; total time ~ one memory
    // latency, not two.
    Built bt;
    constexpr Addr in = 1 << 20;
    KernelBuilder b("fig3");
    b.setNumParams(1);
    b.ldparam(2, 0);  // R2 = address base
    b.mov(4, 2);      // R4 = second address
    b.movi(9, 100);
    b.movi(7, 8);
    b.ldGlobal(3, 2);        // A: R3 <- ld [R2]
    b.isubi(9, 9, 4);        // B: independent
    b.ldGlobal(8, 4, 4096);  // C: R8 <- ld [R4] (different page)
    b.iaddi(4, 7, 8);        // D: writes R4 (WAR with C)
    b.exit();
    finish(bt, b.build(), 32, 1, {in});
    gpu::Gpu g(gpu::GpuConfig::baseline());
    auto r = g.run(bt.kernel, bt.trace);
    // Both loads overlap: well under 2x a DRAM round trip.
    EXPECT_LT(r.cycles, 1100u);
}

TEST(Occupancy, RegisterFileLimits)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    func::Kernel k;
    KernelBuilder b("fat");
    b.setMinRegs(128);
    b.movi(0, 1);
    b.exit();
    k.program = b.build();
    k.block = {256, 1, 1};
    k.grid = {1, 1, 1};
    // 256 threads x 128 regs x 8 B = 256 KB: exactly one block.
    EXPECT_EQ(gpu::blocksPerSm(cfg, k), 1);
}

TEST(Occupancy, WarpAndTbLimits)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    func::Kernel k;
    KernelBuilder b("thin");
    b.movi(0, 1);
    b.exit();
    k.program = b.build();
    k.block = {128, 1, 1}; // 4 warps, 1 register
    k.grid = {1, 1, 1};
    // Warp limit 64/4 = 16, TB limit 16 -> 16.
    EXPECT_EQ(gpu::blocksPerSm(cfg, k), 16);
    k.block = {1024, 1, 1}; // 32 warps
    EXPECT_EQ(gpu::blocksPerSm(cfg, k), 2);
}

TEST(Occupancy, SharedMemoryLimits)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    func::Kernel k;
    KernelBuilder b("shmem");
    b.setSharedBytes(8 * 1024);
    b.movi(0, 1);
    b.exit();
    k.program = b.build();
    k.block = {64, 1, 1};
    k.grid = {1, 1, 1};
    EXPECT_EQ(gpu::blocksPerSm(cfg, k), 4); // 32 KB / 8 KB
}

TEST(ContextBytes, IncludesRfSharedAndLog)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    func::Kernel k;
    KernelBuilder b("ctx");
    b.setSharedBytes(1024);
    b.movi(7, 1); // 8 registers
    b.exit();
    k.program = b.build();
    k.block = {64, 1, 1};
    k.grid = {1, 1, 1};
    std::uint64_t base_bytes = 64ull * 8 * 8 + 1024 + gpu::kControlStateBytes;
    EXPECT_EQ(gpu::contextBytesPerBlock(cfg, k), base_bytes);
    cfg.scheme = gpu::Scheme::OperandLog;
    EXPECT_GT(gpu::contextBytesPerBlock(cfg, k), base_bytes);
}

} // namespace
} // namespace gex
