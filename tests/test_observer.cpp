/**
 * @file
 * Integration tests: the pipeline observer layer (src/obs) — event
 * sequences emitted by the stage modules under the schemes whose
 * semantics they make visible, the Chrome-trace writer's JSON, the
 * pipeline view's ring, and the guarantee that attaching an observer
 * never changes simulation behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "kasm/builder.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/observer.hpp"
#include "obs/pipeline_view.hpp"
#include "vm/memory_manager.hpp"

namespace gex {
namespace {

using obs::PipeEvent;
using obs::PipeEventKind;

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

/**
 * The paper's Figure 3 running example (one warp): two global loads at
 * trace indices 4 and 6, with independent ALU work between them.
 */
void
buildFig3(Built &bt)
{
    kasm::KernelBuilder b("fig3");
    b.setNumParams(1);
    b.ldparam(2, 0);
    b.iaddi(4, 2, 4096);
    b.movi(9, 100);
    b.movi(7, 8);
    b.ldGlobal(3, 2); // #4: A
    b.isubi(9, 9, 4); // #5: B
    b.ldGlobal(8, 4); // #6: C
    b.iaddi(4, 7, 8); // #7: D (WAR on R4 with C)
    b.exit();
    bt.kernel.program = b.build();
    bt.kernel.grid = {1, 1, 1};
    bt.kernel.block = {32, 1, 1};
    bt.kernel.params = {1 << 20};
    // Register the input buffer so demand-paging runs start it on the
    // CPU (the loads then page-fault).
    bt.kernel.buffers = {
        {"in", 1 << 20, 2 * 4096 + 8, func::BufferKind::Input}};
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);
}

gpu::SimResult
runWith(const Built &bt, gpu::Scheme s, obs::PipelineObserver *o,
        bool demand_paging = false)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = s;
    gpu::Gpu g(cfg);
    if (o)
        g.setObserver(o);
    if (demand_paging)
        return g.run(bt.kernel, bt.trace, vm::VmPolicy::demandPaging());
    return g.run(bt.kernel, bt.trace);
}

std::size_t
countKind(const std::vector<PipeEvent> &ev, PipeEventKind k)
{
    return static_cast<std::size_t>(
        std::count_if(ev.begin(), ev.end(),
                      [k](const PipeEvent &e) { return e.kind == k; }));
}

TEST(Observer, AttachingIsPurelyAdditive)
{
    Built bt;
    buildFig3(bt);
    for (gpu::Scheme s : gpu::allSchemes()) {
        gpu::SimResult plain = runWith(bt, s, nullptr);
        obs::RecordingObserver rec;
        gpu::SimResult watched = runWith(bt, s, &rec);
        EXPECT_EQ(plain.cycles, watched.cycles) << gpu::schemeName(s);
        EXPECT_EQ(plain.instructions, watched.instructions)
            << gpu::schemeName(s);
        EXPECT_FALSE(rec.events.empty()) << gpu::schemeName(s);
    }
}

TEST(Observer, FaultFreeStreamIsWellFormed)
{
    Built bt;
    buildFig3(bt);
    obs::RecordingObserver rec;
    runWith(bt, gpu::Scheme::StallOnFault, &rec);

    // Every dynamic instruction is fetched, issued, and committed
    // exactly once; nothing faults or squashes on a resident run.
    const std::size_t n = bt.trace.dynamicInsts();
    EXPECT_EQ(countKind(rec.events, PipeEventKind::Fetched), n);
    EXPECT_EQ(countKind(rec.events, PipeEventKind::Issued), n);
    EXPECT_EQ(countKind(rec.events, PipeEventKind::Committed), n);
    EXPECT_EQ(countKind(rec.events, PipeEventKind::Faulted), 0u);
    EXPECT_EQ(countKind(rec.events, PipeEventKind::Squashed), 0u);
    // One last TLB check per global-memory instruction.
    EXPECT_EQ(countKind(rec.events, PipeEventKind::TlbChecked),
              bt.trace.memInsts);

    // Single SM: the stream is in simulated-time order.
    for (std::size_t i = 1; i < rec.events.size(); ++i)
        ASSERT_GE(rec.events[i].cycle, rec.events[i - 1].cycle);

    // Per instruction, the lifecycle order holds.
    for (std::uint32_t idx = 0; idx < n; ++idx) {
        Cycle fetched = 0, issued = 0, committed = 0;
        for (const PipeEvent &e : rec.events) {
            if (e.traceIdx != idx)
                continue;
            if (e.kind == PipeEventKind::Fetched)
                fetched = e.cycle;
            else if (e.kind == PipeEventKind::Issued)
                issued = e.cycle;
            else if (e.kind == PipeEventKind::Committed)
                committed = e.cycle;
        }
        EXPECT_LT(fetched, issued) << "trace idx " << idx;
        EXPECT_LT(issued, committed) << "trace idx " << idx;
    }
}

TEST(Observer, WdLastCheckFetchBarrierSequence)
{
    Built bt;
    buildFig3(bt);
    obs::RecordingObserver rec;
    runWith(bt, gpu::Scheme::WarpDisableLastCheck, &rec);
    const auto &ev = rec.events;

    // The first load (#4) is a fetch barrier: disable at its fetch,
    // last TLB check while fetch is down, re-enable in the same cycle
    // as the check (wd-lastcheck's defining property).
    auto is_kind_at = [&](PipeEventKind k, std::uint32_t idx) {
        return [k, idx](const PipeEvent &e) {
            return e.kind == k && e.traceIdx == idx;
        };
    };
    auto dis = std::find_if(ev.begin(), ev.end(),
                            is_kind_at(PipeEventKind::FetchDisabled, 4));
    ASSERT_NE(dis, ev.end());
    auto chk = std::find_if(dis, ev.end(),
                            is_kind_at(PipeEventKind::TlbChecked, 4));
    ASSERT_NE(chk, ev.end());
    auto ren = std::find_if(dis, ev.end(), [](const PipeEvent &e) {
        return e.kind == PipeEventKind::FetchReenabled;
    });
    ASSERT_NE(ren, ev.end());
    EXPECT_LE(chk - ev.begin(), ren - ev.begin());
    EXPECT_EQ(chk->cycle, ren->cycle);

    // While the barrier is down, nothing younger than the load is
    // fetched: the only Fetched event between disable and re-enable is
    // the load itself.
    for (auto it = dis; it != ren; ++it) {
        if (it->kind == PipeEventKind::Fetched) {
            EXPECT_EQ(it->traceIdx, 4u);
        }
    }
    // After re-enable, fetch restarts no earlier than the penalty
    // allows and the younger instructions flow again.
    auto next_fetch = std::find_if(ren, ev.end(), [](const PipeEvent &e) {
        return e.kind == PipeEventKind::Fetched;
    });
    ASSERT_NE(next_fetch, ev.end());
    EXPECT_EQ(next_fetch->traceIdx, 5u);
    EXPECT_GT(next_fetch->cycle, ren->cycle);
}

TEST(Observer, OperandLogAllocateReleasePairs)
{
    Built bt;
    buildFig3(bt);
    obs::RecordingObserver rec;
    runWith(bt, gpu::Scheme::OperandLog, &rec);
    const auto &ev = rec.events;

    // One allocation per global-memory instruction, each matched by a
    // release of the same partition space.
    ASSERT_EQ(countKind(ev, PipeEventKind::LogAllocated),
              bt.trace.memInsts);
    ASSERT_EQ(countKind(ev, PipeEventKind::LogReleased),
              bt.trace.memInsts);

    for (const std::uint32_t idx : {4u, 6u}) {
        Cycle issued = 0, alloc = 0, released = 0, committed = 0;
        std::uint64_t alloc_bytes = 0, release_bytes = 0;
        for (const PipeEvent &e : ev) {
            if (e.traceIdx != idx)
                continue;
            switch (e.kind) {
            case PipeEventKind::Issued: issued = e.cycle; break;
            case PipeEventKind::LogAllocated:
                alloc = e.cycle;
                alloc_bytes = e.arg;
                break;
            case PipeEventKind::LogReleased:
                released = e.cycle;
                release_bytes = e.arg;
                break;
            case PipeEventKind::Committed: committed = e.cycle; break;
            default: break;
            }
        }
        // Space is reserved in the issue cycle (admission gate) and
        // freed at the last TLB check, before commit.
        EXPECT_EQ(alloc, issued) << "trace idx " << idx;
        EXPECT_GT(released, alloc) << "trace idx " << idx;
        EXPECT_LE(released, committed) << "trace idx " << idx;
        // A 32-lane load logs one 256 B address entry (section 3.3).
        EXPECT_EQ(alloc_bytes, sm::OperandLog::entryBytes(false));
        EXPECT_EQ(release_bytes, alloc_bytes);
    }
}

TEST(Observer, ReplayQueueFaultSquashReplaySequence)
{
    Built bt;
    buildFig3(bt);
    obs::RecordingObserver rec;
    runWith(bt, gpu::Scheme::ReplayQueue, &rec, /*demand_paging=*/true);
    const auto &ev = rec.events;

    // The inputs start on the CPU, so the loads page-fault. The fault
    // reaction is fault -> squash -> queue for replay, atomically at
    // one cycle, then the instruction is re-fetched, re-issued, and
    // commits exactly once.
    auto flt = std::find_if(ev.begin(), ev.end(), [](const PipeEvent &e) {
        return e.kind == PipeEventKind::Faulted;
    });
    ASSERT_NE(flt, ev.end());
    const std::uint32_t idx = flt->traceIdx;

    auto sq = std::next(flt);
    ASSERT_NE(sq, ev.end());
    // The squash may release held state first; find it, same cycle.
    while (sq != ev.end() && sq->kind != PipeEventKind::Squashed)
        ++sq;
    ASSERT_NE(sq, ev.end());
    EXPECT_EQ(sq->traceIdx, idx);
    EXPECT_EQ(sq->cycle, flt->cycle);
    auto rep = std::find_if(sq, ev.end(), [](const PipeEvent &e) {
        return e.kind == PipeEventKind::Replayed;
    });
    ASSERT_NE(rep, ev.end());
    EXPECT_EQ(rep->traceIdx, idx);
    EXPECT_EQ(rep->cycle, flt->cycle);

    // Replayed fetches carry arg=1 (from the replay queue).
    auto refetch = std::find_if(rep, ev.end(), [idx](const PipeEvent &e) {
        return e.kind == PipeEventKind::Fetched && e.traceIdx == idx;
    });
    ASSERT_NE(refetch, ev.end());
    EXPECT_EQ(refetch->arg, 1u);

    std::size_t issues = 0, commits = 0;
    for (const PipeEvent &e : ev) {
        if (e.traceIdx != idx)
            continue;
        if (e.kind == PipeEventKind::Issued)
            ++issues;
        if (e.kind == PipeEventKind::Committed)
            ++commits;
    }
    EXPECT_GE(issues, 2u); // original + at least one replay
    EXPECT_EQ(commits, 1u);
}

TEST(Observer, ChromeTraceJsonIsWellFormed)
{
    Built bt;
    buildFig3(bt);
    obs::ChromeTraceWriter writer;
    writer.setProgram(&bt.kernel.program);
    runWith(bt, gpu::Scheme::ReplayQueue, &writer, /*demand_paging=*/true);
    ASSERT_GT(writer.eventCount(), 0u);

    std::ostringstream os;
    writer.write(os);
    std::string err;
    auto root = json::parse(os.str(), &err);
    ASSERT_NE(root, nullptr) << err;
    ASSERT_TRUE(root->isObject());
    const json::Value *events = root->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->items.empty());

    bool saw_slice = false, saw_fault = false, saw_meta = false;
    for (const json::Value &e : events->items) {
        ASSERT_TRUE(e.isObject());
        const json::Value *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        EXPECT_NE(e.find("pid"), nullptr);
        if (ph->asString() == "M")
            saw_meta = true;
        if (ph->asString() == "X") {
            saw_slice = true;
            EXPECT_NE(e.find("dur"), nullptr);
            EXPECT_NE(e.find("ts"), nullptr);
        }
        if (ph->asString() == "i" && e.find("name") &&
            e.find("name")->asString() == "faulted")
            saw_fault = true;
    }
    EXPECT_TRUE(saw_meta);
    EXPECT_TRUE(saw_slice);
    EXPECT_TRUE(saw_fault); // demand paging: the loads page-fault
}

TEST(Observer, PipelineViewRingKeepsMostRecent)
{
    obs::PipelineView view(4);
    for (std::uint32_t i = 0; i < 10; ++i) {
        PipeEvent e;
        e.cycle = i;
        e.sm = 0;
        e.warp = 0;
        e.kind = PipeEventKind::Fetched;
        e.traceIdx = i;
        e.staticIdx = i;
        view.event(e);
    }
    EXPECT_EQ(view.size(), 4u);
    EXPECT_EQ(view.totalEvents(), 10u);

    std::ostringstream os;
    view.render(os);
    const std::string text = os.str();
    // Oldest retained first (#6), newest last (#9), drop note present.
    EXPECT_NE(text.find("#6"), std::string::npos);
    EXPECT_NE(text.find("#9"), std::string::npos);
    EXPECT_EQ(text.find("#5"), std::string::npos);
    EXPECT_NE(text.find("6 earlier events dropped"), std::string::npos);
    EXPECT_LT(text.find("#6"), text.find("#9"));

    view.clear();
    EXPECT_EQ(view.size(), 0u);
    EXPECT_EQ(view.totalEvents(), 0u);
}

TEST(Observer, PipelineViewWarpFilter)
{
    obs::PipelineView view(16);
    view.filterWarp(2);
    PipeEvent e;
    e.kind = PipeEventKind::Issued;
    e.warp = 1;
    view.event(e);
    e.warp = 2;
    view.event(e);
    EXPECT_EQ(view.totalEvents(), 1u);
}

TEST(Observer, EventNamesAreKebabCaseAndDistinct)
{
    std::vector<std::string> names;
    for (int k = 0; k < obs::kNumPipeEventKinds; ++k) {
        const char *n =
            obs::pipeEventName(static_cast<PipeEventKind>(k));
        ASSERT_NE(n, nullptr);
        for (const char *c = n; *c; ++c)
            EXPECT_TRUE((*c >= 'a' && *c <= 'z') || *c == '-')
                << "event name '" << n << "'";
        names.emplace_back(n);
    }
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()),
              names.end());
}

} // namespace
} // namespace gex
