/**
 * @file
 * Unit tests: the LSU memory-instruction timeline against a mock
 * memory system — translation serialization, the last-TLB-check event,
 * fault aggregation, and baseline stall-and-retry semantics.
 */

#include <gtest/gtest.h>

#include <set>

#include "sm/lsu.hpp"

namespace gex::sm {
namespace {

/** Scripted MemorySystem: fixed L2 latency, per-page fault script. */
class MockSys : public MemorySystem
{
  public:
    Cycle
    l2Load(Addr, Cycle earliest) override
    {
        ++l2Loads;
        return earliest + 100;
    }
    Cycle
    l2Store(Addr, Cycle earliest) override
    {
        ++l2Stores;
        return earliest + 100;
    }
    Cycle
    l2Atomic(Addr, Cycle earliest) override
    {
        ++l2Atomics;
        return earliest + 120;
    }
    vm::Translation
    translatePage(Addr page, Cycle earliest) override
    {
        ++walks;
        vm::Translation t;
        if (faultPages.count(page)) {
            t.fault = true;
            t.detect = earliest + 570;
            t.resolve = faultResolve;
            t.kind = vm::FaultKind::Migration;
            t.queueDepth = queueDepth;
        } else {
            t.ready = earliest + 70;
        }
        return t;
    }
    Cycle
    bulkDramTraffic(Cycle earliest, std::uint64_t) override
    {
        return earliest;
    }
    int pendingFaults(Cycle) override { return 0; }

    std::set<Addr> faultPages;
    Cycle faultResolve = 50000;
    int queueDepth = 3;
    int l2Loads = 0, l2Stores = 0, l2Atomics = 0, walks = 0;
};

class LsuTest : public ::testing::Test
{
  protected:
    LsuTest() : lsu_(gpu::SmConfig{}, sys_) {}

    /** Build a load/store TraceInst over the given lines. */
    trace::TraceInst
    inst(const std::vector<Addr> &lines)
    {
        pool_ = lines;
        trace::TraceInst ti{};
        ti.active = kFullMask;
        ti.numActive = 32;
        ti.numLines = static_cast<std::uint16_t>(lines.size());
        ti.lineOff = 0;
        return ti;
    }

    isa::Instruction
    loadInst()
    {
        isa::Instruction si;
        si.op = isa::Opcode::LD_GLOBAL;
        si.dst = 3;
        si.srcs[0] = 2;
        return si;
    }

    MockSys sys_;
    Lsu lsu_;
    std::vector<Addr> pool_;
    gpu::SmConfig cfg_;
};

TEST_F(LsuTest, SingleLineLoadTimeline)
{
    auto ti = inst({0x1000});
    auto si = loadInst();
    MemTimeline tl = lsu_.processGlobal(si, ti, pool_.data(), 100, false,
                                        20);
    EXPECT_FALSE(tl.faulted);
    // Last check: op-read + frontend + translation-port + L1-TLB miss
    // -> mock walk (+70).
    EXPECT_GT(tl.lastTlbCheck, 100u + cfg_.memFrontendCycles);
    EXPECT_GT(tl.execDone, tl.lastTlbCheck); // data comes after
    EXPECT_EQ(sys_.walks, 1);
}

TEST_F(LsuTest, TranslationsSerializeOnThePort)
{
    // 8 lines in 8 distinct pages: one translation per cycle.
    std::vector<Addr> lines;
    for (int i = 0; i < 8; ++i)
        lines.push_back(0x100000 + static_cast<Addr>(i) * kPageSize);
    auto ti = inst(lines);
    auto si = loadInst();
    MemTimeline tl = lsu_.processGlobal(si, ti, pool_.data(), 100, false,
                                        20);
    auto one = inst({0x100000});
    Lsu fresh(gpu::SmConfig{}, sys_);
    MemTimeline tl1 = fresh.processGlobal(si, one, pool_.data(), 100,
                                          false, 20);
    EXPECT_GE(tl.lastTlbCheck, tl1.lastTlbCheck + 7);
}

TEST_F(LsuTest, SameLineTlbReuse)
{
    // Two instructions touching the same page: second hits the L1 TLB.
    auto ti = inst({0x2000});
    auto si = loadInst();
    lsu_.processGlobal(si, ti, pool_.data(), 100, false, 20);
    int walks_before = sys_.walks;
    auto ti2 = inst({0x2000});
    MemTimeline tl2 = lsu_.processGlobal(si, ti2, pool_.data(), 5000,
                                         false, 20);
    EXPECT_EQ(sys_.walks, walks_before); // TLB hit, no walk
    EXPECT_LT(tl2.lastTlbCheck, 5000u + cfg_.memFrontendCycles + 8);
}

TEST_F(LsuTest, PredicatedOffInstructionFlowsThrough)
{
    trace::TraceInst ti{};
    ti.numLines = 0;
    ti.numActive = 0;
    auto si = loadInst();
    MemTimeline tl = lsu_.processGlobal(si, ti, nullptr, 100, false, 20);
    EXPECT_FALSE(tl.faulted);
    EXPECT_EQ(tl.execDone, 100u + cfg_.memFrontendCycles + 1);
    EXPECT_EQ(sys_.walks, 0);
}

TEST_F(LsuTest, StoreUsesL1AckAndForwardsToL2)
{
    auto ti = inst({0x3000});
    isa::Instruction si;
    si.op = isa::Opcode::ST_GLOBAL;
    si.srcs[0] = 2;
    si.srcs[1] = 4;
    MemTimeline tl = lsu_.processGlobal(si, ti, pool_.data(), 100, false,
                                        20);
    EXPECT_FALSE(tl.faulted);
    EXPECT_EQ(sys_.l2Stores, 1);
    EXPECT_EQ(sys_.l2Loads, 0);
    // Ack at L1 speed: far sooner than an L2 round trip would be.
    EXPECT_LT(tl.execDone, tl.lastTlbCheck + 100);
    (void)tl;
}

TEST_F(LsuTest, AtomicGoesToL2)
{
    auto ti = inst({0x4000});
    isa::Instruction si;
    si.op = isa::Opcode::ATOM_ADD;
    si.dst = 5;
    si.srcs[0] = 2;
    si.srcs[1] = 4;
    lsu_.processGlobal(si, ti, pool_.data(), 100, false, 20);
    EXPECT_EQ(sys_.l2Atomics, 1);
    EXPECT_EQ(sys_.l2Loads, 0);
}

TEST_F(LsuTest, FaultAggregation)
{
    sys_.faultPages.insert(pageOf(0x10000));
    sys_.faultPages.insert(pageOf(0x20000));
    sys_.faultResolve = 99999;
    auto ti = inst({0x10000, 0x18000, 0x20000}); // fault, ok, fault
    auto si = loadInst();
    MemTimeline tl = lsu_.processGlobal(si, ti, pool_.data(), 100, false,
                                        20);
    EXPECT_TRUE(tl.faulted);
    EXPECT_EQ(tl.resolveAll, 99999u);
    EXPECT_EQ(tl.kind, vm::FaultKind::Migration);
    EXPECT_EQ(tl.queueDepth, 3);
    EXPECT_LT(tl.faultDetect, 99999u);
}

TEST_F(LsuTest, BaselineStallFoldsResolutionIntoCompletion)
{
    sys_.faultPages.insert(pageOf(0x10000));
    sys_.faultResolve = 30000;
    auto ti = inst({0x10000});
    auto si = loadInst();
    MemTimeline tl = lsu_.processGlobal(si, ti, pool_.data(), 100,
                                        /*stall_on_fault=*/true, 20);
    EXPECT_FALSE(tl.faulted); // baseline never reports a squash
    // Completion after resolve + retry + access.
    EXPECT_GT(tl.execDone, 30000u + 20u);
}

TEST_F(LsuTest, OneInstructionPerCycleSlot)
{
    EXPECT_EQ(lsu_.reserveIssueSlot(10), 10u);
    EXPECT_EQ(lsu_.reserveIssueSlot(10), 11u);
    EXPECT_EQ(lsu_.reserveIssueSlot(10), 12u);
}

TEST_F(LsuTest, StatsAccumulate)
{
    auto ti = inst({0x5000, 0x5080});
    auto si = loadInst();
    lsu_.processGlobal(si, ti, pool_.data(), 100, false, 20);
    StatSet s;
    lsu_.collectStats(s);
    EXPECT_DOUBLE_EQ(s.get("lsu.insts"), 1.0);
    EXPECT_DOUBLE_EQ(s.get("lsu.requests"), 2.0);
}

} // namespace
} // namespace gex::sm
