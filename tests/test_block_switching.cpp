/**
 * @file
 * Integration tests: UC1 block switching on fault (paper section 4.1)
 * — switch decisions, context save/restore correctness, extra-block
 * budget, and ideal-vs-normal context switch costs.
 */

#include <gtest/gtest.h>

#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "gpu/local_scheduler.hpp"
#include "kasm/builder.hpp"

namespace gex {
namespace {

using kasm::KernelBuilder;
using kasm::SpecialReg;

constexpr Addr kIn = 1 << 20;
constexpr Addr kOut = 16 << 20;

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

/**
 * An oversubscribed kernel whose blocks fault on distinct input
 * regions and then compute: switching a faulted block out lets a
 * pending block run. One block per SM resident (high register count),
 * 4x oversubscription.
 */
void
buildSwitchy(Built &bt, std::uint32_t blocks = 64)
{
    std::uint64_t n = static_cast<std::uint64_t>(blocks) * 256;
    for (std::uint64_t i = 0; i < n; ++i)
        bt.mem.write64(kIn + i * 8, i & 1023);
    KernelBuilder b("switchy");
    b.setNumParams(2);
    b.setMinRegs(120); // 1 block of 256 threads per SM
    b.s2r(0, SpecialReg::GlobalTid);
    b.ldparam(1, 0);
    b.ldparam(2, 1);
    b.shli(3, 0, 3);
    b.iadd(1, 1, 3);
    b.ldGlobal(4, 1); // faults under demand paging
    // Compute phase (what a replacement block can overlap with).
    for (int i = 0; i < 24; ++i)
        b.ffma(4, 4, 4, 4);
    b.iadd(2, 2, 3);
    b.stGlobal(2, 0, 4);
    b.exit();
    bt.kernel.program = b.build();
    bt.kernel.grid = {blocks, 1, 1};
    bt.kernel.block = {256, 1, 1};
    bt.kernel.params = {kIn, kOut};
    bt.kernel.buffers.push_back(
        {"in", kIn, n * 8, func::BufferKind::Input});
    bt.kernel.buffers.push_back(
        {"out", kOut, n * 8, func::BufferKind::Output});
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);
}

gpu::SimResult
runUc1(const Built &bt, bool switching, bool ideal = false,
       int max_extra = 4, int threshold = 1)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue;
    cfg.blockSwitching = switching;
    cfg.idealContextSwitch = ideal;
    cfg.maxExtraBlocks = max_extra;
    cfg.switchQueueThreshold = threshold;
    gpu::Gpu g(cfg);
    return g.run(bt.kernel, bt.trace, vm::VmPolicy::demandPaging());
}

TEST(BlockSwitching, SwitchesHappenUnderDemandPaging)
{
    Built bt;
    buildSwitchy(bt);
    auto r = runUc1(bt, true);
    EXPECT_GT(r.stats.get("sm.switch_outs"), 0.0);
    EXPECT_EQ(r.instructions, bt.trace.dynamicInsts());
}

TEST(BlockSwitching, NoSwitchesWhenDisabled)
{
    Built bt;
    buildSwitchy(bt);
    auto r = runUc1(bt, false);
    EXPECT_EQ(r.stats.get("sm.switch_outs"), 0.0);
}

TEST(BlockSwitching, SwitchedBlocksEventuallyRestoreAndFinish)
{
    Built bt;
    buildSwitchy(bt);
    auto r = runUc1(bt, true);
    EXPECT_EQ(r.stats.get("sm.blocks_completed"),
              static_cast<double>(bt.kernel.numBlocks()));
    // Every switched-out block was either restored or it finished in
    // another slot later; switch-ins track restores.
    EXPECT_GT(r.stats.get("sm.switch_ins"), 0.0);
}

TEST(BlockSwitching, InstructionCountUnchangedBySwitching)
{
    Built bt;
    buildSwitchy(bt);
    auto off = runUc1(bt, false);
    auto on = runUc1(bt, true);
    EXPECT_EQ(off.instructions, on.instructions);
}

TEST(BlockSwitching, IdealSwitchingNoSlowerThanNormal)
{
    Built bt;
    buildSwitchy(bt);
    auto normal = runUc1(bt, true, false);
    auto ideal = runUc1(bt, true, true);
    // Ideal 1-cycle save/restore can only help (same decisions).
    EXPECT_LE(ideal.cycles, normal.cycles + normal.cycles / 10);
}

TEST(BlockSwitching, ContextTrafficAccounted)
{
    Built bt;
    buildSwitchy(bt);
    auto normal = runUc1(bt, true, false);
    auto ideal = runUc1(bt, true, true);
    EXPECT_GT(normal.stats.get("sm.context_bytes_moved"), 0.0);
    EXPECT_EQ(ideal.stats.get("sm.context_bytes_moved"), 0.0);
}

TEST(BlockSwitching, ExtraBlockBudgetRespected)
{
    Built bt;
    buildSwitchy(bt);
    auto r = runUc1(bt, true, false, 2);
    // new blocks brought while others are off-chip, per SM, cannot
    // exceed the budget in aggregate beyond slots: with 16 SMs and
    // budget 2, at most 32 "extra" pulls beyond natural refills.
    EXPECT_LE(r.stats.get("sm.new_blocks_via_switch"), 32.0 * 4.0);
    EXPECT_EQ(r.stats.get("sm.blocks_completed"),
              static_cast<double>(bt.kernel.numBlocks()));
}

TEST(BlockSwitching, HighThresholdSuppressesSwitching)
{
    Built bt;
    buildSwitchy(bt);
    auto eager = runUc1(bt, true, false, 4, 1);
    auto picky = runUc1(bt, true, false, 4, 1000000);
    EXPECT_GT(eager.stats.get("sm.switch_outs"),
              picky.stats.get("sm.switch_outs"));
    EXPECT_EQ(picky.stats.get("sm.switch_outs"), 0.0);
}

TEST(LocalSchedulerPolicy, DecisionTable)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.blockSwitching = true;
    cfg.switchQueueThreshold = 2;
    cfg.maxExtraBlocks = 4;
    // Below threshold: no.
    EXPECT_FALSE(gpu::shouldSwitchOnFault(cfg, 1, 1, 1, true, 0));
    // At threshold with pending work and budget: yes.
    EXPECT_TRUE(gpu::shouldSwitchOnFault(cfg, 2, 1, 1, true, 0));
    // Budget exhausted and nothing off-chip: no.
    EXPECT_FALSE(gpu::shouldSwitchOnFault(cfg, 5, 5, 1, true, 0));
    // Budget exhausted but a resolved off-chip block exists: yes.
    EXPECT_TRUE(gpu::shouldSwitchOnFault(cfg, 5, 5, 1, true, 3));
    // Nothing to run at all: no.
    EXPECT_FALSE(gpu::shouldSwitchOnFault(cfg, 5, 1, 1, false, 0));
    // Switching disabled: never.
    cfg.blockSwitching = false;
    EXPECT_FALSE(gpu::shouldSwitchOnFault(cfg, 9, 1, 1, true, 1));
}

} // namespace
} // namespace gex
