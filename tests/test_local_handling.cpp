/**
 * @file
 * Integration tests: UC2 GPU-local fault handling (paper section 4.2)
 * — routing, throughput-vs-latency behaviour, and the device-malloc
 * fault path end to end.
 */

#include <gtest/gtest.h>

#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "kasm/builder.hpp"

namespace gex {
namespace {

using kasm::KernelBuilder;
using kasm::SpecialReg;

constexpr Addr kHeap = 64 << 20;
constexpr Addr kOut = 16 << 20;

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

/** Device-malloc kernel: every thread allocates and writes a chunk. */
void
buildMalloc(Built &bt, std::uint32_t blocks = 32)
{
    std::uint64_t threads = static_cast<std::uint64_t>(blocks) * 128;
    std::uint64_t heap_bytes =
        (threads * 256 / kDefaultMigrationBytes + 2) *
        kDefaultMigrationBytes;
    bt.mem.setHeap(kHeap, heap_bytes);
    KernelBuilder b("malloc");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::GlobalTid);
    b.movi(2, 192);
    b.alloc(3, 2);
    b.stGlobal(3, 0, 0);
    b.stGlobal(3, 64, 0);
    b.shli(4, 0, 3);
    b.iadd(4, 4, 1);
    b.stGlobal(4, 0, 3);
    b.exit();
    bt.kernel.program = b.build();
    bt.kernel.grid = {blocks, 1, 1};
    bt.kernel.block = {128, 1, 1};
    bt.kernel.params = {kOut};
    bt.kernel.buffers.push_back(
        {"out", kOut, threads * 8, func::BufferKind::Output});
    bt.kernel.buffers.push_back(
        {"heap", kHeap, heap_bytes, func::BufferKind::Heap});
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);
}

gpu::SimResult
runUc2(const Built &bt, bool local,
       vm::HostLinkConfig link = vm::HostLinkConfig::nvlink(),
       Cycle handler_cycles = 20000)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue;
    cfg.hostLink = link;
    cfg.gpuHandler.handlerCycles = handler_cycles;
    gpu::Gpu g(cfg);
    return g.run(bt.kernel, bt.trace, vm::VmPolicy::heapFaults(local));
}

TEST(LocalHandling, HeapFaultsRouteToGpuHandler)
{
    Built bt;
    buildMalloc(bt);
    auto r = runUc2(bt, true);
    EXPECT_GT(r.stats.get("mmu.gpu_alloc_faults"), 0.0);
    EXPECT_EQ(r.stats.get("mmu.cpu_alloc_faults"), 0.0);
    EXPECT_EQ(r.stats.get("hostlink.faults"), 0.0);
    EXPECT_EQ(r.stats.get("gpuhandler.faults"),
              r.stats.get("mmu.gpu_alloc_faults"));
}

TEST(LocalHandling, CpuBaselineUsesHostLink)
{
    Built bt;
    buildMalloc(bt);
    auto r = runUc2(bt, false);
    EXPECT_GT(r.stats.get("mmu.cpu_alloc_faults"), 0.0);
    EXPECT_EQ(r.stats.get("mmu.gpu_alloc_faults"), 0.0);
    EXPECT_EQ(r.stats.get("hostlink.faults"),
              r.stats.get("mmu.cpu_alloc_faults"));
    // Allocation-only faults move no page data.
    EXPECT_EQ(r.stats.get("hostlink.bytes_migrated"), 0.0);
}

TEST(LocalHandling, SameFaultCountBothWays)
{
    Built bt;
    buildMalloc(bt);
    auto cpu = runUc2(bt, false);
    auto gpu = runUc2(bt, true);
    EXPECT_EQ(cpu.stats.get("mmu.faults"), gpu.stats.get("mmu.faults"));
    EXPECT_EQ(cpu.instructions, gpu.instructions);
}

TEST(LocalHandling, ThroughputWinUnderConcurrentFaults)
{
    // Paper section 5.4: despite the 10x handler latency, handling on
    // the GPU wins when many faults are outstanding.
    Built bt;
    buildMalloc(bt, 48);
    auto cpu = runUc2(bt, false);
    auto gpu = runUc2(bt, true);
    EXPECT_LT(gpu.cycles, cpu.cycles);
}

TEST(LocalHandling, LatencyLossWithSingleFault)
{
    // With exactly one fault there is no contention to relieve: the
    // 20 us handler must lose to the ~10 us CPU path.
    Built bt;
    std::uint64_t heap_bytes = 2 * kDefaultMigrationBytes;
    bt.mem.setHeap(kHeap, heap_bytes);
    KernelBuilder b("single");
    b.movi(2, 64);
    b.alloc(3, 2);
    b.stGlobal(3, 0, 3);
    b.exit();
    bt.kernel.program = b.build();
    bt.kernel.grid = {1, 1, 1};
    bt.kernel.block = {32, 1, 1};
    bt.kernel.buffers.push_back(
        {"heap", kHeap, heap_bytes, func::BufferKind::Heap});
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);

    auto cpu = runUc2(bt, false);
    auto gpu = runUc2(bt, true);
    EXPECT_GT(gpu.cycles, cpu.cycles);
}

TEST(LocalHandling, FasterGpuHandlerHelpsMore)
{
    Built bt;
    buildMalloc(bt, 48);
    auto slow = runUc2(bt, true, vm::HostLinkConfig::nvlink(), 20000);
    auto fast = runUc2(bt, true, vm::HostLinkConfig::nvlink(), 5000);
    EXPECT_LT(fast.cycles, slow.cycles);
}

TEST(LocalHandling, PcieBaselineWorseSoLocalWinsMore)
{
    Built bt;
    buildMalloc(bt, 48);
    double nv = static_cast<double>(
                    runUc2(bt, false, vm::HostLinkConfig::nvlink()).cycles) /
                static_cast<double>(
                    runUc2(bt, true, vm::HostLinkConfig::nvlink()).cycles);
    double pc = static_cast<double>(
                    runUc2(bt, false, vm::HostLinkConfig::pcie()).cycles) /
                static_cast<double>(
                    runUc2(bt, true, vm::HostLinkConfig::pcie()).cycles);
    EXPECT_GT(pc, nv); // paper: PCIe speedups exceed NVLink's
}

TEST(LocalHandling, SystemModeCyclesTracked)
{
    Built bt;
    buildMalloc(bt);
    auto r = runUc2(bt, true);
    // Every GPU-handled fault occupies its warp in system mode for
    // the handler latency.
    EXPECT_GE(r.stats.get("sm.system_mode_cycles"),
              r.stats.get("mmu.gpu_alloc_faults") * 20000.0);
}

} // namespace
} // namespace gex
