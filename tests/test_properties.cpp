/**
 * @file
 * Property tests: randomized structured kernels swept through the
 * functional simulator and every exception scheme. Invariants:
 *
 *  1. the timing simulator commits exactly the traced instructions,
 *     once each, under every scheme, with and without faults;
 *  2. simulation is deterministic (same inputs -> same cycles);
 *  3. an unbounded operand log reproduces baseline cycles exactly
 *     (the paper's section 3.3 design goal);
 *  4. functional results do not depend on the timing scheme (traces
 *     are generated once and replayed).
 */

#include <gtest/gtest.h>

#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "kasm/builder.hpp"

namespace gex {
namespace {

using kasm::Cmp;
using kasm::KernelBuilder;
using kasm::Reg;
using kasm::SpecialReg;

constexpr Addr kIn = 1 << 20;
constexpr Addr kOut = 8 << 20;
constexpr std::uint64_t kElems = 1 << 15;

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

/**
 * Generate a random but well-formed kernel: a mix of ALU/FP ops over
 * a small register window, coalesced and strided loads/stores, an
 * optional divergent if-region, an optional uniform loop, optional
 * shared-memory traffic with a barrier, and optional atomics.
 */
void
buildRandom(Built &bt, std::uint64_t seed)
{
    Rng rng(seed);
    for (std::uint64_t i = 0; i < kElems; ++i)
        bt.mem.write64(kIn + i * 8, rng.next() & 0xffff);

    KernelBuilder b("rand" + std::to_string(seed));
    b.setNumParams(2);
    bool use_shared = rng.below(2) == 0;
    if (use_shared)
        b.setSharedBytes(2048);

    // r0 gtid, r1 in, r2 out, r3 byte offset, r4..r11 data regs.
    b.s2r(0, SpecialReg::GlobalTid);
    b.ldparam(1, 0);
    b.ldparam(2, 1);
    b.andi(3, 0, static_cast<std::int64_t>(kElems - 1));
    b.shli(3, 3, 3);
    for (Reg r = 4; r <= 11; ++r)
        b.movi(r, static_cast<std::int64_t>(rng.below(100)));

    auto data_reg = [&]() -> Reg {
        return static_cast<Reg>(4 + rng.below(8));
    };

    int ops = 20 + static_cast<int>(rng.below(40));
    for (int i = 0; i < ops; ++i) {
        switch (rng.below(10)) {
          case 0: { // coalesced load
            b.iadd(12, 1, 3);
            b.ldGlobal(data_reg(), 12,
                       static_cast<std::int64_t>(rng.below(8)) * 8);
            break;
          }
          case 1: { // strided load (poor coalescing)
            b.shli(12, 0, 3 + static_cast<std::int64_t>(rng.below(4)));
            b.andi(12, 12, static_cast<std::int64_t>(kElems * 8 - 8));
            b.iadd(12, 12, 1);
            b.ldGlobal(data_reg(), 12);
            break;
          }
          case 2: { // store
            b.iadd(12, 2, 3);
            b.stGlobal(12, static_cast<std::int64_t>(rng.below(8)) * 8,
                       data_reg());
            break;
          }
          case 3: // atomic
            b.iadd(12, 2, 3);
            b.atomAdd(isa::kRegZero, 12, data_reg());
            break;
          case 4:
            b.ffma(data_reg(), data_reg(), data_reg(), data_reg());
            break;
          case 5:
            b.fsin(data_reg(), data_reg());
            break;
          case 6: { // shared round trip
            if (use_shared) {
                b.andi(12, 0, 255);
                b.shli(12, 12, 3);
                b.stShared(12, 0, data_reg());
                b.ldShared(data_reg(), 12);
            } else {
                b.imul(data_reg(), data_reg(), data_reg());
            }
            break;
          }
          case 7: { // divergent if-region
            Reg v = data_reg();
            b.andi(12, 0, 3);
            b.setpi(1, Cmp::EQ, 12,
                    static_cast<std::int64_t>(rng.below(4)));
            auto merge = b.label();
            b.ssy(merge);
            b.guard(1, true);
            b.bra(merge);
            b.clearGuard();
            b.iaddi(v, v, 7);
            b.imuli(v, v, 3);
            b.bind(merge);
            b.join();
            break;
          }
          case 8: { // short uniform loop
            Reg v = data_reg();
            b.movi(13, 0);
            auto loop = b.label();
            b.bind(loop);
            b.iaddi(v, v, 1);
            b.iaddi(13, 13, 1);
            b.setpi(2, Cmp::LT, 13,
                    2 + static_cast<std::int64_t>(rng.below(4)));
            b.guard(2);
            b.bra(loop);
            b.clearGuard();
            break;
          }
          default:
            b.iadd(data_reg(), data_reg(), data_reg());
            break;
        }
    }
    if (use_shared)
        b.bar();
    b.iadd(12, 2, 3);
    b.stGlobal(12, 0, 4);
    b.exit();

    bt.kernel.program = b.build();
    bt.kernel.grid = {8 + static_cast<std::uint32_t>(rng.below(24)), 1, 1};
    bt.kernel.block = {32u * (1 + static_cast<std::uint32_t>(rng.below(4))),
                       1, 1};
    bt.kernel.params = {kIn, kOut};
    bt.kernel.buffers.push_back(
        {"in", kIn, kElems * 8, func::BufferKind::Input});
    bt.kernel.buffers.push_back(
        {"out", kOut, kElems * 8, func::BufferKind::Output});
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);
}

gpu::SimResult
timed(const Built &bt, gpu::Scheme s, const vm::VmPolicy &policy,
      std::uint32_t log_bytes = 16 * 1024)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = s;
    cfg.operandLogBytes = log_bytes;
    gpu::Gpu g(cfg);
    return g.run(bt.kernel, bt.trace, policy);
}

class RandomKernel : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomKernel, AllSchemesCommitExactlyTheTrace)
{
    Built bt;
    buildRandom(bt, GetParam());
    for (auto s : {gpu::Scheme::StallOnFault, gpu::Scheme::WarpDisableCommit,
                   gpu::Scheme::WarpDisableLastCheck,
                   gpu::Scheme::ReplayQueue, gpu::Scheme::OperandLog}) {
        auto r = timed(bt, s, vm::VmPolicy::allResident());
        EXPECT_EQ(r.instructions, bt.trace.dynamicInsts())
            << "scheme " << gpu::schemeName(s) << " seed " << GetParam();
    }
}

TEST_P(RandomKernel, AllSchemesSurviveDemandPaging)
{
    Built bt;
    buildRandom(bt, GetParam());
    for (auto s : {gpu::Scheme::StallOnFault, gpu::Scheme::ReplayQueue,
                   gpu::Scheme::WarpDisableLastCheck,
                   gpu::Scheme::OperandLog}) {
        auto r = timed(bt, s, vm::VmPolicy::demandPaging());
        EXPECT_EQ(r.instructions, bt.trace.dynamicInsts())
            << "scheme " << gpu::schemeName(s) << " seed " << GetParam();
        EXPECT_GT(r.stats.get("mmu.faults"), 0.0);
    }
}

TEST_P(RandomKernel, DeterministicCycles)
{
    Built bt;
    buildRandom(bt, GetParam());
    auto r1 = timed(bt, gpu::Scheme::ReplayQueue, vm::VmPolicy::demandPaging());
    auto r2 = timed(bt, gpu::Scheme::ReplayQueue, vm::VmPolicy::demandPaging());
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.instructions, r2.instructions);
}

TEST_P(RandomKernel, UnboundedOperandLogReproducesBaseline)
{
    Built bt;
    buildRandom(bt, GetParam());
    auto base = timed(bt, gpu::Scheme::StallOnFault,
                      vm::VmPolicy::allResident());
    auto ol = timed(bt, gpu::Scheme::OperandLog,
                    vm::VmPolicy::allResident(), 64 * 1024 * 1024);
    EXPECT_EQ(ol.cycles, base.cycles) << "seed " << GetParam();
}

TEST_P(RandomKernel, BlockSwitchingPreservesInstructionCount)
{
    Built bt;
    buildRandom(bt, GetParam());
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue;
    cfg.blockSwitching = true;
    gpu::Gpu g(cfg);
    auto r = g.run(bt.kernel, bt.trace, vm::VmPolicy::demandPaging());
    EXPECT_EQ(r.instructions, bt.trace.dynamicInsts());
}

TEST_P(RandomKernel, LocalHandlingPreservesInstructionCount)
{
    Built bt;
    buildRandom(bt, GetParam());
    auto r = timed(bt, gpu::Scheme::ReplayQueue,
                   vm::VmPolicy::outputFaults(true));
    EXPECT_EQ(r.instructions, bt.trace.dynamicInsts());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernel,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233));

} // namespace
} // namespace gex
