/**
 * @file
 * Fault-injection subsystem tests: counter-RNG purity, each fault
 * model's statistical envelope, end-to-end equivalence of injected
 * runs (every scheme still commits the exact trace), sweep-level
 * bit-determinism across worker counts, and the replay-queue
 * saturation regression.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "harness/sweep.hpp"
#include "inject/fault_model.hpp"
#include "inject/rng.hpp"
#include "kasm/builder.hpp"

namespace gex {
namespace {

using inject::CounterRng;
using inject::InjectConfig;
using inject::ModelKind;

// --- CounterRng ----------------------------------------------------------

TEST(CounterRng, PureFunctionOfSeedStreamCounter)
{
    CounterRng a(42, 7);
    CounterRng b(42, 7);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(a.at(i), b.at(i));
    // Re-querying a counter after others gives the same value: no
    // hidden sequence state.
    std::uint64_t first = a.at(3);
    (void)a.at(999);
    EXPECT_EQ(a.at(3), first);
}

TEST(CounterRng, SeedAndStreamChangeTheSequence)
{
    CounterRng base(42, 7);
    EXPECT_NE(base.at(0), CounterRng(43, 7).at(0));
    EXPECT_NE(base.at(0), CounterRng(42, 8).at(0));
    EXPECT_NE(base.at(0), base.split(1).at(0));
}

TEST(CounterRng, RealsAreUniformEnough)
{
    CounterRng r(1, 1);
    double sum = 0;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        double x = r.realAt(i);
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// --- model envelopes -----------------------------------------------------

/** Drive @p model over @p walks round-robin walks of @p regions. */
std::map<Addr, int>
drive(inject::FaultModel &model, std::uint64_t walks, Addr regions)
{
    std::map<Addr, int> faultsPerRegion;
    for (std::uint64_t i = 0; i < walks; ++i)
        if (model.decide(i % regions, i))
            ++faultsPerRegion[i % regions];
    return faultsPerRegion;
}

std::uint64_t
total(const std::map<Addr, int> &m)
{
    std::uint64_t n = 0;
    for (const auto &kv : m)
        n += static_cast<std::uint64_t>(kv.second);
    return n;
}

TEST(FaultModels, BernoulliHitsItsRate)
{
    InjectConfig cfg;
    cfg.model = ModelKind::Bernoulli;
    cfg.rate = 0.1;
    cfg.seed = 5;
    auto m = inject::makeModel(cfg);
    const std::uint64_t walks = 100000;
    double frac =
        static_cast<double>(total(drive(*m, walks, 16))) / walks;
    EXPECT_NEAR(frac, cfg.rate, 0.01);
}

TEST(FaultModels, BurstSitsBetweenCalmAndStormRates)
{
    InjectConfig cfg;
    cfg.model = ModelKind::Burst;
    cfg.rate = 0.01;
    cfg.burstRate = 0.5;
    cfg.burstEnter = 0.002;
    cfg.burstExit = 0.05;
    cfg.seed = 5;
    auto m = inject::makeModel(cfg);
    const std::uint64_t walks = 200000;
    double frac =
        static_cast<double>(total(drive(*m, walks, 16))) / walks;
    // Storm occupancy = enter/(enter+exit) ~ 3.8%, so the blended
    // rate must clearly exceed calm-only yet stay below storm-only.
    EXPECT_GT(frac, 2.0 * cfg.rate);
    EXPECT_LT(frac, cfg.burstRate / 2.0);
}

TEST(FaultModels, BurstProducesClusters)
{
    InjectConfig cfg;
    cfg.model = ModelKind::Burst;
    cfg.rate = 0.001;
    cfg.burstRate = 0.8;
    cfg.burstEnter = 0.001;
    cfg.burstExit = 0.02;
    cfg.seed = 9;
    auto m = inject::makeModel(cfg);
    // Longest run of consecutive faulting walks: storms make long
    // runs likely; a 0.1%-rate Bernoulli makes even a pair unlikely.
    int run = 0, best = 0;
    for (std::uint64_t i = 0; i < 200000; ++i) {
        if (m->decide(i % 16, i))
            best = std::max(best, ++run);
        else
            run = 0;
    }
    EXPECT_GE(best, 4);
}

TEST(FaultModels, HotPageConcentratesFaults)
{
    InjectConfig cfg;
    cfg.model = ModelKind::HotPage;
    cfg.rate = 0.01;
    cfg.hotFraction = 0.125;
    cfg.hotBoost = 16.0;
    cfg.seed = 11;
    auto m = inject::makeModel(cfg);
    const Addr regions = 64;
    auto perRegion = drive(*m, 400000, regions);
    // Sort per-region counts; the top hotFraction of regions must
    // carry the majority of all faults (16x boost on 1/8 of regions
    // means hot regions produce ~2/3 of the total).
    std::vector<int> counts;
    for (const auto &kv : perRegion)
        counts.push_back(kv.second);
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t all = total(perRegion), top = 0;
    for (std::size_t i = 0; i < counts.size() && i < regions / 8; ++i)
        top += static_cast<std::uint64_t>(counts[i]);
    ASSERT_GT(all, 0u);
    EXPECT_GT(static_cast<double>(top) / static_cast<double>(all), 0.5);
}

TEST(FaultModels, FirstTouchFaultsEachRegionAtMostOnce)
{
    InjectConfig cfg;
    cfg.model = ModelKind::FirstTouch;
    cfg.rate = 0.5;
    cfg.seed = 13;
    auto m = inject::makeModel(cfg);
    const Addr regions = 256;
    auto perRegion = drive(*m, 100000, regions);
    for (const auto &kv : perRegion)
        EXPECT_EQ(kv.second, 1) << "region " << kv.first;
    // About half the regions should have faulted (their first touch).
    double frac = static_cast<double>(perRegion.size()) /
                  static_cast<double>(regions);
    EXPECT_NEAR(frac, cfg.rate, 0.15);
}

TEST(FaultModels, SameSeedSameDecisions)
{
    for (ModelKind k : {ModelKind::Bernoulli, ModelKind::Burst,
                        ModelKind::HotPage, ModelKind::FirstTouch}) {
        InjectConfig cfg;
        cfg.model = k;
        cfg.rate = 0.05;
        cfg.seed = 21;
        auto a = inject::makeModel(cfg);
        auto b = inject::makeModel(cfg);
        for (std::uint64_t i = 0; i < 5000; ++i)
            ASSERT_EQ(a->decide(i % 8, i), b->decide(i % 8, i))
                << inject::modelName(k) << " walk " << i;
    }
}

TEST(FaultModels, NamesRoundTrip)
{
    for (ModelKind k : {ModelKind::None, ModelKind::Bernoulli,
                        ModelKind::Burst, ModelKind::HotPage,
                        ModelKind::FirstTouch})
        EXPECT_EQ(inject::modelFromName(inject::modelName(k)), k);
}

// --- end-to-end through the timing stack ---------------------------------

constexpr Addr kIn = 1 << 20;
constexpr Addr kOut = 2 << 20;

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

/** Streaming reader kernel over @p blocks x 256 threads (as in
 *  test_faults.cpp): out[i] = in[i] + 1. */
void
buildReader(Built &bt, std::uint32_t blocks)
{
    using kasm::KernelBuilder;
    using kasm::SpecialReg;
    std::uint64_t n = static_cast<std::uint64_t>(blocks) * 256;
    for (std::uint64_t i = 0; i < n; ++i)
        bt.mem.write64(kIn + i * 8, i);
    KernelBuilder b("reader");
    b.setNumParams(2);
    b.s2r(0, SpecialReg::GlobalTid);
    b.ldparam(1, 0);
    b.ldparam(2, 1);
    b.shli(3, 0, 3);
    b.iadd(1, 1, 3);
    b.ldGlobal(4, 1);
    b.iaddi(4, 4, 1);
    b.iadd(2, 2, 3);
    b.stGlobal(2, 0, 4);
    b.exit();
    bt.kernel.program = b.build();
    bt.kernel.grid = {blocks, 1, 1};
    bt.kernel.block = {256, 1, 1};
    bt.kernel.params = {kIn, kOut};
    bt.kernel.buffers.push_back(
        {"in", kIn, n * 8, func::BufferKind::Input});
    bt.kernel.buffers.push_back(
        {"out", kOut, n * 8, func::BufferKind::Output});
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);
}

gpu::SimResult
runInjected(const Built &bt, gpu::Scheme s, const InjectConfig &inj)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = s;
    gpu::Gpu g(cfg);
    vm::VmPolicy policy = vm::VmPolicy::allResident();
    policy.inject = inj;
    return g.run(bt.kernel, bt.trace, policy);
}

TEST(InjectEndToEnd, PreemptibleSchemesCommitTheExactTraceUnderInjection)
{
    Built bt;
    buildReader(bt, 16);
    InjectConfig inj;
    inj.model = ModelKind::Bernoulli;
    inj.rate = 0.05;
    inj.seed = 3;
    auto clean = runInjected(bt, gpu::Scheme::ReplayQueue, InjectConfig{});
    for (auto s : {gpu::Scheme::WarpDisableCommit,
                   gpu::Scheme::WarpDisableLastCheck,
                   gpu::Scheme::ReplayQueue, gpu::Scheme::OperandLog}) {
        auto r = runInjected(bt, s, inj);
        // Same committed work as the fault-free golden run...
        EXPECT_EQ(r.instructions, bt.trace.dynamicInsts())
            << gpu::schemeName(s);
        EXPECT_EQ(r.instructions, clean.instructions)
            << gpu::schemeName(s);
        // ...with faults actually injected, at a cycle cost.
        EXPECT_GT(r.stats.get("mmu.injected_faults"), 0.0)
            << gpu::schemeName(s);
        EXPECT_GT(r.cycles, clean.cycles) << gpu::schemeName(s);
    }
    // The trace-driven outputs are those of the functional run; an
    // injected fault must never perturb them (out[i] == in[i] + 1).
    for (std::uint64_t i = 0; i < 16 * 256; ++i)
        ASSERT_EQ(bt.mem.read64(kOut + i * 8), i + 1);
}

TEST(InjectEndToEnd, BaselineStallsInsteadOfReacting)
{
    Built bt;
    buildReader(bt, 8);
    InjectConfig inj;
    inj.model = ModelKind::Bernoulli;
    inj.rate = 0.05;
    inj.seed = 3;
    auto r = runInjected(bt, gpu::Scheme::StallOnFault, inj);
    EXPECT_EQ(r.instructions, bt.trace.dynamicInsts());
    EXPECT_GT(r.stats.get("mmu.injected_faults"), 0.0);
    EXPECT_EQ(r.stats.get("sm.faults_reacted"), 0.0);
}

TEST(InjectEndToEnd, DisabledModelIsAStatNoOp)
{
    Built bt;
    buildReader(bt, 8);
    auto plain = runInjected(bt, gpu::Scheme::ReplayQueue, InjectConfig{});
    EXPECT_EQ(plain.stats.get("mmu.injected_faults"), 0.0);
    // No resilience or injection stat may leak into a plain run's
    // StatSet: the golden digests of test_golden_stats.cpp hash every
    // name in it.
    for (const auto &kv : plain.stats.scalars()) {
        EXPECT_EQ(kv.first.rfind("resil.", 0), std::string::npos)
            << kv.first;
        EXPECT_EQ(kv.first.rfind("inject.", 0), std::string::npos)
            << kv.first;
    }
}

TEST(InjectEndToEnd, ResilienceStatsKnobKeepsTimingIdentical)
{
    Built bt;
    buildReader(bt, 8);
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::OperandLog;
    gpu::Gpu plain(cfg);
    auto a = plain.run(bt.kernel, bt.trace, vm::VmPolicy::demandPaging());
    cfg.resilienceStats = true;
    gpu::Gpu instrumented(cfg);
    auto b =
        instrumented.run(bt.kernel, bt.trace, vm::VmPolicy::demandPaging());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_TRUE(b.stats.has("resil.fault_blocked_warp_cycles"));
    EXPECT_FALSE(a.stats.has("resil.fault_blocked_warp_cycles"));
}

TEST(InjectEndToEnd, ReplayQueueSaturationIsVisibleInTheHighWaterMark)
{
    Built bt;
    buildReader(bt, 16);
    InjectConfig storm;
    storm.model = ModelKind::Burst;
    storm.rate = 0.02;
    storm.burstRate = 0.9;
    storm.burstEnter = 0.01;
    storm.burstExit = 0.02;
    storm.seed = 7;
    auto calm = runInjected(bt, gpu::Scheme::ReplayQueue, InjectConfig{});
    auto r = runInjected(bt, gpu::Scheme::ReplayQueue, storm);
    EXPECT_GT(r.stats.get("resil.replays_total"), 0.0);
    EXPECT_GE(r.stats.get("resil.replayq_hwm"), 1.0);
    EXPECT_GE(r.stats.get("resil.replays_max_per_warp"), 1.0);
    EXPECT_GT(r.stats.get("resil.fault_blocked_warp_cycles"), 0.0);
    EXPECT_GT(r.cycles, calm.cycles);
}

// --- sweep-level determinism --------------------------------------------

std::vector<harness::RunRecord>
injectedGrid(int jobs)
{
    harness::SweepEngine eng(jobs);
    for (const char *w : {"sgemm"}) {
        for (auto s : {gpu::Scheme::ReplayQueue, gpu::Scheme::OperandLog}) {
            for (std::uint64_t seed : {1ull, 2ull}) {
                harness::RunSpec rs;
                rs.workload = w;
                rs.cfg = gpu::GpuConfig::baseline();
                rs.cfg.numSms = 4;
                rs.cfg.scheme = s;
                rs.cfg.resilienceStats = true;
                rs.policy.inject.model = ModelKind::Bernoulli;
                rs.policy.inject.rate = 0.003;
                rs.policy.inject.seed = seed;
                eng.add(std::move(rs));
            }
        }
    }
    return eng.run();
}

TEST(InjectSweep, BitIdenticalAcrossJobCounts)
{
    auto serial = injectedGrid(1);
    auto parallel = injectedGrid(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].result.cycles, parallel[i].result.cycles)
            << "run " << i;
        EXPECT_EQ(serial[i].result.instructions,
                  parallel[i].result.instructions)
            << "run " << i;
        EXPECT_EQ(serial[i].result.stats.scalars(),
                  parallel[i].result.stats.scalars())
            << "run " << i;
    }
}

TEST(InjectSweep, SeedsChangeTheFaultPattern)
{
    auto runs = injectedGrid(1);
    // Runs 0 and 1 differ only in seed; their injected-fault tallies
    // coming out equal on every stat would mean the seed is ignored.
    ASSERT_GE(runs.size(), 2u);
    EXPECT_NE(runs[0].result.stats.scalars(),
              runs[1].result.stats.scalars());
}

} // namespace
} // namespace gex
