/**
 * @file
 * Integration tests: GPU top-level behaviour — breadth-first block
 * placement, run-to-run determinism, stat completeness, multi-run
 * isolation, and the TB scheduler.
 */

#include <gtest/gtest.h>
#include "common/error.hpp"

#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "gpu/tb_scheduler.hpp"
#include "kasm/builder.hpp"
#include "workloads/workloads.hpp"

namespace gex {
namespace {

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

Built *
shared()
{
    static Built *bt = [] {
        auto *b = new Built;
        auto w = workloads::make("bfs", b->mem, 1);
        b->kernel = std::move(w.kernel);
        func::FunctionalSim fsim(b->mem);
        b->trace = fsim.run(b->kernel);
        return b;
    }();
    return bt;
}

TEST(TbScheduler, HandsOutBlocksInLaunchOrderOnce)
{
    Built *bt = shared();
    gpu::TbScheduler sched(bt->trace);
    EXPECT_EQ(sched.total(), bt->trace.blocks.size());
    std::uint32_t expect = 0;
    while (sched.hasPending()) {
        const trace::BlockTrace *blk = sched.nextBlock();
        ASSERT_NE(blk, nullptr);
        EXPECT_EQ(blk->blockId, expect++);
    }
    EXPECT_EQ(sched.nextBlock(), nullptr);
    EXPECT_EQ(sched.issued(), sched.total());
}

TEST(GpuTop, ReusableAcrossRuns)
{
    Built *bt = shared();
    gpu::Gpu g(gpu::GpuConfig::baseline());
    auto r1 = g.run(bt->kernel, bt->trace);
    auto r2 = g.run(bt->kernel, bt->trace);
    // Each run starts from fresh microarchitectural state.
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(r1.stats.get("l1.misses"), r2.stats.get("l1.misses"));
}

TEST(GpuTop, StatSetIsComprehensive)
{
    Built *bt = shared();
    gpu::Gpu g(gpu::GpuConfig::baseline());
    auto r = g.run(bt->kernel, bt->trace);
    for (const char *key :
         {"gpu.cycles", "gpu.instructions", "gpu.ipc", "gpu.blocks",
          "sm.insts_committed", "sm.insts_issued", "sm.fetches",
          "l1.hits", "l1.misses", "l1tlb.hits", "l2.hits", "l2tlb.hits",
          "dram.reads", "dram.bytes", "mmu.walks", "lsu.requests"})
        EXPECT_TRUE(r.stats.has(key)) << key;
    EXPECT_DOUBLE_EQ(r.stats.get("gpu.cycles"),
                     static_cast<double>(r.cycles));
    // Issued == committed on a fault-free run (nothing squashed).
    EXPECT_DOUBLE_EQ(r.stats.get("sm.insts_issued"),
                     r.stats.get("sm.insts_committed"));
    // Everything fetched is eventually issued (replays refetch).
    EXPECT_GE(r.stats.get("sm.fetches"),
              r.stats.get("sm.insts_issued"));
}

TEST(GpuTop, IssuedExceedsCommittedUnderReplay)
{
    Built *bt = shared();
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue;
    gpu::Gpu g(cfg);
    auto r = g.run(bt->kernel, bt->trace, vm::VmPolicy::demandPaging());
    // Squashed+replayed instructions are issued more than once but
    // committed exactly once.
    EXPECT_GT(r.stats.get("sm.insts_issued"),
              r.stats.get("sm.insts_committed"));
    EXPECT_EQ(r.instructions, bt->trace.dynamicInsts());
}

TEST(GpuTop, GeometryMismatchIsFatal)
{
    Built *bt = shared();
    func::Kernel wrong = bt->kernel;
    wrong.grid.x += 1; // grid no longer matches the trace
    gpu::Gpu g(gpu::GpuConfig::baseline());
    EXPECT_THROW(g.run(wrong, bt->trace), TraceError);
}

TEST(GpuTop, SingleSmStillCompletes)
{
    Built *bt = shared();
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.numSms = 1;
    gpu::Gpu g(cfg);
    auto r = g.run(bt->kernel, bt->trace);
    EXPECT_EQ(r.instructions, bt->trace.dynamicInsts());
}

TEST(GpuTop, CycleSkippingMatchesDenseTicking)
{
    // A kernel with a long memory-latency gap: the event-skip fast
    // path must produce the same cycle count as a run that has
    // continuous work (here we simply check determinism across
    // configurations that change skip patterns: one SM vs many).
    kasm::KernelBuilder b("gap");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.ldGlobal(2, 1);
    b.fadd(3, 2, 2); // depends on the load: long idle gap
    b.exit();
    Built bt;
    bt.kernel.program = b.build();
    bt.kernel.grid = {1, 1, 1};
    bt.kernel.block = {32, 1, 1};
    bt.kernel.params = {1 << 20};
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);
    gpu::Gpu g(gpu::GpuConfig::baseline());
    auto r1 = g.run(bt.kernel, bt.trace);
    auto r2 = g.run(bt.kernel, bt.trace);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_GT(r1.cycles, 300u); // the DRAM round trip really happened
}

TEST(Trace, BlockAndKernelCountsConsistent)
{
    Built *bt = shared();
    std::uint64_t sum = 0;
    for (const auto &blk : bt->trace.blocks)
        sum += blk.dynamicInsts();
    EXPECT_EQ(sum, bt->trace.dynamicInsts());
    EXPECT_GT(bt->trace.memRequests, bt->trace.memInsts / 2);
}

TEST(Trace, LinePointersInBounds)
{
    Built *bt = shared();
    for (const auto &blk : bt->trace.blocks) {
        for (const auto &w : blk.warps) {
            for (const auto &ti : w.insts) {
                ASSERT_LE(ti.lineOff + ti.numLines, w.linePool.size());
                const Addr *lines = w.lines(ti);
                for (int i = 0; i < ti.numLines; ++i)
                    EXPECT_EQ(lines[i] % kLineSize, 0u);
            }
        }
    }
}

} // namespace
} // namespace gex
