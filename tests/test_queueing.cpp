/**
 * @file
 * Property tests: queueing behaviour of the serialized resources that
 * produce the paper's contention effects — the CPU fault handler, the
 * host link, and the walker pool — under parameterized offered load.
 */

#include <gtest/gtest.h>

#include "mem/port.hpp"
#include "vm/host_link.hpp"

namespace gex::vm {
namespace {

class HostLinkLoad : public ::testing::TestWithParam<int>
{
};

TEST_P(HostLinkLoad, CpuThroughputSaturatesAtServiceRate)
{
    const int n = GetParam();
    HostLinkConfig cfg = HostLinkConfig::nvlink();
    HostLink link(cfg);
    // n allocation-only faults arriving simultaneously.
    Cycle last = 0;
    for (int i = 0; i < n; ++i)
        last = std::max(last, link.serviceFault(0, 0));
    // Completion of the batch is bounded below by serialized CPU
    // service and above by service + full latency.
    Cycle serial = static_cast<Cycle>(n) * cfg.cpuServiceCycles;
    EXPECT_GE(last, serial);
    EXPECT_LE(last, serial + 3 * cfg.oneWayLatency + 2000);
}

TEST_P(HostLinkLoad, MigrationBatchBoundedByLinkBandwidth)
{
    const int n = GetParam();
    HostLinkConfig cfg = HostLinkConfig::pcie();
    HostLink link(cfg);
    Cycle last = 0;
    for (int i = 0; i < n; ++i)
        last = std::max(last, link.serviceFault(0, 64 * 1024));
    // 64 KB per fault over the serialized link.
    double xfer_per_fault = 64.0 * 1024.0 / cfg.linkBytesPerCycle;
    EXPECT_GE(last, static_cast<Cycle>(n * xfer_per_fault));
    EXPECT_EQ(link.bytesMigrated(),
              static_cast<std::uint64_t>(n) * 64 * 1024);
}

TEST_P(HostLinkLoad, AverageLatencyGrowsWithLoad)
{
    const int n = GetParam();
    if (n < 4)
        GTEST_SKIP();
    HostLinkConfig cfg = HostLinkConfig::nvlink();
    HostLink a(cfg), b(cfg);
    Cycle solo = a.serviceFault(0, 0);
    Cycle last = 0;
    for (int i = 0; i < n; ++i)
        last = std::max(last, b.serviceFault(0, 0));
    EXPECT_GT(last, solo); // the batch's tail waited in the queue
}

INSTANTIATE_TEST_SUITE_P(Load, HostLinkLoad,
                         ::testing::Values(1, 2, 4, 16, 64, 256));

TEST(WalkerPool, SixtyFourConcurrentWalks)
{
    mem::Port walkers(64, 500);
    // 64 walks start immediately; the 65th waits for a walker.
    Cycle start = 0;
    for (int i = 0; i < 64; ++i)
        start = std::max(start, walkers.reserve(0));
    EXPECT_EQ(start, 0u);
    EXPECT_EQ(walkers.reserve(0), 500u);
}

TEST(BandwidthConservation, PipeNeverExceedsRate)
{
    mem::BandwidthPipe pipe(32.0);
    Rng rng(5);
    Cycle now = 0;
    std::uint64_t bytes = 0;
    Cycle last_end = 0;
    for (int i = 0; i < 500; ++i) {
        now += rng.below(20);
        std::uint64_t sz = 64 + rng.below(4096);
        last_end = pipe.transfer(now, sz);
        bytes += sz;
    }
    // Total bytes moved cannot exceed rate x elapsed time.
    EXPECT_GE(static_cast<double>(last_end) * 32.0,
              static_cast<double>(bytes));
    EXPECT_EQ(pipe.totalBytes(), bytes);
}

TEST(PortFairness, FifoUnderContention)
{
    mem::Port port(1);
    // Reservations made in order get non-decreasing grants.
    Cycle prev = 0;
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        Cycle want = rng.below(50);
        Cycle got = port.reserve(want);
        EXPECT_GE(got, prev);
        prev = got;
    }
}

} // namespace
} // namespace gex::vm
