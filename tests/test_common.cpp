/** @file Unit tests: common utilities (stats, rng, math, types, task pool). */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "common/stats.hpp"
#include "common/task_pool.hpp"
#include "common/types.hpp"

namespace gex {
namespace {

TEST(StatSet, AddAndGet)
{
    StatSet s;
    EXPECT_EQ(s.get("x"), 0.0);
    EXPECT_FALSE(s.has("x"));
    s.add("x");
    s.add("x", 2.5);
    EXPECT_DOUBLE_EQ(s.get("x"), 3.5);
    EXPECT_TRUE(s.has("x"));
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.add("x", 10);
    s.set("x", 3);
    EXPECT_DOUBLE_EQ(s.get("x"), 3.0);
}

TEST(StatSet, MaxOf)
{
    StatSet s;
    s.maxOf("m", 5);
    s.maxOf("m", 2);
    EXPECT_DOUBLE_EQ(s.get("m"), 5.0);
    s.maxOf("m", 9);
    EXPECT_DOUBLE_EQ(s.get("m"), 9.0);
}

TEST(StatSet, MergeSumsSharedNames)
{
    StatSet a, b;
    a.add("x", 1);
    a.add("y", 2);
    b.add("x", 10);
    b.add("z", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 11.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 2.0);
    EXPECT_DOUBLE_EQ(a.get("z"), 3.0);
}

TEST(StatSet, DumpFormat)
{
    StatSet s;
    s.set("a", 1);
    std::ostringstream os;
    s.dump(os, "p.");
    EXPECT_EQ(os.str(), "p.a = 1\n");
}

TEST(StatSet, CsvFormat)
{
    StatSet s;
    s.set("b", 2.5);
    s.set("a", 1);
    std::ostringstream os;
    s.dumpCsv(os);
    EXPECT_EQ(os.str(), "stat,value\na,1\nb,2.5\n");
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(CeilDiv, Basics)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double x = r.real();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, SpreadsValues)
{
    Rng r(1);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 256; ++i)
        seen.insert(r.below(1024));
    EXPECT_GT(seen.size(), 180u); // near-uniform draw
}

TEST(Types, PageAndLineHelpers)
{
    EXPECT_EQ(pageOf(0), 0u);
    EXPECT_EQ(pageOf(4095), 0u);
    EXPECT_EQ(pageOf(4096), 1u);
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(127), 0u);
    EXPECT_EQ(lineOf(128), 128u);
    EXPECT_EQ(lineOf(255), 128u);
}

TEST(TaskPool, RunsEveryIndexExactlyOnce)
{
    common::TaskPool pool(4);
    struct Ctx {
        std::vector<std::atomic<int>> hits;
        Ctx() : hits(257) {}
    } ctx;
    pool.run(257,
             [](void *c, int i) {
                 static_cast<Ctx *>(c)->hits[static_cast<size_t>(i)]
                     .fetch_add(1);
             },
             &ctx);
    for (const auto &h : ctx.hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, ReusableAcrossManyRounds)
{
    // Same pool, many run() calls — the per-cycle usage pattern of the
    // phased tick engine. Also covers n smaller than the thread count
    // and n == 0.
    common::TaskPool pool(3);
    std::atomic<long> sum{0};
    long expect = 0;
    for (int round = 0; round < 200; ++round) {
        int n = round % 7; // 0..6 items on 3 threads
        expect += n;
        pool.run(n,
                 [](void *c, int) {
                     static_cast<std::atomic<long> *>(c)->fetch_add(1);
                 },
                 &sum);
    }
    EXPECT_EQ(sum.load(), expect);
}

TEST(TaskPool, SingleThreadRunsInline)
{
    common::TaskPool pool(1);
    std::atomic<int> hits{0};
    pool.run(16,
             [](void *c, int) {
                 static_cast<std::atomic<int> *>(c)->fetch_add(1);
             },
             &hits);
    EXPECT_EQ(hits.load(), 16);
}

TEST(TaskPool, CallerSeesWorkerWrites)
{
    // run() must publish worker writes to the caller (the drain phase
    // reads staged state written by compute workers).
    common::TaskPool pool(4);
    std::vector<int> data(1024, 0);
    pool.run(1024,
             [](void *c, int i) {
                 (*static_cast<std::vector<int> *>(c))[static_cast<size_t>(
                     i)] = i * 3;
             },
             &data);
    for (int i = 0; i < 1024; ++i)
        ASSERT_EQ(data[static_cast<size_t>(i)], i * 3);
}

} // namespace
} // namespace gex
