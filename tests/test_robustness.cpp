/**
 * @file
 * Robustness tests (docs/ROBUSTNESS.md): the structured error
 * taxonomy's rendering contract, the forward-progress watchdog
 * tripping on a seeded livelock, the hard cycle budget, the sweep
 * engine surviving (and classifying) failing grid points, and the
 * hardened JSON parser rejecting truncated or corrupt input with a
 * byte offset.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "harness/sweep.hpp"
#include "inject/fault_model.hpp"

namespace gex {
namespace {

// --- Error taxonomy --------------------------------------------------

TEST(ErrorTaxonomy, ContextDescribesOnlySetFields)
{
    ErrorContext ctx;
    EXPECT_EQ(ctx.describe(), "");

    ctx.cycle = 1234;
    ctx.sm = 2;
    ctx.warp = 7;
    ctx.scheme = "replay-queue";
    std::string d = ctx.describe();
    EXPECT_NE(d.find("cycle 1234"), std::string::npos) << d;
    EXPECT_NE(d.find("sm 2"), std::string::npos) << d;
    EXPECT_NE(d.find("warp 7"), std::string::npos) << d;
    EXPECT_NE(d.find("replay-queue"), std::string::npos) << d;
}

TEST(ErrorTaxonomy, ReportRendersKindContextAndDiagnostics)
{
    ErrorContext ctx;
    ctx.cycle = 99;
    LivelockError e("nothing commits", ctx, "  warp 0: stalled\n");
    EXPECT_EQ(e.kind(), "LivelockError");
    EXPECT_STREQ(e.what(), "nothing commits");
    std::string r = e.report();
    EXPECT_NE(r.find("LivelockError: nothing commits"),
              std::string::npos) << r;
    EXPECT_NE(r.find("cycle 99"), std::string::npos) << r;
    EXPECT_NE(r.find("warp 0: stalled"), std::string::npos) << r;
}

TEST(ErrorTaxonomy, FatalThrowsConfigErrorWithFormattedMessage)
{
    try {
        fatal("bad knob %d for '%s'", 42, "thing");
        FAIL() << "fatal() returned";
    } catch (const ConfigError &e) {
        EXPECT_STREQ(e.what(), "bad knob 42 for 'thing'");
    }
}

// --- Forward-progress watchdog --------------------------------------

/**
 * The seeded livelock: under replay-queue, a rate-1.0 Bernoulli
 * injector re-faults every replayed page-table walk, so the squash/
 * replay loop spins forever without committing. (Baseline
 * stall-on-fault is immune: the stalled access completes after one
 * service without re-walking.)
 */
harness::RunSpec
livelockSpec()
{
    harness::RunSpec rs;
    rs.workload = "bfs";
    rs.cfg = gpu::GpuConfig::baseline();
    rs.cfg.numSms = 4;
    rs.cfg.scheme = gpu::Scheme::ReplayQueue;
    rs.cfg.watchdogCycles = 20'000;
    rs.policy = vm::VmPolicy::allResident();
    rs.policy.inject.model = inject::modelFromName("bernoulli");
    rs.policy.inject.rate = 1.0;
    rs.policy.inject.seed = 1;
    return rs;
}

TEST(Watchdog, TripsOnSeededLivelockWithDiagnostics)
{
    harness::RunSpec rs = livelockSpec();
    harness::TraceCache cache;
    const harness::TracedWorkload &tw = cache.get(rs.workload);
    gpu::Gpu g(rs.cfg);
    try {
        g.run(tw.kernel, tw.trace, rs.policy);
        FAIL() << "seeded livelock completed";
    } catch (const LivelockError &e) {
        EXPECT_EQ(e.kind(), "LivelockError");
        EXPECT_NE(e.context().cycle, kNoCycle);
        EXPECT_EQ(e.context().scheme, "replay-queue");
        std::string r = e.report();
        EXPECT_NE(r.find("forward-progress watchdog"),
                  std::string::npos) << r;
        // The bundle carries machine state, per-SM warp dumps and a
        // pointer at the (off-by-default) event capture knob.
        EXPECT_NE(r.find("pending faults"), std::string::npos) << r;
        EXPECT_NE(r.find("recent-event capture off"),
                  std::string::npos) << r;
    }
}

TEST(Watchdog, CapturesEventTailWhenEnabled)
{
    harness::RunSpec rs = livelockSpec();
    rs.cfg.watchdogCaptureEvents = true;
    rs.cfg.watchdogLastEvents = 32;
    harness::TraceCache cache;
    const harness::TracedWorkload &tw = cache.get(rs.workload);
    gpu::Gpu g(rs.cfg);
    try {
        g.run(tw.kernel, tw.trace, rs.policy);
        FAIL() << "seeded livelock completed";
    } catch (const LivelockError &e) {
        EXPECT_NE(e.diagnostics().find("last 32 pipeline events"),
                  std::string::npos) << e.diagnostics();
        EXPECT_EQ(e.diagnostics().find("recent-event capture off"),
                  std::string::npos);
    }
}

TEST(Watchdog, BaselineSchemeSurvivesTheSameInjection)
{
    // The same rate-1.0 campaign under stall-on-fault terminates: the
    // watchdog must stay quiet on slow-but-live runs.
    harness::RunSpec rs = livelockSpec();
    rs.cfg.scheme = gpu::Scheme::StallOnFault;
    harness::TraceCache cache;
    const harness::TracedWorkload &tw = cache.get(rs.workload);
    gpu::Gpu g(rs.cfg);
    gpu::SimResult r = g.run(tw.kernel, tw.trace, rs.policy);
    EXPECT_GT(r.cycles, 0u);
}

TEST(Watchdog, CycleBudgetThrowsBudgetExceeded)
{
    harness::TraceCache cache;
    const harness::TracedWorkload &tw = cache.get("bfs");
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.numSms = 4;
    cfg.maxCycles = 500;
    gpu::Gpu g(cfg);
    try {
        g.run(tw.kernel, tw.trace);
        FAIL() << "run fit inside an absurdly small budget";
    } catch (const CycleBudgetExceeded &e) {
        EXPECT_EQ(e.kind(), "CycleBudgetExceeded");
        EXPECT_NE(std::string(e.what()).find("500-cycle budget"),
                  std::string::npos) << e.what();
        EXPECT_GE(e.context().cycle, 500u);
    }
}

// --- Sweep resilience ------------------------------------------------

TEST(SweepResilience, FailedPointsNeverKillTheSweep)
{
    harness::SweepEngine eng(2);
    eng.setMaxRetries(2);

    harness::RunSpec good;
    good.workload = "bfs";
    good.cfg = gpu::GpuConfig::baseline();
    good.cfg.numSms = 4;
    eng.add(good);

    harness::RunSpec live = livelockSpec();
    live.series = "seeded-livelock";
    eng.add(live);

    harness::RunSpec bad;
    bad.workload = "no-such-workload";
    bad.cfg = gpu::GpuConfig::baseline();
    eng.add(bad);

    std::vector<harness::RunRecord> runs = eng.run();
    ASSERT_EQ(runs.size(), 3u);

    EXPECT_EQ(runs[0].status, harness::PointStatus::Ok);
    EXPECT_TRUE(runs[0].ok());
    EXPECT_GT(runs[0].result.cycles, 0u);
    EXPECT_EQ(runs[0].attempts, 1);
    EXPECT_TRUE(runs[0].error.empty());

    EXPECT_EQ(runs[1].status, harness::PointStatus::Livelock);
    EXPECT_FALSE(runs[1].ok());
    // Livelock is a deterministic function of the spec: never retried.
    EXPECT_EQ(runs[1].attempts, 1);
    EXPECT_NE(runs[1].error.find("LivelockError"), std::string::npos)
        << runs[1].error;
    EXPECT_EQ(runs[1].result.cycles, 0u);

    EXPECT_EQ(runs[2].status, harness::PointStatus::Failed);
    // Failed points are retried maxRetries times before recording.
    EXPECT_EQ(runs[2].attempts, 3);
    EXPECT_NE(runs[2].error.find("ConfigError"), std::string::npos)
        << runs[2].error;

    // Summary rows only see Ok points.
    harness::normalizeToSeries(runs, "baseline");
    EXPECT_EQ(runs[1].derived.count("normalized"), 0u);
    std::map<std::string, double> gms = harness::seriesGeomeans(runs);
    EXPECT_EQ(gms.count("seeded-livelock"), 0u);
}

TEST(SweepResilience, ReportJsonCarriesStatusAndError)
{
    harness::SweepEngine eng(1);
    harness::RunSpec good;
    good.workload = "bfs";
    good.cfg = gpu::GpuConfig::baseline();
    good.cfg.numSms = 4;
    eng.add(good);
    harness::RunSpec live = livelockSpec();
    live.series = "seeded-livelock";
    eng.add(live);

    harness::SweepReport rep;
    rep.name = "test_robustness";
    rep.deterministic = true;
    rep.runs = eng.run();
    EXPECT_EQ(rep.countStatus(harness::PointStatus::Ok), 1u);
    EXPECT_EQ(rep.countStatus(harness::PointStatus::Livelock), 1u);

    std::ostringstream os;
    rep.writeJson(os);
    std::string err;
    auto v = json::parse(os.str(), &err);
    ASSERT_NE(v, nullptr) << err;
    // Deterministic documents omit the execution environment.
    EXPECT_EQ(v->find("jobs"), nullptr);
    EXPECT_EQ(v->find("wall_seconds"), nullptr);
    const json::Value *runs = v->find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->items.size(), 2u);
    EXPECT_EQ(runs->items[0].find("status")->asString(), "ok");
    EXPECT_EQ(runs->items[0].find("error")->asString(), "");
    EXPECT_EQ(runs->items[1].find("status")->asString(), "livelock");
    EXPECT_NE(runs->items[1].find("error")->asString().find(
                  "forward-progress watchdog"),
              std::string::npos);
    EXPECT_EQ(runs->items[1].find("attempts")->asNumber(), 1.0);
}

// --- Hardened JSON parser -------------------------------------------

TEST(JsonHardening, TruncatedDocumentsFailWithByteOffset)
{
    for (const char *bad : {"{\"a\": [1, 2", "{\"a\": \"unterminated",
                            "{\"a\": 1, ", "[[[1,2],"}) {
        std::string err;
        EXPECT_EQ(json::parse(bad, &err), nullptr) << bad;
        EXPECT_NE(err.find("at offset"), std::string::npos)
            << bad << ": " << err;
    }
}

TEST(JsonHardening, RejectsHexNumbers)
{
    // strtod() accepts "0x1f"; JSON does not. A journal line with a
    // mangled number must be a parse error, not a silent value.
    std::string err;
    EXPECT_EQ(json::parse("{\"v\": 0x1f}", &err), nullptr);
    EXPECT_NE(err.find("hex"), std::string::npos) << err;
}

TEST(JsonHardening, RejectsRawControlCharactersInStrings)
{
    std::string doc = "{\"a\": \"torn";
    doc += '\x01';
    doc += "line\"}";
    std::string err;
    EXPECT_EQ(json::parse(doc, &err), nullptr);
    EXPECT_NE(err.find("control character"), std::string::npos) << err;
    // The offset names the corrupt byte, not the end of input.
    EXPECT_NE(err.find("at offset 11"), std::string::npos) << err;
}

TEST(JsonHardening, RejectsPathologicallyDeepNesting)
{
    std::string bomb(5000, '[');
    std::string err;
    EXPECT_EQ(json::parse(bomb, &err), nullptr);
    EXPECT_NE(err.find("nesting"), std::string::npos) << err;

    // 200 levels is legal; the limit only exists to bound recursion.
    std::string ok(199, '[');
    ok += "1";
    ok.append(199, ']');
    err.clear();
    EXPECT_NE(json::parse(ok, &err), nullptr) << err;
}

} // namespace
} // namespace gex
