/**
 * @file
 * Workload tests: every registered workload builds, runs functionally,
 * matches a host-computed reference where practical, and exhibits the
 * characteristics its Parboil/Halloc namesake is modeled on.
 */

#include <gtest/gtest.h>
#include "common/error.hpp"

#include <cmath>

#include "func/functional_sim.hpp"
#include "gpu/context_switch.hpp"
#include "gpu/gpu.hpp"
#include "workloads/workloads.hpp"

namespace gex {
namespace {

TEST(WorkloadRegistry, AllNamesExistAndSuitesCovered)
{
    for (const auto &n : workloads::parboilSuite())
        EXPECT_TRUE(workloads::exists(n)) << n;
    for (const auto &n : workloads::hallocSuite())
        EXPECT_TRUE(workloads::exists(n)) << n;
    EXPECT_FALSE(workloads::exists("nope"));
    EXPECT_EQ(workloads::allNames().size(),
              workloads::parboilSuite().size() +
                  workloads::hallocSuite().size());
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    func::GlobalMemory mem;
    EXPECT_THROW(workloads::make("nope", mem), ConfigError);
}

/** Every workload traces successfully and has sane metadata. */
class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, BuildsTracesAndTimes)
{
    func::GlobalMemory mem;
    auto w = workloads::make(GetParam(), mem, 1);
    w.kernel.program.validate();
    EXPECT_FALSE(w.kernel.buffers.empty());
    EXPECT_GE(w.kernel.numBlocks(), 16u);

    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(w.kernel);
    EXPECT_GT(tr.dynamicInsts(), 0u);
    EXPECT_GT(tr.memInsts, 0u);
    EXPECT_EQ(tr.blocks.size(), w.kernel.numBlocks());

    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    gpu::Gpu g(cfg);
    auto r = g.run(w.kernel, tr);
    EXPECT_EQ(r.instructions, tr.dynamicInsts()) << GetParam();
    EXPECT_GT(r.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryWorkload,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &n : workloads::parboilSuite())
            names.push_back(n);
        for (const auto &n : workloads::hallocSuite())
            names.push_back(n);
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(WorkloadSgemm, MatchesHostReference)
{
    func::GlobalMemory mem;
    auto w = workloads::make("sgemm", mem, 1);
    const std::uint64_t dim = w.kernel.params[3];
    Addr A = w.kernel.params[0], B = w.kernel.params[1],
         C = w.kernel.params[2];

    // Snapshot inputs before execution.
    std::vector<double> a(dim * dim), b(dim * dim);
    for (std::uint64_t i = 0; i < dim * dim; ++i) {
        a[i] = mem.readF64(A + i * 8);
        b[i] = mem.readF64(B + i * 8);
    }
    func::FunctionalSim fsim(mem);
    fsim.run(w.kernel);

    // Spot-check a handful of elements with identical fma ordering.
    Rng rng(99);
    for (int probe = 0; probe < 20; ++probe) {
        std::uint64_t row = rng.below(dim), col = rng.below(dim);
        double acc = 0.0;
        for (std::uint64_t k = 0; k < dim; ++k)
            acc = std::fma(a[row * dim + k], b[col * dim + k], acc);
        double got = mem.readF64(C + (row * dim + col) * 64);
        EXPECT_DOUBLE_EQ(got, acc) << "C[" << row << "," << col << "]";
    }
}

TEST(WorkloadSad, MatchesHostReference)
{
    func::GlobalMemory mem;
    auto w = workloads::make("sad", mem, 1);
    Addr cur = w.kernel.params[0], ref = w.kernel.params[1],
         out = w.kernel.params[2];
    std::uint64_t threads =
        static_cast<std::uint64_t>(w.kernel.numBlocks()) * 128;

    std::vector<std::uint64_t> c(threads * 16), r(threads * 16);
    for (std::uint64_t i = 0; i < threads * 16; ++i) {
        c[i] = mem.read64(cur + i * 8);
        r[i] = mem.read64(ref + i * 8);
    }
    func::FunctionalSim fsim(mem);
    fsim.run(w.kernel);

    Rng rng(7);
    for (int probe = 0; probe < 20; ++probe) {
        std::uint64_t t = rng.below(threads);
        std::int64_t acc = 0;
        for (int k = 0; k < 16; ++k) {
            auto x = static_cast<std::int64_t>(c[t + threads * k]);
            auto y = static_cast<std::int64_t>(r[t + threads * k]);
            acc += std::abs(x - y);
        }
        EXPECT_EQ(mem.read64(out + t * 64),
                  static_cast<std::uint64_t>(acc));
    }
}

TEST(WorkloadHisto, BinCountsSumToSamples)
{
    func::GlobalMemory mem;
    auto w = workloads::make("histo", mem, 1);
    Addr bins = w.kernel.params[1];
    func::FunctionalSim fsim(mem);
    fsim.run(w.kernel);
    std::uint64_t total = 0;
    for (int i = 0; i < 1024; ++i)
        total += mem.read64(bins + static_cast<Addr>(i) * 8);
    std::uint64_t threads =
        static_cast<std::uint64_t>(w.kernel.numBlocks()) * 256;
    EXPECT_EQ(total, threads * 8);
}

TEST(WorkloadTpacf, HistogramSumMatchesPairs)
{
    func::GlobalMemory mem;
    auto w = workloads::make("tpacf", mem, 1);
    Addr hist = w.kernel.params[2];
    func::FunctionalSim fsim(mem);
    fsim.run(w.kernel);
    std::uint64_t total = 0;
    for (int i = 0; i < 64; ++i)
        total += mem.read64(hist + static_cast<Addr>(i) * 8);
    std::uint64_t threads =
        static_cast<std::uint64_t>(w.kernel.numBlocks()) * 128;
    // Intra-warp histogram races lose some updates (as on real
    // hardware without atomics); the total is bounded by pair count
    // and must be substantial.
    EXPECT_LE(total, threads * 40);
    EXPECT_GT(total, threads * 40 / 4);
}

TEST(WorkloadLbm, LowOccupancyByDesign)
{
    func::GlobalMemory mem;
    auto w = workloads::make("lbm", mem, 1);
    EXPECT_EQ(w.kernel.program.regsPerThread(), 128);
    EXPECT_EQ(gpu::blocksPerSm(gpu::GpuConfig::baseline(), w.kernel), 1);
}

TEST(WorkloadSgemm, UsesSharedMemoryTiles)
{
    func::GlobalMemory mem;
    auto w = workloads::make("sgemm", mem, 1);
    EXPECT_EQ(w.kernel.program.sharedBytes(), 4096u);
}

TEST(WorkloadMriGridding, BlockImbalanceTwoOrders)
{
    func::GlobalMemory mem;
    auto w = workloads::make("mri-gridding", mem, 1);
    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(w.kernel);
    std::uint64_t min_insts = UINT64_MAX, max_insts = 0;
    for (const auto &blk : tr.blocks) {
        std::uint64_t n = blk.dynamicInsts();
        min_insts = std::min(min_insts, n);
        max_insts = std::max(max_insts, n);
    }
    // Paper section 5.3: two orders of magnitude difference in block
    // execution time; dynamic instruction counts reflect it.
    EXPECT_GT(max_insts, min_insts * 20);
}

TEST(WorkloadHalloc, AllocationsLandInHeapBuffer)
{
    func::GlobalMemory mem;
    auto w = workloads::make("ha-grid", mem, 1);
    Addr heap_base = 0;
    std::uint64_t heap_bytes = 0;
    for (const auto &buf : w.kernel.buffers)
        if (buf.kind == func::BufferKind::Heap) {
            heap_base = buf.base;
            heap_bytes = buf.bytes;
        }
    ASSERT_GT(heap_bytes, 0u);
    func::FunctionalSim fsim(mem);
    fsim.run(w.kernel);
    Addr cells = w.kernel.params[0];
    std::uint64_t threads =
        static_cast<std::uint64_t>(w.kernel.numBlocks()) * 128;
    for (std::uint64_t t = 0; t < threads; t += 97) {
        std::uint64_t p = mem.read64(cells + t * 8);
        EXPECT_GE(p, heap_base);
        EXPECT_LT(p, heap_base + heap_bytes);
    }
}

TEST(WorkloadScaling, ScaleGrowsTheGrid)
{
    func::GlobalMemory m1, m2;
    auto w1 = workloads::make("sad", m1, 1);
    auto w2 = workloads::make("sad", m2, 2);
    EXPECT_GT(w2.kernel.numBlocks(), w1.kernel.numBlocks());
}

} // namespace
} // namespace gex
