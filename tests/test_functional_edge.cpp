/**
 * @file
 * Functional simulator edge cases: nested divergence, EXIT under
 * divergence, loops with early lane exits, integer corner semantics,
 * heap exhaustion, and the trace's view of predicated-off memory ops.
 */

#include <gtest/gtest.h>
#include "common/error.hpp"

#include "func/functional_sim.hpp"
#include "kasm/builder.hpp"

namespace gex::func {
namespace {

using kasm::Cmp;
using kasm::KernelBuilder;
using kasm::SpecialReg;

constexpr Addr kOut = 2 << 20;

trace::KernelTrace
run1(GlobalMemory &mem, isa::Program prog, std::uint32_t threads = 32,
     std::vector<std::uint64_t> params = {})
{
    Kernel k;
    k.program = std::move(prog);
    k.grid = {1, 1, 1};
    k.block = {threads, 1, 1};
    k.params = std::move(params);
    FunctionalSim fsim(mem);
    return fsim.run(k);
}

TEST(FunctionalEdge, NestedDivergence)
{
    // Outer split at lane<16, inner split at lane&1.
    GlobalMemory mem;
    KernelBuilder b("nest");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::LaneId);
    b.movi(3, 0);
    b.setpi(0, Cmp::LT, 0, 16);
    auto omerge = b.label();
    auto oelse = b.label();
    b.ssy(omerge);
    b.guard(0, true);
    b.bra(oelse);
    b.clearGuard();
    {
        // lanes 0..15: inner divergence on parity
        b.andi(4, 0, 1);
        b.setpi(1, Cmp::EQ, 4, 0);
        auto imerge = b.label();
        b.ssy(imerge);
        b.guard(1, true);
        b.bra(imerge);
        b.clearGuard();
        b.iaddi(3, 3, 100); // even lanes < 16
        b.bind(imerge);
        b.join();
        b.iaddi(3, 3, 10); // all lanes < 16
        b.bra(omerge);
    }
    b.bind(oelse);
    b.iaddi(3, 3, 1); // lanes >= 16
    b.bind(omerge);
    b.join();
    b.shli(5, 0, 3);
    b.iadd(5, 5, 1);
    b.stGlobal(5, 0, 3);
    b.exit();
    run1(mem, b.build(), 32, {kOut});
    for (std::uint64_t lane = 0; lane < 32; ++lane) {
        std::uint64_t want =
            lane >= 16 ? 1 : (lane % 2 == 0 ? 110 : 10);
        EXPECT_EQ(mem.read64(kOut + lane * 8), want) << lane;
    }
}

TEST(FunctionalEdge, GuardedExitRetiresLanesEarly)
{
    GlobalMemory mem;
    KernelBuilder b("gexit");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::LaneId);
    b.shli(2, 0, 3);
    b.iadd(2, 2, 1);
    b.movi(3, 7);
    b.stGlobal(2, 0, 3);     // everyone writes 7
    b.setpi(0, Cmp::LT, 0, 8);
    b.guard(0);
    b.exit();                // lanes 0..7 leave
    b.clearGuard();
    b.movi(3, 9);
    b.stGlobal(2, 0, 3);     // survivors overwrite with 9
    b.exit();
    run1(mem, b.build(), 32, {kOut});
    for (std::uint64_t lane = 0; lane < 32; ++lane)
        EXPECT_EQ(mem.read64(kOut + lane * 8), lane < 8 ? 7u : 9u);
}

TEST(FunctionalEdge, WhileLoopLanesExitOneByOne)
{
    // Lane i spins until counter reaches i; verifies deep repeated
    // divergence on the same SSY scope (the loop pattern).
    GlobalMemory mem;
    KernelBuilder b("spin");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::LaneId);
    b.movi(2, 0);
    auto done = b.label();
    auto loop = b.label();
    b.ssy(done);
    b.bind(loop);
    b.setp(0, Cmp::GE, 2, 0);
    b.guard(0);
    b.bra(done);
    b.clearGuard();
    b.iaddi(2, 2, 1);
    b.bra(loop);
    b.bind(done);
    b.join();
    b.shli(3, 0, 3);
    b.iadd(3, 3, 1);
    b.stGlobal(3, 0, 2);
    b.exit();
    run1(mem, b.build(), 32, {kOut});
    for (std::uint64_t lane = 0; lane < 32; ++lane)
        EXPECT_EQ(mem.read64(kOut + lane * 8), lane);
}

TEST(FunctionalEdge, IntegerCornerSemantics)
{
    GlobalMemory mem;
    KernelBuilder b("corners");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.movi(2, -5);
    b.movi(3, 3);
    b.imin(4, 2, 3);
    b.stGlobal(1, 0, 4);  // min(-5,3) = -5 (signed)
    b.imax(4, 2, 3);
    b.stGlobal(1, 8, 4);  // 3
    b.not_(4, 2);
    b.stGlobal(1, 16, 4); // ~(-5) = 4
    b.shri(4, 2, 1);      // logical shift of 0xff..fb
    b.stGlobal(1, 24, 4);
    b.movf(5, -2.7);
    b.f2i(6, 5);
    b.stGlobal(1, 32, 6); // trunc toward zero = -2
    b.exit();
    run1(mem, b.build(), 1, {kOut});
    EXPECT_EQ(static_cast<std::int64_t>(mem.read64(kOut)), -5);
    EXPECT_EQ(mem.read64(kOut + 8), 3u);
    EXPECT_EQ(mem.read64(kOut + 16), 4u);
    EXPECT_EQ(mem.read64(kOut + 24), 0x7ffffffffffffffdull);
    EXPECT_EQ(static_cast<std::int64_t>(mem.read64(kOut + 32)), -2);
}

TEST(FunctionalEdge, PredicatedOffMemOpRecordsNoLines)
{
    GlobalMemory mem;
    KernelBuilder b("offmem");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.setpi(0, Cmp::EQ, isa::kRegZero, 1); // 0 == 1: always false
    b.guard(0);
    b.ldGlobal(2, 1);
    b.clearGuard();
    b.exit();
    trace::KernelTrace kt = run1(mem, b.build(), 32, {kOut});
    const auto &insts = kt.blocks[0].warps[0].insts;
    // The load record exists (it flows through the pipeline) but has
    // no active lanes and no memory requests.
    const auto &ld = insts[insts.size() - 2];
    EXPECT_EQ(ld.active, 0u);
    EXPECT_EQ(ld.numLines, 0);
}

TEST(FunctionalEdge, HeapExhaustionIsFatal)
{
    GlobalMemory mem;
    mem.setHeap(8 << 20, 4096); // tiny heap
    KernelBuilder b("oom");
    b.movi(1, 1024);
    b.alloc(2, 1);
    b.stGlobal(2, 0, 1);
    b.exit();
    Kernel k;
    k.program = b.build();
    k.grid = {1, 1, 1};
    k.block = {32, 1, 1}; // 32 lanes x 1 KB > 4 KB heap
    FunctionalSim fsim(mem);
    EXPECT_THROW(fsim.run(k), ConfigError);
}

TEST(FunctionalEdge, RunawayLoopGuard)
{
    GlobalMemory mem;
    KernelBuilder b("forever");
    auto loop = b.label();
    b.bind(loop);
    b.iaddi(0, 0, 1);
    b.bra(loop);
    b.exit();
    Kernel k;
    k.program = b.build();
    k.grid = {1, 1, 1};
    k.block = {32, 1, 1};
    FunctionalSim fsim(mem);
    fsim.setMaxWarpInsts(10000);
    EXPECT_THROW(fsim.run(k), TraceError);
}

TEST(FunctionalEdge, MembarAndNopFlowThrough)
{
    GlobalMemory mem;
    KernelBuilder b("fence");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.movi(2, 1);
    b.stGlobal(1, 0, 2);
    b.membar();
    b.nop();
    b.ldGlobal(3, 1);
    b.stGlobal(1, 8, 3);
    b.exit();
    run1(mem, b.build(), 1, {kOut});
    EXPECT_EQ(mem.read64(kOut + 8), 1u);
}

} // namespace
} // namespace gex::func
