/**
 * @file
 * Sweep engine + JSON tests: writer/parser round trips (escaping,
 * round-trippable doubles), StatSet/SimResult serialization, trace
 * cache sharing, and the key determinism property — a multi-threaded
 * sweep produces bit-identical cycles and stats to the same grid run
 * serially.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/json.hpp"
#include "common/stats.hpp"
#include "harness/sweep.hpp"

namespace gex {
namespace {

// --- JSON writer/parser ---------------------------------------------

TEST(Json, EscapeControlAndQuoteCharacters)
{
    EXPECT_EQ(json::escape("plain"), "plain");
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(json::escape("tab\tnl\ncr\r"), "tab\\tnl\\ncr\\r");
    EXPECT_EQ(json::escape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(Json, StringRoundTripThroughParser)
{
    const std::string nasty = "q\"uote \\ back\n\t\r\f\b \x01\x1f end";
    std::ostringstream os;
    json::Writer w(os);
    w.beginObject();
    w.key(nasty).value(nasty);
    w.endObject();

    std::string err;
    auto v = json::parse(os.str(), &err);
    ASSERT_NE(v, nullptr) << err;
    ASSERT_TRUE(v->isObject());
    const json::Value *member = v->find(nasty);
    ASSERT_NE(member, nullptr);
    EXPECT_EQ(member->asString(), nasty);
}

TEST(Json, NumbersRoundTripBitExactly)
{
    const double values[] = {0.0,          1.0,         -1.0,
                             1.0 / 3.0,    0.1,         1e-9,
                             1e300,        -2.5e-300,   3.14159265358979,
                             123456789.0,  1.0 / 7.0,   6.02214076e23};
    for (double d : values) {
        std::string text = json::formatNumber(d);
        std::string err;
        auto v = json::parse(text, &err);
        ASSERT_NE(v, nullptr) << text << ": " << err;
        ASSERT_TRUE(v->isNumber()) << text;
        // Bit-exact, not approximately equal.
        EXPECT_EQ(v->asNumber(), d) << text;
    }
}

TEST(Json, ParserHandlesNestedDocuments)
{
    std::string err;
    auto v = json::parse(
        R"({"a": [1, 2.5, "x", true, false, null], "b": {"c": -3}})",
        &err);
    ASSERT_NE(v, nullptr) << err;
    const json::Value *a = v->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items.size(), 6u);
    EXPECT_EQ(a->items[1].asNumber(), 2.5);
    EXPECT_EQ(a->items[2].asString(), "x");
    EXPECT_TRUE(a->items[5].isNull());
    const json::Value *b = v->find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_NE(b->find("c"), nullptr);
    EXPECT_EQ(b->find("c")->asNumber(), -3.0);
}

TEST(Json, ParserRejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}",
          "\"unterminated", "[1,]x", "nan", "+1"}) {
        std::string err;
        EXPECT_EQ(json::parse(bad, &err), nullptr)
            << "accepted: " << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

// --- StatSet::toJson -------------------------------------------------

TEST(StatSetJson, RoundTripsNamesAndValues)
{
    StatSet s;
    s.set("plain", 42.0);
    s.set("ratio", 1.0 / 3.0);
    s.set("weird \"name\"\twith\nescapes\\", -7.25e-11);
    s.set("zero", 0.0);

    std::string err;
    auto v = json::parse(s.toJson(), &err);
    ASSERT_NE(v, nullptr) << err;
    ASSERT_TRUE(v->isObject());
    EXPECT_EQ(v->members.size(), s.scalars().size());
    for (const auto &kv : s.scalars()) {
        const json::Value *m = v->find(kv.first);
        ASSERT_NE(m, nullptr) << kv.first;
        EXPECT_EQ(m->asNumber(), kv.second) << kv.first;
    }
}

TEST(StatSetJson, EmptySetIsEmptyObject)
{
    StatSet s;
    std::string err;
    auto v = json::parse(s.toJson(), &err);
    ASSERT_NE(v, nullptr) << err;
    ASSERT_TRUE(v->isObject());
    EXPECT_TRUE(v->members.empty());
}

// --- Sweep engine ----------------------------------------------------

/**
 * The small grid the determinism tests run: two cheap workloads, two
 * schemes each, fault-free plus one demand-paging point so the fault
 * machinery is exercised concurrently too.
 */
std::vector<harness::RunSpec>
smallGrid()
{
    std::vector<harness::RunSpec> grid;
    for (const char *w : {"bfs", "spmv"}) {
        for (gpu::Scheme s :
             {gpu::Scheme::StallOnFault, gpu::Scheme::ReplayQueue}) {
            harness::RunSpec rs;
            rs.workload = w;
            rs.cfg = gpu::GpuConfig::baseline();
            rs.cfg.numSms = 4;
            rs.cfg.scheme = s;
            grid.push_back(std::move(rs));
        }
    }
    harness::RunSpec dp;
    dp.workload = "bfs";
    dp.cfg = gpu::GpuConfig::baseline();
    dp.cfg.numSms = 4;
    dp.cfg.scheme = gpu::Scheme::ReplayQueue;
    dp.policy = vm::VmPolicy::demandPaging();
    dp.series = "replay-queue-dp";
    grid.push_back(std::move(dp));
    return grid;
}

std::vector<harness::RunRecord>
runGrid(int jobs)
{
    harness::SweepEngine eng(jobs);
    for (auto &rs : smallGrid())
        eng.add(std::move(rs));
    return eng.run();
}

TEST(SweepEngine, ParallelSweepBitIdenticalToSerial)
{
    std::vector<harness::RunRecord> serial = runGrid(1);
    std::vector<harness::RunRecord> parallel = runGrid(4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].result.cycles, parallel[i].result.cycles)
            << "run " << i << " (" << serial[i].spec.workload << ")";
        EXPECT_EQ(serial[i].result.instructions,
                  parallel[i].result.instructions);
        // Full stat set must match bit-for-bit, not just headline
        // numbers.
        const auto &ss = serial[i].result.stats.scalars();
        const auto &ps = parallel[i].result.stats.scalars();
        ASSERT_EQ(ss.size(), ps.size()) << "run " << i;
        auto it = ps.begin();
        for (const auto &kv : ss) {
            EXPECT_EQ(kv.first, it->first);
            EXPECT_EQ(kv.second, it->second)
                << "run " << i << " stat " << kv.first;
            ++it;
        }
    }
}

TEST(SweepEngine, ResultsLandInAddOrder)
{
    std::vector<harness::RunSpec> grid = smallGrid();
    harness::SweepEngine eng(4);
    for (auto &rs : grid)
        eng.add(rs);
    std::vector<harness::RunRecord> runs = eng.run();
    ASSERT_EQ(runs.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(runs[i].spec.workload, grid[i].workload);
        EXPECT_EQ(runs[i].spec.seriesLabel(), grid[i].seriesLabel());
        EXPECT_GT(runs[i].result.cycles, 0u);
    }
}

TEST(TraceCache, BuildsEachWorkloadOnce)
{
    harness::TraceCache cache;
    const harness::TracedWorkload &a = cache.get("bfs");
    const harness::TracedWorkload &b = cache.get("bfs");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(cache.size(), 1u);
    // Distinct scales are distinct cache entries.
    const harness::TracedWorkload &c = cache.get("bfs", 2);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_GT(a.trace.blocks.size(), 0u);
}

TEST(SweepHelpers, NormalizeAndGeomeans)
{
    auto mk = [](const char *group, const char *series, Cycle cycles) {
        harness::RunRecord r;
        r.spec.workload = group;
        r.spec.series = series;
        r.result.cycles = cycles;
        return r;
    };
    std::vector<harness::RunRecord> runs = {
        mk("w1", "baseline", 1000), mk("w1", "x", 2000),
        mk("w2", "baseline", 500),  mk("w2", "x", 250),
    };
    harness::normalizeToSeries(runs, "baseline");
    EXPECT_DOUBLE_EQ(runs[0].derived.at("normalized"), 1.0);
    EXPECT_DOUBLE_EQ(runs[1].derived.at("normalized"), 0.5);
    EXPECT_DOUBLE_EQ(runs[3].derived.at("normalized"), 2.0);

    auto gms = harness::seriesGeomeans(runs);
    EXPECT_DOUBLE_EQ(gms.at("baseline"), 1.0);
    EXPECT_DOUBLE_EQ(gms.at("x"), 1.0); // geomean(0.5, 2.0)
}

TEST(SweepReport, JsonDocumentParsesAndCarriesStats)
{
    harness::SweepEngine eng(2);
    for (auto &rs : smallGrid())
        eng.add(std::move(rs));
    harness::SweepReport rep;
    rep.name = "test_sweep";
    rep.jobs = eng.jobs();
    rep.runs = eng.run();
    harness::normalizeToSeries(rep.runs, "baseline");
    rep.geomeans = harness::seriesGeomeans(rep.runs);

    std::ostringstream os;
    rep.writeJson(os);

    std::string err;
    auto v = json::parse(os.str(), &err);
    ASSERT_NE(v, nullptr) << err;
    EXPECT_EQ(v->find("name")->asString(), "test_sweep");
    const json::Value *runsV = v->find("runs");
    ASSERT_NE(runsV, nullptr);
    ASSERT_TRUE(runsV->isArray());
    ASSERT_EQ(runsV->items.size(), rep.runs.size());
    for (std::size_t i = 0; i < rep.runs.size(); ++i) {
        const json::Value &rv = runsV->items[i];
        EXPECT_EQ(rv.find("workload")->asString(),
                  rep.runs[i].spec.workload);
        EXPECT_EQ(rv.find("cycles")->asNumber(),
                  static_cast<double>(rep.runs[i].result.cycles));
        const json::Value *stats = rv.find("stats");
        ASSERT_NE(stats, nullptr);
        ASSERT_TRUE(stats->isObject());
        // Spot-check a stat every run must have, bit-exact.
        ASSERT_NE(stats->find("gpu.cycles"), nullptr);
        EXPECT_EQ(stats->find("gpu.cycles")->asNumber(),
                  rep.runs[i].result.stats.get("gpu.cycles"));
    }
    const json::Value *gms = v->find("geomeans");
    ASSERT_NE(gms, nullptr);
    ASSERT_TRUE(gms->isObject());
    EXPECT_NE(gms->find("replay-queue"), nullptr);
}

TEST(SimResultJson, ParsesAndMatchesFields)
{
    harness::TraceCache cache;
    const harness::TracedWorkload &tw = cache.get("bfs");
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.numSms = 4;
    gpu::Gpu g(cfg);
    gpu::SimResult r = g.run(tw.kernel, tw.trace);

    std::string err;
    auto v = json::parse(r.toJson(), &err);
    ASSERT_NE(v, nullptr) << err;
    EXPECT_EQ(v->find("cycles")->asNumber(),
              static_cast<double>(r.cycles));
    EXPECT_EQ(v->find("instructions")->asNumber(),
              static_cast<double>(r.instructions));
    EXPECT_EQ(v->find("ipc")->asNumber(), r.ipc());
    ASSERT_NE(v->find("stats"), nullptr);
    EXPECT_EQ(v->find("stats")->members.size(),
              r.stats.scalars().size());
}

} // namespace
} // namespace gex
