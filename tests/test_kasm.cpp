/** @file Unit tests: KernelBuilder and the text assembler. */

#include <gtest/gtest.h>
#include "common/error.hpp"

#include <cstring>

#include "kasm/builder.hpp"
#include "kasm/lexer.hpp"
#include "kasm/parser.hpp"

namespace gex::kasm {
namespace {

using isa::Opcode;

TEST(Builder, ForwardLabelPatched)
{
    KernelBuilder b("t");
    auto l = b.label();
    b.bra(l);     // forward reference
    b.movi(0, 1); // skipped
    b.bind(l);
    b.exit();
    isa::Program p = b.build();
    EXPECT_EQ(p.at(0).op, Opcode::BRA);
    EXPECT_EQ(p.at(0).target, 2);
}

TEST(Builder, BackwardLabelImmediate)
{
    KernelBuilder b("t");
    auto l = b.label();
    b.bind(l);
    b.movi(0, 1);
    b.setpi(0, Cmp::LT, 0, 10);
    b.guard(0);
    b.bra(l);
    b.clearGuard();
    b.exit();
    isa::Program p = b.build();
    EXPECT_EQ(p.at(2).op, Opcode::BRA);
    EXPECT_EQ(p.at(2).target, 0);
    EXPECT_EQ(p.at(2).pred, 0);
}

TEST(Builder, GuardAppliesUntilCleared)
{
    KernelBuilder b("t");
    b.guard(1, true);
    b.movi(0, 1);
    b.clearGuard();
    b.movi(1, 2);
    b.exit();
    isa::Program p = b.build();
    EXPECT_EQ(p.at(0).pred, 1);
    EXPECT_TRUE(p.at(0).predNeg);
    EXPECT_EQ(p.at(1).pred, isa::kPredTrue);
}

TEST(Builder, RegisterCountFromMaxUsed)
{
    KernelBuilder b("t");
    b.movi(17, 0);
    b.exit();
    EXPECT_EQ(b.build().regsPerThread(), 18);
}

TEST(Builder, MinRegsOverridesMaxUsed)
{
    KernelBuilder b("t");
    b.setMinRegs(128);
    b.movi(3, 0);
    b.exit();
    EXPECT_EQ(b.build().regsPerThread(), 128);
}

TEST(Builder, ImmediateFormsSetUseImm)
{
    KernelBuilder b("t");
    b.iaddi(0, 1, 42);
    b.iadd(0, 1, 2);
    b.exit();
    isa::Program p = b.build();
    EXPECT_TRUE(p.at(0).useImm);
    EXPECT_EQ(p.at(0).imm, 42);
    EXPECT_FALSE(p.at(1).useImm);
}

TEST(Builder, MovfEncodesDoubleBits)
{
    KernelBuilder b("t");
    b.movf(0, 1.5);
    b.exit();
    isa::Program p = b.build();
    double d;
    auto bits = static_cast<std::uint64_t>(p.at(0).imm);
    std::memcpy(&d, &bits, sizeof(d));
    EXPECT_DOUBLE_EQ(d, 1.5);
}

TEST(Builder, UnboundLabelIsFatal)
{
    KernelBuilder b("t");
    auto l = b.label();
    b.bra(l);
    b.exit();
    EXPECT_THROW(b.build(), ConfigError);
}

TEST(Lexer, TokenKinds)
{
    auto toks = lex("iadd r1, r2, 5\n");
    ASSERT_GE(toks.size(), 7u);
    EXPECT_EQ(toks[0].kind, TokKind::Ident);
    EXPECT_EQ(toks[0].text, "iadd");
    EXPECT_EQ(toks[1].kind, TokKind::Ident); // r1
    EXPECT_EQ(toks[2].kind, TokKind::Comma);
    EXPECT_EQ(toks[5].kind, TokKind::Number);
    EXPECT_EQ(toks[5].ival, 5);
}

TEST(Lexer, CommentsAndHex)
{
    auto toks = lex("movi r0, 0x10 # comment\n// another\nexit\n");
    EXPECT_EQ(toks[3].ival, 16);
    bool saw_exit = false;
    for (const auto &t : toks)
        if (t.kind == TokKind::Ident && t.text == "exit")
            saw_exit = true;
    EXPECT_TRUE(saw_exit);
}

TEST(Lexer, FloatsAndNegatives)
{
    auto toks = lex("movi r0, 1.5\nmovi r1, -3\n");
    EXPECT_TRUE(toks[3].isFloat);
    EXPECT_DOUBLE_EQ(toks[3].fval, 1.5);
}

TEST(Assembler, RoundTripSimpleKernel)
{
    const char *src = R"(
.kernel vecinc
.params 2

    s2r r0, %gtid
    ldparam r1, param[0]
    ldparam r2, param[1]
    shl r3, r0, 3
    iadd r3, r3, r1
    ld.global r4, [r3]
    iadd r4, r4, 1
    isub r3, r3, r1
    iadd r3, r3, r2
    st.global [r3], r4
    exit
)";
    isa::Program p = assemble(src);
    EXPECT_EQ(p.name(), "vecinc");
    EXPECT_EQ(p.numParams(), 2);
    EXPECT_EQ(p.size(), 11u);
    EXPECT_EQ(p.at(5).op, Opcode::LD_GLOBAL);
    EXPECT_EQ(p.at(9).op, Opcode::ST_GLOBAL);
}

TEST(Assembler, LabelsAndGuards)
{
    const char *src = R"(
.kernel loopy
    movi r0, 0
loop:
    iadd r0, r0, 1
    setp.i.lt p0, r0, 10
    @p0 bra loop
    @!p1 iadd r1, r0, r0
    exit
)";
    isa::Program p = assemble(src);
    EXPECT_EQ(p.at(3).op, Opcode::BRA);
    EXPECT_EQ(p.at(3).target, 1);
    EXPECT_EQ(p.at(3).pred, 0);
    EXPECT_FALSE(p.at(3).predNeg);
    EXPECT_EQ(p.at(4).pred, 1);
    EXPECT_TRUE(p.at(4).predNeg);
}

TEST(Assembler, MemoryOperandOffsets)
{
    const char *src = R"(
.kernel mems
    ld.global r1, [r2+64]
    st.shared [r3], r1
    atom.add r4, [r2], r1
    exit
)";
    isa::Program p = assemble(src);
    EXPECT_EQ(p.at(0).imm, 64);
    EXPECT_EQ(p.at(1).op, Opcode::ST_SHARED);
    EXPECT_EQ(p.at(2).op, Opcode::ATOM_ADD);
}

TEST(Assembler, SsyJoinAndSpecialRegs)
{
    const char *src = R"(
.kernel divg
    s2r r0, %laneid
    setp.i.lt p0, r0, 16
    ssy merge
    @!p0 bra merge
    iadd r1, r0, 1
merge:
    join
    exit
)";
    isa::Program p = assemble(src);
    EXPECT_EQ(p.at(2).op, Opcode::SSY);
    EXPECT_EQ(p.at(2).target, 5);
    EXPECT_EQ(p.at(5).op, Opcode::JOIN);
}

TEST(Assembler, DirectivesApplied)
{
    const char *src = R"(
.kernel cfg
.regs 64
.shared 2048
.params 3
    ldparam r0, param[2]
    exit
)";
    isa::Program p = assemble(src);
    EXPECT_EQ(p.regsPerThread(), 64);
    EXPECT_EQ(p.sharedBytes(), 2048u);
    EXPECT_EQ(p.numParams(), 3);
}

TEST(Assembler, UnknownMnemonicIsFatal)
{
    EXPECT_THROW(assemble(".kernel x\n    frobnicate r0\n    exit\n"),
                 ConfigError);
}

} // namespace
} // namespace gex::kasm
