/**
 * @file
 * FlatMap unit tests: basic semantics, backshift-erase cluster
 * integrity, growth behavior, and a randomized differential check
 * against std::unordered_map (the container it replaced in the cache,
 * TLB and page-directory hot paths).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"

namespace gex {
namespace {

TEST(FlatMap, StartsEmpty)
{
    FlatMap<int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(0x40), nullptr);
    EXPECT_FALSE(m.contains(0x40));
    EXPECT_FALSE(m.erase(0x40));
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t> m;
    m[0x1000] = 7;
    m[0x2000] = 9;
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(0x1000), nullptr);
    EXPECT_EQ(*m.find(0x1000), 7u);
    ASSERT_NE(m.find(0x2000), nullptr);
    EXPECT_EQ(*m.find(0x2000), 9u);
    EXPECT_EQ(m.find(0x3000), nullptr);

    // operator[] on an existing key returns the same value.
    m[0x1000] = 8;
    EXPECT_EQ(*m.find(0x1000), 8u);
    EXPECT_EQ(m.size(), 2u);

    EXPECT_TRUE(m.erase(0x1000));
    EXPECT_FALSE(m.erase(0x1000));
    EXPECT_EQ(m.find(0x1000), nullptr);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ClearKeepsCapacity)
{
    FlatMap<int> m;
    for (Addr a = 0; a < 100; ++a)
        m[a * 64] = static_cast<int>(a);
    std::size_t cap = m.capacity();
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(0), nullptr);
}

TEST(FlatMap, ReserveAvoidsGrowth)
{
    FlatMap<int> m;
    m.reserve(1000);
    std::size_t cap = m.capacity();
    for (Addr a = 0; a < 1000; ++a)
        m[a] = 1;
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.size(), 1000u);
}

TEST(FlatMap, GrowthPreservesContents)
{
    FlatMap<Addr> m; // minimal initial capacity
    const int n = 10'000;
    for (int i = 0; i < n; ++i)
        m[static_cast<Addr>(i) * 0x40] = static_cast<Addr>(i);
    EXPECT_EQ(m.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const Addr *v = m.find(static_cast<Addr>(i) * 0x40);
        ASSERT_NE(v, nullptr) << "key " << i;
        EXPECT_EQ(*v, static_cast<Addr>(i));
    }
}

TEST(FlatMap, BackshiftEraseKeepsClusterReachable)
{
    // Force colliding keys by brute-force search: many keys, erase
    // every other one, and verify the survivors stay findable even
    // when their probe clusters wrapped or contained the erased slot.
    FlatMap<int> m;
    std::vector<Addr> keys;
    for (Addr a = 1; keys.size() < 500; a += 0x40)
        keys.push_back(a);
    for (Addr k : keys)
        m[k] = static_cast<int>(k);
    for (std::size_t i = 0; i < keys.size(); i += 2)
        EXPECT_TRUE(m.erase(keys[i]));
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i % 2 == 0) {
            EXPECT_EQ(m.find(keys[i]), nullptr);
        } else {
            ASSERT_NE(m.find(keys[i]), nullptr);
            EXPECT_EQ(*m.find(keys[i]), static_cast<int>(keys[i]));
        }
    }
}

TEST(FlatMap, ForEachVisitsEveryEntryOnce)
{
    FlatMap<int> m;
    for (Addr a = 0; a < 64; ++a)
        m[a * 0x1000] = 1;
    int visits = 0;
    Addr key_sum = 0;
    m.forEach([&](Addr k, const int &v) {
        visits += v;
        key_sum += k;
    });
    EXPECT_EQ(visits, 64);
    EXPECT_EQ(key_sum, 0x1000ull * (63 * 64 / 2));
}

TEST(FlatMap, ForEachMutableCanUpdateValues)
{
    FlatMap<int> m;
    m[0x10] = 1;
    m[0x20] = 2;
    m.forEach([](Addr, int &v) { v *= 10; });
    EXPECT_EQ(*m.find(0x10), 10);
    EXPECT_EQ(*m.find(0x20), 20);
}

TEST(FlatMap, EraseIfRemovesExactlyMatching)
{
    FlatMap<std::uint64_t> m;
    for (Addr a = 0; a < 100; ++a)
        m[a] = a;
    std::size_t removed = m.eraseIf(
        [](Addr, const std::uint64_t &v) { return v % 3 == 0; });
    EXPECT_EQ(removed, 34u); // 0,3,...,99
    EXPECT_EQ(m.size(), 66u);
    for (Addr a = 0; a < 100; ++a)
        EXPECT_EQ(m.contains(a), a % 3 != 0) << a;
}

TEST(FlatMap, RandomizedDifferentialAgainstUnorderedMap)
{
    // Drive FlatMap and std::unordered_map with the same operation
    // stream (insert / overwrite / erase / eraseIf / clear) over a
    // small key universe so collisions, backshifts and growth all
    // trigger, and require identical observable state throughout.
    std::mt19937_64 rng(0xC0FFEEu);
    FlatMap<std::uint64_t> fm;
    std::unordered_map<Addr, std::uint64_t> ref;
    auto rand_key = [&] { return (rng() % 997) * 0x40; };

    for (int step = 0; step < 200'000; ++step) {
        switch (rng() % 10) {
          case 0: case 1: case 2: case 3: { // insert/overwrite
            Addr k = rand_key();
            std::uint64_t v = rng();
            fm[k] = v;
            ref[k] = v;
            break;
          }
          case 4: case 5: case 6: { // erase
            Addr k = rand_key();
            EXPECT_EQ(fm.erase(k), ref.erase(k) > 0);
            break;
          }
          case 7: case 8: { // find
            Addr k = rand_key();
            auto it = ref.find(k);
            const std::uint64_t *p = fm.find(k);
            if (it == ref.end()) {
                EXPECT_EQ(p, nullptr);
            } else {
                ASSERT_NE(p, nullptr);
                EXPECT_EQ(*p, it->second);
            }
            break;
          }
          case 9: { // occasionally eraseIf or clear
            if (rng() % 50 == 0) {
                fm.clear();
                ref.clear();
            } else {
                std::uint64_t bit = rng() % 8;
                std::size_t n = fm.eraseIf(
                    [bit](Addr, const std::uint64_t &v) {
                        return (v >> bit) & 1;
                    });
                std::size_t nref = 0;
                for (auto it = ref.begin(); it != ref.end();) {
                    if ((it->second >> bit) & 1) {
                        it = ref.erase(it);
                        ++nref;
                    } else {
                        ++it;
                    }
                }
                EXPECT_EQ(n, nref);
            }
            break;
          }
        }
        EXPECT_EQ(fm.size(), ref.size());
    }

    // Full final sweep both directions.
    std::size_t seen = 0;
    fm.forEach([&](Addr k, const std::uint64_t &v) {
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(v, it->second);
        ++seen;
    });
    EXPECT_EQ(seen, ref.size());
}

} // namespace
} // namespace gex
