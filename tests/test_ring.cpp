/**
 * @file
 * Ring unit tests: FIFO semantics, inline-to-heap growth, insert and
 * lowerBound (the replay-queue operations), copy/move, and a
 * randomized differential check against std::deque (the container it
 * replaced in the SM's per-warp state).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <random>
#include <utility>

#include "common/ring.hpp"

namespace gex {
namespace {

TEST(Ring, StartsEmptyInline)
{
    Ring<std::uint32_t, 4> r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.size(), 0u);
    EXPECT_EQ(r.capacity(), 4u);
    EXPECT_FALSE(r.onHeap());
}

TEST(Ring, FifoOrder)
{
    Ring<std::uint32_t, 4> r;
    for (std::uint32_t i = 0; i < 4; ++i)
        r.push_back(i);
    EXPECT_EQ(r.front(), 0u);
    EXPECT_EQ(r.back(), 3u);
    r.pop_front();
    EXPECT_EQ(r.front(), 1u);
    r.push_back(4); // wraps within the inline buffer
    EXPECT_FALSE(r.onHeap());
    for (std::uint32_t expect = 1; expect <= 4; ++expect) {
        EXPECT_EQ(r.front(), expect);
        r.pop_front();
    }
    EXPECT_TRUE(r.empty());
}

TEST(Ring, GrowsToHeapPreservingOrder)
{
    Ring<std::uint32_t, 4> r;
    // Stagger pushes and pops so head_ is nonzero when growth happens.
    r.push_back(100);
    r.push_back(101);
    r.pop_front();
    for (std::uint32_t i = 0; i < 40; ++i)
        r.push_back(i);
    EXPECT_TRUE(r.onHeap());
    EXPECT_EQ(r.size(), 41u);
    EXPECT_EQ(r.front(), 101u);
    EXPECT_EQ(r[1], 0u);
    EXPECT_EQ(r.back(), 39u);
}

TEST(Ring, PopBack)
{
    Ring<int, 4> r;
    r.push_back(1);
    r.push_back(2);
    r.pop_back();
    EXPECT_EQ(r.back(), 1);
    EXPECT_EQ(r.size(), 1u);
}

TEST(Ring, ClearKeepsStorage)
{
    Ring<int, 4> r;
    for (int i = 0; i < 100; ++i)
        r.push_back(i);
    EXPECT_TRUE(r.onHeap());
    std::size_t cap = r.capacity();
    r.clear();
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.capacity(), cap);
}

TEST(Ring, InsertShiftsTail)
{
    Ring<std::uint32_t, 4> r;
    r.push_back(10);
    r.push_back(30);
    r.insert(1, 20);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0], 10u);
    EXPECT_EQ(r[1], 20u);
    EXPECT_EQ(r[2], 30u);
    r.insert(0, 5);
    r.insert(4, 40);
    EXPECT_EQ(r[0], 5u);
    EXPECT_EQ(r.back(), 40u);
}

TEST(Ring, LowerBoundOnSortedContents)
{
    Ring<std::uint32_t, 4> r;
    for (std::uint32_t v : {10u, 20u, 30u, 40u, 50u})
        r.push_back(v);
    EXPECT_EQ(r.lowerBound(5), 0u);
    EXPECT_EQ(r.lowerBound(10), 0u);
    EXPECT_EQ(r.lowerBound(11), 1u);
    EXPECT_EQ(r.lowerBound(30), 2u);
    EXPECT_EQ(r.lowerBound(50), 4u);
    EXPECT_EQ(r.lowerBound(51), 5u);
}

TEST(Ring, SortedInsertViaLowerBound)
{
    // The replay-queue pattern: insert each value at its lowerBound,
    // contents stay sorted.
    Ring<std::uint32_t, 4> r;
    std::mt19937 rng(42);
    for (int i = 0; i < 200; ++i) {
        std::uint32_t v = rng() % 1000;
        std::size_t pos = r.lowerBound(v);
        r.insert(pos, v);
    }
    for (std::size_t i = 1; i < r.size(); ++i)
        EXPECT_LE(r[i - 1], r[i]);
}

TEST(Ring, CopyAndMove)
{
    Ring<std::uint32_t, 4> a;
    for (std::uint32_t i = 0; i < 10; ++i)
        a.push_back(i);
    a.pop_front();

    Ring<std::uint32_t, 4> b(a); // copy keeps contents independent
    ASSERT_EQ(b.size(), 9u);
    for (std::uint32_t i = 0; i < 9; ++i)
        EXPECT_EQ(b[i], i + 1);
    a.pop_front();
    EXPECT_EQ(b.front(), 1u);

    Ring<std::uint32_t, 4> c(std::move(b)); // move steals the heap buffer
    ASSERT_EQ(c.size(), 9u);
    EXPECT_EQ(c.front(), 1u);
    EXPECT_TRUE(b.empty()); // NOLINT(bugprone-use-after-move): spec'd empty

    Ring<std::uint32_t, 4> d;
    d.push_back(99);
    d = c; // copy-assign over existing contents
    ASSERT_EQ(d.size(), 9u);
    EXPECT_EQ(d.front(), 1u);

    Ring<std::uint32_t, 4> e;
    e = std::move(c);
    ASSERT_EQ(e.size(), 9u);
    EXPECT_EQ(e.back(), 9u);

    // Inline-path move: small ring stays inline after the move.
    Ring<std::uint32_t, 4> f;
    f.push_back(7);
    Ring<std::uint32_t, 4> g(std::move(f));
    EXPECT_FALSE(g.onHeap());
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g.front(), 7u);
}

TEST(Ring, RandomizedDifferentialAgainstDeque)
{
    // Same operation stream against Ring and std::deque; observable
    // state must match at every step. Mirrors how the SM uses the
    // ring: FIFO push/pop with occasional sorted insert and clear.
    std::mt19937_64 rng(0xBADC0DEu);
    Ring<std::uint32_t, 4> r;
    std::deque<std::uint32_t> ref;

    for (int step = 0; step < 100'000; ++step) {
        switch (rng() % 8) {
          case 0: case 1: case 2: { // push_back
            auto v = static_cast<std::uint32_t>(rng());
            r.push_back(v);
            ref.push_back(v);
            break;
          }
          case 3: case 4: { // pop_front
            if (!ref.empty()) {
                EXPECT_EQ(r.front(), ref.front());
                r.pop_front();
                ref.pop_front();
            }
            break;
          }
          case 5: { // pop_back
            if (!ref.empty()) {
                EXPECT_EQ(r.back(), ref.back());
                r.pop_back();
                ref.pop_back();
            }
            break;
          }
          case 6: { // insert at random position
            auto v = static_cast<std::uint32_t>(rng());
            std::size_t pos = ref.empty() ? 0 : rng() % (ref.size() + 1);
            r.insert(pos, v);
            ref.insert(ref.begin() + static_cast<std::ptrdiff_t>(pos), v);
            break;
          }
          case 7: { // rare clear, occasional copy round-trip
            if (rng() % 100 == 0) {
                r.clear();
                ref.clear();
            } else if (rng() % 100 == 1) {
                Ring<std::uint32_t, 4> copy(r);
                r = copy;
            }
            break;
          }
        }
        ASSERT_EQ(r.size(), ref.size());
        if (!ref.empty()) {
            EXPECT_EQ(r.front(), ref.front());
            EXPECT_EQ(r.back(), ref.back());
            std::size_t probe = rng() % ref.size();
            EXPECT_EQ(r[probe], ref[probe]);
        }
    }
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(r[i], ref[i]);
}

} // namespace
} // namespace gex
