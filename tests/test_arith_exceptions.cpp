/**
 * @file
 * Tests for the arithmetic-exception extension (paper sections 2.2,
 * 3.1, 3.2): divide-by-zero and friends detected functionally, treated
 * as fetch barriers / late-release instructions by the schemes, and
 * handled by a GPU trap routine under preemptible pipelines.
 */

#include <gtest/gtest.h>

#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "kasm/builder.hpp"

namespace gex {
namespace {

using kasm::KernelBuilder;
using kasm::SpecialReg;

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

/** One warp; lane 0 divides by zero when @p raise is set. */
void
buildDivider(Built &bt, bool raise)
{
    KernelBuilder b("div0");
    b.s2r(0, SpecialReg::LaneId);
    b.i2f(1, 0);            // lane id as double (0.0 for lane 0)
    if (!raise)
        b.faddi(1, 1, 1.0); // shift away from zero
    b.movf(2, 42.0);
    b.fdiv(3, 2, 1);        // lane 0 divides by zero when raising
    b.fadd(4, 3, 3);
    b.exit();
    bt.kernel.program = b.build();
    bt.kernel.grid = {4, 1, 1};
    bt.kernel.block = {32, 1, 1};
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);
}

TEST(ArithExceptions, TraitsCoverTheRightOpcodes)
{
    EXPECT_TRUE(isa::canRaiseArith(isa::Opcode::FDIV));
    EXPECT_TRUE(isa::canRaiseArith(isa::Opcode::FRCP));
    EXPECT_TRUE(isa::canRaiseArith(isa::Opcode::FRSQ));
    EXPECT_TRUE(isa::canRaiseArith(isa::Opcode::FSQRT));
    EXPECT_TRUE(isa::canRaiseArith(isa::Opcode::FLOG2));
    EXPECT_FALSE(isa::canRaiseArith(isa::Opcode::FADD));
    EXPECT_FALSE(isa::canRaiseArith(isa::Opcode::FSIN));
    EXPECT_FALSE(isa::canRaiseArith(isa::Opcode::LD_GLOBAL));
}

TEST(ArithExceptions, FunctionalDetectionFlagsTrace)
{
    Built raising, clean;
    buildDivider(raising, true);
    buildDivider(clean, false);
    auto count_flags = [](const trace::KernelTrace &kt) {
        int n = 0;
        for (const auto &blk : kt.blocks)
            for (const auto &w : blk.warps)
                for (const auto &ti : w.insts)
                    if (ti.arithFault)
                        ++n;
        return n;
    };
    EXPECT_EQ(count_flags(raising.trace), 4); // one fdiv per block
    EXPECT_EQ(count_flags(clean.trace), 0);
}

TEST(ArithExceptions, DetectionCoversEachOpcode)
{
    // frcp(0), frsq(-1), fsqrt(-1), flog2(0) all flag; fsin never.
    KernelBuilder b("ops");
    b.movi(0, 0);            // 0.0 bits
    b.movf(1, -1.0);
    b.frcp(2, 0);
    b.frsq(3, 1);
    b.fsqrt(4, 1);
    b.flog2(5, 0);
    b.fsin(6, 1);
    b.exit();
    Built bt;
    bt.kernel.program = b.build();
    bt.kernel.grid = {1, 1, 1};
    bt.kernel.block = {32, 1, 1};
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);
    const auto &insts = bt.trace.blocks[0].warps[0].insts;
    EXPECT_TRUE(insts[2].arithFault);  // frcp
    EXPECT_TRUE(insts[3].arithFault);  // frsq
    EXPECT_TRUE(insts[4].arithFault);  // fsqrt
    EXPECT_TRUE(insts[5].arithFault);  // flog2
    EXPECT_FALSE(insts[6].arithFault); // fsin
}

gpu::SimResult
runArith(const Built &bt, gpu::Scheme s, bool enabled)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = s;
    cfg.arithExceptions = enabled;
    gpu::Gpu g(cfg);
    return g.run(bt.kernel, bt.trace);
}

TEST(ArithExceptions, DisabledByDefaultNoTimingEffect)
{
    Built bt;
    buildDivider(bt, true);
    auto r = runArith(bt, gpu::Scheme::ReplayQueue, false);
    EXPECT_EQ(r.stats.get("sm.traps_handled"), 0.0);
    EXPECT_EQ(r.instructions, bt.trace.dynamicInsts());
}

TEST(ArithExceptions, PreemptibleSchemesRunTrapHandler)
{
    Built bt;
    buildDivider(bt, true);
    for (auto s : {gpu::Scheme::WarpDisableCommit,
                   gpu::Scheme::WarpDisableLastCheck,
                   gpu::Scheme::ReplayQueue, gpu::Scheme::OperandLog}) {
        auto r = runArith(bt, s, true);
        EXPECT_EQ(r.stats.get("sm.traps_handled"), 4.0)
            << gpu::schemeName(s);
        EXPECT_EQ(r.instructions, bt.trace.dynamicInsts());
    }
}

TEST(ArithExceptions, BaselineOnlyReports)
{
    Built bt;
    buildDivider(bt, true);
    auto r = runArith(bt, gpu::Scheme::StallOnFault, true);
    EXPECT_EQ(r.stats.get("sm.traps_handled"), 0.0);
    EXPECT_EQ(r.stats.get("sm.arith_reported_only"), 4.0);
}

TEST(ArithExceptions, TrapCostsTime)
{
    Built bt;
    buildDivider(bt, true);
    auto off = runArith(bt, gpu::Scheme::ReplayQueue, false);
    auto on = runArith(bt, gpu::Scheme::ReplayQueue, true);
    // Each warp pays the trap handler latency.
    EXPECT_GE(on.cycles, off.cycles + 400);
}

TEST(ArithExceptions, CleanRunUnaffectedExceptBarriers)
{
    Built bt;
    buildDivider(bt, false);
    auto off = runArith(bt, gpu::Scheme::ReplayQueue, false);
    auto on = runArith(bt, gpu::Scheme::ReplayQueue, true);
    EXPECT_EQ(on.stats.get("sm.traps_handled"), 0.0);
    // The RQ extension may delay WAR-dependent neighbours slightly but
    // never triggers traps on a clean run.
    EXPECT_LT(on.cycles, off.cycles + off.cycles / 4 + 64);
}

TEST(ArithExceptions, WarpDisableTreatsArithAsBarrier)
{
    // A chain of independent fdivs: with arithExceptions on, wd-commit
    // serializes them (fetch barrier), costing cycles even when
    // nothing raises.
    KernelBuilder b("chain");
    b.movf(1, 2.0);
    for (int i = 0; i < 16; ++i)
        b.fdiv(static_cast<kasm::Reg>(2 + i), 1, 1);
    b.exit();
    Built bt;
    bt.kernel.program = b.build();
    bt.kernel.grid = {1, 1, 1};
    bt.kernel.block = {32, 1, 1};
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);

    auto off = runArith(bt, gpu::Scheme::WarpDisableCommit, false);
    auto on = runArith(bt, gpu::Scheme::WarpDisableCommit, true);
    EXPECT_GT(on.cycles, off.cycles + 100);
}

} // namespace
} // namespace gex
