/** @file Unit tests: scoreboard hazard tracking. */

#include <gtest/gtest.h>

#include "sm/scoreboard.hpp"

namespace gex::sm {
namespace {

TEST(Scoreboard, UntrackedNamesAlwaysFree)
{
    Scoreboard sb;
    sb.init(4);
    EXPECT_EQ(Scoreboard::regName(isa::kRegZero), -1);
    EXPECT_EQ(Scoreboard::predName(isa::kPredTrue), -1);
    EXPECT_TRUE(sb.canRead(0, -1));
    EXPECT_TRUE(sb.canWrite(0, -1));
}

TEST(Scoreboard, RawHazard)
{
    Scoreboard sb;
    sb.init(2);
    int r5 = Scoreboard::regName(5);
    sb.acquireWrite(0, r5);
    EXPECT_FALSE(sb.canRead(0, r5)); // RAW
    EXPECT_FALSE(sb.canWrite(0, r5)); // WAW
    sb.releaseWrite(0, r5);
    EXPECT_TRUE(sb.canRead(0, r5));
    EXPECT_TRUE(sb.canWrite(0, r5));
}

TEST(Scoreboard, WarHazardViaSourceHold)
{
    Scoreboard sb;
    sb.init(2);
    int r3 = Scoreboard::regName(3);
    sb.acquireSource(0, r3);
    EXPECT_TRUE(sb.canRead(0, r3));   // reads still fine
    EXPECT_FALSE(sb.canWrite(0, r3)); // WAR blocks writes
    sb.releaseSource(0, r3);
    EXPECT_TRUE(sb.canWrite(0, r3));
}

TEST(Scoreboard, CountsNest)
{
    Scoreboard sb;
    sb.init(1);
    int r = Scoreboard::regName(1);
    sb.acquireSource(0, r);
    sb.acquireSource(0, r);
    sb.releaseSource(0, r);
    EXPECT_FALSE(sb.canWrite(0, r)); // one hold remains
    sb.releaseSource(0, r);
    EXPECT_TRUE(sb.canWrite(0, r));
}

TEST(Scoreboard, WarpsIndependent)
{
    Scoreboard sb;
    sb.init(3);
    int r = Scoreboard::regName(7);
    sb.acquireWrite(1, r);
    EXPECT_TRUE(sb.canRead(0, r));
    EXPECT_FALSE(sb.canRead(1, r));
    EXPECT_TRUE(sb.canRead(2, r));
}

TEST(Scoreboard, PredicateNamespaceSeparate)
{
    Scoreboard sb;
    sb.init(1);
    int p0 = Scoreboard::predName(0);
    int r0 = Scoreboard::regName(0);
    EXPECT_NE(p0, r0);
    sb.acquireWrite(0, p0);
    EXPECT_TRUE(sb.canRead(0, r0));
    EXPECT_FALSE(sb.canRead(0, p0));
    sb.releaseWrite(0, p0);
}

TEST(Scoreboard, CleanDetectsLeaks)
{
    Scoreboard sb;
    sb.init(2);
    EXPECT_TRUE(sb.clean(0));
    sb.acquireSource(0, Scoreboard::regName(9));
    EXPECT_FALSE(sb.clean(0));
    EXPECT_TRUE(sb.clean(1));
    sb.releaseSource(0, Scoreboard::regName(9));
    EXPECT_TRUE(sb.clean(0));
}

TEST(ScoreboardDeath, ReleaseUnderflowPanics)
{
    Scoreboard sb;
    sb.init(1);
    EXPECT_DEATH(sb.releaseWrite(0, Scoreboard::regName(2)), "underflow");
}

} // namespace
} // namespace gex::sm
