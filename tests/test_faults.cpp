/**
 * @file
 * Integration tests: page fault handling through the full timing
 * stack — baseline stalling vs preemptible squash-and-replay, fault
 * merging at region granularity, and demand-paging end-to-end.
 */

#include <gtest/gtest.h>

#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "kasm/builder.hpp"

namespace gex {
namespace {

using kasm::KernelBuilder;
using kasm::SpecialReg;

constexpr Addr kIn = 1 << 20;
constexpr Addr kOut = 2 << 20;

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

/** Streaming kernel over @p regions x 64 KB of input. */
void
buildReader(Built &bt, std::uint32_t blocks)
{
    std::uint64_t n = static_cast<std::uint64_t>(blocks) * 256;
    for (std::uint64_t i = 0; i < n; ++i)
        bt.mem.write64(kIn + i * 8, i);
    KernelBuilder b("reader");
    b.setNumParams(2);
    b.s2r(0, SpecialReg::GlobalTid);
    b.ldparam(1, 0);
    b.ldparam(2, 1);
    b.shli(3, 0, 3);
    b.iadd(1, 1, 3);
    b.ldGlobal(4, 1);
    b.iaddi(4, 4, 1);
    b.iadd(2, 2, 3);
    b.stGlobal(2, 0, 4);
    b.exit();
    bt.kernel.program = b.build();
    bt.kernel.grid = {blocks, 1, 1};
    bt.kernel.block = {256, 1, 1};
    bt.kernel.params = {kIn, kOut};
    bt.kernel.buffers.push_back(
        {"in", kIn, n * 8, func::BufferKind::Input});
    bt.kernel.buffers.push_back(
        {"out", kOut, n * 8, func::BufferKind::Output});
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);
}

gpu::SimResult
runWith(const Built &bt, gpu::Scheme s, const vm::VmPolicy &policy,
        vm::HostLinkConfig link = vm::HostLinkConfig::nvlink())
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = s;
    cfg.hostLink = link;
    gpu::Gpu g(cfg);
    return g.run(bt.kernel, bt.trace, policy);
}

TEST(Faults, NoFaultsWhenAllResident)
{
    Built bt;
    buildReader(bt, 8);
    auto r = runWith(bt, gpu::Scheme::ReplayQueue,
                     vm::VmPolicy::allResident());
    EXPECT_EQ(r.stats.get("mmu.faults"), 0.0);
    EXPECT_EQ(r.stats.get("sm.faults_reacted"), 0.0);
}

TEST(Faults, DemandPagingMigratesEachInputRegionOnce)
{
    Built bt;
    buildReader(bt, 32); // input = 64 KB = 1 region; out = 1 region
    auto r = runWith(bt, gpu::Scheme::ReplayQueue,
                     vm::VmPolicy::demandPaging());
    // One migration (input region) + one CPU allocation (output).
    EXPECT_EQ(r.stats.get("mmu.migration_faults"), 1.0);
    EXPECT_EQ(r.stats.get("mmu.cpu_alloc_faults"), 1.0);
    EXPECT_EQ(r.stats.get("hostlink.bytes_migrated"), 65536.0);
    EXPECT_EQ(r.instructions, bt.trace.dynamicInsts());
}

TEST(Faults, FaultsCostTime)
{
    Built bt;
    buildReader(bt, 8);
    auto clean = runWith(bt, gpu::Scheme::ReplayQueue,
                         vm::VmPolicy::allResident());
    auto paged = runWith(bt, gpu::Scheme::ReplayQueue,
                         vm::VmPolicy::demandPaging());
    // A migration costs ~12k cycles; the paged run must be much
    // slower than the clean one.
    EXPECT_GT(paged.cycles, clean.cycles + 10000);
}

TEST(Faults, BaselineStallAndPreemptibleBothComplete)
{
    Built bt;
    buildReader(bt, 8);
    for (auto s : {gpu::Scheme::StallOnFault, gpu::Scheme::WarpDisableCommit,
                   gpu::Scheme::WarpDisableLastCheck,
                   gpu::Scheme::ReplayQueue, gpu::Scheme::OperandLog}) {
        auto r = runWith(bt, s, vm::VmPolicy::demandPaging());
        EXPECT_EQ(r.instructions, bt.trace.dynamicInsts())
            << gpu::schemeName(s);
    }
}

TEST(Faults, BaselineDoesNotReact)
{
    Built bt;
    buildReader(bt, 8);
    auto r = runWith(bt, gpu::Scheme::StallOnFault,
                     vm::VmPolicy::demandPaging());
    // Stall-on-fault parks the request; no squash/replay happens.
    EXPECT_EQ(r.stats.get("sm.faults_reacted"), 0.0);
    EXPECT_GT(r.stats.get("mmu.faults"), 0.0);
}

TEST(Faults, PreemptibleSchemesSquashAndReplay)
{
    Built bt;
    buildReader(bt, 8);
    auto r = runWith(bt, gpu::Scheme::ReplayQueue,
                     vm::VmPolicy::demandPaging());
    EXPECT_GT(r.stats.get("sm.faults_reacted"), 0.0);
    // Replayed instructions commit exactly once.
    EXPECT_EQ(r.instructions, bt.trace.dynamicInsts());
}

TEST(Faults, PcieSlowerThanNvlink)
{
    Built bt;
    buildReader(bt, 32);
    auto nv = runWith(bt, gpu::Scheme::ReplayQueue,
                      vm::VmPolicy::demandPaging(),
                      vm::HostLinkConfig::nvlink());
    auto pc = runWith(bt, gpu::Scheme::ReplayQueue,
                      vm::VmPolicy::demandPaging(),
                      vm::HostLinkConfig::pcie());
    EXPECT_GT(pc.cycles, nv.cycles);
}

TEST(Faults, OutputFaultPolicyOnlyTouchesOutputs)
{
    Built bt;
    buildReader(bt, 32);
    auto r = runWith(bt, gpu::Scheme::ReplayQueue,
                     vm::VmPolicy::outputFaults(false));
    EXPECT_EQ(r.stats.get("mmu.migration_faults"), 0.0);
    EXPECT_GT(r.stats.get("mmu.cpu_alloc_faults"), 0.0);
}

TEST(Faults, LocalHandlingUsesGpuHandler)
{
    Built bt;
    buildReader(bt, 32);
    auto r = runWith(bt, gpu::Scheme::ReplayQueue,
                     vm::VmPolicy::outputFaults(true));
    EXPECT_GT(r.stats.get("mmu.gpu_alloc_faults"), 0.0);
    EXPECT_EQ(r.stats.get("mmu.cpu_alloc_faults"), 0.0);
    EXPECT_EQ(r.stats.get("hostlink.faults"), 0.0);
    EXPECT_GT(r.stats.get("sm.system_mode_cycles"), 0.0);
}

TEST(Faults, MultiRegionInputFaultsSpread)
{
    Built bt;
    buildReader(bt, 64); // 16384 threads -> 128 KB in = 2 regions
    auto r = runWith(bt, gpu::Scheme::ReplayQueue,
                     vm::VmPolicy::demandPaging());
    EXPECT_EQ(r.stats.get("mmu.migration_faults"), 2.0);
}

} // namespace
} // namespace gex
