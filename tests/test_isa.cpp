/** @file Unit tests: ISA opcodes, traits, instructions, programs. */

#include <gtest/gtest.h>
#include "common/error.hpp"

#include "isa/instruction.hpp"
#include "isa/opcodes.hpp"
#include "isa/program.hpp"
#include "kasm/builder.hpp"

namespace gex::isa {
namespace {

TEST(Opcodes, TraitsTableIsTotal)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        const OpTraits &t = traits(static_cast<Opcode>(i));
        EXPECT_FALSE(t.name.empty());
    }
}

TEST(Opcodes, NameRoundTrip)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        auto op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromName(opcodeName(op)), op)
            << "opcode " << opcodeName(op);
    }
    EXPECT_EQ(opcodeFromName("not-an-opcode"), Opcode::NumOpcodes);
}

TEST(Opcodes, GlobalMemClassification)
{
    EXPECT_TRUE(traits(Opcode::LD_GLOBAL).isGlobalMem);
    EXPECT_TRUE(traits(Opcode::ST_GLOBAL).isGlobalMem);
    EXPECT_TRUE(traits(Opcode::ATOM_ADD).isGlobalMem);
    EXPECT_TRUE(traits(Opcode::ALLOC).isGlobalMem);
    EXPECT_FALSE(traits(Opcode::LD_SHARED).isGlobalMem);
    EXPECT_FALSE(traits(Opcode::IADD).isGlobalMem);
    EXPECT_FALSE(traits(Opcode::BRA).isGlobalMem);
}

TEST(Opcodes, ControlClassification)
{
    for (Opcode op : {Opcode::BRA, Opcode::SSY, Opcode::JOIN, Opcode::BAR,
                      Opcode::EXIT, Opcode::MEMBAR})
        EXPECT_TRUE(traits(op).isControl) << opcodeName(op);
    EXPECT_FALSE(traits(Opcode::LD_GLOBAL).isControl);
}

TEST(Opcodes, UnitAssignment)
{
    EXPECT_EQ(traits(Opcode::FFMA).unit, Unit::Math);
    EXPECT_EQ(traits(Opcode::FSIN).unit, Unit::Sfu);
    EXPECT_EQ(traits(Opcode::BRA).unit, Unit::Branch);
    EXPECT_EQ(traits(Opcode::LD_GLOBAL).unit, Unit::LdSt);
    EXPECT_EQ(traits(Opcode::LD_SHARED).unit, Unit::Shared);
    EXPECT_EQ(traits(Opcode::NOP).unit, Unit::None);
}

TEST(Instruction, WritesRegHonoursRZ)
{
    Instruction in;
    in.op = Opcode::IADD;
    in.dst = 5;
    EXPECT_TRUE(in.writesReg());
    in.dst = kRegZero;
    EXPECT_FALSE(in.writesReg());
    in.op = Opcode::ST_GLOBAL;
    EXPECT_FALSE(in.writesReg()); // stores have no dst write
}

TEST(Instruction, DisassemblyContainsOperands)
{
    Instruction in;
    in.op = Opcode::LD_GLOBAL;
    in.dst = 3;
    in.srcs[0] = 7;
    in.imm = 16;
    std::string s = in.toString();
    EXPECT_NE(s.find("ld.global"), std::string::npos);
    EXPECT_NE(s.find("r3"), std::string::npos);
    EXPECT_NE(s.find("r7"), std::string::npos);
    EXPECT_NE(s.find("+16"), std::string::npos);
}

TEST(Instruction, GuardedDisassembly)
{
    Instruction in;
    in.op = Opcode::BRA;
    in.target = 4;
    in.pred = 2;
    in.predNeg = true;
    std::string s = in.toString();
    EXPECT_NE(s.find("@!p2"), std::string::npos);
}

TEST(SpecialRegs, NameRoundTrip)
{
    for (int i = 0; i < static_cast<int>(SpecialReg::NumSpecialRegs);
         ++i) {
        auto r = static_cast<SpecialReg>(i);
        EXPECT_EQ(specialRegFromName(specialRegName(r)), r);
    }
    EXPECT_EQ(specialRegFromName("%nope"), SpecialReg::NumSpecialRegs);
}

TEST(Program, ValidateAcceptsMinimal)
{
    kasm::KernelBuilder b("t");
    b.movi(0, 1);
    b.exit();
    Program p = b.build();
    EXPECT_EQ(p.size(), 2u);
    EXPECT_EQ(p.regsPerThread(), 1);
}

TEST(Program, ValidateDeathOnFallOffEnd)
{
    std::vector<Instruction> insts(1);
    insts[0].op = Opcode::IADD;
    insts[0].dst = 0;
    Program p("bad", insts, 4, 0, 0);
    EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Program, ValidateDeathOnBadTarget)
{
    std::vector<Instruction> insts(2);
    insts[0].op = Opcode::BRA;
    insts[0].target = 99;
    insts[1].op = Opcode::EXIT;
    Program p("bad", insts, 4, 0, 0);
    EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Program, ValidateDeathOnRegOutOfRange)
{
    std::vector<Instruction> insts(2);
    insts[0].op = Opcode::IADD;
    insts[0].dst = 30; // >= regsPerThread (4)
    insts[1].op = Opcode::EXIT;
    Program p("bad", insts, 4, 0, 0);
    EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Program, DisassembleListsAllInstructions)
{
    kasm::KernelBuilder b("t");
    b.movi(0, 42);
    b.iaddi(1, 0, 1);
    b.exit();
    Program p = b.build();
    std::string d = p.disassemble();
    EXPECT_NE(d.find("movi"), std::string::npos);
    EXPECT_NE(d.find("exit"), std::string::npos);
    EXPECT_NE(d.find("kernel t"), std::string::npos);
}

} // namespace
} // namespace gex::isa
