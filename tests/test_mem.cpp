/** @file Unit tests: timestamp ports, bandwidth pipes, caches, DRAM. */

#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/port.hpp"

namespace gex::mem {
namespace {

TEST(Port, SerializesSingleSlot)
{
    Port p(1);
    EXPECT_EQ(p.reserve(10), 10u);
    EXPECT_EQ(p.reserve(10), 11u);
    EXPECT_EQ(p.reserve(10), 12u);
    EXPECT_EQ(p.reserve(20), 20u);
}

TEST(Port, MultipleSlotsPerCycle)
{
    Port p(2);
    EXPECT_EQ(p.reserve(5), 5u);
    EXPECT_EQ(p.reserve(5), 5u);
    EXPECT_EQ(p.reserve(5), 6u);
}

TEST(Port, HoldCyclesModelOccupancy)
{
    Port p(2, 500); // two page walkers, 500 cycles each
    EXPECT_EQ(p.reserve(0), 0u);
    EXPECT_EQ(p.reserve(0), 0u);
    EXPECT_EQ(p.reserve(0), 500u); // both busy until 500
    EXPECT_EQ(p.reserve(0), 500u);
    EXPECT_EQ(p.reserve(0), 1000u);
}

TEST(BandwidthPipe, SubCycleAccumulation)
{
    BandwidthPipe p(256.0); // 2 lines per cycle
    EXPECT_EQ(p.transfer(0, 128), 1u);
    EXPECT_EQ(p.transfer(0, 128), 1u);
    EXPECT_EQ(p.transfer(0, 128), 2u);
    EXPECT_EQ(p.totalBytes(), 384u);
}

TEST(BandwidthPipe, LargeTransferOccupies)
{
    BandwidthPipe p(32.0);
    // 64 KB at 32 B/cycle = 2048 cycles.
    EXPECT_EQ(p.transfer(100, 64 * 1024), 100u + 2048u);
    // Next transfer queues behind it.
    EXPECT_EQ(p.transfer(0, 32), 2149u);
}

TEST(Dram, LatencyPlusBandwidth)
{
    Dram d(256.0, 200);
    Cycle t = d.readLine(0);
    EXPECT_EQ(t, 201u);
    EXPECT_EQ(d.reads(), 1u);
    d.writeLine(0);
    EXPECT_EQ(d.writes(), 1u);
}

class CacheTest : public ::testing::Test
{
  protected:
    CacheConfig
    smallCfg()
    {
        CacheConfig c;
        c.name = "t";
        c.sizeBytes = 1024; // 8 lines
        c.ways = 2;         // 4 sets
        c.latency = 10;
        c.mshrs = 4;
        return c;
    }

    Cache::FetchFn
    fixedFetch(Cycle lat = 100)
    {
        return [lat, this](Addr, Cycle t) {
            ++fetches_;
            return t + lat;
        };
    }

    int fetches_ = 0;
};

TEST_F(CacheTest, HitAfterMiss)
{
    Cache c(smallCfg());
    Cycle t1 = c.load(0, 0, fixedFetch());
    EXPECT_EQ(t1, 110u); // 10 lookup + 100 below
    EXPECT_EQ(c.misses(), 1u);
    Cycle t2 = c.load(0, 200, fixedFetch());
    EXPECT_EQ(t2, 210u); // hit: 10 cycles
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(fetches_, 1);
}

TEST_F(CacheTest, MshrMergesSameLine)
{
    Cache c(smallCfg());
    Cycle t1 = c.load(128, 0, fixedFetch());
    Cycle t2 = c.load(128, 1, fixedFetch());
    EXPECT_EQ(t2, t1); // merged into the outstanding miss
    EXPECT_EQ(c.mshrMerges(), 1u);
    EXPECT_EQ(fetches_, 1);
}

TEST_F(CacheTest, LruEviction)
{
    Cache c(smallCfg());
    // Three lines mapping to the same set (4 sets => stride 512).
    c.load(0, 0, fixedFetch());
    c.load(512, 1000, fixedFetch());
    c.load(1024, 2000, fixedFetch()); // evicts line 0
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(512));
    EXPECT_TRUE(c.contains(1024));
}

TEST_F(CacheTest, MshrExhaustionBackPressure)
{
    Cache c(smallCfg()); // 4 MSHRs
    Cycle last = 0;
    for (int i = 0; i < 4; ++i)
        last = c.load(static_cast<Addr>(i) * 128, 0, fixedFetch(1000));
    // Fifth distinct miss at t=4 must wait for an MSHR.
    Cycle t5 = c.load(5 * 128, 4, fixedFetch(1000));
    EXPECT_GT(t5, last);
}

TEST_F(CacheTest, WriteThroughNoAllocate)
{
    Cache c(smallCfg());
    bool hit = true;
    c.store(256, 0, &hit);
    EXPECT_FALSE(hit);
    EXPECT_FALSE(c.contains(256)); // no allocation on store miss
}

TEST_F(CacheTest, WriteAllocateAndDirtyWriteback)
{
    CacheConfig cfg = smallCfg();
    cfg.writeAllocate = true;
    Cache c(cfg);
    int writebacks = 0;
    c.setWriteback([&](Addr, Cycle) { ++writebacks; });

    bool hit = true;
    c.store(0, 0, &hit);
    EXPECT_FALSE(hit);
    EXPECT_TRUE(c.contains(0)); // allocated dirty
    c.store(0, 10, &hit);
    EXPECT_TRUE(hit);

    // Fill the set and evict the dirty line.
    c.store(512, 20);
    c.store(1024, 30); // evicts line 0 (dirty) -> writeback
    EXPECT_EQ(writebacks, 1);
    EXPECT_FALSE(c.contains(0));

    // Evicting the remaining dirty lines writes back too; clean load
    // fills do not.
    c.load(1536, 40, fixedFetch());
    EXPECT_EQ(writebacks, 2);
}

TEST_F(CacheTest, FlushClearsTags)
{
    Cache c(smallCfg());
    c.load(0, 0, fixedFetch());
    EXPECT_TRUE(c.contains(0));
    c.flush();
    EXPECT_FALSE(c.contains(0));
}

TEST_F(CacheTest, StatsCollected)
{
    Cache c(smallCfg());
    c.load(0, 0, fixedFetch());
    c.load(0, 500, fixedFetch());
    c.store(0, 600);
    StatSet s;
    c.collectStats(s);
    EXPECT_DOUBLE_EQ(s.get("t.hits"), 1.0);
    EXPECT_DOUBLE_EQ(s.get("t.misses"), 1.0);
    EXPECT_DOUBLE_EQ(s.get("t.stores"), 1.0);
}

} // namespace
} // namespace gex::mem
