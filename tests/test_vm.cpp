/** @file Unit tests: page directory, host link, MMU fault routing. */

#include <gtest/gtest.h>

#include "func/kernel.hpp"
#include "vm/fill_unit.hpp"
#include "vm/gpu_fault_handler.hpp"
#include "vm/host_link.hpp"
#include "vm/memory_manager.hpp"
#include "vm/page_table.hpp"

namespace gex::vm {
namespace {

TEST(PageDirectory, DefaultsToResident)
{
    PageDirectory d;
    EXPECT_EQ(d.stateAt(0x123456, 0), RegionState::GpuResident);
}

TEST(PageDirectory, SetRangeCoversPartialRegions)
{
    PageDirectory d;
    // 100 KB starting mid-region: regions 1 and 2 (64 KB regions).
    d.setRange(70 * 1024, 100 * 1024, RegionState::CpuOwned);
    EXPECT_EQ(d.stateAt(70 * 1024, 0), RegionState::CpuOwned);
    EXPECT_EQ(d.stateAt(169 * 1024, 0), RegionState::CpuOwned);
    EXPECT_EQ(d.stateAt(10 * 1024, 0), RegionState::GpuResident);
    EXPECT_EQ(d.stateAt(200 * 1024, 0), RegionState::GpuResident);
}

TEST(PageDirectory, PendingResolvesOverTime)
{
    PageDirectory d;
    d.setRange(0, 64 * 1024, RegionState::Untouched);
    d.beginPending(100, 5000);
    EXPECT_EQ(d.stateAt(100, 4999), RegionState::Pending);
    EXPECT_EQ(d.pendingReadyAt(100), 5000u);
    EXPECT_EQ(d.stateAt(100, 5000), RegionState::GpuResident);
    // Same region, different page.
    EXPECT_EQ(d.stateAt(60 * 1024, 6000), RegionState::GpuResident);
}

TEST(HostLink, IsolatedCostsMatchPaper)
{
    HostLink nv(HostLinkConfig::nvlink());
    HostLink pc(HostLinkConfig::pcie());
    // Paper section 5.3: ~12/10 us NVLink, ~25/12 us PCIe (at 1 GHz).
    EXPECT_NEAR(nv.isolatedCost(64 * 1024), 12000, 1200);
    EXPECT_NEAR(nv.isolatedCost(0), 10000, 1000);
    EXPECT_NEAR(pc.isolatedCost(64 * 1024), 25000, 2500);
    EXPECT_NEAR(pc.isolatedCost(0), 12000, 1500);
}

TEST(HostLink, CpuServiceSerializes)
{
    HostLink link(HostLinkConfig::nvlink());
    Cycle r1 = link.serviceFault(0, 0);
    Cycle r2 = link.serviceFault(0, 0);
    Cycle r3 = link.serviceFault(0, 0);
    // Each subsequent fault waits ~one CPU service time more.
    EXPECT_GE(r2, r1 + 1500);
    EXPECT_GE(r3, r2 + 1500);
    EXPECT_EQ(link.faultsServiced(), 3u);
}

TEST(HostLink, MigrationOccupiesLinkBandwidth)
{
    HostLinkConfig cfg = HostLinkConfig::nvlink();
    HostLink link(cfg);
    Cycle alloc_only = link.isolatedCost(0);
    Cycle with_data = link.serviceFault(0, 64 * 1024);
    EXPECT_GT(with_data, alloc_only + 1000);
    EXPECT_EQ(link.bytesMigrated(), 64u * 1024u);
}

TEST(GpuFaultHandler, FixedLatencyParallel)
{
    GpuHandlerConfig cfg;
    cfg.handlerCycles = 20000;
    GpuFaultHandler h(cfg);
    EXPECT_EQ(h.handle(100), 20100u);
    EXPECT_EQ(h.handle(100), 20100u); // fully parallel
    EXPECT_EQ(h.handled(), 2u);
}

TEST(GpuFaultHandler, OptionalAllocatorSerialization)
{
    GpuHandlerConfig cfg;
    cfg.handlerCycles = 1000;
    cfg.allocatorSerialCycles = 300;
    GpuFaultHandler h(cfg);
    EXPECT_EQ(h.handle(0), 1000u);
    EXPECT_EQ(h.handle(0), 1300u);
    EXPECT_EQ(h.handle(0), 1600u);
}

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest()
        : link_(HostLinkConfig::nvlink()), handler_(GpuHandlerConfig{})
    {}

    SystemMmu
    makeMmu(bool local)
    {
        MmuConfig cfg;
        cfg.localHandling = local;
        return SystemMmu(cfg, dir_, link_, handler_);
    }

    PageDirectory dir_;
    HostLink link_;
    GpuFaultHandler handler_;
};

TEST_F(MmuTest, ResidentPageTranslates)
{
    SystemMmu mmu = makeMmu(false);
    Translation t = mmu.translate(5, 0);
    EXPECT_FALSE(t.fault);
    // L2 TLB miss (70) + walk (500).
    EXPECT_GE(t.ready, 570u);
    EXPECT_EQ(mmu.walks(), 1u);
    // Second translation of the same page hits the L2 TLB.
    Translation t2 = mmu.translate(5, 1000);
    EXPECT_LE(t2.ready, 1000u + 75u);
}

TEST_F(MmuTest, CpuOwnedFaultsAsMigration)
{
    dir_.setRange(0, 64 * 1024, RegionState::CpuOwned);
    SystemMmu mmu = makeMmu(false);
    Translation t = mmu.translate(1, 0);
    ASSERT_TRUE(t.fault);
    EXPECT_EQ(t.kind, FaultKind::Migration);
    EXPECT_GT(t.resolve, t.detect + 10000); // ~12 us migration
    EXPECT_EQ(link_.bytesMigrated(), 64u * 1024u);
}

TEST_F(MmuTest, UntouchedRoutesByLocalHandlingFlag)
{
    dir_.setRange(0, 128 * 1024, RegionState::Untouched);
    {
        SystemMmu mmu = makeMmu(false);
        Translation t = mmu.translate(1, 0);
        ASSERT_TRUE(t.fault);
        EXPECT_EQ(t.kind, FaultKind::CpuAlloc);
    }
    {
        SystemMmu mmu = makeMmu(true);
        Translation t = mmu.translate(20, 0); // second region
        ASSERT_TRUE(t.fault);
        EXPECT_EQ(t.kind, FaultKind::GpuAlloc);
        EXPECT_EQ(t.resolve, t.detect + 20000);
    }
}

TEST_F(MmuTest, SameRegionFaultJoins)
{
    dir_.setRange(0, 64 * 1024, RegionState::CpuOwned);
    SystemMmu mmu = makeMmu(false);
    Translation t1 = mmu.translate(1, 0);
    Translation t2 = mmu.translate(2, 10); // other page, same region
    ASSERT_TRUE(t2.fault);
    EXPECT_EQ(t2.kind, FaultKind::Joined);
    EXPECT_EQ(t2.resolve, t1.resolve);
    EXPECT_EQ(mmu.joinedFaults(), 1u);
    EXPECT_EQ(link_.faultsServiced(), 1u); // one migration only
}

TEST_F(MmuTest, AfterResolveTranslatesNormally)
{
    dir_.setRange(0, 64 * 1024, RegionState::CpuOwned);
    SystemMmu mmu = makeMmu(false);
    Translation t1 = mmu.translate(1, 0);
    Translation t2 = mmu.translate(1, t1.resolve + 100);
    EXPECT_FALSE(t2.fault);
}

TEST_F(MmuTest, PendingFaultQueueDepth)
{
    dir_.setRange(0, 4 * 64 * 1024, RegionState::CpuOwned);
    SystemMmu mmu = makeMmu(false);
    Translation t1 = mmu.translate(1, 0);
    EXPECT_EQ(t1.queueDepth, 0);
    Translation t2 = mmu.translate(17, 0); // second region
    EXPECT_EQ(t2.queueDepth, 1);
    Translation t3 = mmu.translate(33, 0);
    EXPECT_EQ(t3.queueDepth, 2);
    EXPECT_EQ(mmu.pendingFaults(t3.detect), 3);
    EXPECT_EQ(mmu.pendingFaults(t3.resolve + 1), 0);
}

TEST(VmPolicy, PresetsMatchExperiments)
{
    VmPolicy all = VmPolicy::allResident();
    EXPECT_EQ(all.inputs, RegionState::GpuResident);
    EXPECT_EQ(all.outputs, RegionState::GpuResident);

    VmPolicy dp = VmPolicy::demandPaging();
    EXPECT_EQ(dp.inputs, RegionState::CpuOwned);
    EXPECT_EQ(dp.outputs, RegionState::Untouched);
    EXPECT_FALSE(dp.localHandling);

    VmPolicy of = VmPolicy::outputFaults(true);
    EXPECT_EQ(of.inputs, RegionState::GpuResident);
    EXPECT_EQ(of.outputs, RegionState::Untouched);
    EXPECT_TRUE(of.localHandling);

    VmPolicy hf = VmPolicy::heapFaults(false);
    EXPECT_EQ(hf.heap, RegionState::Untouched);
    EXPECT_EQ(hf.outputs, RegionState::GpuResident);
}

TEST(MemoryManager, ApplyPolicyByBufferKind)
{
    PageDirectory dir;
    func::Kernel k;
    k.buffers.push_back({"in", 0, 64 * 1024, func::BufferKind::Input});
    k.buffers.push_back(
        {"out", 128 * 1024, 64 * 1024, func::BufferKind::Output});
    k.buffers.push_back(
        {"heap", 256 * 1024, 64 * 1024, func::BufferKind::Heap});
    applyPolicy(dir, k, VmPolicy::demandPaging());
    EXPECT_EQ(dir.stateAt(0, 0), RegionState::CpuOwned);
    EXPECT_EQ(dir.stateAt(128 * 1024, 0), RegionState::Untouched);
    EXPECT_EQ(dir.stateAt(256 * 1024, 0), RegionState::Untouched);
}

TEST(AddressSpace, RegionAlignedAllocations)
{
    AddressSpace as(1 << 20);
    Addr a = as.allocate(100);
    Addr b = as.allocate(70000);
    Addr c = as.allocate(8);
    EXPECT_EQ(a % kDefaultMigrationBytes, 0u);
    EXPECT_EQ(b, a + kDefaultMigrationBytes);
    EXPECT_EQ(c, b + 2 * kDefaultMigrationBytes);
}

} // namespace
} // namespace gex::vm
