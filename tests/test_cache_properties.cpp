/**
 * @file
 * Property tests: the timing Cache against an independent reference
 * model of set-associative LRU contents, over randomized access
 * sequences (parameterized by seed and geometry). The reference tracks
 * *which lines must be present*; the timing cache must agree, and its
 * returned timestamps must satisfy basic sanity (monotone per line,
 * bounded below by latency).
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>
#include <vector>

#include "common/stats.hpp"
#include "mem/cache.hpp"

namespace gex::mem {
namespace {

/** Straightforward LRU set-associative reference (contents only). */
class RefCache
{
  public:
    RefCache(std::uint64_t size, std::uint32_t ways)
        : ways_(ways), sets_(size / (kLineSize * ways))
    {
        lru_.resize(sets_);
    }

    /** Access line; returns true on hit. */
    bool
    access(Addr line)
    {
        auto &set = lru_[(line / kLineSize) % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == line) {
                set.erase(it);
                set.push_front(line);
                return true;
            }
        }
        set.push_front(line);
        if (set.size() > ways_)
            set.pop_back();
        return false;
    }

    bool
    contains(Addr line) const
    {
        const auto &set = lru_[(line / kLineSize) % sets_];
        for (Addr l : set)
            if (l == line)
                return true;
        return false;
    }

  private:
    std::uint32_t ways_;
    std::uint64_t sets_;
    std::vector<std::list<Addr>> lru_;
};

struct Geometry {
    std::uint64_t size;
    std::uint32_t ways;
    std::uint64_t seed;
};

class CacheVsReference : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheVsReference, ContentsMatchAfterRandomLoads)
{
    const Geometry g = GetParam();
    CacheConfig cfg;
    cfg.name = "p";
    cfg.sizeBytes = g.size;
    cfg.ways = g.ways;
    cfg.latency = 10;
    cfg.mshrs = 64;
    Cache cache(cfg);
    RefCache ref(g.size, g.ways);

    Rng rng(g.seed);
    // Footprint of 4x the cache so evictions are constant.
    const std::uint64_t lines = 4 * g.size / kLineSize;
    Cycle now = 0;
    auto fetch = [](Addr, Cycle t) { return t + 5; };
    for (int i = 0; i < 4000; ++i) {
        Addr line = rng.below(lines) * kLineSize;
        // Space accesses out so fills complete before the next access
        // (the reference model has no notion of in-flight fills).
        now += 40;
        Cycle done = cache.load(line, now, fetch);
        bool ref_hit = ref.access(line);
        EXPECT_GE(done, now + cfg.latency);
        // Hit/miss classification must match the reference exactly.
        // (Merges cannot occur: fills complete within the spacing.)
        if (ref_hit) {
            EXPECT_TRUE(cache.contains(line)) << "line " << line;
        }
    }
    // Final contents identical for a sample of lines.
    for (std::uint64_t l = 0; l < lines; l += 7) {
        EXPECT_EQ(cache.contains(l * kLineSize), ref.contains(l * kLineSize))
            << "line " << l * kLineSize;
    }
    EXPECT_EQ(cache.hits() + cache.misses() + cache.mshrMerges(), 4000u);
}

TEST_P(CacheVsReference, HitRateMatchesReferenceExactly)
{
    const Geometry g = GetParam();
    CacheConfig cfg;
    cfg.name = "p";
    cfg.sizeBytes = g.size;
    cfg.ways = g.ways;
    cfg.latency = 1;
    cfg.mshrs = 64;
    Cache cache(cfg);
    RefCache ref(g.size, g.ways);

    Rng rng(g.seed ^ 0xabcdef);
    const std::uint64_t lines = 2 * g.size / kLineSize;
    std::uint64_t ref_hits = 0;
    Cycle now = 0;
    auto fetch = [](Addr, Cycle t) { return t + 3; };
    const int accesses = 3000;
    for (int i = 0; i < accesses; ++i) {
        Addr line = rng.below(lines) * kLineSize;
        now += 20;
        cache.load(line, now, fetch);
        if (ref.access(line))
            ++ref_hits;
    }
    EXPECT_EQ(cache.hits(), ref_hits);
    EXPECT_EQ(cache.misses(), accesses - ref_hits);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheVsReference,
    ::testing::Values(Geometry{4 * 1024, 2, 1}, Geometry{4 * 1024, 4, 2},
                      Geometry{32 * 1024, 4, 3}, Geometry{32 * 1024, 8, 4},
                      Geometry{64 * 1024, 16, 5},
                      Geometry{2 * 1024 * 1024, 8, 6}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "s" + std::to_string(info.param.size / 1024) + "k_w" +
               std::to_string(info.param.ways) + "_seed" +
               std::to_string(info.param.seed);
    });

TEST(CacheTimestamps, PortQueueingIsFifoAndBounded)
{
    CacheConfig cfg;
    cfg.name = "q";
    cfg.latency = 10;
    cfg.ports = 1;
    Cache cache(cfg);
    auto fetch = [](Addr, Cycle t) { return t + 100; };
    // Burst of 10 accesses at the same cycle: the single port grants
    // one per cycle in order.
    std::vector<Cycle> done;
    for (int i = 0; i < 10; ++i)
        done.push_back(cache.load(static_cast<Addr>(i) * 4096, 5, fetch));
    for (int i = 1; i < 10; ++i)
        EXPECT_GE(done[static_cast<size_t>(i)],
                  done[static_cast<size_t>(i - 1)]);
    // Last access started at cycle 5+9.
    EXPECT_GE(done[9], 5u + 9u + cfg.latency);
}

} // namespace
} // namespace gex::mem
