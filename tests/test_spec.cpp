/**
 * @file
 * Knob-registry and experiment-spec tests (docs/CONFIGURATION.md):
 * registry defaults and digest sensitivity, spec-file application with
 * unknown-key rejection and suggestions, resolved_config manifest
 * round-trips, flag-vs-spec precedence through cli::ArgParser, strict
 * numeric flag parsing, and the headline property — a run configured
 * from a manifest is bit-identical to the flag-configured run that
 * produced the manifest.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "config/cli.hpp"
#include "config/knob_registry.hpp"
#include "harness/sweep.hpp"

namespace gex {
namespace {

const config::KnobRegistry &reg = config::KnobRegistry::instance();

/** A legal value of @p k different from its default. */
config::KnobValue
perturbed(const config::Knob &k)
{
    using config::KnobType;
    using config::KnobValue;
    switch (k.type) {
    case KnobType::Int:
        return KnobValue::ofInt(k.def.i + 1 <= k.imax ? k.def.i + 1
                                                      : k.def.i - 1);
    case KnobType::Real:
        return KnobValue::ofReal(k.def.r + 0.0625 <= k.rmax
                                     ? k.def.r + 0.0625
                                     : k.def.r - 0.0625);
    case KnobType::Bool:
        return KnobValue::ofBool(!k.def.b);
    case KnobType::Enum:
        for (const std::string &v : k.enumValues)
            if (v != k.def.e)
                return KnobValue::ofEnum(v);
        break;
    }
    ADD_FAILURE() << "no perturbation for knob " << k.name;
    return k.def;
}

std::string
manifestText(const config::RunParams &p)
{
    std::ostringstream os;
    json::Writer w(os);
    reg.writeManifest(w, p);
    return os.str();
}

std::string
tmpSpec(const char *name, const std::string &text)
{
    std::string path = ::testing::TempDir() + name;
    std::ofstream os(path);
    os << text;
    return path;
}

TEST(KnobRegistry, DefaultsMatchBaseline)
{
    const config::RunParams base = config::RunParams::baseline();
    for (const config::Knob &k : reg.knobs())
        EXPECT_EQ(k.get(base), k.def) << "knob " << k.name;
}

TEST(KnobRegistry, NamesAndFlagsResolve)
{
    for (const config::Knob &k : reg.knobs()) {
        EXPECT_EQ(reg.find(k.name), &k);
        EXPECT_EQ(reg.findFlag(k.flag), &k);
    }
    EXPECT_EQ(reg.find("no-such-knob"), nullptr);
    EXPECT_EQ(reg.findFlag("--no-such-flag"), nullptr);
}

TEST(KnobRegistry, SetterGetterRoundTrip)
{
    for (const config::Knob &k : reg.knobs()) {
        if (k.preset)
            continue; // presets read back as their component state
        config::RunParams p;
        const config::KnobValue v = perturbed(k);
        k.set(p, v);
        EXPECT_EQ(k.get(p), v) << "knob " << k.name;
    }
}

// Every digested knob moves the result digest; execution-only knobs
// and pure relabelings don't. This is the property that makes the
// journal's resume keying automatic for future knobs.
TEST(KnobRegistry, EveryDigestedKnobMovesTheDigest)
{
    const config::RunParams base = config::RunParams::baseline();
    const std::uint64_t d0 = reg.resultDigest(base);
    for (const config::Knob &k : reg.knobs()) {
        if (k.preset || k.execOnly)
            continue;
        config::RunParams p;
        k.set(p, perturbed(k));
        EXPECT_NE(reg.resultDigest(p), d0) << "knob " << k.name;
    }
}

TEST(KnobRegistry, ExecOnlyKnobsDoNotMoveTheDigest)
{
    const std::uint64_t d0 =
        reg.resultDigest(config::RunParams::baseline());
    bool sawExecOnly = false;
    for (const config::Knob &k : reg.knobs()) {
        if (!k.execOnly)
            continue;
        sawExecOnly = true;
        config::RunParams p;
        k.set(p, perturbed(k));
        EXPECT_EQ(reg.resultDigest(p), d0) << "knob " << k.name;
    }
    EXPECT_TRUE(sawExecOnly); // sm-threads at minimum
}

TEST(KnobRegistry, SuggestFindsNearMisses)
{
    EXPECT_EQ(reg.suggest("smz"), "sms");
    EXPECT_EQ(reg.suggest("inject.rte"), "inject.rate");
    EXPECT_EQ(reg.suggest("zzzzzzzzzzzzzzzzzzzz"), "");
}

TEST(EditDistance, Basics)
{
    EXPECT_EQ(config::editDistance("", "abc"), 3u);
    EXPECT_EQ(config::editDistance("abc", "abc"), 0u);
    EXPECT_EQ(config::editDistance("kitten", "sitting"), 3u);
}

TEST(SpecFile, AppliesKnobsInRegistryOrder)
{
    config::RunParams p;
    // The policy preset first, then a component override: registry
    // order guarantees the preset cannot clobber the component value
    // regardless of JSON member order.
    reg.applySpecText(p,
                      "{\"policy.inputs\": \"gpu-resident\","
                      " \"policy\": \"demand-paging\","
                      " \"scheme\": \"replay-queue\", \"sms\": 4}",
                      "test-spec");
    EXPECT_EQ(p.cfg.numSms, 4);
    EXPECT_EQ(p.cfg.scheme, gpu::Scheme::ReplayQueue);
    // The component override beat the preset's cpu-owned inputs even
    // though the preset key came later in the JSON text ...
    EXPECT_EQ(p.policy.inputs, vm::RegionState::GpuResident);
    // ... while the rest of the preset still applied.
    EXPECT_EQ(p.policy.outputs, vm::RegionState::Untouched);
    EXPECT_EQ(p.policy.heap, vm::RegionState::Untouched);
}

TEST(SpecFile, UnknownKeyIsRejectedWithSuggestion)
{
    config::RunParams p;
    try {
        reg.applySpecText(p, "{\"smz\": 4}", "spec.json");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("spec.json"), std::string::npos) << msg;
        EXPECT_NE(msg.find("unknown key 'smz'"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("did you mean 'sms'"), std::string::npos)
            << msg;
    }
}

TEST(SpecFile, RejectsBadValues)
{
    config::RunParams p;
    // Out-of-range rate, non-integral int, bad enum name, non-object
    // document, unreadable file.
    EXPECT_THROW(reg.applySpecText(p, "{\"inject.rate\": 1.5}", "s"),
                 ConfigError);
    EXPECT_THROW(reg.applySpecText(p, "{\"sms\": 2.5}", "s"),
                 ConfigError);
    EXPECT_THROW(reg.applySpecText(p, "{\"scheme\": \"fancy\"}", "s"),
                 ConfigError);
    EXPECT_THROW(reg.applySpecText(p, "[1, 2]", "s"), ConfigError);
    EXPECT_THROW(reg.applySpecFile(p, "/nonexistent/spec.json"),
                 ConfigError);
}

TEST(Manifest, CoversExactlyTheDigestedKnobs)
{
    std::string err;
    auto v = json::parse(manifestText(config::RunParams::baseline()),
                         &err);
    ASSERT_TRUE(v && v->isObject()) << err;
    std::size_t digested = 0;
    for (const config::Knob &k : reg.knobs()) {
        const bool inManifest =
            v->find(k.name) != nullptr;
        EXPECT_EQ(inManifest, !k.preset && !k.execOnly)
            << "knob " << k.name;
        if (!k.preset && !k.execOnly)
            ++digested;
    }
    EXPECT_EQ(v->members.size(), digested);
}

// resolved_config is replayable provenance: feeding the manifest back
// through the spec loader reproduces the exact digested state.
TEST(Manifest, RoundTripsToAnEqualDigest)
{
    config::RunParams a;
    a.cfg.scheme = gpu::Scheme::OperandLog;
    a.cfg.numSms = 6;
    a.cfg.l2.sizeBytes = 3072 * 1024;
    a.policy = vm::VmPolicy::heapFaults(true);
    a.policy.inject.model = inject::ModelKind::Burst;
    a.policy.inject.rate = 0.015625;
    a.policy.inject.seed = 9;

    config::RunParams b;
    reg.applySpecText(b, manifestText(a), "manifest");
    EXPECT_EQ(reg.resultDigest(b), reg.resultDigest(a));
    for (const config::Knob &k : reg.knobs()) {
        if (!k.preset && !k.execOnly)
            EXPECT_EQ(k.get(b), k.get(a)) << "knob " << k.name;
    }
}

TEST(ArgParser, FlagsOverrideSpecsRegardlessOfPosition)
{
    const std::string spec = tmpSpec(
        "prec_spec.json", "{\"sms\": 8, \"scheme\": \"operand-log\"}");

    config::RunParams p;
    cli::ArgParser ap("t", "test");
    ap.bindKnobs(&p);
    std::vector<std::string> args = {"t", "--sms", "12", "--config",
                                     spec};
    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    ap.parse(static_cast<int>(argv.size()), argv.data());

    EXPECT_EQ(p.cfg.numSms, 12); // flag wins though it came first
    EXPECT_EQ(p.cfg.scheme, gpu::Scheme::OperandLog); // spec-only key
    ASSERT_EQ(ap.configFiles().size(), 1u);
    EXPECT_EQ(ap.configFiles()[0], spec);
}

TEST(ArgParser, LaterSpecOverridesEarlierSpec)
{
    const std::string s1 = tmpSpec("layer1.json", "{\"sms\": 8}");
    const std::string s2 = tmpSpec("layer2.json", "{\"sms\": 24}");

    config::RunParams p;
    cli::ArgParser ap("t", "test");
    ap.bindKnobs(&p);
    std::vector<std::string> args = {"t", "--config", s1, "--config",
                                     s2};
    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    ap.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(p.cfg.numSms, 24);
}

TEST(ArgParser, BoolKnobsAcceptNoPrefix)
{
    config::RunParams p;
    cli::ArgParser ap("t", "test");
    ap.bindKnobs(&p);
    std::vector<std::string> args = {"t", "--block-switching",
                                     "--no-capture-events"};
    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    ap.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(p.cfg.blockSwitching);
    EXPECT_FALSE(p.cfg.watchdogCaptureEvents);
}

TEST(ArgParser, UnknownFlagAndSpecKeysOfDriverOptions)
{
    std::string suite;
    config::RunParams p;
    cli::ArgParser ap("t", "test");
    ap.option("--suite", "S", "suite",
              [&](const std::string &v) { suite = v; }, "suite");
    ap.bindKnobs(&p);

    const std::string spec =
        tmpSpec("driver_keys.json", "{\"suite\": \"halloc\"}");
    std::vector<std::string> args = {"t", "--config", spec};
    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    ap.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(suite, "halloc"); // driver key accepted from the spec

    std::vector<std::string> bad = {"t", "--suit", "x"};
    std::vector<char *> badv;
    for (std::string &a : bad)
        badv.push_back(a.data());
    try {
        ap.parse(static_cast<int>(badv.size()), badv.data());
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown flag '--suit'"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("--suite"), std::string::npos) << msg;
    }
}

TEST(StrictParsing, TrailingJunkAndGarbageAreRejected)
{
    EXPECT_THROW(cli::parseInt("--jobs", "4x", 0, 100), ConfigError);
    EXPECT_THROW(cli::parseInt("--jobs", "banana", 0, 100), ConfigError);
    EXPECT_THROW(cli::parseInt("--jobs", "", 0, 100), ConfigError);
    EXPECT_THROW(cli::parseRate("--rate", "0.5p"), ConfigError);
    EXPECT_EQ(cli::parseInt("--jobs", "42", 0, 100), 42);
    EXPECT_EQ(cli::parseRate("--rate", "0.25"), 0.25);

    const config::Knob *sms = reg.find("sms");
    ASSERT_NE(sms, nullptr);
    EXPECT_THROW(sms->parseText("--sms", "4x"), ConfigError);
    EXPECT_THROW(sms->parseText("--sms", "0"), ConfigError);
}

TEST(Version, NamesTheRegistry)
{
    const std::string v = cli::versionText("gexsim-test");
    EXPECT_NE(v.find("gexsim-test"), std::string::npos);
    EXPECT_NE(v.find("knob registry"), std::string::npos);
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(reg.registryDigest()));
    EXPECT_NE(v.find(digest), std::string::npos);
}

// The headline acceptance property: a run configured from a manifest
// is bit-identical to the flag-style-configured run that wrote it.
TEST(Manifest, ReRunFromManifestIsBitIdentical)
{
    config::RunParams a;
    a.cfg.numSms = 4;
    a.cfg.scheme = gpu::Scheme::ReplayQueue;
    a.policy = vm::VmPolicy::demandPaging();

    config::RunParams b;
    reg.applySpecText(b, manifestText(a), "manifest");

    harness::TracedWorkload tw = harness::buildTraced("bfs");
    gpu::Gpu ga(a.cfg);
    gpu::SimResult ra = ga.run(tw.kernel, tw.trace, a.policy);
    gpu::Gpu gb(b.cfg);
    gpu::SimResult rb = gb.run(tw.kernel, tw.trace, b.policy);

    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.instructions, rb.instructions);
    std::ostringstream sa, sb;
    ra.stats.dumpCsv(sa);
    rb.stats.dumpCsv(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

} // namespace
} // namespace gex
