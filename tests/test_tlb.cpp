/** @file Unit tests: TLB tags, miss merging, fault pass-through. */

#include <gtest/gtest.h>

#include "vm/tlb.hpp"

namespace gex::vm {
namespace {

TlbConfig
smallCfg()
{
    return TlbConfig{"t", 8, 2, 1, 8}; // 4 sets x 2 ways
}

Tlb::LowerFn
okLower(Cycle lat, int *count = nullptr)
{
    return [lat, count](Addr, Cycle t) {
        if (count)
            ++*count;
        Translation tr;
        tr.ready = t + lat;
        return tr;
    };
}

Tlb::LowerFn
faultLower(Cycle resolve_at, FaultKind kind = FaultKind::Migration)
{
    return [resolve_at, kind](Addr, Cycle t) {
        Translation tr;
        tr.fault = true;
        tr.detect = t + 500;
        tr.resolve = resolve_at;
        tr.kind = kind;
        return tr;
    };
}

TEST(Tlb, HitAfterFill)
{
    Tlb tlb(smallCfg());
    int lowers = 0;
    Translation t1 = tlb.translate(100, 0, okLower(70, &lowers));
    EXPECT_FALSE(t1.fault);
    EXPECT_EQ(t1.ready, 71u);
    Translation t2 = tlb.translate(100, 200, okLower(70, &lowers));
    EXPECT_EQ(t2.ready, 201u); // hit latency 1
    EXPECT_EQ(lowers, 1);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, PendingMissMerges)
{
    Tlb tlb(smallCfg());
    int lowers = 0;
    Translation t1 = tlb.translate(7, 0, okLower(100, &lowers));
    Translation t2 = tlb.translate(7, 5, okLower(100, &lowers));
    EXPECT_EQ(t2.ready, t1.ready);
    EXPECT_EQ(lowers, 1);
    EXPECT_EQ(tlb.merges(), 1u);
}

TEST(Tlb, SameSetSweepThrashes)
{
    Tlb tlb(smallCfg()); // 4 sets, 2 ways
    int lowers = 0;
    // Pages 0, 4, 8 all map to set 0; sweeping 3 pages through 2 ways
    // with well-spaced accesses never hits.
    Cycle now = 0;
    for (int round = 0; round < 3; ++round)
        for (Addr p : {0, 4, 8}) {
            tlb.translate(p, now, okLower(10, &lowers));
            now += 1000;
        }
    EXPECT_EQ(tlb.hits(), 0u);
    EXPECT_EQ(lowers, 9);
}

TEST(Tlb, FaultNotCached)
{
    Tlb tlb(smallCfg());
    Translation t1 = tlb.translate(3, 0, faultLower(5000));
    EXPECT_TRUE(t1.fault);
    EXPECT_EQ(t1.resolve, 5000u);
    EXPECT_FALSE(tlb.contains(3));
}

TEST(Tlb, SamePageJoinsInflightFault)
{
    Tlb tlb(smallCfg());
    tlb.translate(3, 0, faultLower(5000));
    Translation t2 = tlb.translate(3, 100, faultLower(9999));
    EXPECT_TRUE(t2.fault);
    EXPECT_EQ(t2.kind, FaultKind::Joined);
    EXPECT_EQ(t2.resolve, 5000u); // joins the original fault
    // After the fault resolves, a fresh walk happens.
    int lowers = 0;
    Translation t3 = tlb.translate(3, 6000, okLower(70, &lowers));
    EXPECT_FALSE(t3.fault);
    EXPECT_EQ(lowers, 1);
}

TEST(Tlb, FlushDropsEverything)
{
    Tlb tlb(smallCfg());
    tlb.translate(1, 0, okLower(10));
    EXPECT_TRUE(tlb.contains(1));
    tlb.flush();
    EXPECT_FALSE(tlb.contains(1));
}

TEST(Tlb, StatsNamesPrefixed)
{
    Tlb tlb(smallCfg());
    tlb.translate(1, 0, okLower(10));
    StatSet s;
    tlb.collectStats(s);
    EXPECT_TRUE(s.has("t.misses"));
    EXPECT_DOUBLE_EQ(s.get("t.misses"), 1.0);
}

} // namespace
} // namespace gex::vm
