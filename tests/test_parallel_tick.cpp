/**
 * @file
 * Determinism contract of the phased multi-threaded tick engine
 * (GpuConfig::smThreads, see docs/PERFORMANCE.md): a run's SimResult —
 * cycle count, instruction count and a digest over EVERY exported
 * statistic — must be bit-identical at any thread count, across all
 * five exception schemes, under demand paging, under UC1 block
 * switching (the staged bulk-DRAM path), under fault injection, and
 * with an observer attached (whose event sequence must also match the
 * serial order exactly).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gex.hpp"
#include "kasm/builder.hpp"

namespace gex {
namespace {

/** Same FNV-1a digest as test_golden_stats.cpp. */
std::uint64_t
digestStats(const gpu::SimResult &r)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const void *p, std::size_t n) {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    };
    for (const auto &kv : r.stats.scalars()) {
        mix(kv.first.data(), kv.first.size());
        double v = kv.second;
        mix(&v, sizeof v);
    }
    return h;
}

const int kThreadCounts[] = {1, 4, 8};

/**
 * Run the same simulation at smThreads 1/4/8 and require bit-identical
 * outcomes. Returns the smThreads=1 result for extra assertions.
 */
gpu::SimResult
expectInvariant(const func::Kernel &kernel,
                const trace::KernelTrace &trace,
                const gpu::GpuConfig &base, const vm::VmPolicy &policy)
{
    gpu::GpuConfig cfg = base;
    cfg.smThreads = 1;
    gpu::Gpu serial(cfg);
    gpu::SimResult ref = serial.run(kernel, trace, policy);
    std::uint64_t refDigest = digestStats(ref);

    for (int t : kThreadCounts) {
        if (t == 1)
            continue;
        SCOPED_TRACE("smThreads=" + std::to_string(t));
        cfg.smThreads = t;
        gpu::Gpu g(cfg);
        gpu::SimResult r = g.run(kernel, trace, policy);
        EXPECT_EQ(r.cycles, ref.cycles);
        EXPECT_EQ(r.instructions, ref.instructions);
        EXPECT_EQ(digestStats(r), refDigest)
            << "a statistic moved with the thread count — the phased "
               "tick engine is no longer deterministic";
    }
    return ref;
}

gpu::SimResult
expectInvariant(const harness::TracedWorkload &tw,
                const gpu::GpuConfig &base, const vm::VmPolicy &policy)
{
    return expectInvariant(tw.kernel, tw.trace, base, policy);
}

/**
 * An oversubscribed kernel whose blocks fault on distinct input pages
 * and then compute — the same shape as test_block_switching's
 * workload, guaranteed to trigger UC1 switch-outs (and therefore the
 * staged bulk-DRAM save/restore path) under demand paging.
 */
struct SwitchyWorkload {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;

    SwitchyWorkload()
    {
        constexpr Addr kIn = 1 << 20;
        constexpr Addr kOut = 16 << 20;
        constexpr std::uint32_t blocks = 64;
        std::uint64_t n = static_cast<std::uint64_t>(blocks) * 256;
        for (std::uint64_t i = 0; i < n; ++i)
            mem.write64(kIn + i * 8, i & 1023);
        kasm::KernelBuilder b("switchy");
        b.setNumParams(2);
        b.setMinRegs(120); // 1 block of 256 threads per SM
        b.s2r(0, kasm::SpecialReg::GlobalTid);
        b.ldparam(1, 0);
        b.ldparam(2, 1);
        b.shli(3, 0, 3);
        b.iadd(1, 1, 3);
        b.ldGlobal(4, 1); // faults under demand paging
        for (int i = 0; i < 24; ++i)
            b.ffma(4, 4, 4, 4);
        b.iadd(2, 2, 3);
        b.stGlobal(2, 0, 4);
        b.exit();
        kernel.program = b.build();
        kernel.grid = {blocks, 1, 1};
        kernel.block = {256, 1, 1};
        kernel.params = {kIn, kOut};
        kernel.buffers.push_back(
            {"in", kIn, n * 8, func::BufferKind::Input});
        kernel.buffers.push_back(
            {"out", kOut, n * 8, func::BufferKind::Output});
        func::FunctionalSim fsim(mem);
        trace = fsim.run(kernel);
    }
};

TEST(ParallelTick, AllFiveSchemesBitIdenticalUnderDemandPaging)
{
    harness::TraceCache cache;
    const harness::TracedWorkload &tw = cache.get("bfs");
    for (gpu::Scheme s : gpu::allSchemes()) {
        SCOPED_TRACE(gpu::schemeName(s));
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.scheme = s;
        expectInvariant(tw, cfg, vm::VmPolicy::demandPaging());
    }
}

TEST(ParallelTick, AllFiveSchemesBitIdenticalAllResident)
{
    harness::TraceCache cache;
    const harness::TracedWorkload &tw = cache.get("sgemm");
    for (gpu::Scheme s : gpu::allSchemes()) {
        SCOPED_TRACE(gpu::schemeName(s));
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.scheme = s;
        expectInvariant(tw, cfg, vm::VmPolicy::allResident());
    }
}

/** UC1 context switching: the staged bulk-DRAM save/restore path. */
TEST(ParallelTick, BlockSwitchingBitIdentical)
{
    SwitchyWorkload sw;
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue;
    cfg.blockSwitching = true;
    gpu::SimResult ref = expectInvariant(sw.kernel, sw.trace, cfg,
                                         vm::VmPolicy::demandPaging());
    // The invariance is vacuous unless context switches happened.
    EXPECT_GT(ref.stats.get("sm.switch_outs"), 0.0);
    EXPECT_GT(ref.stats.get("sm.context_bytes_moved"), 0.0);
}

TEST(ParallelTick, IdealContextSwitchBitIdentical)
{
    SwitchyWorkload sw;
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::OperandLog;
    cfg.blockSwitching = true;
    cfg.idealContextSwitch = true;
    gpu::SimResult ref = expectInvariant(sw.kernel, sw.trace, cfg,
                                         vm::VmPolicy::demandPaging());
    EXPECT_GT(ref.stats.get("sm.switch_outs"), 0.0);
}

TEST(ParallelTick, FaultInjectionBitIdentical)
{
    harness::TraceCache cache;
    const harness::TracedWorkload &tw = cache.get("spmv");
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue;
    vm::VmPolicy policy = vm::VmPolicy::allResident();
    policy.inject.model = inject::ModelKind::Bernoulli;
    policy.inject.rate = 0.01;
    policy.inject.seed = 7;
    gpu::SimResult ref = expectInvariant(tw, cfg, policy);
    EXPECT_GT(ref.stats.get("mmu.injected_faults"), 0.0);
    EXPECT_GT(ref.stats.get("resil.replays_total"), 0.0);
}

/**
 * Observer events must arrive in the exact serial order at any thread
 * count: the per-SM buffers are flushed in ascending SM index each
 * cycle, reproducing the serial tick's emission sequence.
 */
TEST(ParallelTick, ObserverEventOrderIdentical)
{
    harness::TraceCache cache;
    const harness::TracedWorkload &tw = cache.get("bfs");
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::OperandLog;

    auto record = [&](int threads) {
        cfg.smThreads = threads;
        obs::RecordingObserver rec;
        gpu::Gpu g(cfg);
        g.setObserver(&rec);
        g.run(tw.kernel, tw.trace, vm::VmPolicy::demandPaging());
        return std::move(rec.events);
    };

    std::vector<obs::PipeEvent> serial = record(1);
    ASSERT_FALSE(serial.empty());
    for (int t : kThreadCounts) {
        if (t == 1)
            continue;
        SCOPED_TRACE("smThreads=" + std::to_string(t));
        std::vector<obs::PipeEvent> par = record(t);
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            const obs::PipeEvent &a = serial[i];
            const obs::PipeEvent &b = par[i];
            ASSERT_TRUE(a.cycle == b.cycle && a.sm == b.sm &&
                        a.slot == b.slot && a.warp == b.warp &&
                        a.kind == b.kind && a.traceIdx == b.traceIdx &&
                        a.staticIdx == b.staticIdx && a.arg == b.arg)
                << "event " << i << " diverged at cycle "
                << static_cast<unsigned long long>(b.cycle);
        }
    }
}

/** Thread counts beyond numSms clamp instead of misbehaving. */
TEST(ParallelTick, OversubscribedThreadCountClamps)
{
    harness::TraceCache cache;
    const harness::TracedWorkload &tw = cache.get("bfs");
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.numSms = 2;
    gpu::Gpu serial(cfg);
    gpu::SimResult ref =
        serial.run(tw.kernel, tw.trace, vm::VmPolicy::allResident());

    cfg.smThreads = 64; // > numSms, > any host core count
    gpu::Gpu g(cfg);
    gpu::SimResult r =
        g.run(tw.kernel, tw.trace, vm::VmPolicy::allResident());
    EXPECT_EQ(r.cycles, ref.cycles);
    EXPECT_EQ(digestStats(r), digestStats(ref));
}

/** The sweep engine composes with per-run smThreads (jobs × threads). */
TEST(ParallelTick, NestedSweepParallelismDeterministic)
{
    auto grid = [](int jobs, int smThreads) {
        harness::SweepEngine eng(jobs);
        for (const char *w : {"bfs", "sgemm"}) {
            for (gpu::Scheme s :
                 {gpu::Scheme::StallOnFault, gpu::Scheme::ReplayQueue}) {
                harness::RunSpec rs;
                rs.workload = w;
                rs.cfg = gpu::GpuConfig::baseline();
                rs.cfg.scheme = s;
                rs.cfg.smThreads = smThreads;
                eng.add(std::move(rs));
            }
        }
        return eng.run();
    };
    auto serial = grid(1, 1);
    auto nested = grid(2, 4);
    ASSERT_EQ(serial.size(), nested.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].result.cycles, nested[i].result.cycles);
        EXPECT_EQ(digestStats(serial[i].result),
                  digestStats(nested[i].result));
    }
}

} // namespace
} // namespace gex
